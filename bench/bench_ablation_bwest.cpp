// Ablation: bandwidth estimation (paper contribution #2).
// "UDT employs an AIMD rate control algorithm that uses a bandwidth
// estimation technique to determine the best increase parameter for
// efficiency.  From our experiments, this increases the effective
// throughput of the protocol."
// Disabling the RBPP packet pairs (probe_interval = 0) leaves the
// controller with no capacity estimate, so formula (1) falls to its probing
// floor — the flow can no longer find the link rate after a loss.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Out {
  double mean_mbps;
  double t90 = -1.0;  // first second reaching 90% of capacity post-loss
};

Out run(int probe_interval, Bandwidth link, double seconds) {
  Simulator sim;
  const double rtt = 0.050;
  Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                               1000.0, bdp_packets(link, rtt, 1500)))}};
  UdtFlowConfig cfg;
  cfg.probe_interval = probe_interval;
  net.add_udt_flow(cfg, rtt);
  // A short competing burst forces a loss event early on, so the run
  // measures recovery driven by the estimated available bandwidth.
  net.add_cbr_source(link * 1.5, 1500, 3.0, 3.3);
  ThroughputSampler sampler{
      sim, [&] { return net.udt_receiver(0).stats().delivered; }, 1500, 1.0};
  sim.run_until(seconds);
  Out out;
  out.mean_mbps = sampler.mean_mbps();
  const double target = 0.9 * link.mbits_per_sec();
  const auto& s = sampler.samples_mbps();
  for (std::size_t i = 4; i < s.size(); ++i) {  // after the burst at t=3
    if (s[i] >= target) {
      out.t90 = static_cast<double>(i + 1);
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Ablation", "RBPP bandwidth estimation on/off", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(40, 100);

  const Out with_est = run(16, link, seconds);
  const Out without_est = run(0, link, seconds);

  std::printf("%-22s %14s %22s\n", "configuration", "mean Mb/s",
              "t to 90%% after loss");
  const auto t90s = [](double t) {
    static char buf[32];
    if (t < 0) {
      std::snprintf(buf, sizeof buf, "never");
    } else {
      std::snprintf(buf, sizeof buf, "%.0f s", t);
    }
    return buf;
  };
  std::printf("%-22s %14.1f %22s\n", "RBPP estimation (N=16)",
              with_est.mean_mbps, t90s(with_est.t90));
  std::printf("%-22s %14.1f %22s\n", "no estimation",
              without_est.mean_mbps, t90s(without_est.t90));
  std::printf("\nexpected: without the capacity estimate the increase "
              "parameter sits at its floor and recovery stalls — the "
              "estimation is what buys efficiency.\n");
  return 0;
}
