// Ablation: the retired delay-trend congestion input (paper §6 lessons).
// "The obsolete design of UDT that did use packet delay to indicate
// congestion is friendlier to TCP, but may lead to poor throughputs on
// certain systems."  Reproduced: with the PCT/PDT warning enabled, the UDT
// flow backs off before the queue overflows — less loss and a larger TCP
// share — at the cost of throughput, especially when end-system noise
// (jitter) pollutes the delay samples.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Out {
  double udt_mbps;
  double tcp_mbps;
  std::uint64_t lost;
};

Out run(bool delay_mode, Bandwidth link, double seconds) {
  Simulator sim;
  const double rtt = 0.050;
  Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                               200.0, bdp_packets(link, rtt, 1500) / 2))}};
  UdtFlowConfig cfg;
  cfg.cc.delay_trend_mode = delay_mode;
  net.add_udt_flow(cfg, rtt);
  net.add_tcp_flow({}, rtt);
  sim.run_until(seconds);
  return Out{
      average_mbps(net.udt_receiver(0).stats().delivered, 1500, 0, seconds),
      average_mbps(net.tcp_receiver(0).stats().delivered, 1500, 0, seconds),
      net.udt_receiver(0).stats().lost_packets};
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Ablation", "obsolete delay-trend congestion input "
                      "(1 UDT + 1 TCP)", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);

  const Out off = run(false, link, seconds);
  const Out on = run(true, link, seconds);

  std::printf("%-22s %12s %12s %12s\n", "configuration", "UDT Mb/s",
              "TCP Mb/s", "UDT loss");
  std::printf("%-22s %12.1f %12.1f %12llu\n", "loss-only (current)",
              off.udt_mbps, off.tcp_mbps, (unsigned long long)off.lost);
  std::printf("%-22s %12.1f %12.1f %12llu\n", "with delay trend",
              on.udt_mbps, on.tcp_mbps, (unsigned long long)on.lost);
  std::printf("\nexpected: delay mode is friendlier (larger TCP share, less "
              "loss) but yields throughput — the reason UDT removed it.\n");
  return 0;
}
