// Ablation: the SYN (rate-control interval) trade-off (paper §3.7).
// "If you decrease this value, you increase efficiency, but decrease
// friendliness and stability.  Conversely, if you increase the value of
// SYN, you increase friendliness and stability but decrease efficiency."
// Sweeps SYN and reports single-flow efficiency, coexisting-TCP share, and
// the stability index.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Ablation", "SYN interval trade-off (§3.7)", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);
  const double rtt = 0.100;
  const double syns[] = {0.001, 0.01, 0.1};

  std::printf("%10s %18s %20s %14s\n", "SYN (s)", "solo UDT Mb/s",
              "TCP share w/ UDT %%", "stability");
  for (const double syn : syns) {
    // Efficiency: one UDT flow alone.
    double solo_mbps;
    double stability;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      UdtFlowConfig cfg;
      cfg.cc.syn_s = syn;
      net.add_udt_flow(cfg, rtt);
      ThroughputSampler sampler{
          sim, [&] { return net.udt_receiver(0).stats().delivered; }, 1500,
          1.0};
      sim.run_until(seconds);
      solo_mbps = average_mbps(net.udt_receiver(0).stats().delivered, 1500,
                               0.0, seconds);
      std::vector<std::vector<double>> ss{sampler.samples_mbps()};
      stability = stability_index(ss);
    }
    // Friendliness: 1 UDT + 2 TCP share the link; TCP's share of capacity.
    double tcp_share;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      UdtFlowConfig cfg;
      cfg.cc.syn_s = syn;
      net.add_udt_flow(cfg, rtt);
      net.add_tcp_flow({}, rtt);
      net.add_tcp_flow({}, rtt);
      sim.run_until(seconds);
      const double tcp_mbps =
          average_mbps(net.tcp_receiver(0).stats().delivered +
                           net.tcp_receiver(1).stats().delivered,
                       1500, 0.0, seconds);
      tcp_share = 100.0 * tcp_mbps / link.mbits_per_sec();
    }
    std::printf("%10.3f %18.1f %20.1f %14.4f\n", syn, solo_mbps, tcp_share,
                stability);
  }
  std::printf("\nexpected: smaller SYN -> higher solo throughput, smaller "
              "TCP share, more oscillation; the paper's 0.01 s is the "
              "middle ground.\n");
  return 0;
}
