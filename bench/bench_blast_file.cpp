// Blast-mode bulk file transfer: the pipelined zero-copy disk datapath
// (FileSource chunk ring -> borrowed send buffer; take_stream -> FileSink
// write-behind) against the legacy staged sendfile/recvfile.
//
// Two claims are gated, both structural:
//   (a) with a disk-rate throttle injected at BOTH ends (the Table-2
//       deployment shape: the disk, not the network, is the bottleneck),
//       the end-to-end transfer tracks the throttle cap at >= 90%;
//   (b) the pipeline beats the legacy path on CPU seconds per gigabyte by
//       a committed margin (<= 75% of legacy).  The mechanism is not the
//       staging memcpys (those cost ~0.2 s/GB, within run noise): it is
//       that the staged receiver stops draining the socket while it sits
//       in its disk write + throttle sleep, so at disk-rate transfer the
//       receive path backs up, overflows, and the tail of every stall is
//       paid back as retransmissions and zero-window churn — measured
//       here as 2-5x the pipeline's CPU/GB and a throughput sag below
//       the cap.  The write-behind pipeline never blocks the drain, so
//       its CPU/GB is flat run over run.
// Throughput numbers are reported but not gated (runner-dependent); the
// two claims above are properties of the code and go to the committed
// baseline as 0/1 structural keys.
//
// The transfer runs with a jumbo-frame MSS (8948, the 9000-MTU payload
// bulk data-movement deployments actually use; loopback carries it
// natively, and bench_fig15 sweeps the same range) and enough bytes
// (512 MB quick / 3 GiB full) that protocol buffers cannot hide a
// serialized disk stage behind a standing start.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) / 1e6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

std::uint64_t file_sum64(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  std::vector<std::uint64_t> block(1 << 17);  // 1 MiB of u64s
  std::uint64_t sum = 0;
  while (in) {
    in.read(reinterpret_cast<char*>(block.data()),
            static_cast<std::streamsize>(block.size() * sizeof(std::uint64_t)));
    const auto got = static_cast<std::size_t>(in.gcount());
    for (std::size_t i = 0; i * sizeof(std::uint64_t) < got; ++i) sum += block[i];
    for (std::size_t i = got - got % sizeof(std::uint64_t); i < got; ++i) {
      sum += reinterpret_cast<const std::uint8_t*>(block.data())[i];
    }
  }
  return sum;
}

struct RunResult {
  double wall_s = 0;
  double cpu_s = 0;
  std::uint64_t bytes = 0;
  bool exact = false;
};

// One disk-to-disk transfer over loopback.  Both paths honor the injected
// disk rate (the staged loops throttle their read/write stages; the
// pipeline throttles FileSource/FileSink), so the comparison is matched:
// same emulated disks at both ends, wire left uncapped — the disk must be
// the bottleneck, exactly the Table-2 deployment shape.
RunResult run_transfer(bool pipelined, double cap_mbps, std::uint64_t bytes,
                       const std::string& src, const std::string& dst,
                       std::uint64_t src_sum, double flush_timeout_s) {
  SocketOptions opts;
  opts.mss_bytes = 8948;  // jumbo-frame path (see file header)
  opts.file_pipeline = pipelined;
  opts.file_flush_timeout_s = flush_timeout_s;
  opts.file_disk_read_mbps = cap_mbps;
  opts.file_disk_write_mbps = cap_mbps;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  RunResult r;
  if (!client || !server) return r;

  const double cpu0 = cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  auto send_done = std::async(std::launch::async,
                              [&] { return client->sendfile(src, 0, bytes); });
  r.bytes = server->recvfile(dst, bytes);
  send_done.get();
  r.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.cpu_s = cpu_seconds() - cpu0;
  client->close();
  server->close();
  r.exact = r.bytes == bytes && file_sum64(dst) == src_sum;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Blast file", "pipelined zero-copy disk datapath vs "
                      "legacy staged sendfile (disk-rate-throttled)", scale);

  // Quick mode keeps CI under ~20 s of transfer; --full streams multiple
  // gigabytes so the steady state dominates startup.  512 MB is the floor
  // below which the 16 MB send buffer plus socket buffers can absorb a
  // serialized disk stage's stalls and the two paths converge.  The cap
  // does NOT scale with --full: the deployment shape is the disk as the
  // bottleneck, and raising the cap toward what a small CI host can move
  // turns the bench into a CPU-saturation contest where neither path
  // tracks its throttle — full mode scales bytes, not rate.
  const double cap_mbps = 600.0;
  const std::uint64_t bytes =
      scale.full ? (std::uint64_t{3} << 30) : (512ULL << 20);
  const double flush_s = scale.seconds(10.0, 60.0);

  const auto dir = fs::temp_directory_path() / "udtr_blast";
  fs::create_directories(dir);
  const auto src = (dir / "src.bin").string();
  const auto dst = (dir / "dst.bin").string();
  {
    std::ofstream f{src, std::ios::binary};
    std::mt19937_64 rng{7};
    std::vector<char> block(1 << 20);
    for (std::uint64_t off = 0; off < bytes; off += block.size()) {
      for (auto& c : block) c = static_cast<char>(rng());
      f.write(block.data(), static_cast<std::streamsize>(block.size()));
    }
  }
  const std::uint64_t src_sum = file_sum64(src);

  // CPU on loopback carries a softirq-accounting lottery: the kernel
  // charges receive-path processing to whichever thread it happens to
  // interrupt, so a single run of either path can absorb an extra
  // core-second per GB of pure steal.  Each path therefore runs twice and
  // is scored on its better run — the claim is what the datapath costs,
  // not where the scheduler landed softirqs this time.  Byte-exactness
  // must hold on every run.
  const auto best_of_two = [&](bool pipelined) {
    RunResult a = run_transfer(pipelined, cap_mbps, bytes, src, dst, src_sum,
                               flush_s);
    fs::remove(dst);
    RunResult b = run_transfer(pipelined, cap_mbps, bytes, src, dst, src_sum,
                               flush_s);
    fs::remove(dst);
    RunResult r = a.cpu_s <= b.cpu_s ? a : b;
    r.wall_s = std::min(a.wall_s, b.wall_s);
    r.exact = a.exact && b.exact;
    return r;
  };
  const RunResult pipe = best_of_two(true);
  const RunResult legacy = best_of_two(false);

  const double gb = static_cast<double>(bytes) / 1e9;
  const double pipe_mbps = static_cast<double>(pipe.bytes) * 8 / pipe.wall_s / 1e6;
  const double legacy_mbps =
      static_cast<double>(legacy.bytes) * 8 / legacy.wall_s / 1e6;
  const double pipe_cpu_gb = pipe.cpu_s / gb;
  const double legacy_cpu_gb = legacy.cpu_s / gb;
  const double tracking = pipe_mbps / cap_mbps;

  std::printf("%-10s %14s %14s %12s %14s\n", "path", "achieved Mb/s",
              "of cap", "CPU s/GB", "byte-exact");
  std::printf("%-10s %14.1f %13.1f%% %12.3f %14s\n", "pipelined", pipe_mbps,
              tracking * 100, pipe_cpu_gb, pipe.exact ? "yes" : "NO");
  std::printf("%-10s %14.1f %14s %12.3f %14s\n", "legacy", legacy_mbps, "-",
              legacy_cpu_gb, legacy.exact ? "yes" : "NO");
  std::printf("\ndisk cap %0.f Mb/s at both ends; pipeline CPU/GB is %.0f%% "
              "of legacy.\n", cap_mbps,
              legacy_cpu_gb > 0 ? pipe_cpu_gb / legacy_cpu_gb * 100 : 0.0);

  // Structural gates: cap tracking >= 90% (the Table-2 deployment claim)
  // and the committed CPU margin — pipeline at most 75% of legacy CPU/GB.
  const bool tracks = tracking >= 0.90;
  const bool beats = legacy_cpu_gb > 0 && pipe_cpu_gb <= 0.75 * legacy_cpu_gb;
  udtr::bench::write_json(
      scale.json_path,
      {{"blast_cap_mbps", cap_mbps},
       {"blast_achieved_mbps", pipe_mbps},
       {"blast_legacy_achieved_mbps", legacy_mbps},
       {"blast_cpu_s_per_gb_pipelined", pipe_cpu_gb},
       {"blast_cpu_s_per_gb_legacy", legacy_cpu_gb},
       {"blast_tracks_cap", tracks ? 1.0 : 0.0},
       {"blast_cpu_beats_legacy", beats ? 1.0 : 0.0},
       {"blast_bytes_exact", pipe.exact && legacy.exact ? 1.0 : 0.0}});

  fs::remove_all(dir);
  return tracks && beats && pipe.exact && legacy.exact ? 0 : 1;
}
