// Fig. 11: single UDT flow performance on the three testbed paths
// (emulated): Chicago local (1 Gb/s, 0.04 ms), Chicago->Ottawa (OC-12
// 622 Mb/s, 16 ms), Chicago->Amsterdam (1 Gb/s, 110 ms).  The paper reports
// 940 / 580 / 940 Mb/s for UDT, while tuned TCP reached only ~128 Mb/s on
// the 110 ms path — reproduced here as the TCP row.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Path {
  const char* name;
  double mbps;
  double rtt_s;
  double paper_udt;
  // Residual random loss on the full-scale path (substitution S3 in
  // EXPERIMENTS.md): ~1e-6/packet on the WAN spans, none in the lab.
  double loss_full;
};

std::vector<double> run_series(bool udt, const Path& p, double seconds,
                               double scale_factor) {
  Simulator sim;
  const Bandwidth link = Bandwidth::mbps(p.mbps * scale_factor);
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, p.rtt_s, 1500)));
  DumbbellConfig cfg{link, queue};
  // Real WAN paths carry a residual random loss (bit errors, cross-traffic
  // noise) — the reason single-flow TCP could not fill the Amsterdam path
  // no matter the tuning (§2.1, §5.1).  When the link is scaled down, the
  // loss is scaled up by the squared BDP ratio so the loss-per-window (and
  // hence the TCP ceiling relative to the link) is preserved.
  const double bdp_full =
      bdp_packets(Bandwidth::mbps(p.mbps), p.rtt_s, 1500);
  const double bdp_here = std::max(bdp_packets(link, p.rtt_s, 1500), 1.0);
  cfg.loss_rate =
      std::min(p.loss_full * (bdp_full / bdp_here) * (bdp_full / bdp_here),
               1e-4);
  Dumbbell net{sim, cfg};
  if (udt) {
    net.add_udt_flow({}, p.rtt_s);
  } else {
    net.add_tcp_flow({}, p.rtt_s);
  }
  ThroughputSampler sampler{
      sim,
      [&]() -> std::uint64_t {
        return udt ? net.udt_receiver(0).stats().delivered
                   : net.tcp_receiver(0).stats().delivered;
      },
      1500, 1.0};
  sim.run_until(seconds);
  return sampler.samples_mbps();
}

double steady_mean(const std::vector<double>& s) {
  if (s.size() < 4) return 0.0;
  double sum = 0.0;
  for (std::size_t i = s.size() / 2; i < s.size(); ++i) sum += s[i];
  return sum / static_cast<double>(s.size() - s.size() / 2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 11", "single-flow throughput on the three "
                      "testbed paths", scale);

  const double factor = scale.full ? 1.0 : 0.3;  // link-rate scale-down
  const double seconds = scale.seconds(20, 60);
  const Path paths[] = {
      {"Chicago  (1G, 0.04ms)", 1000, 0.00004, 940, 0.0},
      {"Ottawa   (OC-12, 16ms)", 622, 0.016, 580, 1e-7},
      {"Amsterdam(1G, 110ms) ", 1000, 0.110, 940, 1e-6},
  };

  for (const Path& p : paths) {
    const auto udt_series = run_series(true, p, seconds, factor);
    std::printf("\n%s  link=%.0f Mb/s\n  UDT t-series (Mb/s):", p.name,
                p.mbps * factor);
    for (std::size_t i = 0; i < udt_series.size(); i += 2) {
      std::printf(" %.0f", udt_series[i]);
    }
    std::printf("\n  UDT steady state: %.1f Mb/s (%.0f%% of link; paper: "
                "%.0f of %.0f)\n",
                steady_mean(udt_series),
                100.0 * steady_mean(udt_series) / (p.mbps * factor),
                p.paper_udt, p.mbps);
  }

  // TCP comparison on the long-RTT path (paper: ~128 Mb/s after tuning).
  const Path& amsterdam = paths[2];
  const auto tcp_series = run_series(false, amsterdam, seconds, factor);
  std::printf("\nTCP on %s: steady state %.1f Mb/s (%.0f%% of link; paper: "
              "~128 Mb/s of 1000)\n",
              amsterdam.name, steady_mean(tcp_series),
              100.0 * steady_mean(tcp_series) / (amsterdam.mbps * factor));
  return 0;
}
