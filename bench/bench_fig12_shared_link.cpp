// Fig. 12: three concurrent flows from one Chicago host share its 1 Gb/s
// egress, heading to a local machine (0.04 ms), Ottawa over OC-12 (622 Mb/s,
// 16 ms), and Amsterdam (1 Gb/s, 110 ms).  UDT splits the shared egress
// almost evenly (~325 Mb/s each, paper) despite the heterogeneous RTTs and
// secondary bottleneck; TCP gives 754 / 155 / 27 Mb/s.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "netsim/demux.hpp"
#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/tcp_agent.hpp"
#include "netsim/udt_agent.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Dest {
  const char* name;
  double path_mbps;  // secondary (per-destination) capacity
  double rtt_s;
  double paper_udt;
  double paper_tcp;
};

struct Results {
  std::vector<double> mbps;
};

Results run(bool udt, std::span<const Dest> dests, double egress_mbps,
            double seconds, double factor) {
  Simulator sim;
  const Bandwidth egress_bw = Bandwidth::mbps(egress_mbps * factor);
  Link egress{sim, egress_bw, 0.0,
              static_cast<std::size_t>(
                  std::max(1000.0, bdp_packets(egress_bw, 0.110, 1500)))};
  FlowDemux demux;
  egress.set_next(&demux);

  std::vector<std::unique_ptr<Link>> second;
  std::vector<std::unique_ptr<DelayLink>> delays, reverses;
  std::vector<std::unique_ptr<UdtSender>> usnd;
  std::vector<std::unique_ptr<UdtReceiver>> urcv;
  std::vector<std::unique_ptr<TcpSender>> tsnd;
  std::vector<std::unique_ptr<TcpReceiver>> trcv;

  int flow_id = 1;
  for (const Dest& d : dests) {
    const Bandwidth path_bw = Bandwidth::mbps(d.path_mbps * factor);
    auto hop = std::make_unique<Link>(
        sim, path_bw, d.rtt_s / 2.0,
        static_cast<std::size_t>(
            std::max(1000.0, bdp_packets(path_bw, d.rtt_s, 1500))));
    auto rev = std::make_unique<DelayLink>(sim, d.rtt_s / 2.0);

    if (udt) {
      UdtFlowConfig cfg;
      cfg.flow_id = flow_id;
      auto snd = std::make_unique<UdtSender>(sim, cfg);
      auto rcv = std::make_unique<UdtReceiver>(sim, cfg);
      snd->set_out(&egress);
      demux.route(flow_id, hop.get());
      hop->set_next(rcv.get());
      rcv->set_out(rev.get());
      rev->set_next(snd.get());
      snd->start();
      rcv->start();
      usnd.push_back(std::move(snd));
      urcv.push_back(std::move(rcv));
    } else {
      TcpFlowConfig cfg;
      cfg.flow_id = flow_id;
      auto snd = std::make_unique<TcpSender>(sim, cfg);
      auto rcv = std::make_unique<TcpReceiver>(sim, cfg);
      snd->set_out(&egress);
      demux.route(flow_id, hop.get());
      hop->set_next(rcv.get());
      rcv->set_out(rev.get());
      rev->set_next(snd.get());
      snd->start();
      tsnd.push_back(std::move(snd));
      trcv.push_back(std::move(rcv));
    }
    second.push_back(std::move(hop));
    reverses.push_back(std::move(rev));
    ++flow_id;
  }

  sim.run_until(seconds);
  Results out;
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const std::uint64_t delivered =
        udt ? urcv[i]->stats().delivered : trcv[i]->stats().delivered;
    out.mbps.push_back(average_mbps(delivered, 1500, 0.0, seconds));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 12", "three flows sharing a 1 Gb/s egress",
                      scale);

  const double factor = scale.full ? 1.0 : 0.3;
  const double seconds = scale.seconds(30, 100);
  const Dest dests[] = {
      {"Chicago  (1G, 0.04ms)", 1000, 0.00004, 325, 754},
      {"Ottawa   (OC-12, 16ms)", 622, 0.016, 325, 155},
      {"Amsterdam(1G, 110ms) ", 1000, 0.110, 325, 27},
  };

  const Results u = run(true, dests, 1000, seconds, factor);
  const Results t = run(false, dests, 1000, seconds, factor);

  std::printf("%-24s %12s %12s %14s %14s\n", "destination", "UDT Mb/s",
              "TCP Mb/s", "paper UDT", "paper TCP");
  for (std::size_t i = 0; i < 3; ++i) {
    std::printf("%-24s %12.1f %12.1f %14.0f %14.0f\n", dests[i].name,
                u.mbps[i], t.mbps[i], dests[i].paper_udt * factor,
                dests[i].paper_tcp * factor);
  }
  std::printf("\npaper shape: UDT splits the shared egress ~evenly; TCP's "
              "shares follow 1/RTT, starving the long path.\n");
  return 0;
}
