// Fig. 13: aggregate throughput of small TCP transfers (1 MB each, five at
// a time, back to back) on the 1 Gb/s / 110 ms path, as the number of
// background bulk UDT flows grows from 0 to 10.  The paper's point: adding
// UDT background load degrades the short TCP flows *gently* (69 -> 48 Mb/s),
// rather than starving them.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Out {
  double aggregate_mbps;
  int completed_transfers;
};

Out run(int udt_flows, Bandwidth link, double seconds) {
  Simulator sim;
  const double rtt = 0.110;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt, 1500)));
  Dumbbell net{sim, {link, queue}};
  for (int i = 0; i < udt_flows; ++i) net.add_udt_flow({}, rtt);

  constexpr std::uint64_t kTransferPackets = 700;  // ~1 MB at 1500 B
  constexpr int kParallel = 5;
  int completed = 0;

  // Each finished transfer immediately launches its successor.
  std::function<void(double)> spawn = [&](double start) {
    TcpFlowConfig cfg;
    cfg.total_packets = kTransferPackets;
    cfg.start_time = start;
    const std::size_t idx = net.add_tcp_flow(cfg, rtt);
    net.tcp_sender(idx).set_on_finish([&, idx] {
      ++completed;
      spawn(sim.now());
    });
  };
  for (int i = 0; i < kParallel; ++i) spawn(0.01 * i);

  sim.run_until(seconds);
  std::uint64_t delivered = 0;
  for (std::size_t i = 0; i < net.tcp_flows(); ++i) {
    delivered += net.tcp_receiver(i).stats().delivered;
  }
  return Out{average_mbps(delivered, 1500, 0.0, seconds), completed};
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 13", "small-TCP aggregate vs background UDT "
                      "flows (1 Gb/s, 110 ms)", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(300, 1000));
  const double seconds = scale.seconds(30, 120);
  const int counts[] = {0, 1, 2, 4, 7, 10};

  std::printf("%12s %18s %14s\n", "#UDT flows", "TCP aggregate Mb/s",
              "1MB transfers");
  double baseline = 0.0;
  for (const int k : counts) {
    const Out o = run(k, link, seconds);
    if (k == 0) baseline = o.aggregate_mbps;
    std::printf("%12d %18.1f %14d\n", k, o.aggregate_mbps,
                o.completed_transfers);
  }
  std::printf("\npaper: decays gently from 69 Mb/s (no UDT) to 48 Mb/s "
              "(10 UDT flows); baseline here %.1f Mb/s at this scale.\n",
              baseline);
  return 0;
}
