// Fig. 14: CPU utilization of UDT vs TCP for memory-to-memory transfer.
// Runs the real UDT library over loopback UDP and a kernel-TCP loopback
// transfer of the same duration, sampling process CPU time (getrusage).
// The paper reports UDT averaging 43% (send) / 52% (receive) vs TCP's
// 33% / 35% on dual Xeons — user-level protocol + busy-wait pacing costs
// some extra CPU, which is the acceptable-overhead claim being reproduced.
// Both endpoints run in this process, so the reported figure is the
// combined sender+receiver utilization per transport.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "udt/socket.hpp"

namespace {

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) * 1e-6;
}

struct Measured {
  double mbps;
  double cpu_percent;  // of one core
};

// Both transports are rate-capped near GigE speed so the CPU comparison is
// per-transport at matched throughput, as in the paper's testbed.
constexpr double kTargetMbps = 950.0;

Measured run_udt(double seconds, int io_batch, bool zero_copy = true,
                 udtr::udt::IoBackend backend = udtr::udt::IoBackend::kMmsg) {
  using namespace udtr::udt;
  SocketOptions opts;
  opts.max_bandwidth_mbps = kTargetMbps;
  opts.io_batch = io_batch;
  opts.zero_copy = zero_copy;
  opts.io_backend = backend;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  if (!client || !server) return {0.0, 0.0};

  std::atomic<bool> stop{false};
  auto snd = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x42);
    while (!stop) client->send(block);
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{100});
  });

  const double cpu0 = cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const double cpu = cpu_seconds() - cpu0;
  const auto bytes = server->perf().bytes_delivered;
  stop = true;
  client->close();
  server->close();
  snd.get();
  rcv.get();
  return {static_cast<double>(bytes) * 8.0 / wall / 1e6,
          100.0 * cpu / wall};
}

Measured run_kernel_tcp(double seconds) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0 ||
      ::listen(lfd, 1) != 0) {
    return {0.0, 0.0};
  }
  socklen_t len = sizeof sa;
  ::getsockname(lfd, reinterpret_cast<sockaddr*>(&sa), &len);

  const int cfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (::connect(cfd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    return {0.0, 0.0};
  }
  const int sfd = ::accept(lfd, nullptr, nullptr);
  ::close(lfd);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> received{0};
  auto snd = std::async(std::launch::async, [&] {
    // Pace the TCP sender to the same target rate as UDT.
    std::vector<char> block(1 << 20, 0x42);
    const auto block_time = std::chrono::duration<double>(
        static_cast<double>(block.size()) * 8.0 / (kTargetMbps * 1e6));
    auto next = std::chrono::steady_clock::now();
    while (!stop) {
      if (::send(cfd, block.data(), block.size(), MSG_NOSIGNAL) <= 0) break;
      next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          block_time);
      std::this_thread::sleep_until(next);
    }
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<char> buf(1 << 20);
    while (!stop) {
      const ssize_t n = ::recv(sfd, buf.data(), buf.size(), 0);
      if (n <= 0) break;
      received += static_cast<std::uint64_t>(n);
    }
  });

  const double cpu0 = cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const double cpu = cpu_seconds() - cpu0;
  stop = true;
  ::shutdown(cfd, SHUT_RDWR);
  ::shutdown(sfd, SHUT_RDWR);
  snd.get();
  rcv.get();
  ::close(cfd);
  ::close(sfd);
  return {static_cast<double>(received.load()) * 8.0 / wall / 1e6,
          100.0 * cpu / wall};
}

}  // namespace

// CPU per Gb/s of goodput: the figure of merit that batching must improve.
double cpu_per_gbps(const Measured& m) {
  return m.mbps > 0 ? m.cpu_percent / (m.mbps / 1000.0) : 0.0;
}

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 14", "CPU utilization, UDT vs kernel TCP "
                      "(memory-memory over loopback)", scale);
  const double seconds = scale.seconds(4, 15);

  const bool uring = udtr::udt::UdpChannel::uring_supported();
  const Measured udt = run_udt(seconds, /*io_batch=*/16);
  // Third datapath column: the same zero-copy transfer on the io_uring
  // backend (batched sendmsg SQEs + multishot recvmsg on a registered
  // buffer ring).  Zeroed out where the kernel lacks io_uring.
  const Measured udt_uring =
      uring ? run_udt(seconds, /*io_batch=*/16, /*zero_copy=*/true,
                      udtr::udt::IoBackend::kUring)
            : Measured{0.0, 0.0};
  // The PR 2 baseline: batched syscalls but the staging/copying datapath
  // (no iovec gather, no slab, no GSO/GRO) — what zero-copy is measured
  // against.
  const Measured udt_legacy =
      run_udt(seconds, /*io_batch=*/16, /*zero_copy=*/false);
  const Measured udt1 = run_udt(seconds, /*io_batch=*/1);
  const Measured tcp = run_kernel_tcp(seconds);

  std::printf("%-24s %10s %16s %14s\n", "transport", "Mb/s",
              "CPU%% (snd+rcv)", "CPU%%/Gb/s");
  if (uring) {
    std::printf("%-24s %10.0f %16.1f %14.1f\n", "UDT (uring, b=16)",
                udt_uring.mbps, udt_uring.cpu_percent,
                cpu_per_gbps(udt_uring));
  } else {
    std::printf("%-24s %10s\n", "UDT (uring, b=16)", "SKIPPED (no io_uring)");
  }
  std::printf("%-24s %10.0f %16.1f %14.1f\n", "UDT (mmsg zc, b=16)",
              udt.mbps, udt.cpu_percent, cpu_per_gbps(udt));
  std::printf("%-24s %10.0f %16.1f %14.1f\n", "UDT (staging, b=16)",
              udt_legacy.mbps, udt_legacy.cpu_percent,
              cpu_per_gbps(udt_legacy));
  std::printf("%-24s %10.0f %16.1f %14.1f\n", "UDT (batch=1)", udt1.mbps,
              udt1.cpu_percent, cpu_per_gbps(udt1));
  std::printf("%-24s %10.0f %16.1f %14.1f\n", "kernel TCP", tcp.mbps,
              tcp.cpu_percent, cpu_per_gbps(tcp));
  const double save = cpu_per_gbps(udt1) > 0
      ? 100.0 * (1.0 - cpu_per_gbps(udt) / cpu_per_gbps(udt1)) : 0.0;
  const double zc_save = cpu_per_gbps(udt_legacy) > 0
      ? 100.0 * (1.0 - cpu_per_gbps(udt) / cpu_per_gbps(udt_legacy)) : 0.0;
  const double uring_save = (uring && cpu_per_gbps(udt) > 0)
      ? 100.0 * (1.0 - cpu_per_gbps(udt_uring) / cpu_per_gbps(udt)) : 0.0;
  // Same-host CPU-cost ratio uring/mmsg, centered at 1.0 — unlike the
  // saving percent (centered at 0) a relative tolerance band works on it,
  // so it is the gateable baseline key for the uring column.
  const double uring_ratio = (uring && cpu_per_gbps(udt) > 0)
      ? cpu_per_gbps(udt_uring) / cpu_per_gbps(udt) : 0.0;
  std::printf("\nbatched I/O (sendmmsg/recvmmsg, batch=16) vs per-packet "
              "syscalls (batch=1): %.1f%% less CPU per Gb/s.\n", save);
  std::printf("zero-copy + GSO/GRO vs the staging datapath at batch=16: "
              "%.1f%% less CPU per Gb/s.\n", zc_save);
  if (uring) {
    std::printf("io_uring datapath vs mmsg zero-copy at batch=16: %.1f%% "
                "less CPU per Gb/s.\n", uring_save);
  }
  std::printf("both transports are paced to ~%.0f Mb/s so CPU is compared "
              "at matched throughput.\npaper (at ~970 Mb/s): UDT 43%%/52%% "
              "vs TCP 33%%/35%% per side — user-level UDT costs moderately "
              "more CPU than kernel TCP; absolute numbers depend on host "
              "speed.\n", kTargetMbps);
  udtr::bench::write_json(scale.json_path, {
      {"udt_batched_mbps", udt.mbps},
      {"udt_batched_cpu_percent", udt.cpu_percent},
      {"udt_batched_cpu_per_gbps", cpu_per_gbps(udt)},
      {"udt_unbatched_mbps", udt1.mbps},
      {"udt_unbatched_cpu_percent", udt1.cpu_percent},
      {"udt_unbatched_cpu_per_gbps", cpu_per_gbps(udt1)},
      {"udt_legacy_batched_mbps", udt_legacy.mbps},
      {"udt_legacy_batched_cpu_percent", udt_legacy.cpu_percent},
      {"udt_legacy_batched_cpu_per_gbps", cpu_per_gbps(udt_legacy)},
      {"zerocopy_cpu_per_gbps_saving_percent", zc_save},
      {"tcp_mbps", tcp.mbps},
      {"tcp_cpu_percent", tcp.cpu_percent},
      {"tcp_cpu_per_gbps", cpu_per_gbps(tcp)},
      {"batching_cpu_per_gbps_saving_percent", save},
      {"uring_supported", uring ? 1.0 : 0.0},
      {"udt_uring_mbps", udt_uring.mbps},
      {"udt_uring_cpu_percent", udt_uring.cpu_percent},
      {"udt_uring_cpu_per_gbps", cpu_per_gbps(udt_uring)},
      {"uring_cpu_per_gbps_saving_percent", uring_save},
      {"uring_vs_mmsg_cpu_per_gbps_ratio", uring_ratio},
  });
  return 0;
}
