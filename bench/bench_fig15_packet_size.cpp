// Fig. 15: UDT throughput vs packet size (path MTU 1500).
// The paper measured this on the real stack and notes "in practice, this is
// highly affected by the protocol stack implementation of the OS" — so this
// bench also runs the real library over loopback.  Two effects shape the
// curve: below the MTU, fixed per-packet costs (headers, syscalls,
// timestamping) penalize small packets; above it, IP fragmentation sets in —
// emulated here by an injected per-packet loss of 1-(1-p)^nfrags, since any
// lost fragment destroys the whole UDT packet ("segmentation collapse").
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "udt/socket.hpp"

namespace {

constexpr int kMtu = 1500;       // emulated path MTU (IP packet size)
constexpr int kIpUdpHdr = 28;
constexpr double kFragLoss = 2e-3;  // per-fragment loss on the "path"

struct Out {
  double goodput_mbps;
  std::uint64_t retransmitted;
};

Out run(int payload_bytes, double seconds) {
  using namespace udtr::udt;
  const int ip_payload = payload_bytes + 16 + kIpUdpHdr;
  const int frags = (ip_payload + kMtu - 1) / kMtu;
  const double pkt_loss = 1.0 - std::pow(1.0 - kFragLoss, frags);

  SocketOptions opts;
  opts.mss_bytes = payload_bytes;
  opts.loss_injection = pkt_loss;
  opts.loss_seed = 11;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  if (!client || !server) return {0.0, 0};

  std::atomic<bool> stop{false};
  auto snd = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x42);
    while (!stop) client->send(block);
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{100});
  });
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const auto bytes = server->perf().bytes_delivered;
  const auto rtx = client->perf().retransmitted;
  stop = true;
  client->close();
  server->close();
  snd.get();
  rcv.get();
  return {static_cast<double>(bytes) * 8.0 / seconds / 1e6, rtx};
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 15", "throughput vs UDT packet size on the real "
                      "stack (MTU 1500)", scale);
  const double seconds = scale.seconds(3, 8);
  const int sizes[] = {204, 508, 1004, 1456, 2944, 4464, 8948};

  std::printf("%14s %8s %14s %14s\n", "payload (B)", "frags",
              "goodput Mb/s", "retransmits");
  for (const int s : sizes) {
    const int frags = (s + 16 + kIpUdpHdr + kMtu - 1) / kMtu;
    const Out o = run(s, seconds);
    std::printf("%14d %8d %14.0f %14llu\n", s, frags, o.goodput_mbps,
                (unsigned long long)o.retransmitted);
  }
  std::printf("\npaper: throughput peaks at the path MTU (1500 B) — smaller "
              "packets pay per-packet overhead, larger ones pay "
              "fragmentation overhead and loss amplification.  (The paper "
              "also notes a Windows-stack artifact at 1024 B that a Linux "
              "host does not show.)\n");
  return 0;
}
