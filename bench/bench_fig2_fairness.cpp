// Fig. 2: Jain's fairness index of UDT vs TCP.
// 10 concurrent homogeneous flows on one DropTail bottleneck
// (queue = max{1000, BDP}), swept across RTT.  The paper shows UDT pinned
// near 1.0 at every RTT while TCP's index decays once the BDP outgrows what
// AIMD-1/cwnd can keep synchronized.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

double fairness_run(bool udt, Bandwidth link, double rtt_s, int flows,
                    double seconds) {
  Simulator sim;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt_s, 1500)));
  Dumbbell net{sim, {link, queue}};
  for (int i = 0; i < flows; ++i) {
    if (udt) {
      net.add_udt_flow({}, rtt_s);
    } else {
      net.add_tcp_flow({}, rtt_s);
    }
  }
  // Measure over the second half of the run so slow-start warmup (long at
  // large RTTs) does not dominate the index.
  const auto delivered = [&](int i) {
    return udt ? net.udt_receiver(static_cast<std::size_t>(i)).stats().delivered
               : net.tcp_receiver(static_cast<std::size_t>(i)).stats().delivered;
  };
  sim.run_until(seconds / 2);
  std::vector<std::uint64_t> at_half;
  for (int i = 0; i < flows; ++i) at_half.push_back(delivered(i));
  sim.run_until(seconds);
  std::vector<double> tput;
  for (int i = 0; i < flows; ++i) {
    tput.push_back(average_mbps(delivered(i) - at_half[static_cast<std::size_t>(i)],
                                1500, seconds / 2, seconds));
  }
  return jain_fairness_index(tput);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 2", "fairness index, 10 flows, UDT vs TCP", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);
  const int flows = 10;
  const double rtts_ms[] = {1, 10, 100, 500, 1000};

  std::printf("%10s %12s %12s\n", "RTT (ms)", "UDT index", "TCP index");
  for (const double rtt_ms : rtts_ms) {
    const double u = fairness_run(true, link, rtt_ms * 1e-3, flows, seconds);
    const double t = fairness_run(false, link, rtt_ms * 1e-3, flows, seconds);
    std::printf("%10.0f %12.4f %12.4f\n", rtt_ms, u, t);
  }
  std::printf("\npaper: UDT ~0.99 at all RTTs; TCP near 1.0 at small RTT, "
              "degrading as RTT (BDP) grows.\n");
  return 0;
}
