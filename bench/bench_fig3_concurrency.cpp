// Fig. 3: UDT performance vs number of parallel flows.
// Reports aggregate bandwidth utilization and the standard deviation of
// per-flow throughput as the flow count grows (paper: oscillations grow with
// concurrency — UDT targets a small number of bulk sources, §3.6).
//
// On top of the simulated sweep, a real-socket section measures the
// loopback stack as the flow count grows, in both connection modes: the
// multiplexed default (all flows share one UDP port and one pair of service
// threads per endpoint) and the legacy exclusive-port mode (two dedicated
// threads per socket).  The paper's §3.6 concern — per-connection cost
// limits concurrency — is exactly what the multiplexer removes.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"
#include "udt/multiplexer.hpp"
#include "udt/poller.hpp"
#include "udt/socket.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

double cpu_seconds() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
         1e-6 * static_cast<double>(ru.ru_utime.tv_usec +
                                    ru.ru_stime.tv_usec);
}

int thread_count() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("Threads:", 0) == 0) return std::atoi(line.c_str() + 8);
  }
  return -1;
}

struct RealRun {
  double goodput_mbps = 0.0;
  int threads = 0;        // OS threads serving the flows (delta over idle)
  double cpu_percent = 0.0;  // of one core, over the transfer window
  bool ok = false;
};

// `flows` loopback connections, every client buffering one payload and the
// server side drained from a single Poller loop; both endpoints live in
// this process, so `threads` counts the service cost of BOTH sides.
RealRun run_real(int flows, bool exclusive, std::size_t total_bytes,
                 int mux_shards = 0) {
  using namespace udtr::udt;
  RealRun out;
  const std::size_t per_flow = std::clamp<std::size_t>(
      total_bytes / static_cast<std::size_t>(flows), 64 << 10, 4 << 20);

  SocketOptions opts;
  opts.exclusive_port = exclusive;
  opts.mux_shards = mux_shards;
  opts.snd_buffer_bytes = per_flow;  // send() returns once buffered
  opts.rcv_buffer_pkts = 256;

  const int threads_idle = thread_count();
  auto listener = Socket::listen(0, opts);
  if (!listener) return out;
  const std::uint16_t port = listener->local_port();

  std::vector<std::unique_ptr<Socket>> clients(
      static_cast<std::size_t>(flows));
  auto connector = std::async(std::launch::async, [&] {
    for (auto& c : clients) {
      c = Socket::connect("127.0.0.1", port, opts);
      if (!c) return false;
    }
    return true;
  });
  std::vector<std::unique_ptr<Socket>> servers;
  servers.reserve(static_cast<std::size_t>(flows));
  for (int i = 0; i < flows; ++i) {
    auto s = listener->accept(std::chrono::seconds{30});
    if (!s) return out;
    servers.push_back(std::move(s));
  }
  if (!connector.get()) return out;
  out.threads = thread_count() - threads_idle;

  const std::vector<std::uint8_t> payload(per_flow, 0x5a);
  const std::size_t expected =
      per_flow * static_cast<std::size_t>(flows);

  const double cpu0 = cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  for (auto& c : clients) {
    if (c->send(payload) != payload.size()) return out;
  }
  Poller poller;
  for (auto& s : servers) poller.add(s.get(), kPollIn);
  std::vector<PollEvent> events(servers.size());
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t drained = 0;
  const auto deadline = t0 + std::chrono::seconds{120};
  while (drained < expected && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = poller.wait(events, std::chrono::milliseconds{500});
    for (std::size_t e = 0; e < n; ++e) {
      drained += events[e].sock->recv(buf, std::chrono::milliseconds{0});
    }
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const double cpu = cpu_seconds() - cpu0;
  if (drained < expected || wall <= 0.0) return out;
  out.goodput_mbps = static_cast<double>(drained) * 8.0 / wall / 1e6;
  out.cpu_percent = 100.0 * cpu / wall;
  out.ok = true;
  return out;
}

// Idle-fleet timer cost: `flows` established-but-silent connections, and
// the number of per-socket timer sweeps the server-side multiplexer runs
// over a one-second window.  The legacy full walk (UDTR_FULL_SWEEP=1)
// sweeps every socket every millisecond; the timer wheel only fires the
// entries actually due, so idle sockets park at EXP cadence.
struct IdleSweepRun {
  double sweeps_per_sock_per_s = 0.0;
  bool ok = false;
};

IdleSweepRun run_idle_sweep(int flows, bool full_walk) {
  using namespace udtr::udt;
  IdleSweepRun out;
  // The sweep mode is read when the multiplexer opens, and a distinct syn_s
  // per mode keeps for_client() from reusing a multiplexer opened under the
  // other mode.
  if (full_walk) {
    ::setenv("UDTR_FULL_SWEEP", "1", 1);
  } else {
    ::unsetenv("UDTR_FULL_SWEEP");
  }
  SocketOptions opts;
  opts.snd_buffer_bytes = 64 << 10;
  opts.rcv_buffer_pkts = 128;
  opts.syn_s = full_walk ? 0.0101 : 0.0102;
  {
    auto listener = Socket::listen(0, opts);
    if (!listener) return out;
    auto connector = std::async(std::launch::async, [&] {
      std::vector<std::unique_ptr<Socket>> clients;
      for (int i = 0; i < flows; ++i) {
        auto c = Socket::connect("127.0.0.1", listener->local_port(), opts);
        if (!c) break;
        clients.push_back(std::move(c));
      }
      return clients;
    });
    std::vector<std::unique_ptr<Socket>> servers;
    for (int i = 0; i < flows; ++i) {
      auto s = listener->accept(std::chrono::seconds{30});
      if (!s) return out;
      servers.push_back(std::move(s));
    }
    auto clients = connector.get();
    if (static_cast<int>(clients.size()) != flows) return out;
    auto mux = servers.front()->multiplexer();
    if (!mux) return out;
    const std::uint64_t before = mux->timer_socket_sweeps();
    const auto t0 = std::chrono::steady_clock::now();
    std::this_thread::sleep_for(std::chrono::seconds{1});
    const double window = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const std::uint64_t swept = mux->timer_socket_sweeps() - before;
    out.sweeps_per_sock_per_s =
        static_cast<double>(swept) / flows / window;
    out.ok = true;
  }
  ::unsetenv("UDTR_FULL_SWEEP");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 3", "UDT multiplexing: stddev vs #flows", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(20, 100);
  const std::vector<int> flow_counts =
      scale.full ? std::vector<int>{2, 10, 40, 100, 200, 400}
                 : std::vector<int>{2, 10, 40, 100};
  const double rtts_ms[] = {1, 10, 100};

  std::printf("%8s", "#flows");
  for (const double r : rtts_ms) std::printf("   rtt=%-4.0fms sd | util%%", r);
  std::printf("\n");

  for (const int n : flow_counts) {
    std::printf("%8d", n);
    for (const double rtt_ms : rtts_ms) {
      Simulator sim;
      const auto queue = static_cast<std::size_t>(
          std::max(1000.0, bdp_packets(link, rtt_ms * 1e-3, 1500)));
      Dumbbell net{sim, {link, queue}};
      for (int i = 0; i < n; ++i) net.add_udt_flow({}, rtt_ms * 1e-3);
      sim.run_until(seconds);
      std::vector<double> tput;
      double total = 0.0;
      for (int i = 0; i < n; ++i) {
        const double mbps = average_mbps(
            net.udt_receiver(static_cast<std::size_t>(i)).stats().delivered,
            1500, 0.0, seconds);
        tput.push_back(mbps);
        total += mbps;
      }
      std::printf("   %10.3f | %5.1f", sample_stddev(tput),
                  100.0 * total / link.mbits_per_sec());
    }
    std::printf("\n");
  }
  std::printf("\npaper: stddev (oscillation) grows with concurrency while "
              "aggregate utilization stays high; UDT is not designed for "
              "high-concurrency regimes.\n");

  // --- real loopback sockets: multiplexed vs per-socket threads ----------
  const std::size_t total_bytes =
      scale.full ? (std::size_t{128} << 20) : (std::size_t{32} << 20);
  const std::vector<int> real_flows = {1, 8, 64, 512};
  // The legacy mode spends two threads (and one UDP port) per socket on
  // each side; 512 flows would need 2048 service threads in this process,
  // so its sweep stops at 64 — which is itself the point of the figure.
  const int exclusive_cap = 64;

  std::printf("\nreal loopback sockets (%zu MB aggregate per run):\n",
              total_bytes >> 20);
  std::printf("%8s %12s %22s %22s\n", "", "", "multiplexed", "exclusive-port");
  std::printf("%8s %12s %9s %7s %4s %9s %7s %4s\n", "#flows", "", "Mb/s",
              "cpu%", "thr", "Mb/s", "cpu%", "thr");
  std::vector<std::pair<std::string, double>> json;
  for (const int n : real_flows) {
    const RealRun mux = run_real(n, /*exclusive=*/false, total_bytes);
    RealRun excl;
    if (n <= exclusive_cap) excl = run_real(n, /*exclusive=*/true, total_bytes);
    std::printf("%8d %12s", n, "");
    if (mux.ok) {
      std::printf(" %9.0f %6.0f%% %4d", mux.goodput_mbps, mux.cpu_percent,
                  mux.threads);
      json.emplace_back("fig3_real_goodput_mbps_mux_" + std::to_string(n),
                        mux.goodput_mbps);
      json.emplace_back("fig3_real_cpu_pct_mux_" + std::to_string(n),
                        mux.cpu_percent);
      json.emplace_back("fig3_real_threads_mux_" + std::to_string(n),
                        mux.threads);
    } else {
      std::printf(" %9s %7s %4s", "FAIL", "-", "-");
    }
    if (excl.ok) {
      std::printf(" %9.0f %6.0f%% %4d", excl.goodput_mbps, excl.cpu_percent,
                  excl.threads);
      json.emplace_back("fig3_real_goodput_mbps_excl_" + std::to_string(n),
                        excl.goodput_mbps);
      json.emplace_back("fig3_real_cpu_pct_excl_" + std::to_string(n),
                        excl.cpu_percent);
      json.emplace_back("fig3_real_threads_excl_" + std::to_string(n),
                        excl.threads);
    } else {
      std::printf(" %9s %7s %4s", n > exclusive_cap ? "skip" : "FAIL", "-",
                  "-");
    }
    std::printf("\n");
  }
  std::printf("multiplexed flows share 4 service threads total (2 per "
              "endpoint); exclusive-port spends 4 per connection.\n");

  // --- shard sweep: the same fleet over 1 / 2 / 4 datapath shards --------
  // Each shard adds an rx/tx thread pair, its own reuseport fd and timer
  // wheel; on a multi-core host the 4-shard aggregate goodput at high flow
  // counts is the headline number (single-core hosts serialize the shards
  // and should show parity, not gains).
  const std::vector<int> shard_counts = {1, 2, 4};
  const std::vector<int> shard_flows = {64, 512};
  std::printf("\nsharded multiplexer (%zu MB aggregate per run, "
              "hw_concurrency=%u):\n",
              total_bytes >> 20, std::thread::hardware_concurrency());
  std::printf("%8s %10s %9s %7s %4s\n", "#flows", "#shards", "Mb/s", "cpu%",
              "thr");
  for (const int n : shard_flows) {
    for (const int s : shard_counts) {
      const RealRun r = run_real(n, /*exclusive=*/false, total_bytes, s);
      std::printf("%8d %10d", n, s);
      if (r.ok) {
        std::printf(" %9.0f %6.0f%% %4d\n", r.goodput_mbps, r.cpu_percent,
                    r.threads);
        const std::string tag =
            "_s" + std::to_string(s) + "_f" + std::to_string(n);
        json.emplace_back("fig3_shard_goodput_mbps" + tag, r.goodput_mbps);
        json.emplace_back("fig3_shard_cpu_pct" + tag, r.cpu_percent);
        json.emplace_back("fig3_shard_threads" + tag, r.threads);
      } else {
        std::printf(" %9s %7s %4s\n", "FAIL", "-", "-");
      }
    }
  }

  // --- idle timer cost: timing wheel vs the legacy every-socket walk -----
  const int idle_flows = scale.full ? 256 : 64;
  const IdleSweepRun wheel = run_idle_sweep(idle_flows, /*full_walk=*/false);
  const IdleSweepRun walk = run_idle_sweep(idle_flows, /*full_walk=*/true);
  std::printf("\nidle timer sweeps (%d silent flows, per socket per "
              "second):\n", idle_flows);
  if (wheel.ok && walk.ok) {
    std::printf("%16s %10.1f\n%16s %10.1f   (%.0fx fewer)\n", "timer wheel",
                wheel.sweeps_per_sock_per_s, "full walk",
                walk.sweeps_per_sock_per_s,
                walk.sweeps_per_sock_per_s /
                    std::max(wheel.sweeps_per_sock_per_s, 1e-9));
    json.emplace_back("fig3_idle_sweeps_per_sock_wheel",
                      wheel.sweeps_per_sock_per_s);
    json.emplace_back("fig3_idle_sweeps_per_sock_fullwalk",
                      walk.sweeps_per_sock_per_s);
  } else {
    std::printf("  FAIL\n");
  }
  udtr::bench::write_json(scale.json_path, json);
  return 0;
}
