// Fig. 3: UDT performance vs number of parallel flows.
// Reports aggregate bandwidth utilization and the standard deviation of
// per-flow throughput as the flow count grows (paper: oscillations grow with
// concurrency — UDT targets a small number of bulk sources, §3.6).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 3", "UDT multiplexing: stddev vs #flows", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(20, 100);
  const std::vector<int> flow_counts =
      scale.full ? std::vector<int>{2, 10, 40, 100, 200, 400}
                 : std::vector<int>{2, 10, 40, 100};
  const double rtts_ms[] = {1, 10, 100};

  std::printf("%8s", "#flows");
  for (const double r : rtts_ms) std::printf("   rtt=%-4.0fms sd | util%%", r);
  std::printf("\n");

  for (const int n : flow_counts) {
    std::printf("%8d", n);
    for (const double rtt_ms : rtts_ms) {
      Simulator sim;
      const auto queue = static_cast<std::size_t>(
          std::max(1000.0, bdp_packets(link, rtt_ms * 1e-3, 1500)));
      Dumbbell net{sim, {link, queue}};
      for (int i = 0; i < n; ++i) net.add_udt_flow({}, rtt_ms * 1e-3);
      sim.run_until(seconds);
      std::vector<double> tput;
      double total = 0.0;
      for (int i = 0; i < n; ++i) {
        const double mbps = average_mbps(
            net.udt_receiver(static_cast<std::size_t>(i)).stats().delivered,
            1500, 0.0, seconds);
        tput.push_back(mbps);
        total += mbps;
      }
      std::printf("   %10.3f | %5.1f", sample_stddev(tput),
                  100.0 * total / link.mbits_per_sec());
    }
    std::printf("\n");
  }
  std::printf("\npaper: stddev (oscillation) grows with concurrency while "
              "aggregate utilization stays high; UDT is not designed for "
              "high-concurrency regimes.\n");
  return 0;
}
