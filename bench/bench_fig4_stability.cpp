// Fig. 4: stability index of UDT vs TCP across RTT.
// 10 concurrent flows, 1 s throughput samples, DropTail queue
// max{1000, BDP}.  Lower is more stable; 0 is ideal.  The paper shows UDT
// more stable than TCP except in the 1-10 ms band where the queue happens to
// sit at TCP's sweet spot.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

double stability_run(bool udt, Bandwidth link, double rtt_s, int flows,
                     double seconds) {
  Simulator sim;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt_s, 1500)));
  Dumbbell net{sim, {link, queue}};
  std::vector<std::unique_ptr<ThroughputSampler>> samplers;
  for (int i = 0; i < flows; ++i) {
    if (udt) {
      const std::size_t idx = net.add_udt_flow({}, rtt_s);
      samplers.push_back(std::make_unique<ThroughputSampler>(
          sim, [&net, idx] { return net.udt_receiver(idx).stats().delivered; },
          1500, 1.0));
    } else {
      const std::size_t idx = net.add_tcp_flow({}, rtt_s);
      samplers.push_back(std::make_unique<ThroughputSampler>(
          sim, [&net, idx] { return net.tcp_receiver(idx).stats().delivered; },
          1500, 1.0));
    }
  }
  sim.run_until(seconds);
  std::vector<std::vector<double>> samples;
  for (const auto& s : samplers) samples.push_back(s->samples_mbps());
  return stability_index(samples);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 4", "stability index, 10 flows, UDT vs TCP",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);
  const double rtts_ms[] = {1, 10, 100, 500, 1000};

  std::printf("%10s %12s %12s\n", "RTT (ms)", "UDT", "TCP");
  for (const double rtt_ms : rtts_ms) {
    const double u = stability_run(true, link, rtt_ms * 1e-3, 10, seconds);
    const double t = stability_run(false, link, rtt_ms * 1e-3, 10, seconds);
    std::printf("%10.0f %12.4f %12.4f\n", rtt_ms, u, t);
  }
  std::printf("\npaper: UDT more stable (smaller index) than TCP in most "
              "cases, except around RTT 1-10 ms.\n");
  return 0;
}
