// Fig. 5: TCP friendliness index across RTT.
// Run A: 5 UDT + 10 TCP flows share the link; run B: 15 TCP flows alone.
// T = mean(TCP with UDT) / mean(TCP alone).  T = 1 ideal, < 1 means UDT
// overruns TCP.  Paper: TCP keeps > 20% of fair share even at 1000 ms RTT,
// and more than its share at short RTT (where TCP is the aggressor).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

std::vector<double> tcp_throughputs(int udt_flows, int tcp_flows,
                                    Bandwidth link, double rtt_s,
                                    double seconds) {
  Simulator sim;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt_s, 1500)));
  Dumbbell net{sim, {link, queue}};
  for (int i = 0; i < udt_flows; ++i) net.add_udt_flow({}, rtt_s);
  for (int i = 0; i < tcp_flows; ++i) net.add_tcp_flow({}, rtt_s);
  // Second-half measurement: long-RTT slow start would otherwise dominate.
  sim.run_until(seconds / 2);
  std::vector<std::uint64_t> at_half;
  for (int i = 0; i < tcp_flows; ++i) {
    at_half.push_back(
        net.tcp_receiver(static_cast<std::size_t>(i)).stats().delivered);
  }
  sim.run_until(seconds);
  std::vector<double> tput;
  for (int i = 0; i < tcp_flows; ++i) {
    tput.push_back(average_mbps(
        net.tcp_receiver(static_cast<std::size_t>(i)).stats().delivered -
            at_half[static_cast<std::size_t>(i)],
        1500, seconds / 2, seconds));
  }
  return tput;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 5", "TCP friendliness index (5 UDT + 10 TCP)",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);
  const int kUdt = 5, kTcp = 10;
  const double rtts_ms[] = {1, 10, 100, 500, 1000};

  std::printf("%10s %18s %18s %8s\n", "RTT (ms)", "TCP w/ UDT (Mb/s)",
              "TCP alone (Mb/s)", "T");
  for (const double rtt_ms : rtts_ms) {
    const auto with_udt =
        tcp_throughputs(kUdt, kTcp, link, rtt_ms * 1e-3, seconds);
    const auto alone =
        tcp_throughputs(0, kUdt + kTcp, link, rtt_ms * 1e-3, seconds);
    const double t = friendliness_index(with_udt, alone, kUdt);
    std::printf("%10.0f %18.2f %18.2f %8.3f\n", rtt_ms, mean(with_udt),
                mean(alone), t);
  }
  std::printf("\npaper: T > 1 at short RTT (TCP more aggressive than UDT), "
              "decaying but staying above ~0.2 at 1000 ms.\n");
  return 0;
}
