// Fig. 6: RTT fairness of UDT.
// Two concurrent UDT flows share a bottleneck; flow 1 has a fixed 1 ms RTT
// while flow 2's RTT sweeps 1..1000 ms.  The constant SYN interval makes the
// ratio flow2/flow1 stay within ~10% of 1 (paper) — contrast with TCP's
// 1/RTT bias, printed alongside.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

double ratio_run(bool udt, Bandwidth link, double rtt2_s, double seconds) {
  Simulator sim;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt2_s, 1500)));
  Dumbbell net{sim, {link, queue}};
  if (udt) {
    net.add_udt_flow({}, 0.001);
    net.add_udt_flow({}, rtt2_s);
  } else {
    net.add_tcp_flow({}, 0.001);
    net.add_tcp_flow({}, rtt2_s);
  }
  // Second-half measurement so flow 2's long slow start (at 1000 ms RTT)
  // does not bias the ratio.
  const auto delivered = [&](std::size_t i) {
    return udt ? net.udt_receiver(i).stats().delivered
               : net.tcp_receiver(i).stats().delivered;
  };
  sim.run_until(seconds / 2);
  const auto h1 = delivered(0), h2 = delivered(1);
  sim.run_until(seconds);
  const double f1 = static_cast<double>(delivered(0) - h1);
  const double f2 = static_cast<double>(delivered(1) - h2);
  return f2 / std::max(f1, 1.0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 6", "RTT fairness: throughput(flow2)/throughput(flow1)",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(40, 100);
  const double rtts_ms[] = {1, 10, 100, 300, 1000};

  std::printf("%16s %12s %12s\n", "flow2 RTT (ms)", "UDT ratio", "TCP ratio");
  for (const double rtt_ms : rtts_ms) {
    const double u = ratio_run(true, link, rtt_ms * 1e-3, seconds);
    const double t = ratio_run(false, link, rtt_ms * 1e-3, seconds);
    std::printf("%16.0f %12.3f %12.3f\n", rtt_ms, u, t);
  }
  std::printf("\npaper: UDT ratio within ~10%% of 1.0 across the sweep; "
              "TCP collapses toward 0 as flow2's RTT grows.\n");
  return 0;
}
