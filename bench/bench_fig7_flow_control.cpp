// Fig. 7: UDT throughput with and without flow (window) control.
// Single flow, 1 Gb/s link, 100 ms RTT, DropTail queue = BDP.  Without the
// dynamic window the rate controller keeps pouring packets after congestion
// sets in, causing deep loss cycles and oscillation; with it, throughput is
// smooth near link capacity.  Prints the 1 s throughput series plus loss
// statistics for both configurations.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct RunOut {
  std::vector<double> series;
  std::uint64_t lost;
  std::uint64_t retransmitted;
  double mean_mbps;
};

RunOut run(bool flow_control, Bandwidth link, double seconds) {
  Simulator sim;
  const double rtt = 0.100;
  const auto queue =
      static_cast<std::size_t>(bdp_packets(link, rtt, 1500));
  Dumbbell net{sim, {link, queue}};
  UdtFlowConfig cfg;
  cfg.cc.window_control = flow_control;
  net.add_udt_flow(cfg, rtt);
  ThroughputSampler sampler{
      sim, [&] { return net.udt_receiver(0).stats().delivered; }, 1500, 1.0};
  sim.run_until(seconds);
  RunOut out;
  out.series = sampler.samples_mbps();
  out.lost = net.udt_receiver(0).stats().lost_packets;
  out.retransmitted = net.udt_sender(0).stats().retransmitted;
  out.mean_mbps = sampler.mean_mbps();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 7", "UDT with vs without flow control "
                      "(1 Gb/s, 100 ms RTT, q = BDP)", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(300, 1000));
  const double seconds = scale.seconds(60, 100);

  const RunOut with_fc = run(true, link, seconds);
  const RunOut without_fc = run(false, link, seconds);

  std::printf("%6s %14s %14s\n", "t(s)", "with FC Mb/s", "without FC Mb/s");
  for (std::size_t i = 0; i < with_fc.series.size(); i += 2) {
    std::printf("%6zu %14.1f %14.1f\n", i + 1, with_fc.series[i],
                i < without_fc.series.size() ? without_fc.series[i] : 0.0);
  }
  std::printf("\nmean throughput: with FC %.1f Mb/s, without FC %.1f Mb/s\n",
              with_fc.mean_mbps, without_fc.mean_mbps);
  std::printf("lost packets:    with FC %llu, without FC %llu\n",
              (unsigned long long)with_fc.lost,
              (unsigned long long)without_fc.lost);
  std::printf("retransmitted:   with FC %llu, without FC %llu\n",
              (unsigned long long)with_fc.retransmitted,
              (unsigned long long)without_fc.retransmitted);
  std::printf("\npaper: without FC the flow oscillates with deep loss dips; "
              "with FC it holds a smooth high rate.\n");
  return 0;
}
