// Fig. 8: loss pattern during heavy congestion.
// A bulk UDT flow on a long-haul link has a bursting UDP flow injected into
// its bottleneck; each gap the receiver detects is one loss event.  The
// paper observes events of up to 3000+ consecutive packets — continuous
// loss is the norm during congestion, which is why the loss list stores
// ranges (Appendix) and why reacting per-NAK must be bounded (§6).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 8", "loss-event sizes under injected UDP bursts "
                      "(1 Gb/s, 100 ms RTT)", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(300, 1000));
  const double seconds = scale.seconds(20, 60);

  Simulator sim;
  const auto queue =
      static_cast<std::size_t>(bdp_packets(link, 0.100, 1500) / 4);
  Dumbbell net{sim, {link, queue}};
  net.add_udt_flow({}, 0.100);
  // Violent UDP bursts at 30x the link rate (~50 ms on, ~500 ms off): while
  // a burst owns the DropTail queue, a UDT packet survives only ~3% of the
  // time, producing the long consecutive-loss runs of the paper's figure
  // (their GigE testbed bursts blacked out thousands of packets at a time).
  net.add_burst_source(link * 30.0, 1500, 0.05, 0.5, 2.0, seconds, 1234);
  sim.run_until(seconds);

  const auto& events = net.udt_receiver(0).loss_event_sizes();
  std::printf("loss events: %zu, lost packets total: %llu\n", events.size(),
              (unsigned long long)net.udt_receiver(0).stats().lost_packets);

  // Per-event sizes (first 40 events), then the distribution summary.
  std::printf("%8s %12s\n", "event#", "lost pkts");
  for (std::size_t i = 0; i < std::min<std::size_t>(events.size(), 40); ++i) {
    std::printf("%8zu %12u\n", i + 1, events[i]);
  }
  if (!events.empty()) {
    std::vector<std::uint32_t> sorted{events.begin(), events.end()};
    std::sort(sorted.begin(), sorted.end());
    const auto pct = [&](double p) {
      return sorted[static_cast<std::size_t>(p * (sorted.size() - 1))];
    };
    std::printf("\nsummary: min %u, p50 %u, p90 %u, max %u packets/event\n",
                sorted.front(), pct(0.5), pct(0.9), sorted.back());
  }
  std::printf("\npaper: events of 1..3000+ packets — loss is continuous "
              "during congestion, motivating range-compressed loss storage.\n");
  return 0;
}
