// Fig. 9 (+ Appendix): access time to the loss list.
// Replays the Fig. 8-style loss workload — bursts of continuous loss events
// interleaved with retransmission-driven removals — and measures insert,
// delete (remove), and query times.  The paper's claim: ~1 us per access,
// independent of the number of lost packets, because cost scales with loss
// *events* and accesses have locality.
#include <benchmark/benchmark.h>

#include <random>
#include <string_view>
#include <vector>

#include "udt/loss_list.hpp"

namespace {

using udtr::SeqNo;
using udtr::udt::LossList;

// A synthetic congestion trace: loss events whose sizes follow the heavy
// pattern of Fig. 8 (many small gaps, occasional 1000+-packet bursts).
std::vector<std::pair<std::int32_t, std::int32_t>> make_trace(
    int events, std::uint64_t seed) {
  std::mt19937_64 rng{seed};
  std::vector<std::pair<std::int32_t, std::int32_t>> trace;
  std::int32_t seq = 0;
  for (int i = 0; i < events; ++i) {
    seq += 1 + static_cast<std::int32_t>(rng() % 50);  // received stretch
    const std::int32_t burst =
        (rng() % 10 == 0) ? 500 + static_cast<std::int32_t>(rng() % 2500)
                          : 1 + static_cast<std::int32_t>(rng() % 30);
    trace.emplace_back(seq, seq + burst - 1);
    seq += burst;
  }
  return trace;
}

void BM_Insert(benchmark::State& state) {
  const auto trace = make_trace(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    state.PauseTiming();
    LossList ll{1 << 22};
    state.ResumeTiming();
    for (const auto& [a, b] : trace) {
      benchmark::DoNotOptimize(ll.insert(SeqNo{a}, SeqNo{b}));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_Insert)->Arg(100)->Arg(1000)->Arg(5000);

void BM_RemoveRetransmissions(benchmark::State& state) {
  const auto trace = make_trace(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    state.PauseTiming();
    LossList ll{1 << 22};
    std::vector<std::int32_t> to_remove;
    for (const auto& [a, b] : trace) {
      ll.insert(SeqNo{a}, SeqNo{b});
      // Retransmissions arrive roughly in order within each event.
      for (std::int32_t s = a; s <= b; s += 7) to_remove.push_back(s);
    }
    state.ResumeTiming();
    for (const std::int32_t s : to_remove) {
      benchmark::DoNotOptimize(ll.remove(SeqNo{s}));
    }
    state.PauseTiming();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RemoveRetransmissions)->Arg(100)->Arg(1000);

void BM_Query(benchmark::State& state) {
  const auto trace = make_trace(static_cast<int>(state.range(0)), 9);
  LossList ll{1 << 22};
  for (const auto& [a, b] : trace) ll.insert(SeqNo{a}, SeqNo{b});
  std::mt19937_64 rng{5};
  const std::int32_t hi = trace.back().second;
  for (auto _ : state) {
    const auto s = static_cast<std::int32_t>(rng() % hi);
    benchmark::DoNotOptimize(ll.contains(SeqNo{s}));
  }
}
BENCHMARK(BM_Query)->Arg(100)->Arg(1000)->Arg(5000);

void BM_PopFirstDrain(benchmark::State& state) {
  const auto trace = make_trace(1000, 3);
  for (auto _ : state) {
    state.PauseTiming();
    LossList ll{1 << 22};
    for (const auto& [a, b] : trace) ll.insert(SeqNo{a}, SeqNo{b});
    state.ResumeTiming();
    while (ll.pop_first().has_value()) {
    }
  }
}
BENCHMARK(BM_PopFirstDrain);

// The paper's contrast case: a bitmap/array scan would be O(window).  This
// shows the compressed list is independent of how many *packets* are lost
// (only events matter): same event count, 100x packet count.
void BM_InsertHugeRanges(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    LossList ll{1 << 22};
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      const std::int32_t a = i * 4000;
      benchmark::DoNotOptimize(ll.insert(SeqNo{a}, SeqNo{a + 2999}));
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_InsertHugeRanges);

}  // namespace

// Custom main: tolerate the harness-wide --full flag (scale is irrelevant
// for a microbenchmark) before handing argv to google-benchmark.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view{argv[i]} != "--full") args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
