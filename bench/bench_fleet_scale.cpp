// Fleet scale: how many idle connections one sharded UDP port sustains and
// what each of them costs.  The paper's §4 claim is that concurrency should
// cost per-flow STATE, not per-flow threads — this bench puts a number on
// the state.  It stands up a listener on a 4-shard port, connects a fleet
// through the full stateless-cookie handshake (default 100k accepted
// sockets on the one port, so ~2x that many socket objects in-process
// counting the client ends), and reports:
//
//   sockets_on_port        attached sockets on the listener's port
//   bytes_per_idle_socket  RSS growth / total socket objects — the memory
//                          diet headline (lazy buffers, pooled loss lists,
//                          shared service threads)
//   connects_per_sec       sustained 3-leg handshake throughput, serial
//   idle_wakeups_per_sec   timer-wheel socket sweeps/s across the whole
//                          idle fleet (O(active), not O(sockets))
//   flood_handshakes_per_sec  cookie challenges answered/s under a
//                          spoofed-source flood, with the fleet attached
//   flood_tracked_ips      admission table size after the flood (bounded)
//
// After the flood, one legitimate client must still connect through the
// noise (liveness), which is asserted, not reported.
//
// Teardown of a 6-figure fleet via close() costs minutes (3 shutdown
// repeats x 1 ms each per socket), so after the JSON is written the bench
// exits with std::_Exit — the kernel reclaims everything faster than any
// orderly shutdown could.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "udt/multiplexer.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;

long rss_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return -1;
}

// One spoofed cookie-less handshake from a distinct loopback source; the
// listener answers with a challenge and must retain nothing.
void spoof_handshake(std::uint32_t src_ip, std::uint16_t dst_port,
                     std::uint32_t fake_id) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(src_ip);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) == 0) {
    std::array<std::uint8_t,
               kHeaderBytes + 4 * HandshakePayload::kWordsWithCookie>
        buf{};
    CtrlHeader h;
    h.type = CtrlType::kHandshake;
    write_ctrl_header(buf, h);
    HandshakePayload req;
    req.request_type = kHsRequest;
    req.socket_id = fake_id;
    encode_handshake_payload(std::span{buf}.subspan(kHeaderBytes), req);
    sockaddr_in to{};
    to.sin_family = AF_INET;
    to.sin_port = htons(dst_port);
    to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    (void)::sendto(fd, buf.data(), buf.size(), 0,
                   reinterpret_cast<sockaddr*>(&to), sizeof to);
  }
  ::close(fd);
}

int env_int(const char* name, int def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  // The acceptance number is 100k sockets on the port; UDTR_FLEET_SOCKETS
  // scales it down for sanitizer or smoke runs.
  const int target = env_int("UDTR_FLEET_SOCKETS", scale.full ? 150000 : 100000);

  SocketOptions opts;
  opts.snd_buffer_bytes = 32 << 10;
  opts.rcv_buffer_pkts = 64;
  opts.mux_shards = 4;            // "one sharded port" regardless of host cores
  opts.min_exp_timeout_s = 60.0;  // park idle timers far out on the wheel
  // Every client shares 127.0.0.1; the per-source rate knob exists for
  // exactly this trusted-fleet shape.
  opts.handshake_rate_per_ip = 1e9;
  opts.max_pending_per_ip = 4096;

  auto listener = Socket::listen(0, opts);
  if (!listener) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  const std::uint16_t port = listener->local_port();
  auto mux = Multiplexer::find(port);
  if (!mux) {
    std::fprintf(stderr, "no multiplexer on port %u\n", port);
    return 1;
  }

  const long rss0 = rss_kb();
  std::vector<std::unique_ptr<Socket>> fleet;
  fleet.reserve(static_cast<std::size_t>(target) * 2);

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < target; ++i) {
    auto accepted = std::async(std::launch::async, [&] {
      return listener->accept(std::chrono::seconds{30});
    });
    auto client = Socket::connect("127.0.0.1", port, opts);
    auto server = accepted.get();
    if (!client || !server) {
      std::fprintf(stderr, "connect %d failed\n", i);
      return 1;
    }
    fleet.push_back(std::move(client));
    fleet.push_back(std::move(server));
    if ((i + 1) % 10000 == 0) {
      std::fprintf(stderr, "  %d/%d connected, RSS %ld KiB\n", i + 1, target,
                   rss_kb());
    }
  }
  const double connect_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double connects_per_sec = target / connect_s;

  const auto sockets_on_port = mux->attached_sockets();
  const long rss1 = rss_kb();
  const double bytes_per_socket =
      (rss1 - rss0) * 1024.0 / static_cast<double>(fleet.size());

  // Idle wakeups: timer-wheel socket sweeps across the parked fleet.
  const std::uint64_t sweeps0 = mux->timer_socket_sweeps();
  const auto idle_t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::seconds{3});
  const double idle_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - idle_t0)
          .count();
  const double idle_wakeups_per_sec =
      (mux->timer_socket_sweeps() - sweeps0) / idle_s;

  // Spoofed-source flood against the populated port: cookie challenges
  // answered per second, zero retained handshake state, bounded tracker.
  const std::uint64_t chal0 = mux->cookie_challenges();
  const auto flood_t0 = std::chrono::steady_clock::now();
  std::uint32_t src = 0;
  while (std::chrono::steady_clock::now() - flood_t0 <
         std::chrono::seconds{2}) {
    for (int b = 0; b < 64; ++b, ++src) {
      spoof_handshake(0x7F020000U + (src % 0xFFFFU), port, 7000000U + src);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  const double flood_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    flood_t0)
          .count();
  const double flood_handshakes_per_sec =
      (mux->cookie_challenges() - chal0) / flood_s;
  const auto flood_tracked = mux->admission_tracked_ips();
  const auto pending_after = mux->pending_handshakes();

  // Liveness: one more legitimate connect through the post-flood port.
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{30});
  });
  auto late_client = Socket::connect("127.0.0.1", port, opts);
  auto late_server = accepted.get();
  const bool late_ok = late_client != nullptr && late_server != nullptr;

  std::printf("fleet: %zu sockets on port %u (%d accepted)\n",
              sockets_on_port, port, target);
  std::printf("  connects/s        %10.0f (%.1f s total)\n", connects_per_sec,
              connect_s);
  std::printf("  bytes/idle socket %10.0f (RSS %ld -> %ld KiB over %zu "
              "objects)\n",
              bytes_per_socket, rss0, rss1, fleet.size());
  std::printf("  idle wakeups/s    %10.0f (%.4f per socket)\n",
              idle_wakeups_per_sec,
              idle_wakeups_per_sec / static_cast<double>(fleet.size()));
  std::printf("  flood challenges/s %9.0f (tracker %zu IPs, pending %zu)\n",
              flood_handshakes_per_sec, flood_tracked, pending_after);
  std::printf("  post-flood connect %s\n", late_ok ? "ok" : "FAILED");

  udtr::bench::write_json(
      scale.json_path,
      {{"sockets_on_port", static_cast<double>(sockets_on_port)},
       {"bytes_per_idle_socket", bytes_per_socket},
       {"connects_per_sec", connects_per_sec},
       {"idle_wakeups_per_sec", idle_wakeups_per_sec},
       {"flood_handshakes_per_sec", flood_handshakes_per_sec},
       {"flood_tracked_ips", static_cast<double>(flood_tracked)},
       {"flood_pending_handshakes", static_cast<double>(pending_after)},
       {"post_flood_connect_ok", late_ok ? 1.0 : 0.0}});

  // Deliberate: no orderly teardown (see the header comment).
  std::fflush(nullptr);
  std::_Exit(late_ok ? 0 : 1);
}
