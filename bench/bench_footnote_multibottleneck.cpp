// Footnote 3 (§3.4): "On multi-bottleneck topologies, a UDT flow can reach
// at least half of its max-min fair share", credited to the logarithmic
// smoothing in formula (1).
//
// Parking lot: a long flow crosses two bottlenecks; each hop also carries
// its own cross flow.  With equal hop capacities C and one cross flow per
// hop, the long flow's max-min fair share is C/2.  The claim to verify is
// long-flow throughput >= (C/2) / 2 = C/4.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/multibottleneck.hpp"
#include "netsim/stats.hpp"

using namespace udtr;
using namespace udtr::sim;

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Footnote 3", "UDT on a multi-bottleneck parking lot",
                      scale);

  const Bandwidth hop = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(40, 100);
  const double rtt = 0.040;

  for (const int hops : {2, 3, 4}) {
    Simulator sim;
    ParkingLot net{sim, std::vector<Bandwidth>(hops, hop),
                   static_cast<std::size_t>(std::max(
                       1000.0, bdp_packets(hop, rtt, 1500)))};
    // Long flow across every hop plus one cross flow per hop.
    const std::size_t long_idx = net.add_udt_flow(
        {}, 0, static_cast<std::size_t>(hops) - 1, rtt);
    for (int h = 0; h < hops; ++h) {
      net.add_udt_flow({}, static_cast<std::size_t>(h),
                       static_cast<std::size_t>(h), rtt);
    }
    // Steady-state measurement over the second half of the run.
    sim.run_until(seconds / 2);
    std::vector<std::uint64_t> half;
    for (int f = 0; f <= hops; ++f) {
      half.push_back(net.udt_receiver(static_cast<std::size_t>(f))
                         .stats()
                         .delivered);
    }
    sim.run_until(seconds);

    const double long_mbps = average_mbps(
        net.udt_receiver(long_idx).stats().delivered - half[long_idx],
        1500, seconds / 2, seconds);
    double cross_total = 0.0;
    for (int h = 0; h < hops; ++h) {
      const std::size_t f = long_idx + 1 + static_cast<std::size_t>(h);
      cross_total += average_mbps(
          net.udt_receiver(f).stats().delivered - half[f], 1500,
          seconds / 2, seconds);
    }
    const double maxmin = hop.mbits_per_sec() / 2.0;
    std::printf("%d hops: long flow %.1f Mb/s = %.0f%% of its max-min share "
                "(%.0f Mb/s); cross flows total %.1f Mb/s\n",
                hops, long_mbps, 100.0 * long_mbps / maxmin, maxmin,
                cross_total);
  }
  std::printf("\npaper claim (proof omitted there): the long flow keeps at "
              "least 50%% of its max-min share.  Our reproduction lands "
              "just below that bound at 2 hops and degrades with hop count "
              "— see EXPERIMENTS.md for the discussion.\n");
  return 0;
}
