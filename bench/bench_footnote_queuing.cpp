// Footnote 4 (§3.7): "TCP's performance can be heavily affected by queuing,
// which, however, [has] little impact on UDT's rate control."
// Measures single-flow throughput under different bottleneck queue regimes:
// a shallow DropTail buffer, a BDP-sized DropTail buffer, and RED.  TCP's
// window-clocked bursts need a full BDP of buffering; UDT's paced flow does
// not.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

double run(bool udt, const DumbbellConfig& cfg, double rtt, double seconds) {
  Simulator sim;
  Dumbbell net{sim, cfg};
  if (udt) {
    net.add_udt_flow({}, rtt);
  } else {
    net.add_tcp_flow({}, rtt);
  }
  sim.run_until(seconds);
  const std::uint64_t delivered = udt
                                      ? net.udt_receiver(0).stats().delivered
                                      : net.tcp_receiver(0).stats().delivered;
  return average_mbps(delivered, 1500, 0.0, seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Footnote 4", "queueing impact on TCP vs UDT", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double rtt = 0.100;
  const double seconds = scale.seconds(40, 100);
  const auto bdp = bdp_packets(link, rtt, 1500);

  struct Regime {
    const char* name;
    DumbbellConfig cfg;
  };
  RedPolicy::Params red;
  red.min_th = bdp / 20.0;
  red.max_th = bdp / 4.0;
  red.limit = static_cast<std::size_t>(bdp);
  const Regime regimes[] = {
      {"DropTail q = BDP/20", {link, static_cast<std::size_t>(bdp / 20)}},
      {"DropTail q = BDP/4 ", {link, static_cast<std::size_t>(bdp / 4)}},
      {"DropTail q = BDP   ", {link, static_cast<std::size_t>(bdp)}},
      {"RED                ", {link, 0, red}},
  };

  std::printf("%-22s %12s %12s\n", "queue regime", "TCP Mb/s", "UDT Mb/s");
  double tcp_min = 1e18, tcp_max = 0, udt_min = 1e18, udt_max = 0;
  for (const Regime& r : regimes) {
    const double t = run(false, r.cfg, rtt, seconds);
    const double u = run(true, r.cfg, rtt, seconds);
    tcp_min = std::min(tcp_min, t);
    tcp_max = std::max(tcp_max, t);
    udt_min = std::min(udt_min, u);
    udt_max = std::max(udt_max, u);
    std::printf("%-22s %12.1f %12.1f\n", r.name, t, u);
  }
  std::printf("\nspread (max/min): TCP %.2fx, UDT %.2fx — the queue regime "
              "moves TCP far more than UDT, as the footnote claims.\n",
              tcp_max / std::max(tcp_min, 1e-9),
              udt_max / std::max(udt_min, 1e-9));
  return 0;
}
