// §2.2: parallel TCP (PSockets) vs UDT.
// "One of the common solutions is to use parallel TCP connections and tune
// the TCP parameters...  However, parallel TCP is inflexible because it
// needs to be tuned on each particular network scenario.  Moreover,
// parallel TCP does not address fairness issues."
// Measures (a) aggregate throughput vs stripe count N on a high-BDP path —
// the tuning knob — and (b) what an N-stripe bundle does to a single
// standard TCP flow sharing the link, versus what a single UDT flow does.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

std::size_t queue_for(Bandwidth link, double rtt) {
  return static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt, 1500)));
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("§2.2", "parallel TCP (PSockets) vs UDT", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(200, 1000));
  const double rtt = 0.100;
  const double seconds = scale.seconds(40, 100);

  // Part (a) runs on a path with 10^-4 random loss — the regime that makes
  // single-flow TCP collapse on real WANs (§2.1) and PSockets attractive.
  const double kWanLoss = 1e-4;
  std::printf("(a) stripe-count tuning on a lossy (1e-4) path\n");
  std::printf("%12s %18s\n", "N stripes", "aggregate Mb/s");
  for (const int n : {1, 2, 4, 8, 16, 32}) {
    Simulator sim;
    DumbbellConfig cfg{link, queue_for(link, rtt)};
    cfg.loss_rate = kWanLoss;
    Dumbbell net{sim, cfg};
    for (int i = 0; i < n; ++i) net.add_tcp_flow({}, rtt);
    sim.run_until(seconds);
    std::uint64_t delivered = 0;
    for (int i = 0; i < n; ++i) {
      delivered += net.tcp_receiver(static_cast<std::size_t>(i))
                       .stats()
                       .delivered;
    }
    std::printf("%12d %18.1f\n", n,
                average_mbps(delivered, 1500, 0.0, seconds));
  }
  {
    Simulator sim;
    DumbbellConfig cfg{link, queue_for(link, rtt)};
    cfg.loss_rate = kWanLoss;
    Dumbbell net{sim, cfg};
    net.add_udt_flow({}, rtt);
    sim.run_until(seconds);
    std::printf("%12s %18.1f   (no tuning knob)\n", "1 UDT",
                average_mbps(net.udt_receiver(0).stats().delivered, 1500,
                             0.0, seconds));
  }

  std::printf("\n(b) fairness against one standard TCP flow on the link\n");
  std::printf("%-18s %22s\n", "background", "victim TCP Mb/s");
  for (const int n : {0, 4, 16}) {
    Simulator sim;
    Dumbbell net{sim, {link, queue_for(link, rtt)}};
    const std::size_t victim = net.add_tcp_flow({}, rtt);
    for (int i = 0; i < n; ++i) net.add_tcp_flow({}, rtt);
    sim.run_until(seconds);
    char label[32];
    std::snprintf(label, sizeof label, "%d TCP stripes", n);
    std::printf("%-18s %22.1f\n", label,
                average_mbps(net.tcp_receiver(victim).stats().delivered,
                             1500, 0.0, seconds));
  }
  {
    Simulator sim;
    Dumbbell net{sim, {link, queue_for(link, rtt)}};
    const std::size_t victim = net.add_tcp_flow({}, rtt);
    net.add_udt_flow({}, rtt);
    sim.run_until(seconds);
    std::printf("%-18s %22.1f\n", "1 UDT flow",
                average_mbps(net.tcp_receiver(victim).stats().delivered,
                             1500, 0.0, seconds));
  }
  std::printf("\nexpected: aggregate grows with N (the knob that must be "
              "re-tuned per path), while an N-stripe bundle takes N shares "
              "from the victim; one UDT flow needs no tuning and leaves the "
              "victim a comparable or better share.\n");
  return 0;
}
