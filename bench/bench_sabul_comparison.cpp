// §2.3: from SABUL to UDT.
// "The most important improvement of UDT over SABUL is the congestion
// control algorithm, which has a similar efficiency but is superior in
// regard to fairness."  Also §5.2: "SABUL's MIMD-like congestion control
// also converges slowly."  Measures solo efficiency and two-flow
// convergence for both controllers.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

UdtFlowConfig flow(bool sabul, double start = 0.0) {
  UdtFlowConfig cfg;
  cfg.sabul = sabul;
  cfg.start_time = start;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("§2.3", "SABUL (MIMD) vs UDT (estimate-driven AIMD)",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(40, 100);
  const double rtt = 0.050;
  const auto queue = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, rtt, 1500)));

  std::printf("%-8s %12s %18s\n", "proto", "solo Mb/s",
              "2-flow Jain index");
  for (const bool sabul : {false, true}) {
    double solo;
    {
      Simulator sim;
      Dumbbell net{sim, {link, queue}};
      net.add_udt_flow(flow(sabul), rtt);
      sim.run_until(seconds);
      solo = average_mbps(net.udt_receiver(0).stats().delivered, 1500, 0.0,
                          seconds);
    }
    double jain;
    {
      Simulator sim;
      Dumbbell net{sim, {link, queue}};
      net.add_udt_flow(flow(sabul), rtt);
      net.add_udt_flow(flow(sabul, seconds * 0.25), rtt);
      // Fairness over the second half (both flows active and converged or
      // not — that is the point being measured).
      sim.run_until(seconds / 2);
      const auto h0 = net.udt_receiver(0).stats().delivered;
      const auto h1 = net.udt_receiver(1).stats().delivered;
      sim.run_until(seconds);
      const double xs[] = {
          static_cast<double>(net.udt_receiver(0).stats().delivered - h0),
          static_cast<double>(net.udt_receiver(1).stats().delivered - h1)};
      jain = jain_fairness_index(xs);
    }
    std::printf("%-8s %12.1f %18.3f\n", sabul ? "SABUL" : "UDT", solo, jain);
  }
  std::printf("\npaper: similar efficiency, but SABUL's MIMD does not "
              "converge to a fair share between concurrent flows (Chiu & "
              "Jain), while UDT does.\n");
  return 0;
}
