// §5.2: comparison with other high-speed end-to-end protocols.
// The paper discusses Scalable TCP, HighSpeed TCP (and FAST/Bic) against
// UDT qualitatively: all can reach high throughput on high-BDP paths, but
// MIMD (Scalable) does not converge to fairness between flows and HighSpeed
// converges slowly, while both inherit TCP's RTT bias.  This bench measures
// exactly those three properties with our implementations.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Proto {
  const char* label;
  bool is_udt;
  const char* ca;  // TCP congestion-avoidance rule when !is_udt
};

void add_flow(Dumbbell& net, const Proto& p, double rtt, double start = 0) {
  if (p.is_udt) {
    UdtFlowConfig cfg;
    cfg.start_time = start;
    net.add_udt_flow(cfg, rtt);
  } else {
    TcpFlowConfig cfg;
    cfg.cong_avoid = p.ca;
    cfg.start_time = start;
    net.add_tcp_flow(cfg, rtt);
  }
}

double delivered(Dumbbell& net, const Proto& p, std::size_t i) {
  return p.is_udt
             ? static_cast<double>(net.udt_receiver(i).stats().delivered)
             : static_cast<double>(net.tcp_receiver(i).stats().delivered);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("§5.2", "UDT vs Scalable/HighSpeed/standard TCP",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(200, 1000));
  const double seconds = scale.seconds(40, 120);
  const double rtt = 0.100;
  const Proto protos[] = {
      {"UDT", true, ""},
      {"TCP SACK", false, "reno-sack"},
      {"Scalable TCP", false, "scalable"},
      {"HighSpeed TCP", false, "highspeed"},
      {"Bic TCP", false, "bic"},
      {"TCP Vegas", false, "vegas"},
      {"FAST-style", false, "fast"},
  };

  std::printf("%-14s %12s %16s %14s\n", "protocol", "solo Mb/s",
              "2-flow Jain idx", "RTT-bias ratio");
  for (const Proto& p : protos) {
    // (a) solo efficiency on the high-BDP path.
    double solo;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, rtt);
      sim.run_until(seconds);
      solo = average_mbps(static_cast<std::uint64_t>(delivered(net, p, 0)),
                          1500, 0, seconds);
    }
    // (b) intra-protocol convergence: second flow starts halfway earlier
    // flow; fairness over the shared window.
    double jain;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, rtt);
      add_flow(net, p, rtt, seconds * 0.25);
      sim.run_until(seconds * 0.5);
      const double h0 = delivered(net, p, 0), h1 = delivered(net, p, 1);
      sim.run_until(seconds);
      const double x0 = delivered(net, p, 0) - h0;
      const double x1 = delivered(net, p, 1) - h1;
      const double xs[] = {x0, x1};
      jain = jain_fairness_index(xs);
    }
    // (c) RTT bias: concurrent flows at 10 ms and 100 ms; ratio long/short.
    double bias;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, 0.010);
      add_flow(net, p, 0.100);
      sim.run_until(seconds);
      bias = delivered(net, p, 1) / std::max(delivered(net, p, 0), 1.0);
    }
    std::printf("%-14s %12.1f %16.3f %14.3f\n", p.label, solo, jain, bias);
  }
  std::printf("\npaper's qualitative claims: all high-speed variants fill "
              "the pipe; Scalable (MIMD) fails to converge between flows; "
              "TCP variants keep the RTT bias (ratio << 1); UDT converges "
              "and is RTT-independent (ratio ~= 1).\n");
  return 0;
}
