// §5.2: comparison with other high-speed end-to-end protocols.
// The paper discusses Scalable TCP, HighSpeed TCP (and FAST/Bic) against
// UDT qualitatively: all can reach high throughput on high-BDP paths, but
// MIMD (Scalable) does not converge to fairness between flows and HighSpeed
// converges slowly, while both inherit TCP's RTT bias.  This bench measures
// exactly those three properties with our implementations.
//
// A real-socket section then runs the same control laws where they actually
// matter: SocketOptions::congestion swaps the algorithm on a live loopback
// connection behind a fault-injected link (1% loss each way), and every
// algorithm must complete the transfer byte-exact.  `--real-only` skips the
// simulated sweep for CI quick mode; per-algorithm goodput and completion
// land in the --json document as sec52_real_<algo>_{mbps,completed}.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"
#include "udt/congestion.hpp"
#include "udt/socket.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Proto {
  const char* label;
  bool is_udt;
  const char* ca;  // TCP congestion-avoidance rule when !is_udt
};

void add_flow(Dumbbell& net, const Proto& p, double rtt, double start = 0) {
  if (p.is_udt) {
    UdtFlowConfig cfg;
    cfg.start_time = start;
    net.add_udt_flow(cfg, rtt);
  } else {
    TcpFlowConfig cfg;
    cfg.cong_avoid = p.ca;
    cfg.start_time = start;
    net.add_tcp_flow(cfg, rtt);
  }
}

double delivered(Dumbbell& net, const Proto& p, std::size_t i) {
  return p.is_udt
             ? static_cast<double>(net.udt_receiver(i).stats().delivered)
             : static_cast<double>(net.tcp_receiver(i).stats().delivered);
}

// --- real sockets: one algorithm, one lossy loopback transfer --------------

struct RealResult {
  double mbps = 0.0;
  bool completed = false;  // transfer finished and arrived byte-exact
};

RealResult run_real_algo(const std::string& algo, std::size_t bytes) {
  using namespace udtr::udt;
  RealResult out;

  FaultConfig faults;
  faults.send.drop_p = 0.01;  // data AND control, both directions
  faults.recv.drop_p = 0.01;
  faults.seed = 20040807;  // identical loss pattern for every algorithm

  SocketOptions client;
  client.congestion = algo;
  client.faults = std::make_shared<FaultInjector>(faults);
  auto listener = Socket::listen(0, {});
  if (!listener) return out;
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{30});
  });
  auto snd = Socket::connect("127.0.0.1", listener->local_port(), client);
  auto rcv = accepted.get();
  if (!snd || !rcv) return out;

  std::vector<std::uint8_t> payload(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto send_done = std::async(std::launch::async, [&] {
    if (snd->send(payload) != payload.size()) return false;
    return snd->flush(std::chrono::seconds{120});
  });
  std::vector<std::uint8_t> got;
  got.reserve(bytes);
  std::vector<std::uint8_t> buf(1 << 16);
  while (got.size() < bytes) {
    const std::size_t n = rcv->recv(buf, std::chrono::seconds{30});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.completed = send_done.get() && got == payload;
  out.mbps = elapsed > 0.0
                 ? static_cast<double>(got.size()) * 8.0 / elapsed / 1e6
                 : 0.0;
  snd->close();
  rcv->close();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  bool real_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--real-only") == 0) real_only = true;
  }
  udtr::bench::banner("§5.2", "UDT vs Scalable/HighSpeed/standard TCP",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(200, 1000));
  const double seconds = scale.seconds(40, 120);
  const double rtt = 0.100;
  if (!real_only) {
  const Proto protos[] = {
      {"UDT", true, ""},
      {"TCP SACK", false, "reno-sack"},
      {"Scalable TCP", false, "scalable"},
      {"HighSpeed TCP", false, "highspeed"},
      {"Bic TCP", false, "bic"},
      {"TCP Vegas", false, "vegas"},
      {"FAST-style", false, "fast"},
  };

  std::printf("%-14s %12s %16s %14s\n", "protocol", "solo Mb/s",
              "2-flow Jain idx", "RTT-bias ratio");
  for (const Proto& p : protos) {
    // (a) solo efficiency on the high-BDP path.
    double solo;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, rtt);
      sim.run_until(seconds);
      solo = average_mbps(static_cast<std::uint64_t>(delivered(net, p, 0)),
                          1500, 0, seconds);
    }
    // (b) intra-protocol convergence: second flow starts halfway earlier
    // flow; fairness over the shared window.
    double jain;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, rtt);
      add_flow(net, p, rtt, seconds * 0.25);
      sim.run_until(seconds * 0.5);
      const double h0 = delivered(net, p, 0), h1 = delivered(net, p, 1);
      sim.run_until(seconds);
      const double x0 = delivered(net, p, 0) - h0;
      const double x1 = delivered(net, p, 1) - h1;
      const double xs[] = {x0, x1};
      jain = jain_fairness_index(xs);
    }
    // (c) RTT bias: concurrent flows at 10 ms and 100 ms; ratio long/short.
    double bias;
    {
      Simulator sim;
      Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                                   1000.0, bdp_packets(link, rtt, 1500)))}};
      add_flow(net, p, 0.010);
      add_flow(net, p, 0.100);
      sim.run_until(seconds);
      bias = delivered(net, p, 1) / std::max(delivered(net, p, 0), 1.0);
    }
    std::printf("%-14s %12.1f %16.3f %14.3f\n", p.label, solo, jain, bias);
  }
  std::printf("\npaper's qualitative claims: all high-speed variants fill "
              "the pipe; Scalable (MIMD) fails to converge between flows; "
              "TCP variants keep the RTT bias (ratio << 1); UDT converges "
              "and is RTT-independent (ratio ~= 1).\n");
  }

  // --- the same laws on real UDP sockets (SocketOptions::congestion) -------
  const std::size_t real_bytes =
      scale.full ? (std::size_t{64} << 20) : (std::size_t{8} << 20);
  std::printf("\nreal loopback sockets, 1%% loss each way, %zu MiB:\n",
              real_bytes >> 20);
  std::printf("%-14s %12s %10s\n", "algorithm", "goodput Mb/s", "exact");
  std::vector<std::pair<std::string, double>> json;
  double real_ran = 0.0;
  for (const std::string& algo : udtr::udt::congestion_names()) {
    const RealResult r = run_real_algo(algo, real_bytes);
    std::printf("%-14s %12.1f %10s\n", algo.c_str(), r.mbps,
                r.completed ? "yes" : "NO");
    json.emplace_back("sec52_real_" + algo + "_mbps", r.mbps);
    json.emplace_back("sec52_real_" + algo + "_completed",
                      r.completed ? 1.0 : 0.0);
    real_ran += 1.0;
  }
  json.emplace_back("sec52_real_algorithms", real_ran);
  udtr::bench::write_json(scale.json_path, json);
  return 0;
}
