// §2.1 / Fig. 1: the streaming-join motivation numbers.
// Two record streams are joined at machine C: stream A from a remote site
// (100 ms RTT), stream B from a local site (1 ms RTT), sharing C's 1 Gb/s
// ingress.  The window join's output rate is 2x the slower stream.  The
// paper measures TCP at 8.5 / 870 Mb/s in simulation -> join 16 Mb/s of a
// possible 1 Gb/s, and reports the UDT-based join reaching 600-800 Mb/s in
// the deployed application (§5.3).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

using namespace udtr;
using namespace udtr::sim;

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 1 / §2.1", "streaming join: TCP vs UDT", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);

  std::printf("%-10s %14s %14s %16s %18s\n", "transport", "A (100ms) Mb/s",
              "B (1ms) Mb/s", "join Mb/s", "paper join Mb/s");
  for (const bool udt : {false, true}) {
    Simulator sim;
    const auto queue = static_cast<std::size_t>(
        std::max(1000.0, bdp_packets(link, 0.1, 1500)));
    Dumbbell net{sim, {link, queue}};
    if (udt) {
      net.add_udt_flow({}, 0.100);
      net.add_udt_flow({}, 0.001);
    } else {
      net.add_tcp_flow({}, 0.100);
      net.add_tcp_flow({}, 0.001);
    }
    sim.run_until(seconds);
    const auto delivered = [&](std::size_t i) {
      return udt ? net.udt_receiver(i).stats().delivered
                 : net.tcp_receiver(i).stats().delivered;
    };
    const double a = average_mbps(delivered(0), 1500, 0.0, seconds);
    const double b = average_mbps(delivered(1), 1500, 0.0, seconds);
    std::printf("%-10s %14.1f %14.1f %16.1f %18s\n", udt ? "UDT" : "TCP", a,
                b, 2.0 * std::min(a, b),
                udt ? "600-800 (of 1000)" : "16 (of 1000)");
  }
  return 0;
}
