// §2.1 / Fig. 1: the streaming-join motivation numbers.
// Two record streams are joined at machine C: stream A from a remote site
// (100 ms RTT), stream B from a local site (1 ms RTT), sharing C's 1 Gb/s
// ingress.  The window join's output rate is 2x the slower stream.  The
// paper measures TCP at 8.5 / 870 Mb/s in simulation -> join 16 Mb/s of a
// possible 1 Gb/s, and reports the UDT-based join reaching 600-800 Mb/s in
// the deployed application (§5.3).
//
// A third, real-socket column runs the same join as a *frame* workload over
// message mode (bench/frame_source.hpp, shared with bench_streaming_video):
// the remote stream crosses a lossy path, and per-frame TTL keeps its
// goodput fresh instead of letting retransmissions of stale records drag
// the join — the transport-level version of the §2.1 argument.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "frame_source.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"
#include "udt/socket.hpp"

namespace {

// On-time frame goodput of one message-mode loopback flow: frames within
// the deadline per second.  `loss_p` models the path quality.
double run_msg_flow(const udtr::bench::FrameSource& src, double seconds,
                    double loss_p, std::chrono::milliseconds deadline) {
  using namespace udtr::udt;
  SocketOptions opts;
  opts.max_bandwidth_mbps = 20.0;
  opts.min_exp_timeout_s = 0.05;
  SocketOptions client_opts = opts;
  if (loss_p > 0.0) {
    FaultConfig cfg;
    cfg.send.drop_p = loss_p;
    cfg.recv.drop_p = loss_p;
    cfg.seed = 51;
    client_opts.faults = std::make_shared<FaultInjector>(cfg);
  }
  auto listener = Socket::listen(0, opts);
  if (!listener) return 0.0;
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(),
                                client_opts);
  auto server = accepted.get();
  if (!client || !server) return 0.0;

  std::atomic<bool> done{false};
  std::atomic<std::size_t> on_time{0};
  auto receiver = std::thread([&] {
    std::vector<std::uint8_t> buf(src.spec().key_bytes + 4096);
    for (;;) {
      const std::size_t n =
          server->recvmsg(buf, std::chrono::milliseconds{100});
      if (n == 0) {
        if (done.load()) break;
        continue;
      }
      std::uint64_t id = 0;
      std::uint64_t send_ns = 0;
      if (udtr::bench::FrameSource::verify(std::span{buf.data(), n}, id,
                                           send_ns)) {
        const double ms = static_cast<double>(
                              udtr::bench::FrameSource::now_ns() - send_ns) /
                          1e6;
        if (ms <= static_cast<double>(deadline.count())) ++on_time;
      }
    }
  });

  const auto total = static_cast<std::size_t>(seconds * src.spec().fps);
  std::vector<std::uint8_t> frame(src.spec().key_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(t0 + src.frame_period() * i);
    const std::span<std::uint8_t> f{frame.data(), src.frame_bytes(i)};
    udtr::bench::FrameSource::fill(f, i, udtr::bench::FrameSource::now_ns());
    client->sendmsg(f, deadline, /*in_order=*/false);
  }
  client->flush(std::chrono::seconds{5});
  std::this_thread::sleep_for(std::chrono::milliseconds{300});
  done = true;
  receiver.join();
  client->close();
  server->close();
  return static_cast<double>(on_time.load()) / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace udtr;
  using namespace udtr::sim;
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Fig 1 / §2.1", "streaming join: TCP vs UDT", scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double seconds = scale.seconds(30, 100);

  double join_mbps[2] = {0.0, 0.0};  // [0] TCP, [1] UDT
  std::printf("%-10s %14s %14s %16s %18s\n", "transport", "A (100ms) Mb/s",
              "B (1ms) Mb/s", "join Mb/s", "paper join Mb/s");
  for (const bool udt : {false, true}) {
    Simulator sim;
    const auto queue = static_cast<std::size_t>(
        std::max(1000.0, bdp_packets(link, 0.1, 1500)));
    Dumbbell net{sim, {link, queue}};
    if (udt) {
      net.add_udt_flow({}, 0.100);
      net.add_udt_flow({}, 0.001);
    } else {
      net.add_tcp_flow({}, 0.100);
      net.add_tcp_flow({}, 0.001);
    }
    sim.run_until(seconds);
    const auto delivered = [&](std::size_t i) {
      return udt ? net.udt_receiver(i).stats().delivered
                 : net.tcp_receiver(i).stats().delivered;
    };
    const double a = average_mbps(delivered(0), 1500, 0.0, seconds);
    const double b = average_mbps(delivered(1), 1500, 0.0, seconds);
    join_mbps[udt ? 1 : 0] = 2.0 * std::min(a, b);
    std::printf("%-10s %14.1f %14.1f %16.1f %18s\n", udt ? "UDT" : "TCP", a,
                b, 2.0 * std::min(a, b),
                udt ? "600-800 (of 1000)" : "16 (of 1000)");
  }

  // Message-mode frame join on real sockets: the remote stream's path is
  // lossy, the local one clean; the join advances at twice the slower
  // stream's on-time frame rate.
  const udtr::bench::FrameSource src{{30.0, 30, 40'000, 8'000}};
  const auto deadline = std::chrono::milliseconds{150};
  const double flow_seconds = scale.seconds(4, 12);
  const double remote_fps = run_msg_flow(src, flow_seconds, 0.03, deadline);
  const double local_fps = run_msg_flow(src, flow_seconds, 0.0, deadline);
  const double join_fps = 2.0 * std::min(remote_fps, local_fps);
  const double join_msg_mbps = join_fps * src.avg_frame_bytes() * 8.0 / 1e6;
  std::printf("%-10s %14.1f %14.1f %16.1f %18s\n", "UDT-msg",
              remote_fps * src.avg_frame_bytes() * 8.0 / 1e6,
              local_fps * src.avg_frame_bytes() * 8.0 / 1e6, join_msg_mbps,
              "(frame join, real)");
  std::printf("\nmessage-mode frame join: %.1f on-time frames/s "
              "(remote %.1f f/s over 3%% loss, local %.1f f/s, %.0f fps "
              "source)\n",
              join_fps, remote_fps, local_fps, src.spec().fps);

  udtr::bench::write_json(
      scale.json_path,
      {{"tcp_join_mbps", join_mbps[0]},
       {"udt_join_mbps", join_mbps[1]},
       {"msg_join_frames_per_s", join_fps},
       {"msg_join_mbps", join_msg_mbps},
       {"msg_remote_frames_per_s", remote_fps},
       {"msg_local_frames_per_s", local_fps}});
  return 0;
}
