// Deadline-driven frame streaming: message mode with per-frame TTL vs the
// byte stream, over the same lossy, flapping loopback link (no paper
// figure; this is the workload the message-mode subsystem exists for).
//
// A fixed-fps frame source (large keyframes, small deltas) is streamed
// through a bandwidth-capped socket while the fault injector applies steady
// random loss plus periodic burst outages.  A frame is "on time" when it
// arrives intact within the playout deadline of its capture time.  Stream
// mode must retransmit everything — after an outage the link spends its
// headroom re-sending frames whose deadline already passed, and every frame
// behind them inherits the queue delay.  Message mode with TTL == deadline
// abandons exactly those frames (kMsgDrop seals the holes), so the backlog
// evaporates and fresh frames go out immediately: a structurally lower
// deadline-miss rate at identical loss, which is what the committed
// baseline gates on (the raw rates and latencies are reported but not
// gated — shared runners scatter them).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "frame_source.hpp"
#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;
using udtr::bench::FrameSource;

struct RunResult {
  std::size_t frames_total = 0;
  std::size_t frames_delivered = 0;  // intact, regardless of timing
  std::size_t frames_on_time = 0;    // intact and within the deadline
  std::size_t frames_corrupt = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t sender_ttl_drops = 0;
};

struct RunParams {
  udtr::bench::FrameSpec spec;
  double seconds;
  double cap_mbps;
  std::chrono::milliseconds deadline;
  std::chrono::milliseconds outage_len;
  double outage_first_s;
  double outage_every_s;
  std::uint64_t fault_seed;
};

RunResult run_mode(bool message_mode, const RunParams& p) {
  FaultConfig cfg;
  cfg.send.drop_p = 0.03;
  cfg.recv.drop_p = 0.03;
  cfg.seed = p.fault_seed;
  auto faults = std::make_shared<FaultInjector>(cfg);

  SocketOptions opts;
  opts.max_bandwidth_mbps = p.cap_mbps;
  opts.min_exp_timeout_s = 0.05;  // prompt kMsgDrop re-send after an outage
  SocketOptions client_opts = opts;
  client_opts.faults = faults;

  auto listener = Socket::listen(0, opts);
  if (!listener) return {};
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(),
                                client_opts);
  auto server = accepted.get();
  if (!client || !server) return {};

  const FrameSource src{p.spec};
  const auto period = src.frame_period();
  const auto total =
      static_cast<std::size_t>(p.seconds * p.spec.fps);

  RunResult res;
  res.frames_total = total;
  std::atomic<bool> done{false};
  std::vector<double> latencies_ms;
  latencies_ms.reserve(total);

  auto receiver = std::thread([&] {
    std::vector<std::uint8_t> buf(p.spec.key_bytes + 4096);
    std::vector<std::uint8_t> pending;  // stream-mode reassembly
    auto account = [&](std::span<const std::uint8_t> frame) {
      std::uint64_t id = 0;
      std::uint64_t send_ns = 0;
      if (!FrameSource::verify(frame, id, send_ns)) {
        ++res.frames_corrupt;
        return;
      }
      const double ms =
          static_cast<double>(FrameSource::now_ns() - send_ns) / 1e6;
      ++res.frames_delivered;
      latencies_ms.push_back(ms);
      if (ms <= static_cast<double>(p.deadline.count())) {
        ++res.frames_on_time;
      }
    };
    for (;;) {
      if (message_mode) {
        const std::size_t n =
            server->recvmsg(buf, std::chrono::milliseconds{100});
        if (n > 0) {
          account(std::span{buf.data(), n});
        } else if (done.load()) {
          break;
        }
      } else {
        const std::size_t n =
            server->recv(buf, std::chrono::milliseconds{100});
        if (n > 0) {
          pending.insert(pending.end(), buf.begin(),
                         buf.begin() + static_cast<long>(n));
          // The frame header is self-delimiting: [8:16) is the total size.
          while (pending.size() >= 16) {
            std::uint64_t sz = 0;
            for (int i = 0; i < 8; ++i) sz = (sz << 8) | pending[8 + i];
            if (sz < 24 || sz > buf.size()) {  // desync: unrecoverable
              ++res.frames_corrupt;
              pending.clear();
              break;
            }
            if (pending.size() < sz) break;
            account(std::span{pending.data(), static_cast<std::size_t>(sz)});
            pending.erase(pending.begin(),
                          pending.begin() + static_cast<long>(sz));
          }
        } else if (done.load()) {
          break;
        }
      }
    }
  });

  // Pace frames at fps, flapping the link on schedule.
  std::vector<std::uint8_t> frame(p.spec.key_bytes);
  const auto t0 = std::chrono::steady_clock::now();
  double next_outage_s = p.outage_first_s;
  for (std::size_t i = 0; i < total; ++i) {
    std::this_thread::sleep_until(t0 + period * i);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed >= next_outage_s && elapsed < p.seconds - 1.0) {
      faults->schedule_outage(std::chrono::milliseconds{0}, p.outage_len);
      next_outage_s += p.outage_every_s;
    }
    const std::size_t bytes = src.frame_bytes(i);
    const std::span<std::uint8_t> f{frame.data(), bytes};
    FrameSource::fill(f, i, FrameSource::now_ns());
    if (message_mode) {
      // TTL == playout deadline; in_order=false because frames are
      // independent (the header carries the id): a complete frame plays
      // the moment it lands instead of waiting for the seal of an
      // already-expired predecessor to arrive.
      client->sendmsg(f, p.deadline, /*in_order=*/false);
    } else {
      client->send(f);
    }
  }
  // Drain: give recovery (or sealing) time to finish before closing.
  client->flush(std::chrono::seconds{10});
  std::this_thread::sleep_for(std::chrono::milliseconds{400});
  res.sender_ttl_drops = client->perf().msgs_dropped_ttl;
  done = true;
  receiver.join();
  client->close();
  server->close();

  if (!latencies_ms.empty()) {
    std::sort(latencies_ms.begin(), latencies_ms.end());
    res.p50_ms = latencies_ms[latencies_ms.size() / 2];
    res.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("message mode", "deadline streaming: msg-TTL vs stream",
                      scale);

  RunParams p;
  p.spec = {30.0, 30, 160'000, 16'000};
  p.seconds = scale.seconds(8, 30);
  p.cap_mbps = 10.0;  // ~2x the source's nominal rate: headroom, not slack
  p.deadline = std::chrono::milliseconds{150};
  p.outage_len = std::chrono::milliseconds{400};
  p.outage_first_s = 1.5;
  p.outage_every_s = 2.5;
  p.fault_seed = 20090;

  const FrameSource src{p.spec};
  std::printf("source: %.0f fps, GOP %d, key %zu B, delta %zu B "
              "(%.1f Mb/s nominal, %.1f Mb/s cap)\n",
              p.spec.fps, p.spec.keyframe_interval, p.spec.key_bytes,
              p.spec.delta_bytes, src.nominal_mbps(), p.cap_mbps);
  std::printf("faults: 3%% loss each way + %lld ms outage every %.1f s; "
              "deadline %lld ms\n\n",
              static_cast<long long>(p.outage_len.count()), p.outage_every_s,
              static_cast<long long>(p.deadline.count()));

  const RunResult msg = run_mode(true, p);
  const RunResult stream = run_mode(false, p);

  auto miss_rate = [](const RunResult& r) {
    return r.frames_total == 0
               ? 1.0
               : 1.0 - static_cast<double>(r.frames_on_time) /
                           static_cast<double>(r.frames_total);
  };
  std::printf("%-10s %8s %10s %10s %10s %10s %10s\n", "mode", "frames",
              "on-time", "delivered", "miss rate", "p50 ms", "p99 ms");
  for (const auto* r : {&msg, &stream}) {
    std::printf("%-10s %8zu %10zu %10zu %9.1f%% %10.1f %10.1f\n",
                r == &msg ? "msg-ttl" : "stream", r->frames_total,
                r->frames_on_time, r->frames_delivered, 100.0 * miss_rate(*r),
                r->p50_ms, r->p99_ms);
  }
  std::printf("\nmsg-ttl sender expired %llu frames (stream retransmits "
              "them all)\n",
              static_cast<unsigned long long>(msg.sender_ttl_drops));

  // Structural gates.  A sender-expired frame can still be delivered when
  // the ACK died with the link (the sender cannot know), but only as a
  // boundary effect of an outage — bound it instead of forbidding it.
  const auto overlap = static_cast<std::int64_t>(
      msg.frames_delivered + msg.sender_ttl_drops) -
      static_cast<std::int64_t>(msg.frames_total);
  // Require a real margin, not a coin-flip: the structural claim is that
  // abandoning expired frames frees the retransmission bandwidth.
  const double msg_beats_stream =
      miss_rate(msg) + 0.05 < miss_rate(stream) ? 1 : 0;
  const double frames_intact = msg.frames_corrupt == 0 ? 1 : 0;
  const double expired_not_delivered =
      overlap <= static_cast<std::int64_t>(msg.frames_total / 20) ? 1 : 0;
  const double accounted =
      msg.frames_delivered + msg.sender_ttl_drops >= msg.frames_total ? 1 : 0;
  std::printf("gates: msg_beats_stream=%.0f msg_frames_intact=%.0f "
              "msg_expired_not_delivered=%.0f msg_frames_accounted=%.0f\n",
              msg_beats_stream, frames_intact, expired_not_delivered,
              accounted);

  udtr::bench::write_json(
      scale.json_path,
      {{"frames_total", static_cast<double>(msg.frames_total)},
       {"msg_deadline_miss_rate", miss_rate(msg)},
       {"stream_deadline_miss_rate", miss_rate(stream)},
       {"msg_p50_latency_ms", msg.p50_ms},
       {"msg_p99_latency_ms", msg.p99_ms},
       {"stream_p50_latency_ms", stream.p50_ms},
       {"stream_p99_latency_ms", stream.p99_ms},
       {"msg_ttl_drops", static_cast<double>(msg.sender_ttl_drops)},
       {"msg_beats_stream", msg_beats_stream},
       {"msg_frames_intact", frames_intact},
       {"msg_expired_not_delivered", expired_not_delivered},
       {"msg_frames_accounted", accounted}});
  return 0;
}
