// Table 1: UDT increase-parameter computation (formula 1).
// Prints the packets-per-SYN increment for each estimated-available-bandwidth
// decade, at MSS 1500 plus the MSS-correction examples.
#include <cstdio>

#include "bench_util.hpp"
#include "cc/udt_cc.hpp"

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Table 1", "UDT increase parameter vs bandwidth",
                      scale);

  struct Row {
    const char* band;
    double b_bps;
    double paper_inc;
  };
  const Row rows[] = {
      {"B <= 0.1 Mb/s          ", 0.05e6, 0.00067},
      {"0.1 Mb/s < B <= 1 Mb/s ", 1e6, 0.001},
      {"1 Mb/s < B <= 10 Mb/s  ", 10e6, 0.01},
      {"10 Mb/s < B <= 100 Mb/s", 100e6, 0.1},
      {"100 Mb/s < B <= 1 Gb/s ", 1e9, 1.0},
      {"1 Gb/s < B <= 10 Gb/s  ", 10e9, 10.0},
  };
  std::printf("%-26s %14s %14s\n", "B (estimated avail bw)", "inc (pkts/SYN)",
              "paper Table 1");
  for (const Row& r : rows) {
    const double inc = udtr::cc::UdtCc::increase_for_bandwidth(r.b_bps, 1500);
    std::printf("%-26s %14.5f %14.5f\n", r.band, inc, r.paper_inc);
  }

  std::printf("\nMSS correction (B = 1 Gb/s): inc scales by 1500/MSS\n");
  for (const int mss : {500, 750, 1500, 3000}) {
    std::printf("  MSS %5d B -> inc %.5f pkts/SYN\n", mss,
                udtr::cc::UdtCc::increase_for_bandwidth(1e9, mss));
  }

  std::printf("\nrecovery check (paper §3.3): at 1 Gb/s, 90%% of the link is "
              "recovered in (0.9e9)/(1 pkt/SYN * 12000 b/pkt) * 0.01 s = "
              "750 SYN = 7.5 s\n");
  return 0;
}
