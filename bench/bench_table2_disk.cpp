// Table 2: disk-to-disk transfer rates between the three sites.
// The paper's claim: UDT moves data between disks at (nearly) the disk-I/O
// bottleneck — the network is no longer the limiting factor.  We emulate
// each site pair with the real sendfile/recvfile path over loopback, capping
// the sending rate at the paper's per-path disk write bottleneck (the
// slower of read/write disks in Table 2), and report achieved vs cap.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <random>
#include <vector>

#include "bench_util.hpp"
#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;

struct PathSpec {
  const char* name;
  double disk_cap_mbps;  // min(read, write) across the pair, from Table 2
  double paper_mbps;
};

double run_pair(double cap_mbps, std::uint64_t bytes,
                const std::string& src, const std::string& dst,
                const udtr::bench::Scale& scale) {
  SocketOptions opts;
  opts.max_bandwidth_mbps = cap_mbps;  // emulated disk bottleneck
  // Tail-flush deadline scaled like linger_s: short at the reduced scale
  // (a stuck quick run should fail fast), the classic 60 s at --full.
  opts.file_flush_timeout_s = scale.seconds(10.0, 60.0);
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  if (!client || !server) return 0.0;

  const auto t0 = std::chrono::steady_clock::now();
  auto send_done = std::async(std::launch::async,
                              [&] { return client->sendfile(src, 0, bytes); });
  const std::uint64_t got = server->recvfile(dst, bytes);
  send_done.get();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  client->close();
  server->close();
  return static_cast<double>(got) * 8.0 / secs / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Table 2", "disk-disk transfer rates (sendfile -> "
                      "recvfile, disk-rate-capped paths)", scale);

  // Kept modest even at --full: sender, receiver, and file I/O share this
  // host, and the point is the disk-cap-tracking shape, not duration.
  const std::uint64_t bytes = scale.full ? (96ULL << 20) : (32ULL << 20);
  const auto dir = fs::temp_directory_path() / "udtr_table2";
  fs::create_directories(dir);
  const auto src = (dir / "src.bin").string();
  {
    std::ofstream f{src, std::ios::binary};
    std::mt19937_64 rng{2};
    std::vector<char> block(1 << 20);
    for (std::uint64_t off = 0; off < bytes; off += block.size()) {
      for (auto& c : block) c = static_cast<char>(rng());
      f.write(block.data(), static_cast<std::streamsize>(block.size()));
    }
  }

  // Paper's disk bottlenecks: Chicago write 450, Ottawa write 550,
  // Amsterdam write 800, reads 710/450/960 Mb/s.
  const PathSpec paths[] = {
      {"Chicago  -> Ottawa   ", 550, 426},
      {"Chicago  -> Amsterdam", 710, 712},
      {"Ottawa   -> Chicago  ", 450, 444},
      {"Amsterdam-> Chicago  ", 450, 442},
      {"Ottawa   -> Amsterdam", 450, 442},
      {"Amsterdam-> Ottawa   ", 550, 548},
  };

  std::printf("%-24s %16s %16s %14s\n", "path", "disk cap Mb/s",
              "achieved Mb/s", "paper Mb/s");
  for (const PathSpec& p : paths) {
    const auto dst = (dir / "dst.bin").string();
    const double mbps = run_pair(p.disk_cap_mbps, bytes, src, dst, scale);
    std::printf("%-24s %16.0f %16.1f %14.0f\n", p.name, p.disk_cap_mbps,
                mbps, p.paper_mbps);
  }
  std::printf("\npaper shape: every path runs at ~the disk bottleneck, not "
              "the network.\n");
  fs::remove_all(dir);
  return 0;
}
