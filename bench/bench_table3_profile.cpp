// Table 3: CPU utilization ratio of the protocol's functional units.
// Runs a profiled memory-to-memory transfer with the real library and
// prints the share of instrumented CPU time per unit for the sending and
// receiving entities.  The paper (VTune, dual Xeon): UDP writing dominates
// sending at 66.7%, UDP reading dominates receiving at 90.9%; everything
// else — timing, packing, control/loss processing — is single-digit.
//
// Since udp-io dominates both sides, the batched-I/O path (sendmmsg /
// recvmmsg, SocketOptions::io_batch) attacks exactly this row.  The run is
// repeated with batching on (16) and off (1), and the udp-io *invocations
// per data packet* are reported — the syscall-amortization factor.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "udt/multiplexer.hpp"
#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;

struct ProfiledRun {
  double rate_mbps = 0.0;
  // udp-io ScopedTimer invocations per data packet, each side.  One
  // invocation is one batch (one syscall round), so this is the direct
  // measure of syscall amortization.
  double snd_calls_per_packet = 0.0;
  double rcv_calls_per_packet = 0.0;
  // Payload bytes memcpy'd per data packet on each side, summed over every
  // copy the packet's payload passes through (app<->buffer staging, wire
  // packing/unpacking).  The zero-copy datapath's whole point: ~1 payload
  // size per direction instead of 2-3.
  double snd_copied_per_packet = 0.0;
  double rcv_copied_per_packet = 0.0;
  // Same, normalized by payload bytes: copies each payload byte suffers.
  double snd_copies_per_byte = 0.0;
  double rcv_copies_per_byte = 0.0;
  // Real UDP I/O system calls per data packet (UdpChannel counters summed
  // over the multiplexer's shards) — unlike the profiler rows these count
  // actual kernel entries, so the io_uring column (many datagrams per
  // io_uring_enter) is directly comparable with mmsg.
  double snd_syscalls_per_packet = 0.0;
  double rcv_syscalls_per_packet = 0.0;
  std::vector<Profiler::Share> snd_report;
  std::vector<Profiler::Share> rcv_report;
  // Multiplexer shards behind the server side — the thread layout the
  // shares were measured under (see Profiler::set_shards).
  int shards = 1;
  bool ok = false;
};

ProfiledRun run_profiled(double seconds, int io_batch, bool zero_copy,
                         IoBackend backend = IoBackend::kMmsg) {
  SocketOptions opts;
  opts.enable_profiler = true;
  // Match the paper's conditions: a ~GigE-rate transfer, where pacing waits
  // (the "timing" row) are a real cost rather than rounding noise.
  opts.max_bandwidth_mbps = 950.0;
  opts.io_batch = io_batch;
  opts.zero_copy = zero_copy;
  opts.io_backend = backend;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ProfiledRun out;
  if (!client || !server) return out;

  std::atomic<bool> stop{false};
  auto snd = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x42);
    while (!stop) client->send(block);
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{100});
  });
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  out.rate_mbps = static_cast<double>(server->perf().bytes_delivered) * 8.0 /
                  seconds / 1e6;
  const auto snd_pkts = client->perf().data_packets_sent;
  const auto rcv_pkts = server->perf().data_packets_recv;
  const auto snd_calls = client->profiler().calls(ProfUnit::kUdpIo);
  const auto rcv_calls = server->profiler().calls(ProfUnit::kUdpIo);
  out.snd_calls_per_packet =
      snd_pkts > 0 ? static_cast<double>(snd_calls) / snd_pkts : 0.0;
  out.rcv_calls_per_packet =
      rcv_pkts > 0 ? static_cast<double>(rcv_calls) / rcv_pkts : 0.0;
  const auto& sp = client->profiler();
  const auto& rp = server->profiler();
  const double snd_copied = static_cast<double>(
      sp.bytes(ProfUnit::kPacking) + sp.bytes(ProfUnit::kAppInteraction));
  const double rcv_copied = static_cast<double>(
      rp.bytes(ProfUnit::kUnpacking) + rp.bytes(ProfUnit::kAppInteraction));
  out.snd_copied_per_packet = snd_pkts > 0 ? snd_copied / snd_pkts : 0.0;
  out.rcv_copied_per_packet = rcv_pkts > 0 ? rcv_copied / rcv_pkts : 0.0;
  const auto snd_bytes = client->perf().bytes_sent;
  const auto rcv_bytes = server->perf().bytes_delivered;
  out.snd_copies_per_byte = snd_bytes > 0 ? snd_copied / snd_bytes : 0.0;
  out.rcv_copies_per_byte = rcv_bytes > 0 ? rcv_copied / rcv_bytes : 0.0;
  if (client->multiplexer() && server->multiplexer()) {
    out.snd_syscalls_per_packet =
        snd_pkts > 0 ? static_cast<double>(
                           client->multiplexer()->send_syscalls()) / snd_pkts
                     : 0.0;
    out.rcv_syscalls_per_packet =
        rcv_pkts > 0 ? static_cast<double>(
                           server->multiplexer()->recv_syscalls()) / rcv_pkts
                     : 0.0;
  }
  out.snd_report = sp.report();
  out.rcv_report = rp.report();
  out.shards = rp.shards();
  out.ok = true;
  stop = true;
  client->close();
  server->close();
  snd.get();
  rcv.get();
  return out;
}

void print_side(const char* side, const std::vector<Profiler::Share>& report) {
  std::printf("\n%s entity:\n", side);
  std::printf("  %-18s %12s %8s %10s %14s\n", "unit", "time (ms)", "share",
              "calls", "bytes copied");
  for (const auto& s : report) {
    std::printf("  %-18s %12.2f %7.1f%% %10llu %14llu\n",
                std::string{prof_unit_name(s.unit)}.c_str(),
                static_cast<double>(s.nanos) / 1e6, s.percent,
                static_cast<unsigned long long>(s.calls),
                static_cast<unsigned long long>(s.bytes));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Table 3", "CPU share per functional unit "
                      "(instrumented transfer)", scale);
  const double seconds = scale.seconds(4, 15);

  const bool uring = UdpChannel::uring_supported();
  const ProfiledRun batched =
      run_profiled(seconds, /*io_batch=*/16, /*zero_copy=*/true);
  const ProfiledRun single =
      run_profiled(seconds, /*io_batch=*/1, /*zero_copy=*/true);
  const ProfiledRun legacy =
      run_profiled(seconds, /*io_batch=*/16, /*zero_copy=*/false);
  // Third datapath column: same zero-copy transfer on the io_uring backend,
  // where one io_uring_enter submits/reaps many datagrams.
  const ProfiledRun uring_run =
      uring ? run_profiled(seconds, /*io_batch=*/16, /*zero_copy=*/true,
                           IoBackend::kUring)
            : ProfiledRun{};
  if (!batched.ok || !single.ok || !legacy.ok || (uring && !uring_run.ok)) {
    std::fprintf(stderr, "connection failed\n");
    return 1;
  }

  std::printf("transfer rate: %.0f Mb/s (batch=16), %.0f Mb/s (batch=1), "
              "%d mux shard(s)\n",
              batched.rate_mbps, single.rate_mbps, batched.shards);
  print_side("sending (client, batch=16)", batched.snd_report);
  print_side("receiving (server, batch=16)", batched.rcv_report);

  std::printf("\nudp-io invocations per data packet (syscall "
              "amortization):\n");
  std::printf("  %-10s %14s %14s\n", "side", "batch=16", "batch=1");
  std::printf("  %-10s %14.3f %14.3f\n", "sending", batched.snd_calls_per_packet,
              single.snd_calls_per_packet);
  std::printf("  %-10s %14.3f %14.3f\n", "receiving",
              batched.rcv_calls_per_packet, single.rcv_calls_per_packet);
  const double snd_x = batched.snd_calls_per_packet > 0
      ? single.snd_calls_per_packet / batched.snd_calls_per_packet : 0.0;
  const double rcv_x = batched.rcv_calls_per_packet > 0
      ? single.rcv_calls_per_packet / batched.rcv_calls_per_packet : 0.0;
  std::printf("  amortization: %.1fx fewer sends, %.1fx fewer receives per "
              "packet\n", snd_x, rcv_x);

  std::printf("\nreal UDP syscalls per data packet (channel counters — "
              "mmsg vs io_uring):\n");
  std::printf("  %-10s %14s %14s\n", "side", "mmsg b=16", "io_uring");
  if (uring) {
    std::printf("  %-10s %14.3f %14.3f\n", "sending",
                batched.snd_syscalls_per_packet,
                uring_run.snd_syscalls_per_packet);
    std::printf("  %-10s %14.3f %14.3f\n", "receiving",
                batched.rcv_syscalls_per_packet,
                uring_run.rcv_syscalls_per_packet);
    std::printf("  io_uring rate: %.0f Mb/s\n", uring_run.rate_mbps);
  } else {
    std::printf("  %-10s %14.3f %14s\n", "sending",
                batched.snd_syscalls_per_packet, "SKIPPED");
    std::printf("  %-10s %14.3f %14s\n", "receiving",
                batched.rcv_syscalls_per_packet, "SKIPPED (no io_uring)");
  }

  std::printf("\npayload bytes memcpy'd per data packet (zero-copy "
              "datapath):\n");
  std::printf("  %-10s %16s %16s %14s %14s\n", "side", "zero-copy B/pkt",
              "legacy B/pkt", "zc copies/B", "legacy cp/B");
  std::printf("  %-10s %16.0f %16.0f %14.2f %14.2f\n", "sending",
              batched.snd_copied_per_packet, legacy.snd_copied_per_packet,
              batched.snd_copies_per_byte, legacy.snd_copies_per_byte);
  std::printf("  %-10s %16.0f %16.0f %14.2f %14.2f\n", "receiving",
              batched.rcv_copied_per_packet, legacy.rcv_copied_per_packet,
              batched.rcv_copies_per_byte, legacy.rcv_copies_per_byte);

  std::printf("\npaper Table 3 (dual Xeon, 970 Mb/s): sending = UDP writing "
              "66.7%%, timing 4.9%%, packing 5.9%%, ctrl 5.1%%, app 3.5%%; "
              "receiving = UDP reading 90.9%%, rate measurement 2.7%%, "
              "unpacking 0.9%%, loss 0.6%%.\n");
  udtr::bench::write_json(scale.json_path, {
      {"rate_mbps_batched", batched.rate_mbps},
      {"rate_mbps_unbatched", single.rate_mbps},
      {"udpio_calls_per_packet_snd_batched", batched.snd_calls_per_packet},
      {"udpio_calls_per_packet_rcv_batched", batched.rcv_calls_per_packet},
      {"udpio_calls_per_packet_snd_unbatched", single.snd_calls_per_packet},
      {"udpio_calls_per_packet_rcv_unbatched", single.rcv_calls_per_packet},
      {"send_amortization_x", snd_x},
      {"recv_amortization_x", rcv_x},
      {"copied_bytes_per_packet_snd_zerocopy", batched.snd_copied_per_packet},
      {"copied_bytes_per_packet_rcv_zerocopy", batched.rcv_copied_per_packet},
      {"copied_bytes_per_packet_snd_legacy", legacy.snd_copied_per_packet},
      {"copied_bytes_per_packet_rcv_legacy", legacy.rcv_copied_per_packet},
      {"payload_copies_per_byte_snd_zerocopy", batched.snd_copies_per_byte},
      {"payload_copies_per_byte_rcv_zerocopy", batched.rcv_copies_per_byte},
      {"payload_copies_per_byte_snd_legacy", legacy.snd_copies_per_byte},
      {"payload_copies_per_byte_rcv_legacy", legacy.rcv_copies_per_byte},
      {"rate_mbps_legacy", legacy.rate_mbps},
      {"shards", static_cast<double>(batched.shards)},
      {"uring_supported", uring ? 1.0 : 0.0},
      {"syscalls_per_packet_snd_mmsg", batched.snd_syscalls_per_packet},
      {"syscalls_per_packet_rcv_mmsg", batched.rcv_syscalls_per_packet},
      {"syscalls_per_packet_snd_uring", uring_run.snd_syscalls_per_packet},
      {"syscalls_per_packet_rcv_uring", uring_run.rcv_syscalls_per_packet},
      {"rate_mbps_uring", uring_run.rate_mbps},
  });
  return 0;
}
