// Table 3: CPU utilization ratio of the protocol's functional units.
// Runs a profiled memory-to-memory transfer with the real library and
// prints the share of instrumented CPU time per unit for the sending and
// receiving entities.  The paper (VTune, dual Xeon): UDP writing dominates
// sending at 66.7%, UDP reading dominates receiving at 90.9%; everything
// else — timing, packing, control/loss processing — is single-digit.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <vector>

#include "bench_util.hpp"
#include "udt/socket.hpp"

int main(int argc, char** argv) {
  using namespace udtr::udt;
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("Table 3", "CPU share per functional unit "
                      "(instrumented transfer)", scale);
  const double seconds = scale.seconds(4, 15);

  SocketOptions opts;
  opts.enable_profiler = true;
  // Match the paper's conditions: a ~GigE-rate transfer, where pacing waits
  // (the "timing" row) are a real cost rather than rounding noise.
  opts.max_bandwidth_mbps = 950.0;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  if (!client || !server) {
    std::fprintf(stderr, "connection failed\n");
    return 1;
  }

  std::atomic<bool> stop{false};
  auto snd = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x42);
    while (!stop) client->send(block);
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{100});
  });
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  const auto rate_mbps =
      static_cast<double>(server->perf().bytes_delivered) * 8.0 / seconds /
      1e6;
  stop = true;
  client->close();
  server->close();
  snd.get();
  rcv.get();

  const auto print_side = [](const char* side, Profiler& prof) {
    std::printf("\n%s entity:\n", side);
    std::printf("  %-18s %12s %8s\n", "unit", "time (ms)", "share");
    for (const auto& s : prof.report()) {
      std::printf("  %-18s %12.2f %7.1f%%\n",
                  std::string{prof_unit_name(s.unit)}.c_str(),
                  static_cast<double>(s.nanos) / 1e6, s.percent);
    }
  };
  std::printf("transfer rate: %.0f Mb/s\n", rate_mbps);
  print_side("sending (client)", client->profiler());
  print_side("receiving (server)", server->profiler());

  std::printf("\npaper Table 3 (dual Xeon, 970 Mb/s): sending = UDP writing "
              "66.7%%, timing 4.9%%, packing 5.9%%, ctrl 5.1%%, app 3.5%%; "
              "receiving = UDP reading 90.9%%, rate measurement 2.7%%, "
              "unpacking 0.9%%, loss 0.6%%.\n");
  return 0;
}
