// Shared helpers for the experiment harness.  Every bench binary accepts
// `--full` to run at the paper's scale (1 Gb/s links, 100 s runs); the
// default scale keeps the whole suite runnable in minutes on one core while
// preserving every qualitative shape.
#pragma once

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

// Measurement provenance baked in at configure time (bench/CMakeLists.txt);
// "unknown" for builds outside a git checkout.
#ifndef UDTR_GIT_SHA
#define UDTR_GIT_SHA "unknown"
#endif

namespace udtr::bench {

struct Scale {
  bool full = false;
  // When set (--json <path>), the bench appends its headline numbers there
  // so CI can archive a BENCH_*.json perf trajectory run over run.
  std::string json_path;
  // Simulated seconds per scenario.
  [[nodiscard]] double seconds(double dflt, double full_val) const {
    return full ? full_val : dflt;
  }
  [[nodiscard]] double mbps(double dflt, double full_val) const {
    return full ? full_val : dflt;
  }
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) s.full = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      s.json_path = argv[i + 1];
    }
  }
  return s;
}

// Flat {"key": number, ...} document — all any perf-trajectory consumer
// needs, with no dependency beyond stdio.  Every document is stamped with
// the commit it measured and the UTC wall time of the run, so archived
// BENCH_*.json files are comparable across the trajectory.
inline bool write_json(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& fields) {
  if (path.empty()) return false;
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  const std::time_t now = std::time(nullptr);
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char stamp[32] = "unknown";
  std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  std::fprintf(f, "  \"git_sha\": \"%s\",\n", UDTR_GIT_SHA);
  std::fprintf(f, "  \"generated_utc\": \"%s\"%s\n", stamp,
               fields.empty() ? "" : ",");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6g%s\n", fields[i].first.c_str(),
                 fields[i].second, i + 1 < fields.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

inline void banner(const char* id, const char* what, const Scale& s) {
  std::printf("== %s: %s%s ==\n", id, what,
              s.full ? "  [paper scale]" : "  [reduced scale; --full for paper scale]");
}

}  // namespace udtr::bench
