// Shared helpers for the experiment harness.  Every bench binary accepts
// `--full` to run at the paper's scale (1 Gb/s links, 100 s runs); the
// default scale keeps the whole suite runnable in minutes on one core while
// preserving every qualitative shape.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

namespace udtr::bench {

struct Scale {
  bool full = false;
  // Simulated seconds per scenario.
  [[nodiscard]] double seconds(double dflt, double full_val) const {
    return full ? full_val : dflt;
  }
  [[nodiscard]] double mbps(double dflt, double full_val) const {
    return full ? full_val : dflt;
  }
};

inline Scale parse_scale(int argc, char** argv) {
  Scale s;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) s.full = true;
  }
  return s;
}

inline void banner(const char* id, const char* what, const Scale& s) {
  std::printf("== %s: %s%s ==\n", id, what,
              s.full ? "  [paper scale]" : "  [reduced scale; --full for paper scale]");
}

}  // namespace udtr::bench
