// §2.2/§3.4: UDT's end-to-end estimation vs XCP's router feedback.
// The paper motivates UDT's design point: get close to what a
// router-assisted scheme (XCP "knows everything about the link") achieves,
// while remaining deployable end-to-end over plain UDP.  This bench puts
// the two side by side: ramp-up time, steady throughput, standing queue,
// and latecomer convergence.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "netsim/demux.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"
#include "netsim/xcp.hpp"

using namespace udtr;
using namespace udtr::sim;

namespace {

struct Out {
  double mbps;
  double t90 = -1.0;           // seconds to 90% of capacity
  std::size_t max_queue;
  double latecomer_share = 0;  // delivered ratio in the shared window
};

Out run_udt(Bandwidth link, double rtt, double seconds) {
  Simulator sim;
  Dumbbell net{sim, {link, static_cast<std::size_t>(std::max(
                               1000.0, bdp_packets(link, rtt, 1500)))}};
  net.add_udt_flow({}, rtt);
  UdtFlowConfig late;
  late.start_time = seconds * 0.4;
  net.add_udt_flow(late, rtt);
  ThroughputSampler sampler{
      sim, [&] { return net.udt_receiver(0).stats().delivered +
                        net.udt_receiver(1).stats().delivered; },
      1500, 0.5};
  sim.run_until(seconds * 0.4);
  const auto h0 = net.udt_receiver(0).stats().delivered;
  sim.run_until(seconds);
  Out o{};
  o.mbps = sampler.mean_mbps();
  const double target = 0.9 * link.mbits_per_sec();
  const auto& s = sampler.samples_mbps();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] >= target) {
      o.t90 = 0.5 * static_cast<double>(i + 1);
      break;
    }
  }
  o.max_queue = net.bottleneck().stats().max_queue_depth;
  const double f0 =
      static_cast<double>(net.udt_receiver(0).stats().delivered - h0);
  const double f1 = static_cast<double>(net.udt_receiver(1).stats().delivered);
  o.latecomer_share = f1 / std::max(f0 + f1, 1.0);
  return o;
}

Out run_xcp(Bandwidth link, double rtt, double seconds) {
  Simulator sim;
  Link l{sim, link, 0.0,
         static_cast<std::size_t>(
             std::max(1000.0, bdp_packets(link, rtt, 1500)))};
  XcpRouter router{sim, l};
  FlowDemux demux;
  l.set_next(&demux);
  std::vector<std::unique_ptr<XcpSender>> snd;
  std::vector<std::unique_ptr<XcpReceiver>> rcv;
  std::vector<std::unique_ptr<DelayLink>> delays;
  const auto add = [&](double start) {
    XcpFlowConfig cfg;
    cfg.flow_id = static_cast<int>(snd.size()) + 1;
    cfg.start_time = start;
    auto s = std::make_unique<XcpSender>(sim, cfg);
    auto r = std::make_unique<XcpReceiver>(sim);
    auto fwd = std::make_unique<DelayLink>(sim, rtt / 2);
    auto rev = std::make_unique<DelayLink>(sim, rtt / 2);
    s->set_out(fwd.get());
    fwd->set_next(&router);
    demux.route(cfg.flow_id, r.get());
    r->set_out(rev.get());
    rev->set_next(s.get());
    s->start();
    snd.push_back(std::move(s));
    rcv.push_back(std::move(r));
    delays.push_back(std::move(fwd));
    delays.push_back(std::move(rev));
  };
  add(0.0);
  add(seconds * 0.4);
  ThroughputSampler sampler{
      sim,
      [&] { return rcv[0]->stats().delivered + rcv[1]->stats().delivered; },
      1500, 0.5};
  sim.run_until(seconds * 0.4);
  const auto h0 = rcv[0]->stats().delivered;
  sim.run_until(seconds);
  Out o{};
  o.mbps = sampler.mean_mbps();
  const double target = 0.9 * link.mbits_per_sec();
  const auto& s = sampler.samples_mbps();
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] >= target) {
      o.t90 = 0.5 * static_cast<double>(i + 1);
      break;
    }
  }
  o.max_queue = l.stats().max_queue_depth;
  const double f0 = static_cast<double>(rcv[0]->stats().delivered - h0);
  const double f1 = static_cast<double>(rcv[1]->stats().delivered);
  o.latecomer_share = f1 / std::max(f0 + f1, 1.0);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = udtr::bench::parse_scale(argc, argv);
  udtr::bench::banner("§2.2/§3.4", "end-to-end UDT vs router-assisted XCP",
                      scale);

  const Bandwidth link = Bandwidth::mbps(scale.mbps(100, 1000));
  const double rtt = 0.100;
  const double seconds = scale.seconds(30, 100);

  const Out udt = run_udt(link, rtt, seconds);
  const Out xcp = run_xcp(link, rtt, seconds);

  std::printf("%-6s %12s %10s %12s %18s\n", "proto", "agg Mb/s", "t90 (s)",
              "max queue", "latecomer share");
  const auto row = [&](const char* n, const Out& o) {
    std::printf("%-6s %12.1f %10.1f %12zu %17.0f%%\n", n, o.mbps, o.t90,
                o.max_queue, 100.0 * o.latecomer_share);
  };
  row("UDT", udt);
  row("XCP", xcp);
  std::printf("\nexpected: XCP (router feedback) ramps faster with a near-"
              "empty queue and instant latecomer convergence; UDT gets close "
              "on throughput and convergence purely end-to-end — the paper's "
              "deployability argument.\n");
  return 0;
}
