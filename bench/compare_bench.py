#!/usr/bin/env python3
"""Perf smoke: compare a BENCH_*.json against a committed baseline.

Usage: compare_bench.py CURRENT.json BASELINE.json [--tolerance 0.2]
                        [--skip-unless KEY]

The baseline file lists only the keys worth gating on — structural numbers
(syscalls per packet, payload copies per byte) that are stable run over run,
not raw throughput, which shared CI runners scatter far beyond any useful
band.  Every baseline key must exist in the current document and lie within
the relative tolerance of the baseline value; keys present in the current
document but not in the baseline are ignored.  Exits non-zero on the first
report of any violation (all keys are still printed).

--skip-unless KEY gates the whole comparison on a capability flag in the
CURRENT document: when KEY is missing, zero, or falsy there (e.g.
uring_supported on a kernel without io_uring), the script prints SKIPPED and
exits 0 instead of failing on keys the run could not produce.
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed relative deviation (0.2 = +/-20%%)")
    ap.add_argument("--skip-unless", metavar="KEY", default=None,
                    help="skip (exit 0) unless KEY is truthy in CURRENT")
    args = ap.parse_args()

    with open(args.current) as f:
        current = json.load(f)
    with open(args.baseline) as f:
        baseline = json.load(f)

    if args.skip_unless is not None and not current.get(args.skip_unless):
        print(f"SKIPPED: {args.current} has no truthy "
              f"'{args.skip_unless}' — comparison not applicable here")
        return 0

    skipped_meta = {"git_sha", "generated_utc"}
    failures = 0
    print(f"{'key':44} {'baseline':>12} {'current':>12} {'dev':>8}")
    for key, base in baseline.items():
        if key in skipped_meta or not isinstance(base, (int, float)):
            continue
        cur = current.get(key)
        if not isinstance(cur, (int, float)):
            print(f"{key:44} {base:12.4g} {'MISSING':>12} {'':>8}  FAIL")
            failures += 1
            continue
        if base == 0:
            # No relative band around zero; baselines should not list such
            # keys, but tolerate them rather than divide by zero.
            status = "ok" if cur == 0 else "FAIL"
            print(f"{key:44} {base:12.4g} {cur:12.4g} {'n/a':>8}  {status}")
            failures += status == "FAIL"
            continue
        dev = abs(cur - base) / abs(base)
        status = "ok" if dev <= args.tolerance else "FAIL"
        print(f"{key:44} {base:12.4g} {cur:12.4g} {dev:7.1%}  {status}")
        failures += status == "FAIL"

    if failures:
        print(f"\n{failures} key(s) outside the +/-{args.tolerance:.0%} band "
              f"of {args.baseline}", file=sys.stderr)
        return 1
    print(f"\nall keys within +/-{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
