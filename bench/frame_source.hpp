// Synthetic video-frame source shared by the streaming benches
// (bench_streaming_video, bench_streaming_join).  Models a fixed-fps
// encoder emitting large keyframes and small delta frames; every frame
// carries a self-describing header so a receiver can verify integrity and
// compute motion-to-photon latency without any side channel:
//
//   [0:8)   frame id        (big-endian)
//   [8:16)  frame size      (big-endian; must equal the delivered length)
//   [16:24) send timestamp  (big-endian, steady-clock nanoseconds)
//   [24:)   deterministic pattern derived from the frame id
#pragma once

#include <chrono>
#include <cstdint>
#include <span>

namespace udtr::bench {

struct FrameSpec {
  double fps = 30.0;
  int keyframe_interval = 30;       // frames per keyframe (GOP length)
  std::size_t key_bytes = 160'000;  // keyframe payload
  std::size_t delta_bytes = 16'000; // delta-frame payload
};

class FrameSource {
 public:
  explicit FrameSource(FrameSpec spec) : spec_{spec} {}

  [[nodiscard]] std::size_t frame_bytes(std::uint64_t id) const {
    const auto interval = static_cast<std::uint64_t>(spec_.keyframe_interval);
    return id % interval == 0 ? spec_.key_bytes : spec_.delta_bytes;
  }
  [[nodiscard]] double avg_frame_bytes() const {
    const double n = spec_.keyframe_interval;
    return (static_cast<double>(spec_.key_bytes) +
            (n - 1.0) * static_cast<double>(spec_.delta_bytes)) /
           n;
  }
  [[nodiscard]] double nominal_mbps() const {
    return avg_frame_bytes() * 8.0 * spec_.fps / 1e6;
  }
  [[nodiscard]] std::chrono::nanoseconds frame_period() const {
    return std::chrono::nanoseconds{
        static_cast<std::int64_t>(1e9 / spec_.fps)};
  }
  [[nodiscard]] const FrameSpec& spec() const { return spec_; }

  // Writes frame `id` into `buf` (whose size must be frame_bytes(id)),
  // stamping `send_ns` as the capture/send time.
  static void fill(std::span<std::uint8_t> buf, std::uint64_t id,
                   std::uint64_t send_ns) {
    put_be64(buf, 0, id);
    put_be64(buf, 8, buf.size());
    put_be64(buf, 16, send_ns);
    for (std::size_t i = 24; i < buf.size(); ++i) {
      buf[i] = pattern_byte(id, i);
    }
  }

  // Validates a delivered frame end to end; on success returns true and
  // fills `id` / `send_ns`.  Any header mismatch, size mismatch, or
  // corrupted pattern byte fails the frame.
  static bool verify(std::span<const std::uint8_t> frame, std::uint64_t& id,
                     std::uint64_t& send_ns) {
    if (frame.size() < 24) return false;
    id = get_be64(frame, 0);
    if (get_be64(frame, 8) != frame.size()) return false;
    send_ns = get_be64(frame, 16);
    for (std::size_t i = 24; i < frame.size(); ++i) {
      if (frame[i] != pattern_byte(id, i)) return false;
    }
    return true;
  }

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  static std::uint8_t pattern_byte(std::uint64_t id, std::size_t i) {
    return static_cast<std::uint8_t>(id * 131 + i * 29 + 7);
  }
  static void put_be64(std::span<std::uint8_t> b, std::size_t off,
                       std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      b[off + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (56 - 8 * i));
    }
  }
  static std::uint64_t get_be64(std::span<const std::uint8_t> b,
                                std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | b[off + static_cast<std::size_t>(i)];
    }
    return v;
  }

  FrameSpec spec_;
};

}  // namespace udtr::bench
