// File transfer over UDT using the sendfile/recvfile API (paper §4.7):
// the use case the protocol was built for — bulk disk-to-disk movement.
//
//   server:  ./file_transfer recv <port> <output-path> <bytes>
//   client:  ./file_transfer send <host> <port> <input-path>
//   demo:    ./file_transfer            (runs both ends in one process)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <random>
#include <string>

#include "udt/socket.hpp"

namespace {

using namespace udtr::udt;

int run_server(std::uint16_t port, const std::string& path,
               std::uint64_t bytes) {
  auto listener = Socket::listen(port);
  if (!listener) {
    std::fprintf(stderr, "cannot listen on %u\n", port);
    return 1;
  }
  std::printf("listening on :%u, waiting for sender...\n",
              listener->local_port());
  auto sock = listener->accept(std::chrono::minutes{5});
  if (!sock) {
    std::fprintf(stderr, "no connection\n");
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t got = sock->recvfile(path, bytes);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  std::printf("received %llu bytes -> %s (%.1f Mb/s)\n",
              (unsigned long long)got, path.c_str(),
              static_cast<double>(got) * 8.0 / secs / 1e6);
  sock->close();
  return got == bytes ? 0 : 2;
}

int run_client(const std::string& host, std::uint16_t port,
               const std::string& path) {
  const auto size = std::filesystem::file_size(path);
  auto sock = Socket::connect(host, port);
  if (!sock) {
    std::fprintf(stderr, "cannot connect to %s:%u\n", host.c_str(), port);
    return 1;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t sent = sock->sendfile(path, 0, size);
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const PerfStats p = sock->perf();
  std::printf("sent %llu bytes (%.1f Mb/s, %llu retransmissions)\n",
              (unsigned long long)sent,
              static_cast<double>(sent) * 8.0 / secs / 1e6,
              (unsigned long long)p.retransmitted);
  sock->close();
  return sent == size ? 0 : 2;
}

int run_demo() {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "udtr_file_demo";
  fs::create_directories(dir);
  const auto src = (dir / "demo_src.bin").string();
  const auto dst = (dir / "demo_dst.bin").string();

  constexpr std::uint64_t kBytes = 16ULL << 20;
  {
    std::ofstream f{src, std::ios::binary};
    std::mt19937_64 rng{7};
    std::vector<char> block(1 << 20);
    for (std::uint64_t off = 0; off < kBytes; off += block.size()) {
      for (auto& c : block) c = static_cast<char>(rng());
      f.write(block.data(), static_cast<std::streamsize>(block.size()));
    }
  }

  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  if (!client || !server) return 1;

  auto send_done = std::async(std::launch::async,
                              [&] { return client->sendfile(src, 0, kBytes); });
  const std::uint64_t got = server->recvfile(dst, kBytes);
  const std::uint64_t sent = send_done.get();
  client->close();
  server->close();

  // Verify integrity end to end.
  std::ifstream a{src, std::ios::binary}, b{dst, std::ios::binary};
  bool equal = true;
  std::vector<char> ba(1 << 20), bb(1 << 20);
  while (a && b) {
    a.read(ba.data(), static_cast<std::streamsize>(ba.size()));
    b.read(bb.data(), static_cast<std::streamsize>(bb.size()));
    if (a.gcount() != b.gcount() ||
        std::memcmp(ba.data(), bb.data(),
                    static_cast<std::size_t>(a.gcount())) != 0) {
      equal = false;
      break;
    }
  }
  std::printf("demo: sent %llu, received %llu, integrity %s\n",
              (unsigned long long)sent, (unsigned long long)got,
              equal ? "OK" : "FAILED");
  fs::remove_all(dir);
  return (sent == kBytes && got == kBytes && equal) ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 5 && std::string{argv[1]} == "recv") {
    return run_server(static_cast<std::uint16_t>(std::atoi(argv[2])),
                      argv[3], static_cast<std::uint64_t>(std::atoll(argv[4])));
  }
  if (argc >= 5 && std::string{argv[1]} == "send") {
    return run_client(argv[2], static_cast<std::uint16_t>(std::atoi(argv[3])),
                      argv[4]);
  }
  if (argc == 1) return run_demo();
  std::fprintf(stderr,
               "usage: %s recv <port> <output> <bytes>\n"
               "       %s send <host> <port> <input>\n"
               "       %s            (single-process demo)\n",
               argv[0], argv[0], argv[0]);
  return 64;
}
