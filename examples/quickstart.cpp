// Quickstart: the 60-second tour of the UDT socket API.
//
// Starts a listener, connects to it over loopback UDP, pushes 32 MB through
// the protocol, and prints the performance counters — the same flow as the
// first example in the README.
//
//   $ ./quickstart [megabytes]
#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <vector>

#include "udt/socket.hpp"

int main(int argc, char** argv) {
  using namespace udtr::udt;
  const std::size_t megabytes =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 32;
  const std::size_t total = megabytes << 20;

  // 1. Server: listen and accept.
  auto listener = Socket::listen(0);
  if (!listener) {
    std::fprintf(stderr, "listen failed\n");
    return 1;
  }
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });

  // 2. Client: connect.
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  if (!client || !server) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  std::printf("connected: client :%u -> server :%u\n", client->local_port(),
              server->local_port());

  // 3. Transfer: one thread sends, the main thread receives.
  std::vector<std::uint8_t> payload(total);
  std::mt19937_64 rng{42};
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  const auto t0 = std::chrono::steady_clock::now();
  auto sender = std::async(std::launch::async, [&] {
    client->send(payload);
    client->flush(std::chrono::seconds{120});
  });

  std::vector<std::uint8_t> buf(1 << 20);
  std::size_t received = 0;
  while (received < total) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{10});
    if (n == 0) break;
    received += n;
  }
  sender.get();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  // 4. Inspect the protocol's performance counters.
  const PerfStats cs = client->perf();
  const PerfStats ss = server->perf();
  std::printf("transferred %zu MB in %.2f s  =>  %.1f Mb/s\n", megabytes,
              secs, static_cast<double>(received) * 8.0 / secs / 1e6);
  std::printf("sender:   %llu data pkts, %llu retransmitted, %llu ACKs in, "
              "%llu NAKs in\n",
              (unsigned long long)cs.data_packets_sent,
              (unsigned long long)cs.retransmitted,
              (unsigned long long)cs.acks_recv,
              (unsigned long long)cs.naks_recv);
  std::printf("receiver: %llu data pkts, RTT %.2f ms, est. capacity %.0f "
              "Mb/s, window %.0f pkts\n",
              (unsigned long long)ss.data_packets_recv, ss.rtt_ms,
              ss.capacity_mbps, cs.window_pkts);

  client->close();
  server->close();
  return received == total ? 0 : 2;
}
