// The streaming-join motivation example (paper §2.1, Fig. 1).
//
// Two real-time record streams are joined at machine C with a window join:
// stream A arrives from a remote site (100 ms RTT), stream B from a local
// one (1 ms RTT); both share C's bottleneck ingress link.  A window join can
// only match records it has from BOTH streams, so the joined output rate is
// twice the SLOWER stream's rate.  With TCP, RTT bias starves stream A and
// caps the join far below the link capacity; UDT's RTT-independent control
// does not (§3.8, and §5.3: 600-800 Mb/s on the real testbed).
//
//   ./streaming_join [--full]      (--full = 1 Gb/s link, paper scale)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace {

using namespace udtr;
using namespace udtr::sim;

struct JoinResult {
  double stream_a_mbps;  // remote, long RTT
  double stream_b_mbps;  // local, short RTT
  double join_mbps;      // 2 x min(A, B)
};

JoinResult run_join(bool use_udt, Bandwidth link, double seconds) {
  Simulator sim;
  const auto bdp = static_cast<std::size_t>(
      std::max(1000.0, bdp_packets(link, 0.1, 1500)));
  Dumbbell net{sim, {link, bdp}};
  if (use_udt) {
    net.add_udt_flow({}, 0.100);  // stream A: remote
    net.add_udt_flow({}, 0.001);  // stream B: local
  } else {
    net.add_tcp_flow({}, 0.100);
    net.add_tcp_flow({}, 0.001);
  }
  sim.run_until(seconds);
  const auto delivered = [&](std::size_t i) {
    return use_udt ? net.udt_receiver(i).stats().delivered
                   : net.tcp_receiver(i).stats().delivered;
  };
  JoinResult r{};
  r.stream_a_mbps = average_mbps(delivered(0), 1500, 0.0, seconds);
  r.stream_b_mbps = average_mbps(delivered(1), 1500, 0.0, seconds);
  r.join_mbps = 2.0 * std::min(r.stream_a_mbps, r.stream_b_mbps);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full =
      argc > 1 && std::strcmp(argv[1], "--full") == 0;
  const Bandwidth link = full ? Bandwidth::gbps(1) : Bandwidth::mbps(100);
  const double seconds = full ? 100.0 : 30.0;

  std::printf("streaming join at machine C  (link %.0f Mb/s, streams: "
              "A rtt=100ms remote, B rtt=1ms local, %gs)\n",
              link.mbits_per_sec(), seconds);
  std::printf("%-10s %14s %14s %16s\n", "transport", "stream A Mb/s",
              "stream B Mb/s", "join output Mb/s");
  for (const bool udt : {false, true}) {
    const JoinResult r = run_join(udt, link, seconds);
    std::printf("%-10s %14.1f %14.1f %16.1f\n", udt ? "UDT" : "TCP",
                r.stream_a_mbps, r.stream_b_mbps, r.join_mbps);
  }
  std::printf("\npaper (1 Gb/s, simulated): TCP streams 8.5 / 870 Mb/s -> "
              "join 16 Mb/s; UDT join 600-800 Mb/s.\n");
  return 0;
}
