// udt_netperf: memory-to-memory throughput tool over the real socket
// library, in the spirit of the testbed measurements in §5.1 — including a
// live one-line-per-second performance trace like Figs. 11/12.
//
//   ./udt_netperf [--seconds N] [--mss BYTES] [--loss P] [--cap MBPS]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "udt/socket.hpp"

int main(int argc, char** argv) {
  using namespace udtr::udt;
  double seconds = 5.0;
  int mss = 1456;
  double loss = 0.0;
  double cap_mbps = 0.0;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const double v = std::atof(argv[i + 1]);
    if (flag == "--seconds") seconds = v;
    else if (flag == "--mss") mss = static_cast<int>(v);
    else if (flag == "--loss") loss = v;
    else if (flag == "--cap") cap_mbps = v;
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return 64;
    }
  }

  SocketOptions opts;
  opts.mss_bytes = mss;
  opts.loss_injection = loss;
  opts.max_bandwidth_mbps = cap_mbps;

  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  if (!client || !server) {
    std::fprintf(stderr, "connection failed\n");
    return 1;
  }

  std::atomic<bool> stop{false};
  auto send_thread = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x5A);
    while (!stop) client->send(block);
  });
  auto recv_thread = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{200});
  });

  std::printf("%6s %12s %10s %10s %10s %12s\n", "t(s)", "Mb/s", "rtx",
              "naks", "rtt(ms)", "period(us)");
  std::uint64_t last_bytes = 0;
  for (int t = 1; t <= static_cast<int>(seconds); ++t) {
    std::this_thread::sleep_for(std::chrono::seconds{1});
    const PerfStats p = server->perf();
    const PerfStats c = client->perf();
    const double mbps =
        static_cast<double>(p.bytes_delivered - last_bytes) * 8.0 / 1e6;
    last_bytes = p.bytes_delivered;
    std::printf("%6d %12.1f %10llu %10llu %10.2f %12.2f\n", t, mbps,
                (unsigned long long)c.retransmitted,
                (unsigned long long)c.naks_recv, p.rtt_ms, c.send_period_us);
  }
  stop = true;
  client->close();
  server->close();
  send_thread.get();
  recv_thread.get();
  return 0;
}
