// SABUL congestion control (paper §2.3) — UDT's predecessor.
//
// SABUL tunes the packet sending period MULTIPLICATIVELY according to the
// current sending rate: every (constant) SYN interval without loss the rate
// is scaled up, and each loss report scales it down.  Chiu & Jain's analysis
// says MIMD does not converge to fairness between flows, which is exactly
// what the paper reports ("the most important improvement of UDT over SABUL
// is the congestion control algorithm, which has a similar efficiency but is
// superior in regard to fairness") — bench_sabul_comparison measures it.
//
// The interface mirrors UdtCc so simulator agents can host either.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/seqno.hpp"

namespace udtr::cc {

struct SabulCcConfig {
  int mss_bytes = 1500;
  double syn_s = 0.01;          // constant control interval (RTT-unbiased)
  double increase_factor = 1.04;  // rate multiplier per loss-free SYN
  double decrease_factor = 0.91;  // rate multiplier on a loss report
  double initial_rate_pps = 100.0;
  double max_rate_pps = 1e7;
};

class SabulCc {
 public:
  explicit SabulCc(SabulCcConfig cfg = {})
      : cfg_(cfg), period_s_(1.0 / cfg.initial_rate_pps) {}

  void set_now(double now_s) { now_s_ = now_s; }

  // Called on every (SYN-clocked) ACK: multiplicative increase when the
  // interval saw no loss.
  void on_ack() {
    if (now_s_ - last_loss_s_ < cfg_.syn_s) return;
    const double rate =
        std::min(1.0 / period_s_ * cfg_.increase_factor, cfg_.max_rate_pps);
    period_s_ = 1.0 / rate;
  }

  void on_nak() {
    last_loss_s_ = now_s_;
    // Rate control runs on the SYN clock: at most one multiplicative
    // decrease per interval, regardless of how many loss reports land in it
    // (continuous loss produces NAK storms, §3.5/§6).
    if (last_decrease_s_ >= 0.0 && now_s_ - last_decrease_s_ < cfg_.syn_s) {
      return;
    }
    last_decrease_s_ = now_s_;
    period_s_ = std::min(period_s_ / cfg_.decrease_factor, 10.0);
  }

  void on_timeout() { on_nak(); }

  [[nodiscard]] double pkt_send_period_s() const { return period_s_; }
  // SABUL used a static flow window (the paper's §2.3: UDT *added* dynamic
  // window control).
  [[nodiscard]] double window_packets() const { return static_window_; }
  void set_static_window(double pkts) { static_window_ = pkts; }

 private:
  SabulCcConfig cfg_;
  double period_s_;
  double now_s_ = 0.0;
  double last_loss_s_ = -1.0;
  double last_decrease_s_ = -1.0;
  double static_window_ = 25600.0;  // SABUL's fixed flow window
};

}  // namespace udtr::cc
