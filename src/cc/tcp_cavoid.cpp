#include "cc/tcp_cavoid.hpp"

#include <stdexcept>

#include "cc/tcp_cavoid2.hpp"

namespace udtr::cc {

std::unique_ptr<TcpCongAvoid> make_cong_avoid(const std::string& name) {
  if (name == "reno-sack" || name == "reno" || name == "sack") {
    return std::make_unique<RenoCongAvoid>();
  }
  if (name == "scalable") return std::make_unique<ScalableCongAvoid>();
  if (name == "highspeed") return std::make_unique<HighSpeedCongAvoid>();
  if (name == "bic") return std::make_unique<BicCongAvoid>();
  if (name == "vegas") return std::make_unique<VegasCongAvoid>();
  if (name == "fast") return std::make_unique<FastCongAvoid>();
  throw std::invalid_argument("unknown TCP congestion avoidance: " + name);
}

}  // namespace udtr::cc
