// Window-growth strategies for the TCP comparators (paper §2.2, §5.2).
//
// The simulator's TCP agent implements connection mechanics (slow start,
// SACK-based recovery, retransmission timeout) once; the congestion-avoidance
// increase/decrease rule is pluggable so TCP SACK ("standard TCP" in the
// paper), Scalable TCP, and HighSpeed TCP share the rest of the machinery.
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>

namespace udtr::cc {

struct CaContext;  // defined in tcp_cavoid2.hpp (RTT-aware strategies)

class TcpCongAvoid {
 public:
  virtual ~TcpCongAvoid() = default;
  // Window growth applied per received ACK while in congestion avoidance.
  // `cwnd` is in packets; returns the new cwnd.
  [[nodiscard]] virtual double on_ack(double cwnd) const = 0;
  // Multiplicative decrease applied on entering loss recovery.
  [[nodiscard]] virtual double on_loss(double cwnd) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  // Delay-aware strategies (Vegas, FAST) override these to receive RTT
  // context; loss-only strategies keep the defaults.
  [[nodiscard]] virtual bool wants_context() const { return false; }
  [[nodiscard]] virtual double on_ack_ctx(double cwnd,
                                          const CaContext& /*ctx*/) const {
    return on_ack(cwnd);
  }
};

// Standard AIMD: +1 segment per RTT (1/cwnd per ACK), halve on loss.
class RenoCongAvoid final : public TcpCongAvoid {
 public:
  [[nodiscard]] double on_ack(double cwnd) const override {
    return cwnd + 1.0 / std::max(cwnd, 1.0);
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    return std::max(cwnd / 2.0, 2.0);
  }
  [[nodiscard]] std::string name() const override { return "reno-sack"; }
};

// Scalable TCP [Kelly 03]: MIMD — cwnd += 0.01 per ACK, cwnd *= 0.875 on
// loss, for cwnd above the legacy-TCP threshold.
class ScalableCongAvoid final : public TcpCongAvoid {
 public:
  explicit ScalableCongAvoid(double legacy_threshold = 16.0)
      : threshold_(legacy_threshold) {}
  [[nodiscard]] double on_ack(double cwnd) const override {
    if (cwnd < threshold_) return cwnd + 1.0 / std::max(cwnd, 1.0);
    return cwnd + 0.01;
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    if (cwnd < threshold_) return std::max(cwnd / 2.0, 2.0);
    return std::max(cwnd * 0.875, 2.0);
  }
  [[nodiscard]] std::string name() const override { return "scalable"; }

 private:
  double threshold_;
};

// HighSpeed TCP [RFC 3649]: a(w)/w per ACK, (1-b(w)) on loss, interpolated on
// a log scale between (W_low=38, 1, 0.5) and (W_high=83000, 72, 0.1).
class HighSpeedCongAvoid final : public TcpCongAvoid {
 public:
  [[nodiscard]] double on_ack(double cwnd) const override {
    return cwnd + a(cwnd) / std::max(cwnd, 1.0);
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    return std::max(cwnd * (1.0 - b(cwnd)), 2.0);
  }
  [[nodiscard]] std::string name() const override { return "highspeed"; }

  // Exposed for unit tests against the RFC's reference values.
  [[nodiscard]] static double a(double w) {
    if (w <= kWLow) return 1.0;
    const double bw = b(w);
    // RFC 3649 section 5: a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w)).
    return (w * w * p(w) * 2.0 * bw) / (2.0 - bw);
  }
  [[nodiscard]] static double b(double w) {
    if (w <= kWLow) return 0.5;
    const double f = (std::log(w) - std::log(kWLow)) /
                     (std::log(kWHigh) - std::log(kWLow));
    return (kBHigh - 0.5) * f + 0.5;
  }

 private:
  [[nodiscard]] static double p(double w) {
    // Response-function inverse: p(w) on the straight line (in log-log space)
    // through (W_low, P_low) and (W_high, P_high).
    const double s = (std::log(kPHigh) - std::log(kPLow)) /
                     (std::log(kWHigh) - std::log(kWLow));
    return std::exp(std::log(kPLow) + s * (std::log(w) - std::log(kWLow)));
  }
  static constexpr double kWLow = 38.0;
  static constexpr double kWHigh = 83000.0;
  static constexpr double kPLow = 1.5 / (kWLow * kWLow);
  static constexpr double kPHigh = 1e-7;  // ~ 10^-7 at W_high
  static constexpr double kBHigh = 0.1;
};

[[nodiscard]] std::unique_ptr<TcpCongAvoid> make_cong_avoid(
    const std::string& name);

}  // namespace udtr::cc
