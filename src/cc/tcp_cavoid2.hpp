// RTT-aware TCP congestion-avoidance strategies: Bic TCP, TCP Vegas, and a
// FAST-style controller (paper §2.2/§5.2 discussion).
//
// These need per-ACK RTT context (smoothed and base/propagation RTT), which
// the loss-only strategies in tcp_cavoid.hpp do not.  The agent feeds the
// context through TcpCongAvoid::on_ack_ctx; strategies here are stateful.
#pragma once

#include <algorithm>
#include <cmath>

#include "cc/tcp_cavoid.hpp"

namespace udtr::cc {

// Per-ACK context the TCP sender provides to delay-aware strategies.
struct CaContext {
  double srtt_s = 0.0;      // smoothed RTT
  double base_rtt_s = 0.0;  // minimum observed RTT (propagation estimate)
};

// Bic TCP [Xu/Harfoush/Rhee 04]: binary search toward the window where the
// last loss occurred, additive "max probing" above it.  The paper credits
// it with fast probing without worsening TCP's RTT bias.
class BicCongAvoid final : public TcpCongAvoid {
 public:
  [[nodiscard]] double on_ack(double cwnd) const override {
    // Per-ACK growth of inc(cwnd)/cwnd, where inc is the per-RTT step.
    double inc;
    if (have_max_ && cwnd < last_max_) {
      const double dist = (last_max_ - cwnd) / 2.0;  // binary search step
      inc = std::clamp(dist, kSmin, kSmax);
    } else {
      // Max probing: slow-start-like ramp away from the old maximum.
      inc = std::min(kSmax, 1.0 + (have_max_ ? (cwnd - last_max_) / 16.0
                                             : 1.0));
    }
    return cwnd + inc / std::max(cwnd, 1.0);
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    // Fast convergence: a loss below the previous maximum means another
    // flow is competing — concede by lowering the search target.
    if (have_max_ && cwnd < last_max_) {
      last_max_ = cwnd * (2.0 - kBeta) / 2.0;
    } else {
      last_max_ = cwnd;
    }
    have_max_ = true;
    return std::max(cwnd * (1.0 - kBeta), 2.0);
  }
  [[nodiscard]] std::string name() const override { return "bic"; }

 private:
  static constexpr double kSmin = 0.01;
  static constexpr double kSmax = 32.0;
  static constexpr double kBeta = 0.125;
  mutable double last_max_ = 0.0;  // window at the last loss event
  mutable bool have_max_ = false;
};

// TCP Vegas [Brakmo/Peterson 95]: keep alpha..beta packets queued, using
// delay as the congestion signal (paper §2.2: "use delay instead of loss as
// the main indication of congestion").
class VegasCongAvoid final : public TcpCongAvoid {
 public:
  explicit VegasCongAvoid(double alpha = 2.0, double beta = 4.0)
      : alpha_(alpha), beta_(beta) {}

  [[nodiscard]] bool wants_context() const override { return true; }

  [[nodiscard]] double on_ack_ctx(double cwnd,
                                  const CaContext& ctx) const override {
    if (ctx.base_rtt_s <= 0.0 || ctx.srtt_s <= 0.0) {
      return cwnd + 1.0 / std::max(cwnd, 1.0);  // no estimate yet: Reno
    }
    // Backlog estimate: packets we keep in the queue.
    const double diff =
        cwnd * (1.0 - ctx.base_rtt_s / ctx.srtt_s);
    if (diff < alpha_) return cwnd + 1.0 / std::max(cwnd, 1.0);
    if (diff > beta_) return std::max(cwnd - 1.0 / std::max(cwnd, 1.0), 2.0);
    return cwnd;
  }
  [[nodiscard]] double on_ack(double cwnd) const override {
    return cwnd + 1.0 / std::max(cwnd, 1.0);
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    return std::max(cwnd / 2.0, 2.0);
  }
  [[nodiscard]] std::string name() const override { return "vegas"; }

 private:
  double alpha_;
  double beta_;
};

// FAST-style controller [Jin/Wei/Low 04]: the equation-based window update
//   w <- min(2w, (1-g) w + g (base/rtt * w + alpha))
// applied fractionally per ACK.  `alpha` is the manually configured
// parameter the paper calls FAST's main deficiency (§5.2).
class FastCongAvoid final : public TcpCongAvoid {
 public:
  explicit FastCongAvoid(double alpha_pkts = 200.0, double gamma = 0.5)
      : alpha_(alpha_pkts), gamma_(gamma) {}

  [[nodiscard]] bool wants_context() const override { return true; }

  [[nodiscard]] double on_ack_ctx(double cwnd,
                                  const CaContext& ctx) const override {
    if (ctx.base_rtt_s <= 0.0 || ctx.srtt_s <= 0.0) {
      return cwnd + 1.0 / std::max(cwnd, 1.0);
    }
    const double target =
        ctx.base_rtt_s / ctx.srtt_s * cwnd + alpha_;
    const double next = std::min(
        2.0 * cwnd, (1.0 - gamma_) * cwnd + gamma_ * target);
    // The update above is the once-per-RTT map; apply 1/cwnd of it per ACK.
    return std::max(cwnd + (next - cwnd) / std::max(cwnd, 1.0), 2.0);
  }
  [[nodiscard]] double on_ack(double cwnd) const override {
    return cwnd + 1.0 / std::max(cwnd, 1.0);
  }
  [[nodiscard]] double on_loss(double cwnd) const override {
    return std::max(cwnd / 2.0, 2.0);
  }
  [[nodiscard]] std::string name() const override { return "fast"; }

 private:
  double alpha_;
  double gamma_;
};

}  // namespace udtr::cc
