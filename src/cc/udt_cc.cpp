#include "cc/udt_cc.hpp"

#include <cmath>

namespace udtr::cc {

namespace {
// The sending period is never allowed to exceed the equivalent of one packet
// per 10 seconds, so a flow can always probe its way back up.
constexpr double kMaxPeriodS = 10.0;
constexpr double kMinPeriodS = 1e-9;
}  // namespace

UdtCc::UdtCc(UdtCcConfig cfg)
    : cfg_(cfg),
      // During slow start the window, not the pacing timer, limits sending.
      period_s_(1e-6),
      cwnd_(cfg.initial_cwnd),
      rng_state_(cfg.seed | 1) {}

std::uint64_t UdtCc::next_random() {
  // xorshift64: cheap, deterministic per seed, good enough for spacing.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

double UdtCc::increase_for_bandwidth(double avail_bps, int mss_bytes) {
  // Formula (1).  The floor term keeps a flow probing at least one packet
  // every 1500 SYN intervals (15 s) regardless of how little spare bandwidth
  // the estimator reports.
  const double floor_inc = (1.0 / 1500.0) * (1500.0 / mss_bytes);
  if (avail_bps <= 0.0) return floor_inc;
  const double exponent = std::ceil(std::log10(avail_bps));
  const double inc = std::pow(10.0, exponent - 9.0) * (1500.0 / mss_bytes);
  return std::max(inc, floor_inc);
}

void UdtCc::rate_increase(double capacity_pps) {
  const double bits_per_pkt = 8.0 * cfg_.mss_bytes;
  const double current_pps = 1.0 / period_s_;
  const double l_bps = capacity_pps * bits_per_pkt;
  const double c_bps = current_pps * bits_per_pkt;

  // Available bandwidth estimate (§3.4).  Before the first decrease, or once
  // the rate has recovered past the pre-decrease value, the whole headroom
  // L - C is available; below that point the surplus freed by the global
  // 1/9 rate cut bounds the estimate.
  double b_bps;
  if (!any_decrease_ || period_s_ < last_dec_period_s_) {
    b_bps = l_bps - c_bps;
  } else {
    b_bps = std::min(l_bps / 9.0, l_bps - c_bps);
  }

  const double inc = increase_for_bandwidth(b_bps, cfg_.mss_bytes);

  // Formula (2): SYN/P' = SYN/P + inc, i.e. the rate in packets-per-SYN grows
  // additively by inc.
  const double pkts_per_syn = cfg_.syn_s / period_s_ + inc;
  period_s_ = std::clamp(cfg_.syn_s / pkts_per_syn, kMinPeriodS, kMaxPeriodS);
}

void UdtCc::on_ack(const AckInfo& info) {
  // Smooth receiver-fed statistics (UDT keeps 7/8 EWMAs of RTT and rates).
  if (info.rtt_s > 0.0) {
    rtt_s_ = (rtt_s_ == 0.1 && !rtt_seen_) ? info.rtt_s
                                           : rtt_s_ * 0.875 + info.rtt_s * 0.125;
    rtt_seen_ = true;
  }
  if (info.recv_rate_pps > 0.0) {
    recv_rate_pps_ = recv_rate_pps_ <= 0.0
                         ? info.recv_rate_pps
                         : recv_rate_pps_ * 0.875 + info.recv_rate_pps * 0.125;
  }
  if (info.capacity_pps > 0.0) {
    capacity_pps_ = capacity_pps_ <= 0.0
                        ? info.capacity_pps
                        : capacity_pps_ * 0.875 + info.capacity_pps * 0.125;
  }

  if (slow_start_) {
    // Window doubles by counting acknowledged packets; leave slow start when
    // the window would exceed its cap and switch to rate control primed from
    // the measured receiving rate.
    const std::int32_t acked =
        ack_seen_ ? udtr::SeqNo::offset(last_ack_seq_, info.ack_seq) : 1;
    if (acked > 0) cwnd_ += acked;
    if (cwnd_ >= cfg_.max_window) {
      slow_start_ = false;
      period_s_ = recv_rate_pps_ > 0.0 ? 1.0 / recv_rate_pps_
                                       : (rtt_s_ + cfg_.syn_s) / cwnd_;
    }
  } else if (cfg_.window_control) {
    // Dynamic flow window (§3.2): W = AS * (SYN + RTT), capped by the free
    // receiver buffer advertised in the ACK.
    if (recv_rate_pps_ > 0.0) {
      cwnd_ = recv_rate_pps_ * (cfg_.syn_s + rtt_s_) + 16.0;
    }
    cwnd_ = std::min({cwnd_, info.avail_buffer_pkts, cfg_.max_window});
  } else {
    cwnd_ = cfg_.max_window;
  }
  last_ack_seq_ = info.ack_seq;
  ack_seen_ = true;

  if (!slow_start_) {
    // Rate increase runs once per SYN (ACKs are SYN-clocked) and is skipped
    // for the SYN interval that saw a NAK.
    if (now_s_ - last_nak_time_s_ >= cfg_.syn_s) {
      rate_increase(capacity_pps_);
    }
  }
}

void UdtCc::on_nak(udtr::SeqNo biggest_loss, udtr::SeqNo largest_sent) {
  last_nak_time_s_ = now_s_;

  if (slow_start_) {
    slow_start_ = false;
    period_s_ = recv_rate_pps_ > 0.0 ? 1.0 / recv_rate_pps_
                                     : (rtt_s_ + cfg_.syn_s) / cwnd_;
  }

  const bool new_epoch =
      !any_decrease_ || udtr::SeqNo::cmp(biggest_loss, last_dec_seq_) > 0;
  if (new_epoch) {
    // Formula (3) plus the one-SYN freeze that clears the bottleneck queue.
    any_decrease_ = true;
    last_dec_period_s_ = period_s_;
    period_s_ = std::min(period_s_ * 1.125, kMaxPeriodS);
    last_dec_seq_ = largest_sent;
    // Track how NAK-heavy epochs are and draw the spacing for further
    // decreases inside this epoch.
    avg_nak_per_epoch_ =
        avg_nak_per_epoch_ * 0.875 + epoch_nak_count_ * 0.125;
    epoch_nak_count_ = 1;
    epoch_decreases_ = 1;
    const auto span =
        static_cast<std::uint64_t>(std::max(avg_nak_per_epoch_, 1.0));
    dec_random_ = static_cast<int>(1 + next_random() % span);
    freeze_until_s_ = now_s_ + cfg_.syn_s;
  } else {
    // Repeated NAKs inside the same epoch (continuous loss) decrease only
    // every dec_random_-th report, boundedly — reacting to every loss
    // report is lethal (§6).
    ++epoch_nak_count_;
    if (epoch_decreases_ < cfg_.max_decreases_per_epoch &&
        epoch_nak_count_ % dec_random_ == 0) {
      ++epoch_decreases_;
      period_s_ = std::min(period_s_ * 1.125, kMaxPeriodS);
    }
  }
}

void UdtCc::on_delay_warning() {
  if (!cfg_.delay_trend_mode || slow_start_) return;
  // Rising delay is an early signal, not a loss: back off once per RTT and
  // suppress the next increase, but never freeze.
  if (last_delay_warn_s_ >= 0.0 && now_s_ - last_delay_warn_s_ < rtt_s_) {
    return;
  }
  last_delay_warn_s_ = now_s_;
  last_nak_time_s_ = now_s_;  // suppresses the increase for one SYN
  period_s_ = std::min(period_s_ * 1.125, kMaxPeriodS);
}

void UdtCc::on_timeout() {
  if (slow_start_) {
    slow_start_ = false;
    period_s_ = recv_rate_pps_ > 0.0 ? 1.0 / recv_rate_pps_
                                     : (rtt_s_ + cfg_.syn_s) / cwnd_;
  }
  // Post-slow-start timeouts leave the period alone: the EXP-driven loss
  // resend plus the epoch decrease already throttle the flow (UDT keeps the
  // historical period*2 reaction disabled for the same reason).
}

}  // namespace udtr::cc
