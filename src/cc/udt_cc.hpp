// UDT congestion control (paper §3) as a pure, host-agnostic algorithm.
//
// The same object drives both the discrete-event simulator agents and the
// real UDP socket library: the host feeds it events (ACK arrived, NAK
// arrived, timeout) together with the receiver-measured statistics carried in
// ACKs (RTT, packet arrival speed, estimated link capacity), and reads back
// the packet sending period and the flow window.
//
// Control laws implemented exactly as published:
//   (1) inc = max(10^(ceil(log10 B) - 9), 1/1500) * (1500 / MSS)   [pkts/SYN]
//       where B is the estimated available bandwidth in bits/s.
//   (2) SYN / P_new = SYN / P_old + inc
//   (3) P  = P * 1.125 on a NAK (rate x 8/9), with a one-SYN sending freeze
//       when the NAK starts a new congestion epoch.
// Available bandwidth B (§3.4): with link capacity L (RBPP) and current rate
// C, B = L - C while above the last-decrease rate, else min(L/9, L - C).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/seqno.hpp"

namespace udtr::cc {

struct UdtCcConfig {
  int mss_bytes = 1500;
  // Rate-control / ACK interval (paper: constant 0.01 s).
  double syn_s = 0.01;
  // Initial congestion window during slow start (packets).
  double initial_cwnd = 16.0;
  // Cap on the flow window (packets); receiver-buffer analogue.
  double max_window = 1e8;
  // Dynamic window control on/off (off reproduces Fig. 7 "without FC").
  bool window_control = true;
  // Maximum number of rate decreases within one congestion epoch, guarding
  // against collapse under continuous loss (paper §6 "processing continuous
  // loss is critical").
  int max_decreases_per_epoch = 5;
  // Obsolete delay-trend (PCT/PDT) congestion input (§6 lessons): when on,
  // delay warnings from the receiver throttle the flow before loss occurs.
  // Off by default — kept to reproduce the documented trade-off.
  bool delay_trend_mode = false;
  // Seed for the randomized within-epoch decrease spacing (see below).
  std::uint64_t seed = 1;
};

// Receiver statistics delivered with each (SYN-clocked) ACK.
struct AckInfo {
  udtr::SeqNo ack_seq;           // cumulative: all preceding packets received
  double rtt_s = 0.0;            // latest RTT measurement
  double recv_rate_pps = 0.0;    // median-filtered packet arrival speed
  double capacity_pps = 0.0;     // RBPP link-capacity estimate
  double avail_buffer_pkts = 1e9;  // free receiver buffer (flow control)
};

class UdtCc {
 public:
  explicit UdtCc(UdtCcConfig cfg = {});

  // --- events -------------------------------------------------------------
  void on_ack(const AckInfo& info);
  // A NAK arrived whose largest lost sequence number is `biggest_loss`;
  // `largest_sent` is the largest sequence number this sender has emitted.
  void on_nak(udtr::SeqNo biggest_loss, udtr::SeqNo largest_sent);
  void on_timeout();
  // Receiver detected an increasing delay trend (only honoured in
  // delay_trend_mode): a milder reaction than loss — one decrease, no
  // freeze, at most once per RTT.
  void on_delay_warning();

  // --- outputs ------------------------------------------------------------
  // Inter-packet sending period, seconds (the pacing interval).
  [[nodiscard]] double pkt_send_period_s() const { return period_s_; }
  // Current flow window in packets (min of AS-window and receiver buffer).
  [[nodiscard]] double window_packets() const { return cwnd_; }
  // True while the sender must pause (one SYN after an epoch-opening NAK).
  [[nodiscard]] bool frozen_until(double now_s) const {
    return now_s < freeze_until_s_;
  }
  // Absolute instant (host clock) the current freeze ends; <= now when not
  // frozen.  Lets the host schedule the resume precisely instead of polling.
  [[nodiscard]] double freeze_deadline_s() const { return freeze_until_s_; }
  [[nodiscard]] bool in_slow_start() const { return slow_start_; }
  [[nodiscard]] double last_rtt_s() const { return rtt_s_; }

  // The host's clock, needed for the freeze bookkeeping; hosts call the event
  // methods with their own notion of time via set_now() first.
  void set_now(double now_s) { now_s_ = now_s; }

  // Increase parameter (packets per SYN) for a given available bandwidth in
  // bits/s — exposed for Table 1 verification and the bench harness.
  [[nodiscard]] static double increase_for_bandwidth(double avail_bps,
                                                     int mss_bytes);

  [[nodiscard]] const UdtCcConfig& config() const { return cfg_; }

 private:
  void rate_increase(double capacity_pps);
  std::uint64_t next_random();

  UdtCcConfig cfg_;
  double period_s_;       // packet sending period P
  double cwnd_;           // flow window (packets)
  bool slow_start_ = true;
  double rtt_s_ = 0.1;    // until measured, assume 100 ms (UDT default-ish)
  bool rtt_seen_ = false;
  double recv_rate_pps_ = 0.0;
  double capacity_pps_ = 0.0;
  udtr::SeqNo last_ack_seq_{};
  bool ack_seen_ = false;
  double last_nak_time_s_ = -1.0;

  // Congestion-epoch bookkeeping.  Within an epoch, NAKs keep arriving as
  // retransmissions repair a continuous loss; decreasing on each of them is
  // lethal (§6).  Following the UDT spec, further decreases inside an epoch
  // happen every `dec_random_`-th NAK, where dec_random_ is drawn uniformly
  // from [1, avg NAKs per epoch], capped at max_decreases_per_epoch total.
  udtr::SeqNo last_dec_seq_{};   // largest seq sent when we last decreased
  bool any_decrease_ = false;
  double last_dec_period_s_ = 0.0;  // period at the last decrease
  int epoch_decreases_ = 0;
  int epoch_nak_count_ = 0;
  double avg_nak_per_epoch_ = 1.0;
  int dec_random_ = 1;
  std::uint64_t rng_state_ = 1;
  double freeze_until_s_ = -1.0;
  double now_s_ = 0.0;
  double last_delay_warn_s_ = -1.0;
};

}  // namespace udtr::cc
