// Packet-delay trend detection — the retired congestion signal (paper §6).
//
// Early UDT used the pairwise comparison test (PCT) and pairwise difference
// test (PDT) from Jain & Dovrolis's Pathload on one-way-delay samples to
// report rising delay as early congestion, before any loss.  The lesson
// recorded in the paper is that end-system noise (context switches, NIC
// interrupt coalescing) makes delay unreliable, so the mechanism was
// removed from the default protocol; it survives here as an optional mode
// so the documented trade-off (friendlier to TCP, worse throughput on noisy
// systems) can be reproduced.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace udtr {

class DelayTrendDetector {
 public:
  // Thresholds from Pathload: PCT > 0.66 and PDT > 0.55 indicate an
  // increasing trend over a group of samples.
  explicit DelayTrendDetector(std::size_t group_size = 16,
                              double pct_threshold = 0.66,
                              double pdt_threshold = 0.55)
      : group_(group_size),
        pct_thresh_(pct_threshold),
        pdt_thresh_(pdt_threshold) {
    samples_.reserve(group_);
  }

  // Feeds one one-way-delay sample (seconds; any consistent offset is fine
  // since only the trend matters).  Returns true when the completed group
  // shows an increasing trend.
  bool add_delay(double delay_s) {
    samples_.push_back(delay_s);
    if (samples_.size() < group_) return false;
    const bool trend = increasing_trend(samples_);
    samples_.clear();
    return trend;
  }

  // PCT: fraction of consecutive pairs that increase.
  [[nodiscard]] static double pct(const std::vector<double>& xs) {
    if (xs.size() < 2) return 0.0;
    int inc = 0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      if (xs[i] > xs[i - 1]) ++inc;
    }
    return static_cast<double>(inc) / static_cast<double>(xs.size() - 1);
  }

  // PDT: net displacement over total variation, in [-1, 1].
  [[nodiscard]] static double pdt(const std::vector<double>& xs) {
    if (xs.size() < 2) return 0.0;
    double total = 0.0;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      total += std::abs(xs[i] - xs[i - 1]);
    }
    if (total == 0.0) return 0.0;
    return (xs.back() - xs.front()) / total;
  }

  [[nodiscard]] bool increasing_trend(const std::vector<double>& xs) const {
    return pct(xs) > pct_thresh_ && pdt(xs) > pdt_thresh_;
  }

  void reset() { samples_.clear(); }

 private:
  std::size_t group_;
  double pct_thresh_;
  double pdt_thresh_;
  std::vector<double> samples_;
};

}  // namespace udtr
