// Median-filtered rate estimators (paper §3.2, §3.4).
//
// UDT estimates two rates at the receiver:
//  * packet arrival speed AS — a median filter over the last window of packet
//    arrival intervals: intervals farther than 8x from the median are
//    discarded and the remainder averaged (a plain mean fails because data
//    sending may pause, leaving huge gaps);
//  * link capacity L — the median of packet-pair dispersion samples (RBPP).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace udtr {

// Fixed-size circular window of interval samples (seconds per packet) that
// yields a rate (packets per second) through UDT's median filter.
class ArrivalSpeedEstimator {
 public:
  explicit ArrivalSpeedEstimator(std::size_t window = 16)
      : samples_(window, 0.0) {}

  void add_interval(double seconds) {
    samples_[pos_] = seconds;
    pos_ = (pos_ + 1) % samples_.size();
    if (count_ < samples_.size()) ++count_;
  }

  // Packets/second, or 0 if the window is not yet full (UDT reports speed
  // only once it has a full window, treating partial data as "unknown").
  [[nodiscard]] double packets_per_second() const {
    if (count_ < samples_.size()) return 0.0;
    std::vector<double> sorted(samples_.begin(), samples_.begin() + count_);
    std::nth_element(sorted.begin(), sorted.begin() + count_ / 2, sorted.end());
    const double median = sorted[count_ / 2];
    if (median <= 0.0) return 0.0;
    const double lo = median / 8.0, hi = median * 8.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const double v = samples_[i];
      if (v > lo && v < hi) {
        sum += v;
        ++n;
      }
    }
    // UDT requires more than half of the window to survive the filter;
    // otherwise the estimate is considered unreliable and 0 is reported.
    if (n <= count_ / 2 || sum <= 0.0) return 0.0;
    return static_cast<double>(n) / sum;
  }

  [[nodiscard]] std::size_t window() const { return samples_.size(); }
  [[nodiscard]] bool full() const { return count_ == samples_.size(); }

  void reset() {
    std::fill(samples_.begin(), samples_.end(), 0.0);
    pos_ = 0;
    count_ = 0;
  }

 private:
  std::vector<double> samples_;
  std::size_t pos_ = 0;
  std::size_t count_ = 0;
};

// Receiver-based packet pair (RBPP) link-capacity estimator: the median of
// the last window of pair-dispersion samples converted to packets/second.
class PacketPairEstimator {
 public:
  explicit PacketPairEstimator(std::size_t window = 16)
      : samples_(window, 0.0) {}

  // One packet-pair dispersion sample: seconds between the back-to-back pair.
  void add_dispersion(double seconds) {
    if (seconds <= 0.0) return;
    samples_[pos_] = seconds;
    pos_ = (pos_ + 1) % samples_.size();
    if (count_ < samples_.size()) ++count_;
  }

  // Estimated link capacity in packets/second (0 until samples exist).
  [[nodiscard]] double capacity_packets_per_second() const {
    if (count_ == 0) return 0.0;
    std::vector<double> sorted(samples_.begin(), samples_.begin() + count_);
    std::nth_element(sorted.begin(), sorted.begin() + count_ / 2, sorted.end());
    const double median = sorted[count_ / 2];
    if (median <= 0.0) return 0.0;
    // Same 1/8 .. 8x robustness filter around the median as arrival speed.
    const double lo = median / 8.0, hi = median * 8.0;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < count_; ++i) {
      const double v = samples_[i];
      if (v > lo && v < hi) {
        sum += v;
        ++n;
      }
    }
    if (n == 0 || sum <= 0.0) return 0.0;
    return static_cast<double>(n) / sum;
  }

  void reset() {
    std::fill(samples_.begin(), samples_.end(), 0.0);
    pos_ = 0;
    count_ = 0;
  }

 private:
  std::vector<double> samples_;
  std::size_t pos_ = 0;
  std::size_t count_ = 0;
};

}  // namespace udtr
