#include "common/metrics.hpp"

#include <cmath>

namespace udtr {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double jain_fairness_index(std::span<const double> throughputs) {
  if (throughputs.empty()) return 0.0;
  double sum = 0.0, sumsq = 0.0;
  for (double x : throughputs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 0.0;
  return (sum * sum) / (static_cast<double>(throughputs.size()) * sumsq);
}

double stability_index(std::span<const std::vector<double>> samples) {
  if (samples.empty()) return 0.0;
  double acc = 0.0;
  int counted = 0;
  for (const auto& flow : samples) {
    const double xbar = mean(flow);
    if (xbar <= 0.0 || flow.size() < 2) continue;
    acc += sample_stddev(flow) / xbar;
    ++counted;
  }
  return counted == 0 ? 0.0 : acc / counted;
}

double friendliness_index(std::span<const double> tcp_with_udt,
                          std::span<const double> tcp_alone,
                          int num_udt_flows) {
  (void)num_udt_flows;  // implicit in tcp_alone's size (m + n flows)
  const double fair_share = mean(tcp_alone);
  if (fair_share <= 0.0) return 0.0;
  return mean(tcp_with_udt) / fair_share;
}

}  // namespace udtr
