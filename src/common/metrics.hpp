// Evaluation indices used in the paper's figures.
//
//  * Jain's fairness index (Fig. 2)            [Jain, 1991]
//  * Stability index (Fig. 4)                  [Jin et al., FAST TCP]
//  * TCP friendliness index (Fig. 5)           (paper §3.7)
#pragma once

#include <span>
#include <vector>

namespace udtr {

// Jain's fairness index over per-flow throughputs: (sum x)^2 / (n * sum x^2).
// 1.0 is perfectly fair; 1/n is maximally unfair.
[[nodiscard]] double jain_fairness_index(std::span<const double> throughputs);

// Stability index (paper §3.6): mean over flows of the per-flow sample
// standard deviation normalized by the per-flow mean throughput.
//   S = 1/n * sum_i [ sqrt(1/(m-1) * sum_k (x_i(k) - xbar_i)^2) / xbar_i ]
// `samples[i]` holds the m throughput samples of flow i.  0 is ideal.
[[nodiscard]] double stability_index(
    std::span<const std::vector<double>> samples);

// TCP friendliness index (paper §3.7): with m UDT and n TCP flows sharing the
// network, compare each TCP flow's throughput x_i against the throughput y_i
// it achieves when m+n TCP flows run alone:
//   T = (1/n * sum x_i) / (1/(m+n) * sum y_i)
// T = 1 is ideal; T < 1 means UDT overruns TCP.
[[nodiscard]] double friendliness_index(std::span<const double> tcp_with_udt,
                                        std::span<const double> tcp_alone,
                                        int num_udt_flows);

// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

[[nodiscard]] double mean(std::span<const double> xs);

}  // namespace udtr
