// Deterministic random number source.  Every stochastic element in the
// simulator (burst sources, jitter, loss injection) draws from an explicitly
// seeded engine so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace udtr {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }
  // Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }
  // Uniform integer in [lo, hi].
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }
  // Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean_value) {
    return std::exponential_distribution<double>{1.0 / mean_value}(engine_);
  }
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution{p}(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace udtr
