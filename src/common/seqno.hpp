// 31-bit wraparound sequence-number arithmetic.
//
// UDT carries a 32-bit sequence-number field on the wire but uses only the
// lowest 31 bits as the sequence value; the highest bit is reserved as a flag
// in compressed loss reports (paper, Appendix).  All comparisons therefore
// operate modulo 2^31 with a half-range wrap threshold, exactly as in the UDT
// reference implementation.
#pragma once

#include <cstdint>
#include <compare>

namespace udtr {

class SeqNo {
 public:
  static constexpr std::int32_t kMax = 0x7FFFFFFF;          // largest value
  static constexpr std::int32_t kThreshold = 0x40000000;    // wrap threshold

  constexpr SeqNo() = default;
  constexpr explicit SeqNo(std::int32_t v) : v_(v & kMax) {}

  [[nodiscard]] constexpr std::int32_t value() const { return v_; }

  // Signed circular comparison: <0 if a precedes b, >0 if a follows b.
  // Valid while the live window stays below 2^30 packets.
  [[nodiscard]] static constexpr int cmp(SeqNo a, SeqNo b) {
    const std::int32_t d = a.v_ - b.v_;
    if (d > kThreshold) return -1;
    if (d < -kThreshold) return 1;
    return d > 0 ? 1 : (d < 0 ? -1 : 0);
  }

  // Circular offset b - a (number of packets from a to b), sign-extended.
  [[nodiscard]] static constexpr std::int32_t offset(SeqNo a, SeqNo b) {
    const std::int32_t d = b.v_ - a.v_;
    if (d > kThreshold) return d - kMax - 1;
    if (d < -kThreshold) return d + kMax + 1;
    return d;
  }

  // Number of packets in the inclusive range [a, b].
  [[nodiscard]] static constexpr std::int32_t length(SeqNo a, SeqNo b) {
    return (b.v_ >= a.v_) ? (b.v_ - a.v_ + 1) : (b.v_ - a.v_ + kMax + 2);
  }

  [[nodiscard]] constexpr SeqNo next() const {
    return SeqNo{v_ == kMax ? 0 : v_ + 1};
  }
  [[nodiscard]] constexpr SeqNo prev() const {
    return SeqNo{v_ == 0 ? kMax : v_ - 1};
  }
  [[nodiscard]] constexpr SeqNo advanced_by(std::int32_t n) const {
    // n may be negative; result stays within [0, kMax].
    std::int64_t r = (static_cast<std::int64_t>(v_) + n) %
                     (static_cast<std::int64_t>(kMax) + 1);
    if (r < 0) r += static_cast<std::int64_t>(kMax) + 1;
    return SeqNo{static_cast<std::int32_t>(r)};
  }

  constexpr bool operator==(const SeqNo&) const = default;

  // Ordering helpers in circular space.
  [[nodiscard]] constexpr bool precedes(SeqNo other) const {
    return cmp(*this, other) < 0;
  }
  [[nodiscard]] constexpr bool follows(SeqNo other) const {
    return cmp(*this, other) > 0;
  }

 private:
  std::int32_t v_ = 0;
};

}  // namespace udtr
