// Strong unit helpers used across the library: bandwidth in bits/second and
// time in seconds (double).  The simulator and the congestion-control code
// exchange plain doubles at their boundaries, but construction goes through
// these named factories so magnitudes are explicit at call sites.
#pragma once

#include <compare>
#include <cstdint>

namespace udtr {

// Bandwidth, stored as bits per second.
class Bandwidth {
 public:
  constexpr Bandwidth() = default;
  [[nodiscard]] static constexpr Bandwidth bps(double v) { return Bandwidth{v}; }
  [[nodiscard]] static constexpr Bandwidth kbps(double v) { return Bandwidth{v * 1e3}; }
  [[nodiscard]] static constexpr Bandwidth mbps(double v) { return Bandwidth{v * 1e6}; }
  [[nodiscard]] static constexpr Bandwidth gbps(double v) { return Bandwidth{v * 1e9}; }

  [[nodiscard]] constexpr double bits_per_sec() const { return v_; }
  [[nodiscard]] constexpr double mbits_per_sec() const { return v_ / 1e6; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return v_ / 8.0; }
  // Packets per second for a given packet size in bytes.
  [[nodiscard]] constexpr double packets_per_sec(int packet_bytes) const {
    return v_ / (8.0 * packet_bytes);
  }
  // Seconds to serialize one packet of the given size.
  [[nodiscard]] constexpr double serialization_time(int packet_bytes) const {
    return (8.0 * packet_bytes) / v_;
  }

  constexpr auto operator<=>(const Bandwidth&) const = default;
  constexpr Bandwidth operator*(double f) const { return Bandwidth{v_ * f}; }
  constexpr Bandwidth operator/(double f) const { return Bandwidth{v_ / f}; }

 private:
  constexpr explicit Bandwidth(double v) : v_(v) {}
  double v_ = 0.0;
};

// Time helpers (seconds as double; the simulator's native unit).
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
[[nodiscard]] constexpr double ms(double v) { return v * kMilli; }
[[nodiscard]] constexpr double us(double v) { return v * kMicro; }

// Bandwidth-delay product in packets for a given MSS.
[[nodiscard]] constexpr double bdp_packets(Bandwidth bw, double rtt_s,
                                           int mss_bytes) {
  return bw.packets_per_sec(mss_bytes) * rtt_s;
}

}  // namespace udtr
