// Routing helpers: a flow-keyed demultiplexer (the "router" on the far side
// of a shared bottleneck) and a stats-counting sink for uncontrolled traffic.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netsim/packet.hpp"

namespace udtr::sim {

// Forwards each packet to the consumer registered for its flow id.
class FlowDemux final : public Consumer {
 public:
  void route(int flow, Consumer* to) { table_[flow] = to; }

  void receive(Packet pkt) override {
    auto it = table_.find(pkt.flow);
    if (it != table_.end() && it->second != nullptr) {
      it->second->receive(std::move(pkt));
    }
  }

 private:
  std::unordered_map<int, Consumer*> table_;
};

// Terminal sink that counts arrivals (used for plain-UDP background flows).
class CountingSink final : public Consumer {
 public:
  void receive(Packet pkt) override {
    ++packets_;
    bytes_ += static_cast<std::uint64_t>(pkt.size_bytes);
  }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace udtr::sim
