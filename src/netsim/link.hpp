// Link models.
//
// `Link` is a store-and-forward link: a DropTail FIFO feeding a transmitter
// of fixed capacity, followed by constant propagation delay — the same model
// the paper's NS-2 topologies use for their bottlenecks.  `DelayLink` is a
// pure propagation delay (used for access and reverse paths, which the
// paper's scenarios never congest).
#pragma once

#include <cstdint>
#include <deque>
#include <random>

#include <memory>

#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "netsim/queue.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

struct LinkStats {
  std::uint64_t enqueued = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t bytes_delivered = 0;
  std::size_t max_queue_depth = 0;
};

class Link final : public Consumer {
 public:
  // `queue_limit_pkts`: DropTail capacity in packets (NS-2 style).
  Link(Simulator& sim, udtr::Bandwidth capacity, double prop_delay_s,
       std::size_t queue_limit_pkts)
      : Link(sim, capacity, prop_delay_s,
             std::make_unique<DropTailPolicy>(queue_limit_pkts)) {}

  // Custom queue discipline (e.g. RedPolicy).
  Link(Simulator& sim, udtr::Bandwidth capacity, double prop_delay_s,
       std::unique_ptr<QueueDiscipline> policy)
      : sim_(sim),
        capacity_(capacity),
        prop_delay_s_(prop_delay_s),
        policy_(std::move(policy)) {}

  void set_next(Consumer* next) { next_ = next; }

  void receive(Packet pkt) override {
    ++stats_.enqueued;
    if (busy_) {
      if (policy_->should_drop(queue_.size())) {
        ++stats_.dropped;
        return;
      }
      queue_.push_back(std::move(pkt));
      stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
    } else {
      if (policy_->should_drop(0)) {  // RED may early-drop even when idle
        ++stats_.dropped;
        return;
      }
      transmit(std::move(pkt));
    }
  }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
  [[nodiscard]] udtr::Bandwidth capacity() const { return capacity_; }

 private:
  void transmit(Packet pkt) {
    busy_ = true;
    const double tx = capacity_.serialization_time(pkt.size_bytes);
    sim_.after(tx, [this, pkt = std::move(pkt)]() mutable {
      // Serialization finished: launch into propagation, start next packet.
      Packet out = std::move(pkt);
      ++stats_.delivered;
      stats_.bytes_delivered += static_cast<std::uint64_t>(out.size_bytes);
      if (next_ != nullptr) {
        sim_.after(prop_delay_s_, [this, out = std::move(out)]() mutable {
          next_->receive(std::move(out));
        });
      }
      if (queue_.empty()) {
        busy_ = false;
      } else {
        Packet head = std::move(queue_.front());
        queue_.pop_front();
        transmit(std::move(head));
      }
    });
  }

  Simulator& sim_;
  udtr::Bandwidth capacity_;
  double prop_delay_s_;
  std::unique_ptr<QueueDiscipline> policy_;
  Consumer* next_ = nullptr;
  std::deque<Packet> queue_;
  bool busy_ = false;
  LinkStats stats_;
};

// Pure propagation delay: infinite capacity, no queueing, never drops.
class DelayLink final : public Consumer {
 public:
  DelayLink(Simulator& sim, double delay_s) : sim_(sim), delay_s_(delay_s) {}

  void set_next(Consumer* next) { next_ = next; }
  void set_delay(double delay_s) { delay_s_ = delay_s; }
  [[nodiscard]] double delay() const { return delay_s_; }

  void receive(Packet pkt) override {
    if (next_ == nullptr) return;
    sim_.after(delay_s_, [this, pkt = std::move(pkt)]() mutable {
      next_->receive(std::move(pkt));
    });
  }

 private:
  Simulator& sim_;
  double delay_s_;
  Consumer* next_ = nullptr;
};

// Random-jitter stage: adds an independent uniform extra delay per packet,
// which reorders packets whose jitter windows overlap — for exercising the
// receiver's out-of-order paths (speculation misses, spurious small gaps).
class ReorderLink final : public Consumer {
 public:
  ReorderLink(Simulator& sim, double max_jitter_s, std::uint64_t seed)
      : sim_(sim), max_jitter_s_(max_jitter_s), rng_(seed) {}

  void set_next(Consumer* next) { next_ = next; }

  void receive(Packet pkt) override {
    if (next_ == nullptr) return;
    const double jitter =
        std::uniform_real_distribution<double>{0.0, max_jitter_s_}(rng_);
    sim_.after(jitter, [this, pkt = std::move(pkt)]() mutable {
      next_->receive(std::move(pkt));
    });
  }

 private:
  Simulator& sim_;
  double max_jitter_s_;
  std::mt19937_64 rng_;
  Consumer* next_ = nullptr;
};

// Bernoulli random-loss stage, for modelling physical-layer bit errors.
class LossyLink final : public Consumer {
 public:
  LossyLink(double loss_prob, std::uint64_t seed)
      : loss_prob_(loss_prob), rng_(seed) {}

  void set_next(Consumer* next) { next_ = next; }

  void receive(Packet pkt) override {
    if (next_ == nullptr) return;
    if (loss_prob_ > 0.0 &&
        std::uniform_real_distribution<double>{0.0, 1.0}(rng_) < loss_prob_) {
      ++dropped_;
      return;
    }
    next_->receive(std::move(pkt));
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  double loss_prob_;
  std::mt19937_64 rng_;
  Consumer* next_ = nullptr;
  std::uint64_t dropped_ = 0;
};

}  // namespace udtr::sim
