// Parking-lot (multi-bottleneck) topology for the §3.4 footnote-3 claim:
// "On multi-bottleneck topologies, a UDT flow can reach at least half of its
// max-min fair share.  This is the functionality of the logarithm smoothing
// filter in formula (1)."
//
//   entry -> [hop 0] -> [hop 1] -> ... -> [hop H-1] -> exit
//
// A flow spans a contiguous range of hops; cross-traffic flows occupy single
// hops.  Each hop is a capacity/queue Link followed by a demux that either
// hands the packet to its receiver (last hop of that flow) or forwards it to
// the next hop's link.
#pragma once

#include <memory>
#include <vector>

#include "netsim/demux.hpp"
#include "netsim/link.hpp"
#include "netsim/tcp_agent.hpp"
#include "netsim/udt_agent.hpp"

namespace udtr::sim {

class ParkingLot {
 public:
  ParkingLot(Simulator& sim, std::vector<udtr::Bandwidth> hop_capacities,
             std::size_t queue_pkts)
      : sim_(sim) {
    for (udtr::Bandwidth cap : hop_capacities) {
      auto link =
          std::make_unique<Link>(sim_, cap, /*prop_delay=*/0.0, queue_pkts);
      auto demux = std::make_unique<FlowDemux>();
      link->set_next(demux.get());
      hops_.push_back(Hop{std::move(link), std::move(demux)});
    }
  }

  [[nodiscard]] std::size_t hop_count() const { return hops_.size(); }
  [[nodiscard]] Link& hop_link(std::size_t i) { return *hops_[i].link; }

  // Adds a UDT flow spanning hops [first_hop, last_hop] inclusive.
  std::size_t add_udt_flow(UdtFlowConfig cfg, std::size_t first_hop,
                           std::size_t last_hop, double rtt_s) {
    cfg.flow_id = next_flow_id_++;
    cfg.cc.seed = static_cast<std::uint64_t>(cfg.flow_id) * 2654435761ULL + 1;
    auto snd = std::make_unique<UdtSender>(sim_, cfg);
    auto rcv = std::make_unique<UdtReceiver>(sim_, cfg);
    wire(cfg.flow_id, first_hop, last_hop, rtt_s, snd.get(), rcv.get());
    snd->start();
    rcv->start();
    udt_snd_.push_back(std::move(snd));
    udt_rcv_.push_back(std::move(rcv));
    return udt_snd_.size() - 1;
  }

  std::size_t add_tcp_flow(TcpFlowConfig cfg, std::size_t first_hop,
                           std::size_t last_hop, double rtt_s) {
    cfg.flow_id = next_flow_id_++;
    auto snd = std::make_unique<TcpSender>(sim_, cfg);
    auto rcv = std::make_unique<TcpReceiver>(sim_, cfg);
    wire(cfg.flow_id, first_hop, last_hop, rtt_s, snd.get(), rcv.get());
    snd->start();
    tcp_snd_.push_back(std::move(snd));
    tcp_rcv_.push_back(std::move(rcv));
    return tcp_snd_.size() - 1;
  }

  [[nodiscard]] UdtSender& udt_sender(std::size_t i) { return *udt_snd_[i]; }
  [[nodiscard]] UdtReceiver& udt_receiver(std::size_t i) {
    return *udt_rcv_[i];
  }
  [[nodiscard]] TcpSender& tcp_sender(std::size_t i) { return *tcp_snd_[i]; }
  [[nodiscard]] TcpReceiver& tcp_receiver(std::size_t i) {
    return *tcp_rcv_[i];
  }

 private:
  struct Hop {
    std::unique_ptr<Link> link;
    std::unique_ptr<FlowDemux> demux;
  };

  template <typename Snd, typename Rcv>
  void wire(int flow_id, std::size_t first_hop, std::size_t last_hop,
            double rtt_s, Snd* snd, Rcv* rcv) {
    // Sender enters at first_hop through its access delay.
    auto fwd = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    snd->set_out(fwd.get());
    fwd->set_next(hops_[first_hop].link.get());
    // Intermediate demuxes forward to the next hop's link; the last demux
    // delivers to the receiver.
    for (std::size_t h = first_hop; h < last_hop; ++h) {
      hops_[h].demux->route(flow_id, hops_[h + 1].link.get());
    }
    hops_[last_hop].demux->route(flow_id, rcv);
    // Reverse path: pure delay back to the sender.
    auto rev = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    rcv->set_out(rev.get());
    rev->set_next(snd);
    delays_.push_back(std::move(fwd));
    delays_.push_back(std::move(rev));
  }

  Simulator& sim_;
  std::vector<Hop> hops_;
  int next_flow_id_ = 1;
  std::vector<std::unique_ptr<DelayLink>> delays_;
  std::vector<std::unique_ptr<UdtSender>> udt_snd_;
  std::vector<std::unique_ptr<UdtReceiver>> udt_rcv_;
  std::vector<std::unique_ptr<TcpSender>> tcp_snd_;
  std::vector<std::unique_ptr<TcpReceiver>> tcp_rcv_;
};

}  // namespace udtr::sim
