// Simulated packet.  One value type covers every protocol in the testbed;
// agents interpret only the fields relevant to their `kind`.
#pragma once

#include <cstdint>
#include <vector>

#include "common/seqno.hpp"

namespace udtr::sim {

enum class PacketKind : std::uint8_t {
  kUdtData,
  kUdtAck,
  kUdtAck2,
  kUdtNak,
  kUdtDelayWarn,  // optional delay-trend congestion warning (§6 lessons)
  kTcpData,
  kTcpAck,
  kXcpData,
  kXcpAck,
  kPlainUdp,  // uncontrolled traffic (burst/CBR sources)
};

struct Packet {
  PacketKind kind = PacketKind::kUdtData;
  int flow = 0;             // flow identifier for stats / demux
  int size_bytes = 1500;    // wire size including headers

  udtr::SeqNo seq;          // data sequence number (data packets)
  bool probe_head = false;  // first packet of an RBPP packet pair
  bool probe_tail = false;  // second packet of an RBPP packet pair
  bool retransmit = false;

  // --- UDT control fields ---------------------------------------------
  udtr::SeqNo ack_seq;        // ACK: all packets before this were received
  std::int32_t ack_id = 0;    // ACK sequence, echoed by ACK2
  double rtt_s = 0.0;         // receiver-measured RTT (carried in ACK)
  double recv_rate_pps = 0.0; // receiver arrival speed  (carried in ACK)
  double capacity_pps = 0.0;  // RBPP link capacity      (carried in ACK)
  double avail_buffer_pkts = 0.0;  // flow-control window (carried in ACK)
  // NAK: compressed loss ranges [first,last] inclusive.
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> loss;

  // --- TCP control fields ---------------------------------------------
  udtr::SeqNo tcp_ack;        // cumulative ACK (next expected)
  // SACK blocks: received ranges above the cumulative ACK.
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> sack;

  // --- XCP congestion header (routers rewrite, receiver echoes) --------
  double xcp_rtt_s = 0.0;       // sender's current RTT estimate
  double xcp_cwnd_pkts = 0.0;   // sender's current window
  double xcp_feedback_pkts = 0.0;  // allocated window change (min en route)

  double sent_at = 0.0;       // stamped by the sender (for traces)
};

// Anything that can accept a packet: links, queues, agents.
class Consumer {
 public:
  virtual ~Consumer() = default;
  virtual void receive(Packet pkt) = 0;
};

}  // namespace udtr::sim
