// Queue disciplines for Link.
//
// The paper's experiments all use DropTail (NS-2 default), but footnote 4
// observes that TCP's performance is heavily affected by queueing while
// UDT's rate control barely notices — RED is provided so that claim can be
// measured (bench_footnote_queuing).
#pragma once

#include <algorithm>
#include <cstddef>
#include <memory>
#include <random>

namespace udtr::sim {

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;
  // Decides whether the arriving packet is dropped, given the instantaneous
  // queue length in packets (excluding the packet in transmission).
  [[nodiscard]] virtual bool should_drop(std::size_t queue_len) = 0;
};

// Classic FIFO tail drop with a hard packet limit.
class DropTailPolicy final : public QueueDiscipline {
 public:
  explicit DropTailPolicy(std::size_t limit) : limit_(limit) {}
  [[nodiscard]] bool should_drop(std::size_t queue_len) override {
    return queue_len >= limit_;
  }

 private:
  std::size_t limit_;
};

// Random Early Detection [Floyd & Jacobson 93]: probabilistic drops between
// min_th and max_th on the EWMA average queue, hard drop above max_th or the
// physical limit.
class RedPolicy final : public QueueDiscipline {
 public:
  struct Params {
    double min_th = 5.0;      // packets
    double max_th = 15.0;     // packets
    double max_p = 0.1;       // drop probability at max_th
    double weight = 0.002;    // EWMA weight w_q
    std::size_t limit = 1000; // physical capacity
    std::uint64_t seed = 1;
  };

  explicit RedPolicy(Params p) : p_(p), rng_(p.seed) {}

  [[nodiscard]] bool should_drop(std::size_t queue_len) override {
    if (queue_len >= p_.limit) return true;  // physical overflow
    avg_ = (1.0 - p_.weight) * avg_ +
           p_.weight * static_cast<double>(queue_len);
    if (avg_ < p_.min_th) {
      count_ = -1;
      return false;
    }
    if (avg_ >= p_.max_th) {
      count_ = 0;
      return true;
    }
    ++count_;
    const double pb =
        p_.max_p * (avg_ - p_.min_th) / (p_.max_th - p_.min_th);
    const double pa =
        (count_ > 0 && count_ * pb < 1.0) ? pb / (1.0 - count_ * pb) : 1.0;
    if (std::uniform_real_distribution<double>{0.0, 1.0}(rng_) < pa) {
      count_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] double average_queue() const { return avg_; }

 private:
  Params p_;
  std::mt19937_64 rng_;
  double avg_ = 0.0;
  int count_ = -1;
};

}  // namespace udtr::sim
