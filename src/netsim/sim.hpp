// Discrete-event simulation engine (the NS-2 substitute).
//
// A single min-heap of timestamped closures; ties break on insertion order so
// runs are fully deterministic.  Time is a double in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace udtr::sim {

using Time = double;  // seconds

class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] Time now() const { return now_; }

  // Schedule `fn` at absolute time `t` (clamped to now).
  void at(Time t, Action fn) {
    if (t < now_) t = now_;
    queue_.push(Event{t, next_id_++, std::move(fn)});
  }
  // Schedule `fn` after a relative delay.
  void after(Time delay, Action fn) { at(now_ + delay, std::move(fn)); }

  // Execute the next event; returns false when the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    // The closure may schedule new events, so pop before invoking.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ev.fn();
    return true;
  }

  // Run events up to and including time `t_end`.
  void run_until(Time t_end) {
    while (!queue_.empty() && queue_.top().t <= t_end) step();
    if (now_ < t_end) now_ = t_end;
  }

  // Drain every event (use with care: steady sources never go idle).
  void run_all() {
    while (step()) {
    }
  }

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_hint() const { return next_id_; }

 private:
  struct Event {
    Time t;
    std::uint64_t id;  // FIFO tiebreak for equal timestamps
    Action fn;
    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0.0;
  std::uint64_t next_id_ = 0;
};

}  // namespace udtr::sim
