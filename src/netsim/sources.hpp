// Uncontrolled traffic sources: constant-bit-rate and on/off bursting UDP.
// The bursting source reproduces the congestion injection used for Fig. 8
// ("injecting a bursting UDP flow into the network").
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

class CbrSource {
 public:
  CbrSource(Simulator& sim, int flow_id, udtr::Bandwidth rate, int pkt_bytes,
            double start, double stop)
      : sim_(sim),
        flow_id_(flow_id),
        interval_s_(rate.serialization_time(pkt_bytes)),
        pkt_bytes_(pkt_bytes),
        stop_(stop) {
    sim_.at(start, [this] { tick(); });
  }

  void set_out(Consumer* out) { out_ = out; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  void tick() {
    if (sim_.now() >= stop_) return;
    Packet p;
    p.kind = PacketKind::kPlainUdp;
    p.flow = flow_id_;
    p.size_bytes = pkt_bytes_;
    p.sent_at = sim_.now();
    ++sent_;
    if (out_ != nullptr) out_->receive(std::move(p));
    sim_.after(interval_s_, [this] { tick(); });
  }

  Simulator& sim_;
  int flow_id_;
  double interval_s_;
  int pkt_bytes_;
  double stop_;
  Consumer* out_ = nullptr;
  std::uint64_t sent_ = 0;
};

// Exponential on/off source: bursts at `burst_rate` for ~`on_mean` seconds,
// silent for ~`off_mean` seconds.
class BurstSource {
 public:
  BurstSource(Simulator& sim, int flow_id, udtr::Bandwidth burst_rate,
              int pkt_bytes, double on_mean_s, double off_mean_s,
              double start, double stop, std::uint64_t seed)
      : sim_(sim),
        flow_id_(flow_id),
        interval_s_(burst_rate.serialization_time(pkt_bytes)),
        pkt_bytes_(pkt_bytes),
        on_mean_s_(on_mean_s),
        off_mean_s_(off_mean_s),
        stop_(stop),
        rng_(seed) {
    sim_.at(start, [this] { begin_burst(); });
  }

  void set_out(Consumer* out) { out_ = out; }
  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  void begin_burst() {
    if (sim_.now() >= stop_) return;
    burst_end_ = sim_.now() + rng_.exponential(on_mean_s_);
    tick();
  }

  void tick() {
    const double now = sim_.now();
    if (now >= stop_) return;
    if (now >= burst_end_) {
      sim_.after(rng_.exponential(off_mean_s_), [this] { begin_burst(); });
      return;
    }
    Packet p;
    p.kind = PacketKind::kPlainUdp;
    p.flow = flow_id_;
    p.size_bytes = pkt_bytes_;
    p.sent_at = now;
    ++sent_;
    if (out_ != nullptr) out_->receive(std::move(p));
    sim_.after(interval_s_, [this] { tick(); });
  }

  Simulator& sim_;
  int flow_id_;
  double interval_s_;
  int pkt_bytes_;
  double on_mean_s_;
  double off_mean_s_;
  double stop_;
  udtr::Rng rng_;
  Consumer* out_ = nullptr;
  std::uint64_t sent_ = 0;
  double burst_end_ = 0.0;
};

}  // namespace udtr::sim
