// Periodic per-flow throughput sampling, feeding the paper's indices
// (fairness, stability, friendliness) and the time-series figures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

// Samples a monotone "delivered packets" counter every `interval_s` and
// converts deltas into Mb/s.
class ThroughputSampler {
 public:
  // `delivered_fn` returns the cumulative number of delivered data packets.
  ThroughputSampler(Simulator& sim, std::function<std::uint64_t()> delivered,
                    int pkt_bytes, double interval_s, double start = 0.0)
      : sim_(sim),
        delivered_(std::move(delivered)),
        pkt_bytes_(pkt_bytes),
        interval_s_(interval_s) {
    sim_.at(start, [this] {
      last_count_ = delivered_();
      tick();
    });
  }

  // Throughput samples in Mb/s, one per interval.
  [[nodiscard]] const std::vector<double>& samples_mbps() const {
    return samples_;
  }

  [[nodiscard]] double mean_mbps() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

 private:
  void tick() {
    sim_.after(interval_s_, [this] {
      const std::uint64_t now_count = delivered_();
      const double mbps =
          static_cast<double>(now_count - last_count_) * pkt_bytes_ * 8.0 /
          interval_s_ / 1e6;
      samples_.push_back(mbps);
      last_count_ = now_count;
      tick();
    });
  }

  Simulator& sim_;
  std::function<std::uint64_t()> delivered_;
  int pkt_bytes_;
  double interval_s_;
  std::uint64_t last_count_ = 0;
  std::vector<double> samples_;
};

// Average throughput in Mb/s over [t0, t1] given a delivered-packet count.
[[nodiscard]] inline double average_mbps(std::uint64_t delivered_packets,
                                         int pkt_bytes, double t0, double t1) {
  if (t1 <= t0) return 0.0;
  return static_cast<double>(delivered_packets) * pkt_bytes * 8.0 /
         (t1 - t0) / 1e6;
}

}  // namespace udtr::sim
