#include "netsim/tcp_agent.hpp"

#include <algorithm>

#include "cc/tcp_cavoid2.hpp"

namespace udtr::sim {

namespace {
constexpr int kTcpAckBase = 40;
constexpr double kRtoMax = 60.0;
}  // namespace

// ---------------------------------------------------------------- sender ---

TcpSender::TcpSender(Simulator& sim, TcpFlowConfig cfg)
    : sim_(sim),
      cfg_(cfg),
      ca_(cc::make_cong_avoid(cfg.cong_avoid)),
      cwnd_(cfg.initial_cwnd) {
  ssthresh_ = cfg.recv_window_pkts;
}

void TcpSender::start() {
  sim_.at(cfg_.start_time, [this] {
    started_ = true;
    last_progress_time_ = sim_.now();
    try_send();
  });
}

double TcpSender::pipe() const {
  const double outstanding =
      static_cast<double>(udtr::SeqNo::offset(snd_una_, next_seq_));
  return outstanding - static_cast<double>(sacked_.size()) -
         static_cast<double>(lost_.size());
}

void TcpSender::send_data(udtr::SeqNo seq, bool retransmit) {
  Packet p;
  p.kind = PacketKind::kTcpData;
  p.flow = cfg_.flow_id;
  p.size_bytes = cfg_.mss_bytes;
  p.seq = seq;
  p.retransmit = retransmit;
  p.sent_at = sim_.now();
  if (retransmit) {
    ++stats_.retransmitted;
  } else {
    ++stats_.data_sent;
  }
  if (out_ != nullptr) out_->receive(std::move(p));
}

void TcpSender::try_send() {
  if (finished_ || !started_) return;
  bool sent = false;
  while (pipe() < cwnd_) {
    if (!lost_.empty()) {
      const udtr::SeqNo seq = *lost_.begin();
      lost_.erase(lost_.begin());
      send_data(seq, true);
      sent = true;
    } else if (!all_sent_ &&
               static_cast<double>(udtr::SeqNo::offset(snd_una_, next_seq_)) <
                   cfg_.recv_window_pkts) {
      send_data(next_seq_, false);
      next_seq_ = next_seq_.next();
      ++new_packets_sent_;
      all_sent_ = new_packets_sent_ >= cfg_.total_packets;
      sent = true;
    } else {
      break;
    }
  }
  if (sent) arm_rto();
}

void TcpSender::update_rtt(double sample_s) {
  if (sample_s <= 0.0) return;
  if (base_rtt_s_ <= 0.0 || sample_s < base_rtt_s_) base_rtt_s_ = sample_s;
  if (srtt_s_ <= 0.0) {
    srtt_s_ = sample_s;
    rttvar_s_ = sample_s / 2.0;
  } else {
    rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample_s);
    srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample_s;
  }
  rto_s_ = std::clamp(srtt_s_ + std::max(4.0 * rttvar_s_, 0.01),
                      cfg_.rto_min_s, kRtoMax);
}

void TcpSender::arm_rto() {
  const std::uint64_t epoch = ++rto_epoch_;
  const double backoff = static_cast<double>(1 << std::min(rto_backoff_, 6));
  sim_.at(last_progress_time_ + rto_s_ * backoff, [this, epoch] {
    if (epoch != rto_epoch_) return;
    on_rto();
  });
}

void TcpSender::on_rto() {
  if (finished_) return;
  if (udtr::SeqNo::offset(snd_una_, next_seq_) == 0) return;  // nothing out
  const double backoff = static_cast<double>(1 << std::min(rto_backoff_, 6));
  if (sim_.now() - last_progress_time_ + 1e-12 < rto_s_ * backoff) {
    arm_rto();
    return;
  }
  ++stats_.timeouts;
  ++rto_backoff_;
  // Timeout: everything unsacked in flight is presumed lost; restart in
  // slow start from a one-packet window.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  in_recovery_ = false;
  dupacks_ = 0;
  lost_.clear();
  for (udtr::SeqNo s = snd_una_; udtr::SeqNo::cmp(s, next_seq_) < 0;
       s = s.next()) {
    if (!sacked_.contains(s)) lost_.insert(s);
  }
  scan_next_ = next_seq_;
  recovery_point_ = next_seq_;
  last_progress_time_ = sim_.now();
  try_send();
  arm_rto();
}

void TcpSender::detect_losses() {
  // SACK-based loss inference: a hole is lost once `dupack_threshold`
  // packets above it have been selectively acknowledged.  A monotone scan
  // watermark keeps total work linear in packets sent.
  if (static_cast<int>(sacked_.size()) < cfg_.dupack_threshold) return;
  auto it = sacked_.rbegin();
  std::advance(it, cfg_.dupack_threshold - 1);
  const udtr::SeqNo threshold = *it;  // k-th highest SACKed sequence
  if (udtr::SeqNo::cmp(scan_next_, snd_una_) < 0) scan_next_ = snd_una_;
  for (udtr::SeqNo s = scan_next_; udtr::SeqNo::cmp(s, threshold) < 0;
       s = s.next()) {
    if (!sacked_.contains(s)) lost_.insert(s);
  }
  if (udtr::SeqNo::cmp(threshold, scan_next_) > 0) scan_next_ = threshold;
}

void TcpSender::enter_recovery() {
  ++stats_.fast_recoveries;
  in_recovery_ = true;
  recovery_point_ = next_seq_;
  ssthresh_ = ca_->on_loss(cwnd_);
  cwnd_ = ssthresh_;
  // Fast retransmit of the first hole.
  if (!sacked_.contains(snd_una_)) lost_.insert(snd_una_);
}

void TcpSender::receive(Packet pkt) {
  if (pkt.kind != PacketKind::kTcpAck || finished_) return;
  const udtr::SeqNo ack = pkt.tcp_ack;

  // Fold in the SACK information first.
  for (const auto& [first, last] : pkt.sack) {
    for (udtr::SeqNo s = first;;) {
      if (udtr::SeqNo::cmp(s, snd_una_) >= 0 &&
          udtr::SeqNo::cmp(s, next_seq_) < 0) {
        if (sacked_.insert(s).second) lost_.erase(s);
      }
      if (s == last) break;
      s = s.next();
    }
  }

  if (udtr::SeqNo::cmp(ack, snd_una_) > 0) {
    const std::int32_t newly = udtr::SeqNo::offset(snd_una_, ack);
    snd_una_ = ack;
    sacked_.erase(sacked_.begin(), sacked_.lower_bound(snd_una_));
    lost_.erase(lost_.begin(), lost_.lower_bound(snd_una_));
    dupacks_ = 0;
    rto_backoff_ = 0;
    last_progress_time_ = sim_.now();

    if (!pkt.retransmit) update_rtt(sim_.now() - pkt.sent_at);

    if (in_recovery_ && udtr::SeqNo::cmp(ack, recovery_point_) >= 0) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    }
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ = std::min(cwnd_ + newly, ssthresh_);  // slow start
      } else if (ca_->wants_context()) {
        // Delay-aware strategies (Vegas/FAST) consume RTT context.
        cwnd_ = ca_->on_ack_ctx(cwnd_,
                                cc::CaContext{srtt_s_, base_rtt_s_});
      } else {
        cwnd_ = ca_->on_ack(cwnd_);  // congestion avoidance (per ACK)
      }
      cwnd_ = std::min(cwnd_, cfg_.recv_window_pkts);
    }

    if (all_sent_ && udtr::SeqNo::offset(snd_una_, next_seq_) == 0) {
      finished_ = true;
      finish_time_ = sim_.now();
      if (on_finish_) on_finish_();
      return;
    }
  } else if (!pkt.sack.empty()) {
    ++dupacks_;
  }

  detect_losses();
  // One recovery per window: loss evidence inside the epoch we are already
  // repairing (snd_una below the recovery point, e.g. right after an RTO)
  // must not collapse cwnd again.
  if (!in_recovery_ &&
      udtr::SeqNo::cmp(snd_una_, recovery_point_) >= 0 &&
      (dupacks_ >= cfg_.dupack_threshold || !lost_.empty())) {
    enter_recovery();
  }
  try_send();
}

// -------------------------------------------------------------- receiver ---

void TcpReceiver::receive(Packet pkt) {
  if (pkt.kind != PacketKind::kTcpData) return;
  ++stats_.data_received;
  const udtr::SeqNo seq = pkt.seq;

  if (seq == rcv_next_) {
    rcv_next_ = rcv_next_.next();
    ++stats_.delivered;
    if (on_deliver_) on_deliver_(seq);
    // Absorb any out-of-order ranges that are now contiguous.
    while (!ooo_.empty() && ooo_.begin()->first == rcv_next_) {
      const auto [first, last] = *ooo_.begin();
      ooo_.erase(ooo_.begin());
      for (udtr::SeqNo s = first;;) {
        ++stats_.delivered;
        if (on_deliver_) on_deliver_(s);
        rcv_next_ = s.next();
        if (s == last) break;
        s = s.next();
      }
    }
  } else if (udtr::SeqNo::cmp(seq, rcv_next_) > 0) {
    // Insert into the out-of-order interval map, merging neighbours.
    udtr::SeqNo first = seq, last = seq;
    auto next_it = ooo_.upper_bound(seq);
    if (next_it != ooo_.begin()) {
      auto prev_it = std::prev(next_it);
      if (udtr::SeqNo::cmp(seq, prev_it->second) <= 0) {
        return;  // duplicate inside an existing range
      }
      if (prev_it->second.next() == seq) {
        first = prev_it->first;
        ooo_.erase(prev_it);
      }
    }
    next_it = ooo_.upper_bound(seq);
    if (next_it != ooo_.end() && next_it->first == seq.next()) {
      last = next_it->second;
      ooo_.erase(next_it);
    }
    ooo_[first] = last;
  }
  // else: duplicate below rcv_next — still triggers an ACK.

  Packet ack;
  ack.kind = PacketKind::kTcpAck;
  ack.flow = cfg_.flow_id;
  ack.tcp_ack = rcv_next_;
  ack.sent_at = pkt.sent_at;       // echoed for the sender's RTT sample
  ack.retransmit = pkt.retransmit; // Karn: no RTT sample from retransmits
  // SACK blocks: the range containing this arrival first, then the lowest
  // remaining ranges (up to 4 blocks total, as on-the-wire SACK would).
  int blocks = 0;
  auto containing = ooo_.end();
  for (auto it = ooo_.begin(); it != ooo_.end(); ++it) {
    if (udtr::SeqNo::cmp(it->first, seq) <= 0 &&
        udtr::SeqNo::cmp(seq, it->second) <= 0) {
      containing = it;
      break;
    }
  }
  // Long ranges are advertised by their most recent 64 packets — the sender
  // accumulates SACK state across ACKs, so earlier parts were already
  // reported, and bounding the block keeps per-ACK processing O(1).
  const auto clamp_range = [](udtr::SeqNo first, udtr::SeqNo last) {
    if (udtr::SeqNo::length(first, last) > 64) {
      first = last.advanced_by(-63);
    }
    return std::pair{first, last};
  };
  if (containing != ooo_.end()) {
    ack.sack.push_back(clamp_range(containing->first, containing->second));
    ++blocks;
  }
  for (auto it = ooo_.begin(); it != ooo_.end() && blocks < 4; ++it) {
    if (it == containing) continue;
    ack.sack.push_back(clamp_range(it->first, it->second));
    ++blocks;
  }
  ack.size_bytes = kTcpAckBase + 8 * blocks;
  ++stats_.acks_sent;
  if (out_ != nullptr) out_->receive(std::move(ack));
}

}  // namespace udtr::sim
