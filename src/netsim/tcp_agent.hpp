// TCP endpoints for the simulator: a SACK-based sender ("standard TCP" in
// the paper means TCP SACK, §2.2) with a pluggable congestion-avoidance rule
// so the same machinery also runs Scalable TCP and HighSpeed TCP.
//
// The sender is deliberately window-clocked (no pacing): the paper's
// arguments about bursting window control vs. rate control (§3.2, §3.7)
// depend on TCP sending back-to-back bursts into the bottleneck queue.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "cc/tcp_cavoid.hpp"
#include "common/seqno.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

struct TcpFlowConfig {
  int flow_id = 0;
  int mss_bytes = 1500;
  double start_time = 0.0;
  std::uint64_t total_packets = std::numeric_limits<std::uint64_t>::max();
  double recv_window_pkts = 1e9;  // paper: buffer >= BDP in all experiments
  double initial_cwnd = 2.0;
  double rto_min_s = 0.2;
  std::string cong_avoid = "reno-sack";
  int dupack_threshold = 3;
};

struct TcpSenderStats {
  std::uint64_t data_sent = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t timeouts = 0;
};

class TcpSender final : public Consumer {
 public:
  TcpSender(Simulator& sim, TcpFlowConfig cfg);

  void set_out(Consumer* out) { out_ = out; }
  void start();

  void receive(Packet pkt) override;  // ACKs from the reverse path

  [[nodiscard]] const TcpSenderStats& stats() const { return stats_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double srtt_s() const { return srtt_s_; }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] double finish_time() const { return finish_time_; }
  // Completion callback for short-flow workloads (Fig. 13).
  void set_on_finish(std::function<void()> cb) { on_finish_ = std::move(cb); }

 private:
  struct CircLess {
    bool operator()(udtr::SeqNo a, udtr::SeqNo b) const {
      return udtr::SeqNo::cmp(a, b) < 0;
    }
  };

  void try_send();
  void send_data(udtr::SeqNo seq, bool retransmit);
  [[nodiscard]] double pipe() const;
  void enter_recovery();
  void update_rtt(double sample_s);
  void arm_rto();
  void on_rto();
  void detect_losses();

  Simulator& sim_;
  TcpFlowConfig cfg_;
  Consumer* out_ = nullptr;
  std::unique_ptr<cc::TcpCongAvoid> ca_;
  TcpSenderStats stats_;
  std::function<void()> on_finish_;

  udtr::SeqNo snd_una_{};
  udtr::SeqNo next_seq_{};
  std::uint64_t new_packets_sent_ = 0;
  bool all_sent_ = false;
  bool finished_ = false;
  double finish_time_ = -1.0;

  double cwnd_;
  double ssthresh_ = 1e9;
  bool in_recovery_ = false;
  udtr::SeqNo recovery_point_{};
  int dupacks_ = 0;

  std::set<udtr::SeqNo, CircLess> sacked_;
  std::set<udtr::SeqNo, CircLess> lost_;  // marked lost, not yet retransmitted

  double srtt_s_ = 0.0;
  double base_rtt_s_ = 0.0;  // minimum observed RTT (Vegas/FAST baseline)
  double rttvar_s_ = 0.0;
  double rto_s_ = 1.0;
  int rto_backoff_ = 0;
  std::uint64_t rto_epoch_ = 0;
  bool started_ = false;
  double last_progress_time_ = 0.0;
  udtr::SeqNo scan_next_{};  // loss-detection watermark (keeps scans linear)
};

struct TcpReceiverStats {
  std::uint64_t data_received = 0;
  std::uint64_t delivered = 0;
  std::uint64_t acks_sent = 0;
};

class TcpReceiver final : public Consumer {
 public:
  TcpReceiver(Simulator& sim, TcpFlowConfig cfg) : sim_(sim), cfg_(cfg) {}

  void set_out(Consumer* out) { out_ = out; }
  void receive(Packet pkt) override;

  [[nodiscard]] const TcpReceiverStats& stats() const { return stats_; }
  void set_on_deliver(std::function<void(udtr::SeqNo)> cb) {
    on_deliver_ = std::move(cb);
  }

 private:
  struct CircLess {
    bool operator()(udtr::SeqNo a, udtr::SeqNo b) const {
      return udtr::SeqNo::cmp(a, b) < 0;
    }
  };

  Simulator& sim_;
  TcpFlowConfig cfg_;
  Consumer* out_ = nullptr;
  TcpReceiverStats stats_;
  std::function<void(udtr::SeqNo)> on_deliver_;

  udtr::SeqNo rcv_next_{};  // next expected in-order sequence
  // Out-of-order ranges above rcv_next (start -> inclusive end).
  std::map<udtr::SeqNo, udtr::SeqNo, CircLess> ooo_;
};

}  // namespace udtr::sim
