// Topology builder for the paper's experiments: N flows with individual RTTs
// sharing one DropTail bottleneck (the classic dumbbell).  All propagation
// delay sits on the per-flow access/reverse links, so the bottleneck models
// serialization + queueing only — the same decomposition the paper's NS-2
// scripts use.
//
//   sender --(delay rtt/2)--> [bottleneck: capacity, DropTail q] --> demux --> receiver
//      ^                                                                         |
//      +------------------------------(delay rtt/2)------------------------------+
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "netsim/demux.hpp"
#include "netsim/link.hpp"
#include "netsim/sources.hpp"
#include "netsim/tcp_agent.hpp"
#include "netsim/udt_agent.hpp"

namespace udtr::sim {

struct DumbbellConfig {
  udtr::Bandwidth bottleneck = udtr::Bandwidth::mbps(100);
  std::size_t queue_pkts = 100;  // DropTail limit
  // Optional RED queue management instead of DropTail (footnote 4 studies).
  std::optional<RedPolicy::Params> red;
  // Random forward-path loss ahead of the bottleneck (models physical-layer
  // errors on real WANs, §2.2's reason single TCP cannot fill long paths).
  double loss_rate = 0.0;
  std::uint64_t loss_seed = 1;

  DumbbellConfig() = default;
  DumbbellConfig(udtr::Bandwidth b, std::size_t q)
      : bottleneck(b), queue_pkts(q) {}
  DumbbellConfig(udtr::Bandwidth b, std::size_t q, RedPolicy::Params r)
      : bottleneck(b), queue_pkts(q), red(r) {}
};

class Dumbbell {
 public:
  Dumbbell(Simulator& sim, DumbbellConfig cfg)
      : sim_(sim),
        bottleneck_(sim, cfg.bottleneck, /*prop_delay=*/0.0,
                    cfg.red.has_value()
                        ? std::unique_ptr<QueueDiscipline>(
                              std::make_unique<RedPolicy>(*cfg.red))
                        : std::make_unique<DropTailPolicy>(cfg.queue_pkts)) {
    bottleneck_.set_next(&demux_);
    if (cfg.loss_rate > 0.0) {
      lossy_ = std::make_unique<LossyLink>(cfg.loss_rate, cfg.loss_seed);
      lossy_->set_next(&bottleneck_);
    }
  }

  // Where flows inject forward traffic: the loss stage if one exists.
  [[nodiscard]] Consumer& ingress() {
    return lossy_ ? static_cast<Consumer&>(*lossy_)
                  : static_cast<Consumer&>(bottleneck_);
  }

  // Adds a UDT flow with the given end-to-end base RTT; returns its index
  // within udt_senders()/udt_receivers().
  std::size_t add_udt_flow(UdtFlowConfig cfg, double rtt_s) {
    cfg.flow_id = next_flow_id_++;
    // Desynchronize the flows' within-epoch decrease spacing.
    cfg.cc.seed = static_cast<std::uint64_t>(cfg.flow_id) * 2654435761ULL + 1;
    auto snd = std::make_unique<UdtSender>(sim_, cfg);
    auto rcv = std::make_unique<UdtReceiver>(sim_, cfg);
    auto fwd = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    auto rev = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    snd->set_out(fwd.get());
    fwd->set_next(&ingress());
    demux_.route(cfg.flow_id, rcv.get());
    rcv->set_out(rev.get());
    rev->set_next(snd.get());
    snd->start();
    rcv->start();
    udt_snd_.push_back(std::move(snd));
    udt_rcv_.push_back(std::move(rcv));
    links_.push_back(std::move(fwd));
    links_.push_back(std::move(rev));
    return udt_snd_.size() - 1;
  }

  std::size_t add_tcp_flow(TcpFlowConfig cfg, double rtt_s) {
    cfg.flow_id = next_flow_id_++;
    auto snd = std::make_unique<TcpSender>(sim_, cfg);
    auto rcv = std::make_unique<TcpReceiver>(sim_, cfg);
    auto fwd = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    auto rev = std::make_unique<DelayLink>(sim_, rtt_s / 2.0);
    snd->set_out(fwd.get());
    fwd->set_next(&ingress());
    demux_.route(cfg.flow_id, rcv.get());
    rcv->set_out(rev.get());
    rev->set_next(snd.get());
    snd->start();
    tcp_snd_.push_back(std::move(snd));
    tcp_rcv_.push_back(std::move(rcv));
    links_.push_back(std::move(fwd));
    links_.push_back(std::move(rev));
    return tcp_snd_.size() - 1;
  }

  // Adds an uncontrolled bursting UDP flow straight into the bottleneck.
  BurstSource& add_burst_source(udtr::Bandwidth rate, int pkt_bytes,
                                double on_mean_s, double off_mean_s,
                                double start, double stop,
                                std::uint64_t seed) {
    const int id = next_flow_id_++;
    auto sink = std::make_unique<CountingSink>();
    demux_.route(id, sink.get());
    auto src = std::make_unique<BurstSource>(sim_, id, rate, pkt_bytes,
                                             on_mean_s, off_mean_s, start,
                                             stop, seed);
    src->set_out(&bottleneck_);
    burst_.push_back(std::move(src));
    sinks_.push_back(std::move(sink));
    return *burst_.back();
  }

  CbrSource& add_cbr_source(udtr::Bandwidth rate, int pkt_bytes, double start,
                            double stop) {
    const int id = next_flow_id_++;
    auto sink = std::make_unique<CountingSink>();
    demux_.route(id, sink.get());
    auto src = std::make_unique<CbrSource>(sim_, id, rate, pkt_bytes, start,
                                           stop);
    src->set_out(&bottleneck_);
    cbr_.push_back(std::move(src));
    sinks_.push_back(std::move(sink));
    return *cbr_.back();
  }

  [[nodiscard]] Link& bottleneck() { return bottleneck_; }
  [[nodiscard]] UdtSender& udt_sender(std::size_t i) { return *udt_snd_[i]; }
  [[nodiscard]] UdtReceiver& udt_receiver(std::size_t i) {
    return *udt_rcv_[i];
  }
  [[nodiscard]] TcpSender& tcp_sender(std::size_t i) { return *tcp_snd_[i]; }
  [[nodiscard]] TcpReceiver& tcp_receiver(std::size_t i) {
    return *tcp_rcv_[i];
  }
  [[nodiscard]] std::size_t udt_flows() const { return udt_snd_.size(); }
  [[nodiscard]] std::size_t tcp_flows() const { return tcp_snd_.size(); }

 private:
  Simulator& sim_;
  Link bottleneck_;
  std::unique_ptr<LossyLink> lossy_;
  FlowDemux demux_;
  int next_flow_id_ = 1;
  std::vector<std::unique_ptr<UdtSender>> udt_snd_;
  std::vector<std::unique_ptr<UdtReceiver>> udt_rcv_;
  std::vector<std::unique_ptr<TcpSender>> tcp_snd_;
  std::vector<std::unique_ptr<TcpReceiver>> tcp_rcv_;
  std::vector<std::unique_ptr<DelayLink>> links_;
  std::vector<std::unique_ptr<BurstSource>> burst_;
  std::vector<std::unique_ptr<CbrSource>> cbr_;
  std::vector<std::unique_ptr<CountingSink>> sinks_;
};

}  // namespace udtr::sim
