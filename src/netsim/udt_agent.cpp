#include "netsim/udt_agent.hpp"

#include <algorithm>

namespace udtr::sim {

namespace {
constexpr int kAckSize = 64;   // ACK carries RTT/speed/capacity/window
constexpr int kAck2Size = 40;
constexpr int kNakBaseSize = 32;
}  // namespace

// ---------------------------------------------------------------- sender ---

UdtSender::UdtSender(Simulator& sim, UdtFlowConfig cfg)
    : sim_(sim), cfg_(cfg), cc_(cfg.cc), sabul_(cfg.sabul_cc) {}

void UdtSender::start() {
  sim_.at(cfg_.start_time, [this] {
    last_ctrl_time_ = sim_.now();
    next_send_time_ = sim_.now();
    schedule_send(sim_.now());
    arm_exp_timer();
  });
}

void UdtSender::schedule_send(double at) {
  if (send_scheduled_) return;
  send_scheduled_ = true;
  sim_.at(at, [this] {
    send_scheduled_ = false;
    on_send_timer();
  });
}

void UdtSender::emit_data(udtr::SeqNo seq, bool retransmit, bool head,
                          bool tail) {
  Packet p;
  p.kind = PacketKind::kUdtData;
  p.flow = cfg_.flow_id;
  p.size_bytes = cfg_.mss_bytes;
  p.seq = seq;
  p.retransmit = retransmit;
  p.probe_head = head;
  p.probe_tail = tail;
  p.sent_at = sim_.now();
  if (retransmit) {
    ++stats_.retransmitted;
  } else {
    ++stats_.data_sent;
  }
  if (!sent_any_ || udtr::SeqNo::cmp(seq, largest_sent_) > 0) {
    largest_sent_ = seq;
    sent_any_ = true;
  }
  if (out_ != nullptr) out_->receive(std::move(p));
}

void UdtSender::on_send_timer() {
  const double now = sim_.now();
  cc_.set_now(now);

  if (ctl_frozen(now)) {
    // Congestion-epoch freeze (§3.3): hold off for the rest of the SYN.
    schedule_send(now + cfg_.cc.syn_s);
    return;
  }

  const double wnd = ctl_window();
  const bool has_retrans = !snd_loss_.empty();
  const bool has_new = !all_sent_;
  if (!has_retrans && !has_new) return;  // idle until a NAK or nothing left

  if (static_cast<double>(in_flight()) >= wnd && !has_retrans) {
    // Window-blocked: the next ACK restarts the pacing loop.
    stalled_ = true;
    return;
  }
  stalled_ = false;

  const double period = ctl_period();
  if (has_retrans) {
    // Lost packets always go out first (§4.8).
    const udtr::SeqNo seq = *snd_loss_.begin();
    snd_loss_.erase(snd_loss_.begin());
    emit_data(seq, /*retransmit=*/true, false, false);
    next_send_time_ = now + period;
  } else {
    const udtr::SeqNo seq = next_seq_;
    const bool probe =
        cfg_.probe_interval > 0 &&
        (seq.value() % cfg_.probe_interval == 0) &&
        (new_packets_sent_ + 2 <= cfg_.total_packets) &&
        (static_cast<double>(in_flight()) + 2.0 <= wnd);
    emit_data(seq, false, probe, false);
    next_seq_ = next_seq_.next();
    ++new_packets_sent_;
    if (probe) {
      // The pair's tail leaves back to back with no pacing gap, so the
      // bottleneck's serialization time shows up as dispersion (RBPP).
      emit_data(next_seq_, false, false, /*tail=*/true);
      next_seq_ = next_seq_.next();
      ++new_packets_sent_;
    }
    all_sent_ = new_packets_sent_ >= cfg_.total_packets;
    next_send_time_ = now + period * (probe ? 2.0 : 1.0);
  }

  if (!snd_loss_.empty() || !all_sent_) {
    schedule_send(std::max(next_send_time_, now));
  }
}

double UdtSender::exp_timeout() const {
  const double rtt = cc_.last_rtt_s();
  const double base = std::max(cfg_.min_exp_timeout_s, 4.0 * rtt);
  // Expiration grows with consecutive timeouts (congestion-collapse
  // avoidance, §3.5), capped at 16x.
  const double factor = std::min(1 << std::min(consecutive_timeouts_, 4), 16);
  return base * factor;
}

void UdtSender::arm_exp_timer() {
  const std::uint64_t epoch = ++exp_epoch_;
  sim_.at(last_ctrl_time_ + exp_timeout(), [this, epoch] {
    if (epoch != exp_epoch_) return;  // superseded by newer activity
    on_exp_timer();
  });
}

void UdtSender::on_exp_timer() {
  const double now = sim_.now();
  if (now - last_ctrl_time_ + 1e-12 < exp_timeout()) {
    arm_exp_timer();
    return;
  }
  if (finished()) return;
  ++consecutive_timeouts_;
  ++stats_.timeouts;
  cc_.set_now(now);
  cc_.on_timeout();
  if (cfg_.sabul) {
    sabul_.set_now(now);
    sabul_.on_timeout();
  }
  if (in_flight() > 0) {
    // Nothing heard for a full expiration period: assume everything
    // outstanding is lost and reload the loss list.
    for (udtr::SeqNo s = snd_una_; udtr::SeqNo::cmp(s, next_seq_) < 0;
         s = s.next()) {
      snd_loss_.insert(s);
    }
  }
  last_ctrl_time_ = now;
  arm_exp_timer();
  if (!send_scheduled_) schedule_send(std::max(next_send_time_, now));
}

void UdtSender::receive(Packet pkt) {
  const double now = sim_.now();
  cc_.set_now(now);

  switch (pkt.kind) {
    case PacketKind::kUdtAck: {
      ++stats_.acks_received;
      last_ctrl_time_ = now;
      consecutive_timeouts_ = 0;
      arm_exp_timer();

      // Echo ACK2 so the receiver can measure RTT.
      Packet a2;
      a2.kind = PacketKind::kUdtAck2;
      a2.flow = cfg_.flow_id;
      a2.size_bytes = kAck2Size;
      a2.ack_id = pkt.ack_id;
      if (out_ != nullptr) out_->receive(std::move(a2));

      if (udtr::SeqNo::cmp(pkt.ack_seq, snd_una_) > 0) {
        snd_una_ = pkt.ack_seq;
        // Acknowledged packets can no longer need retransmission.
        snd_loss_.erase(snd_loss_.begin(), snd_loss_.lower_bound(snd_una_));
      }
      cc::AckInfo info;
      info.ack_seq = pkt.ack_seq;
      info.rtt_s = pkt.rtt_s;
      info.recv_rate_pps = pkt.recv_rate_pps;
      info.capacity_pps = pkt.capacity_pps;
      info.avail_buffer_pkts =
          pkt.avail_buffer_pkts > 0 ? pkt.avail_buffer_pkts : 1e9;
      cc_.on_ack(info);
      if (cfg_.sabul) {
        sabul_.set_now(now);
        sabul_.on_ack();
      }

      if (finished() && finish_time_ < 0.0) finish_time_ = now;
      break;
    }
    case PacketKind::kUdtNak: {
      ++stats_.naks_received;
      last_ctrl_time_ = now;
      arm_exp_timer();

      udtr::SeqNo biggest = snd_una_;
      for (const auto& [first, last] : pkt.loss) {
        for (udtr::SeqNo s = first;;) {
          if (udtr::SeqNo::cmp(s, snd_una_) >= 0 &&
              udtr::SeqNo::cmp(s, next_seq_) < 0) {
            snd_loss_.insert(s);
          }
          if (s == last) break;
          s = s.next();
        }
        if (udtr::SeqNo::cmp(last, biggest) > 0) biggest = last;
      }
      cc_.on_nak(biggest, largest_sent_);
      if (cfg_.sabul) {
        sabul_.set_now(now);
        sabul_.on_nak();
      }
      break;
    }
    case PacketKind::kUdtDelayWarn:
      cc_.on_delay_warning();
      break;
    default:
      break;  // data/ACK2 never arrive on the sender's reverse path
  }

  // Control packets may have unblocked the pacing loop.
  if (!send_scheduled_ && (!snd_loss_.empty() || !all_sent_)) {
    schedule_send(std::max(next_send_time_, now));
  }
}

// -------------------------------------------------------------- receiver ---

UdtReceiver::UdtReceiver(Simulator& sim, UdtFlowConfig cfg)
    : sim_(sim), cfg_(cfg) {
  lrsn_ = udtr::SeqNo{0}.prev();  // "one before" the first expected packet
  delivered_upto_ = udtr::SeqNo{0};
}

void UdtReceiver::start() {
  sim_.at(cfg_.start_time, [this] { on_syn_timer(); });
}

void UdtReceiver::on_syn_timer() {
  send_ack();
  resend_naks();
  sim_.after(cfg_.cc.syn_s, [this] { on_syn_timer(); });
}

std::uint64_t UdtReceiver::pending_loss() const {
  std::uint64_t n = 0;
  for (const auto& [first, range] : rcv_loss_) {
    n += static_cast<std::uint64_t>(udtr::SeqNo::length(first, range.last));
  }
  return n;
}

void UdtReceiver::send_ack() {
  if (!any_data_) return;
  const udtr::SeqNo ack_no =
      rcv_loss_.empty() ? lrsn_.next() : rcv_loss_.begin()->first;
  // Suppress pure duplicates when nothing changed since the last ACK.
  if (sent_any_ack_ && ack_no == last_acked_seq_ && !data_since_last_ack_) {
    return;
  }
  Packet ack;
  ack.kind = PacketKind::kUdtAck;
  ack.flow = cfg_.flow_id;
  ack.size_bytes = kAckSize;
  ack.ack_seq = ack_no;
  ack.ack_id = next_ack_id_++;
  ack.rtt_s = rtt_s_;
  ack.recv_rate_pps = speed_.packets_per_second();
  ack.capacity_pps = pair_.capacity_packets_per_second();
  // The app consumes in-order data immediately in this model, so the free
  // buffer is the configured size minus the out-of-order backlog.
  const double backlog =
      static_cast<double>(udtr::SeqNo::offset(delivered_upto_, lrsn_.next()));
  ack.avail_buffer_pkts = std::max(cfg_.recv_buffer_pkts - backlog, 2.0);
  ack_send_times_[ack.ack_id] = sim_.now();
  if (ack_send_times_.size() > 256) {
    ack_send_times_.erase(ack_send_times_.begin());
  }
  last_acked_seq_ = ack_no;
  sent_any_ack_ = true;
  data_since_last_ack_ = false;
  ++stats_.acks_sent;
  if (out_ != nullptr) out_->receive(std::move(ack));
}

void UdtReceiver::resend_naks() {
  const double now = sim_.now();
  const double rtt = rtt_s_ > 0.0 ? rtt_s_ : 0.1;
  for (auto& [first, range] : rcv_loss_) {
    // Loss reports are repeated after an interval that grows with each
    // resend (§3.1/§3.5): the retransmission or the NAK itself was lost.
    const double timeout =
        std::min(1 << std::min(range.nak_count - 1, 4), 16) *
        std::max(rtt * 1.5, 2.0 * cfg_.cc.syn_s);
    if (now - range.last_nak_time >= timeout) {
      Packet nak;
      nak.kind = PacketKind::kUdtNak;
      nak.flow = cfg_.flow_id;
      nak.loss.emplace_back(first, range.last);
      nak.size_bytes =
          kNakBaseSize + 8 * static_cast<int>(nak.loss.size());
      range.last_nak_time = now;
      ++range.nak_count;
      ++stats_.naks_sent;
      if (out_ != nullptr) out_->receive(std::move(nak));
    }
  }
}

void UdtReceiver::deliver_in_order() {
  const udtr::SeqNo boundary =
      rcv_loss_.empty() ? lrsn_.next() : rcv_loss_.begin()->first;
  const std::int32_t n = udtr::SeqNo::offset(delivered_upto_, boundary);
  if (n <= 0) return;
  if (on_deliver_) {
    for (udtr::SeqNo s = delivered_upto_; udtr::SeqNo::cmp(s, boundary) < 0;
         s = s.next()) {
      on_deliver_(s);
    }
  }
  stats_.delivered += static_cast<std::uint64_t>(n);
  delivered_upto_ = boundary;
}

void UdtReceiver::handle_data(Packet& pkt) {
  const double now = sim_.now();
  ++stats_.data_received;
  data_since_last_ack_ = true;

  if (last_arrival_time_ >= 0.0) {
    speed_.add_interval(now - last_arrival_time_);
  }
  last_arrival_time_ = now;

  if (pkt.probe_head) {
    probe_head_time_ = now;
    probe_head_seq_ = pkt.seq;
  } else if (pkt.probe_tail && probe_head_time_ >= 0.0 &&
             pkt.seq == probe_head_seq_.next()) {
    pair_.add_dispersion(now - probe_head_time_);
    probe_head_time_ = -1.0;
  } else {
    probe_head_time_ = -1.0;  // pair interleaved by another packet: discard
  }

  // Obsolete delay-trend mode (§6): a one-way-delay trend over the last
  // group of packets triggers an early congestion warning.
  if (cfg_.cc.delay_trend_mode &&
      delay_trend_.add_delay(now - pkt.sent_at)) {
    Packet warn;
    warn.kind = PacketKind::kUdtDelayWarn;
    warn.flow = cfg_.flow_id;
    warn.size_bytes = 32;
    if (out_ != nullptr) out_->receive(std::move(warn));
  }

  const udtr::SeqNo expected = lrsn_.next();
  const int c = udtr::SeqNo::cmp(pkt.seq, expected);
  if (c == 0) {
    lrsn_ = pkt.seq;
    any_data_ = true;
  } else if (c > 0) {
    // Gap: everything in [expected, seq-1] is missing.  NAK immediately so
    // the sender reacts to congestion as fast as possible (§3.1).
    const udtr::SeqNo gap_last = pkt.seq.prev();
    rcv_loss_.emplace(expected,
                      LossRange{gap_last, now, /*nak_count=*/1});
    const auto gap_len =
        static_cast<std::uint32_t>(udtr::SeqNo::length(expected, gap_last));
    ++stats_.loss_events;
    stats_.lost_packets += gap_len;
    loss_event_sizes_.push_back(gap_len);

    Packet nak;
    nak.kind = PacketKind::kUdtNak;
    nak.flow = cfg_.flow_id;
    nak.loss.emplace_back(expected, gap_last);
    nak.size_bytes = kNakBaseSize + 8;
    ++stats_.naks_sent;
    if (out_ != nullptr) out_->receive(std::move(nak));

    lrsn_ = pkt.seq;
    any_data_ = true;
  } else {
    // Retransmission (or duplicate): clear it from the loss list.
    auto it = rcv_loss_.upper_bound(pkt.seq);
    if (it != rcv_loss_.begin()) {
      --it;
      const udtr::SeqNo first = it->first;
      const udtr::SeqNo last = it->second.last;
      if (udtr::SeqNo::cmp(pkt.seq, first) >= 0 &&
          udtr::SeqNo::cmp(pkt.seq, last) <= 0) {
        const LossRange old = it->second;
        rcv_loss_.erase(it);
        if (pkt.seq != first) {
          rcv_loss_.emplace(first, LossRange{pkt.seq.prev(), old.last_nak_time,
                                             old.nak_count});
        }
        if (pkt.seq != last) {
          rcv_loss_.emplace(pkt.seq.next(),
                            LossRange{last, old.last_nak_time, old.nak_count});
        }
      } else {
        ++stats_.duplicates;
        return;
      }
    } else {
      ++stats_.duplicates;
      return;
    }
  }
  deliver_in_order();
}

void UdtReceiver::receive(Packet pkt) {
  switch (pkt.kind) {
    case PacketKind::kUdtData:
      handle_data(pkt);
      break;
    case PacketKind::kUdtAck2: {
      auto it = ack_send_times_.find(pkt.ack_id);
      if (it != ack_send_times_.end()) {
        const double sample = sim_.now() - it->second;
        ack_send_times_.erase(it);
        rtt_s_ = rtt_s_ <= 0.0 ? sample : rtt_s_ * 0.875 + sample * 0.125;
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace udtr::sim
