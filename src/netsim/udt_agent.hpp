// UDT endpoints for the simulator (paper §3 mechanics end to end).
//
// The sender paces data packets with the period computed by cc::UdtCc,
// retransmits loss-list entries with priority, and emits a back-to-back
// packet pair every `probe_interval` packets (RBPP, §3.4).  The receiver
// detects gaps, NAKs immediately (re-NAKing with backoff), acknowledges on
// the SYN timer, measures RTT through ACK2, and estimates arrival speed and
// link capacity with the median filters from common/.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <set>

#include "cc/sabul_cc.hpp"
#include "cc/udt_cc.hpp"
#include "common/delay_trend.hpp"
#include "common/median_filter.hpp"
#include "common/seqno.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

struct UdtFlowConfig {
  int flow_id = 0;
  int mss_bytes = 1500;
  cc::UdtCcConfig cc{};
  double start_time = 0.0;
  // Total data packets to send; default is an unbounded bulk source.
  std::uint64_t total_packets = std::numeric_limits<std::uint64_t>::max();
  int probe_interval = 16;      // packet pair every N packets
  double min_exp_timeout_s = 0.5;
  double recv_buffer_pkts = 1e9;
  // Run the predecessor SABUL's MIMD rate control instead of UDT's (§2.3),
  // for the fairness/efficiency comparison the paper draws between them.
  bool sabul = false;
  cc::SabulCcConfig sabul_cc{};
};

struct UdtSenderStats {
  std::uint64_t data_sent = 0;       // original transmissions
  std::uint64_t retransmitted = 0;
  std::uint64_t naks_received = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t timeouts = 0;
};

struct UdtReceiverStats {
  std::uint64_t data_received = 0;   // every data packet incl. duplicates
  std::uint64_t delivered = 0;       // in-order packets handed to the app
  std::uint64_t duplicates = 0;
  std::uint64_t loss_events = 0;     // NAK-triggering gap detections
  std::uint64_t lost_packets = 0;    // packets covered by those gaps
  std::uint64_t acks_sent = 0;
  std::uint64_t naks_sent = 0;
};

class UdtSender final : public Consumer {
 public:
  UdtSender(Simulator& sim, UdtFlowConfig cfg);

  void set_out(Consumer* out) { out_ = out; }
  void start();

  // Reverse-path input: ACK / ACK2-echo / NAK packets.
  void receive(Packet pkt) override;

  [[nodiscard]] const UdtSenderStats& stats() const { return stats_; }
  [[nodiscard]] const cc::UdtCc& cc() const { return cc_; }
  [[nodiscard]] bool finished() const {
    return limited() && all_sent_ && snd_loss_.empty() &&
           udtr::SeqNo::offset(snd_una_, next_seq_) == 0;
  }
  [[nodiscard]] double finish_time() const { return finish_time_; }
  [[nodiscard]] std::uint64_t in_flight() const {
    return static_cast<std::uint64_t>(udtr::SeqNo::offset(snd_una_, next_seq_));
  }

 private:
  [[nodiscard]] bool limited() const {
    return cfg_.total_packets != std::numeric_limits<std::uint64_t>::max();
  }
  void on_send_timer();
  void schedule_send(double at);
  void emit_data(udtr::SeqNo seq, bool retransmit, bool head, bool tail);
  void arm_exp_timer();
  void on_exp_timer();
  [[nodiscard]] double exp_timeout() const;

  // Congestion-controller dispatch: either UDT's (cc_) or SABUL's (sabul_),
  // selected by cfg_.sabul.
  [[nodiscard]] double ctl_period() const {
    return cfg_.sabul ? sabul_.pkt_send_period_s() : cc_.pkt_send_period_s();
  }
  [[nodiscard]] double ctl_window() const {
    return cfg_.sabul ? sabul_.window_packets() : cc_.window_packets();
  }
  [[nodiscard]] bool ctl_frozen(double now) const {
    return !cfg_.sabul && cc_.frozen_until(now);
  }

  Simulator& sim_;
  UdtFlowConfig cfg_;
  Consumer* out_ = nullptr;
  cc::UdtCc cc_;
  cc::SabulCc sabul_;
  UdtSenderStats stats_;

  udtr::SeqNo next_seq_{};      // next brand-new sequence number
  udtr::SeqNo snd_una_{};       // everything before this is acknowledged
  udtr::SeqNo largest_sent_{};
  bool sent_any_ = false;
  std::uint64_t new_packets_sent_ = 0;
  bool all_sent_ = false;
  double finish_time_ = -1.0;

  struct CircLess {
    bool operator()(udtr::SeqNo a, udtr::SeqNo b) const {
      return udtr::SeqNo::cmp(a, b) < 0;
    }
  };
  std::set<udtr::SeqNo, CircLess> snd_loss_;

  bool send_scheduled_ = false;
  bool stalled_ = false;        // window-blocked; an ACK restarts sending
  double next_send_time_ = 0.0;

  double last_ctrl_time_ = 0.0; // last ACK/NAK arrival (EXP timer basis)
  int consecutive_timeouts_ = 0;
  std::uint64_t exp_epoch_ = 0; // invalidates stale EXP timer events
};

class UdtReceiver final : public Consumer {
 public:
  UdtReceiver(Simulator& sim, UdtFlowConfig cfg);

  void set_out(Consumer* out) { out_ = out; }  // reverse path toward sender
  void start();

  // Forward-path input: data and ACK2 packets.
  void receive(Packet pkt) override;

  // Called for each in-order data packet delivered to the "application".
  void set_on_deliver(std::function<void(udtr::SeqNo)> cb) {
    on_deliver_ = std::move(cb);
  }

  [[nodiscard]] const UdtReceiverStats& stats() const { return stats_; }
  [[nodiscard]] double rtt_s() const { return rtt_s_; }
  [[nodiscard]] double capacity_pps() const {
    return pair_.capacity_packets_per_second();
  }
  [[nodiscard]] double arrival_pps() const {
    return speed_.packets_per_second();
  }
  // #packets in the receiver loss list (pending retransmission).
  [[nodiscard]] std::uint64_t pending_loss() const;
  // Size (packets) of each loss event so far, for Fig. 8.
  [[nodiscard]] const std::vector<std::uint32_t>& loss_event_sizes() const {
    return loss_event_sizes_;
  }

 private:
  void on_syn_timer();
  void send_ack();
  void resend_naks();
  void handle_data(Packet& pkt);

  Simulator& sim_;
  UdtFlowConfig cfg_;
  Consumer* out_ = nullptr;
  UdtReceiverStats stats_;
  std::function<void(udtr::SeqNo)> on_deliver_;

  bool any_data_ = false;
  udtr::SeqNo lrsn_{};          // largest received sequence number
  udtr::SeqNo delivered_upto_{};  // next in-order packet expected by the app
  bool delivery_started_ = false;

  struct LossRange {
    udtr::SeqNo last;
    double last_nak_time;
    int nak_count;
  };
  struct CircLess {
    bool operator()(udtr::SeqNo a, udtr::SeqNo b) const {
      return udtr::SeqNo::cmp(a, b) < 0;
    }
  };
  std::map<udtr::SeqNo, LossRange, CircLess> rcv_loss_;
  std::vector<std::uint32_t> loss_event_sizes_;

  udtr::ArrivalSpeedEstimator speed_{16};
  udtr::PacketPairEstimator pair_{16};
  double last_arrival_time_ = -1.0;
  double probe_head_time_ = -1.0;
  udtr::SeqNo probe_head_seq_{};

  double rtt_s_ = 0.0;
  udtr::DelayTrendDetector delay_trend_{16};
  std::int32_t next_ack_id_ = 1;
  std::map<std::int32_t, double> ack_send_times_;
  udtr::SeqNo last_acked_seq_{};
  bool sent_any_ack_ = false;
  bool data_since_last_ack_ = false;

  void deliver_in_order();
};

}  // namespace udtr::sim
