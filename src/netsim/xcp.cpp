#include "netsim/xcp.hpp"

namespace udtr::sim {

namespace {
constexpr int kXcpAckSize = 48;
constexpr double kDemand = 1e9;  // sender's initial (unbounded) request
}  // namespace

// ---------------------------------------------------------------- router ---

void XcpRouter::receive(Packet pkt) {
  if (pkt.kind == PacketKind::kXcpData) {
    const double rtt = pkt.xcp_rtt_s > 0.0 ? pkt.xcp_rtt_s : avg_rtt_s_;
    const double cwnd = std::max(pkt.xcp_cwnd_pkts, 1.0);
    input_pkts_ += 1.0;
    sum_rtt_ += rtt;
    sum_rtt_sq_over_cwnd_ += rtt * rtt / cwnd;
    sum_inv_ += 1.0;

    // Positive feedback equalizes throughput across flows (per-packet share
    // proportional to rtt^2/cwnd); negative feedback is rate-proportional
    // (per-packet share proportional to rtt).
    const double fb = xi_pos_ * rtt * rtt / cwnd - xi_neg_ * rtt;
    pkt.xcp_feedback_pkts = std::min(pkt.xcp_feedback_pkts, fb);
  }
  link_.receive(std::move(pkt));
}

void XcpRouter::on_interval() {
  const double capacity_pps = link_.capacity().packets_per_sec(1500);
  const double input_pps = input_pkts_ / interval_s_;
  const double spare_pps = capacity_pps - input_pps;
  const double queue_pkts = static_cast<double>(link_.queue_depth());

  if (sum_inv_ > 0.0) {
    avg_rtt_s_ = std::clamp(sum_rtt_ / sum_inv_, 0.001, 1.0);
  }

  // Efficiency controller: aggregate window budget for the next interval.
  phi_pkts_ = kAlpha * spare_pps * interval_s_ - kBeta * queue_pkts;
  // Fairness controller: shuffle a slice of the traffic even at equilibrium
  // so allocations keep converging (AIMD across flows).
  const double shuffle =
      std::max(0.0, kShuffle * input_pkts_ - std::abs(phi_pkts_));
  const double pos_budget = std::max(phi_pkts_, 0.0) + shuffle;
  const double neg_budget = std::max(-phi_pkts_, 0.0) + shuffle;

  xi_pos_ = sum_rtt_sq_over_cwnd_ > 0.0
                ? pos_budget / sum_rtt_sq_over_cwnd_
                : 0.0;
  xi_neg_ = sum_rtt_ > 0.0 ? neg_budget / sum_rtt_ : 0.0;

  input_pkts_ = 0.0;
  sum_rtt_ = 0.0;
  sum_rtt_sq_over_cwnd_ = 0.0;
  sum_inv_ = 0.0;

  // The control interval tracks the average RTT (Katabi's d).
  interval_s_ = avg_rtt_s_;
  sim_.after(interval_s_, [this] { on_interval(); });
}

// ---------------------------------------------------------------- sender ---

void XcpSender::try_send() {
  const double now = sim_.now();
  // Stall recovery: with no reliability layer (XCP keeps queues near zero,
  // drops are exceptional), leaked outstanding credits decay after silence.
  if (last_ack_time_ >= 0.0 &&
      now - last_ack_time_ > std::max(4.0 * rtt_s_, 0.5)) {
    outstanding_ = 0.0;
    last_ack_time_ = now;
  }
  while (outstanding_ < cwnd_) {
    Packet p;
    p.kind = PacketKind::kXcpData;
    p.flow = cfg_.flow_id;
    p.size_bytes = cfg_.mss_bytes;
    p.seq = next_seq_;
    next_seq_ = next_seq_.next();
    p.sent_at = now;
    p.xcp_rtt_s = rtt_s_;
    p.xcp_cwnd_pkts = cwnd_;
    p.xcp_feedback_pkts = kDemand;
    outstanding_ += 1.0;
    ++stats_.data_sent;
    if (out_ != nullptr) out_->receive(std::move(p));
  }
  sim_.after(std::max(rtt_s_, 0.1), [this] { try_send(); });
}

void XcpSender::receive(Packet pkt) {
  if (pkt.kind != PacketKind::kXcpAck) return;
  ++stats_.acks_received;
  last_ack_time_ = sim_.now();
  // The path is FIFO, so an ACK for seq s means everything sent before s is
  // either delivered or dropped: in flight = packets after s.  This keeps
  // drops from leaking send credits permanently.
  outstanding_ = std::max(
      static_cast<double>(udtr::SeqNo::offset(pkt.seq, next_seq_)) - 1.0,
      0.0);
  const double sample = sim_.now() - pkt.sent_at;
  if (sample > 0.0) {
    rtt_s_ = rtt_s_ <= 0.0 ? sample : rtt_s_ * 0.875 + sample * 0.125;
  }
  // Apply the routers' allocation directly (the whole point of XCP: no
  // probing, the network says how much to change the window).
  if (pkt.xcp_feedback_pkts < kDemand) {
    cwnd_ = std::max(cwnd_ + pkt.xcp_feedback_pkts, 1.0);
  }
  while (outstanding_ < cwnd_) {
    Packet p;
    p.kind = PacketKind::kXcpData;
    p.flow = cfg_.flow_id;
    p.size_bytes = cfg_.mss_bytes;
    p.seq = next_seq_;
    next_seq_ = next_seq_.next();
    p.sent_at = sim_.now();
    p.xcp_rtt_s = rtt_s_;
    p.xcp_cwnd_pkts = cwnd_;
    p.xcp_feedback_pkts = kDemand;
    outstanding_ += 1.0;
    ++stats_.data_sent;
    if (out_ != nullptr) out_->receive(std::move(p));
  }
}

// -------------------------------------------------------------- receiver ---

void XcpReceiver::receive(Packet pkt) {
  if (pkt.kind != PacketKind::kXcpData) return;
  ++stats_.delivered;
  Packet ack;
  ack.kind = PacketKind::kXcpAck;
  ack.flow = pkt.flow;
  ack.size_bytes = kXcpAckSize;
  ack.seq = pkt.seq;
  ack.sent_at = pkt.sent_at;                       // RTT echo
  ack.xcp_feedback_pkts = pkt.xcp_feedback_pkts;   // feedback echo
  if (out_ != nullptr) out_->receive(std::move(ack));
}

}  // namespace udtr::sim
