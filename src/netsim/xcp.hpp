// XCP-lite [Katabi/Handley/Rohrs, SIGCOMM '02] — the router-assisted
// comparator the paper positions UDT against (§2.2: "XCP, which adds
// explicit feedback from routers, is a more radical change"; §3.4: "XCP
// puts the control at the routers, so it knows everything about the link").
//
// Senders advertise (rtt, cwnd) in a congestion header; each router runs an
// efficiency controller (MIMD on spare bandwidth and queue) and a fairness
// controller (AIMD via bandwidth shuffling), writing a per-packet window
// delta that downstream routers may only lower; the receiver echoes it in
// ACKs and the sender applies it directly.  This is the simplified
// packet-count formulation: uniform MSS, feedback in packets.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "netsim/link.hpp"
#include "netsim/packet.hpp"
#include "netsim/sim.hpp"

namespace udtr::sim {

// Sits in front of a Link and stamps XCP feedback into kXcpData packets.
// Non-XCP traffic passes through untouched.
class XcpRouter final : public Consumer {
 public:
  XcpRouter(Simulator& sim, Link& link, double ctl_interval_s = 0.05)
      : sim_(sim), link_(link), interval_s_(ctl_interval_s) {
    sim_.after(interval_s_, [this] { on_interval(); });
  }

  void receive(Packet pkt) override;

  [[nodiscard]] double last_phi_pkts() const { return phi_pkts_; }

 private:
  void on_interval();

  Simulator& sim_;
  Link& link_;
  double interval_s_;

  // Measured over the current interval.
  double input_pkts_ = 0.0;
  double sum_rtt_ = 0.0;
  double sum_rtt_sq_over_cwnd_ = 0.0;
  double sum_inv_ = 0.0;  // count of XCP packets
  // Controller state for the running interval.
  double phi_pkts_ = 0.0;       // aggregate feedback budget
  double xi_pos_ = 0.0;         // positive per-packet scale
  double xi_neg_ = 0.0;         // negative per-packet scale
  double avg_rtt_s_ = 0.05;

  static constexpr double kAlpha = 0.4;
  static constexpr double kBeta = 0.226;
  static constexpr double kShuffle = 0.1;
};

struct XcpFlowConfig {
  int flow_id = 0;
  int mss_bytes = 1500;
  double start_time = 0.0;
  double initial_cwnd = 2.0;
};

struct XcpSenderStats {
  std::uint64_t data_sent = 0;
  std::uint64_t acks_received = 0;
};

// Window-based sender driven purely by the echoed router feedback.
class XcpSender final : public Consumer {
 public:
  XcpSender(Simulator& sim, XcpFlowConfig cfg)
      : sim_(sim), cfg_(cfg), cwnd_(cfg.initial_cwnd) {}

  void set_out(Consumer* out) { out_ = out; }
  void start() {
    sim_.at(cfg_.start_time, [this] { try_send(); });
  }

  void receive(Packet pkt) override;  // ACKs

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double rtt_s() const { return rtt_s_; }
  [[nodiscard]] const XcpSenderStats& stats() const { return stats_; }

 private:
  void try_send();

  Simulator& sim_;
  XcpFlowConfig cfg_;
  Consumer* out_ = nullptr;
  XcpSenderStats stats_;
  double cwnd_;
  double rtt_s_ = 0.0;
  double outstanding_ = 0.0;   // credits consumed by unacked packets
  double last_ack_time_ = -1.0;
  udtr::SeqNo next_seq_{};
};

struct XcpReceiverStats {
  std::uint64_t delivered = 0;  // packets received (cumulative-ack model)
};

class XcpReceiver final : public Consumer {
 public:
  explicit XcpReceiver(Simulator& /*sim*/) {}
  void set_out(Consumer* out) { out_ = out; }
  void receive(Packet pkt) override;
  [[nodiscard]] const XcpReceiverStats& stats() const { return stats_; }

 private:
  Consumer* out_ = nullptr;
  XcpReceiverStats stats_;
};

}  // namespace udtr::sim
