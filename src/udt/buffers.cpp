#include "udt/buffers.hpp"

#include <algorithm>
#include <cstring>

namespace udtr::udt {

// ------------------------------------------------------------- SndBuffer ---

SndBuffer::SndBuffer(int mss_bytes, std::size_t capacity_bytes)
    : mss_(mss_bytes), capacity_bytes_(capacity_bytes) {}

std::size_t SndBuffer::add(std::span<const std::uint8_t> data) {
  std::size_t accepted = 0;
  while (accepted < data.size() && bytes_ < capacity_bytes_) {
    const std::size_t room = capacity_bytes_ - bytes_;
    const std::size_t take = std::min(
        {static_cast<std::size_t>(mss_), data.size() - accepted, room});
    Chunk c;
    c.owned.assign(data.begin() + accepted, data.begin() + accepted + take);
    chunks_.push_back(std::move(c));
    bytes_ += take;
    accepted += take;
  }
  return accepted;
}

std::size_t SndBuffer::add_borrowed(std::span<const std::uint8_t> data) {
  std::size_t accepted = 0;
  while (accepted < data.size() && bytes_ < capacity_bytes_) {
    const std::size_t room = capacity_bytes_ - bytes_;
    const std::size_t take = std::min(
        {static_cast<std::size_t>(mss_), data.size() - accepted, room});
    Chunk c;
    c.view = data.subspan(accepted, take);
    chunks_.push_back(std::move(c));
    bytes_ += take;
    accepted += take;
  }
  return accepted;
}

std::optional<std::span<const std::uint8_t>> SndBuffer::chunk(
    std::int64_t index) const {
  if (index < base_index_ || index >= end_index()) return std::nullopt;
  return chunks_[static_cast<std::size_t>(index - base_index_)].bytes();
}

void SndBuffer::ack_up_to(std::int64_t index) {
  while (base_index_ < index && !chunks_.empty()) {
    bytes_ -= chunks_.front().bytes().size();
    chunks_.pop_front();
    ++base_index_;
  }
}

// ------------------------------------------------------------- RcvBuffer ---

RcvBuffer::RcvBuffer(int mss_bytes, std::int32_t capacity_pkts)
    : mss_(mss_bytes),
      capacity_(capacity_pkts),
      slots_(static_cast<std::size_t>(capacity_pkts)) {}

std::size_t RcvBuffer::readable_bytes() const {
  if (contig_ <= read_index_) return 0;
  std::size_t n = 0;
  for (std::int64_t i = read_index_; i < contig_; ++i) {
    const auto& s = slots_[static_cast<std::size_t>(i % capacity_)];
    n += s.data.size();
  }
  return n - read_offset_;
}

std::int32_t RcvBuffer::avail_packets() const {
  // Slots between the largest stored index and the read cursor's window end.
  const std::int64_t used = max_index_ - read_index_;
  return static_cast<std::int32_t>(
      std::max<std::int64_t>(capacity_ - used, 0));
}

void RcvBuffer::advance_contig() {
  while (contig_ < read_index_ + capacity_ &&
         slot(contig_).filled) {
    ++contig_;
  }
}

void RcvBuffer::drain_into_user_buffer() {
  while (!user_buf_.empty() && user_filled_ < user_buf_.size() &&
         read_index_ < contig_) {
    Slot& s = slot(read_index_);
    const std::size_t avail = s.data.size() - read_offset_;
    const std::size_t want = user_buf_.size() - user_filled_;
    const std::size_t take = std::min(avail, want);
    std::memcpy(user_buf_.data() + user_filled_,
                s.data.data() + read_offset_, take);
    user_filled_ += take;
    read_offset_ += take;
    if (read_offset_ == s.data.size()) {
      s = Slot{};
      ++read_index_;
      read_offset_ = 0;
    }
  }
}

bool RcvBuffer::store(std::int64_t index,
                      std::span<const std::uint8_t> payload) {
  if (index < contig_) return false;                    // duplicate / stale
  if (index >= read_index_ + capacity_) return false;   // beyond the window

  // Overlapped-IO fast path: the next expected packet with an armed user
  // buffer that can absorb it entirely goes straight to application memory
  // (Fig. 10 — the user buffer is the logical extension of the protocol
  // buffer).
  if (index == contig_ && contig_ == read_index_ && read_offset_ == 0 &&
      !user_buf_.empty() &&
      user_buf_.size() - user_filled_ >= payload.size()) {
    std::memcpy(user_buf_.data() + user_filled_, payload.data(),
                payload.size());
    user_filled_ += payload.size();
    ++contig_;
    ++read_index_;
    max_index_ = std::max(max_index_, index + 1);
    // Later packets may already sit in the ring contiguously.
    advance_contig();
    drain_into_user_buffer();
    return true;
  }

  Slot& s = slot(index);
  if (s.filled) return false;
  s.data.assign(payload.begin(), payload.end());
  s.filled = true;
  max_index_ = std::max(max_index_, index + 1);
  if (index == contig_) {
    advance_contig();
    if (!user_buf_.empty()) drain_into_user_buffer();
  }
  return true;
}

std::size_t RcvBuffer::read(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && read_index_ < contig_) {
    Slot& s = slot(read_index_);
    const std::size_t avail = s.data.size() - read_offset_;
    const std::size_t take = std::min(avail, out.size() - copied);
    std::memcpy(out.data() + copied, s.data.data() + read_offset_, take);
    copied += take;
    read_offset_ += take;
    if (read_offset_ == s.data.size()) {
      s = Slot{};
      ++read_index_;
      read_offset_ = 0;
    }
  }
  return copied;
}

std::size_t RcvBuffer::register_user_buffer(std::span<std::uint8_t> buf) {
  user_buf_ = buf;
  user_filled_ = 0;
  drain_into_user_buffer();
  return user_filled_;
}

std::size_t RcvBuffer::release_user_buffer() {
  const std::size_t filled = user_filled_;
  user_buf_ = {};
  user_filled_ = 0;
  return filled;
}

}  // namespace udtr::udt
