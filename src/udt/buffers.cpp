#include "udt/buffers.hpp"

#include <algorithm>
#include <cstring>

#include "udt/packet.hpp"

namespace udtr::udt {

// ------------------------------------------------------------- SndBuffer ---

SndBuffer::SndBuffer(int mss_bytes, std::size_t capacity_bytes)
    : mss_(mss_bytes),
      capacity_bytes_(capacity_bytes),
      // The free list must absorb a whole buffer's worth of chunk storage:
      // ACKs arrive in SYN-cadence bursts that can release thousands of
      // chunks at once, and anything the list cannot hold is a fresh heap
      // allocation on the very next add() — the steady state would allocate
      // per packet.  Retained memory is bounded by capacity_bytes_, which
      // the buffer is already sized to commit.
      free_store_cap_(capacity_bytes / static_cast<std::size_t>(mss_bytes) +
                      64) {
  // No up-front reservations: an idle socket's send buffer owns zero heap.
  // parked_/free_store_ grow amortized on the first real traffic.
}

void SndBuffer::recycle(std::vector<std::uint8_t>&& storage) {
  if (free_store_.size() < free_store_cap_ && storage.capacity() > 0) {
    free_store_.push_back(std::move(storage));
  }
}

void SndBuffer::push_chunk(Chunk&& c) {
  if (count_ == ring_.size()) {
    // Grow the circle, unrolling it so head_ returns to 0.  Chunk moves keep
    // the owned heap buffers (and thus any captured spans) address-stable.
    std::vector<Chunk> bigger;
    bigger.resize(std::max<std::size_t>(16, ring_.size() * 2));
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(ring_[(head_ + i) % ring_.size()]);
    }
    ring_ = std::move(bigger);
    head_ = 0;
  }
  ring_[(head_ + count_) % ring_.size()] = std::move(c);
  ++count_;
}

std::size_t SndBuffer::add(std::span<const std::uint8_t> data) {
  std::size_t accepted = 0;
  while (accepted < data.size() && bytes_ < capacity_bytes_) {
    const std::size_t room = capacity_bytes_ - bytes_;
    const std::size_t take = std::min(
        {static_cast<std::size_t>(mss_), data.size() - accepted, room});
    Chunk c;
    if (!free_store_.empty()) {
      c.owned = std::move(free_store_.back());
      free_store_.pop_back();
    }
    c.owned.assign(data.begin() + accepted, data.begin() + accepted + take);
    push_chunk(std::move(c));
    bytes_ += take;
    accepted += take;
  }
  return accepted;
}

std::size_t SndBuffer::add_borrowed(std::span<const std::uint8_t> data) {
  std::size_t accepted = 0;
  while (accepted < data.size() && bytes_ < capacity_bytes_) {
    const std::size_t room = capacity_bytes_ - bytes_;
    const std::size_t take = std::min(
        {static_cast<std::size_t>(mss_), data.size() - accepted, room});
    Chunk c;
    c.view = data.subspan(accepted, take);
    push_chunk(std::move(c));
    bytes_ += take;
    accepted += take;
  }
  return accepted;
}

std::size_t SndBuffer::add_message(std::span<const std::uint8_t> data,
                                   std::uint32_t msg_no, bool in_order) {
  if (data.empty() || data.size() > capacity_bytes_ - bytes_) return 0;
  const auto mss = static_cast<std::size_t>(mss_);
  const std::size_t npkts = (data.size() + mss - 1) / mss;
  std::size_t off = 0;
  for (std::size_t k = 0; k < npkts; ++k) {
    const std::size_t take = std::min(mss, data.size() - off);
    Chunk c;
    if (!free_store_.empty()) {
      c.owned = std::move(free_store_.back());
      free_store_.pop_back();
    }
    c.owned.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                   data.begin() + static_cast<std::ptrdiff_t>(off + take));
    const MsgBoundary b = npkts == 1      ? MsgBoundary::kSolo
                          : k == 0        ? MsgBoundary::kFirst
                          : k + 1 == npkts ? MsgBoundary::kLast
                                           : MsgBoundary::kMiddle;
    c.msg_word = make_msg_word(b, in_order, msg_no);
    push_chunk(std::move(c));
    bytes_ += take;
    off += take;
  }
  return off;
}

std::uint32_t SndBuffer::msg_word(std::int64_t index) const {
  if (index < base_index_ || index >= end_index()) return 0;
  return ring_[ring_pos(index)].msg_word;
}

bool SndBuffer::is_dead(std::int64_t index) const {
  if (index < base_index_ || index >= end_index()) return false;
  return ring_[ring_pos(index)].dead;
}

void SndBuffer::mark_dead(std::int64_t first, std::int64_t end) {
  first = std::max(first, base_index_);
  end = std::min(end, end_index());
  for (std::int64_t i = first; i < end; ++i) {
    Chunk& c = ring_[ring_pos(i)];
    if (c.dead) continue;
    bytes_ -= c.bytes().size();
    if (!c.owned.empty()) {
      if (pin_covers(i)) {
        // Same barrier rule as ack_up_to: an in-flight send may still hold
        // iovecs into this storage.
        parked_.push_back(Parked{next_pin_token_, std::move(c.owned)});
      } else {
        recycle(std::move(c.owned));
      }
      c.owned.clear();
    }
    c.view = {};
    c.dead = true;
  }
}

std::optional<std::span<const std::uint8_t>> SndBuffer::chunk(
    std::int64_t index) const {
  if (index < base_index_ || index >= end_index()) return std::nullopt;
  return ring_[ring_pos(index)].bytes();
}

void SndBuffer::ack_up_to(std::int64_t index) {
  while (base_index_ < index && count_ > 0) {
    Chunk& c = ring_[head_];
    bytes_ -= c.bytes().size();
    if (!c.owned.empty()) {
      if (pin_covers(base_index_)) {
        // An in-flight send may hold iovecs into this storage: park it until
        // every pin that could reference it is released.  Only pins already
        // issued (token < next_pin_token_) can cover it, hence the barrier.
        // (Borrowed views need no parking — the overlapped caller is itself
        // blocked on pinned_below() and keeps the memory alive.)
        parked_.push_back(Parked{next_pin_token_, std::move(c.owned)});
      } else {
        recycle(std::move(c.owned));
      }
      c.owned.clear();
    }
    c.view = {};
    c.msg_word = 0;
    c.dead = false;
    head_ = (head_ + 1) % ring_.size();
    --count_;
    ++base_index_;
  }
}

void SndBuffer::disown_views(std::int64_t first, std::int64_t end) {
  first = std::max(first, base_index_);
  end = std::min(end, end_index());
  for (std::int64_t i = first; i < end; ++i) {
    Chunk& c = ring_[ring_pos(i)];
    if (c.dead || c.view.empty() || !c.owned.empty()) continue;
    if (!free_store_.empty()) {
      c.owned = std::move(free_store_.back());
      free_store_.pop_back();
    }
    c.owned.assign(c.view.begin(), c.view.end());
    c.view = {};
  }
}

bool SndBuffer::pin_covers(std::int64_t index) const {
  for (const PinRange& p : pins_) {
    if (index >= p.first && index < p.end) return true;
  }
  return false;
}

std::uint64_t SndBuffer::pin(std::int64_t first, std::int64_t end) {
  pins_.push_back(PinRange{next_pin_token_, first, end});
  return next_pin_token_++;
}

bool SndBuffer::unpin(std::uint64_t token) {
  bool had = false;
  for (std::size_t i = 0; i < pins_.size(); ++i) {
    if (pins_[i].token == token) {
      pins_.erase(pins_.begin() + static_cast<std::ptrdiff_t>(i));
      had = true;
      break;
    }
  }
  if (!had) return false;
  // Recycle every parked chunk no surviving pin can reference: a chunk
  // parked at barrier B is only reachable by pins with token < B.
  std::uint64_t min_active = next_pin_token_;
  for (const PinRange& p : pins_) min_active = std::min(min_active, p.token);
  std::erase_if(parked_, [&](Parked& pk) {
    if (pk.barrier > min_active) return false;
    recycle(std::move(pk.storage));
    return true;
  });
  return true;
}

bool SndBuffer::pinned_below(std::int64_t end) const {
  for (const PinRange& p : pins_) {
    if (p.first < end) return true;
  }
  return false;
}

// -------------------------------------------------------------- RecvSlab ---

RecvSlab::RecvSlab(std::size_t slot_bytes, std::size_t slot_count)
    : slot_bytes_(slot_bytes),
      slot_count_(slot_count),
      arena_(slot_bytes * slot_count),
      refs_(slot_count, 0) {
  free_.reserve(slot_count);
  // LIFO free list: the hottest slot (most recently released) is reused
  // first, which keeps the working set small and cache-warm.
  for (std::size_t i = slot_count; i-- > 0;) {
    free_.push_back(static_cast<int>(i));
  }
}

int RecvSlab::acquire() {
  std::lock_guard lk{mu_};
  if (free_.empty()) return -1;
  const int slot = free_.back();
  free_.pop_back();
  refs_[static_cast<std::size_t>(slot)] = 1;
  return slot;
}

void RecvSlab::add_ref(int slot) {
  std::lock_guard lk{mu_};
  ++refs_[static_cast<std::size_t>(slot)];
}

void RecvSlab::release(int slot) {
  std::lock_guard lk{mu_};
  if (--refs_[static_cast<std::size_t>(slot)] == 0) {
    free_.push_back(slot);
  }
}

std::size_t RecvSlab::free_count() const {
  std::lock_guard lk{mu_};
  return free_.size();
}

// ------------------------------------------------------------- RcvBuffer ---

RcvBuffer::RcvBuffer(int mss_bytes, std::int32_t capacity_pkts)
    : mss_(mss_bytes), capacity_(capacity_pkts) {
  // slots_ stays empty until the first store (ensure_slots): at the default
  // 16384-packet window the ring is ~1 MB per socket, which a 100k-socket
  // idle fleet cannot afford to hold for sockets that never receive data.
}

RcvBuffer::~RcvBuffer() {
  for (auto& s : slots_) release_slot(s);
}

void RcvBuffer::release_payload(Slot& s) {
  if (s.slab != nullptr) {
    s.slab->release(s.slab_slot);
    s.slab = nullptr;
    s.slab_slot = -1;
  }
  s.ext = nullptr;
  s.ext_len = 0;
  if (s.data.capacity() > 0 &&
      spare_.size() < static_cast<std::size_t>(capacity_)) {
    // Pool the copy storage instead of leaving it slot-local: the next
    // store() may land anywhere in the ring.
    s.data.clear();
    spare_.push_back(std::move(s.data));
  }
  s.data = {};
}

void RcvBuffer::release_slot(Slot& s) {
  release_payload(s);
  s.filled = false;
  s.consumed = false;
  s.msg_word = 0;
}

std::size_t RcvBuffer::readable_bytes() const {
  if (contig_ <= read_index_) return 0;
  std::size_t n = 0;
  for (std::int64_t i = read_index_; i < contig_; ++i) {
    const auto& s = slots_[static_cast<std::size_t>(i % capacity_)];
    // Stream reads stop at message payloads and sealed holes.
    if (s.msg_word != 0 || s.consumed) break;
    n += s.size();
  }
  return n - read_offset_;
}

std::int32_t RcvBuffer::avail_packets() const {
  // Slots between the largest stored index and the read cursor's window end.
  const std::int64_t used = max_index_ - read_index_;
  return static_cast<std::int32_t>(
      std::max<std::int64_t>(capacity_ - used, 0));
}

void RcvBuffer::advance_contig() {
  // The ring may not exist yet when the overlapped fast path delivered the
  // first packets straight to the user buffer.
  if (slots_.empty()) return;
  while (contig_ < read_index_ + capacity_ &&
         slot(contig_).filled) {
    ++contig_;
  }
}

void RcvBuffer::drain_into_user_buffer() {
  while (!user_buf_.empty() && user_filled_ < user_buf_.size() &&
         read_index_ < contig_) {
    Slot& s = slot(read_index_);
    if (s.msg_word != 0 || s.consumed) break;  // not stream bytes
    const std::size_t avail = s.size() - read_offset_;
    const std::size_t want = user_buf_.size() - user_filled_;
    const std::size_t take = std::min(avail, want);
    std::memcpy(user_buf_.data() + user_filled_,
                s.bytes() + read_offset_, take);
    user_copied_bytes_ += take;
    user_filled_ += take;
    read_offset_ += take;
    if (read_offset_ == s.size()) {
      release_slot(s);
      ++read_index_;
      read_offset_ = 0;
    }
  }
}

bool RcvBuffer::store_common(std::int64_t index,
                             std::span<const std::uint8_t> payload,
                             std::uint32_t msg_word, bool& accepted) {
  accepted = false;
  if (index < contig_) return true;                    // duplicate / stale
  if (index >= read_index_ + capacity_) return true;   // beyond the window

  // Overlapped-IO fast path: the next expected packet with an armed user
  // buffer that can absorb it entirely goes straight to application memory
  // (Fig. 10 — the user buffer is the logical extension of the protocol
  // buffer).  Message payloads never take it: they must be reassembled (and
  // possibly sealed away) in the ring, not spliced into a byte stream.
  if (msg_word == 0 &&
      index == contig_ && contig_ == read_index_ && read_offset_ == 0 &&
      !user_buf_.empty() &&
      user_buf_.size() - user_filled_ >= payload.size()) {
    std::memcpy(user_buf_.data() + user_filled_, payload.data(),
                payload.size());
    user_copied_bytes_ += payload.size();
    user_filled_ += payload.size();
    ++contig_;
    ++read_index_;
    max_index_ = std::max(max_index_, index + 1);
    // Later packets may already sit in the ring contiguously.
    advance_contig();
    drain_into_user_buffer();
    accepted = true;
    return true;
  }
  return false;
}

bool RcvBuffer::store(std::int64_t index,
                      std::span<const std::uint8_t> payload,
                      std::uint32_t msg_word) {
  bool accepted = false;
  if (store_common(index, payload, msg_word, accepted)) return accepted;

  ensure_slots();
  Slot& s = slot(index);
  if (s.filled) return false;
  if (s.data.capacity() == 0 && !spare_.empty()) {
    s.data = std::move(spare_.back());
    spare_.pop_back();
  }
  s.data.assign(payload.begin(), payload.end());
  ring_copied_bytes_ += payload.size();
  s.filled = true;
  s.msg_word = msg_word;
  max_index_ = std::max(max_index_, index + 1);
  if (index == contig_) {
    advance_contig();
    if (!user_buf_.empty()) drain_into_user_buffer();
  }
  if (msg_word != 0) try_complete_msg(index);
  return true;
}

bool RcvBuffer::store_ref(std::int64_t index,
                          std::span<const std::uint8_t> payload,
                          RecvSlab* slab, int slot_id,
                          std::uint32_t msg_word) {
  bool accepted = false;
  if (store_common(index, payload, msg_word, accepted)) return accepted;

  ensure_slots();
  Slot& s = slot(index);
  if (s.filled) return false;
  s.ext = payload.data();
  s.ext_len = payload.size();
  s.slab = slab;
  s.slab_slot = slot_id;
  slab->add_ref(slot_id);
  s.filled = true;
  s.msg_word = msg_word;
  max_index_ = std::max(max_index_, index + 1);
  if (index == contig_) {
    advance_contig();
    if (!user_buf_.empty()) drain_into_user_buffer();
  }
  if (msg_word != 0) try_complete_msg(index);
  return true;
}

std::size_t RcvBuffer::read(std::span<std::uint8_t> out) {
  std::size_t copied = 0;
  while (copied < out.size() && read_index_ < contig_) {
    Slot& s = slot(read_index_);
    if (s.msg_word != 0 || s.consumed) break;  // not stream bytes
    const std::size_t avail = s.size() - read_offset_;
    const std::size_t take = std::min(avail, out.size() - copied);
    std::memcpy(out.data() + copied, s.bytes() + read_offset_, take);
    user_copied_bytes_ += take;
    copied += take;
    read_offset_ += take;
    if (read_offset_ == s.size()) {
      release_slot(s);
      ++read_index_;
      read_offset_ = 0;
    }
  }
  return copied;
}

std::size_t RcvBuffer::take_stream(std::size_t max_bytes,
                                   std::vector<Taken>& out) {
  std::size_t total = 0;
  while (total < max_bytes && read_index_ < contig_) {
    Slot& s = slot(read_index_);
    if (s.msg_word != 0 || s.consumed) break;  // not stream bytes
    const std::size_t avail = s.size() - read_offset_;
    const std::size_t take = std::min(avail, max_bytes - total);
    Taken t;
    if (take < avail) {
      // Bounded request ends mid-slot: copy the fragment out and leave the
      // remainder readable in place.  At most one MSS per transfer.
      t.owned.assign(s.bytes() + read_offset_,
                     s.bytes() + read_offset_ + take);
      t.data = t.owned.data();
      t.len = take;
      user_copied_bytes_ += take;
      read_offset_ += take;
    } else if (s.slab != nullptr) {
      // Move the slot's slab reference to the caller: the slab slot stays
      // alive until the Taken holder releases it.
      t.data = s.bytes() + read_offset_;
      t.len = take;
      t.slab = s.slab;
      t.slab_slot = s.slab_slot;
      s.slab = nullptr;
      s.slab_slot = -1;
      s.ext = nullptr;
      s.ext_len = 0;
      taken_ref_bytes_ += take;
      release_slot(s);
      ++read_index_;
      read_offset_ = 0;
    } else {
      // Copy-path slot: move the owned vector itself.
      t.owned = std::move(s.data);
      s.data = {};
      t.data = t.owned.data() + read_offset_;
      t.len = take;
      taken_ref_bytes_ += take;
      release_slot(s);
      ++read_index_;
      read_offset_ = 0;
    }
    out.push_back(std::move(t));
    total += take;
  }
  return total;
}

void RcvBuffer::try_complete_msg(std::int64_t index) {
  const std::uint32_t no = msg_number(slot(index).msg_word);
  // Walk back to the message's first packet.
  std::int64_t f = index;
  while (true) {
    const MsgBoundary b = msg_boundary(slot(f).msg_word);
    if (b == MsgBoundary::kFirst || b == MsgBoundary::kSolo) break;
    if (f == read_index_ || index - f + 1 >= capacity_) return;
    const Slot& p = slot(f - 1);
    const MsgBoundary pb = msg_boundary(p.msg_word);
    if (!p.filled || p.consumed || p.msg_word == 0 ||
        msg_number(p.msg_word) != no || pb == MsgBoundary::kLast ||
        pb == MsgBoundary::kSolo) {
      return;  // predecessor missing or a different message: incomplete
    }
    --f;
  }
  // ... and forward to its last.
  std::int64_t l = index;
  while (true) {
    const MsgBoundary b = msg_boundary(slot(l).msg_word);
    if (b == MsgBoundary::kLast || b == MsgBoundary::kSolo) break;
    if (l + 1 >= read_index_ + capacity_ || l - f + 1 >= capacity_) return;
    const Slot& nx = slot(l + 1);
    const MsgBoundary nb = msg_boundary(nx.msg_word);
    if (!nx.filled || nx.consumed || nx.msg_word == 0 ||
        msg_number(nx.msg_word) != no || nb == MsgBoundary::kFirst ||
        nb == MsgBoundary::kSolo) {
      return;
    }
    ++l;
  }
  if (msg_in_order(slot(f).msg_word) && f != read_index_) {
    // Complete, but something before it is still undelivered and unsealed.
    waiting_.push_back(ReadyMsg{f, l});
  } else {
    ready_.push_back(ReadyMsg{f, l});
  }
}

void RcvBuffer::advance_frontier() {
  if (slots_.empty()) return;
  while (read_index_ < max_index_ && slot(read_index_).filled &&
         slot(read_index_).consumed) {
    release_slot(slot(read_index_));
    ++read_index_;
    read_offset_ = 0;
  }
  if (contig_ < read_index_) contig_ = read_index_;
  advance_contig();
  // At most one parked in-order message can start exactly at the frontier;
  // the next one promotes when this one is delivered.
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].first == read_index_) {
      ready_.push_back(waiting_[i]);
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

std::size_t RcvBuffer::read_msg(std::span<std::uint8_t> out) {
  if (ready_.empty()) return 0;
  const ReadyMsg m = ready_.front();
  ready_.pop_front();
  std::size_t copied = 0;
  for (std::int64_t i = m.first; i <= m.last; ++i) {
    Slot& s = slot(i);
    const std::size_t take = std::min(s.size(), out.size() - copied);
    std::memcpy(out.data() + copied, s.bytes(), take);
    user_copied_bytes_ += take;
    copied += take;
    release_payload(s);
    s.consumed = true;
  }
  advance_frontier();
  return copied;
}

void RcvBuffer::seal_range(std::int64_t first, std::int64_t last) {
  ensure_slots();
  first = std::max(first, read_index_);
  last = std::min(last, read_index_ + capacity_ - 1);
  if (last < first) return;
  for (std::int64_t i = first; i <= last; ++i) {
    Slot& s = slot(i);
    // Partially-arrived payload of the expired message is discarded: an
    // expired message is never delivered, not even its fragments.
    release_payload(s);
    s.filled = true;
    s.consumed = true;
    s.msg_word = 0;
  }
  max_index_ = std::max(max_index_, last + 1);
  // Any complete-but-undelivered message inside the sealed range dies with
  // it (the sender declared it expired before we handed it up).
  const auto overlaps = [&](const ReadyMsg& m) {
    return m.last >= first && m.first <= last;
  };
  std::erase_if(ready_, overlaps);
  std::erase_if(waiting_, overlaps);
  advance_contig();
  advance_frontier();
}

std::size_t RcvBuffer::register_user_buffer(std::span<std::uint8_t> buf) {
  user_buf_ = buf;
  user_filled_ = 0;
  drain_into_user_buffer();
  return user_filled_;
}

std::size_t RcvBuffer::release_user_buffer() {
  const std::size_t filled = user_filled_;
  user_buf_ = {};
  user_filled_ = 0;
  return filled;
}

}  // namespace udtr::udt
