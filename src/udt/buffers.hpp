// Protocol buffers (paper §4.3, §4.6, Fig. 10).
//
// SndBuffer pre-packetizes application bytes into MSS-sized chunks indexed
// by an absolute packet index (the socket maps sequence numbers to indexes),
// so (re)transmission is a direct lookup.  Chunks live in a circular array
// and their byte storage is recycled through a free list, so the steady
// state allocates nothing per packet.  The zero-copy sender hands the kernel
// iovecs that point straight into these chunks while the socket lock is
// dropped; the pin/unpin API below keeps an ACK that races the syscall from
// freeing storage out from under the in-flight iovec.
//
// RcvBuffer is a ring of packet slots addressed by absolute index.  Because
// the slot of an arrival is computed from its sequence number, out-of-order
// data lands directly at its destination offset — the "speculation of next
// packet" technique costs nothing here beyond the ring addressing.  A slot
// either owns a copied payload (legacy path) or *references* a RecvSlab slot
// the datagram was received into, in which case the buffer holds a slab
// reference until the reader drains it — that is what makes the receive path
// copy-once.  The buffer also supports *user-buffer insertion* (overlapped
// IO): a reader may register its own buffer as a logical extension of the
// protocol buffer, and in-order arrivals are then copied directly into
// application memory, skipping the protocol-buffer staging copy.
//
// SndBuffer/RcvBuffer are plain single-threaded data structures; the socket
// core provides locking.  RecvSlab is internally synchronized because the
// receiver thread acquires slots while the application thread releases them.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

namespace udtr::udt {

class SndBuffer {
 public:
  // `capacity_bytes` bounds buffered-but-unacknowledged application data.
  SndBuffer(int mss_bytes, std::size_t capacity_bytes);

  // Appends application data, splitting it into <= MSS chunks.  Returns the
  // number of bytes accepted (0 when full); never splits across add() calls.
  std::size_t add(std::span<const std::uint8_t> data);

  // Overlapped-send path (§4.7): registers the caller's memory as chunks
  // WITHOUT copying.  The caller must keep `data` alive until every chunk is
  // acknowledged (the socket's send_overlapped blocks until then).
  std::size_t add_borrowed(std::span<const std::uint8_t> data);

  // --- message mode ----------------------------------------------------
  // Appends one whole message, all-or-nothing: returns 0 without buffering
  // anything unless every chunk fits.  Each chunk carries the wire word1
  // (boundary flags + o bit + message number) the sender will stamp into
  // its data header.
  std::size_t add_message(std::span<const std::uint8_t> data,
                          std::uint32_t msg_no, bool in_order);
  // Wire word1 for the chunk at `index`; 0 for stream chunks / out of range.
  [[nodiscard]] std::uint32_t msg_word(std::int64_t index) const;
  // A dead chunk belongs to a TTL-expired message: its payload is gone and
  // the sender must never (re)transmit it.  The slot itself stays in the
  // ring so index arithmetic and cumulative ACKs are undisturbed.
  [[nodiscard]] bool is_dead(std::int64_t index) const;
  void mark_dead(std::int64_t first, std::int64_t end);

  // Chunk for the given absolute packet index; nullopt if out of range.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> chunk(
      std::int64_t index) const;

  // Releases every chunk before `index` (cumulative acknowledgment).  While
  // a pin covers an index, its storage is parked instead of recycled.
  void ack_up_to(std::int64_t index);

  // Converts every borrowed view in [first, end) into buffer-owned storage
  // (one copy per chunk).  Escape hatch for a pipelined sendfile whose flush
  // deadline passed with ring chunks still unacknowledged: after disowning,
  // the caller's memory is referenced only by already-in-flight pins, so it
  // may be reclaimed as soon as those drain instead of waiting for the peer.
  void disown_views(std::int64_t first, std::int64_t end);

  // --- zero-copy send pinning ------------------------------------------
  // The sender pins [first, end) before dropping the socket lock to pass
  // iovecs into those chunks to the kernel.  An ACK that lands while the
  // I/O is in flight still advances base_index_, but the pinned chunks'
  // storage is parked rather than freed, so the in-flight iovecs stay
  // valid.  Several pins may be active at once: the io_uring datapath keeps
  // a batch pinned until its completion is reaped, and the next pacing
  // round pins the following range before that happens.  pin() returns a
  // token; unpin(token) (called with the lock re-held) releases that one
  // pin, recycles whatever parked storage no surviving pin can still
  // reference, and returns whether the token was live — the caller uses
  // that to wake overlapped senders blocked on pinned_below().
  [[nodiscard]] std::uint64_t pin(std::int64_t first, std::int64_t end);
  bool unpin(std::uint64_t token);
  // True while any pin could still reference a chunk below `end`.
  // Overlapped sends must not return to the caller (whose memory the
  // chunks borrow) until this clears.
  [[nodiscard]] bool pinned_below(std::int64_t end) const;
  [[nodiscard]] std::size_t active_pins() const { return pins_.size(); }

  [[nodiscard]] std::int64_t first_index() const { return base_index_; }
  [[nodiscard]] std::int64_t end_index() const {
    return base_index_ + static_cast<std::int64_t>(count_);
  }
  [[nodiscard]] std::size_t chunk_count() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return capacity_bytes_ - bytes_;
  }

 private:
  // A chunk either owns its bytes (copied in by add) or views caller memory
  // (add_borrowed).
  struct Chunk {
    std::vector<std::uint8_t> owned;
    std::span<const std::uint8_t> view;
    std::uint32_t msg_word = 0;  // wire word1; 0 = stream chunk
    bool dead = false;           // TTL-expired message chunk: never transmit
    [[nodiscard]] std::span<const std::uint8_t> bytes() const {
      return owned.empty() ? view
                           : std::span<const std::uint8_t>{owned.data(),
                                                           owned.size()};
    }
  };

  void push_chunk(Chunk&& c);
  void recycle(std::vector<std::uint8_t>&& storage);
  [[nodiscard]] std::size_t ring_pos(std::int64_t index) const {
    return (head_ + static_cast<std::size_t>(index - base_index_)) %
           ring_.size();
  }

  int mss_;
  std::size_t capacity_bytes_;
  // One buffer's worth of chunks: what recycle() retains so bursty ACK
  // releases never force add() to allocate.
  std::size_t free_store_cap_ = 0;
  std::int64_t base_index_ = 0;  // index of the chunk at ring_[head_]
  std::vector<Chunk> ring_;      // circular; grows amortized, never per-packet
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t bytes_ = 0;
  // Recycled chunk storage: add() reuses these instead of allocating.
  std::vector<std::vector<std::uint8_t>> free_store_;
  // One in-flight pinned range.  The vector stays tiny (one entry per
  // in-flight send batch), so linear scans beat any indexed structure.
  struct PinRange {
    std::uint64_t token;
    std::int64_t first;
    std::int64_t end;
  };
  std::vector<PinRange> pins_;
  std::uint64_t next_pin_token_ = 1;
  // Storage of chunks acked while pinned, tagged with the pin-token barrier
  // at park time: only pins created before the barrier can hold iovecs into
  // the chunk, so it recycles once every such pin is gone — without waiting
  // for later, unrelated pins (which would grow parked_ without bound under
  // continuously pipelined sends).
  struct Parked {
    std::uint64_t barrier;
    std::vector<std::uint8_t> storage;
  };
  std::vector<Parked> parked_;
  [[nodiscard]] bool pin_covers(std::int64_t index) const;
};

// Preallocated arena of fixed-size receive slots shared between the channel
// (which receives datagrams into free slots) and the RcvBuffer (which keeps
// a reference per payload still parked in a slot).  Reference counted: the
// receiver thread holds one reference while it parses a slot, each stored
// payload holds one, and the slot returns to the free list when the last
// drops.  Exhaustion is not an error — acquire() returns -1 and callers fall
// back to the copying path, trading a memcpy for bounded memory.
class RecvSlab {
 public:
  RecvSlab(std::size_t slot_bytes, std::size_t slot_count);

  // Claims a free slot with refcount 1; -1 when exhausted.
  [[nodiscard]] int acquire();
  void add_ref(int slot);
  void release(int slot);

  [[nodiscard]] std::uint8_t* data(int slot) {
    return arena_.data() + static_cast<std::size_t>(slot) * slot_bytes_;
  }
  [[nodiscard]] std::size_t slot_bytes() const { return slot_bytes_; }
  [[nodiscard]] std::size_t slot_count() const { return slot_count_; }
  [[nodiscard]] std::size_t free_count() const;

 private:
  std::size_t slot_bytes_;
  std::size_t slot_count_;
  std::vector<std::uint8_t> arena_;
  std::vector<int> refs_;
  std::vector<int> free_;
  mutable std::mutex mu_;
};

class RcvBuffer {
 public:
  RcvBuffer(int mss_bytes, std::int32_t capacity_pkts);
  ~RcvBuffer();
  RcvBuffer(const RcvBuffer&) = delete;
  RcvBuffer& operator=(const RcvBuffer&) = delete;

  // Stores the payload of packet `index`, copying it into owned slot
  // storage.  Returns false if the index falls outside the receivable
  // window (behind the read cursor or beyond the ring) or is a duplicate.
  // In-order data destined for a registered user buffer bypasses the ring
  // entirely.
  bool store(std::int64_t index, std::span<const std::uint8_t> payload,
             std::uint32_t msg_word = 0);

  // Zero-copy variant: parks `payload` BY REFERENCE.  The bytes live in
  // `slab` slot `slot` and the buffer takes a slab reference (released when
  // the reader consumes the slot), so the caller may drop its own reference
  // after the call.  The overlapped fast path still copies straight into
  // the user buffer and takes no reference.  Same return contract as
  // store().
  bool store_ref(std::int64_t index, std::span<const std::uint8_t> payload,
                 RecvSlab* slab, int slot, std::uint32_t msg_word = 0);

  // Copies contiguous received data into `out`; returns bytes copied.
  std::size_t read(std::span<std::uint8_t> out);

  // One payload popped by take_stream: the view stays valid for as long as
  // the Taken lives, because the backing storage moved with it — either one
  // slab reference (the holder must slab->release(slab_slot) when done) or
  // the slot's owned vector.  A partial take at the tail of a bounded
  // request is the one case that copies (into `owned`, no slab ref).
  struct Taken {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    RecvSlab* slab = nullptr;
    int slab_slot = -1;
    std::vector<std::uint8_t> owned;
  };
  // By-reference stream drain (the write-behind half of the file pipeline):
  // pops up to `max_bytes` of contiguous stream data, transferring payload
  // ownership out of the ring — no memcpy in steady state — and advances the
  // read cursor so the flow-control window reopens immediately, before the
  // bytes ever touch a disk.  Returns bytes appended to `out`.
  std::size_t take_stream(std::size_t max_bytes, std::vector<Taken>& out);

  // Payload bytes handed out of the ring by reference (take_stream's
  // zero-copy transfers); the structural counter bench/tests assert on.
  [[nodiscard]] std::uint64_t taken_ref_bytes() const {
    return taken_ref_bytes_;
  }

  // --- message mode ----------------------------------------------------
  // store/store_ref take the packet's wire word1 (`msg_word`, 0 = stream).
  // A slot whose message completes joins the ready queue: immediately for
  // in_order=false messages, once everything before it was delivered or
  // sealed for in_order=true ones.  Delivery and sealing mark slots
  // `consumed`; the frontier (read_index_) advances over consumed slots, so
  // a sealed hole never blocks later messages.
  [[nodiscard]] bool msg_ready() const { return !ready_.empty(); }
  // Pops the next complete message into `out` (excess bytes are discarded);
  // returns bytes copied, 0 when no message is ready.
  std::size_t read_msg(std::span<std::uint8_t> out);
  // Seals [first, last] (inclusive): the sender gave up on these packets
  // (kMsgDrop), so mark them consumed — discarding any partially-arrived
  // payload of the expired message — and advance past the hole.
  void seal_range(std::int64_t first, std::int64_t last);

  // --- overlapped IO ---------------------------------------------------
  // Registers `buf` as the logical extension of the protocol buffer.  Any
  // already-buffered contiguous data is drained into it immediately;
  // subsequent in-order arrivals are written directly.  Returns bytes
  // filled so far.
  std::size_t register_user_buffer(std::span<std::uint8_t> buf);
  // Bytes delivered into the registered buffer so far.
  [[nodiscard]] std::size_t user_buffer_filled() const { return user_filled_; }
  [[nodiscard]] bool user_buffer_done() const {
    return user_buf_.empty() || user_filled_ == user_buf_.size();
  }
  // Unregisters (e.g. on timeout); returns bytes that were filled.
  std::size_t release_user_buffer();

  // First index not yet received (ACK position).
  [[nodiscard]] std::int64_t contiguous_end() const { return contig_; }
  // One past the largest index the ring can currently accept.
  [[nodiscard]] std::int64_t window_end() const {
    return read_index_ + capacity_;
  }
  // Free slots, in packets, for the flow-control feedback in ACKs.
  [[nodiscard]] std::int32_t avail_packets() const;
  // Contiguous bytes ready for read().
  [[nodiscard]] std::size_t readable_bytes() const;

  // Copy accounting for the Table-3 bytes-per-packet column: payload bytes
  // memcpy'd into ring slot storage (the copy zero-copy mode deletes) and
  // payload bytes memcpy'd into application memory (the one copy that
  // always remains).
  [[nodiscard]] std::uint64_t ring_copied_bytes() const {
    return ring_copied_bytes_;
  }
  [[nodiscard]] std::uint64_t user_copied_bytes() const {
    return user_copied_bytes_;
  }

 private:
  struct Slot {
    std::vector<std::uint8_t> data;     // owned copy (store / fallback)
    const std::uint8_t* ext = nullptr;  // borrowed view into a slab slot
    std::size_t ext_len = 0;
    RecvSlab* slab = nullptr;
    int slab_slot = -1;
    bool filled = false;
    bool consumed = false;        // delivered message slot / sealed hole
    std::uint32_t msg_word = 0;   // wire word1; 0 = stream payload
    [[nodiscard]] const std::uint8_t* bytes() const {
      return ext != nullptr ? ext : data.data();
    }
    [[nodiscard]] std::size_t size() const {
      return ext != nullptr ? ext_len : data.size();
    }
  };
  [[nodiscard]] Slot& slot(std::int64_t index) {
    return slots_[static_cast<std::size_t>(index % capacity_)];
  }
  // Materializes the slot ring on the first stored packet.  An idle socket
  // never allocates it: every read-side path early-outs while contig_ ==
  // read_index_ == 0, so the ring is only touched after a store.
  void ensure_slots() {
    if (slots_.empty()) slots_.resize(static_cast<std::size_t>(capacity_));
  }
  // Common admission + fast-path logic for store/store_ref; returns true if
  // the packet was fully consumed (rejected or delivered straight to the
  // user buffer), with `accepted` telling the two apart.
  bool store_common(std::int64_t index, std::span<const std::uint8_t> payload,
                    std::uint32_t msg_word, bool& accepted);
  // Returns the slot's storage to its owner (slab reference released,
  // vector capacity recycled into spare_) and marks it empty.
  void release_slot(Slot& s);
  // Storage-only release: the slot keeps its filled/consumed/msg_word flags
  // (a delivered or sealed message slot stays "occupied" until the frontier
  // passes it, but its payload bytes are no longer needed).
  void release_payload(Slot& s);
  void advance_contig();
  // Moves contiguous ring data into the user buffer while space remains.
  void drain_into_user_buffer();
  // Checks whether the message containing newly-filled slot `index` is now
  // complete and, if so, queues it for delivery.
  void try_complete_msg(std::int64_t index);
  // Advances read_index_ over consumed slots and promotes in-order messages
  // that reached the frontier.
  void advance_frontier();

  int mss_;
  std::int64_t capacity_;
  std::vector<Slot> slots_;
  std::int64_t read_index_ = 0;   // ring index of the next byte to read
  std::size_t read_offset_ = 0;   // offset within that slot
  std::int64_t contig_ = 0;       // first missing index
  std::int64_t max_index_ = 0;    // one past the largest stored index

  std::span<std::uint8_t> user_buf_{};
  std::size_t user_filled_ = 0;

  // Recycled copy storage for the store() fallback path.  Pooled rather
  // than kept per slot: arrivals land at arbitrary ring positions, so
  // slot-local capacity would re-allocate on every first touch of a new
  // position while the pool makes the copy path allocation-free once warm.
  // Bounded by the window (capacity_ entries), the same high-water
  // retention the per-slot scheme had.
  std::vector<std::vector<std::uint8_t>> spare_;

  std::uint64_t ring_copied_bytes_ = 0;
  std::uint64_t user_copied_bytes_ = 0;
  std::uint64_t taken_ref_bytes_ = 0;

  // Complete messages as inclusive slot-index ranges.  ready_ is delivery
  // (FIFO) order; waiting_ holds complete in_order=true messages parked
  // until the frontier reaches them.
  struct ReadyMsg {
    std::int64_t first;
    std::int64_t last;
  };
  std::deque<ReadyMsg> ready_;
  std::vector<ReadyMsg> waiting_;
};

}  // namespace udtr::udt
