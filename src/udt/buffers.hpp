// Protocol buffers (paper §4.3, §4.6, Fig. 10).
//
// SndBuffer pre-packetizes application bytes into MSS-sized chunks indexed
// by an absolute packet index (the socket maps sequence numbers to indexes),
// so (re)transmission is a direct lookup.
//
// RcvBuffer is a ring of packet slots addressed by absolute index.  Because
// the slot of an arrival is computed from its sequence number, out-of-order
// data lands directly at its destination offset — the "speculation of next
// packet" technique costs nothing here beyond the ring addressing.  The
// buffer also supports *user-buffer insertion* (overlapped IO): a reader may
// register its own buffer as a logical extension of the protocol buffer, and
// in-order arrivals are then copied directly into application memory,
// skipping the protocol-buffer staging copy.
//
// Both classes are plain single-threaded data structures; the socket core
// provides locking.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

namespace udtr::udt {

class SndBuffer {
 public:
  // `capacity_bytes` bounds buffered-but-unacknowledged application data.
  SndBuffer(int mss_bytes, std::size_t capacity_bytes);

  // Appends application data, splitting it into <= MSS chunks.  Returns the
  // number of bytes accepted (0 when full); never splits across add() calls.
  std::size_t add(std::span<const std::uint8_t> data);

  // Overlapped-send path (§4.7): registers the caller's memory as chunks
  // WITHOUT copying.  The caller must keep `data` alive until every chunk is
  // acknowledged (the socket's send_overlapped blocks until then).
  std::size_t add_borrowed(std::span<const std::uint8_t> data);

  // Chunk for the given absolute packet index; nullopt if out of range.
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> chunk(
      std::int64_t index) const;

  // Releases every chunk before `index` (cumulative acknowledgment).
  void ack_up_to(std::int64_t index);

  [[nodiscard]] std::int64_t first_index() const { return base_index_; }
  [[nodiscard]] std::int64_t end_index() const {
    return base_index_ + static_cast<std::int64_t>(chunks_.size());
  }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_.size(); }
  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] std::size_t free_bytes() const {
    return capacity_bytes_ - bytes_;
  }

 private:
  // A chunk either owns its bytes (copied in by add) or views caller memory
  // (add_borrowed).
  struct Chunk {
    std::vector<std::uint8_t> owned;
    std::span<const std::uint8_t> view;
    [[nodiscard]] std::span<const std::uint8_t> bytes() const {
      return owned.empty() ? view
                           : std::span<const std::uint8_t>{owned.data(),
                                                           owned.size()};
    }
  };

  int mss_;
  std::size_t capacity_bytes_;
  std::int64_t base_index_ = 0;  // index of chunks_.front()
  std::deque<Chunk> chunks_;
  std::size_t bytes_ = 0;
};

class RcvBuffer {
 public:
  RcvBuffer(int mss_bytes, std::int32_t capacity_pkts);

  // Stores the payload of packet `index`.  Returns false if the index falls
  // outside the receivable window (behind the read cursor or beyond the
  // ring) or is a duplicate.  In-order data destined for a registered user
  // buffer bypasses the ring entirely.
  bool store(std::int64_t index, std::span<const std::uint8_t> payload);

  // Copies contiguous received data into `out`; returns bytes copied.
  std::size_t read(std::span<std::uint8_t> out);

  // --- overlapped IO ---------------------------------------------------
  // Registers `buf` as the logical extension of the protocol buffer.  Any
  // already-buffered contiguous data is drained into it immediately;
  // subsequent in-order arrivals are written directly.  Returns bytes
  // filled so far.
  std::size_t register_user_buffer(std::span<std::uint8_t> buf);
  // Bytes delivered into the registered buffer so far.
  [[nodiscard]] std::size_t user_buffer_filled() const { return user_filled_; }
  [[nodiscard]] bool user_buffer_done() const {
    return user_buf_.empty() || user_filled_ == user_buf_.size();
  }
  // Unregisters (e.g. on timeout); returns bytes that were filled.
  std::size_t release_user_buffer();

  // First index not yet received (ACK position).
  [[nodiscard]] std::int64_t contiguous_end() const { return contig_; }
  // One past the largest index the ring can currently accept.
  [[nodiscard]] std::int64_t window_end() const {
    return read_index_ + capacity_;
  }
  // Free slots, in packets, for the flow-control feedback in ACKs.
  [[nodiscard]] std::int32_t avail_packets() const;
  // Contiguous bytes ready for read().
  [[nodiscard]] std::size_t readable_bytes() const;

 private:
  struct Slot {
    std::vector<std::uint8_t> data;
    bool filled = false;
  };
  [[nodiscard]] Slot& slot(std::int64_t index) {
    return slots_[static_cast<std::size_t>(index % capacity_)];
  }
  void advance_contig();
  // Moves contiguous ring data into the user buffer while space remains.
  void drain_into_user_buffer();

  int mss_;
  std::int64_t capacity_;
  std::vector<Slot> slots_;
  std::int64_t read_index_ = 0;   // ring index of the next byte to read
  std::size_t read_offset_ = 0;   // offset within that slot
  std::int64_t contig_ = 0;       // first missing index
  std::int64_t max_index_ = 0;    // one past the largest stored index

  std::span<std::uint8_t> user_buf_{};
  std::size_t user_filled_ = 0;
};

}  // namespace udtr::udt
