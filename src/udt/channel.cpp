#include "udt/channel.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace udtr::udt {

sockaddr_in Endpoint::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

std::optional<Endpoint> Endpoint::resolve(const std::string& host,
                                          std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return std::nullopt;
  }
  const auto* sa = reinterpret_cast<const sockaddr_in*>(res->ai_addr);
  Endpoint ep{ntohl(sa->sin_addr.s_addr), port};
  freeaddrinfo(res);
  return ep;
}

UdpChannel::~UdpChannel() { close(); }

UdpChannel::UdpChannel(UdpChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(other.local_port_),
      faults_(std::move(other.faults_)),
      sent_(other.sent_) {}

UdpChannel& UdpChannel::operator=(UdpChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = other.local_port_;
    faults_ = std::move(other.faults_);
    sent_ = other.sent_;
  }
  return *this;
}

bool UdpChannel::open(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    close();
    return false;
  }
  local_port_ = ntohs(sa.sin_port);
  return true;
}

void UdpChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    local_port_ = 0;
  }
}

bool UdpChannel::set_recv_timeout(std::chrono::microseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1000000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool UdpChannel::set_buffer_sizes(int snd_bytes, int rcv_bytes) {
  const bool a = ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &snd_bytes,
                              sizeof snd_bytes) == 0;
  const bool b = ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv_bytes,
                              sizeof rcv_bytes) == 0;
  return a && b;
}

void UdpChannel::set_fault_injector(std::shared_ptr<FaultInjector> faults) {
  faults_ = std::move(faults);
}

std::uint64_t UdpChannel::datagrams_dropped() const {
  if (!faults_) return 0;
  const FaultStats s = faults_->stats(FaultDir::kSend);
  return s.dropped + s.outage_dropped;
}

std::int64_t UdpChannel::send_to(const Endpoint& dst,
                                 std::span<const std::uint8_t> data) {
  ++sent_;
  const sockaddr_in sa = dst.to_sockaddr();
  if (faults_) {
    faults_->on_send(data, [&](std::span<const std::uint8_t> d) {
      ::sendto(fd_, d.data(), d.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    });
    return static_cast<std::int64_t>(data.size());
  }
  return ::sendto(fd_, data.data(), data.size(), 0,
                  reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
}

RecvResult UdpChannel::recv_from(Endpoint& src, std::span<std::uint8_t> buf) {
  if (faults_) {
    if (auto owed = faults_->pop_ready_recv()) {
      const std::size_t n = std::min(buf.size(), owed->bytes.size());
      std::memcpy(buf.data(), owed->bytes.data(), n);
      src = Endpoint{owed->src_ip, owed->src_port};
      return {RecvStatus::kDatagram, n};
    }
  }
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return {RecvStatus::kTimeout, 0};
    }
    return {RecvStatus::kError, 0};
  }
  src = Endpoint::from_sockaddr(sa);
  if (faults_) {
    auto delivered = faults_->filter_recv(
        {buf.data(), static_cast<std::size_t>(n)}, src.ip_host_order,
        src.port);
    if (!delivered) return {RecvStatus::kTimeout, 0};  // swallowed by the net
    const std::size_t m = std::min(buf.size(), delivered->size());
    std::memcpy(buf.data(), delivered->data(), m);
    return {RecvStatus::kDatagram, m};
  }
  return {RecvStatus::kDatagram, static_cast<std::size_t>(n)};
}

}  // namespace udtr::udt
