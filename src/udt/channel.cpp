#include "udt/channel.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

// sendmmsg/recvmmsg appeared in Linux 3.0 / glibc 2.14; everything else
// takes the portable per-datagram fallback inside send_batch/recv_batch.
#if defined(__linux__)
#define UDTR_HAVE_MMSG 1
#else
#define UDTR_HAVE_MMSG 0
#endif

namespace udtr::udt {

sockaddr_in Endpoint::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

std::optional<Endpoint> Endpoint::resolve(const std::string& host,
                                          std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return std::nullopt;
  }
  const auto* sa = reinterpret_cast<const sockaddr_in*>(res->ai_addr);
  Endpoint ep{ntohl(sa->sin_addr.s_addr), port};
  freeaddrinfo(res);
  return ep;
}

UdpChannel::~UdpChannel() { close(); }

UdpChannel::UdpChannel(UdpChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(other.local_port_),
      faults_(std::move(other.faults_)),
      sent_(other.sent_.load()),
      send_calls_(other.send_calls_.load()),
      recv_calls_(other.recv_calls_.load()) {}

UdpChannel& UdpChannel::operator=(UdpChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = other.local_port_;
    faults_ = std::move(other.faults_);
    sent_ = other.sent_.load();
    send_calls_ = other.send_calls_.load();
    recv_calls_ = other.recv_calls_.load();
  }
  return *this;
}

bool UdpChannel::open(std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    close();
    return false;
  }
  local_port_ = ntohs(sa.sin_port);
  return true;
}

void UdpChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    local_port_ = 0;
  }
}

bool UdpChannel::set_recv_timeout(std::chrono::microseconds timeout) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1000000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool UdpChannel::set_buffer_sizes(int snd_bytes, int rcv_bytes) {
  const bool a = ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &snd_bytes,
                              sizeof snd_bytes) == 0;
  const bool b = ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv_bytes,
                              sizeof rcv_bytes) == 0;
  return a && b;
}

void UdpChannel::set_fault_injector(std::shared_ptr<FaultInjector> faults) {
  faults_ = std::move(faults);
}

std::uint64_t UdpChannel::datagrams_dropped() const {
  if (!faults_) return 0;
  const FaultStats s = faults_->stats(FaultDir::kSend);
  return s.dropped + s.outage_dropped;
}

std::int64_t UdpChannel::send_to(const Endpoint& dst,
                                 std::span<const std::uint8_t> data) {
  ++sent_;
  const sockaddr_in sa = dst.to_sockaddr();
  if (faults_) {
    faults_->on_send(data, [&](std::span<const std::uint8_t> d) {
      ++send_calls_;
      ::sendto(fd_, d.data(), d.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    });
    return static_cast<std::int64_t>(data.size());
  }
  ++send_calls_;
  return ::sendto(fd_, data.data(), data.size(), 0,
                  reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
}

std::size_t UdpChannel::send_batch(
    const Endpoint& dst, std::span<const std::span<const std::uint8_t>> data) {
  if (data.empty()) return 0;
  sent_ += data.size();
  const sockaddr_in sa = dst.to_sockaddr();

  // The wire set defaults to the caller's datagrams; the injector may drop,
  // mutate or multiply entries (mutations are owned by `mutated` so the
  // spans stay alive until the syscall).
  std::vector<std::span<const std::uint8_t>> wire;
  std::vector<std::vector<std::uint8_t>> mutated;
  wire.reserve(data.size());
  if (faults_) {
    mutated.reserve(data.size());
    for (const auto& d : data) {
      faults_->on_send(d, [&](std::span<const std::uint8_t> out) {
        if (out.data() == d.data() && out.size() == d.size()) {
          wire.push_back(d);
        } else {
          mutated.emplace_back(out.begin(), out.end());
          wire.emplace_back(mutated.back().data(), mutated.back().size());
        }
      });
    }
    if (wire.empty()) return data.size();  // all swallowed: "left the host"
  } else {
    wire.assign(data.begin(), data.end());
  }

#if UDTR_HAVE_MMSG
  std::size_t done = 0;
  while (done < wire.size()) {
    constexpr std::size_t kChunk = 64;
    const std::size_t n = std::min(kChunk, wire.size() - done);
    std::array<mmsghdr, kChunk> msgs{};
    std::array<iovec, kChunk> iovs{};
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = const_cast<std::uint8_t*>(wire[done + i].data());
      iovs[i].iov_len = wire[done + i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&sa);
      msgs[i].msg_hdr.msg_namelen = sizeof sa;
    }
    ++send_calls_;
    const int sent = ::sendmmsg(fd_, msgs.data(), static_cast<unsigned>(n), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      break;  // e.g. closed mid-send; partial batch already accounted
    }
    done += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < n) continue;  // retry the remainder
  }
#else
  for (const auto& d : wire) {
    ++send_calls_;
    ::sendto(fd_, d.data(), d.size(), 0,
             reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  }
#endif
  return data.size();
}

// Accepts the raw datagram sitting in `raw`'s buffer (from slot `from`)
// into slot `slots[filled]`, running it through the recv-direction fault
// filter first.  Returns true if the datagram survived (and `filled` should
// advance).  `from == filled` is the common no-fault case and costs nothing.
bool UdpChannel::accept_raw(std::span<RecvSlot> slots, std::size_t filled,
                            std::size_t from, std::size_t bytes,
                            const Endpoint& src) {
  if (!faults_) {
    slots[filled].bytes = bytes;
    slots[filled].src = src;
    return true;
  }
  auto delivered = faults_->filter_recv({slots[from].buf.data(), bytes},
                                        src.ip_host_order, src.port);
  if (!delivered) return false;  // swallowed by the net
  RecvSlot& dst = slots[filled];
  dst.bytes = std::min(dst.buf.size(), delivered->size());
  std::memcpy(dst.buf.data(), delivered->data(), dst.bytes);
  dst.src = src;
  return true;
}

UdpChannel::RecvBatchResult UdpChannel::recv_batch(std::span<RecvSlot> slots) {
  if (slots.empty()) return {RecvStatus::kTimeout, 0};

  // Datagrams the injector owes us (reorder releases, duplicates) come
  // first; they were "on the wire" before anything still in the kernel.
  std::size_t filled = 0;
  if (faults_) {
    while (filled < slots.size()) {
      auto owed = faults_->pop_ready_recv();
      if (!owed) break;
      RecvSlot& s = slots[filled];
      s.bytes = std::min(s.buf.size(), owed->bytes.size());
      std::memcpy(s.buf.data(), owed->bytes.data(), s.bytes);
      s.src = Endpoint{owed->src_ip, owed->src_port};
      ++filled;
    }
  }
  const bool have_owed = filled > 0;
  const std::size_t base = filled;

#if UDTR_HAVE_MMSG
  if (base < slots.size()) {
    constexpr std::size_t kChunk = 64;
    const std::size_t n = std::min(kChunk, slots.size() - base);
    std::array<mmsghdr, kChunk> msgs{};
    std::array<iovec, kChunk> iovs{};
    std::array<sockaddr_in, kChunk> addrs{};
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = slots[base + i].buf.data();
      iovs[i].iov_len = slots[base + i].buf.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
    }
    // One syscall per wakeup: block (SO_RCVTIMEO-bounded, §4.8) until at
    // least one datagram arrives, then take everything already queued.
    // With owed datagrams in hand we must not block again — only top up.
    ++recv_calls_;
    const int got = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(n),
                               have_owed ? MSG_DONTWAIT : MSG_WAITFORONE,
                               nullptr);
    if (got < 0 && !have_owed) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return {RecvStatus::kTimeout, 0};
      }
      return {RecvStatus::kError, 0};
    }
    for (int i = 0; i < std::max(got, 0); ++i) {
      if (accept_raw(slots, filled, base + static_cast<std::size_t>(i),
                     msgs[i].msg_len, Endpoint::from_sockaddr(addrs[i]))) {
        ++filled;
      }
    }
  }
#else
  if (!have_owed) {
    // Portable path: one blocking bounded receive, then drain non-blocking.
    RecvSlot& first = slots[0];
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    ++recv_calls_;
    const ssize_t n = ::recvfrom(fd_, first.buf.data(), first.buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return {RecvStatus::kTimeout, 0};
      }
      return {RecvStatus::kError, 0};
    }
    if (accept_raw(slots, filled, 0, static_cast<std::size_t>(n),
                   Endpoint::from_sockaddr(sa))) {
      ++filled;
    }
  }
  while (filled < slots.size()) {
    RecvSlot& s = slots[filled];
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    ++recv_calls_;
    const ssize_t n = ::recvfrom(fd_, s.buf.data(), s.buf.size(),
                                 MSG_DONTWAIT,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) break;
    if (accept_raw(slots, filled, filled, static_cast<std::size_t>(n),
                   Endpoint::from_sockaddr(sa))) {
      ++filled;
    }
  }
#endif
  // Traffic arrived even if the injector swallowed all of it: report a
  // datagram wakeup (possibly with count 0), not a timeout, so the caller's
  // timer pass runs with fresh timing either way.
  return {RecvStatus::kDatagram, filled};
}

RecvResult UdpChannel::recv_from(Endpoint& src, std::span<std::uint8_t> buf) {
  if (faults_) {
    if (auto owed = faults_->pop_ready_recv()) {
      const std::size_t n = std::min(buf.size(), owed->bytes.size());
      std::memcpy(buf.data(), owed->bytes.data(), n);
      src = Endpoint{owed->src_ip, owed->src_port};
      return {RecvStatus::kDatagram, n};
    }
  }
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  ++recv_calls_;
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return {RecvStatus::kTimeout, 0};
    }
    return {RecvStatus::kError, 0};
  }
  src = Endpoint::from_sockaddr(sa);
  if (faults_) {
    auto delivered = faults_->filter_recv(
        {buf.data(), static_cast<std::size_t>(n)}, src.ip_host_order,
        src.port);
    if (!delivered) return {RecvStatus::kTimeout, 0};  // swallowed by the net
    const std::size_t m = std::min(buf.size(), delivered->size());
    std::memcpy(buf.data(), delivered->data(), m);
    return {RecvStatus::kDatagram, m};
  }
  return {RecvStatus::kDatagram, static_cast<std::size_t>(n)};
}

}  // namespace udtr::udt
