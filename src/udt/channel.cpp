#include "udt/channel.hpp"

#include "udt/channel_uring.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/udp.h>
#include <sys/socket.h>
#include <unistd.h>

#if defined(__linux__)
#include <linux/filter.h>
#endif

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

// sendmmsg/recvmmsg appeared in Linux 3.0 / glibc 2.14; everything else
// takes the portable per-datagram fallback inside send_batch/recv_batch.
#if defined(__linux__)
#define UDTR_HAVE_MMSG 1
#else
#define UDTR_HAVE_MMSG 0
#endif

// UDP_SEGMENT (GSO, Linux 4.18) / UDP_GRO (Linux 5.0).  Where the headers
// lack them the offload paths compile out and send_gather degrades to the
// two-iovec sendmmsg path, recv_batch to plain datagrams.
#if defined(__linux__) && defined(UDP_SEGMENT) && defined(UDP_GRO)
#define UDTR_HAVE_UDP_OFFLOAD 1
#else
#define UDTR_HAVE_UDP_OFFLOAD 0
#endif

namespace udtr::udt {

namespace {
// Kernel bounds on one GSO send: 64 segments, one 16-bit UDP payload.
constexpr std::size_t kGsoMaxSegments = 64;
constexpr std::size_t kGsoMaxBytes = 65507;
}  // namespace

// Longest GSO run starting at `i`: consecutive datagrams of identical wire
// size (one trailing smaller one may close the run — the kernel emits the
// short tail as the final segment), bounded by the segment and byte caps.
// A probe head (`keep_with_next`) is never left as the last datagram of a
// run while its successor exists: the pair must share one kernel traversal
// for the §3.4 packet-pair spacing to mean anything, so the run shrinks by
// one and the pair opens the next send instead.
std::size_t gso_run_length(std::span<const UdpChannel::TxDatagram> d,
                           std::size_t i) {
  const std::size_t seg = d[i].head.size() + d[i].body.size();
  if (seg == 0 || seg > kGsoMaxBytes) return 1;
  const std::size_t cap =
      std::min(kGsoMaxSegments, kGsoMaxBytes / seg);
  std::size_t j = i + 1;
  while (j < d.size() && j - i < cap) {
    const std::size_t w = d[j].head.size() + d[j].body.size();
    if (w == seg) {
      ++j;
      continue;
    }
    if (w < seg && w > 0) ++j;  // short tail closes the run
    break;
  }
  if (j < d.size() && j > i + 1 && d[j - 1].keep_with_next) --j;
  return j - i;
}

sockaddr_in Endpoint::to_sockaddr() const {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  sa.sin_port = htons(port);
  return sa;
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& sa) {
  return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

std::optional<Endpoint> Endpoint::resolve(const std::string& host,
                                          std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_DGRAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    return std::nullopt;
  }
  const auto* sa = reinterpret_cast<const sockaddr_in*>(res->ai_addr);
  Endpoint ep{ntohl(sa->sin_addr.s_addr), port};
  freeaddrinfo(res);
  return ep;
}

UdpChannel::UdpChannel() = default;

UdpChannel::~UdpChannel() { close(); }

UdpChannel::UdpChannel(UdpChannel&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(other.local_port_),
      faults_(std::move(other.faults_)),
      gro_enabled_(other.gro_enabled_.load()),
      recv_timeout_us_(other.recv_timeout_us_),
      gso_ok_(other.gso_ok_.load()),
      gather_scratch_(std::move(other.gather_scratch_)),
      sent_(other.sent_.load()),
      send_calls_(other.send_calls_.load()),
      recv_calls_(other.recv_calls_.load()),
      gso_sends_(other.gso_sends_.load()) {
  // The engine holds a back-pointer to its channel, so it cannot be moved;
  // backends are selected after channels reach their final address (the
  // multiplexer does this in start()), so dropping it here is safe.
  other.uring_.reset();
}

UdpChannel& UdpChannel::operator=(UdpChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = other.local_port_;
    faults_ = std::move(other.faults_);
    gro_enabled_ = other.gro_enabled_.load();
    recv_timeout_us_ = other.recv_timeout_us_;
    gso_ok_ = other.gso_ok_.load();
    gather_scratch_ = std::move(other.gather_scratch_);
    sent_ = other.sent_.load();
    send_calls_ = other.send_calls_.load();
    recv_calls_ = other.recv_calls_.load();
    gso_sends_ = other.gso_sends_.load();
    other.uring_.reset();
  }
  return *this;
}

bool UdpChannel::open(std::uint16_t port, bool reuse_port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;
  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      close();
      return false;
    }
  }
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    close();
    return false;
  }
  socklen_t len = sizeof sa;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    close();
    return false;
  }
  local_port_ = ntohs(sa.sin_port);
  // UDTR_NO_GSO is the operational kill-switch (and the CI fallback job):
  // with it set every send takes the plain sendmmsg path from the start.
  gso_ok_.store(std::getenv("UDTR_NO_GSO") == nullptr,
                std::memory_order_relaxed);
  gro_enabled_.store(false, std::memory_order_relaxed);
  return true;
}

bool UdpChannel::attach_reuseport_steering(unsigned shards) {
  if (fd_ < 0 || shards < 2) return false;
#if defined(__linux__) && defined(SO_ATTACH_REUSEPORT_CBPF)
  // ld A <- payload[12..15] (big-endian — the UDT destination socket id);
  // A %= shards; ret A.  Loading past the end of a short datagram makes the
  // program return 0, so sub-header noise and raw probes land on shard 0.
  sock_filter code[] = {
      {BPF_LD | BPF_W | BPF_ABS, 0, 0, 12},
      {BPF_ALU | BPF_MOD | BPF_K, 0, 0, shards},
      {BPF_RET | BPF_A, 0, 0, 0},
  };
  sock_fprog prog{};
  prog.len = sizeof code / sizeof code[0];
  prog.filter = code;
  return ::setsockopt(fd_, SOL_SOCKET, SO_ATTACH_REUSEPORT_CBPF, &prog,
                      sizeof prog) == 0;
#else
  return false;
#endif
}

void UdpChannel::close() {
  // The ring (with its in-flight recvmsg SQEs into slab slots) must die
  // before the socket fd it targets.
  uring_.reset();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    local_port_ = 0;
    gro_enabled_.store(false, std::memory_order_relaxed);
  }
}

bool UdpChannel::offload_supported() { return UDTR_HAVE_UDP_OFFLOAD != 0; }

bool UdpChannel::gso_active() const {
  return offload_supported() && gso_ok_.load(std::memory_order_relaxed);
}

bool UdpChannel::enable_gro() {
#if UDTR_HAVE_UDP_OFFLOAD
  if (fd_ < 0 || faults_ != nullptr) return false;
  if (std::getenv("UDTR_NO_GSO") != nullptr) return false;
  const int one = 1;
  if (::setsockopt(fd_, SOL_UDP, UDP_GRO, &one, sizeof one) != 0) {
    return false;
  }
  gro_enabled_.store(true, std::memory_order_relaxed);
  return true;
#else
  return false;
#endif
}

bool UdpChannel::set_recv_timeout(std::chrono::microseconds timeout) {
  recv_timeout_us_ = timeout;  // mirrored for the uring timed CQ wait
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000000);
  tv.tv_usec = static_cast<suseconds_t>(timeout.count() % 1000000);
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool UdpChannel::set_buffer_sizes(int snd_bytes, int rcv_bytes) {
  const bool a = ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &snd_bytes,
                              sizeof snd_bytes) == 0;
  const bool b = ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv_bytes,
                              sizeof rcv_bytes) == 0;
  return a && b;
}

void UdpChannel::set_fault_injector(std::shared_ptr<FaultInjector> faults) {
  faults_ = std::move(faults);
}

std::uint64_t UdpChannel::datagrams_dropped() const {
  if (!faults_) return 0;
  const FaultStats s = faults_->stats(FaultDir::kSend);
  return s.dropped + s.outage_dropped;
}

std::int64_t UdpChannel::send_to(const Endpoint& dst,
                                 std::span<const std::uint8_t> data) {
  ++sent_;
  const sockaddr_in sa = dst.to_sockaddr();
  if (faults_) {
    faults_->on_send(data, [&](std::span<const std::uint8_t> d) {
      ++send_calls_;
      ::sendto(fd_, d.data(), d.size(), 0,
               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    });
    return static_cast<std::int64_t>(data.size());
  }
  ++send_calls_;
  return ::sendto(fd_, data.data(), data.size(), 0,
                  reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
}

std::size_t UdpChannel::send_batch(
    const Endpoint& dst, std::span<const std::span<const std::uint8_t>> data) {
  if (data.empty()) return 0;
  sent_ += data.size();
  const sockaddr_in sa = dst.to_sockaddr();

  // The wire set defaults to the caller's datagrams; the injector may drop,
  // mutate or multiply entries (mutations are owned by `mutated` so the
  // spans stay alive until the syscall).
  std::vector<std::span<const std::uint8_t>> wire;
  std::vector<std::vector<std::uint8_t>> mutated;
  wire.reserve(data.size());
  if (faults_) {
    mutated.reserve(data.size());
    for (const auto& d : data) {
      faults_->on_send(d, [&](std::span<const std::uint8_t> out) {
        if (out.data() == d.data() && out.size() == d.size()) {
          wire.push_back(d);
        } else {
          mutated.emplace_back(out.begin(), out.end());
          wire.emplace_back(mutated.back().data(), mutated.back().size());
        }
      });
    }
    if (wire.empty()) return data.size();  // all swallowed: "left the host"
  } else {
    wire.assign(data.begin(), data.end());
  }

#if UDTR_HAVE_MMSG
  std::size_t done = 0;
  while (done < wire.size()) {
    constexpr std::size_t kChunk = 64;
    const std::size_t n = std::min(kChunk, wire.size() - done);
    std::array<mmsghdr, kChunk> msgs{};
    std::array<iovec, kChunk> iovs{};
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = const_cast<std::uint8_t*>(wire[done + i].data());
      iovs[i].iov_len = wire[done + i].size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&sa);
      msgs[i].msg_hdr.msg_namelen = sizeof sa;
    }
    ++send_calls_;
    const int sent = ::sendmmsg(fd_, msgs.data(), static_cast<unsigned>(n), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      break;  // e.g. closed mid-send; partial batch already accounted
    }
    done += static_cast<std::size_t>(sent);
    if (static_cast<std::size_t>(sent) < n) continue;  // retry the remainder
  }
#else
  for (const auto& d : wire) {
    ++send_calls_;
    ::sendto(fd_, d.data(), d.size(), 0,
             reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
  }
#endif
  return data.size();
}

bool UdpChannel::send_gso_run(const sockaddr_in& sa,
                              std::span<const TxDatagram> run,
                              std::size_t seg_bytes) {
#if UDTR_HAVE_UDP_OFFLOAD
  std::array<iovec, 2 * kGsoMaxSegments> iovs;
  std::size_t niov = 0;
  for (const auto& d : run) {
    iovs[niov++] = {const_cast<std::uint8_t*>(d.head.data()), d.head.size()};
    if (!d.body.empty()) {
      iovs[niov++] = {const_cast<std::uint8_t*>(d.body.data()),
                      d.body.size()};
    }
  }
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(std::uint16_t))] = {};
  msghdr msg{};
  msg.msg_name = const_cast<sockaddr_in*>(&sa);
  msg.msg_namelen = sizeof sa;
  msg.msg_iov = iovs.data();
  msg.msg_iovlen = niov;
  msg.msg_control = control;
  msg.msg_controllen = sizeof control;
  cmsghdr* cm = CMSG_FIRSTHDR(&msg);
  cm->cmsg_level = SOL_UDP;
  cm->cmsg_type = UDP_SEGMENT;
  cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
  const auto seg16 = static_cast<std::uint16_t>(seg_bytes);
  std::memcpy(CMSG_DATA(cm), &seg16, sizeof seg16);
  for (;;) {
    ++send_calls_;
    if (::sendmsg(fd_, &msg, 0) >= 0) {
      ++gso_sends_;
      return true;
    }
    if (errno == EINTR) continue;
    // Transient pressure is ordinary UDP loss, not an offload problem.
    if (errno == ENOBUFS || errno == EAGAIN || errno == EWOULDBLOCK) {
      return true;
    }
    return false;  // EINVAL / EOPNOTSUPP ...: the kernel refused UDP_SEGMENT
  }
#else
  (void)sa;
  (void)run;
  (void)seg_bytes;
  return false;
#endif
}

void UdpChannel::send_plain(const sockaddr_in& sa,
                            std::span<const TxDatagram> dgrams) {
#if UDTR_HAVE_MMSG
  std::size_t done = 0;
  while (done < dgrams.size()) {
    constexpr std::size_t kChunk = 64;
    const std::size_t n = std::min(kChunk, dgrams.size() - done);
    std::array<mmsghdr, kChunk> msgs{};
    std::array<iovec, 2 * kChunk> iovs{};
    for (std::size_t i = 0; i < n; ++i) {
      const TxDatagram& d = dgrams[done + i];
      iovec* iv = &iovs[2 * i];
      iv[0] = {const_cast<std::uint8_t*>(d.head.data()), d.head.size()};
      std::size_t niov = 1;
      if (!d.body.empty()) {
        iv[1] = {const_cast<std::uint8_t*>(d.body.data()), d.body.size()};
        niov = 2;
      }
      msgs[i].msg_hdr.msg_iov = iv;
      msgs[i].msg_hdr.msg_iovlen = niov;
      msgs[i].msg_hdr.msg_name = const_cast<sockaddr_in*>(&sa);
      msgs[i].msg_hdr.msg_namelen = sizeof sa;
    }
    ++send_calls_;
    const int sent = ::sendmmsg(fd_, msgs.data(), static_cast<unsigned>(n), 0);
    if (sent < 0) {
      if (errno == EINTR) continue;
      break;
    }
    done += static_cast<std::size_t>(sent);
  }
#else
  for (const auto& d : dgrams) {
    std::array<iovec, 2> iovs{};
    iovs[0] = {const_cast<std::uint8_t*>(d.head.data()), d.head.size()};
    std::size_t niov = 1;
    if (!d.body.empty()) {
      iovs[1] = {const_cast<std::uint8_t*>(d.body.data()), d.body.size()};
      niov = 2;
    }
    msghdr msg{};
    msg.msg_name = const_cast<sockaddr_in*>(&sa);
    msg.msg_namelen = sizeof sa;
    msg.msg_iov = iovs.data();
    msg.msg_iovlen = niov;
    ++send_calls_;
    ::sendmsg(fd_, &msg, 0);
  }
#endif
}

std::size_t UdpChannel::send_gather(const Endpoint& dst,
                                    std::span<const TxDatagram> dgrams,
                                    bool allow_gso) {
  if (dgrams.empty()) return 0;
  sent_ += dgrams.size();
  const sockaddr_in sa = dst.to_sockaddr();

  if (faults_) {
    // The injector must see each logical datagram whole and individually
    // (pre-GSO), so the header/payload pair is linearized into reused
    // scratch — the one staging copy the fault path keeps, paid only when
    // faults are configured.
    std::lock_guard lk{gather_mu_};
    for (const auto& d : dgrams) {
      gather_scratch_.assign(d.head.begin(), d.head.end());
      gather_scratch_.insert(gather_scratch_.end(), d.body.begin(),
                             d.body.end());
      faults_->on_send(gather_scratch_,
                       [&](std::span<const std::uint8_t> out) {
                         ++send_calls_;
                         ::sendto(fd_, out.data(), out.size(), 0,
                                  reinterpret_cast<const sockaddr*>(&sa),
                                  sizeof sa);
                       });
    }
    return dgrams.size();
  }

  const bool use_gso = allow_gso && gso_active();
  std::size_t i = 0;
  std::size_t plain_start = 0;  // pending non-run datagrams [plain_start, i)
  while (i < dgrams.size()) {
    const std::size_t run =
        use_gso ? gso_run_length(dgrams, i) : std::size_t{1};
    if (run < 2) {
      ++i;
      continue;
    }
    // Flush the singles that precede the run so wire order is preserved.
    if (plain_start < i) {
      send_plain(sa, dgrams.subspan(plain_start, i - plain_start));
    }
    const auto seg = dgrams[i].head.size() + dgrams[i].body.size();
    if (!send_gso_run(sa, dgrams.subspan(i, run), seg)) {
      // Kernel refused: latch GSO off for this socket and resend the run
      // plainly.  Nothing was transmitted by the failed call.
      gso_ok_.store(false, std::memory_order_relaxed);
      send_plain(sa, dgrams.subspan(i, run));
    }
    i += run;
    plain_start = i;
  }
  if (plain_start < dgrams.size()) {
    send_plain(sa, dgrams.subspan(plain_start));
  }
  return dgrams.size();
}

// Accepts the raw datagram sitting in `raw`'s buffer (from slot `from`)
// into slot `slots[filled]`, running it through the recv-direction fault
// filter first.  Returns true if the datagram survived (and `filled` should
// advance).  `from == filled` is the common no-fault case and costs nothing.
bool UdpChannel::accept_raw(std::span<RecvSlot> slots, std::size_t filled,
                            std::size_t from, std::size_t bytes,
                            const Endpoint& src) {
  if (!faults_) {
    slots[filled].bytes = bytes;
    slots[filled].src = src;
    return true;
  }
  // The filter mutates the receive buffer in place; nothing is copied
  // unless earlier batch entries were swallowed and the survivor has to be
  // compacted forward into the next unfilled slot.
  auto delivered = faults_->filter_recv({slots[from].buf.data(), bytes},
                                        src.ip_host_order, src.port);
  if (!delivered) return false;  // swallowed by the net
  RecvSlot& dst = slots[filled];
  dst.bytes = std::min(dst.buf.size(), *delivered);
  if (from != filled) {
    std::memcpy(dst.buf.data(), slots[from].buf.data(), dst.bytes);
  }
  dst.src = src;
  return true;
}

UdpChannel::RecvBatchResult UdpChannel::recv_batch(std::span<RecvSlot> slots) {
  if (slots.empty()) return {RecvStatus::kTimeout, 0};

  // Datagrams the injector owes us (reorder releases, duplicates) come
  // first; they were "on the wire" before anything still in the kernel.
  std::size_t filled = 0;
  if (faults_) {
    while (filled < slots.size()) {
      auto owed = faults_->pop_ready_recv();
      if (!owed) break;
      RecvSlot& s = slots[filled];
      s.bytes = std::min(s.buf.size(), owed->bytes.size());
      std::memcpy(s.buf.data(), owed->bytes.data(), s.bytes);
      s.src = Endpoint{owed->src_ip, owed->src_port};
      s.gro_size = 0;
      ++filled;
    }
  }
  const bool have_owed = filled > 0;
  const std::size_t base = filled;

#if UDTR_HAVE_MMSG
  if (base < slots.size()) {
    constexpr std::size_t kChunk = 64;
    const std::size_t n = std::min(kChunk, slots.size() - base);
    std::array<mmsghdr, kChunk> msgs{};
    std::array<iovec, kChunk> iovs{};
    std::array<sockaddr_in, kChunk> addrs{};
#if UDTR_HAVE_UDP_OFFLOAD
    // Per-message control space for the UDP_GRO segment-size cmsg.
    std::array<std::array<char, CMSG_SPACE(sizeof(int))>, kChunk> ctrls;
#endif
    for (std::size_t i = 0; i < n; ++i) {
      iovs[i].iov_base = slots[base + i].buf.data();
      iovs[i].iov_len = slots[base + i].buf.size();
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_name = &addrs[i];
      msgs[i].msg_hdr.msg_namelen = sizeof(sockaddr_in);
#if UDTR_HAVE_UDP_OFFLOAD
      if (gro_enabled_) {
        msgs[i].msg_hdr.msg_control = ctrls[i].data();
        msgs[i].msg_hdr.msg_controllen = ctrls[i].size();
      }
#endif
    }
    // One syscall per wakeup: block (SO_RCVTIMEO-bounded, §4.8) until at
    // least one datagram arrives, then take everything already queued.
    // With owed datagrams in hand we must not block again — only top up.
    ++recv_calls_;
    const int got = ::recvmmsg(fd_, msgs.data(), static_cast<unsigned>(n),
                               have_owed ? MSG_DONTWAIT : MSG_WAITFORONE,
                               nullptr);
    if (got < 0 && !have_owed) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return {RecvStatus::kTimeout, 0};
      }
      return {RecvStatus::kError, 0};
    }
    for (int i = 0; i < std::max(got, 0); ++i) {
      std::size_t gro = 0;
#if UDTR_HAVE_UDP_OFFLOAD
      if (gro_enabled_) {
        for (cmsghdr* cm = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cm != nullptr;
             cm = CMSG_NXTHDR(&msgs[i].msg_hdr, cm)) {
          if (cm->cmsg_level == SOL_UDP && cm->cmsg_type == UDP_GRO) {
            int v = 0;
            std::memcpy(&v, CMSG_DATA(cm), sizeof v);
            // The kernel reports the segment grid even for a lone datagram;
            // a value covering the whole payload means "not coalesced".
            if (v > 0 && static_cast<std::size_t>(v) < msgs[i].msg_len) {
              gro = static_cast<std::size_t>(v);
            }
          }
        }
      }
#endif
      if (accept_raw(slots, filled, base + static_cast<std::size_t>(i),
                     msgs[i].msg_len, Endpoint::from_sockaddr(addrs[i]))) {
        slots[filled].gro_size = faults_ ? 0 : gro;
        ++filled;
      }
    }
  }
#else
  if (!have_owed) {
    // Portable path: one blocking bounded receive, then drain non-blocking.
    RecvSlot& first = slots[0];
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    ++recv_calls_;
    const ssize_t n = ::recvfrom(fd_, first.buf.data(), first.buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return {RecvStatus::kTimeout, 0};
      }
      return {RecvStatus::kError, 0};
    }
    if (accept_raw(slots, filled, 0, static_cast<std::size_t>(n),
                   Endpoint::from_sockaddr(sa))) {
      slots[filled].gro_size = 0;
      ++filled;
    }
  }
  while (filled < slots.size()) {
    RecvSlot& s = slots[filled];
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    ++recv_calls_;
    const ssize_t n = ::recvfrom(fd_, s.buf.data(), s.buf.size(),
                                 MSG_DONTWAIT,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) break;
    if (accept_raw(slots, filled, filled, static_cast<std::size_t>(n),
                   Endpoint::from_sockaddr(sa))) {
      slots[filled].gro_size = 0;
      ++filled;
    }
  }
#endif
  // Traffic arrived even if the injector swallowed all of it: report a
  // datagram wakeup (possibly with count 0), not a timeout, so the caller's
  // timer pass runs with fresh timing either way.
  return {RecvStatus::kDatagram, filled};
}

RecvResult UdpChannel::recv_from(Endpoint& src, std::span<std::uint8_t> buf) {
  if (faults_) {
    if (auto owed = faults_->pop_ready_recv()) {
      const std::size_t n = std::min(buf.size(), owed->bytes.size());
      std::memcpy(buf.data(), owed->bytes.data(), n);
      src = Endpoint{owed->src_ip, owed->src_port};
      return {RecvStatus::kDatagram, n};
    }
  }
  sockaddr_in sa{};
  socklen_t len = sizeof sa;
  ++recv_calls_;
  const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                               reinterpret_cast<sockaddr*>(&sa), &len);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return {RecvStatus::kTimeout, 0};
    }
    return {RecvStatus::kError, 0};
  }
  src = Endpoint::from_sockaddr(sa);
  if (faults_) {
    // In-place filtering: the delivered bytes are already where they belong.
    auto delivered = faults_->filter_recv(
        {buf.data(), static_cast<std::size_t>(n)}, src.ip_host_order,
        src.port);
    if (!delivered) return {RecvStatus::kTimeout, 0};  // swallowed by the net
    return {RecvStatus::kDatagram, std::min(buf.size(), *delivered)};
  }
  return {RecvStatus::kDatagram, static_cast<std::size_t>(n)};
}

UdpChannel::RxState::~RxState() {
  if (slab) {
    for (int id : slab_ids) {
      if (id >= 0) slab->release(id);
    }
  }
}

UdpChannel::RecvBatchResult UdpChannel::rx_round(RxState& st, RxSinkFn sink,
                                                 void* ctx) {
  if (uring_) return uring_->rx_round(st, sink, ctx);
  return rx_round_mmsg(st, sink, ctx);
}

UdpChannel::RecvBatchResult UdpChannel::rx_round_mmsg(RxState& st,
                                                      RxSinkFn sink,
                                                      void* ctx) {
  const std::size_t batch = std::max<std::size_t>(st.batch, 1);
  if (st.slots.size() != batch) {
    st.slots.resize(batch);
    st.slab_ids.assign(batch, -1);
  }
  // Arm every slot: a refcounted slab slot when one is free (zero-copy
  // hand-off to the dispatch layer), the private arena otherwise.  Slots
  // stay armed across rounds; only delivered ones are released and re-armed.
  for (std::size_t i = 0; i < batch; ++i) {
    if (st.slab_ids[i] < 0 && st.slab) st.slab_ids[i] = st.slab->acquire();
    if (st.slab_ids[i] >= 0) {
      st.slots[i].buf = {st.slab->data(st.slab_ids[i]),
                         st.slab->slot_bytes()};
    } else {
      if (st.arena.size() < batch * st.slot_bytes) {
        st.arena.resize(batch * st.slot_bytes);
      }
      st.slots[i].buf = {st.arena.data() + i * st.slot_bytes, st.slot_bytes};
    }
    st.slots[i].bytes = 0;
    st.slots[i].gro_size = 0;
  }
  const RecvBatchResult res = recv_batch({st.slots.data(), batch});
  for (std::size_t i = 0; i < res.count; ++i) {
    const RecvSlot& s = st.slots[i];
    RxDelivery d;
    d.data = {s.buf.data(), s.bytes};
    d.src = s.src;
    d.gro_size = s.gro_size;
    d.slab = st.slab_ids[i] >= 0 ? st.slab.get() : nullptr;
    d.slab_slot = st.slab_ids[i];
    sink(ctx, d);
    if (st.slab_ids[i] >= 0) {
      st.slab->release(st.slab_ids[i]);  // sink add_ref'd if it kept the slot
      st.slab_ids[i] = -1;
    }
  }
  return res;
}

bool UdpChannel::send_gather_async(const Endpoint& dst,
                                   std::span<const TxDatagram> dgrams,
                                   bool allow_gso, TxDoneFn done, void* ctx,
                                   std::uint64_t token) {
  // Faults take the synchronous per-datagram injector path in send_gather.
  if (!uring_ || faults_ != nullptr || dgrams.empty()) return false;
  return uring_->send_gather_async(dst, dgrams, allow_gso, done, ctx, token);
}

void UdpChannel::drain_tx(void* ctx) {
  if (uring_) uring_->drain_tx(ctx);
}

bool UdpChannel::uring_supported() { return UringEngine::probe(); }

std::uint64_t UdpChannel::uring_rx_backpressure() const {
  return uring_ != nullptr ? uring_->rx_backpressure() : 0;
}

bool UdpChannel::set_io_backend(IoBackend b) {
  if (b == IoBackend::kMmsg) {
    uring_.reset();
    return true;
  }
  if (fd_ < 0) return false;
  if (!uring_supported()) {
    uring_.reset();
    return b == IoBackend::kAuto;  // auto falls back quietly; kUring refuses
  }
  if (uring_) return true;
  auto eng = std::make_unique<UringEngine>(this);
  if (!eng->init()) return b == IoBackend::kAuto;
  uring_ = std::move(eng);
  return true;
}

}  // namespace udtr::udt
