// UDP channel: a thin RAII wrapper over a datagram socket with the
// time-bounded receive the protocol core relies on (§4.8: the four timers
// are checked after each bounded UDP receive call), plus an optional
// deterministic fault injector (drop / duplicate / reorder / corrupt /
// truncate / outage, per direction) for tests and experiments.
//
// The paper's own profile (Table 3) shows UDP system calls dominating CPU
// time on both sides, so the channel also offers *batched* I/O: send_batch
// and recv_batch move up to N datagrams per sendmmsg/recvmmsg system call
// (falling back to a sendto/recvfrom loop where the mmsg calls are
// unavailable).  Fault injection stays per-datagram across a batch — the
// batch is a syscall optimisation, not a unit of loss.
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/fault.hpp"

namespace udtr::udt {

class UringEngine;

// Datapath backend for a channel's hot paths (rx_round / gather send).
//   kMmsg : sendmmsg/recvmmsg (+ GSO/GRO) — today's path, byte-for-byte.
//   kUring: raw io_uring submission/completion rings — batched sendmsg
//           SQEs gathered from pinned SndBuffer chunks (pins released on
//           CQE reap, not syscall return) and a multishot recvmsg fed by a
//           registered buffer ring carved from the RecvSlab arena.
//   kAuto : probe io_uring support at first bind, fall back to kMmsg at
//           runtime (and whenever UDTR_NO_URING is set).
enum class IoBackend { kAuto, kMmsg, kUring };

struct Endpoint {
  std::uint32_t ip_host_order = 0;  // IPv4
  std::uint16_t port = 0;

  [[nodiscard]] sockaddr_in to_sockaddr() const;
  [[nodiscard]] static Endpoint from_sockaddr(const sockaddr_in& sa);
  [[nodiscard]] static std::optional<Endpoint> resolve(
      const std::string& host, std::uint16_t port);
  bool operator==(const Endpoint&) const = default;
};

// Outcome of one bounded receive.  A genuine zero-length datagram is a
// kDatagram with bytes == 0 — distinct from kTimeout (nothing arrived
// within SO_RCVTIMEO) and from kError (the socket is broken).
enum class RecvStatus { kDatagram, kTimeout, kError };
struct RecvResult {
  RecvStatus status = RecvStatus::kTimeout;
  std::size_t bytes = 0;
};

class UdpChannel {
 public:
  UdpChannel();  // out-of-line: uring_ holds an incomplete UringEngine here
  ~UdpChannel();
  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;
  UdpChannel(UdpChannel&& other) noexcept;
  UdpChannel& operator=(UdpChannel&& other) noexcept;

  // Binds to 127.0.0.1:`port` (0 = ephemeral).  Returns false on error.
  // With `reuse_port`, SO_REUSEPORT is set before the bind so several
  // channels (the multiplexer's shards) can share one port; the kernel
  // load-balances between them unless a steering program is attached.
  bool open(std::uint16_t port = 0, bool reuse_port = false);
  // Attaches a classic-BPF reuseport steering program to this fd (the
  // group leader): each datagram goes to group member
  // (payload word at byte 12, i.e. the UDT destination socket id) % shards,
  // in bind order.  Datagrams too short to carry the word land on member 0,
  // which is where the multiplexer parks handshake handling.  False when
  // the kernel lacks SO_ATTACH_REUSEPORT_CBPF (the caller falls back to
  // software demux on a single fd).
  bool attach_reuseport_steering(unsigned shards);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  // Sets the receive timeout used by recv_from (SO_RCVTIMEO).
  bool set_recv_timeout(std::chrono::microseconds timeout);
  // Enlarged socket buffers for high-rate transfer.
  bool set_buffer_sizes(int snd_bytes, int rcv_bytes);

  // Sends one datagram; returns bytes accepted or -1.  A datagram swallowed
  // by the fault injector still reports success — from the sender's point
  // of view it left the host.
  std::int64_t send_to(const Endpoint& dst, std::span<const std::uint8_t> data);
  // Receives one datagram (or one the injector owed us); see RecvResult.
  RecvResult recv_from(Endpoint& src, std::span<std::uint8_t> buf);

  // --- batched I/O (Table 3: amortise the dominant syscall cost) ---------
  // Sends every datagram to `dst` in as few system calls as possible
  // (one sendmmsg on Linux; a sendto loop elsewhere).  The fault injector,
  // when installed, sees each datagram individually, exactly as with
  // send_to.  Returns the number of datagrams accepted.
  std::size_t send_batch(const Endpoint& dst,
                         std::span<const std::span<const std::uint8_t>> data);

  // --- zero-copy scatter-gather send -------------------------------------
  // One wire datagram described in place: `head` (the serialized 16-byte
  // header) and `body` (payload, may be empty) are gathered by the kernel
  // from where they already live, so the bytes are never staged into a
  // contiguous buffer.  `keep_with_next` marks an RBPP probe head whose
  // successor must leave in the same system call (§3.4 packet-pair timing).
  struct TxDatagram {
    std::span<const std::uint8_t> head;
    std::span<const std::uint8_t> body;
    bool keep_with_next = false;
  };
  // Sends the datagrams in order with as few system calls as possible:
  // where the kernel supports UDP_SEGMENT (and `allow_gso`), runs of
  // equal-size datagrams are coalesced into one GSO super-datagram — one
  // syscall and one kernel traversal for up to 64 wire packets; everything
  // else goes out as two-iovec sendmmsg entries.  The fault injector, when
  // installed, sees each logical datagram individually (pre-GSO), exactly
  // as with send_to.  Returns the number of datagrams accepted.
  std::size_t send_gather(const Endpoint& dst,
                          std::span<const TxDatagram> dgrams,
                          bool allow_gso = true);

  // Requests kernel receive coalescing (UDP_GRO): bursts of same-source
  // datagrams arrive as one buffer with RecvSlot::gro_size describing the
  // segment grid.  Refused (returns false) when unsupported, when
  // UDTR_NO_GSO is set, or when a fault injector is installed (the injector
  // owns per-datagram semantics).
  bool enable_gro();
  [[nodiscard]] bool gro_enabled() const { return gro_enabled_; }
  // False when the kernel rejected UDP_SEGMENT at runtime or UDTR_NO_GSO is
  // set: send_gather quietly takes the sendmmsg path instead.
  [[nodiscard]] bool gso_active() const;
  // Compile-time offload support (false off-Linux).
  [[nodiscard]] static bool offload_supported();
  [[nodiscard]] std::uint64_t gso_super_datagrams() const {
    return gso_sends_;
  }

  // One filled entry of a recv_batch call.
  struct RecvSlot {
    std::span<std::uint8_t> buf;  // in: caller storage for one datagram
    std::size_t bytes = 0;        // out: payload length received
    Endpoint src{};               // out: datagram source
    // out: GRO segment size.  0 = one plain datagram; otherwise the buffer
    // carries ceil(bytes / gro_size) wire datagrams, every segment
    // gro_size bytes except possibly the last.
    std::size_t gro_size = 0;
  };
  struct RecvBatchResult {
    RecvStatus status = RecvStatus::kTimeout;  // outcome of the first wait
    std::size_t count = 0;                     // slots filled (0 on timeout)
  };
  // Blocks (honouring SO_RCVTIMEO) until at least one datagram arrives,
  // then drains whatever else the kernel already has queued — up to
  // slots.size() datagrams in one recvmmsg(MSG_WAITFORONE) where available,
  // a bounded recvfrom loop otherwise.  Injector-owed datagrams (reorder
  // releases, duplicates) are delivered first and each received datagram is
  // filtered individually, so per-datagram fault semantics are preserved.
  RecvBatchResult recv_batch(std::span<RecvSlot> slots);

  // --- backend-neutral rx round (the mux shard rx loop's one entry point) --
  // One delivered datagram (or GRO super-datagram).  When `slab` is set the
  // bytes live in RecvSlab slot `slab_slot` and the sink may add_ref the
  // slot to keep them past the callback; otherwise the bytes are only valid
  // for the duration of the call and must be copied.
  struct RxDelivery {
    std::span<const std::uint8_t> data;
    Endpoint src{};
    std::size_t gro_size = 0;  // as RecvSlot::gro_size
    RecvSlab* slab = nullptr;
    int slab_slot = -1;
  };
  using RxSinkFn = void (*)(void* ctx, const RxDelivery& d);
  // Per-caller receive state.  The caller fills slab/batch/slot_bytes once;
  // the backend lazily builds the rest (mmsg: arming scratch; uring: the
  // re-armed slot ring lives in the engine, keyed by this state's first use).
  struct RxState {
    std::shared_ptr<RecvSlab> slab;  // may be null: arena-only delivery
    std::size_t batch = 0;           // max datagrams per round (mmsg width)
    std::size_t slot_bytes = 0;      // per-slot capacity (GRO-sized or MSS)
    // mmsg backend internals (lazily sized on first round).
    std::vector<std::uint8_t> arena;
    std::vector<RecvSlot> slots;
    std::vector<int> slab_ids;
    ~RxState();
  };
  // Blocks (honouring set_recv_timeout) until at least one datagram arrives,
  // then delivers every drained datagram to `sink`, one callback per
  // kernel-level delivery (per-datagram fault filtering happens first, so
  // swallowed datagrams produce no callback but kDatagram is still
  // returned).  count = callbacks made.
  RecvBatchResult rx_round(RxState& st, RxSinkFn sink, void* ctx);

  // --- asynchronous gather send (uring backend only) ----------------------
  // Called once per completed send_gather_async batch, after the kernel has
  // retired every SQE of the batch — the moment pinned SndBuffer chunks may
  // be unpinned.  Invoked from whichever thread reaps the CQEs.
  using TxDoneFn = void (*)(void* ctx, std::uint64_t token);
  // Submits the whole batch as io_uring sendmsg SQEs whose iovecs point into
  // the caller's pinned chunks; `done(ctx, token)` fires when the last CQE
  // is reaped.  Returns false (and does nothing) when the uring backend is
  // inactive, a fault injector is installed, or the ring is momentarily
  // full — the caller then sends synchronously via send_gather and unpins
  // itself.  The spans must stay valid until `done` runs.
  bool send_gather_async(const Endpoint& dst, std::span<const TxDatagram> dgrams,
                         bool allow_gso, TxDoneFn done, void* ctx,
                         std::uint64_t token);
  // Blocks until no in-flight async batch with this ctx remains (their done
  // callbacks have run).  Never reaps CQEs itself — it waits on the reaping
  // thread — and gives up after ~1s on a wedged ring, orphaning the records.
  void drain_tx(void* ctx);

  // --- backend selection --------------------------------------------------
  // Selects the datapath backend; call after open().  kAuto/kUring probe
  // io_uring support (kUring returns false when unsupported; kAuto quietly
  // stays on mmsg).  UDTR_NO_URING forces mmsg regardless.
  bool set_io_backend(IoBackend b);
  [[nodiscard]] bool uring_active() const { return uring_ != nullptr; }
  // One cached process-wide probe: kernel accepts the rings + features we
  // need (EXT_ARG, NODROP, SINGLE_MMAP), registers a provided-buffer ring
  // and arms a multishot recvmsg — and UDTR_NO_URING is unset.
  [[nodiscard]] static bool uring_supported();
  // Receive-buffer starvation events on the uring backend (0 on mmsg):
  // ENOBUFS completions (the provided ring ran dry mid-burst) plus
  // deliveries recycled onto the copy arena because consumers held every
  // RecvSlab slot.  Neither loses data — arrivals wait in the socket
  // buffer or arrive in copy mode — but sustained growth means the slab is
  // undersized for the receive window.
  [[nodiscard]] std::uint64_t uring_rx_backpressure() const;

  // Extra bytes every receive buffer must carry beyond the payload
  // capacity: the uring backend's multishot recvmsg writes a per-datagram
  // header (io_uring_recvmsg_out + name + cmsg areas, 56 bytes) ahead of
  // the payload inside the provided buffer.
  static constexpr std::size_t kUringRxHeadroom = 64;

  [[nodiscard]] std::uint64_t send_syscalls() const { return send_calls_; }
  [[nodiscard]] std::uint64_t recv_syscalls() const { return recv_calls_; }

  // Installs (or clears, with nullptr) the fault injector both directions
  // pass through.  The caller may keep its reference to flip faults on and
  // off mid-run; the injector is thread-safe.
  void set_fault_injector(std::shared_ptr<FaultInjector> faults);
  [[nodiscard]] const std::shared_ptr<FaultInjector>& fault_injector() const {
    return faults_;
  }

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const;

 private:
  friend class UringEngine;

  // mmsg implementation of rx_round (also the uring backend's owed-datagram
  // and fallback path).
  RecvBatchResult rx_round_mmsg(RxState& st, RxSinkFn sink, void* ctx);
  // Accepts the raw datagram in slot `from` into slot `filled` after the
  // per-datagram recv fault filter; returns false if it was swallowed.
  bool accept_raw(std::span<RecvSlot> slots, std::size_t filled,
                  std::size_t from, std::size_t bytes, const Endpoint& src);
  // Sends one GSO super-datagram covering `run`; false if the kernel
  // refused the offload (caller disables GSO and resends plainly).
  bool send_gso_run(const sockaddr_in& sa, std::span<const TxDatagram> run,
                    std::size_t seg_bytes);
  // Plain two-iovec path for datagrams that did not form a GSO run.
  void send_plain(const sockaddr_in& sa, std::span<const TxDatagram> dgrams);

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::shared_ptr<FaultInjector> faults_;
  // Atomic: enable_gro runs on the shard rx thread after start while the tx
  // thread reads it on the gather path (probe/latch consistency rule — same
  // treatment as gso_ok_).
  std::atomic<bool> gro_enabled_{false};
  // Receive timeout mirrored from set_recv_timeout for the uring backend's
  // timed CQ wait (SO_RCVTIMEO does not apply to ring-submitted recvmsg).
  std::chrono::microseconds recv_timeout_us_{std::chrono::microseconds{0}};
  // Non-null iff the uring backend is active on this channel.
  std::unique_ptr<UringEngine> uring_;
  // Runtime GSO health: starts true (unless UDTR_NO_GSO), latched false the
  // first time the kernel rejects UDP_SEGMENT.  Atomic only for the cheap
  // cross-thread read; all writes come from the sending thread.
  std::atomic<bool> gso_ok_{true};
  // Reused linearization scratch for routing gathered datagrams through the
  // per-datagram fault injector.  One buffer, guarded by gather_mu_: in the
  // multiplexer's single-fd fallback mode several shard tx threads share
  // this channel, and the injector path is the only send state they could
  // collide on (taken only when faults are configured).
  std::mutex gather_mu_;
  std::vector<std::uint8_t> gather_scratch_;
  // Atomic: the sender thread moves data while the receiver thread sends
  // control packets through the same channel.
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> send_calls_{0};
  std::atomic<std::uint64_t> recv_calls_{0};
  std::atomic<std::uint64_t> gso_sends_{0};
};

// Length of the longest leading run of `dgrams[i..]` that one GSO
// super-datagram can carry: equal wire sizes (except a shorter tail), run
// fits kGsoMaxBytes/kGsoMaxSegments, and keep_with_next pairs never split.
// Shared by the mmsg and uring send paths.
[[nodiscard]] std::size_t gso_run_length(
    std::span<const UdpChannel::TxDatagram> dgrams, std::size_t i);

}  // namespace udtr::udt
