// UDP channel: a thin RAII wrapper over a datagram socket with the
// time-bounded receive the protocol core relies on (§4.8: the four timers
// are checked after each bounded UDP receive call), plus an optional
// deterministic loss injector for tests and experiments.
#pragma once

#include <netinet/in.h>

#include <chrono>
#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <string>

namespace udtr::udt {

struct Endpoint {
  std::uint32_t ip_host_order = 0;  // IPv4
  std::uint16_t port = 0;

  [[nodiscard]] sockaddr_in to_sockaddr() const;
  [[nodiscard]] static Endpoint from_sockaddr(const sockaddr_in& sa);
  [[nodiscard]] static std::optional<Endpoint> resolve(
      const std::string& host, std::uint16_t port);
  bool operator==(const Endpoint&) const = default;
};

class UdpChannel {
 public:
  UdpChannel() = default;
  ~UdpChannel();
  UdpChannel(const UdpChannel&) = delete;
  UdpChannel& operator=(const UdpChannel&) = delete;
  UdpChannel(UdpChannel&& other) noexcept;
  UdpChannel& operator=(UdpChannel&& other) noexcept;

  // Binds to 127.0.0.1:`port` (0 = ephemeral).  Returns false on error.
  bool open(std::uint16_t port = 0);
  void close();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t local_port() const { return local_port_; }

  // Sets the receive timeout used by recv_from (SO_RCVTIMEO).
  bool set_recv_timeout(std::chrono::microseconds timeout);
  // Enlarged socket buffers for high-rate transfer.
  bool set_buffer_sizes(int snd_bytes, int rcv_bytes);

  // Sends one datagram; returns bytes sent or -1.
  std::int64_t send_to(const Endpoint& dst, std::span<const std::uint8_t> data);
  // Receives one datagram; returns bytes received, 0 on timeout, -1 on error.
  std::int64_t recv_from(Endpoint& src, std::span<std::uint8_t> buf);

  // Deterministic outbound loss injection: each *data-carrying* datagram
  // (larger than `min_bytes`) is dropped with probability `p`.  Control
  // packets stay intact so experiments model forward-path data loss.
  void set_loss_injection(double p, std::uint64_t seed,
                          std::size_t min_bytes = 32);

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_dropped() const { return dropped_; }

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  double loss_p_ = 0.0;
  std::size_t loss_min_bytes_ = 32;
  std::mt19937_64 loss_rng_{0};
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace udtr::udt
