// Raw io_uring engine for UdpChannel (see channel_uring.hpp for the model).
//
// Everything kernel-facing lives in this translation unit: the three
// syscalls, the ring mmaps, SQE/CQE layout.  Builds to a stub (probe() ==
// false) where <linux/io_uring.h> is unavailable.
#include "udt/channel_uring.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
// The rx side rides on a provided-buffer ring and multishot recvmsg; uapi
// headers without IORING_RECV_MULTISHOT predate both, so build the stub.
#if defined(IORING_RECV_MULTISHOT)
#define UDTR_HAVE_URING 1
#else
#define UDTR_HAVE_URING 0
#endif
#else
#define UDTR_HAVE_URING 0
#endif

#if UDTR_HAVE_URING

#include <linux/time_types.h>
#include <netinet/udp.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

namespace udtr::udt {

namespace {

constexpr unsigned kSqEntries = 128;
// CQ sized for the worst case of in-flight ops: every tx record full plus
// the whole rx slot ring (NODROP makes overflow non-fatal regardless).
constexpr unsigned kCqEntries = 1024;
constexpr std::size_t kMaxTxRecords = 8;
constexpr std::size_t kMaxBatchDgrams = 64;
constexpr std::size_t kMaxRxBufs = 64;

// user_data layout: one tag bit picks the direction; tx packs the
// (record, msg) pair in the low bits.  The single multishot recvmsg SQE
// carries the bare rx tag — its buffer id arrives in the CQE flags.
constexpr std::uint64_t kRxTag = 0x1ull << 56;
constexpr std::uint64_t kTxTag = 0x2ull << 56;

// Per-buffer header multishot recvmsg writes ahead of the payload: the
// io_uring_recvmsg_out summary, then name and control areas sized by the
// capacities in the msghdr template.
constexpr unsigned kRxNameCap = sizeof(sockaddr_in);
constexpr unsigned kRxCtrlCap = CMSG_SPACE(sizeof(int));
constexpr std::size_t kRxHdr =
    sizeof(io_uring_recvmsg_out) + kRxNameCap + kRxCtrlCap;
static_assert(kRxHdr <= UdpChannel::kUringRxHeadroom,
              "slab headroom must cover the multishot recvmsg header");

constexpr unsigned kNeededFeatures =
    IORING_FEAT_NODROP | IORING_FEAT_SINGLE_MMAP | IORING_FEAT_EXT_ARG;

int uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                unsigned flags, const void* arg, std::size_t argsz) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, arg, argsz));
}

[[maybe_unused]] int uring_register(int fd, unsigned opcode, void* arg,
                                    unsigned nr) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, fd, opcode, arg, nr));
}

// Page-aligned allocation for PBUF_RING memory.  aligned_alloc demands a
// size that is a multiple of the alignment (glibc forgives, sanitizers
// abort), so round the ring size up to whole pages.
void* alloc_ring_pages(std::size_t bytes) {
  constexpr std::size_t kPage = 4096;
  return std::aligned_alloc(kPage, (bytes + kPage - 1) & ~(kPage - 1));
}

}  // namespace

struct UringEngine::Impl {
  UdpChannel* ch = nullptr;

  int ring_fd = -1;
  std::uint8_t* ring_ptr = nullptr;  // SINGLE_MMAP: covers SQ and CQ rings
  std::size_t ring_len = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_array = nullptr;
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  io_uring_cqe* cqes = nullptr;
  unsigned cq_mask = 0;

  // SQE allocation and tail publication.  tail_local runs ahead of the
  // published *sq_tail while a batch is being prepped; unsubmitted counts
  // published entries no io_uring_enter has consumed yet.
  std::mutex sq_mu;
  unsigned tail_local = 0;
  unsigned unsubmitted = 0;

  // CQ reaping, tx records and the reaped-but-undelivered rx list.
  std::mutex cq_mu;
  std::condition_variable cq_cv;

  // ---- rx: provided-buffer ring + one multishot recvmsg ------------------
  //
  // The kernel holds a single armed RECVMSG SQE; each arriving datagram
  // picks the next buffer off the registered ring and posts a CQE tagged
  // with its buffer id.  One armed op means one poll waiter — a slot-per-SQE
  // scheme makes every arrival wake all armed slots and punts the losers to
  // io-wq worker threads that then sit in blocking recvmsg.
  struct RxBuf {
    int slab_slot = -1;    // current backing slab slot, -1 = arena / starved
    bool provided = false; // handed to the kernel via the buffer ring
  };
  std::vector<RxBuf> rxb;
  std::shared_ptr<RecvSlab> slab;      // kept alive for the ring's lifetime
  std::vector<std::uint8_t> rx_arena;  // slab-less (exclusive test) storage
  std::size_t rx_slot_bytes = 0;       // provided size, kRxHdr included
  bool rx_init = false;
  // Multishot refused at runtime: revert to mmsg rx.  Atomic because the
  // EINVAL latch is set by whichever thread reaps the CQ (a sender inside
  // drain_tx included) while the rx thread reads it lock-free.
  std::atomic<bool> rx_dead{false};
  bool rx_released = false;  // slab refs handed back after rx_dead
  msghdr rx_msg{};          // layout template; kernel reads it while armed
  io_uring_buf_ring* br = nullptr;
  unsigned br_entries = 0;
  unsigned br_mask = 0;
  std::uint16_t br_tail = 0;
  unsigned provided_n = 0;  // buffers currently on the ring (rx thread)
  std::atomic<unsigned> rx_inflight{0};  // armed multishot SQEs (0 or 1)
  std::uint64_t rx_ok = 0;               // delivered CQEs (cq_mu)
  std::atomic<std::uint64_t> rx_backpressure{0};  // ENOBUFS completions
  struct RxDone {
    unsigned bid;
    int res;
  };
  std::vector<RxDone> rx_done;  // guarded by cq_mu
  // rx thread's drain scratch.  Persistent so the capacity ping-pongs
  // between rx_done and rx_take across swaps instead of being freed and
  // re-grown every round (the steady-state datapath must not allocate).
  std::vector<RxDone> rx_take;  // rx thread only

  // ---- tx: pin-until-CQE batch records ----------------------------------
  struct Run {  // one sendmsg SQE: a GSO run or a single plain datagram
    unsigned dgram_first = 0;
    unsigned dgram_count = 0;
    bool gso = false;
    bool resent = false;
  };
  struct CtrlBuf {
    alignas(cmsghdr) char b[CMSG_SPACE(sizeof(std::uint16_t))];
  };
  struct TxRecord {
    bool in_use = false;  // guarded by cq_mu; contents owned by the filler
    UdpChannel::TxDoneFn done = nullptr;
    void* ctx = nullptr;
    std::uint64_t token = 0;
    sockaddr_in sa{};
    // Header bytes are copied here (the caller reuses its staging arrays
    // next round); body spans keep pointing into pinned SndBuffer chunks.
    std::vector<std::uint8_t> heads;
    std::vector<UdpChannel::TxDatagram> dgrams;
    // msghdr/iovec/cmsg storage the kernel may read until the CQE: sized
    // up front, never reallocated while outstanding > 0.
    std::vector<iovec> iovs;
    std::vector<msghdr> msgs;
    std::vector<CtrlBuf> ctrls;
    std::vector<Run> runs;
    unsigned outstanding = 0;
  };
  std::array<TxRecord, kMaxTxRecords> recs;

  // ---- ring plumbing -----------------------------------------------------

  bool init(UdpChannel* channel) {
    ch = channel;
    io_uring_params p{};
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = kCqEntries;
    ring_fd = uring_setup(kSqEntries, &p);
    if (ring_fd < 0) return false;
    if ((p.features & kNeededFeatures) != kNeededFeatures) {
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    sq_entries = p.sq_entries;
    ring_len = std::max<std::size_t>(
        p.sq_off.array + p.sq_entries * sizeof(unsigned),
        p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe));
    void* m = ::mmap(nullptr, ring_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (m == MAP_FAILED) {
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    ring_ptr = static_cast<std::uint8_t*>(m);
    sqes_len = p.sq_entries * sizeof(io_uring_sqe);
    m = ::mmap(nullptr, sqes_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (m == MAP_FAILED) {
      ::munmap(ring_ptr, ring_len);
      ring_ptr = nullptr;
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    sqes = static_cast<io_uring_sqe*>(m);
    sq_head = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.tail);
    sq_array = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.array);
    sq_mask = *reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.ring_mask);
    cq_head = reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(ring_ptr + p.cq_off.cqes);
    tail_local = __atomic_load_n(sq_tail, __ATOMIC_ACQUIRE);
    return true;
  }

  // sq_mu held.  Zeroed SQE with its array slot wired, or nullptr when the
  // SQ is full.  Nothing is visible to the kernel until publish().
  io_uring_sqe* get_sqe() {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    if (tail_local - head >= sq_entries) return nullptr;
    const unsigned idx = tail_local & sq_mask;
    ++tail_local;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof *sqe);
    sq_array[idx] = idx;
    return sqe;
  }

  // sq_mu held.
  void publish(unsigned n) {
    __atomic_store_n(sq_tail, tail_local, __ATOMIC_RELEASE);
    unsubmitted += n;
  }

  unsigned take_unsubmitted() {
    std::lock_guard lk{sq_mu};
    const unsigned n = unsubmitted;
    unsubmitted = 0;
    return n;
  }

  void give_back(unsigned n) {
    std::lock_guard lk{sq_mu};
    unsubmitted += n;
  }

  // Hands published SQEs to the kernel without waiting.  `counter`, when
  // set, takes one tick per actual syscall (the Table-3 accounting).
  void flush(unsigned n, std::atomic<std::uint64_t>* counter) {
    if (n == 0) return;
    if (counter != nullptr) ++*counter;
    const int ret = uring_enter(ring_fd, n, 0, 0, nullptr, 0);
    if (ret < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY) give_back(n);
      return;  // ring broken: the count is lost with it
    }
    if (static_cast<unsigned>(ret) < n) give_back(n - ret);
  }

  // One combined submit-and-wait: pushes everything published (rx re-arms
  // included) and blocks for >= 1 completion, bounded by the channel's
  // receive timeout.  This is the rx thread's only blocking syscall.
  void wait_enter() {
    const unsigned n = take_unsubmitted();
    const auto us = ch->recv_timeout_us_.count() > 0
                        ? ch->recv_timeout_us_
                        : std::chrono::microseconds{5000};
    __kernel_timespec ts{};
    ts.tv_sec = us.count() / 1000000;
    ts.tv_nsec = (us.count() % 1000000) * 1000;
    io_uring_getevents_arg arg{};
    arg.ts = reinterpret_cast<std::uint64_t>(&ts);
    ++ch->recv_calls_;
    const int ret =
        uring_enter(ring_fd, n, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                    &arg, sizeof arg);
    if (ret < 0) {
      // -ETIME means nothing was consumed (the kernel reports a positive
      // submit count even when the wait times out), so the SQEs are still
      // published and the count must survive for the next enter.
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY ||
          errno == ETIME) {
        give_back(n);
      }
      return;
    }
    if (static_cast<unsigned>(ret) < n) give_back(n - ret);
  }

  // ---- completion handling (cq_mu held) ----------------------------------

  void handle_cqe(const io_uring_cqe& cqe) {
    if ((cqe.user_data & kRxTag) != 0) {
      if ((cqe.flags & IORING_CQE_F_MORE) == 0) {
        rx_inflight.fetch_sub(1, std::memory_order_relaxed);
      }
      if ((cqe.flags & IORING_CQE_F_BUFFER) != 0) {
        ++rx_ok;
        rx_done.push_back(RxDone{
            static_cast<unsigned>(cqe.flags >> IORING_CQE_BUFFER_SHIFT),
            cqe.res});
      } else if (cqe.res == -ENOBUFS) {
        // Buffer ring ran dry: datagrams back up in the socket receive
        // buffer until the rx thread recycles slots — backpressure, not
        // silent drops.
        rx_backpressure.fetch_add(1, std::memory_order_relaxed);
      } else if (cqe.res == -EINVAL && rx_ok == 0) {
        // The kernel accepted the ring but refuses multishot recvmsg
        // (5.19..5.x window): permanent per-channel fallback to mmsg rx.
        rx_dead.store(true, std::memory_order_relaxed);
      }
      return;
    }
    if ((cqe.user_data & kTxTag) == 0) return;
    const auto rec_idx = static_cast<unsigned>((cqe.user_data >> 16) & 0xff);
    const auto run_idx = static_cast<unsigned>(cqe.user_data & 0xffff);
    TxRecord& r = recs[rec_idx];
    Run& run = r.runs[run_idx];
    if (cqe.res >= 0) {
      if (run.gso) ++ch->gso_sends_;
    } else if (cqe.res == -EINVAL && run.gso && !run.resent) {
      // The kernel refused UDP_SEGMENT: latch GSO off for the socket and
      // resend this run plainly — same recovery as the synchronous path.
      // The record's iovecs still point at pinned chunks, so the resend
      // reads valid bytes.
      ch->gso_ok_.store(false, std::memory_order_relaxed);
      run.resent = true;
      ch->send_plain(r.sa, std::span<const UdpChannel::TxDatagram>{
                               r.dgrams.data() + run.dgram_first,
                               run.dgram_count});
    } else if (cqe.res == -ECANCELED) {
      run.resent = true;
      ch->send_plain(r.sa, std::span<const UdpChannel::TxDatagram>{
                               r.dgrams.data() + run.dgram_first,
                               run.dgram_count});
    }
    // ENOBUFS / EAGAIN / anything else: ordinary UDP loss semantics.
    if (--r.outstanding == 0) {
      const UdpChannel::TxDoneFn done = r.done;
      void* ctx = r.ctx;
      const std::uint64_t token = r.token;
      r.done = nullptr;
      r.ctx = nullptr;
      r.in_use = false;
      if (done != nullptr) done(ctx, token);  // cq_mu -> state_mu_ order
      cq_cv.notify_all();
    }
  }

  unsigned reap_locked() {
    unsigned head = __atomic_load_n(cq_head, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
    unsigned n = 0;
    while (head != tail) {
      handle_cqe(cqes[head & cq_mask]);
      ++head;
      ++n;
    }
    if (n != 0) __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
    return n;
  }

  // ---- rx ----------------------------------------------------------------

  [[nodiscard]] std::uint8_t* buf_base(unsigned bid) {
    return rxb[bid].slab_slot >= 0 ? slab->data(rxb[bid].slab_slot)
                                   : rx_arena.data() + bid * rx_slot_bytes;
  }

  // Entry `idx` of the registered buffer ring.  Never go through
  // io_uring_buf_ring::bufs: under C++ the uapi __DECLARE_FLEX_ARRAY wraps
  // the flexible member in a struct whose empty first field has sizeof 1,
  // padding bufs[] to offset 8 — the kernel reads entries at offset 0.
  [[nodiscard]] io_uring_buf* ring_entry(unsigned idx) const {
    return reinterpret_cast<io_uring_buf*>(br) + idx;
  }

  // Stages a buffer-ring entry.  Entry 0 of the ring overlays the tail
  // word, so only addr/len/bid are written; publish_bufs() makes the batch
  // visible to the kernel with one release store.
  void provide(unsigned bid) {
    io_uring_buf& e = *ring_entry(br_tail & br_mask);
    e.addr = reinterpret_cast<std::uint64_t>(buf_base(bid));
    e.len = static_cast<std::uint32_t>(rx_slot_bytes);
    e.bid = static_cast<std::uint16_t>(bid);
    ++br_tail;
    rxb[bid].provided = true;
    ++provided_n;
  }

  void publish_bufs() { __atomic_store_n(&br->tail, br_tail, __ATOMIC_RELEASE); }

  // Copy-mode fallback storage for slab starvation, allocated at most once:
  // the kernel may hold addresses of provided arena entries, so the arena
  // must never reallocate.  (Slab-less channels size it in init_rx with the
  // same formula, making this a no-op there.)
  void ensure_arena() {
    if (!rx_arena.empty()) return;
    rx_arena.resize(rxb.size() * rx_slot_bytes);
  }

  // Re-acquires backing slots for buffers whose slab slot is still held by
  // consumers (RcvBuffer spans).  A starved buffer falls back to the copy
  // arena rather than leaving the ring: every slab slot can be parked
  // against a lost packet, and that retransmission has to be receivable or
  // the connection deadlocks.  Arena deliveries carry slab == nullptr, so
  // the sink copies.
  void refill() {
    bool any = false;
    for (unsigned i = 0; i < rxb.size(); ++i) {
      if (rxb[i].provided) continue;
      if (slab && rxb[i].slab_slot < 0) {
        rxb[i].slab_slot = slab->acquire();
        if (rxb[i].slab_slot < 0) {
          ensure_arena();
          if (rx_arena.empty()) continue;  // allocation failed: wait
        }
      }
      provide(i);
      any = true;
    }
    if (any) publish_bufs();
  }

  // Arms the single multishot recvmsg SQE if none is in flight.  Called
  // only from the rx thread; the SQE goes out with the next flush/enter.
  void arm_rx() {
    if (rx_dead.load(std::memory_order_relaxed) ||
        rx_inflight.load(std::memory_order_relaxed) != 0) {
      return;
    }
    // Fully starved ring: arming now would only bounce straight back with
    // ENOBUFS and turn the rx loop into a spin.  Arrivals wait in the
    // socket buffer until refill() recovers a slot.
    if (provided_n == 0) return;
    std::lock_guard lk{sq_mu};
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) return;  // SQ full: re-arm next round
    sqe->opcode = IORING_OP_RECVMSG;
    sqe->fd = ch->fd_;
    sqe->addr = reinterpret_cast<std::uint64_t>(&rx_msg);
    sqe->len = 1;
    sqe->ioprio = IORING_RECV_MULTISHOT;
    sqe->flags = IOSQE_BUFFER_SELECT;
    sqe->buf_group = 0;
    sqe->user_data = kRxTag;
    rx_inflight.fetch_add(1, std::memory_order_relaxed);
    publish(1);
  }

  bool init_rx(const UdpChannel::RxState& st) {
    const std::size_t payload = st.slot_bytes != 0 ? st.slot_bytes : 2048;
    slab = st.slab;
    // Slab slots carry kUringRxHeadroom beyond the payload capacity for
    // exactly this header; the slab-less arena adds it explicitly.
    rx_slot_bytes = slab ? slab->slot_bytes()
                         : payload + UdpChannel::kUringRxHeadroom;
    // Deeper than the caller's mmsg batch so a busy round reaps many
    // datagrams per enter, bounded so the slab keeps slots for parked
    // payloads (RcvBuffer references).
    const std::size_t want =
        slab ? std::max<std::size_t>(slab->slot_count() / 4, st.batch)
             : std::max<std::size_t>(st.batch, 1) * 4;
    const std::size_t nrx = std::clamp<std::size_t>(
        want, std::max<std::size_t>(st.batch, 1), kMaxRxBufs);
    rxb.resize(nrx);
    if (!slab) rx_arena.resize(nrx * rx_slot_bytes);
    rx_done.reserve(nrx);
    rx_take.reserve(nrx);

    br_entries = 1;
    while (br_entries < nrx) br_entries <<= 1;
    br_mask = br_entries - 1;
    br = static_cast<io_uring_buf_ring*>(
        alloc_ring_pages(br_entries * sizeof(io_uring_buf)));
    if (br == nullptr) {
      rx_dead.store(true, std::memory_order_relaxed);
      return false;
    }
    std::memset(br, 0, br_entries * sizeof(io_uring_buf));
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<std::uint64_t>(br);
    reg.ring_entries = br_entries;
    reg.bgid = 0;
    if (uring_register(ring_fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
      std::free(br);
      br = nullptr;
      rx_dead.store(true, std::memory_order_relaxed);
      return false;
    }
    // msghdr template: only the name/control capacities matter — multishot
    // recvmsg lays name, control and payload out inside the picked buffer.
    std::memset(&rx_msg, 0, sizeof rx_msg);
    rx_msg.msg_namelen = kRxNameCap;
    rx_msg.msg_controllen = kRxCtrlCap;
    refill();
    arm_rx();
    return true;
  }

  // The GRO size is the only cmsg requested, so the first header in the
  // buffer's control area tells all.  `out` carries the actual lengths;
  // offsets inside the buffer use the template capacities.
  std::size_t parse_gro(const std::uint8_t* base,
                        const io_uring_recvmsg_out& out,
                        std::size_t bytes) const {
#if defined(UDP_GRO)
    if (!ch->gro_enabled_.load(std::memory_order_relaxed)) return 0;
    if (out.controllen < CMSG_LEN(sizeof(int))) return 0;
    const std::uint8_t* ctrl = base + sizeof(io_uring_recvmsg_out) + kRxNameCap;
    cmsghdr cm{};
    std::memcpy(&cm, ctrl, sizeof cm);
    if (cm.cmsg_len >= CMSG_LEN(sizeof(int)) && cm.cmsg_level == SOL_UDP &&
        cm.cmsg_type == UDP_GRO) {
      int v = 0;
      std::memcpy(&v, ctrl + CMSG_LEN(0), sizeof v);
      if (v > 0 && static_cast<std::size_t>(v) < bytes) {
        return static_cast<std::size_t>(v);
      }
    }
#else
    (void)base;
    (void)out;
    (void)bytes;
#endif
    return 0;
  }

  // Delivers one reaped completion to the sink (post fault filter), then
  // recycles the buffer id onto the ring with a fresh backing slot (the
  // delivered slot may be ref-held by consumers).  Returns callbacks made.
  std::size_t deliver(const RxDone& rd, UdpChannel::RxSinkFn sink, void* ctx) {
    RxBuf& b = rxb[rd.bid];
    if (b.provided) {
      b.provided = false;
      --provided_n;
    }
    std::size_t made = 0;
    if (rd.res >= static_cast<int>(kRxHdr)) {
      std::uint8_t* base = buf_base(rd.bid);
      io_uring_recvmsg_out out{};
      std::memcpy(&out, base, sizeof out);
      std::uint8_t* payload = base + kRxHdr;
      std::size_t bytes = static_cast<std::size_t>(rd.res) - kRxHdr;
      std::size_t gro = parse_gro(base, out, bytes);
      sockaddr_in sa{};
      if (out.namelen >= sizeof sa) {
        std::memcpy(&sa, base + sizeof out, sizeof sa);
      }
      const Endpoint src = Endpoint::from_sockaddr(sa);
      bool survived = true;
      if (ch->faults_) {
        auto delivered = ch->faults_->filter_recv({payload, bytes},
                                                  src.ip_host_order, src.port);
        if (delivered) {
          bytes = std::min(rx_slot_bytes - kRxHdr, *delivered);
          gro = 0;
        } else {
          survived = false;  // swallowed by the simulated net
        }
      }
      if (survived) {
        UdpChannel::RxDelivery d;
        d.data = {payload, bytes};
        d.src = src;
        d.gro_size = gro;
        d.slab = b.slab_slot >= 0 ? slab.get() : nullptr;
        d.slab_slot = b.slab_slot;
        sink(ctx, d);
        made = 1;
      }
    }
    if (slab) {
      if (b.slab_slot >= 0) {
        slab->release(b.slab_slot);  // the sink add_ref'd if it kept the slot
      }
      b.slab_slot = slab->acquire();  // arena-backed bids upgrade here too
      if (b.slab_slot < 0) {
        // Every slot is ref-held by consumers.  Recycle the bid onto the
        // copy arena so the ring stays armed — the packet that frees those
        // slots (a gap-filling retransmission) must remain receivable.
        ensure_arena();
        if (rx_arena.empty()) return made;  // allocation failed: starve
        rx_backpressure.fetch_add(1, std::memory_order_relaxed);
      }
    }
    provide(rd.bid);
    return made;
  }

  // One-time handover when multishot recvmsg turns out unsupported: with
  // no armed SQE the kernel cannot touch the provided buffers, so the slab
  // references go back to the pool before mmsg rx takes over.
  void release_rx_bufs() {
    if (rx_released) return;
    rx_released = true;
    if (slab) {
      for (RxBuf& b : rxb) {
        if (b.slab_slot >= 0) {
          slab->release(b.slab_slot);
          b.slab_slot = -1;
        }
      }
    }
  }

  UdpChannel::RecvBatchResult rx_round(UdpChannel::RxState& st,
                                       UdpChannel::RxSinkFn sink, void* ctx) {
    if (!rx_init) {
      rx_init = true;
      init_rx(st);
    }
    if (rx_dead.load(std::memory_order_relaxed) &&
        rx_inflight.load(std::memory_order_relaxed) == 0) {
      release_rx_bufs();
      return ch->rx_round_mmsg(st, sink, ctx);
    }
    std::size_t owed = 0;
    if (ch->faults_) {
      // Injector-owed datagrams (reorder releases, duplicates) were "on the
      // wire" before anything still in the ring.
      while (auto o = ch->faults_->pop_ready_recv()) {
        UdpChannel::RxDelivery d;
        d.data = {o->bytes.data(), o->bytes.size()};
        d.src = Endpoint{o->src_ip, o->src_port};
        sink(ctx, d);
        ++owed;
      }
    }
    std::size_t raw = 0;        // kernel-level arrivals (pre fault filter)
    std::size_t callbacks = 0;  // sink callbacks made
    const auto drain = [&] {
      rx_take.clear();
      {
        std::lock_guard lk{cq_mu};
        reap_locked();
        rx_take.swap(rx_done);
      }
      for (const RxDone& rd : rx_take) {
        ++raw;
        callbacks += deliver(rd, sink, ctx);
      }
      if (!rx_take.empty()) publish_bufs();  // recycled ids, one store
    };
    drain();  // syscall-free when completions are already posted
    if (raw == 0 && owed == 0) {
      refill();
      arm_rx();
      wait_enter();  // submits pending re-arms and blocks (bounded) as one
      drain();
    }
    refill();
    arm_rx();
    flush(take_unsubmitted(), &ch->recv_calls_);
    if (raw == 0 && owed == 0) return {RecvStatus::kTimeout, 0};
    // Traffic arrived even if the injector swallowed it all: report a
    // datagram wakeup so the caller's timer pass runs with fresh timing.
    return {RecvStatus::kDatagram, owed + callbacks};
  }

  // ---- tx ----------------------------------------------------------------

  bool send_gather_async(const Endpoint& dst,
                         std::span<const UdpChannel::TxDatagram> dgrams,
                         bool allow_gso, UdpChannel::TxDoneFn done, void* ctx,
                         std::uint64_t token) {
    if (dgrams.size() > kMaxBatchDgrams) return false;
    TxRecord* rec = nullptr;
    unsigned rec_idx = 0;
    {
      std::lock_guard lk{cq_mu};
      for (unsigned i = 0; i < recs.size(); ++i) {
        if (!recs[i].in_use) {
          rec = &recs[i];
          rec_idx = i;
          rec->in_use = true;
          break;
        }
      }
    }
    if (rec == nullptr) return false;  // all records in flight: go sync

    rec->done = done;
    rec->ctx = ctx;
    rec->token = token;
    rec->sa = dst.to_sockaddr();
    rec->heads.clear();
    rec->dgrams.clear();
    rec->iovs.clear();
    rec->msgs.clear();
    rec->runs.clear();

    // Headers move into the record (the caller's staging arrays are reused
    // next pacing round); bodies stay where they are — pinned chunks.
    std::size_t head_bytes = 0;
    for (const auto& d : dgrams) head_bytes += d.head.size();
    rec->heads.reserve(head_bytes);
    rec->dgrams.reserve(dgrams.size());
    for (const auto& d : dgrams) {
      const std::size_t off = rec->heads.size();
      rec->heads.insert(rec->heads.end(), d.head.begin(), d.head.end());
      rec->dgrams.push_back(UdpChannel::TxDatagram{
          {rec->heads.data() + off, d.head.size()}, d.body, d.keep_with_next});
    }
    const std::span<const UdpChannel::TxDatagram> ds{rec->dgrams.data(),
                                                     rec->dgrams.size()};

    bool use_gso = allow_gso && ch->gso_active();
#if !defined(UDP_SEGMENT)
    use_gso = false;
#endif
    // Pass 1: size the kernel-visible arrays so they never reallocate while
    // the kernel may still read them (outstanding > 0).
    std::size_t nruns = 0;
    std::size_t niov = 0;
    for (std::size_t i = 0; i < ds.size();) {
      std::size_t run = use_gso ? gso_run_length(ds, i) : std::size_t{1};
      if (run < 2) run = 1;
      ++nruns;
      for (std::size_t j = i; j < i + run; ++j) {
        niov += ds[j].body.empty() ? 1 : 2;
      }
      i += run;
    }
    rec->iovs.reserve(niov);
    rec->msgs.reserve(nruns);
    rec->ctrls.resize(nruns);
    rec->runs.reserve(nruns);

    for (std::size_t i = 0; i < ds.size();) {
      std::size_t run = use_gso ? gso_run_length(ds, i) : std::size_t{1};
      if (run < 2) run = 1;
      const std::size_t iov_first = rec->iovs.size();
      for (std::size_t j = i; j < i + run; ++j) {
        rec->iovs.push_back(
            {const_cast<std::uint8_t*>(ds[j].head.data()), ds[j].head.size()});
        if (!ds[j].body.empty()) {
          rec->iovs.push_back({const_cast<std::uint8_t*>(ds[j].body.data()),
                               ds[j].body.size()});
        }
      }
      msghdr m{};
      m.msg_name = &rec->sa;
      m.msg_namelen = sizeof rec->sa;
      m.msg_iov = rec->iovs.data() + iov_first;
      m.msg_iovlen = rec->iovs.size() - iov_first;
#if defined(UDP_SEGMENT)
      if (run >= 2) {
        CtrlBuf& cb = rec->ctrls[rec->msgs.size()];
        std::memset(cb.b, 0, sizeof cb.b);
        m.msg_control = cb.b;
        m.msg_controllen = sizeof cb.b;
        cmsghdr* cm = CMSG_FIRSTHDR(&m);
        cm->cmsg_level = SOL_UDP;
        cm->cmsg_type = UDP_SEGMENT;
        cm->cmsg_len = CMSG_LEN(sizeof(std::uint16_t));
        const auto seg16 = static_cast<std::uint16_t>(ds[i].head.size() +
                                                      ds[i].body.size());
        std::memcpy(CMSG_DATA(cm), &seg16, sizeof seg16);
      }
#endif
      rec->msgs.push_back(m);
      rec->runs.push_back(Run{static_cast<unsigned>(i),
                              static_cast<unsigned>(run), run >= 2, false});
      i += run;
    }
    {
      // Publish the filled contents to the reaper.  The CQE that makes
      // handle_cqe read this record cannot be posted until after the
      // enter below, so every reaper lock of cq_mu from here on
      // happens-after this unlock — without this section the record
      // fill and the reaper's reads have no common synchronization in
      // the C++ memory model (the kernel round-trip orders them only
      // physically).
      std::lock_guard lk{cq_mu};
      rec->outstanding = static_cast<unsigned>(rec->msgs.size());
    }

    {
      std::lock_guard lk{sq_mu};
      const unsigned saved_tail = tail_local;
      bool full = false;
      for (unsigned m = 0; m < rec->msgs.size(); ++m) {
        io_uring_sqe* sqe = get_sqe();
        if (sqe == nullptr) {
          tail_local = saved_tail;  // nothing published: clean rollback
          full = true;
          break;
        }
        sqe->opcode = IORING_OP_SENDMSG;
        sqe->fd = ch->fd_;
        sqe->addr = reinterpret_cast<std::uint64_t>(&rec->msgs[m]);
        sqe->len = 1;
        sqe->user_data =
            kTxTag | (static_cast<std::uint64_t>(rec_idx) << 16) | m;
      }
      if (full) {
        std::lock_guard clk{cq_mu};
        rec->in_use = false;
        return false;
      }
      publish(static_cast<unsigned>(rec->msgs.size()));
    }
    ch->sent_ += dgrams.size();
    flush(take_unsubmitted(), &ch->send_calls_);
    return true;
  }

  void drain_tx(void* ctx) {
    std::unique_lock lk{cq_mu};
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{1};
    const auto busy = [&] {
      for (const TxRecord& r : recs) {
        if (r.in_use && r.ctx == ctx) return true;
      }
      return false;
    };
    while (busy()) {
      reap_locked();  // self-service: no dependence on a live rx thread
      if (!busy()) break;
      if (std::chrono::steady_clock::now() >= deadline) {
        // Wedged ring: orphan the records so close() never hangs.  The
        // pins they cover leak until the buffer dies — acceptable on this
        // already-broken channel.
        for (TxRecord& r : recs) {
          if (r.in_use && r.ctx == ctx) {
            r.done = nullptr;
            r.ctx = nullptr;
          }
        }
        break;
      }
      cq_cv.wait_for(lk, std::chrono::milliseconds{1});
    }
  }

  ~Impl() {
    if (ring_fd < 0) return;
    // Synchronously cancel the armed recvmsg SQE so the kernel is done
    // with the slab/arena buffers before we release them.  No feature
    // guard: IORING_REGISTER_SYNC_CANCEL shipped with IORING_RECV_MULTISHOT
    // (6.0 uapi), which UDTR_HAVE_URING already requires — and it is an
    // enum, so `#if defined` would always be false.  Older kernels answer
    // -EINVAL and the reap loop below absorbs the wait.
    io_uring_sync_cancel_reg creg{};
    creg.flags = IORING_ASYNC_CANCEL_ANY;
    creg.timeout.tv_sec = 0;
    creg.timeout.tv_nsec = 100000000;  // 100ms
    uring_register(ring_fd, IORING_REGISTER_SYNC_CANCEL, &creg, 1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds{100};
    for (;;) {
      {
        std::lock_guard lk{cq_mu};
        reap_locked();
      }
      if (rx_inflight.load(std::memory_order_relaxed) == 0) break;
      if (std::chrono::steady_clock::now() >= deadline) break;
      __kernel_timespec ts{};
      ts.tv_nsec = 5000000;  // 5ms
      io_uring_getevents_arg arg{};
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      uring_enter(ring_fd, 0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG,
                  &arg, sizeof arg);
    }
    if (rx_inflight.load(std::memory_order_relaxed) != 0) {
      // The kernel may still pick provided buffers and write into them:
      // leak the arena, the slab reference and the registered ring memory
      // instead of risking use-after-free.  This path needs a broken ring
      // and never fires in practice.
      (void)new std::vector<std::uint8_t>(std::move(rx_arena));
      (void)new std::shared_ptr<RecvSlab>(slab);
      br = nullptr;  // intentionally leaked with the ring registration
    } else {
      release_rx_bufs();
      if (br != nullptr) {
        io_uring_buf_reg reg{};
        reg.bgid = 0;
        uring_register(ring_fd, IORING_UNREGISTER_PBUF_RING, &reg, 1);
        std::free(br);
        br = nullptr;
      }
    }
    ::munmap(sqes, sqes_len);
    ::munmap(ring_ptr, ring_len);
    ::close(ring_fd);
    ring_fd = -1;
  }
};

UringEngine::UringEngine(UdpChannel* ch) : ch_(ch) {}

UringEngine::~UringEngine() { delete impl_; }

bool UringEngine::probe() {
  static const bool ok = [] {
    if (std::getenv("UDTR_NO_URING") != nullptr) return false;
    // Feature probe is end-to-end: ring with the required features, a
    // registered provided-buffer ring, and a multishot recvmsg armed on a
    // throwaway UDP socket.  Unsupported flags fail inline at submit with
    // a CQE, so an empty CQ after the enter means the arm stuck.
    Impl im;
    if (!im.init(nullptr)) return false;
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) return false;
    // Static probe storage: ring teardown is asynchronous after close(),
    // so nothing here may unwind while the kernel can still read it.
    static io_uring_buf_ring* pbr = static_cast<io_uring_buf_ring*>(
        alloc_ring_pages(8 * sizeof(io_uring_buf)));
    static std::uint8_t pbuf[2048];
    static msghdr pmsg{};
    if (pbr == nullptr) {
      ::close(fd);
      return false;
    }
    std::memset(pbr, 0, 8 * sizeof(io_uring_buf));
    io_uring_buf_reg reg{};
    reg.ring_addr = reinterpret_cast<std::uint64_t>(pbr);
    reg.ring_entries = 8;
    reg.bgid = 0;
    if (uring_register(im.ring_fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
      ::close(fd);
      return false;
    }
    // Entry 0 indexed off the base, not via pbr->bufs: the uapi
    // __DECLARE_FLEX_ARRAY pads bufs[] to offset 8 under C++ (see
    // Impl::ring_entry); the kernel reads entries at offset 0.
    io_uring_buf* e0 = reinterpret_cast<io_uring_buf*>(pbr);
    e0->addr = reinterpret_cast<std::uint64_t>(pbuf);
    e0->len = sizeof pbuf;
    e0->bid = 0;
    __atomic_store_n(&pbr->tail, std::uint16_t{1}, __ATOMIC_RELEASE);
    pmsg.msg_namelen = kRxNameCap;
    pmsg.msg_controllen = kRxCtrlCap;
    {
      std::lock_guard lk{im.sq_mu};
      io_uring_sqe* sqe = im.get_sqe();
      if (sqe == nullptr) {
        ::close(fd);
        return false;
      }
      sqe->opcode = IORING_OP_RECVMSG;
      sqe->fd = fd;
      sqe->addr = reinterpret_cast<std::uint64_t>(&pmsg);
      sqe->len = 1;
      sqe->ioprio = IORING_RECV_MULTISHOT;
      sqe->flags = IOSQE_BUFFER_SELECT;
      sqe->buf_group = 0;
      im.publish(1);
    }
    if (uring_enter(im.ring_fd, 1, 0, 0, nullptr, 0) != 1) {
      ::close(fd);
      return false;
    }
    const unsigned head = __atomic_load_n(im.cq_head, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(im.cq_tail, __ATOMIC_ACQUIRE);
    ::close(fd);  // Impl dtor cancels the armed op and closes the ring
    return head == tail;
  }();
  return ok;
}

bool UringEngine::init() {
  auto impl = std::make_unique<Impl>();
  if (!impl->init(ch_)) return false;
  impl_ = impl.release();
  return true;
}

UdpChannel::RecvBatchResult UringEngine::rx_round(UdpChannel::RxState& st,
                                                  UdpChannel::RxSinkFn sink,
                                                  void* ctx) {
  return impl_->rx_round(st, sink, ctx);
}

bool UringEngine::send_gather_async(
    const Endpoint& dst, std::span<const UdpChannel::TxDatagram> dgrams,
    bool allow_gso, UdpChannel::TxDoneFn done, void* ctx, std::uint64_t token) {
  return impl_->send_gather_async(dst, dgrams, allow_gso, done, ctx, token);
}

void UringEngine::drain_tx(void* ctx) { impl_->drain_tx(ctx); }

std::uint64_t UringEngine::rx_backpressure() const {
  return impl_ != nullptr
             ? impl_->rx_backpressure.load(std::memory_order_relaxed)
             : 0;
}

// ------------------------------------------------------------- FileUring ---
//
// Single-owner positional READ/WRITE ring.  The same three syscalls as the
// UDP engine above, none of its machinery: no provided buffers, no multishot,
// no cross-thread reaping — the owning pipeline thread queues a batch,
// submits, and waits for its own CQEs.

struct FileUring::Impl {
  int ring_fd = -1;
  std::uint8_t* ring_ptr = nullptr;
  std::size_t ring_len = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned* sq_array = nullptr;
  unsigned sq_mask = 0;
  unsigned sq_entries = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  io_uring_cqe* cqes = nullptr;
  unsigned cq_mask = 0;
  unsigned tail_local = 0;
  unsigned unsubmitted = 0;

  bool init(unsigned entries) {
    io_uring_params p{};
    ring_fd = uring_setup(entries, &p);
    if (ring_fd < 0) return false;
    // SINGLE_MMAP keeps the mapping logic shared with the engine; READ /
    // WRITE opcodes predate it, so the feature bit is the whole gate.
    if ((p.features & IORING_FEAT_SINGLE_MMAP) == 0) {
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    sq_entries = p.sq_entries;
    ring_len = std::max<std::size_t>(
        p.sq_off.array + p.sq_entries * sizeof(unsigned),
        p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe));
    void* m = ::mmap(nullptr, ring_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (m == MAP_FAILED) {
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    ring_ptr = static_cast<std::uint8_t*>(m);
    sqes_len = p.sq_entries * sizeof(io_uring_sqe);
    m = ::mmap(nullptr, sqes_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES);
    if (m == MAP_FAILED) {
      ::munmap(ring_ptr, ring_len);
      ring_ptr = nullptr;
      ::close(ring_fd);
      ring_fd = -1;
      return false;
    }
    sqes = static_cast<io_uring_sqe*>(m);
    sq_head = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.head);
    sq_tail = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.tail);
    sq_array = reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.array);
    sq_mask = *reinterpret_cast<unsigned*>(ring_ptr + p.sq_off.ring_mask);
    cq_head = reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.head);
    cq_tail = reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.tail);
    cq_mask = *reinterpret_cast<unsigned*>(ring_ptr + p.cq_off.ring_mask);
    cqes = reinterpret_cast<io_uring_cqe*>(ring_ptr + p.cq_off.cqes);
    tail_local = __atomic_load_n(sq_tail, __ATOMIC_ACQUIRE);
    return true;
  }

  io_uring_sqe* get_sqe() {
    const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
    if (tail_local - head >= sq_entries) return nullptr;
    const unsigned idx = tail_local & sq_mask;
    ++tail_local;
    io_uring_sqe* sqe = &sqes[idx];
    std::memset(sqe, 0, sizeof *sqe);
    sq_array[idx] = idx;
    return sqe;
  }

  bool push(std::uint8_t opcode, int fd, const void* buf, std::size_t len,
            std::uint64_t off, std::uint64_t token) {
    io_uring_sqe* sqe = get_sqe();
    if (sqe == nullptr) return false;
    sqe->opcode = opcode;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(buf);
    sqe->len = static_cast<unsigned>(len);
    sqe->off = off;
    sqe->user_data = token;
    __atomic_store_n(sq_tail, tail_local, __ATOMIC_RELEASE);
    ++unsubmitted;
    return true;
  }

  std::size_t reap(std::vector<FileUring::Completion>& out) {
    std::size_t n = 0;
    unsigned head = __atomic_load_n(cq_head, __ATOMIC_RELAXED);
    const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes[head & cq_mask];
      out.push_back(FileUring::Completion{cqe.user_data, cqe.res});
      ++head;
      ++n;
    }
    __atomic_store_n(cq_head, head, __ATOMIC_RELEASE);
    return n;
  }

  void shutdown() {
    if (ring_fd < 0) return;
    ::munmap(sqes, sqes_len);
    ::munmap(ring_ptr, ring_len);
    ::close(ring_fd);
    ring_fd = -1;
  }
};

FileUring::~FileUring() { close(); }

bool FileUring::open(unsigned entries) {
  if (impl_ != nullptr) return true;
  if (std::getenv("UDTR_NO_URING") != nullptr) return false;
  auto impl = std::make_unique<Impl>();
  if (!impl->init(entries)) return false;
  impl_ = impl.release();
  return true;
}

bool FileUring::push_read(int fd, void* buf, std::size_t len, std::uint64_t off,
                          std::uint64_t token) {
  return impl_ != nullptr &&
         impl_->push(IORING_OP_READ, fd, buf, len, off, token);
}

bool FileUring::push_write(int fd, const void* buf, std::size_t len,
                           std::uint64_t off, std::uint64_t token) {
  return impl_ != nullptr &&
         impl_->push(IORING_OP_WRITE, fd, buf, len, off, token);
}

bool FileUring::push_writev(int fd, const struct iovec* iov, unsigned nr_vecs,
                            std::uint64_t off, std::uint64_t token) {
  return impl_ != nullptr &&
         impl_->push(IORING_OP_WRITEV, fd, iov, nr_vecs, off, token);
}

bool FileUring::submit_and_wait(unsigned min_complete,
                                std::vector<Completion>& out) {
  if (impl_ == nullptr) return false;
  std::size_t have = impl_->reap(out);
  while (true) {
    const unsigned to_submit = impl_->unsubmitted;
    const unsigned want =
        min_complete > have ? static_cast<unsigned>(min_complete - have) : 0;
    if (to_submit == 0 && want == 0) return true;
    const int ret = uring_enter(impl_->ring_fd, to_submit, want,
                                want > 0 ? IORING_ENTER_GETEVENTS : 0, nullptr,
                                0);
    if (ret < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    impl_->unsubmitted -= std::min<unsigned>(impl_->unsubmitted,
                                             static_cast<unsigned>(ret));
    have += impl_->reap(out);
    if (have >= min_complete && impl_->unsubmitted == 0) return true;
  }
}

void FileUring::close() {
  if (impl_ == nullptr) return;
  impl_->shutdown();
  delete impl_;
  impl_ = nullptr;
}

}  // namespace udtr::udt

#else  // !UDTR_HAVE_URING

namespace udtr::udt {

struct UringEngine::Impl {};

UringEngine::UringEngine(UdpChannel* ch) : ch_(ch) {}
UringEngine::~UringEngine() = default;
bool UringEngine::probe() { return false; }
bool UringEngine::init() { return false; }

UdpChannel::RecvBatchResult UringEngine::rx_round(UdpChannel::RxState& st,
                                                  UdpChannel::RxSinkFn sink,
                                                  void* ctx) {
  (void)st;
  (void)sink;
  (void)ctx;
  return {RecvStatus::kTimeout, 0};
}

bool UringEngine::send_gather_async(
    const Endpoint& dst, std::span<const UdpChannel::TxDatagram> dgrams,
    bool allow_gso, UdpChannel::TxDoneFn done, void* ctx, std::uint64_t token) {
  (void)dst;
  (void)dgrams;
  (void)allow_gso;
  (void)done;
  (void)ctx;
  (void)token;
  return false;
}

void UringEngine::drain_tx(void* ctx) { (void)ctx; }

std::uint64_t UringEngine::rx_backpressure() const { return 0; }

struct FileUring::Impl {};

FileUring::~FileUring() = default;
bool FileUring::open(unsigned entries) {
  (void)entries;
  return false;
}
bool FileUring::push_read(int fd, void* buf, std::size_t len, std::uint64_t off,
                          std::uint64_t token) {
  (void)fd;
  (void)buf;
  (void)len;
  (void)off;
  (void)token;
  return false;
}
bool FileUring::push_write(int fd, const void* buf, std::size_t len,
                           std::uint64_t off, std::uint64_t token) {
  (void)fd;
  (void)buf;
  (void)len;
  (void)off;
  (void)token;
  return false;
}
bool FileUring::push_writev(int fd, const struct iovec* iov, unsigned nr_vecs,
                            std::uint64_t off, std::uint64_t token) {
  (void)fd;
  (void)iov;
  (void)nr_vecs;
  (void)off;
  (void)token;
  return false;
}
bool FileUring::submit_and_wait(unsigned min_complete,
                                std::vector<Completion>& out) {
  (void)min_complete;
  (void)out;
  return false;
}
void FileUring::close() {}

}  // namespace udtr::udt

#endif  // UDTR_HAVE_URING
