// io_uring datapath engine behind UdpChannel (IoBackend::kUring).
//
// One ring per channel, built on the raw io_uring syscalls (setup / enter /
// register — no liburing):
//
//   rx: one multishot recvmsg SQE fed by a registered provided-buffer ring
//       whose buffers are refcounted RecvSlab slots (arena storage when the
//       caller has no slab).  Each CQE resolves to the buffer id the kernel
//       picked, is fault-filtered per datagram and handed to the caller's
//       sink; the id is then recycled onto the ring with a fresh slab slot
//       (consumers may still hold the delivered one).  When the ring runs
//       dry the kernel reports ENOBUFS and datagrams wait in the socket
//       buffer — backpressure, not drops.  A busy socket reaps many
//       datagrams per io_uring_enter, and reaping posted CQEs is
//       syscall-free.
//   tx: send_gather_async turns one pacing batch into sendmsg SQEs (GSO
//       runs coalesced exactly like the mmsg path) whose iovecs point into
//       pinned SndBuffer chunks; the batch's done-callback fires when the
//       last CQE is reaped, which is when the caller may unpin.
//
// Locking: sq_mu guards SQE allocation and tail publication; cq_mu guards
// CQ reaping plus tx-record and rx-slot bookkeeping.  cq_mu is taken before
// sq_mu (reap → re-arm) and before any socket's state_mu_ (tx done
// callbacks); no code path takes them in the other order.
//
// On kernels without the required io_uring features (EXT_ARG, NODROP,
// SINGLE_MMAP) — or with UDTR_NO_URING set — probe() reports false and the
// channel stays on the mmsg backend.
#pragma once

#include <cstdint>
#include <span>

#include "udt/channel.hpp"

namespace udtr::udt {

class UringEngine {
 public:
  explicit UringEngine(UdpChannel* ch);
  ~UringEngine();
  UringEngine(const UringEngine&) = delete;
  UringEngine& operator=(const UringEngine&) = delete;

  // Process-wide cached probe: can a ring with the features we rely on be
  // created here (and is UDTR_NO_URING unset)?
  [[nodiscard]] static bool probe();

  // Builds the ring for ch's fd.  False on failure (caller stays on mmsg).
  [[nodiscard]] bool init();

  UdpChannel::RecvBatchResult rx_round(UdpChannel::RxState& st,
                                       UdpChannel::RxSinkFn sink, void* ctx);
  bool send_gather_async(const Endpoint& dst,
                         std::span<const UdpChannel::TxDatagram> dgrams,
                         bool allow_gso, UdpChannel::TxDoneFn done, void* ctx,
                         std::uint64_t token);
  void drain_tx(void* ctx);

  // ENOBUFS completions observed: each one is a stretch where the provided
  // ring ran dry and arrivals backed up in the socket buffer.
  [[nodiscard]] std::uint64_t rx_backpressure() const;

 private:
  struct Impl;       // all ring state; opaque so <linux/io_uring.h> stays
  Impl* impl_ = nullptr;  // out of every other translation unit
  UdpChannel* ch_;
};

}  // namespace udtr::udt
