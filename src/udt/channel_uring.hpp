// io_uring datapath engine behind UdpChannel (IoBackend::kUring).
//
// One ring per channel, built on the raw io_uring syscalls (setup / enter /
// register — no liburing):
//
//   rx: one multishot recvmsg SQE fed by a registered provided-buffer ring
//       whose buffers are refcounted RecvSlab slots (arena storage when the
//       caller has no slab).  Each CQE resolves to the buffer id the kernel
//       picked, is fault-filtered per datagram and handed to the caller's
//       sink; the id is then recycled onto the ring with a fresh slab slot
//       (consumers may still hold the delivered one).  When the ring runs
//       dry the kernel reports ENOBUFS and datagrams wait in the socket
//       buffer — backpressure, not drops.  A busy socket reaps many
//       datagrams per io_uring_enter, and reaping posted CQEs is
//       syscall-free.
//   tx: send_gather_async turns one pacing batch into sendmsg SQEs (GSO
//       runs coalesced exactly like the mmsg path) whose iovecs point into
//       pinned SndBuffer chunks; the batch's done-callback fires when the
//       last CQE is reaped, which is when the caller may unpin.
//
// Locking: sq_mu guards SQE allocation and tail publication; cq_mu guards
// CQ reaping plus tx-record and rx-slot bookkeeping.  cq_mu is taken before
// sq_mu (reap → re-arm) and before any socket's state_mu_ (tx done
// callbacks); no code path takes them in the other order.
//
// On kernels without the required io_uring features (EXT_ARG, NODROP,
// SINGLE_MMAP) — or with UDTR_NO_URING set — probe() reports false and the
// channel stays on the mmsg backend.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "udt/channel.hpp"

namespace udtr::udt {

class UringEngine {
 public:
  explicit UringEngine(UdpChannel* ch);
  ~UringEngine();
  UringEngine(const UringEngine&) = delete;
  UringEngine& operator=(const UringEngine&) = delete;

  // Process-wide cached probe: can a ring with the features we rely on be
  // created here (and is UDTR_NO_URING unset)?
  [[nodiscard]] static bool probe();

  // Builds the ring for ch's fd.  False on failure (caller stays on mmsg).
  [[nodiscard]] bool init();

  UdpChannel::RecvBatchResult rx_round(UdpChannel::RxState& st,
                                       UdpChannel::RxSinkFn sink, void* ctx);
  bool send_gather_async(const Endpoint& dst,
                         std::span<const UdpChannel::TxDatagram> dgrams,
                         bool allow_gso, UdpChannel::TxDoneFn done, void* ctx,
                         std::uint64_t token);
  void drain_tx(void* ctx);

  // ENOBUFS completions observed: each one is a stretch where the provided
  // ring ran dry and arrivals backed up in the socket buffer.
  [[nodiscard]] std::uint64_t rx_backpressure() const;

 private:
  struct Impl;       // all ring state; opaque so <linux/io_uring.h> stays
  Impl* impl_ = nullptr;  // out of every other translation unit
  UdpChannel* ch_;
};

// Minimal raw-syscall io_uring for regular-file READ/WRITE batches — the
// disk half of the sendfile/recvfile pipeline (file_pipeline.hpp).  Unlike
// UringEngine this ring is single-owner: the FileSource reader thread or
// FileSink writer thread queues a batch of positional ops, submits, and
// reaps its own completions — no locks, no callbacks, no multishot.  Where
// the kernel (or UDTR_NO_URING) rules io_uring out, open() fails and the
// pipeline stages fall back to pread/pwrite.
class FileUring {
 public:
  FileUring() = default;
  ~FileUring();
  FileUring(const FileUring&) = delete;
  FileUring& operator=(const FileUring&) = delete;

  // Builds a ring with `entries` SQ slots.  False when io_uring is
  // unavailable (stub build, kernel refusal, UDTR_NO_URING).
  [[nodiscard]] bool open(unsigned entries);
  [[nodiscard]] bool is_open() const { return impl_ != nullptr; }

  // Queue one positional op; `token` comes back with its completion.
  // False when the SQ is full (submit first) or the ring is closed.
  bool push_read(int fd, void* buf, std::size_t len, std::uint64_t off,
                 std::uint64_t token);
  bool push_write(int fd, const void* buf, std::size_t len, std::uint64_t off,
                  std::uint64_t token);
  // Gathered positional write (IORING_OP_WRITEV).  The iovec array must
  // stay valid until the op completes — with the synchronous
  // submit_and_wait below, a stack array on the caller's frame suffices.
  bool push_writev(int fd, const struct iovec* iov, unsigned nr_vecs,
                   std::uint64_t off, std::uint64_t token);

  struct Completion {
    std::uint64_t token = 0;
    std::int32_t res = 0;  // bytes transferred, or -errno
  };
  // Submits everything queued and blocks until at least `min_complete`
  // completions (counting previously pending ones) have been appended to
  // `out`.  False on a submit error — the caller should fall back to
  // pread/pwrite for the batch.
  bool submit_and_wait(unsigned min_complete, std::vector<Completion>& out);

  void close();

 private:
  struct Impl;
  Impl* impl_ = nullptr;
};

}  // namespace udtr::udt
