#include "udt/congestion.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cc/tcp_cavoid.hpp"
#include "cc/tcp_cavoid2.hpp"

namespace udtr::udt {

namespace {

// ------------------------------------------------------------- default ---
//
// The paper's native controller, unchanged: every event and output is a
// straight delegation to cc::UdtCc, so a socket built with the default name
// behaves byte-for-byte like the pre-interface hardwired member.
class UdtNativeCc final : public CongestionControl {
 public:
  explicit UdtNativeCc(const CcConfig& cfg)
      : cc_([&] {
          cc::UdtCcConfig c;
          c.mss_bytes = cfg.mss_bytes;
          c.syn_s = cfg.syn_s;
          c.window_control = cfg.window_control;
          c.max_window = cfg.max_window;
          c.seed = cfg.seed;
          return c;
        }()) {}

  void set_now(double now_s) override { cc_.set_now(now_s); }
  void on_ack(const cc::AckInfo& info) override { cc_.on_ack(info); }
  void on_nak(udtr::SeqNo biggest_loss, udtr::SeqNo largest_sent) override {
    cc_.on_nak(biggest_loss, largest_sent);
  }
  void on_timeout() override { cc_.on_timeout(); }
  void on_delay_warning() override { cc_.on_delay_warning(); }

  [[nodiscard]] double pkt_send_period_s() const override {
    return cc_.pkt_send_period_s();
  }
  [[nodiscard]] double window_packets() const override {
    return cc_.window_packets();
  }
  [[nodiscard]] double freeze_deadline_s() const override {
    return cc_.freeze_deadline_s();
  }
  [[nodiscard]] double last_rtt_s() const override { return cc_.last_rtt_s(); }
  [[nodiscard]] const char* name() const override { return "udt"; }

 private:
  cc::UdtCc cc_;
};

// ----------------------------------------------------- TCP-law adapters ---
//
// Ports the simulator's TcpCongAvoid strategies (tcp_cavoid*.hpp) onto the
// real socket's event stream.  The strategies define per-ACK window growth
// and the on-loss decrease; this adapter supplies what a real TCP sender
// would around them: slow start with an ssthresh, RTT tracking for the
// delay-aware strategies (Vegas/FAST), one decrease per congestion event
// (tracked exactly like UdtCc's epoch bookkeeping, by the largest sequence
// sent at the previous decrease), and RTO-style collapse on timeout.
//
// Our ACKs are SYN-clocked cumulative reports, not per-segment, so the
// strategy's per-ACK step is scaled by the number of packets the ACK newly
// covers — the closed-form equivalent of applying it once per segment.
//
// Pacing: the sender stays window-limited (cwnd bounds in-flight), and the
// period spreads the window over one smoothed RTT (cwnd/srtt packets per
// second) so a window's worth never leaves as a line-rate burst.  Until an
// RTT is measured the period is effectively zero and the window alone
// governs, exactly as UdtCc's slow start behaves.
class TcpStyleCc final : public CongestionControl {
 public:
  TcpStyleCc(std::unique_ptr<cc::TcpCongAvoid> strategy, const CcConfig& cfg)
      : cfg_(cfg),
        strategy_(std::move(strategy)),
        name_(strategy_->name()),
        ssthresh_(cfg.max_window) {}

  void set_now(double now_s) override { now_s_ = now_s; }

  void on_ack(const cc::AckInfo& info) override {
    if (info.rtt_s > 0.0) {
      srtt_ = srtt_ <= 0.0 ? info.rtt_s : srtt_ * 0.875 + info.rtt_s * 0.125;
      base_rtt_ = std::min(base_rtt_, info.rtt_s);
    }
    avail_ = info.avail_buffer_pkts;
    const std::int32_t acked =
        ack_seen_ ? udtr::SeqNo::offset(last_ack_seq_, info.ack_seq) : 1;
    last_ack_seq_ = info.ack_seq;
    ack_seen_ = true;
    if (acked <= 0) return;  // host gates these out; keep the belt anyway

    if (slow_start_) {
      cwnd_ += acked;
      if (cwnd_ >= ssthresh_) slow_start_ = false;
    } else {
      cc::CaContext ctx;
      ctx.srtt_s = srtt_;
      ctx.base_rtt_s = base_rtt_ < std::numeric_limits<double>::max()
                           ? base_rtt_
                           : 0.0;
      const double next = strategy_->wants_context()
                              ? strategy_->on_ack_ctx(cwnd_, ctx)
                              : strategy_->on_ack(cwnd_);
      // One strategy step is the per-segment-ACK update; this cumulative
      // ACK stands for `acked` of them.
      cwnd_ += (next - cwnd_) * acked;
    }
    cwnd_ = std::clamp(cwnd_, 2.0, cfg_.max_window);
  }

  void on_nak(udtr::SeqNo biggest_loss, udtr::SeqNo largest_sent) override {
    // One multiplicative decrease per congestion event: a NAK naming only
    // packets sent before the previous decrease is the same loss burst
    // still being repaired, not a new signal (§6's continuous-loss lesson,
    // same rule as UdtCc's epoch tracking).
    const bool new_event =
        !any_decrease_ || udtr::SeqNo::cmp(biggest_loss, last_dec_seq_) > 0;
    if (!new_event) return;
    any_decrease_ = true;
    last_dec_seq_ = largest_sent;
    slow_start_ = false;
    cwnd_ = std::max(strategy_->on_loss(cwnd_), 2.0);
    ssthresh_ = cwnd_;
  }

  void on_timeout() override {
    // RTO semantics: collapse to a minimal window and slow-start back up to
    // half the pre-timeout window.
    ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
    cwnd_ = 2.0;
    slow_start_ = true;
  }

  void on_delay_warning() override {
    // Early (pre-loss) congestion signal: one mild decrease per RTT.
    const double rtt = last_rtt_s();
    if (last_delay_warn_s_ >= 0.0 && now_s_ - last_delay_warn_s_ < rtt) return;
    last_delay_warn_s_ = now_s_;
    cwnd_ = std::max(cwnd_ * 0.875, 2.0);
  }

  [[nodiscard]] double pkt_send_period_s() const override {
    if (srtt_ <= 0.0) return 1e-6;  // window-limited until an RTT exists
    return std::clamp(srtt_ / std::max(cwnd_, 1.0), 1e-9, 10.0);
  }
  [[nodiscard]] double window_packets() const override {
    const double w = std::min(cwnd_, cfg_.max_window);
    return cfg_.window_control ? std::min(w, avail_) : w;
  }
  [[nodiscard]] double last_rtt_s() const override {
    return srtt_ > 0.0 ? srtt_ : 0.1;
  }
  [[nodiscard]] const char* name() const override { return name_.c_str(); }

 private:
  CcConfig cfg_;
  std::unique_ptr<cc::TcpCongAvoid> strategy_;
  std::string name_;
  double cwnd_ = 16.0;
  double ssthresh_;
  bool slow_start_ = true;
  double srtt_ = 0.0;
  double base_rtt_ = std::numeric_limits<double>::max();
  double avail_ = 1e9;
  udtr::SeqNo last_ack_seq_{};
  bool ack_seen_ = false;
  udtr::SeqNo last_dec_seq_{};
  bool any_decrease_ = false;
  double now_s_ = 0.0;
  double last_delay_warn_s_ = -1.0;
};

}  // namespace

std::unique_ptr<CongestionControl> make_congestion(const std::string& name,
                                                   const CcConfig& cfg) {
  if (name.empty() || name == "udt") {
    return std::make_unique<UdtNativeCc>(cfg);
  }
  for (const std::string& known : congestion_names()) {
    if (name == known && name != "udt") {
      return std::make_unique<TcpStyleCc>(cc::make_cong_avoid(name), cfg);
    }
  }
  return nullptr;
}

const std::vector<std::string>& congestion_names() {
  static const std::vector<std::string> names{
      "udt", "reno-sack", "scalable", "highspeed", "bic", "vegas", "fast"};
  return names;
}

}  // namespace udtr::udt
