// Pluggable congestion control for the real socket (paper §3.3–§3.4, §6).
//
// UDT's defining extensibility feature is its configurable congestion
// control hook (the CCC virtual class in UDT4): the protocol machinery —
// reliability, pacing, flow control, timers — is fixed, while the control
// laws that turn ACK/NAK/timeout events into a sending period and a window
// are swappable per socket.  This header is that hook for our stack.
//
// Contract (see DESIGN.md §12):
//   * Every method is called with the owning socket's state_mu_ held, so an
//     implementation needs no locking of its own and may keep plain state.
//   * The host calls set_now(now_s) before delivering any event; now_s is
//     seconds on the socket's private monotonic clock (epoch = connection
//     start).  Implementations must not read wall clocks themselves.
//   * on_ack is only invoked for ACKs that ADVANCE snd_una (light-ACK
//     semantics): duplicate or reordered-stale ACKs never reach the
//     controller, so stale receiver statistics cannot drive a rate change.
//   * Outputs are sampled after each event: pkt_send_period_s() paces the
//     sender (§4.5), window_packets() bounds in-flight NEW data (loss-list
//     retransmissions are never window-gated), freeze_deadline_s() pauses
//     the sender until the given instant (the §3.3 one-SYN freeze).  The
//     host additionally caps the effective window by the receiver's
//     advertised free buffer — flow control belongs to the socket, not to
//     the controller.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cc/udt_cc.hpp"
#include "common/seqno.hpp"

namespace udtr::udt {

// Host parameters handed to a congestion-control factory.  Mirrors what the
// socket historically fed cc::UdtCc: the wire MSS (payload + 16-byte
// header), the SYN constant, and the receiver-buffer-derived window cap.
struct CcConfig {
  int mss_bytes = 1500 + 16;
  double syn_s = 0.01;
  bool window_control = true;
  double max_window = 1e8;
  std::uint64_t seed = 1;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // --- host clock ---------------------------------------------------------
  virtual void set_now(double now_s) = 0;

  // --- events (state_mu_ held; set_now called first) ----------------------
  virtual void on_ack(const cc::AckInfo& info) = 0;
  virtual void on_nak(udtr::SeqNo biggest_loss, udtr::SeqNo largest_sent) = 0;
  virtual void on_timeout() = 0;
  // Receiver-side delay trend warning (PCT/PDT, §6).  Real sockets deliver
  // it when the data-RECEIVING peer runs with SocketOptions::delay_warnings
  // (its receive path feeds a DelayTrendDetector and sends kDelayWarn); with
  // that option off — the default — the event never fires on real sockets.
  // The netsim host delivers it in delay_trend_mode.  Optional: loss-driven
  // controllers ignore it.
  virtual void on_delay_warning() {}

  // --- outputs ------------------------------------------------------------
  [[nodiscard]] virtual double pkt_send_period_s() const = 0;
  [[nodiscard]] virtual double window_packets() const = 0;
  // Absolute instant (same clock as set_now) until which the sender must not
  // transmit; anything <= now means "not frozen".  The pacer/timer wheel
  // schedules the resume at exactly this deadline.
  [[nodiscard]] virtual double freeze_deadline_s() const { return -1.0; }
  [[nodiscard]] bool frozen_at(double now_s) const {
    return now_s < freeze_deadline_s();
  }
  [[nodiscard]] virtual double last_rtt_s() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;
};

// Factory signature for custom controllers supplied through
// SocketOptions::congestion_factory.
using CcFactory =
    std::function<std::unique_ptr<CongestionControl>(const CcConfig&)>;

// Builds one of the named built-in controllers; nullptr for unknown names.
//   ""/"udt"    — paper §3.3–3.4 AIMD/RBPP (cc::UdtCc), the default; the
//                 only controller with the one-SYN freeze semantics.
//   "reno-sack" — standard TCP AIMD on SYN-clocked cumulative ACKs.
//   "scalable"  — Scalable TCP (MIMD) for high-BDP paths.
//   "highspeed" — HighSpeed TCP (RFC 3649).
//   "bic"       — Bic TCP binary-search probing.
//   "vegas"     — delay-based: keeps alpha..beta packets queued (srtt vs
//                 base RTT), backs off before loss.
//   "fast"      — FAST-style equation-based delay controller.
[[nodiscard]] std::unique_ptr<CongestionControl> make_congestion(
    const std::string& name, const CcConfig& cfg);

// The names make_congestion accepts (excluding the "" alias for "udt").
[[nodiscard]] const std::vector<std::string>& congestion_names();

}  // namespace udtr::udt
