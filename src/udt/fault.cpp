#include "udt/fault.hpp"

#include <algorithm>

namespace udtr::udt {

FaultInjector::FaultInjector(FaultConfig cfg) : rng_(cfg.seed) {
  send_.prof = cfg.send;
  recv_.prof = cfg.recv;
}

void FaultInjector::schedule_outage(std::chrono::milliseconds delay,
                                    std::chrono::milliseconds duration) {
  std::lock_guard lk{mu_};
  const auto start = std::chrono::steady_clock::now() + delay;
  outage_ = {start, start + duration};
}

void FaultInjector::set_black_hole(bool on) {
  std::lock_guard lk{mu_};
  black_hole_ = on;
}

bool FaultInjector::black_hole() const {
  std::lock_guard lk{mu_};
  return black_hole_;
}

FaultStats FaultInjector::stats(FaultDir dir) const {
  std::lock_guard lk{mu_};
  return dir == FaultDir::kSend ? send_.stats : recv_.stats;
}

bool FaultInjector::outage_active_locked() {
  if (black_hole_) return true;
  if (!outage_) return false;
  const auto now = std::chrono::steady_clock::now();
  if (now >= outage_->second) {
    outage_.reset();  // over; stop checking the clock for every datagram
    return false;
  }
  return now >= outage_->first;
}

bool FaultInjector::chance_locked(double p) {
  if (p <= 0.0) return false;
  return std::uniform_real_distribution<double>{0.0, 1.0}(rng_) < p;
}

std::size_t FaultInjector::mutate_locked(DirState& d,
                                         std::span<std::uint8_t> b) {
  std::size_t len = b.size();
  if (len > 0 && chance_locked(d.prof.corrupt_p)) {
    const auto bit =
        std::uniform_int_distribution<std::size_t>{0, len * 8 - 1}(rng_);
    b[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
    ++d.stats.corrupted;
  }
  if (len > 0 && chance_locked(d.prof.truncate_p)) {
    len = std::uniform_int_distribution<std::size_t>{0, len - 1}(rng_);
    ++d.stats.truncated;
  }
  return len;
}

void FaultInjector::on_send(
    std::span<const std::uint8_t> data,
    const std::function<void(std::span<const std::uint8_t>)>& emit) {
  std::lock_guard lk{mu_};
  ++send_.stats.seen;

  // Age reorder holds: datagrams overtaken by enough successors get out now,
  // *after* the current one (that is what makes it reordering).
  std::vector<std::vector<std::uint8_t>> released;
  for (auto& h : send_.held) --h.release_after;
  while (!send_.held.empty() && send_.held.front().release_after <= 0) {
    released.push_back(std::move(send_.held.front().dgram.bytes));
    send_.held.pop_front();
  }

  const bool outage = outage_active_locked();
  const FaultProfile& p = send_.prof;
  const bool applies = !p.data_only || data.size() >= p.data_min_bytes;

  if (outage) {
    ++send_.stats.outage_dropped;
    send_.stats.outage_dropped += released.size();
    return;  // the wire is dead: current and released alike vanish
  }

  if (applies && chance_locked(p.drop_p)) {
    ++send_.stats.dropped;
  } else if (applies && chance_locked(p.reorder_p)) {
    Held h;
    h.dgram.bytes.assign(data.begin(), data.end());
    h.release_after = std::max(1, p.reorder_hold);
    send_.held.push_back(std::move(h));
    ++send_.stats.reordered;
  } else {
    if (applies &&
        (p.corrupt_p > 0.0 || p.truncate_p > 0.0 || p.dup_p > 0.0)) {
      // The staging copy is unavoidable (the source span must stay
      // pristine for retransmission) but its storage is pooled per
      // direction, so the cost is one memcpy, not an allocation.
      send_.scratch.assign(data.begin(), data.end());
      const std::size_t len = mutate_locked(send_, send_.scratch);
      const std::span<const std::uint8_t> out{send_.scratch.data(), len};
      emit(out);
      if (chance_locked(p.dup_p)) {
        emit(out);
        ++send_.stats.duplicated;
      }
    } else {
      emit(data);
    }
  }
  for (const auto& r : released) emit(r);
}

std::optional<std::size_t> FaultInjector::filter_recv(
    std::span<std::uint8_t> data, std::uint32_t src_ip,
    std::uint16_t src_port) {
  std::lock_guard lk{mu_};
  ++recv_.stats.seen;

  for (auto& h : recv_.held) --h.release_after;
  while (!recv_.held.empty() && recv_.held.front().release_after <= 0) {
    recv_ready_.push_back(std::move(recv_.held.front().dgram));
    recv_.held.pop_front();
  }

  const FaultProfile& p = recv_.prof;
  const bool applies = !p.data_only || data.size() >= p.data_min_bytes;

  if (outage_active_locked()) {
    ++recv_.stats.outage_dropped;
    return std::nullopt;
  }
  if (applies && chance_locked(p.drop_p)) {
    ++recv_.stats.dropped;
    return std::nullopt;
  }
  if (applies && chance_locked(p.reorder_p)) {
    Held h;
    h.dgram.bytes.assign(data.begin(), data.end());
    h.dgram.src_ip = src_ip;
    h.dgram.src_port = src_port;
    h.release_after = std::max(1, p.reorder_hold);
    recv_.held.push_back(std::move(h));
    ++recv_.stats.reordered;
    return std::nullopt;
  }

  // The delivered datagram is mutated in place in the caller's receive
  // buffer — the no-fault and corrupt/truncate outcomes allocate nothing.
  std::size_t len = data.size();
  if (applies) len = mutate_locked(recv_, data);
  if (applies && chance_locked(p.dup_p)) {
    recv_ready_.push_back(ReadyDatagram{
        std::vector<std::uint8_t>(data.begin(), data.begin() + len), src_ip,
        src_port});
    ++recv_.stats.duplicated;
  }
  return len;
}

std::size_t FaultInjector::ready_recv_count() const {
  std::lock_guard lk{mu_};
  return recv_ready_.size();
}

std::optional<FaultInjector::ReadyDatagram> FaultInjector::pop_ready_recv() {
  std::lock_guard lk{mu_};
  if (recv_ready_.empty()) return std::nullopt;
  ReadyDatagram d = std::move(recv_ready_.front());
  recv_ready_.pop_front();
  return d;
}

std::shared_ptr<FaultInjector> make_loss_injector(double drop_p,
                                                  std::uint64_t seed,
                                                  std::size_t data_min_bytes) {
  FaultConfig cfg;
  cfg.send.drop_p = drop_p;
  cfg.send.data_only = true;
  cfg.send.data_min_bytes = data_min_bytes;
  cfg.seed = seed;
  return std::make_shared<FaultInjector>(cfg);
}

}  // namespace udtr::udt
