// Deterministic fault injection for the real UDP channel.
//
// The paper's library was hardened against real WAN pathologies — loss on
// both the data and control paths, reordering, duplication, corruption and
// link outages (§3.1, §3.5, §4.8).  The simulator already has LossyLink /
// ReorderLink; this is the equivalent for `UdpChannel`, so the full socket
// stack (handshake retries, NAK machinery, EXP escalation, shutdown) can be
// exercised over loopback under the same pathologies, reproducibly.
//
// A `FaultInjector` sits between the socket and the kernel in both
// directions.  Every decision draws from one explicitly seeded engine, so a
// given (seed, traffic) pair replays the same fault sequence run-to-run.
// All entry points are thread-safe: the sender and receiver threads share
// one injector.  Batched channel I/O (UdpChannel::send_batch / recv_batch)
// routes every datagram through these same per-datagram entry points, so a
// batch is a syscall optimisation, never a unit of loss.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <span>
#include <vector>

namespace udtr::udt {

enum class FaultDir { kSend, kRecv };

// Per-direction fault probabilities.  All default to "off".
struct FaultProfile {
  double drop_p = 0.0;      // silently discard the datagram
  double dup_p = 0.0;       // deliver it twice
  double reorder_p = 0.0;   // hold it back so later datagrams overtake it
  int reorder_hold = 3;     // ... released after this many pass it
  double corrupt_p = 0.0;   // flip one random bit
  double truncate_p = 0.0;  // cut to a random strict prefix
  // When set, faults apply only to datagrams of at least `data_min_bytes`
  // (data packets), leaving control traffic intact — the pre-existing
  // forward-data-loss experiment mode.
  bool data_only = false;
  std::size_t data_min_bytes = 32;
};

struct FaultStats {
  std::uint64_t seen = 0;
  std::uint64_t dropped = 0;         // probabilistic drops
  std::uint64_t outage_dropped = 0;  // drops during an outage / black hole
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t truncated = 0;
};

struct FaultConfig {
  FaultProfile send;
  FaultProfile recv;
  std::uint64_t seed = 1;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultConfig cfg);

  // Timed burst outage: every datagram in both directions is dropped during
  // [now + delay, now + delay + duration).  Models a link flap.
  void schedule_outage(std::chrono::milliseconds delay,
                       std::chrono::milliseconds duration);
  // While enabled, everything in both directions is dropped — the cheapest
  // faithful model of a peer that died or a route that vanished.
  void set_black_hole(bool on);
  [[nodiscard]] bool black_hole() const;

  // Send path.  Calls `emit` zero or more times with the datagrams that
  // should actually reach the wire (the original, a mutated copy, a
  // released-out-of-order predecessor, a duplicate...).
  void on_send(std::span<const std::uint8_t> data,
               const std::function<void(std::span<const std::uint8_t>)>& emit);

  // Recv path.  Feed a datagram fresh off the socket; corruption and
  // truncation mutate `data` IN PLACE (the caller owns the receive buffer,
  // so the steady-state deliver path costs zero heap allocations).  Returns
  // the number of bytes to deliver or nullopt if the datagram was swallowed
  // (dropped or held back for reordering).  Only the fault outcomes that
  // genuinely need owned storage (reorder holds, duplicates) copy.
  std::optional<std::size_t> filter_recv(std::span<std::uint8_t> data,
                                         std::uint32_t src_ip,
                                         std::uint16_t src_port);
  // Datagrams owed to the receiver from earlier decisions (released reorder
  // holds, duplicates).  Poll before touching the socket.
  struct ReadyDatagram {
    std::vector<std::uint8_t> bytes;
    std::uint32_t src_ip = 0;
    std::uint16_t src_port = 0;
  };
  std::optional<ReadyDatagram> pop_ready_recv();
  // Owed datagrams currently queued (not counting reorder holds still
  // waiting to be overtaken).  Batched receives drain these into leading
  // batch slots before touching the socket.
  [[nodiscard]] std::size_t ready_recv_count() const;

  [[nodiscard]] FaultStats stats(FaultDir dir) const;

 private:
  struct Held {
    ReadyDatagram dgram;
    int release_after = 0;
  };
  struct DirState {
    FaultProfile prof;
    FaultStats stats;
    std::deque<Held> held;
    // Reused mutation staging for the send path (the caller's span may be a
    // live SndBuffer chunk that a retransmission still needs pristine, so
    // send-side mutation cannot happen in place).  Capacity persists across
    // datagrams: no per-packet allocation once warmed up.
    std::vector<std::uint8_t> scratch;
  };

  [[nodiscard]] bool outage_active_locked();
  [[nodiscard]] bool chance_locked(double p);
  // Applies corruption / truncation in place on the first `len` bytes of
  // `bytes`; returns the post-truncation length and updates counters.
  std::size_t mutate_locked(DirState& d, std::span<std::uint8_t> bytes);

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  DirState send_;
  DirState recv_;
  std::deque<ReadyDatagram> recv_ready_;
  bool black_hole_ = false;
  std::optional<std::pair<std::chrono::steady_clock::time_point,
                          std::chrono::steady_clock::time_point>>
      outage_;
};

// Convenience: the legacy experiment knob — drop a fraction of outbound
// data-sized datagrams, control traffic untouched.
[[nodiscard]] std::shared_ptr<FaultInjector> make_loss_injector(
    double drop_p, std::uint64_t seed, std::size_t data_min_bytes = 32);

}  // namespace udtr::udt
