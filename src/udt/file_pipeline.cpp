// FileSource / FileSink — the disk stages of the pipelined sendfile/recvfile
// datapath (see file_pipeline.hpp for the model).
#include "udt/file_pipeline.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

namespace udtr::udt {

namespace {

// Chunk alignment (and allocation granularity): 64 KB keeps the buffers
// friendly to direct-ish I/O paths and page-aligned for io_uring.
constexpr std::size_t kChunkAlign = std::size_t{64} << 10;
// In-flight positional ops per io_uring submit on either stage.
constexpr std::size_t kFileIoBatch = 4;
// Payloads gathered into one positional write (Linux IOV_MAX).
constexpr std::size_t kSinkIovMax = 1024;
constexpr std::size_t kReadError = std::numeric_limits<std::size_t>::max();

}  // namespace

// ------------------------------------------------------------ FileSource ---

FileSource::FileSource(const std::string& path, std::uint64_t offset,
                       std::uint64_t length, const Config& cfg)
    : cfg_(cfg), throttle_(cfg.throttle_mbps) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return;
  struct stat st {};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return;
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  offset_ = offset;
  planned_ =
      offset >= size ? 0 : std::min<std::uint64_t>(length, size - offset);
  const auto quantum =
      static_cast<std::size_t>(std::max(cfg.payload_quantum, 1));
  alloc_bytes_ = std::max(cfg.chunk_bytes, quantum);
  alloc_bytes_ = (alloc_bytes_ + kChunkAlign - 1) / kChunkAlign * kChunkAlign;
  // Fill in MSS multiples so a chunk boundary never cuts a short packet
  // into the middle of a GSO run (the last chunk's tail is the only short
  // packet of the whole transfer).
  fill_bytes_ = alloc_bytes_ / quantum * quantum;
  const int nchunks = std::clamp(cfg.ring_chunks, 2, 1024);
  bufs_.reserve(static_cast<std::size_t>(nchunks));
  for (int i = 0; i < nchunks; ++i) {
    auto* b = static_cast<std::uint8_t*>(
        std::aligned_alloc(kChunkAlign, alloc_bytes_));
    if (b == nullptr) {
      for (auto* p : bufs_) std::free(p);
      bufs_.clear();
      ::close(fd);
      return;
    }
    bufs_.push_back(b);
    free_.push_back(i);
  }
  fd_ = fd;
  if (planned_ == 0) {
    eof_ = true;
    return;
  }
  if (cfg.use_uring) uring_active_ = ring_.open(16);
  reader_ = std::thread([this] { reader_loop(); });
}

FileSource::~FileSource() {
  stop();
  if (reader_.joinable()) reader_.join();
  ring_.close();
  for (auto* b : bufs_) std::free(b);
  if (fd_ >= 0) ::close(fd_);
}

std::size_t FileSource::fill_pread(int id, std::uint64_t off,
                                   std::size_t want) {
  std::size_t got = 0;
  while (got < want) {
    const ssize_t n =
        ::pread(fd_, bufs_[static_cast<std::size_t>(id)] + got, want - got,
                static_cast<off_t>(off + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return kReadError;
    }
    if (n == 0) break;  // EOF before the planned end: the file shrank
    got += static_cast<std::size_t>(n);
  }
  return got;
}

void FileSource::reader_loop() {
  std::uint64_t off = offset_;
  const std::uint64_t end = offset_ + planned_;
  struct Op {
    int id;
    std::uint64_t off;
    std::size_t want;
  };
  std::vector<Op> ops;
  std::vector<std::size_t> got;
  std::vector<FileUring::Completion> cqes;
  while (true) {
    if (off >= end) {
      std::lock_guard lk{mu_};
      eof_ = true;
      filled_cv_.notify_all();
      return;
    }
    // Claim free chunks — block for the first (ring exhaustion is the ACK
    // clock's backpressure), take up to a batch when io_uring can overlap
    // the reads.
    ops.clear();
    {
      std::unique_lock lk{mu_};
      free_cv_.wait(lk, [&] { return stop_ || !free_.empty(); });
      if (stop_) return;
      const std::size_t batch =
          uring_active_ ? std::min(free_.size(), kFileIoBatch) : 1;
      for (std::size_t i = 0; i < batch && off < end; ++i) {
        const int id = free_.back();
        free_.pop_back();
        const auto want = static_cast<std::size_t>(
            std::min<std::uint64_t>(fill_bytes_, end - off));
        ops.push_back(Op{id, off, want});
        off += want;
      }
    }
    bool err = false;
    got.assign(ops.size(), 0);
    if (uring_active_) {
      bool ok = true;
      for (std::size_t i = 0; i < ops.size() && ok; ++i) {
        ok = ring_.push_read(fd_, bufs_[static_cast<std::size_t>(ops[i].id)],
                             ops[i].want, ops[i].off, i);
      }
      cqes.clear();
      ok = ok && ring_.submit_and_wait(static_cast<unsigned>(ops.size()),
                                       cqes) &&
           cqes.size() >= ops.size();
      if (ok) {
        for (const auto& c : cqes) {
          if (c.token >= ops.size()) continue;
          if (c.res < 0) {
            err = true;
          } else {
            got[c.token] = static_cast<std::size_t>(c.res);
          }
        }
      } else {
        // Ring refused the batch: finish this transfer on pread.
        uring_active_ = false;
      }
    }
    if (!uring_active_ && !err) {
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const std::size_t n = fill_pread(ops[i].id, ops[i].off, ops[i].want);
        if (n == kReadError) {
          err = true;
          break;
        }
        got[i] = n;
        if (n < ops[i].want) break;
      }
    }
    std::size_t delivered = 0;
    for (const std::size_t g : got) {
      if (g != kReadError) delivered += g;
    }
    // The throttle IS the emulated disk: data becomes available only at
    // disk rate, before it is handed to the wire.
    throttle_.consume(delivered);
    {
      std::lock_guard lk{mu_};
      bool ended = err;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (err || ended || got[i] == 0) {
          free_.push_back(ops[i].id);
          ended = true;
          continue;
        }
        filled_.push_back(Filled{ops[i].id, ops[i].off, got[i]});
        if (got[i] < ops[i].want) ended = true;
      }
      if (err) io_error_ = true;
      if (ended || err) eof_ = true;
      filled_cv_.notify_all();
      if (ended || err) return;
    }
  }
}

std::optional<FileSource::Chunk> FileSource::next(
    std::chrono::milliseconds timeout) {
  std::unique_lock lk{mu_};
  filled_cv_.wait_for(lk, timeout, [&] {
    return stop_ || io_error_ || eof_ || !filled_.empty();
  });
  if (filled_.empty()) return std::nullopt;
  const Filled f = filled_.front();
  filled_.pop_front();
  return Chunk{bufs_[static_cast<std::size_t>(f.id)], f.len, f.offset, f.id};
}

void FileSource::recycle(int id) {
  std::lock_guard lk{mu_};
  free_.push_back(id);
  free_cv_.notify_one();
}

bool FileSource::done() {
  std::lock_guard lk{mu_};
  return filled_.empty() && (eof_ || stop_ || io_error_);
}

bool FileSource::io_error() {
  std::lock_guard lk{mu_};
  return io_error_;
}

bool FileSource::used_uring() { return ring_.is_open(); }

void FileSource::stop() {
  std::lock_guard lk{mu_};
  stop_ = true;
  free_cv_.notify_all();
  filled_cv_.notify_all();
}

// -------------------------------------------------------------- FileSink ---

FileSink::FileSink(std::string path, std::uint64_t expected_len,
                   const Config& cfg)
    : path_(std::move(path)),
      expected_(expected_len),
      cfg_(cfg),
      throttle_(cfg.throttle_mbps) {
  if (cfg.use_uring) uring_active_ = ring_.open(32);
  writer_ = std::thread([this] { writer_loop(); });
}

FileSink::~FileSink() { finish(false); }

void FileSink::release_items(std::vector<RcvBuffer::Taken>& items) {
  for (RcvBuffer::Taken& t : items) {
    if (t.slab != nullptr) {
      t.slab->release(t.slab_slot);
      t.slab = nullptr;
    }
  }
  items.clear();
}

bool FileSink::open_output() {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) return false;
  // The destructive moment, deferred to the first received byte: truncate
  // whatever was there and preallocate the expected length in one call, so
  // a transfer that failed before any data arrived never touched the path
  // and the write-behind stream never grows the file page by page.
  if (::ftruncate(fd_, static_cast<off_t>(expected_)) != 0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

bool FileSink::write_pwritev(struct iovec* iov, std::size_t nr,
                             std::uint64_t off, std::size_t total) {
  std::size_t done = 0;
  std::size_t first = 0;
  while (done < total) {
    const ssize_t n = ::pwritev(fd_, iov + first, static_cast<int>(nr - first),
                                static_cast<off_t>(off + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
    // Short write: advance past fully-written vectors and trim the partial.
    auto adv = static_cast<std::size_t>(n);
    while (first < nr && adv >= iov[first].iov_len) {
      adv -= iov[first].iov_len;
      ++first;
    }
    if (first < nr && adv > 0) {
      iov[first].iov_base = static_cast<std::uint8_t*>(iov[first].iov_base) + adv;
      iov[first].iov_len -= adv;
    }
  }
  return true;
}

void FileSink::writer_loop() {
  std::uint64_t off = 0;
  std::vector<RcvBuffer::Taken> items;
  std::vector<FileUring::Completion> cqes;
  std::vector<struct iovec> iov(kSinkIovMax);
  while (true) {
    bool dead;
    {
      std::unique_lock lk{mu_};
      work_cv_.wait(lk, [&] { return !queue_.empty() || finishing_; });
      if (queue_.empty()) return;
      // Drain everything queued in one sweep: arrival-cadence enqueues are
      // often a handful of packets each, and writing them batch-by-batch
      // would mean a syscall (and a writer wakeup) per few KB.
      items = std::move(queue_.front());
      queue_.pop_front();
      while (!queue_.empty()) {
        auto& more = queue_.front();
        items.insert(items.end(), std::move_iterator{more.begin()},
                     std::move_iterator{more.end()});
        queue_.pop_front();
      }
      dead = io_error_;
    }
    std::size_t bytes = 0;
    for (const auto& t : items) bytes += t.len;
    bool ok = !dead;
    if (ok && fd_ < 0) ok = open_output();
    if (ok) {
      // Gather contiguous payloads into IOV_MAX-wide positional writes —
      // one kernel entry per ~1.5 MB of packet-sized slab references, not
      // one per packet.
      std::size_t next_item = 0;
      std::uint64_t o = off;
      while (ok && next_item < items.size()) {
        const std::size_t n = std::min(items.size() - next_item, kSinkIovMax);
        std::size_t vbytes = 0;
        for (std::size_t k = 0; k < n; ++k) {
          const RcvBuffer::Taken& t = items[next_item + k];
          iov[k].iov_base =
              const_cast<void*>(static_cast<const void*>(t.data));
          iov[k].iov_len = t.len;
          vbytes += t.len;
        }
        bool wrote = false;
        if (uring_active_) {
          // iov lives on this frame across the synchronous submit_and_wait.
          cqes.clear();
          wrote = ring_.push_writev(fd_, iov.data(),
                                    static_cast<unsigned>(n), o, 0) &&
                  ring_.submit_and_wait(1, cqes) && !cqes.empty() &&
                  cqes.front().res == static_cast<std::int32_t>(vbytes);
          // A refused or short uring write is rewritten below with
          // identical bytes at identical offsets — idempotent.
          if (!wrote) uring_active_ = false;
        }
        if (!wrote) wrote = write_pwritev(iov.data(), n, o, vbytes);
        ok = wrote;
        next_item += n;
        o += vbytes;
      }
    }
    if (ok) throttle_.consume(bytes);
    release_items(items);
    {
      std::lock_guard lk{mu_};
      queued_bytes_ -= bytes;
      if (ok) {
        written_ += bytes;
      } else {
        io_error_ = true;
      }
      space_cv_.notify_all();
    }
    off += bytes;
  }
}

bool FileSink::enqueue(std::vector<RcvBuffer::Taken>&& items) {
  std::size_t bytes = 0;
  for (const auto& t : items) bytes += t.len;
  std::unique_lock lk{mu_};
  space_cv_.wait(lk, [&] {
    return io_error_ || finishing_ || queued_bytes_ < cfg_.queue_max_bytes;
  });
  if (io_error_ || finishing_) {
    lk.unlock();
    release_items(items);
    return false;
  }
  queued_bytes_ += bytes;
  queue_.push_back(std::move(items));
  work_cv_.notify_one();
  return true;
}

bool FileSink::finish(bool create_if_empty) {
  {
    std::lock_guard lk{mu_};
    finishing_ = true;
    work_cv_.notify_all();
    space_cv_.notify_all();
  }
  if (writer_.joinable()) writer_.join();
  std::lock_guard lk{mu_};
  if (finished_) return !io_error_;
  finished_ = true;
  if (fd_ >= 0) {
    // A short transfer leaves preallocated zeros past the data: trim.
    if (written_ < expected_ &&
        ::ftruncate(fd_, static_cast<off_t>(written_)) != 0) {
      io_error_ = true;
    }
    if (::close(fd_) != 0) io_error_ = true;
    fd_ = -1;
  } else if (create_if_empty && !io_error_) {
    // Clean zero-byte transfer: the legacy contract still creates/empties
    // the destination.
    const int fd =
        ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) {
      io_error_ = true;
    } else {
      ::close(fd);
    }
  }
  ring_.close();
  return !io_error_;
}

std::uint64_t FileSink::bytes_written() {
  std::lock_guard lk{mu_};
  return written_;
}

bool FileSink::io_error() {
  std::lock_guard lk{mu_};
  return io_error_;
}

bool FileSink::used_uring() { return ring_.is_open(); }

}  // namespace udtr::udt
