// Pipelined zero-copy disk datapath for sendfile/recvfile (§4.7, Table 2).
//
// The paper's deployment result is disk-to-disk transfer at "nearly the disk
// I/O speed"; getting there requires the disk and the wire to overlap, and
// the payload bytes to move without staging copies:
//
//   FileSource (sender): a reader thread pread()s — or batches io_uring READ
//   SQEs — into a ring of 64 KB-aligned chunks sized in MSS multiples.  The
//   socket borrows each filled chunk straight into SndBuffer
//   (add_borrowed), so the gather/GSO wire path reads directly from the
//   file-read buffers; a chunk returns to the ring when every packet cut
//   from it is acknowledged and unpinned (the PR-3 pin/unpin discipline).
//   The ring running dry is backpressure on the disk reader, not an error.
//
//   FileSink (receiver): a write-behind thread drains payloads the socket
//   took from RcvBuffer *by reference* (RcvBuffer::Taken — moved slab
//   references, not copies) and pwrite()s / io_uring WRITEs them at
//   sequential offsets.  The destination file is opened lazily on the first
//   payload — a transfer that dies before any byte arrives never touches an
//   existing file — then ftruncate-preallocated to the expected length and
//   trimmed back if the transfer ends short.  A bounded queue makes a slow
//   disk push back on the reassembly window (flow control) instead of
//   growing memory.
//
// Both stages take only their own leaf mutex; socket code may call into
// them with state_mu_ held (recycle) or not (next/enqueue — the blocking
// calls).  Neither stage ever calls back into the socket.
//
// DiskThrottle paces a stage to an injected disk rate so benches/tests can
// emulate the Table-2 disk bottleneck on a machine whose real disks (or
// page cache) are far faster.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/channel_uring.hpp"

namespace udtr::udt {

// Paces a pipeline stage to `mbps` megabits per second of payload (0 = off).
class DiskThrottle {
 public:
  explicit DiskThrottle(double mbps)
      : bytes_per_s_(mbps > 0.0 ? mbps * 1e6 / 8.0 : 0.0) {}

  // Accounts `bytes` and sleeps just long enough to keep the cumulative
  // rate at or below the cap.
  void consume(std::size_t bytes) {
    if (bytes_per_s_ <= 0.0 || bytes == 0) return;
    if (total_ == 0) start_ = std::chrono::steady_clock::now();
    total_ += bytes;
    const auto due =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(
                         static_cast<double>(total_) / bytes_per_s_));
    std::this_thread::sleep_until(due);
  }

 private:
  double bytes_per_s_;
  std::chrono::steady_clock::time_point start_{};
  std::uint64_t total_ = 0;
};

// Reader stage: file → chunk ring.  Construction opens the file and starts
// the reader thread; destruction stops and joins it.
class FileSource {
 public:
  struct Config {
    // Per-chunk capacity, rounded up to whole 64 KB units for the aligned
    // allocation; the fill length is then rounded *down* to a multiple of
    // `payload_quantum` (the socket's MSS) so chunk boundaries never cut a
    // short packet into the middle of a GSO run.
    std::size_t chunk_bytes = std::size_t{256} << 10;
    int ring_chunks = 16;
    int payload_quantum = 1456;
    bool use_uring = true;
    double throttle_mbps = 0.0;
  };

  // One filled chunk, delivered in file order.  `data` stays valid until
  // recycle(id).
  struct Chunk {
    const std::uint8_t* data = nullptr;
    std::size_t len = 0;
    std::uint64_t offset = 0;  // absolute file offset of data[0]
    int id = -1;
  };

  FileSource(const std::string& path, std::uint64_t offset,
             std::uint64_t length, const Config& cfg);
  ~FileSource();
  FileSource(const FileSource&) = delete;
  FileSource& operator=(const FileSource&) = delete;

  // False when the file could not be opened/stat'ed; nothing was started.
  [[nodiscard]] bool ok() const { return fd_ >= 0; }
  // min(length, file size - offset) — what the transfer will actually move
  // (0 when `offset` is at or past EOF).
  [[nodiscard]] std::uint64_t planned_bytes() const { return planned_; }

  // Next filled chunk in file order; blocks up to `timeout`.  nullopt on
  // timeout (reader momentarily behind), end of data, or error — the caller
  // tells those apart with done()/io_error().
  std::optional<Chunk> next(std::chrono::milliseconds timeout);
  // Chunk `id` is no longer referenced anywhere: return it to the free ring.
  void recycle(int id);
  // No more chunks will ever come and none are pending delivery.
  [[nodiscard]] bool done();
  [[nodiscard]] bool io_error();
  // True when the reader actually ran on io_uring (tests/bench visibility).
  [[nodiscard]] bool used_uring();

  // Unblocks the reader and any next() caller; idempotent.  The destructor
  // calls it, but a caller that still holds chunk memory borrowed elsewhere
  // must stop() only after those borrows are gone.
  void stop();

 private:
  void reader_loop();
  // One pread-based fill of chunk `id` at `off` for `want` bytes; returns
  // bytes read (< want means EOF), or SIZE_MAX on an I/O error.
  std::size_t fill_pread(int id, std::uint64_t off, std::size_t want);

  struct Filled {
    int id;
    std::uint64_t offset;
    std::size_t len;
  };

  int fd_ = -1;
  std::uint64_t offset_ = 0;
  std::uint64_t planned_ = 0;
  std::size_t alloc_bytes_ = 0;  // per chunk, 64 KB multiple
  std::size_t fill_bytes_ = 0;   // per chunk, payload_quantum multiple
  std::vector<std::uint8_t*> bufs_;
  Config cfg_;
  DiskThrottle throttle_;
  FileUring ring_;
  bool uring_active_ = false;  // reader thread only (until joined)

  std::mutex mu_;
  std::condition_variable free_cv_;    // reader waits for recycled chunks
  std::condition_variable filled_cv_;  // next() waits for filled chunks
  std::vector<int> free_;
  std::deque<Filled> filled_;
  bool stop_ = false;
  bool eof_ = false;       // reader finished (planned bytes read or early EOF)
  bool io_error_ = false;
  std::thread reader_;
};

// Write-behind stage: taken payloads → file.  Construction starts the
// writer thread; finish() (or the destructor) drains and joins it.
class FileSink {
 public:
  struct Config {
    // Queued-but-unwritten payload bound; enqueue() blocks at the cap so a
    // slow disk backs up into the protocol's flow control.
    std::size_t queue_max_bytes = std::size_t{4} << 20;
    bool use_uring = true;
    double throttle_mbps = 0.0;
  };

  // `expected_len` drives the ftruncate preallocation on first write (and
  // the trim-back if the transfer ends short).
  FileSink(std::string path, std::uint64_t expected_len, const Config& cfg);
  ~FileSink();
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  // Queues `items` for writing at the running sequential offset, blocking
  // while the write-behind queue is over its byte cap.  Slab references
  // inside are released (and owned storage freed) once written.  False when
  // the writer already hit a disk error — the items are then released
  // immediately and the transfer should stop.
  bool enqueue(std::vector<RcvBuffer::Taken>&& items);

  // Drains the queue, trims the preallocation to the bytes actually
  // written, closes the file and joins the writer.  `create_if_empty`
  // makes a clean zero-byte transfer still create/truncate the file (the
  // legacy contract for recvfile(path, 0)); a failed transfer that never
  // saw a byte leaves the path untouched either way.  True on a clean disk
  // close.  Idempotent.
  bool finish(bool create_if_empty);

  [[nodiscard]] std::uint64_t bytes_written();
  [[nodiscard]] bool io_error();
  [[nodiscard]] bool used_uring();

 private:
  void writer_loop();
  void release_items(std::vector<RcvBuffer::Taken>& items);
  // One gathered positional write of `total` bytes at `off`, looping over
  // short writes (consumes the iovec array as it advances).
  bool write_pwritev(struct iovec* iov, std::size_t nr, std::uint64_t off,
                     std::size_t total);
  bool open_output();  // lazy open + preallocation; writer thread only

  std::string path_;
  std::uint64_t expected_ = 0;
  Config cfg_;
  DiskThrottle throttle_;
  FileUring ring_;
  int fd_ = -1;              // writer thread only until joined
  bool uring_active_ = false;

  std::mutex mu_;
  std::condition_variable space_cv_;  // enqueue waits for queue drain
  std::condition_variable work_cv_;   // writer waits for items / finish
  std::deque<std::vector<RcvBuffer::Taken>> queue_;
  std::size_t queued_bytes_ = 0;
  std::uint64_t written_ = 0;
  bool finishing_ = false;
  bool io_error_ = false;
  bool finished_ = false;
  std::thread writer_;
};

}  // namespace udtr::udt
