#include "udt/handshake_cookie.hpp"

#include <cstring>
#include <random>

namespace udtr::udt {
namespace {

inline std::uint64_t rotl64(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // SipHash is specified little-endian; x86/arm64 match.
}

std::uint64_t random_key_word() {
  // random_device twice: its result_type is only guaranteed 32 bits.
  std::random_device rd;
  return (std::uint64_t{rd()} << 32) ^ std::uint64_t{rd()} ^
         (std::uint64_t{rd()} << 16);
}

}  // namespace

std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                        const std::uint8_t* data, std::size_t len) {
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const auto sipround = [&] {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  };

  const std::size_t end = len - (len % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    const std::uint64_t m = load_le64(data + i);
    v3 ^= m;
    sipround();
    sipround();
    v0 ^= m;
  }

  std::uint64_t last = std::uint64_t{len & 0xFF} << 56;
  for (std::size_t i = end; i < len; ++i) {
    last |= std::uint64_t{data[i]} << (8 * (i - end));
  }
  v3 ^= last;
  sipround();
  sipround();
  v0 ^= last;

  v2 ^= 0xFF;
  sipround();
  sipround();
  sipround();
  sipround();
  return v0 ^ v1 ^ v2 ^ v3;
}

CookieKeyring::CookieKeyring() {
  k0_cur_ = random_key_word();
  k1_cur_ = random_key_word();
}

void CookieKeyring::maybe_rotate(std::uint64_t now_s) {
  if (!started_) {
    started_ = true;
    cur_since_s_ = now_s;
    return;
  }
  if (now_s - cur_since_s_ >= kRotateSeconds) {
    k0_prev_ = k0_cur_;
    k1_prev_ = k1_cur_;
    has_prev_ = true;
    k0_cur_ = random_key_word();
    k1_cur_ = random_key_word();
    cur_since_s_ = now_s;
  }
}

std::uint64_t CookieKeyring::mac(std::uint64_t k0, std::uint64_t k1,
                                 std::uint64_t t, std::uint32_t src_ip,
                                 std::uint16_t src_port,
                                 const HandshakePayload& req) const {
  // The MAC covers everything the eventual connection state will be built
  // from, so a cookie cannot be replayed from another address or reused to
  // smuggle different handshake parameters.
  std::uint8_t msg[8 + 4 + 2 + 4 + 4 + 4];
  std::memcpy(msg, &t, 8);
  std::memcpy(msg + 8, &src_ip, 4);
  std::memcpy(msg + 12, &src_port, 2);
  std::memcpy(msg + 14, &req.initial_seq, 4);
  std::memcpy(msg + 18, &req.mss_bytes, 4);
  std::memcpy(msg + 22, &req.socket_id, 4);
  return siphash24(k0, k1, msg, sizeof(msg));
}

std::uint64_t CookieKeyring::make(std::uint64_t now_s, std::uint32_t src_ip,
                                  std::uint16_t src_port,
                                  const HandshakePayload& req) {
  maybe_rotate(now_s);
  const std::uint64_t m = mac(k0_cur_, k1_cur_, now_s, src_ip, src_port, req);
  std::uint64_t cookie = ((now_s & 0xFF) << 56) | (m >> 8);
  if (cookie == 0) cookie = 1;  // 0 on the wire means "no cookie"
  return cookie;
}

CookieKeyring::Verdict CookieKeyring::verify(std::uint64_t now_s,
                                             std::uint32_t src_ip,
                                             std::uint16_t src_port,
                                             const HandshakePayload& req,
                                             std::uint64_t cookie) {
  maybe_rotate(now_s);
  // Reconstruct the issue time from the embedded low byte.  The age byte is
  // attacker-controlled, but a forged-fresh stamp still has to MAC under a
  // live key, and keys older than two rotations are gone.
  const std::uint64_t age = (now_s - (cookie >> 56)) & 0xFF;
  const std::uint64_t t = now_s - age;
  const std::uint64_t body = cookie & 0x00FFFFFFFFFFFFFFULL;

  bool mac_ok =
      (mac(k0_cur_, k1_cur_, t, src_ip, src_port, req) >> 8) == body;
  if (!mac_ok && has_prev_) {
    mac_ok = (mac(k0_prev_, k1_prev_, t, src_ip, src_port, req) >> 8) == body;
  }
  // The clamped cookie==1 case (make() collided with the reserved value)
  // simply fails the MAC and retries as a fresh challenge — harmless, and
  // a 2^-56 event.
  if (!mac_ok) return Verdict::kInvalid;
  if (age > kTtlSeconds) return Verdict::kExpired;
  return Verdict::kValid;
}

// ------------------------------------------------------- AdmissionControl ---

AdmissionControl::AdmissionControl(AdmissionConfig cfg) : cfg_(cfg) {}

AdmissionControl::Entry& AdmissionControl::touch(std::uint32_t ip,
                                                 double now_s) {
  auto it = table_.find(ip);
  if (it == table_.end()) {
    if (table_.size() >= cfg_.max_tracked_ips) evict_one();
    Entry e;
    e.tokens = cfg_.burst_per_ip;
    e.last_s = now_s;
    lru_.push_front(ip);
    e.lru_it = lru_.begin();
    it = table_.emplace(ip, e).first;
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  return it->second;
}

void AdmissionControl::evict_one() {
  // Evict the least-recently-touched source that holds no pending
  // connections; skipping pending holders keeps begin/end accounting exact.
  // The scan is bounded in practice: pending holders are themselves bounded
  // by the global pending queue, so a victim sits at or near the tail.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    auto t = table_.find(*it);
    if (t != table_.end() && t->second.pending == 0) {
      lru_.erase(std::next(it).base());
      table_.erase(t);
      return;
    }
  }
  // Every tracked source has pending state (pathological); drop the oldest.
  if (!lru_.empty()) {
    table_.erase(lru_.back());
    lru_.pop_back();
  }
}

bool AdmissionControl::allow_handshake(std::uint32_t ip, double now_s) {
  Entry& e = touch(ip, now_s);
  const double elapsed = now_s > e.last_s ? now_s - e.last_s : 0.0;
  e.tokens = std::min(cfg_.burst_per_ip, e.tokens + elapsed * cfg_.rate_per_ip);
  e.last_s = now_s;
  if (e.tokens < 1.0) return false;
  e.tokens -= 1.0;
  return true;
}

bool AdmissionControl::begin_pending(std::uint32_t ip, double now_s) {
  Entry& e = touch(ip, now_s);
  if (e.pending >= cfg_.max_pending_per_ip) return false;
  ++e.pending;
  return true;
}

void AdmissionControl::end_pending(std::uint32_t ip) {
  auto it = table_.find(ip);
  if (it != table_.end() && it->second.pending > 0) --it->second.pending;
}

}  // namespace udtr::udt
