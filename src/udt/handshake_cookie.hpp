// Stateless-handshake front door: SYN-style cookies and per-source-IP
// admission control.
//
// The listener answers the first handshake packet of a connection with a
// signed cookie and keeps *zero* state until the client echoes it back; a
// spoofed source never completes the round trip, so a handshake flood costs
// the listener one MAC computation and one reply datagram per packet and no
// memory.  The cookie binds the client's address and its proposed handshake
// parameters to a coarse timestamp under a per-listener random secret:
//
//   cookie = (t & 0xFF) << 56  |  SipHash-2-4(key, ip|port|isn|mss|id|t) >> 8
//
// where t is the listener's steady clock in whole seconds.  The verifier
// reconstructs t from the embedded low byte (age = (now - t) mod 256), so a
// cookie is self-describing: no per-cookie state, no clock agreement with
// the peer.  Keys rotate every kRotateSeconds; the previous key stays valid
// so rotation never strands an in-flight handshake.  Acceptance is bounded
// both by the explicit age check (kTtlSeconds) and by key lifetime — a
// cookie older than two rotations has no live key and cannot validate even
// if its age byte is forged to look fresh.
//
// Thread safety: both classes are externally synchronized.  The multiplexer
// owns one of each per port and drives them under its handshake mutex
// (hs_mu_); see DESIGN.md §11 for the lock order.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "udt/packet.hpp"

namespace udtr::udt {

// SipHash-2-4 over an arbitrary byte string (Aumasson & Bernstein).  Exposed
// for tests; everything else should go through CookieKeyring.
[[nodiscard]] std::uint64_t siphash24(std::uint64_t k0, std::uint64_t k1,
                                      const std::uint8_t* data,
                                      std::size_t len);

class CookieKeyring {
 public:
  enum class Verdict { kValid, kExpired, kInvalid };

  static constexpr std::uint64_t kRotateSeconds = 60;
  static constexpr std::uint64_t kTtlSeconds = 60;

  // Keys are drawn from std::random_device at construction and at each
  // rotation.
  CookieKeyring();

  // `now_s` is the caller's steady clock in whole seconds.  It is a
  // parameter (not read internally) so tests can drive rotation and expiry
  // deterministically.
  [[nodiscard]] std::uint64_t make(std::uint64_t now_s, std::uint32_t src_ip,
                                   std::uint16_t src_port,
                                   const HandshakePayload& req);
  [[nodiscard]] Verdict verify(std::uint64_t now_s, std::uint32_t src_ip,
                               std::uint16_t src_port,
                               const HandshakePayload& req,
                               std::uint64_t cookie);

 private:
  void maybe_rotate(std::uint64_t now_s);
  [[nodiscard]] std::uint64_t mac(std::uint64_t k0, std::uint64_t k1,
                                  std::uint64_t t, std::uint32_t src_ip,
                                  std::uint16_t src_port,
                                  const HandshakePayload& req) const;

  std::uint64_t k0_cur_ = 0, k1_cur_ = 0;
  std::uint64_t k0_prev_ = 0, k1_prev_ = 0;
  bool has_prev_ = false;
  bool started_ = false;
  std::uint64_t cur_since_s_ = 0;
};

// Per-source-IP admission control for the handshake path: a token bucket
// bounds the packet rate per source, a pending cap bounds how many
// half-open connections one source may hold, and the tracking table itself
// is LRU-bounded so a flood of spoofed sources cannot balloon it — the
// tracker's worst case is max_tracked_ips entries regardless of how many
// addresses hit the port.
struct AdmissionConfig {
  double rate_per_ip = 256.0;   // handshake packets per second per source
  double burst_per_ip = 32.0;   // token-bucket depth
  int max_pending_per_ip = 16;  // concurrent half-open connections per source
  std::size_t max_tracked_ips = 4096;
};

class AdmissionControl {
 public:
  explicit AdmissionControl(AdmissionConfig cfg);

  // Token-bucket gate; `now_s` is a steady clock in (fractional) seconds.
  [[nodiscard]] bool allow_handshake(std::uint32_t ip, double now_s);

  // Pending-connection accounting: begin_pending() is called when a
  // handshake is queued for accept(), end_pending() when it is consumed or
  // rejected.  begin_pending() fails when the source is at its cap.
  [[nodiscard]] bool begin_pending(std::uint32_t ip, double now_s);
  void end_pending(std::uint32_t ip);

  [[nodiscard]] std::size_t tracked_ips() const { return table_.size(); }

 private:
  struct Entry {
    double tokens = 0;
    double last_s = 0;
    int pending = 0;
    std::list<std::uint32_t>::iterator lru_it;
  };

  Entry& touch(std::uint32_t ip, double now_s);
  void evict_one();

  AdmissionConfig cfg_;
  std::unordered_map<std::uint32_t, Entry> table_;
  std::list<std::uint32_t> lru_;  // front = most recently touched
};

}  // namespace udtr::udt
