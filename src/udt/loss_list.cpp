#include "udt/loss_list.hpp"

#include <algorithm>

namespace udtr::udt {

namespace {
using udtr::SeqNo;
}  // namespace

std::vector<LossList::Node> LossList::NodePool::acquire(
    std::size_t capacity) {
  std::lock_guard lk{mu_};
  for (auto it = store_.begin(); it != store_.end(); ++it) {
    if (it->size() == capacity) {
      std::vector<Node> out = std::move(*it);
      store_.erase(it);
      std::fill(out.begin(), out.end(), Node{});
      return out;
    }
  }
  return {};
}

void LossList::NodePool::release(std::vector<Node>&& nodes) {
  if (nodes.empty()) return;
  std::lock_guard lk{mu_};
  if (store_.size() < kMaxPooled) store_.push_back(std::move(nodes));
}

std::size_t LossList::NodePool::pooled() const {
  std::lock_guard lk{mu_};
  return store_.size();
}

LossList::LossList(std::int32_t capacity) : capacity_(capacity) {}

LossList::~LossList() {
  if (pool_ && !nodes_.empty()) pool_->release(std::move(nodes_));
}

void LossList::ensure_nodes() {
  if (!nodes_.empty()) return;
  if (pool_) nodes_ = pool_->acquire(static_cast<std::size_t>(capacity_));
  if (nodes_.size() != static_cast<std::size_t>(capacity_)) {
    nodes_.assign(static_cast<std::size_t>(capacity_), Node{});
  }
}

std::int32_t LossList::slot_of(SeqNo seq) const {
  const std::int32_t off = SeqNo::offset(SeqNo{nodes_[head_].start}, seq);
  return ((head_ + off) % capacity_ + capacity_) % capacity_;
}

void LossList::free_node(std::int32_t slot) {
  nodes_[slot] = Node{};
}

std::int32_t LossList::event_count() const {
  std::int32_t n = 0;
  for (std::int32_t i = head_; i >= 0; i = nodes_[i].next) ++n;
  return n;
}

void LossList::merge_forward(std::int32_t at) {
  Node& cur = nodes_[at];
  while (cur.next >= 0) {
    Node& nx = nodes_[cur.next];
    const SeqNo cur_end{cur.end};
    const SeqNo nx_start{nx.start};
    if (SeqNo::cmp(nx_start, cur_end.next()) > 0) break;  // disjoint
    // Absorb nx; subtract the doubly counted overlap.
    const SeqNo nx_end{nx.end};
    if (SeqNo::cmp(nx_start, cur_end) <= 0) {
      const SeqNo ov_end =
          SeqNo::cmp(nx_end, cur_end) <= 0 ? nx_end : cur_end;
      count_ -= SeqNo::length(nx_start, ov_end);
    }
    if (SeqNo::cmp(nx_end, cur_end) > 0) cur.end = nx_end.value();
    const std::int32_t dead = cur.next;
    cur.next = nx.next;
    if (cur.next >= 0) nodes_[cur.next].prior = at;
    free_node(dead);
  }
}

std::int32_t LossList::insert(SeqNo first, SeqNo last) {
  if (SeqNo::cmp(first, last) > 0) std::swap(first, last);
  const std::int32_t span = SeqNo::length(first, last);
  if (span > capacity_) return 0;  // cannot represent; caller sized the list
  ensure_nodes();
  const std::int32_t before = count_;

  if (head_ < 0) {
    nodes_[0] = Node{first.value(), last.value(), -1, -1, now_us_, 1};
    head_ = 0;
    count_ = span;
    return count_;
  }

  const SeqNo head_start{nodes_[head_].start};
  if (SeqNo::cmp(first, head_start) < 0) {
    const std::int32_t off = SeqNo::offset(head_start, first);
    if (-off >= capacity_) return 0;  // beyond representable span
    const std::int32_t loc = ((head_ + off) % capacity_ + capacity_) %
                             capacity_;
    nodes_[loc] = Node{first.value(), last.value(), head_, -1, now_us_, 1};
    nodes_[head_].prior = loc;
    head_ = loc;
    count_ += span;
    merge_forward(loc);
    return count_ - before;
  }

  // Find the last node whose start precedes or equals `first`, starting
  // from the last insertion point when possible (locality, §4.2).
  std::int32_t p = head_;
  if (last_insert_ >= 0 && nodes_[last_insert_].start >= 0 &&
      SeqNo::cmp(SeqNo{nodes_[last_insert_].start}, first) <= 0) {
    p = last_insert_;
  }
  while (nodes_[p].next >= 0 &&
         SeqNo::cmp(SeqNo{nodes_[nodes_[p].next].start}, first) <= 0) {
    p = nodes_[p].next;
  }

  Node& pn = nodes_[p];
  const SeqNo p_end{pn.end};
  if (SeqNo::cmp(first, p_end.next()) <= 0) {
    // Overlaps or touches the predecessor: extend it.
    if (SeqNo::cmp(last, p_end) > 0) {
      count_ += SeqNo::length(p_end.next(), last);
      pn.end = last.value();
      merge_forward(p);
    }
    last_insert_ = p;
  } else {
    const std::int32_t off = SeqNo::offset(head_start, first);
    if (off >= capacity_) return 0;
    const std::int32_t loc = (head_ + off) % capacity_;
    nodes_[loc] =
        Node{first.value(), last.value(), pn.next, p, now_us_, 1};
    if (pn.next >= 0) nodes_[pn.next].prior = loc;
    pn.next = loc;
    count_ += span;
    merge_forward(loc);
    last_insert_ = loc;
  }
  return count_ - before;
}

bool LossList::remove(SeqNo seq) {
  if (head_ < 0) return false;
  const SeqNo head_start{nodes_[head_].start};
  if (SeqNo::cmp(seq, head_start) < 0) return false;
  const std::int32_t off = SeqNo::offset(head_start, seq);
  if (off >= capacity_) return false;

  // Walk slots backward from the computed position to the nearest node at
  // or before `seq`; slot order equals sequence order, so the first
  // occupied slot is the candidate container.
  std::int32_t t = (head_ + off) % capacity_;
  std::int32_t steps = off;
  while (nodes_[t].start < 0 && steps > 0) {
    t = (t - 1 + capacity_) % capacity_;
    --steps;
  }
  Node& n = nodes_[t];
  if (n.start < 0) return false;
  const SeqNo a{n.start};
  const SeqNo b{n.end};
  if (SeqNo::cmp(seq, a) < 0 || SeqNo::cmp(seq, b) > 0) return false;

  last_insert_ = -1;  // slot graph is about to change
  const std::int32_t nprior = n.prior;
  const std::int32_t nnext = n.next;
  if (a == b) {
    if (nprior >= 0) nodes_[nprior].next = nnext;
    if (nnext >= 0) nodes_[nnext].prior = nprior;
    if (head_ == t) head_ = nnext;
    free_node(t);
  } else if (seq == a) {
    // Trim the front: the node moves one slot forward to stay keyed on its
    // (new) start sequence.
    const std::int32_t u = (t + 1) % capacity_;
    nodes_[u] = Node{a.next().value(), b.value(), nnext, nprior,
                     n.last_feedback_us, n.feedback_count};
    if (nprior >= 0) nodes_[nprior].next = u;
    if (nnext >= 0) nodes_[nnext].prior = u;
    if (head_ == t) head_ = u;
    free_node(t);
  } else if (seq == b) {
    n.end = b.prev().value();
  } else {
    // Split: [a, seq-1] stays in place, [seq+1, b] gets a fresh slot.
    const std::int32_t u = slot_of(seq.next());
    nodes_[u] = Node{seq.next().value(), b.value(), nnext, t,
                     n.last_feedback_us, n.feedback_count};
    n.end = seq.prev().value();
    if (nnext >= 0) nodes_[nnext].prior = u;
    n.next = u;
  }
  --count_;
  return true;
}

void LossList::remove_up_to(SeqNo seq) {
  last_insert_ = -1;
  while (head_ >= 0) {
    Node& n = nodes_[head_];
    const SeqNo a{n.start};
    const SeqNo b{n.end};
    if (SeqNo::cmp(b, seq) <= 0) {
      count_ -= SeqNo::length(a, b);
      const std::int32_t dead = head_;
      head_ = n.next;
      if (head_ >= 0) nodes_[head_].prior = -1;
      free_node(dead);
    } else if (SeqNo::cmp(a, seq) <= 0) {
      // Straddles: keep [seq+1, b], re-keyed on its new start.
      count_ -= SeqNo::length(a, seq);
      const std::int32_t u = slot_of(seq.next());
      const Node old = n;
      free_node(head_);
      nodes_[u] = Node{seq.next().value(), old.end, old.next, -1,
                       old.last_feedback_us, old.feedback_count};
      if (old.next >= 0) nodes_[old.next].prior = u;
      head_ = u;
      return;
    } else {
      return;
    }
  }
}

void LossList::remove_range(SeqNo first, SeqNo last) {
  if (head_ < 0 || SeqNo::cmp(first, last) > 0) return;
  last_insert_ = -1;
  std::int32_t i = head_;
  while (i >= 0) {
    Node& n = nodes_[i];
    const SeqNo a{n.start};
    const SeqNo b{n.end};
    const std::int32_t nx = n.next;
    if (SeqNo::cmp(b, first) < 0) {  // wholly before the range
      i = nx;
      continue;
    }
    if (SeqNo::cmp(a, last) > 0) break;  // wholly after: done
    const bool cut_from_start = SeqNo::cmp(a, first) >= 0;
    const bool cut_to_end = SeqNo::cmp(b, last) <= 0;
    if (cut_from_start && cut_to_end) {
      // Fully covered: unlink the node.
      count_ -= SeqNo::length(a, b);
      const std::int32_t pr = n.prior;
      if (pr >= 0) nodes_[pr].next = nx;
      if (nx >= 0) nodes_[nx].prior = pr;
      if (head_ == i) head_ = nx;
      free_node(i);
      i = nx;
      continue;
    }
    if (!cut_from_start && cut_to_end) {
      // Trim the tail: keep [a, first-1].
      count_ -= SeqNo::length(first, b);
      n.end = first.prev().value();
      i = nx;
      continue;
    }
    if (cut_from_start) {
      // Trim the front: keep [last+1, b], re-keyed on its new start.
      count_ -= SeqNo::length(a, last);
      const std::int32_t u = slot_of(last.next());
      const Node old = n;
      free_node(i);
      nodes_[u] = Node{last.next().value(), old.end, old.next, old.prior,
                       old.last_feedback_us, old.feedback_count};
      if (old.prior >= 0) nodes_[old.prior].next = u;
      if (old.next >= 0) nodes_[old.next].prior = u;
      if (head_ == i) head_ = u;
      break;  // nothing after can overlap
    }
    // Range strictly inside: [a, first-1] stays, [last+1, b] gets a slot.
    count_ -= SeqNo::length(first, last);
    const std::int32_t u = slot_of(last.next());
    nodes_[u] = Node{last.next().value(), b.value(), nx, i,
                     n.last_feedback_us, n.feedback_count};
    n.end = first.prev().value();
    if (nx >= 0) nodes_[nx].prior = u;
    n.next = u;
    break;
  }
}

std::optional<SeqNo> LossList::pop_first() {
  if (head_ < 0) return std::nullopt;
  const SeqNo first{nodes_[head_].start};
  remove(first);
  return first;
}

std::optional<SeqNo> LossList::first() const {
  if (head_ < 0) return std::nullopt;
  return SeqNo{nodes_[head_].start};
}

bool LossList::contains(SeqNo seq) const {
  if (head_ < 0) return false;
  const SeqNo head_start{nodes_[head_].start};
  if (SeqNo::cmp(seq, head_start) < 0) return false;
  const std::int32_t off = SeqNo::offset(head_start, seq);
  if (off >= capacity_) return false;
  std::int32_t t = (head_ + off) % capacity_;
  std::int32_t steps = off;
  while (nodes_[t].start < 0 && steps > 0) {
    t = (t - 1 + capacity_) % capacity_;
    --steps;
  }
  const Node& n = nodes_[t];
  if (n.start < 0) return false;
  return SeqNo::cmp(seq, SeqNo{n.start}) >= 0 &&
         SeqNo::cmp(seq, SeqNo{n.end}) <= 0;
}

void LossList::for_each(const std::function<void(const Range&)>& fn) const {
  for (std::int32_t i = head_; i >= 0; i = nodes_[i].next) {
    const Node& n = nodes_[i];
    fn(Range{SeqNo{n.start}, SeqNo{n.end}, n.last_feedback_us,
             n.feedback_count});
  }
}

std::vector<std::pair<SeqNo, SeqNo>> LossList::collect_expired(
    std::uint64_t now_us, std::uint64_t base_timeout_us) {
  std::vector<std::pair<SeqNo, SeqNo>> out;
  for (std::int32_t i = head_; i >= 0; i = nodes_[i].next) {
    Node& n = nodes_[i];
    const std::uint64_t factor =
        1ULL << std::min<std::uint32_t>(n.feedback_count - 1, 4);
    if (now_us - n.last_feedback_us >= factor * base_timeout_us) {
      out.emplace_back(SeqNo{n.start}, SeqNo{n.end});
      n.last_feedback_us = now_us;
      ++n.feedback_count;
    }
  }
  return out;
}

}  // namespace udtr::udt
