// Loss information management (paper §4.2 + Appendix, Figs. 8/9/16/17).
//
// Losses are stored as compressed [start, end] interval nodes in a *static*
// circular array: a node lives at the slot
//     (head_slot + offset(head_start, node_start)) mod capacity
// so the position of any sequence number is computed, not searched.  The
// practical cost of insert/delete/query is proportional to the number of
// *loss events*, not lost packets, and accesses touch near neighbours
// (locality), which is what keeps each operation ~1 us in Fig. 9.
//
// The same structure serves both ends: the sender's list of packets to
// retransmit (metadata unused) and the receiver's list of holes awaiting
// retransmission (per-node NAK feedback timestamp + count drive the
// increasing re-NAK interval of §3.5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/seqno.hpp"

namespace udtr::udt {

class LossList {
 private:
  struct Node {
    std::int32_t start = -1;  // -1 marks a free slot
    std::int32_t end = -1;
    std::int32_t next = -1;   // slot index of the next node, -1 at tail
    std::int32_t prior = -1;  // slot index of the previous node, -1 at head
    std::uint64_t last_feedback_us = 0;
    std::uint32_t feedback_count = 1;
  };

 public:
  // Recycles node arrays between loss lists so a fleet of sockets on one
  // multiplexer shard shares slab storage instead of each holding a
  // private, mostly-empty array.  Thread-safe; lists return their array on
  // destruction and reacquire on the first loss after that.
  class NodePool {
   public:
    // Returns a pooled array of exactly `capacity` nodes (reset to the free
    // state), or an empty vector when none of that size is pooled.
    [[nodiscard]] std::vector<Node> acquire(std::size_t capacity);
    void release(std::vector<Node>&& nodes);
    [[nodiscard]] std::size_t pooled() const;

   private:
    static constexpr std::size_t kMaxPooled = 64;
    mutable std::mutex mu_;
    std::vector<std::vector<Node>> store_;
  };

  // `capacity` bounds the sequence span the list can represent; size it to
  // the maximum flight window.  It is NOT a cap on loss events.  The node
  // array itself is allocated lazily on the first insert, so an idle socket
  // pays nothing for its loss lists.
  explicit LossList(std::int32_t capacity);
  ~LossList();
  LossList(const LossList&) = delete;
  LossList& operator=(const LossList&) = delete;

  // Attaches a shared node pool; takes effect at the next (lazy) array
  // allocation and at destruction.  Call before the first loss.
  void set_pool(std::shared_ptr<NodePool> pool) { pool_ = std::move(pool); }

  // Inserts the inclusive range [first, last]; overlapping and adjacent
  // ranges coalesce.  Returns the number of sequence numbers newly added.
  std::int32_t insert(udtr::SeqNo first, udtr::SeqNo last);
  std::int32_t insert(udtr::SeqNo seq) { return insert(seq, seq); }

  // Removes one sequence number (a retransmission arrived), splitting its
  // node if needed.  Returns true if it was present.
  bool remove(udtr::SeqNo seq);

  // Removes every sequence number up to and including `seq` (ACK advanced).
  void remove_up_to(udtr::SeqNo seq);

  // Removes the inclusive range [first, last] (a TTL-expired message was
  // dropped: its holes will never be recovered), trimming or splitting the
  // nodes it cuts through.
  void remove_range(udtr::SeqNo first, udtr::SeqNo last);

  // Removes and returns the smallest stored sequence number.
  std::optional<udtr::SeqNo> pop_first();

  [[nodiscard]] std::optional<udtr::SeqNo> first() const;
  [[nodiscard]] bool contains(udtr::SeqNo seq) const;
  [[nodiscard]] bool empty() const { return head_ < 0; }
  // Total lost packets currently stored.
  [[nodiscard]] std::int32_t packet_count() const { return count_; }
  // Number of interval nodes (loss events).
  [[nodiscard]] std::int32_t event_count() const;

  struct Range {
    udtr::SeqNo first;
    udtr::SeqNo last;
    std::uint64_t last_feedback_us;
    std::uint32_t feedback_count;
  };

  // Iterates ranges in sequence order.
  void for_each(const std::function<void(const Range&)>& fn) const;

  // Collects ranges whose feedback timer expired at `now_us` given the
  // backoff rule timeout(count) = 2^min(count-1, 4) * base_us, stamping
  // them as re-reported.  Fresh inserts start with count = 1 and
  // last_feedback = insert time (the immediate NAK).
  [[nodiscard]] std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>>
  collect_expired(std::uint64_t now_us, std::uint64_t base_timeout_us);

  // Sets the clock used to stamp fresh inserts (receiver side).
  void set_now_us(std::uint64_t now_us) { now_us_ = now_us; }

 private:
  [[nodiscard]] std::int32_t slot_of(udtr::SeqNo seq) const;
  // Coalesces `at` with successors that overlap or touch it.
  void merge_forward(std::int32_t at);
  void free_node(std::int32_t slot);
  // Materializes nodes_ (from the pool when possible); called on the insert
  // path only — every other operation early-outs on the empty list.
  void ensure_nodes();

  std::shared_ptr<NodePool> pool_;
  std::vector<Node> nodes_;
  std::int32_t capacity_;
  std::int32_t head_ = -1;        // slot of the first (smallest) node
  std::int32_t count_ = 0;        // total packets stored
  std::int32_t last_insert_ = -1; // locality hint for predecessor search
  std::uint64_t now_us_ = 0;
};

}  // namespace udtr::udt
