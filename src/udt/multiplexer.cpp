#include "udt/multiplexer.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>

namespace udtr::udt {

namespace {

// Receive slots must hold a whole GRO super-datagram when coalescing is on
// (a short buffer makes the kernel truncate the burst), one wire packet
// plus headroom otherwise.
constexpr std::size_t kGroSlotBytes = 65535;

[[nodiscard]] std::size_t plain_slot_bytes(int mss_bytes) {
  return static_cast<std::size_t>(mss_bytes) + kHeaderBytes + 64;
}

[[nodiscard]] bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && *v != '0';
}

[[nodiscard]] std::int64_t to_ns(Multiplexer::Clock::time_point t) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

// Identifies the shard whose rx thread is the caller: the one producer the
// shard's SPSC wakeup ring is allowed to have.  Every other thread kicking
// a socket on that shard must take the mutex-protected pending list.
thread_local const void* t_rx_shard = nullptr;

// Process-wide registry of live multiplexers.  Weak pointers: a multiplexer
// lives exactly as long as some socket holds it, and expired entries are
// pruned on the next lookup.
std::mutex g_registry_mu;
std::vector<std::weak_ptr<Multiplexer>> g_registry;

void registry_add(const std::shared_ptr<Multiplexer>& m) {
  std::lock_guard lk{g_registry_mu};
  std::erase_if(g_registry, [](const auto& w) { return w.expired(); });
  g_registry.push_back(m);
}

}  // namespace

void send_handshake_packet(UdpChannel& ch, const Endpoint& to,
                           std::uint32_t dst_id, const HandshakePayload& h) {
  std::array<std::uint8_t,
             kHeaderBytes + 4 * HandshakePayload::kWordsWithCookie>
      buf{};
  CtrlHeader hdr;
  hdr.type = CtrlType::kHandshake;
  hdr.dst_socket = dst_id;
  write_ctrl_header(buf, hdr);
  encode_handshake_payload(std::span{buf}.subspan(kHeaderBytes), h);
  ch.send_to(to, buf);
}

std::size_t resolve_mux_shards(const SocketOptions& opts) {
  long n = 0;
  if (opts.mux_shards > 0) {
    n = opts.mux_shards;
  } else if (const char* e = std::getenv("UDTR_MUX_SHARDS");
             e != nullptr && *e != '\0') {
    n = std::atol(e);
  } else {
    const auto hw = static_cast<long>(std::thread::hardware_concurrency());
    n = std::min<long>(4, std::max<long>(1, hw / 2));
  }
  return static_cast<std::size_t>(
      std::clamp<long>(n, 1, static_cast<long>(Multiplexer::kMaxMuxShards)));
}

Multiplexer::Multiplexer(Private, const SocketOptions& opts) : cfg_(opts) {
  io_batch_ = std::clamp(opts.io_batch, 1, 64);
  AdmissionConfig ac;
  ac.rate_per_ip = std::max(1.0, opts.handshake_rate_per_ip);
  ac.burst_per_ip = std::max(1.0, opts.handshake_burst_per_ip);
  ac.max_pending_per_ip = std::max(1, opts.max_pending_per_ip);
  ac.max_tracked_ips =
      static_cast<std::size_t>(std::max(16, opts.max_tracked_ips));
  admission_ = std::make_unique<AdmissionControl>(ac);
}

Multiplexer::~Multiplexer() {
  running_ = false;
  for (auto& sh : shards_) {
    {
      std::lock_guard lk{sh->pending_mu};
    }
    sh->tx_cv.notify_all();
  }
  {
    std::lock_guard lk{hs_mu_};
  }
  hs_cv_.notify_all();
  for (auto& sh : shards_) {
    if (sh->rx_thread.joinable()) sh->rx_thread.join();
    if (sh->tx_thread.joinable()) sh->tx_thread.join();
  }
  for (auto& sh : shards_) {
    if (sh->channel) sh->channel->close();
  }
}

std::shared_ptr<Multiplexer> Multiplexer::open(std::uint16_t port,
                                               const SocketOptions& opts) {
  // Multi-shard mode binds with SO_REUSEPORT, which would happily share a
  // port another multiplexer in this process already owns; an in-use port
  // must stay a bind failure (single-shard semantics), so consult the
  // registry before touching the kernel.
  if (port != 0 && find(port) != nullptr) return nullptr;
  auto m = std::make_shared<Multiplexer>(Private{}, opts);
  const std::size_t want = resolve_mux_shards(opts);
  const bool try_reuseport = want > 1 && !env_flag("UDTR_NO_REUSEPORT");

  auto s0 = std::make_unique<Shard>();
  s0->index = 0;
  s0->channel = std::make_unique<UdpChannel>();
  if (!s0->channel->open(port, try_reuseport)) return nullptr;
  const std::uint16_t bound = s0->channel->local_port();
  m->shards_.push_back(std::move(s0));

  if (try_reuseport) {
    bool ok = true;
    for (std::size_t i = 1; i < want; ++i) {
      auto sh = std::make_unique<Shard>();
      sh->index = i;
      sh->channel = std::make_unique<UdpChannel>();
      if (!sh->channel->open(bound, true)) {
        ok = false;
        break;
      }
      m->shards_.push_back(std::move(sh));
    }
    // The steering program divides by the *intended* group size, so it must
    // only go live once every member is bound: a program selecting an index
    // beyond the group makes the kernel drop the datagram outright.
    if (ok) {
      ok = m->shards_[0]->channel->attach_reuseport_steering(
          static_cast<unsigned>(want));
    }
    if (!ok) m->shards_.resize(1);  // closes the extra fds
    m->steered_ = ok;
  }
  if (!m->steered_ && want > 1) {
    // Software-demux fallback: one shared fd, every shard's rx thread
    // drains it, and dispatch() routes each datagram to the owning shard's
    // index — the same hash the BPF program would have computed.
    while (m->shards_.size() < want) {
      auto sh = std::make_unique<Shard>();
      sh->index = m->shards_.size();
      m->shards_.push_back(std::move(sh));
    }
  }
  for (auto& sh : m->shards_) {
    sh->io = sh->channel ? sh->channel.get() : m->shards_[0]->channel.get();
  }
  m->start();
  registry_add(m);
  return m;
}

std::shared_ptr<Multiplexer> Multiplexer::for_client(
    const SocketOptions& opts) {
  {
    std::lock_guard lk{g_registry_mu};
    for (const auto& w : g_registry) {
      auto m = w.lock();
      if (m && m->client_shared_ && m->compatible(opts)) return m;
    }
  }
  auto m = open(0, opts);
  if (m) m->client_shared_ = true;
  return m;
}

std::shared_ptr<Multiplexer> Multiplexer::find(std::uint16_t port) {
  std::lock_guard lk{g_registry_mu};
  for (const auto& w : g_registry) {
    auto m = w.lock();
    if (m && m->local_port() == port) return m;
  }
  return nullptr;
}

void Multiplexer::start() {
  std::shared_ptr<FaultInjector> inj;
  if (cfg_.faults) {
    inj = cfg_.faults;
  } else if (cfg_.loss_injection > 0.0) {
    inj = make_loss_injector(cfg_.loss_injection, cfg_.loss_seed,
                             kHeaderBytes + 16);
  }
  const auto rcv_timeout = std::chrono::microseconds{
      static_cast<std::int64_t>(cfg_.syn_s * 1e6 / 2)};
  bool any_gro = false;
  for (auto& sh : shards_) {
    if (!sh->channel) continue;
    // One injector instance across the shard fds: faults stay per logical
    // datagram and the drop/duplicate accounting stays coherent no matter
    // which shard's fd carried the packet.
    if (inj) sh->channel->set_fault_injector(inj);
    sh->channel->set_recv_timeout(rcv_timeout);
    sh->channel->set_buffer_sizes(4 << 20, 8 << 20);
    if (cfg_.gso && sh->channel->enable_gro()) any_gro = true;
  }
  gro_ = any_gro;
  // Datapath backend.  The uring slot ring assumes one rx-thread owner per
  // channel, so it is enabled only when every shard owns its fd (kernel
  // steering, or a single shard); the single-fd fallback — several shard
  // threads sharing shard 0's channel — stays on mmsg.  All-or-nothing
  // across shards so the two backends never mix on one port.
  if (cfg_.io_backend != IoBackend::kMmsg &&
      (steered_ || shards_.size() == 1)) {
    bool all = true;
    for (auto& sh : shards_) {
      if (sh->channel && !sh->channel->set_io_backend(cfg_.io_backend)) {
        all = false;
      }
    }
    if (!all) {
      for (auto& sh : shards_) {
        if (sh->channel) sh->channel->set_io_backend(IoBackend::kMmsg);
      }
    }
  }
  // Slot sizing keys off whether *any* fd may deliver coalesced buffers —
  // a short slot would make the kernel truncate a GRO burst.
  slot_bytes_ = gro_ ? kGroSlotBytes : plain_slot_bytes(cfg_.mss_bytes);
  const auto max_batch = static_cast<std::size_t>(io_batch_);
  const std::size_t slot_count =
      gro_ ? max_batch * 4 : std::max<std::size_t>(512, max_batch * 4);
  legacy_sweep_ = env_flag("UDTR_FULL_SWEEP");
  syn_us_ = std::chrono::microseconds{
      static_cast<std::int64_t>(cfg_.syn_s * 1e6)};
  for (auto& sh : shards_) {
    // Slots carry kUringRxHeadroom beyond the payload capacity: the uring
    // backend's multishot recvmsg writes its per-datagram header at the
    // front of the slot, and a max-size GRO burst must still fit behind it.
    sh->slab = std::make_shared<RecvSlab>(
        slot_bytes_ + UdpChannel::kUringRxHeadroom, slot_count);
    sh->heap.reserve(256);
    sh->due_scratch.reserve(256);
  }
  running_ = true;
  for (auto& sh : shards_) {
    Shard* p = sh.get();
    p->rx_thread = std::thread([this, p] { rx_loop(*p); });
    p->tx_thread = std::thread([this, p] { tx_loop(*p); });
  }
}

bool Multiplexer::uring_active() const {
  for (const auto& sh : shards_) {
    if (sh->io == nullptr || !sh->io->uring_active()) return false;
  }
  return !shards_.empty();
}

bool Multiplexer::compatible(const SocketOptions& opts) const {
  return opts.faults == cfg_.faults &&
         opts.loss_injection == cfg_.loss_injection &&
         (opts.loss_injection == 0.0 || opts.loss_seed == cfg_.loss_seed) &&
         std::clamp(opts.io_batch, 1, 64) == io_batch_ &&
         opts.io_backend == cfg_.io_backend &&
         opts.gso == cfg_.gso && opts.syn_s == cfg_.syn_s &&
         plain_slot_bytes(opts.mss_bytes) <= slot_bytes_ &&
         resolve_mux_shards(opts) == shards_.size();
}

// ----------------------------------------------------------- attachment ---

void Multiplexer::attach(Socket* s) {
  Shard& sh = shard_for(s->socket_id_);
  s->mux_shard_ = static_cast<std::uint32_t>(sh.index);
  {
    std::unique_lock al{sh.attach_mu};
    sh.socks[s->socket_id_] = s;
  }
  arm_timer(s);
}

void Multiplexer::attach_child(Socket* s, const HandshakePayload& resp) {
  const HsKey key{s->peer_.ip_host_order, s->peer_.port, s->peer_socket_id_};
  attach(s);
  std::lock_guard lk{hs_mu_};
  child_resp_[key] = resp;
  // The request is no longer pending — and any duplicate already sitting in
  // the queue must not spawn a second socket for the same connection.
  if (pending_keys_.erase(key) > 0) {
    admission_->end_pending(std::get<0>(key));
  }
  std::erase_if(pending_, [&](const PendingHandshake& p) {
    return p.src.ip_host_order == std::get<0>(key) &&
           p.src.port == std::get<1>(key) &&
           p.req.socket_id == std::get<2>(key);
  });
}

void Multiplexer::detach(Socket* s) {
  Shard& sh = shard_for(s->socket_id_);
  {
    std::unique_lock al{sh.attach_mu};
    sh.socks.erase(s->socket_id_);
  }
  // After the erase no expiry can re-arm the socket (fire_timer's lookup
  // fails), so cancelling here leaves no stale wheel entry behind.
  sh.wheel.cancel(s->socket_id_);
  std::lock_guard lk{hs_mu_};
  if (listener_ == s) {
    listener_ = nullptr;
    // Release the per-source pending accounting for every half-open request
    // the departed listener will never consume.
    for (const HsKey& k : pending_keys_) {
      admission_->end_pending(std::get<0>(k));
    }
    pending_keys_.clear();
    pending_.clear();
    hs_cv_.notify_all();
    return;
  }
  const HsKey key{s->peer_.ip_host_order, s->peer_.port, s->peer_socket_id_};
  if (auto it = child_resp_.find(key);
      it != child_resp_.end() && it->second.socket_id == s->socket_id_) {
    // The child is gone; demote its response to the age+count bounded
    // memory so a straggling retransmit still gets an answer for a while.
    remember_answered(key, it->second);
    child_resp_.erase(it);
  }
}

void Multiplexer::arm_timer(Socket* s) {
  if (legacy_sweep_) return;  // the full walk covers every socket already
  Shard& sh = shard_for(s->socket_id_);
  const auto now = Clock::now();
  s->wheel_deadline_ns_.store(to_ns(now), std::memory_order_relaxed);
  sh.wheel.schedule(s->socket_id_, now);
}

bool Multiplexer::attach_listener(Socket* s) {
  std::lock_guard lk{hs_mu_};
  if (listener_ != nullptr) return false;
  listener_ = s;
  return true;
}

std::optional<Multiplexer::PendingHandshake> Multiplexer::wait_handshake(
    std::chrono::milliseconds timeout) {
  std::unique_lock lk{hs_mu_};
  if (!hs_cv_.wait_for(lk, timeout,
                       [&] { return !pending_.empty() || !running_; })) {
    return std::nullopt;
  }
  if (pending_.empty()) return std::nullopt;
  PendingHandshake p = pending_.front();
  pending_.pop_front();
  // The key stays in pending_keys_ until attach_child/reject_handshake, so
  // a retransmit racing the accept decision is not queued twice.
  return p;
}

void Multiplexer::reject_handshake(const Endpoint& src,
                                   std::uint32_t peer_socket_id) {
  std::lock_guard lk{hs_mu_};
  if (pending_keys_.erase(
          HsKey{src.ip_host_order, src.port, peer_socket_id}) > 0) {
    admission_->end_pending(src.ip_host_order);
  }
}

std::size_t Multiplexer::attached_sockets() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::shared_lock al{sh->attach_mu};
    n += sh->socks.size();
  }
  return n;
}

std::size_t Multiplexer::remembered_handshakes() const {
  std::lock_guard lk{hs_mu_};
  return answered_.size() + child_resp_.size();
}

std::size_t Multiplexer::pending_handshakes() const {
  std::lock_guard lk{hs_mu_};
  return pending_.size();
}

std::size_t Multiplexer::admission_tracked_ips() const {
  std::lock_guard lk{hs_mu_};
  return admission_->tracked_ips();
}

std::shared_ptr<LossList::NodePool> Multiplexer::loss_pool(
    std::uint32_t socket_id) const {
  return shards_[socket_id % shards_.size()]->loss_pool;
}

std::uint64_t Multiplexer::timer_sweep_calls() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->sweep_calls.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Multiplexer::timer_socket_sweeps() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    n += sh->socket_sweeps.load(std::memory_order_relaxed);
  }
  return n;
}

std::uint64_t Multiplexer::send_syscalls() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    if (sh->channel) n += sh->channel->send_syscalls();
  }
  return n;
}

std::uint64_t Multiplexer::recv_syscalls() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) {
    if (sh->channel) n += sh->channel->recv_syscalls();
  }
  return n;
}

UdpChannel& Multiplexer::channel_for(std::uint32_t socket_id) {
  return *shard_for(socket_id).io;
}

const std::shared_ptr<RecvSlab>& Multiplexer::slab_for(
    std::uint32_t socket_id) const {
  return shards_[socket_id % shards_.size()]->slab;
}

// ------------------------------------------------------------ handshake ---

void Multiplexer::remember_answered(const HsKey& key,
                                    const HandshakePayload& resp) {
  answered_.put(key, resp, Clock::now());
}

void Multiplexer::evict_answered() { answered_.sweep(Clock::now()); }

void Multiplexer::handle_handshake(std::span<const std::uint8_t> pkt,
                                   const Endpoint& src) {
  const auto hdr = decode_ctrl_header(pkt);
  if (!hdr || hdr->type != CtrlType::kHandshake) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto req = decode_handshake_payload(pkt.subspan(kHeaderBytes));
  if (!req || req->request_type != kHsRequest) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const HsKey key{src.ip_host_order, src.port, req->socket_id};
  const auto now = Clock::now();
  const double now_s =
      std::chrono::duration<double>(now.time_since_epoch()).count();
  const auto now_sec = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(now.time_since_epoch())
          .count());
  std::unique_lock lk{hs_mu_};
  // A live child for this (address, socket id) answers authoritatively: the
  // earlier response was lost or is still in flight, and re-sending it is
  // what keeps a slow retransmit from ever spawning a ghost second socket.
  // Re-replies bypass the admission gates below on purpose — they cost no
  // state, and rate-limiting a legitimate retransmit would strand the peer.
  if (const auto it = child_resp_.find(key); it != child_resp_.end()) {
    const HandshakePayload resp = it->second;
    lk.unlock();
    send_handshake_packet(channel(), src, req->socket_id, resp);
    return;
  }
  if (const HandshakePayload* a = answered_.find(key); a != nullptr) {
    const HandshakePayload resp = *a;
    lk.unlock();
    send_handshake_packet(channel(), src, req->socket_id, resp);
    return;
  }
  if (listener_ == nullptr) return;  // nobody accepting on this port
  // Per-source token bucket: one source cannot monopolize the handshake
  // path's CPU (every packet past here costs at least a MAC computation).
  if (!admission_->allow_handshake(src.ip_host_order, now_s)) {
    admission_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (cfg_.stateless_handshake) {
    if (req->cookie == 0) {
      // First contact: answer with a signed cookie and retain NOTHING.  A
      // spoofed source never sees the challenge, so it never reaches the
      // stateful path below.
      HandshakePayload challenge = *req;
      challenge.request_type = kHsChallenge;
      challenge.cookie =
          cookie_keys_.make(now_sec, src.ip_host_order, src.port, *req);
      cookie_challenges_.fetch_add(1, std::memory_order_relaxed);
      lk.unlock();
      send_handshake_packet(channel(), src, req->socket_id, challenge);
      return;
    }
    switch (cookie_keys_.verify(now_sec, src.ip_host_order, src.port, *req,
                                req->cookie)) {
      case CookieKeyring::Verdict::kValid:
        break;
      case CookieKeyring::Verdict::kExpired: {
        // Stale but authentic: re-challenge so a slow client self-heals
        // with a fresh cookie instead of retransmitting into a black hole.
        cookie_expired_.fetch_add(1, std::memory_order_relaxed);
        HandshakePayload challenge = *req;
        challenge.request_type = kHsChallenge;
        challenge.cookie =
            cookie_keys_.make(now_sec, src.ip_host_order, src.port, *req);
        lk.unlock();
        send_handshake_packet(channel(), src, req->socket_id, challenge);
        return;
      }
      case CookieKeyring::Verdict::kInvalid:
        cookie_rejects_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
  }
  if (pending_keys_.contains(key)) return;
  if (pending_.size() >= kMaxPendingHandshakes) {
    accept_queue_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Half-open cap: even with valid cookies, one source holds at most
  // max_pending_per_ip slots of the accept queue.
  if (!admission_->begin_pending(src.ip_host_order, now_s)) {
    admission_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  pending_keys_.insert(key);
  pending_.push_back(PendingHandshake{src, *req});
  hs_cv_.notify_one();
}

// -------------------------------------------------------------- receive ---

void Multiplexer::dispatch(std::span<const std::uint8_t> pkt,
                           const Endpoint& src, RecvSlab* slab,
                           int slab_slot) {
  if (pkt.size() < kHeaderBytes) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t dst = load_be32(pkt.data() + 12);
  if (dst == 0) {
    // Only handshakes may travel with destination id 0 (the peer does not
    // know our id yet); anything else is noise.
    if (is_control(pkt)) {
      handle_handshake(pkt, src);
    } else {
      unroutable_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  // Route through the owner's index regardless of which rx thread is
  // running: in steered mode this is almost always the calling thread's own
  // shard, but a GRO super-datagram can hide foreign-flow segments behind
  // its first destination id, and fallback mode makes every delivery a
  // potential cross-shard one.
  Shard& owner = shard_for(dst);
  std::shared_lock al{owner.attach_mu};
  const auto it = owner.socks.find(dst);
  if (it == owner.socks.end()) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Socket* s = it->second;
  s->mux_ingest(pkt, slab, slab_slot);
  // An arrival usually means timer work soon (§4.8: ACK cadence resumes,
  // EXP pushes out) — pull a parked wheel entry in to one SYN from now.
  if (!legacy_sweep_) tighten_timer(owner, s);
}

void Multiplexer::rx_loop(Shard& sh) {
  t_rx_shard = &sh;
  // Same structure as the PR 4 receiver loop — slab-backed slots, one
  // bounded drain per wakeup, in-place GRO segment walking — but routed
  // through the channel's backend-neutral rx_round: the mmsg backend arms
  // slots and calls recvmmsg exactly as this loop used to inline, the uring
  // backend reaps CQEs off its re-armed recvmsg slot ring.  Either way each
  // delivery lands in the sink below, and the post-receive timer check
  // drains this shard's wheel in O(expired) instead of walking every
  // socket.
  UdpChannel::RxState rxs;
  rxs.slab = sh.slab;
  rxs.batch = static_cast<std::size_t>(io_batch_);
  rxs.slot_bytes = slot_bytes_;
  struct SinkCtx {
    Multiplexer* mux;
    Shard* sh;
  } sctx{this, &sh};
  const UdpChannel::RxSinkFn sink = [](void* c,
                                       const UdpChannel::RxDelivery& d) {
    auto* sc = static_cast<SinkCtx*>(c);
    for_each_datagram(d.data, d.gro_size,
                      [&](std::span<const std::uint8_t> pkt) {
                        sc->mux->dispatch(pkt, d.src, d.slab, d.slab_slot);
                      });
  };
  constexpr auto kSweepGap = std::chrono::milliseconds{1};
  constexpr auto kEvictGap = std::chrono::milliseconds{10};
  auto last_sweep = Clock::now();
  auto last_evict = last_sweep;

  while (running_) {
    (void)sh.io->rx_round(rxs, sink, &sctx);
    // §4.8 timer check: only sockets whose wheel entry expired are swept —
    // an idle fleet parks at EXP cadence and costs nothing per tick.  The
    // legacy env override keeps the PR 4 every-socket walk measurable.
    const auto now = Clock::now();
    if (now - last_sweep >= kSweepGap) {
      last_sweep = now;
      sh.sweep_calls.fetch_add(1, std::memory_order_relaxed);
      if (legacy_sweep_) {
        full_sweep(sh);
      } else {
        sh.wheel.drain(now, [this, &sh](std::uint64_t key) {
          fire_timer(sh, key);
        });
      }
    }
    if (sh.index == 0 && now - last_evict >= kEvictGap) {
      last_evict = now;
      std::lock_guard lk{hs_mu_};
      evict_answered();
    }
  }
  // RxState's destructor releases any still-armed slab slots.
  t_rx_shard = nullptr;
}

void Multiplexer::fire_timer(Shard& sh, std::uint64_t key) {
  const auto id = static_cast<std::uint32_t>(key);
  std::shared_lock al{sh.attach_mu};
  const auto it = sh.socks.find(id);
  if (it == sh.socks.end()) return;  // detached after its entry expired
  Socket* s = it->second;
  sh.socket_sweeps.fetch_add(1, std::memory_order_relaxed);
  const auto next = s->sweep_timers_next();
  // A tighten_timer racing between this store and the schedule below can be
  // overwritten, leaving one arrival unaccelerated; the next arrival (or
  // this re-armed entry) picks the socket back up, so the worst case is a
  // single delayed ACK round, not a stall.
  s->wheel_deadline_ns_.store(to_ns(next), std::memory_order_relaxed);
  sh.wheel.schedule(key, next);
}

void Multiplexer::tighten_timer(Shard& owner, Socket* s) {
  const auto want = Clock::now() + syn_us_;
  const std::int64_t want_ns = to_ns(want);
  std::int64_t cur = s->wheel_deadline_ns_.load(std::memory_order_relaxed);
  // CAS-min keeps this O(1) and idempotent: a socket already due within one
  // SYN (every flowing socket, after its first sweep) takes the early-out
  // and never touches the wheel.
  while (want_ns < cur) {
    if (s->wheel_deadline_ns_.compare_exchange_weak(
            cur, want_ns, std::memory_order_relaxed)) {
      owner.wheel.schedule(s->socket_id_, want);
      return;
    }
  }
}

void Multiplexer::full_sweep(Shard& sh) {
  // Legacy O(all-sockets) walk.  The socket list is snapshotted first and
  // each sweep re-takes the shard lock, so attach/detach are never starved
  // behind a long walk (the old code held the registry lock across every
  // socket's sweep).
  thread_local std::vector<std::uint32_t> ids;
  ids.clear();
  {
    std::shared_lock al{sh.attach_mu};
    ids.reserve(sh.socks.size());
    for (const auto& [id, s] : sh.socks) ids.push_back(id);
  }
  for (const std::uint32_t id : ids) {
    std::shared_lock al{sh.attach_mu};
    const auto it = sh.socks.find(id);
    if (it == sh.socks.end()) continue;
    sh.socket_sweeps.fetch_add(1, std::memory_order_relaxed);
    it->second->sweep_timers();
  }
}

// ----------------------------------------------------------------- send ---

void Multiplexer::kick(Socket* s) {
  if (!running_) return;
  if (s->tx_scheduled_.exchange(true)) return;  // already queued
  Shard& sh = *shards_[s->mux_shard_];
  if (t_rx_shard == &sh) {
    // This shard's own rx thread: the ring's one sanctioned producer.  The
    // seq_cst fence pairs with the one in tx_park(): either we observe the
    // tx thread going idle (and notify under its mutex, which cannot be
    // lost), or it observes our push before committing to sleep.
    if (sh.ring.push(s->socket_id_)) {
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (sh.tx_idle.load(std::memory_order_relaxed)) {
        std::lock_guard lk{sh.pending_mu};
        sh.tx_cv.notify_one();
      }
      return;
    }
    // Ring full (tx thread far behind): fall through to the mutex path.
  }
  {
    std::lock_guard lk{sh.pending_mu};
    sh.pending_kicks.push_back(s->socket_id_);
    sh.pending_n.store(
        static_cast<std::uint32_t>(sh.pending_kicks.size()),
        std::memory_order_relaxed);
  }
  sh.tx_cv.notify_one();
}

void Multiplexer::kick_all(Shard& sh) {
  std::shared_lock al{sh.attach_mu};
  // Only dirty sockets (wake_sender since their last empty tx_round) are
  // re-kicked: an idle 100k fleet must not cost 100k serve rounds per
  // heartbeat.  The flag is conservative — tx_round only clears it when it
  // finds no work — so a socket with queued data can never go unkicked.
  for (const auto& [id, s] : sh.socks) {
    if (s->tx_dirty_.load(std::memory_order_relaxed)) kick(s);
  }
}

void Multiplexer::serve(Shard& sh, std::uint32_t id) {
  std::shared_lock al{sh.attach_mu};
  const auto it = sh.socks.find(id);
  if (it == sh.socks.end()) return;  // detached after its entry was queued
  Socket* s = it->second;
  // Clear-then-recheck: the flag drops before tx_round reads the socket
  // state, so a kick landing mid-round either sees the flag down and queues
  // a fresh entry, or sees it up because we re-queued below — never lost.
  s->tx_scheduled_.store(false, std::memory_order_release);
  const auto next = s->tx_round();
  if (next == Clock::time_point::max()) return;  // parked until kicked
  if (s->tx_scheduled_.exchange(true)) return;   // a kick re-queued it first
  // The heap is this tx thread's private state — requeue without any lock.
  sh.heap.push_back(TxEntry{next, sh.order++, id});
  std::push_heap(sh.heap.begin(), sh.heap.end(), TxLater{});
}

void Multiplexer::tx_park(Shard& sh, Clock::time_point deadline) {
  std::unique_lock lk{sh.pending_mu};
  sh.tx_idle.store(true, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Re-check the ring after publishing tx_idle (the fence orders the two):
  // a producer that missed the flag must have pushed before our check, and
  // one that pushed after it sees the flag and notifies under the mutex we
  // hold — a push can never be slept through.
  if (sh.ring.empty() && sh.pending_kicks.empty() && running_) {
    sh.tx_cv.wait_until(lk, deadline);
  }
  sh.tx_idle.store(false, std::memory_order_relaxed);
}

void Multiplexer::tx_loop(Shard& sh) {
  // Safety net: losing a kick would strand a socket with queued data, so
  // every socket this shard owns is re-kicked on a slow heartbeat; a parked
  // socket with no work simply parks again.
  constexpr auto kKickSweepGap = std::chrono::milliseconds{100};
  std::vector<std::uint32_t> kicks;  // mutex-path drain scratch
  auto next_kick_sweep = Clock::now() + kKickSweepGap;
  while (running_) {
    auto now = Clock::now();
    if (now >= next_kick_sweep) {
      next_kick_sweep = now + kKickSweepGap;
      kick_all(sh);
      now = Clock::now();
    }
    // Drain wakeups into the private heap: the SPSC ring first (the rx
    // sibling's lock-free path), then the mutex-protected pending list
    // (application threads, foreign shards, ring overflow).
    std::uint32_t id = 0;
    while (sh.ring.pop(id)) {
      sh.heap.push_back(TxEntry{now, sh.order++, id});
      std::push_heap(sh.heap.begin(), sh.heap.end(), TxLater{});
    }
    if (sh.pending_n.load(std::memory_order_relaxed) > 0) {
      {
        std::lock_guard lk{sh.pending_mu};
        kicks.swap(sh.pending_kicks);
        sh.pending_n.store(0, std::memory_order_relaxed);
      }
      for (const std::uint32_t k : kicks) {
        sh.heap.push_back(TxEntry{now, sh.order++, k});
        std::push_heap(sh.heap.begin(), sh.heap.end(), TxLater{});
      }
      kicks.clear();
    }
    if (sh.heap.empty()) {
      tx_park(sh, next_kick_sweep);
      continue;
    }
    const auto due = sh.heap.front().due;
    if (due > now) {
      if (due - now > Pacer::kSpinThreshold) {
        tx_park(sh, std::min(due - Pacer::kSpinThreshold, next_kick_sweep));
      } else {
        // Sub-threshold remainder: spin for §4.5 precision, exactly as the
        // per-socket Pacer would.
        Pacer::wait_until(due);
      }
      continue;
    }
    // Serve every socket due this instant; FIFO order among equal deadlines
    // keeps service round-robin fair.
    sh.due_scratch.clear();
    while (!sh.heap.empty() && sh.heap.front().due <= now) {
      std::pop_heap(sh.heap.begin(), sh.heap.end(), TxLater{});
      sh.due_scratch.push_back(sh.heap.back().id);
      sh.heap.pop_back();
    }
    for (const std::uint32_t d : sh.due_scratch) serve(sh, d);
  }
}

}  // namespace udtr::udt
