#include "udt/multiplexer.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace udtr::udt {

namespace {

// Receive slots must hold a whole GRO super-datagram when coalescing is on
// (a short buffer makes the kernel truncate the burst), one wire packet
// plus headroom otherwise.
constexpr std::size_t kGroSlotBytes = 65535;

[[nodiscard]] std::size_t plain_slot_bytes(int mss_bytes) {
  return static_cast<std::size_t>(mss_bytes) + kHeaderBytes + 64;
}

// Process-wide registry of live multiplexers.  Weak pointers: a multiplexer
// lives exactly as long as some socket holds it, and expired entries are
// pruned on the next lookup.
std::mutex g_registry_mu;
std::vector<std::weak_ptr<Multiplexer>> g_registry;

void registry_add(const std::shared_ptr<Multiplexer>& m) {
  std::lock_guard lk{g_registry_mu};
  std::erase_if(g_registry, [](const auto& w) { return w.expired(); });
  g_registry.push_back(m);
}

}  // namespace

void send_handshake_packet(UdpChannel& ch, const Endpoint& to,
                           std::uint32_t dst_id, const HandshakePayload& h) {
  std::array<std::uint8_t, kHeaderBytes + 4 * HandshakePayload::kWords> buf{};
  CtrlHeader hdr;
  hdr.type = CtrlType::kHandshake;
  hdr.dst_socket = dst_id;
  write_ctrl_header(buf, hdr);
  encode_handshake_payload(std::span{buf}.subspan(kHeaderBytes), h);
  ch.send_to(to, buf);
}

Multiplexer::Multiplexer(Private, const SocketOptions& opts) : cfg_(opts) {
  io_batch_ = std::clamp(opts.io_batch, 1, 64);
}

Multiplexer::~Multiplexer() {
  running_ = false;
  {
    std::lock_guard lk{send_mu_};
  }
  send_cv_.notify_all();
  {
    std::lock_guard lk{hs_mu_};
  }
  hs_cv_.notify_all();
  if (rcv_thread_.joinable()) rcv_thread_.join();
  if (snd_thread_.joinable()) snd_thread_.join();
  channel_.close();
}

std::shared_ptr<Multiplexer> Multiplexer::open(std::uint16_t port,
                                               const SocketOptions& opts) {
  auto m = std::make_shared<Multiplexer>(Private{}, opts);
  if (!m->channel_.open(port)) return nullptr;
  m->start();
  registry_add(m);
  return m;
}

std::shared_ptr<Multiplexer> Multiplexer::for_client(
    const SocketOptions& opts) {
  {
    std::lock_guard lk{g_registry_mu};
    for (const auto& w : g_registry) {
      auto m = w.lock();
      if (m && m->client_shared_ && m->compatible(opts)) return m;
    }
  }
  auto m = open(0, opts);
  if (m) m->client_shared_ = true;
  return m;
}

std::shared_ptr<Multiplexer> Multiplexer::find(std::uint16_t port) {
  std::lock_guard lk{g_registry_mu};
  for (const auto& w : g_registry) {
    auto m = w.lock();
    if (m && m->local_port() == port) return m;
  }
  return nullptr;
}

void Multiplexer::start() {
  if (cfg_.faults) {
    channel_.set_fault_injector(cfg_.faults);
  } else if (cfg_.loss_injection > 0.0) {
    channel_.set_fault_injector(make_loss_injector(
        cfg_.loss_injection, cfg_.loss_seed, kHeaderBytes + 16));
  }
  channel_.set_recv_timeout(std::chrono::microseconds{
      static_cast<std::int64_t>(cfg_.syn_s * 1e6 / 2)});
  channel_.set_buffer_sizes(4 << 20, 8 << 20);
  gro_ = cfg_.gso && channel_.enable_gro();
  slot_bytes_ = gro_ ? kGroSlotBytes : plain_slot_bytes(cfg_.mss_bytes);
  const auto max_batch = static_cast<std::size_t>(io_batch_);
  const std::size_t slot_count =
      gro_ ? max_batch * 4 : std::max<std::size_t>(512, max_batch * 4);
  slab_ = std::make_shared<RecvSlab>(slot_bytes_, slot_count);
  heap_.reserve(256);
  due_scratch_.reserve(256);
  running_ = true;
  rcv_thread_ = std::thread([this] { recv_loop(); });
  snd_thread_ = std::thread([this] { send_loop(); });
}

bool Multiplexer::compatible(const SocketOptions& opts) const {
  return opts.faults == cfg_.faults &&
         opts.loss_injection == cfg_.loss_injection &&
         (opts.loss_injection == 0.0 || opts.loss_seed == cfg_.loss_seed) &&
         std::clamp(opts.io_batch, 1, 64) == io_batch_ &&
         opts.gso == cfg_.gso && opts.syn_s == cfg_.syn_s &&
         plain_slot_bytes(opts.mss_bytes) <= slot_bytes_;
}

// ----------------------------------------------------------- attachment ---

void Multiplexer::attach(Socket* s) {
  std::unique_lock al{attach_mu_};
  socks_[s->socket_id_] = s;
}

void Multiplexer::attach_child(Socket* s, const HandshakePayload& resp) {
  const HsKey key{s->peer_.ip_host_order, s->peer_.port, s->peer_socket_id_};
  {
    std::unique_lock al{attach_mu_};
    socks_[s->socket_id_] = s;
  }
  std::lock_guard lk{hs_mu_};
  child_resp_[key] = resp;
  // The request is no longer pending — and any duplicate already sitting in
  // the queue must not spawn a second socket for the same connection.
  pending_keys_.erase(key);
  std::erase_if(pending_, [&](const PendingHandshake& p) {
    return p.src.ip_host_order == std::get<0>(key) &&
           p.src.port == std::get<1>(key) &&
           p.req.socket_id == std::get<2>(key);
  });
}

void Multiplexer::detach(Socket* s) {
  {
    std::unique_lock al{attach_mu_};
    socks_.erase(s->socket_id_);
  }
  std::lock_guard lk{hs_mu_};
  if (listener_ == s) {
    listener_ = nullptr;
    hs_cv_.notify_all();
    return;
  }
  const HsKey key{s->peer_.ip_host_order, s->peer_.port, s->peer_socket_id_};
  if (auto it = child_resp_.find(key);
      it != child_resp_.end() && it->second.socket_id == s->socket_id_) {
    // The child is gone; demote its response to the age+count bounded
    // memory so a straggling retransmit still gets an answer for a while.
    remember_answered(key, it->second);
    child_resp_.erase(it);
  }
}

bool Multiplexer::attach_listener(Socket* s) {
  std::lock_guard lk{hs_mu_};
  if (listener_ != nullptr) return false;
  listener_ = s;
  return true;
}

std::optional<Multiplexer::PendingHandshake> Multiplexer::wait_handshake(
    std::chrono::milliseconds timeout) {
  std::unique_lock lk{hs_mu_};
  if (!hs_cv_.wait_for(lk, timeout,
                       [&] { return !pending_.empty() || !running_; })) {
    return std::nullopt;
  }
  if (pending_.empty()) return std::nullopt;
  PendingHandshake p = pending_.front();
  pending_.pop_front();
  // The key stays in pending_keys_ until attach_child/reject_handshake, so
  // a retransmit racing the accept decision is not queued twice.
  return p;
}

void Multiplexer::reject_handshake(const Endpoint& src,
                                   std::uint32_t peer_socket_id) {
  std::lock_guard lk{hs_mu_};
  pending_keys_.erase(HsKey{src.ip_host_order, src.port, peer_socket_id});
}

std::size_t Multiplexer::attached_sockets() const {
  std::shared_lock al{attach_mu_};
  return socks_.size();
}

std::size_t Multiplexer::remembered_handshakes() const {
  std::lock_guard lk{hs_mu_};
  return answered_.size() + child_resp_.size();
}

// ------------------------------------------------------------ handshake ---

void Multiplexer::remember_answered(const HsKey& key,
                                    const HandshakePayload& resp) {
  answered_[key] = Answered{resp, Clock::now()};
  answered_order_.push_back(key);
  evict_answered();
}

void Multiplexer::evict_answered() {
  const auto now = Clock::now();
  while (!answered_order_.empty()) {
    const auto it = answered_.find(answered_order_.front());
    if (it == answered_.end()) {  // stale order entry (re-remembered key)
      answered_order_.pop_front();
      continue;
    }
    if (answered_.size() > kMaxAnswered || now - it->second.at > kAnsweredTtl) {
      answered_.erase(it);
      answered_order_.pop_front();
      continue;
    }
    break;
  }
}

void Multiplexer::handle_handshake(std::span<const std::uint8_t> pkt,
                                   const Endpoint& src) {
  const auto hdr = decode_ctrl_header(pkt);
  if (!hdr || hdr->type != CtrlType::kHandshake) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto req = decode_handshake_payload(pkt.subspan(kHeaderBytes));
  if (!req || req->request_type != 1) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const HsKey key{src.ip_host_order, src.port, req->socket_id};
  std::unique_lock lk{hs_mu_};
  // A live child for this (address, socket id) answers authoritatively: the
  // earlier response was lost or is still in flight, and re-sending it is
  // what keeps a slow retransmit from ever spawning a ghost second socket.
  if (const auto it = child_resp_.find(key); it != child_resp_.end()) {
    const HandshakePayload resp = it->second;
    lk.unlock();
    send_handshake_packet(channel_, src, req->socket_id, resp);
    return;
  }
  if (const auto it = answered_.find(key); it != answered_.end()) {
    const HandshakePayload resp = it->second.resp;
    lk.unlock();
    send_handshake_packet(channel_, src, req->socket_id, resp);
    return;
  }
  if (listener_ == nullptr) return;  // nobody accepting on this port
  if (pending_keys_.contains(key)) return;
  if (pending_.size() >= kMaxPendingHandshakes) return;
  pending_keys_.insert(key);
  pending_.push_back(PendingHandshake{src, *req});
  hs_cv_.notify_one();
}

// -------------------------------------------------------------- receive ---

void Multiplexer::dispatch(std::span<const std::uint8_t> pkt,
                           const Endpoint& src, RecvSlab* slab,
                           int slab_slot) {
  if (pkt.size() < kHeaderBytes) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint32_t dst = load_be32(pkt.data() + 12);
  if (dst == 0) {
    // Only handshakes may travel with destination id 0 (the peer does not
    // know our id yet); anything else is noise.
    if (is_control(pkt)) {
      handle_handshake(pkt, src);
    } else {
      unroutable_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  std::shared_lock al{attach_mu_};
  const auto it = socks_.find(dst);
  if (it == socks_.end()) {
    unroutable_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  it->second->mux_ingest(pkt, slab, slab_slot);
}

void Multiplexer::recv_loop() {
  // Same structure as the per-socket receiver loop: slab-backed recv slots,
  // one recvmmsg drain per wakeup, in-place GRO segment walking — but every
  // decoded datagram is routed by its destination socket id instead of
  // being handled by one owner.
  const auto max_batch = static_cast<std::size_t>(io_batch_);
  const std::size_t dgram_cap = slot_bytes_;
  std::vector<std::uint8_t> arena(max_batch * dgram_cap);
  std::vector<UdpChannel::RecvSlot> slots(max_batch);
  std::vector<int> slab_ids(max_batch, -1);  // -1 = arena-backed
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].buf = std::span{arena.data() + i * dgram_cap, dgram_cap};
  }
  constexpr auto kSweepGap = std::chrono::milliseconds{1};
  auto last_sweep = Clock::now();

  while (running_) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slab_ids[i] >= 0) continue;
      const int id = slab_->acquire();
      if (id >= 0) {
        slab_ids[i] = id;
        slots[i].buf = std::span{slab_->data(id), slab_->slot_bytes()};
      } else {
        slots[i].buf = std::span{arena.data() + i * dgram_cap, dgram_cap};
      }
    }
    const UdpChannel::RecvBatchResult r = channel_.recv_batch(slots);
    for (std::size_t i = 0; i < r.count; ++i) {
      const UdpChannel::RecvSlot& s = slots[i];
      RecvSlab* pkt_slab = slab_ids[i] >= 0 ? slab_.get() : nullptr;
      for_each_datagram({s.buf.data(), s.bytes}, s.gro_size,
                        [&](std::span<const std::uint8_t> pkt) {
                          dispatch(pkt, s.src, pkt_slab, slab_ids[i]);
                        });
      if (slab_ids[i] >= 0) {
        slab_->release(slab_ids[i]);
        slab_ids[i] = -1;
      }
    }
    // §4.8 timer check, shared-thread form: every attached socket's timers
    // are swept after a bounded receive, rate-limited so a busy port does
    // not pay the sweep per wakeup.
    const auto now = Clock::now();
    if (now - last_sweep >= kSweepGap) {
      last_sweep = now;
      sweep_timers();
    }
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slab_ids[i] >= 0) slab_->release(slab_ids[i]);
  }
}

void Multiplexer::sweep_timers() {
  {
    std::shared_lock al{attach_mu_};
    for (const auto& [id, s] : socks_) s->sweep_timers();
  }
  std::lock_guard lk{hs_mu_};
  evict_answered();
}

// ----------------------------------------------------------------- send ---

void Multiplexer::kick(Socket* s) {
  if (!running_) return;
  if (s->tx_scheduled_.exchange(true)) return;  // already queued
  {
    std::lock_guard lk{send_mu_};
    heap_.push_back(TxEntry{Clock::now(), order_++, s->socket_id_});
    std::push_heap(heap_.begin(), heap_.end(), TxLater{});
  }
  send_cv_.notify_one();
}

void Multiplexer::kick_all() {
  std::shared_lock al{attach_mu_};
  for (const auto& [id, s] : socks_) kick(s);
}

void Multiplexer::serve(std::uint32_t id) {
  std::shared_lock al{attach_mu_};
  const auto it = socks_.find(id);
  if (it == socks_.end()) return;  // detached after its entry was queued
  Socket* s = it->second;
  // Clear-then-recheck: the flag drops before tx_round reads the socket
  // state, so a kick landing mid-round either sees the flag down and queues
  // a fresh entry, or sees it up because we re-queued below — never lost.
  s->tx_scheduled_.store(false, std::memory_order_release);
  const auto next = s->tx_round();
  if (next == Clock::time_point::max()) return;  // parked until kicked
  if (s->tx_scheduled_.exchange(true)) return;   // a kick re-queued it first
  std::lock_guard lk{send_mu_};
  heap_.push_back(TxEntry{next, order_++, id});
  std::push_heap(heap_.begin(), heap_.end(), TxLater{});
}

void Multiplexer::send_loop() {
  // Safety net: losing a kick would strand a socket with queued data, so
  // every attached socket is re-kicked on a slow heartbeat; a parked socket
  // with no work simply parks again.
  constexpr auto kKickSweepGap = std::chrono::milliseconds{100};
  std::unique_lock lk{send_mu_};
  auto next_kick_sweep = Clock::now() + kKickSweepGap;
  while (running_) {
    const auto now = Clock::now();
    if (now >= next_kick_sweep) {
      next_kick_sweep = now + kKickSweepGap;
      lk.unlock();
      kick_all();
      lk.lock();
      continue;
    }
    if (heap_.empty()) {
      send_cv_.wait_until(lk, next_kick_sweep);
      continue;
    }
    const auto due = heap_.front().due;
    if (due > now) {
      if (due - now > Pacer::kSpinThreshold) {
        send_cv_.wait_until(lk,
                            std::min(due - Pacer::kSpinThreshold,
                                     next_kick_sweep));
      } else {
        // Sub-threshold remainder: spin for §4.5 precision, exactly as the
        // per-socket Pacer would.
        lk.unlock();
        Pacer::wait_until(due);
        lk.lock();
      }
      continue;
    }
    // Serve every socket due this instant outside the heap lock; FIFO order
    // among equal deadlines keeps service round-robin fair.
    due_scratch_.clear();
    while (!heap_.empty() && heap_.front().due <= now) {
      std::pop_heap(heap_.begin(), heap_.end(), TxLater{});
      due_scratch_.push_back(heap_.back().id);
      heap_.pop_back();
    }
    lk.unlock();
    for (const std::uint32_t id : due_scratch_) serve(id);
    lk.lock();
  }
}

}  // namespace udtr::udt
