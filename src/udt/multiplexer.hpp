// UDP multiplexer: one UDP port and one pair of service threads shared by
// every UDT socket bound to it (paper §4, Fig. 3 — concurrency must cost
// per-flow state, not per-flow threads).
//
// The legacy (PR 3) layout gives each socket its own UdpChannel plus a
// dedicated sender and receiver thread, which caps a process at hundreds of
// connections.  The multiplexer inverts the ownership: the channel, the
// receive slab and the two threads belong to the *port*, and sockets attach
// to it.
//
//   * The receive thread runs the same batched recv_batch / for_each_datagram
//     drain as the per-socket receiver, then demultiplexes each wire datagram
//     by the destination-socket-id field (validated in decode_*) and hands it
//     to the owning socket under that socket's lock.  Handshake requests
//     (dst id 0) rendezvous here too: they are answered from the duplicate-
//     handshake memory or queued for the listener's accept().
//   * The send thread services all attached sockets from a timestamp-ordered
//     min-heap of pacing deadlines.  Each socket keeps its own Pacer and
//     congestion state; a heap pop runs one tx_round (fill a batch-credit's
//     worth of packets, one gather/GSO syscall, advance the pacer) and pushes
//     the socket's next deadline back.  Ties are FIFO-ordered, which is what
//     makes service round-robin fair when many sockets are due at once.
//
// Accepted connections stay on the listener's port — no child channel — and
// connect()/listen() route through a small process-wide registry so client
// sockets with compatible options share one multiplexer.  The fault injector
// attaches per-multiplexer (it wraps the shared channel) and still sees every
// logical datagram, exactly as it did per-socket.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/channel.hpp"
#include "udt/packet.hpp"
#include "udt/pacing.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {

// Serializes one handshake control packet (16-byte header + payload) and
// sends it to `to`.  Shared by the socket's handshake paths and the
// multiplexer's duplicate-request re-replies.
void send_handshake_packet(UdpChannel& ch, const Endpoint& to,
                           std::uint32_t dst_id, const HandshakePayload& h);

class Multiplexer : public std::enable_shared_from_this<Multiplexer> {
 public:
  using Clock = Pacer::Clock;

  // One handshake request parked for the listener's accept().
  struct PendingHandshake {
    Endpoint src;
    HandshakePayload req;
  };

  // Duplicate-handshake memory bounds: answered requests are remembered
  // until BOTH limits allow eviction pressure — the map is FIFO-capped at
  // kMaxAnswered and entries older than kAnsweredTtl are swept out — while
  // a request whose child socket is still attached is answered from the
  // live-children index regardless, so a slow SYN retransmit can never
  // spawn a ghost second socket for a live connection.
  static constexpr std::size_t kMaxAnswered = 1024;
  static constexpr std::chrono::seconds kAnsweredTtl{30};
  // Requests queued for accept(); overflow is dropped (the client simply
  // retransmits), so a SYN flood cannot grow the queue without bound.
  static constexpr std::size_t kMaxPendingHandshakes = 128;

  ~Multiplexer();
  Multiplexer(const Multiplexer&) = delete;
  Multiplexer& operator=(const Multiplexer&) = delete;

  // Opens a multiplexer on 127.0.0.1:`port` (0 = ephemeral) and starts its
  // two service threads.  nullptr when the bind fails (port in use).
  [[nodiscard]] static std::shared_ptr<Multiplexer> open(
      std::uint16_t port, const SocketOptions& opts);
  // Process-wide client registry: returns a live shared client-side
  // multiplexer whose configuration is compatible with `opts`, creating one
  // on an ephemeral port when none exists.
  [[nodiscard]] static std::shared_ptr<Multiplexer> for_client(
      const SocketOptions& opts);
  // Registry lookup by local port (nullptr when no live multiplexer owns
  // it).  Exposed for tests and diagnostics.
  [[nodiscard]] static std::shared_ptr<Multiplexer> find(std::uint16_t port);

  [[nodiscard]] UdpChannel& channel() { return channel_; }
  [[nodiscard]] std::uint16_t local_port() const {
    return channel_.local_port();
  }
  [[nodiscard]] const std::shared_ptr<RecvSlab>& shared_slab() const {
    return slab_;
  }

  // True when a socket with these options can share this multiplexer: same
  // fault/loss configuration (the injector is per-channel), same batching
  // and offload setup, and an MSS that fits the receive slots.
  [[nodiscard]] bool compatible(const SocketOptions& opts) const;

  // --- socket attachment --------------------------------------------------
  // Routes datagrams addressed to s->id() to `s`.  detach() blocks until no
  // service thread still holds a reference to `s`, so after it returns the
  // socket may be destroyed.
  void attach(Socket* s);
  // Accepted child: additionally remembers (peer ip, port, peer socket id)
  // -> `resp` in the live-children index for duplicate-request re-replies.
  void attach_child(Socket* s, const HandshakePayload& resp);
  void detach(Socket* s);

  // At most one listener per port; false when one is already attached.
  bool attach_listener(Socket* s);
  // Blocks up to `timeout` for a queued handshake request.
  [[nodiscard]] std::optional<PendingHandshake> wait_handshake(
      std::chrono::milliseconds timeout);
  // accept() declined a queued request (hostile MSS): forget it so the
  // peer's retransmit can be queued again.
  void reject_handshake(const Endpoint& src, std::uint32_t peer_socket_id);

  // --- send scheduling ----------------------------------------------------
  // Schedules `s` for a tx_round as soon as possible.  Idempotent while an
  // entry for the socket is already pending (at most one heap entry per
  // socket).  Safe to call with the socket's state_mu_ held.
  void kick(Socket* s);

  // --- diagnostics --------------------------------------------------------
  // Datagrams that could not be delivered to any attached socket: too short
  // to carry a header, unknown destination socket id, or a malformed
  // handshake.  The per-socket validation counters only see routable
  // traffic, so this is where wrong-destination packets land.
  [[nodiscard]] std::uint64_t unroutable_datagrams() const {
    return unroutable_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t attached_sockets() const;
  [[nodiscard]] std::size_t remembered_handshakes() const;

  // make_shared needs a public constructor; Private keeps it unusable
  // outside the factory functions.
  struct Private {};
  Multiplexer(Private, const SocketOptions& opts);

 private:
  using HsKey = std::tuple<std::uint32_t, std::uint16_t, std::uint32_t>;

  void start();
  void recv_loop();
  void send_loop();
  void dispatch(std::span<const std::uint8_t> pkt, const Endpoint& src,
                RecvSlab* slab, int slab_slot);
  void handle_handshake(std::span<const std::uint8_t> pkt,
                        const Endpoint& src);
  void serve(std::uint32_t id);
  void sweep_timers();
  void kick_all();
  // Moves a detached child's response into the answered (age+count bounded)
  // memory; hs_mu_ held.
  void remember_answered(const HsKey& key, const HandshakePayload& resp);
  void evict_answered();

  // Configuration fingerprint for compatible(); `cfg_` keeps the creating
  // socket's options (faults pointer identity included).
  SocketOptions cfg_;
  int io_batch_ = 16;
  std::size_t slot_bytes_ = 0;
  bool gro_ = false;
  bool client_shared_ = false;  // eligible for for_client() reuse

  UdpChannel channel_;
  std::shared_ptr<RecvSlab> slab_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> unroutable_{0};

  // Routing table.  The service threads hold it shared for the duration of
  // any call into a socket; attach/detach take it exclusively, so detach()
  // returning guarantees no service thread still references the socket.
  mutable std::shared_mutex attach_mu_;
  std::map<std::uint32_t, Socket*> socks_;

  // Handshake rendezvous between the receive thread and accept() callers,
  // plus the duplicate-handshake memory (see the constants above).
  mutable std::mutex hs_mu_;
  std::condition_variable hs_cv_;
  std::deque<PendingHandshake> pending_;
  std::set<HsKey> pending_keys_;
  struct Answered {
    HandshakePayload resp;
    Clock::time_point at;
  };
  std::map<HsKey, Answered> answered_;
  std::deque<HsKey> answered_order_;
  std::map<HsKey, HandshakePayload> child_resp_;  // live accepted children
  Socket* listener_ = nullptr;

  // Send heap: min-heap over (deadline, FIFO order) kept in a plain vector
  // via push_heap/pop_heap so steady-state scheduling never allocates.
  struct TxEntry {
    Clock::time_point due;
    std::uint64_t order = 0;
    std::uint32_t id = 0;
  };
  struct TxLater {
    bool operator()(const TxEntry& a, const TxEntry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.order > b.order;
    }
  };
  std::mutex send_mu_;
  std::condition_variable send_cv_;
  std::vector<TxEntry> heap_;
  std::uint64_t order_ = 0;
  std::vector<std::uint32_t> due_scratch_;

  std::thread rcv_thread_;
  std::thread snd_thread_;
};

}  // namespace udtr::udt
