// UDP multiplexer: one UDP port shared by every UDT socket bound to it
// (paper §4, Fig. 3 — concurrency must cost per-flow state, not per-flow
// threads), with the datapath sharded N ways across cores (§4.1–4.2: "even
// distribution of processing" is what lets the endpoint keep up with the
// wire).
//
// The PR 4 layout gave the port ONE rx/tx thread pair, one registry lock
// and one O(all sockets) timer sweep — a hard ceiling at scale.  This
// version splits the port into `SocketOptions::mux_shards` shards, each a
// self-contained slice of the PR 4 design:
//
//   * its own UdpChannel bound to the port via SO_REUSEPORT, with a
//     classic-BPF steering program on the group leader routing each
//     datagram by (UDT destination socket id) % N — so a flow's traffic
//     always lands on the shard that owns it, kernel-side.  Where
//     SO_REUSEPORT or the BPF attach is unavailable, all shards fall back
//     to one shared fd and the rx threads software-demux by the same hash.
//   * its own rx thread: batched recv_batch / for_each_datagram drain into
//     a shard-private RecvSlab, routing each datagram through the shard's
//     own socket index (a shared_mutex nobody else's hot path touches).
//   * its own tx thread and tx min-heap (thread-private — no heap lock at
//     all): sockets are rescheduled through a bounded lock-free SPSC
//     wakeup ring from the sibling rx thread, so an ACK arriving on shard
//     k re-arms the sender without a mutex.  Kicks from application
//     threads (send(), close()) or a foreign shard take a small
//     mutex-protected pending list instead — the SPSC invariant is
//     structural, not hopeful.
//   * its own hierarchical TimerWheel replacing the O(all-sockets)
//     sweep_timers() walk: each socket keeps one entry at its earliest
//     §4.8 deadline and the rx loop drains expirations in O(expired).
//
// Sockets are assigned shard = socket_id % N for their whole lifetime (the
// same function the BPF program computes), so the hot path never crosses
// shards.  Cross-shard deliveries still happen in two benign cases — a GRO
// super-datagram can coalesce segments of several flows behind the first
// segment's id, and fallback mode has every rx thread pulling from one fd —
// and then the receiving thread simply routes through the owning shard's
// index under its shared lock.
//
// Handshake rendezvous (dst id 0) stays port-global under hs_mu_: the BPF
// program steers id-0 (and short) datagrams to shard 0, but any shard may
// legally handle one in fallback mode.  Accepted connections stay on the
// listener's port, and connect()/listen() route through the process-wide
// registry exactly as before.  mux_shards = 1 reproduces the PR 4
// single-pair datapath byte-for-byte.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/channel.hpp"
#include "udt/handshake_cookie.hpp"
#include "udt/loss_list.hpp"
#include "udt/packet.hpp"
#include "udt/pacing.hpp"
#include "udt/socket.hpp"
#include "udt/timer_wheel.hpp"
#include "udt/ttl_map.hpp"
#include "udt/wakeup_ring.hpp"

namespace udtr::udt {

// Serializes one handshake control packet (16-byte header + payload) and
// sends it to `to`.  Shared by the socket's handshake paths and the
// multiplexer's duplicate-request re-replies.
void send_handshake_packet(UdpChannel& ch, const Endpoint& to,
                           std::uint32_t dst_id, const HandshakePayload& h);

// Effective shard count for `opts`: opts.mux_shards when positive, else the
// UDTR_MUX_SHARDS environment override, else min(4, hw_concurrency / 2).
// Clamped to [1, kMaxMuxShards].
[[nodiscard]] std::size_t resolve_mux_shards(const SocketOptions& opts);

class Multiplexer : public std::enable_shared_from_this<Multiplexer> {
 public:
  using Clock = Pacer::Clock;

  static constexpr std::size_t kMaxMuxShards = 16;

  // One handshake request parked for the listener's accept().
  struct PendingHandshake {
    Endpoint src;
    HandshakePayload req;
  };

  // Duplicate-handshake memory bounds: answered requests are remembered
  // until BOTH limits allow eviction pressure — the map is FIFO-capped at
  // kMaxAnswered and entries older than kAnsweredTtl are swept out — while
  // a request whose child socket is still attached is answered from the
  // live-children index regardless, so a slow SYN retransmit can never
  // spawn a ghost second socket for a live connection.
  static constexpr std::size_t kMaxAnswered = 1024;
  static constexpr std::chrono::seconds kAnsweredTtl{30};
  // Requests queued for accept(); overflow is dropped (the client simply
  // retransmits), so a SYN flood cannot grow the queue without bound.
  static constexpr std::size_t kMaxPendingHandshakes = 128;

  ~Multiplexer();
  Multiplexer(const Multiplexer&) = delete;
  Multiplexer& operator=(const Multiplexer&) = delete;

  // Opens a multiplexer on 127.0.0.1:`port` (0 = ephemeral) and starts one
  // rx/tx thread pair per shard.  nullptr when the bind fails (port in
  // use).
  [[nodiscard]] static std::shared_ptr<Multiplexer> open(
      std::uint16_t port, const SocketOptions& opts);
  // Process-wide client registry: returns a live shared client-side
  // multiplexer whose configuration is compatible with `opts`, creating one
  // on an ephemeral port when none exists.
  [[nodiscard]] static std::shared_ptr<Multiplexer> for_client(
      const SocketOptions& opts);
  // Registry lookup by local port (nullptr when no live multiplexer owns
  // it).  Exposed for tests and diagnostics.
  [[nodiscard]] static std::shared_ptr<Multiplexer> find(std::uint16_t port);

  // Shard 0's channel: the reuseport group leader (or the single shared fd
  // in fallback mode).  Handshake traffic leaves through it.
  [[nodiscard]] UdpChannel& channel() { return *shards_[0]->channel; }
  // The channel the socket with this id sends on: its owning shard's fd in
  // steered mode, the shared fd in fallback mode.
  [[nodiscard]] UdpChannel& channel_for(std::uint32_t socket_id);
  [[nodiscard]] std::uint16_t local_port() const {
    return shards_[0]->channel->local_port();
  }
  // The receive slab backing the shard that owns `socket_id`.
  [[nodiscard]] const std::shared_ptr<RecvSlab>& slab_for(
      std::uint32_t socket_id) const;

  // --- shard topology -----------------------------------------------------
  [[nodiscard]] std::size_t shards() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(std::uint32_t socket_id) const {
    return socket_id % shards_.size();
  }
  // True when the kernel steers datagrams to shard fds by socket id
  // (SO_REUSEPORT + cBPF); false in the software-demux fallback.
  [[nodiscard]] bool kernel_steered() const { return steered_; }
  // True when every shard channel runs the io_uring backend (selection is
  // all-or-nothing at start()); false on mmsg, or after probe fallback.
  [[nodiscard]] bool uring_active() const;

  // True when a socket with these options can share this multiplexer: same
  // fault/loss configuration (the injector is per-channel), same batching,
  // offload and shard setup, and an MSS that fits the receive slots.
  [[nodiscard]] bool compatible(const SocketOptions& opts) const;

  // --- socket attachment --------------------------------------------------
  // Routes datagrams addressed to s->id() to `s` (on shard id % N) and arms
  // its timer-wheel entry.  detach() blocks until no service thread still
  // holds a reference to `s`, so after it returns the socket may be
  // destroyed.
  void attach(Socket* s);
  // Accepted child: additionally remembers (peer ip, port, peer socket id)
  // -> `resp` in the live-children index for duplicate-request re-replies.
  void attach_child(Socket* s, const HandshakePayload& resp);
  void detach(Socket* s);
  // (Re)arms the socket's wheel entry to fire immediately — used when a
  // socket enters steady state after attaching (the first sweep computes
  // its real deadline).
  void arm_timer(Socket* s);

  // At most one listener per port; false when one is already attached.
  bool attach_listener(Socket* s);
  // Blocks up to `timeout` for a queued handshake request.
  [[nodiscard]] std::optional<PendingHandshake> wait_handshake(
      std::chrono::milliseconds timeout);
  // accept() declined a queued request (hostile MSS): forget it so the
  // peer's retransmit can be queued again.
  void reject_handshake(const Endpoint& src, std::uint32_t peer_socket_id);

  // --- send scheduling ----------------------------------------------------
  // Schedules `s` for a tx_round as soon as possible.  Idempotent while an
  // entry for the socket is already pending (at most one heap entry per
  // socket).  Safe to call with the socket's state_mu_ held.  Lock-free
  // when called from the owning shard's rx thread (the common ACK-arrival
  // case); other callers go through the shard's pending list.
  void kick(Socket* s);

  // The shard-shared loss-list node pool for the shard owning `socket_id`;
  // sockets attach it before entering steady state so their (lazily
  // allocated) loss-list arrays recycle through the shard instead of
  // churning the heap.
  [[nodiscard]] std::shared_ptr<LossList::NodePool> loss_pool(
      std::uint32_t socket_id) const;

  // --- diagnostics --------------------------------------------------------
  // Datagrams that could not be delivered to any attached socket: too short
  // to carry a header, unknown destination socket id, or a malformed
  // handshake.  The per-socket validation counters only see routable
  // traffic, so this is where wrong-destination packets land.
  [[nodiscard]] std::uint64_t unroutable_datagrams() const {
    return unroutable_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t attached_sockets() const;
  [[nodiscard]] std::size_t remembered_handshakes() const;
  // Handshakes parked for accept() right now (zero while a stateless
  // listener is being flooded with cookie-less requests — the flood test's
  // core assertion).
  [[nodiscard]] std::size_t pending_handshakes() const;
  // Admission / cookie counters (port-global, hs_mu_-guarded writes).
  [[nodiscard]] std::uint64_t accept_queue_drops() const {
    return accept_queue_drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t handshake_admission_drops() const {
    return admission_drops_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cookie_challenges() const {
    return cookie_challenges_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cookie_rejects() const {
    return cookie_rejects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cookie_expired() const {
    return cookie_expired_.load(std::memory_order_relaxed);
  }
  // Message-mode counters aggregated over every socket on the port: one
  // relaxed increment per event from the socket hot paths, so a fleet-wide
  // dashboard needs one multiplexer read instead of walking the sockets.
  [[nodiscard]] std::uint64_t msgs_sent() const {
    return msgs_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t msgs_delivered() const {
    return msgs_delivered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t msgs_dropped_ttl() const {
    return msgs_dropped_ttl_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t msg_drop_ctrl_sent() const {
    return msg_drop_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t msg_drop_ctrl_recv() const {
    return msg_drop_recv_.load(std::memory_order_relaxed);
  }
  void note_msgs_sent() {
    msgs_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_msgs_delivered() {
    msgs_delivered_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_msgs_dropped_ttl() {
    msgs_dropped_ttl_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_msg_drop_sent() {
    msg_drop_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_msg_drop_recv() {
    msg_drop_recv_.fetch_add(1, std::memory_order_relaxed);
  }
  // Sources currently tracked by the admission table (bounded by
  // SocketOptions::max_tracked_ips no matter how many sources flood).
  [[nodiscard]] std::size_t admission_tracked_ips() const;
  // Timer-wheel work counters summed over shards: drain() calls made by the
  // rx loops, and entries fired (each fire = one socket sweep).  With the
  // legacy full-walk env override these count the walk instead, so the
  // bench comparing O(active) vs O(all) reads the same counters both ways.
  [[nodiscard]] std::uint64_t timer_sweep_calls() const;
  [[nodiscard]] std::uint64_t timer_socket_sweeps() const;
  // UDP I/O system calls summed over the port's channels (each owning shard
  // counted once, whichever backend is active) — the Table 3 "syscalls per
  // packet" numerator.
  [[nodiscard]] std::uint64_t send_syscalls() const;
  [[nodiscard]] std::uint64_t recv_syscalls() const;

  // make_shared needs a public constructor; Private keeps it unusable
  // outside the factory functions.
  struct Private {};
  Multiplexer(Private, const SocketOptions& opts);

 private:
  using HsKey = std::tuple<std::uint32_t, std::uint16_t, std::uint32_t>;

  // Send heap entry: min-heap over (deadline, FIFO order) kept in a plain
  // vector via push_heap/pop_heap so steady-state scheduling never
  // allocates.
  struct TxEntry {
    Clock::time_point due;
    std::uint64_t order = 0;
    std::uint32_t id = 0;
  };
  struct TxLater {
    bool operator()(const TxEntry& a, const TxEntry& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.order > b.order;
    }
  };

  // One shard: a vertical slice of the datapath.  Everything here belongs
  // to the shard's two threads except `socks` (shared_mutex: rx threads of
  // any shard may read on cross-shard delivery; attach/detach write), the
  // wheel (internal mutex) and the wakeup plumbing (see kick()).
  struct Shard {
    std::size_t index = 0;
    // The shard's own reuseport fd; null on shards > 0 in fallback mode.
    std::unique_ptr<UdpChannel> channel;
    UdpChannel* io = nullptr;  // channel.get(), or shard 0's in fallback
    std::shared_ptr<RecvSlab> slab;
    TimerWheel wheel;

    mutable std::shared_mutex attach_mu;
    std::map<std::uint32_t, Socket*> socks;

    // rx -> tx wakeups.  Ring: pushed only by this shard's rx thread,
    // popped only by its tx thread.  pending/tx_cv: every other producer,
    // plus the tx thread's sleep.  tx_idle participates in a store-fence-
    // load handshake with ring pushes so a push can never be slept through
    // (see kick() / tx_park()).
    WakeupRing<1024> ring;
    std::mutex pending_mu;
    std::condition_variable tx_cv;
    std::vector<std::uint32_t> pending_kicks;
    std::atomic<std::uint32_t> pending_n{0};
    std::atomic<bool> tx_idle{false};

    // tx-thread private (no lock): the shard's deadline heap.
    std::vector<TxEntry> heap;
    std::uint64_t order = 0;
    std::vector<std::uint32_t> due_scratch;

    // Timer accounting for the O(expired)-vs-O(all) acceptance bench.
    std::atomic<std::uint64_t> sweep_calls{0};
    std::atomic<std::uint64_t> socket_sweeps{0};

    // Loss-list node arrays recycled across the shard's sockets.
    std::shared_ptr<LossList::NodePool> loss_pool =
        std::make_shared<LossList::NodePool>();

    std::thread rx_thread;
    std::thread tx_thread;
  };

  void start();
  void rx_loop(Shard& sh);
  void tx_loop(Shard& sh);
  // Parks the tx thread until `deadline` or a wakeup; the idle handshake
  // with kick()'s lock-free path lives here.
  void tx_park(Shard& sh, Clock::time_point deadline);
  void dispatch(std::span<const std::uint8_t> pkt, const Endpoint& src,
                RecvSlab* slab, int slab_slot);
  void handle_handshake(std::span<const std::uint8_t> pkt,
                        const Endpoint& src);
  void serve(Shard& sh, std::uint32_t id);
  // Heartbeat re-kick of every socket the shard owns (see tx_loop).
  void kick_all(Shard& sh);
  // Wheel expiry: sweep one socket's §4.8 timers and re-arm its entry.
  void fire_timer(Shard& sh, std::uint64_t key);
  // Pulls the socket's wheel deadline in to now + SYN after a delivery so a
  // parked (EXP-horizon) socket resumes ACK cadence promptly.
  void tighten_timer(Shard& owner, Socket* s);
  // Legacy O(all-sockets) walk (UDTR_FULL_SWEEP=1): kept as a safety valve
  // and as the measurable "PR 4 baseline" for the timer-cost bench.
  void full_sweep(Shard& sh);
  [[nodiscard]] Shard& shard_for(std::uint32_t socket_id) {
    return *shards_[socket_id % shards_.size()];
  }
  // Moves a detached child's response into the answered (age+count bounded)
  // memory; hs_mu_ held.
  void remember_answered(const HsKey& key, const HandshakePayload& resp);
  void evict_answered();

  // Configuration fingerprint for compatible(); `cfg_` keeps the creating
  // socket's options (faults pointer identity included).
  SocketOptions cfg_;
  int io_batch_ = 16;
  std::size_t slot_bytes_ = 0;
  bool gro_ = false;
  bool client_shared_ = false;  // eligible for for_client() reuse
  bool steered_ = false;
  bool legacy_sweep_ = false;  // UDTR_FULL_SWEEP=1
  std::chrono::microseconds syn_us_{10000};

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> unroutable_{0};

  // Handshake rendezvous between the rx threads and accept() callers, plus
  // the duplicate-handshake memory (see the constants above).  Port-global:
  // steering sends id-0 datagrams to shard 0, but fallback mode may handle
  // them from any rx thread.
  mutable std::mutex hs_mu_;
  std::condition_variable hs_cv_;
  std::deque<PendingHandshake> pending_;
  std::set<HsKey> pending_keys_;
  BoundedTtlMap<HsKey, HandshakePayload> answered_{kMaxAnswered,
                                                   kAnsweredTtl};
  std::map<HsKey, HandshakePayload> child_resp_;  // live accepted children
  Socket* listener_ = nullptr;
  // Stateless-handshake state (hs_mu_): the port's cookie keyring and the
  // per-source-IP admission table.  Lock order: hs_mu_ is a leaf — it is
  // never taken while holding a shard's attach_mu or any socket's
  // state_mu_, and nothing is acquired under it (challenge replies are
  // sent after it is dropped).
  CookieKeyring cookie_keys_;
  std::unique_ptr<AdmissionControl> admission_;
  std::atomic<std::uint64_t> accept_queue_drops_{0};
  std::atomic<std::uint64_t> admission_drops_{0};
  std::atomic<std::uint64_t> cookie_challenges_{0};
  std::atomic<std::uint64_t> cookie_rejects_{0};
  std::atomic<std::uint64_t> cookie_expired_{0};
  // Message-mode port-global counters (relaxed; written from socket paths).
  std::atomic<std::uint64_t> msgs_sent_{0};
  std::atomic<std::uint64_t> msgs_delivered_{0};
  std::atomic<std::uint64_t> msgs_dropped_ttl_{0};
  std::atomic<std::uint64_t> msg_drop_sent_{0};
  std::atomic<std::uint64_t> msg_drop_recv_{0};
};

}  // namespace udtr::udt
