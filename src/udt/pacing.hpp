// High-precision pacing timer (paper §4.5).
//
// General-purpose OS sleep granularity (~1 ms historically, ~50 us today) is
// far too coarse to space packets microseconds apart, and a per-burst
// counter makes rate control meaningless at high speed.  UDT's answer is a
// hybrid: sleep for the bulk of the interval when it is long enough for the
// OS to honour, then busy-wait on the monotonic clock for the remainder.
#pragma once

#include <algorithm>
#include <chrono>
#include <thread>

namespace udtr::udt {

class Pacer {
 public:
  using Clock = std::chrono::steady_clock;

  // Intervals below this are pure spin; above it we sleep for all but the
  // spin margin.  50 us is a conservative bound on scheduler wakeup jitter.
  static constexpr std::chrono::microseconds kSpinThreshold{50};

  Pacer() : next_(Clock::now()) {}

  // Blocks until the scheduled send instant, then advances the schedule by
  // `period`.  If we are already late, sending proceeds immediately and the
  // schedule re-anchors at now (no packet bursts to "catch up" — that would
  // defeat rate control, §4.5).
  void pace(std::chrono::nanoseconds period) { pace(period, 1); }

  // Batched variant: one wait covers `count` back-to-back packets, and the
  // schedule advances by count * period, so the average rate is exactly the
  // per-packet schedule while the syscall cost is paid once per batch.  The
  // §3.3 inter-packet spacing becomes inter-*batch* spacing; callers bound
  // the batch to a small horizon (see batch_credit) so the burst stays well
  // under kernel buffer scale.  The late-schedule re-anchor rule is
  // unchanged.
  void pace(std::chrono::nanoseconds period, int count) {
    const auto total = period * std::max(count, 1);
    const auto now = Clock::now();
    if (next_ <= now) {
      next_ = now + total;
      return;
    }
    wait_until(next_);
    next_ += total;
  }

  // Non-blocking variant for an external scheduler (the multiplexer's send
  // heap): the caller is expected to have waited until next_send() itself
  // before sending `count` packets, and this advances the schedule exactly
  // as pace() would have — including the late re-anchor rule, so a socket
  // that fell behind resumes at its rate instead of bursting to catch up.
  void schedule(std::chrono::nanoseconds period, int count) {
    const auto total = period * std::max(count, 1);
    const auto now = Clock::now();
    if (next_ <= now) {
      next_ = now + total;
    } else {
      next_ += total;
    }
  }

  // Re-anchors the schedule (e.g. after a freeze or an idle stretch).
  void reset() { next_ = Clock::now(); }
  void delay_until(Clock::time_point t) {
    if (t > next_) next_ = t;
  }
  [[nodiscard]] Clock::time_point next_send() const { return next_; }

  static void wait_until(Clock::time_point t) {
    auto now = Clock::now();
    if (t - now > kSpinThreshold) {
      std::this_thread::sleep_until(t - kSpinThreshold);
    }
    while (Clock::now() < t) {
      // busy wait: sub-threshold precision is unavailable from the scheduler
    }
  }

 private:
  Clock::time_point next_;
};

// How many packets one send syscall may cover at the given pacing period
// without distorting the §4.5 schedule: enough to amortise the syscall at
// high rates, but never spanning more than `horizon` of schedule, and
// always 1 when the period itself exceeds the horizon (low rates keep true
// per-packet spacing).  `max_batch` is the caller's hard ceiling (iovec
// array size / SocketOptions::io_batch).
[[nodiscard]] inline int batch_credit(std::chrono::nanoseconds period,
                                      int max_batch,
                                      std::chrono::nanoseconds horizon =
                                          std::chrono::microseconds{200}) {
  if (max_batch <= 1) return 1;
  if (period <= std::chrono::nanoseconds::zero()) return max_batch;
  const auto n = horizon.count() / period.count();
  return static_cast<int>(
      std::clamp<std::int64_t>(n, 1, static_cast<std::int64_t>(max_batch)));
}

// --- GSO run sizing ---------------------------------------------------------
//
// A UDP_SEGMENT super-datagram is one pacing unit: the kernel emits its
// segments back-to-back, so a run must never exceed the batch credit the
// pacer granted (the credit already bounds the burst to the §4.5 horizon).
// On top of that the kernel imposes hard limits: at most 64 segments, and
// the whole payload must fit one 16-bit UDP datagram.
inline constexpr int kMaxGsoSegments = 64;
inline constexpr std::size_t kMaxGsoBytes = 65507;

// Largest number of `seg_bytes`-sized wire datagrams one GSO send may
// coalesce.  Callers take min(this, pacing credit) — and additionally never
// split an RBPP probe pair across two sends (the pair must stay
// back-to-back through one kernel traversal for §3.4 timing to hold).
[[nodiscard]] inline int gso_segment_cap(std::size_t seg_bytes) {
  if (seg_bytes == 0) return 1;
  return static_cast<int>(std::clamp<std::size_t>(
      kMaxGsoBytes / seg_bytes, 1, static_cast<std::size_t>(kMaxGsoSegments)));
}

}  // namespace udtr::udt
