// High-precision pacing timer (paper §4.5).
//
// General-purpose OS sleep granularity (~1 ms historically, ~50 us today) is
// far too coarse to space packets microseconds apart, and a per-burst
// counter makes rate control meaningless at high speed.  UDT's answer is a
// hybrid: sleep for the bulk of the interval when it is long enough for the
// OS to honour, then busy-wait on the monotonic clock for the remainder.
#pragma once

#include <chrono>
#include <thread>

namespace udtr::udt {

class Pacer {
 public:
  using Clock = std::chrono::steady_clock;

  // Intervals below this are pure spin; above it we sleep for all but the
  // spin margin.  50 us is a conservative bound on scheduler wakeup jitter.
  static constexpr std::chrono::microseconds kSpinThreshold{50};

  Pacer() : next_(Clock::now()) {}

  // Blocks until the scheduled send instant, then advances the schedule by
  // `period`.  If we are already late, sending proceeds immediately and the
  // schedule re-anchors at now (no packet bursts to "catch up" — that would
  // defeat rate control, §4.5).
  void pace(std::chrono::nanoseconds period) {
    const auto now = Clock::now();
    if (next_ <= now) {
      next_ = now + period;
      return;
    }
    wait_until(next_);
    next_ += period;
  }

  // Re-anchors the schedule (e.g. after a freeze or an idle stretch).
  void reset() { next_ = Clock::now(); }
  void delay_until(Clock::time_point t) {
    if (t > next_) next_ = t;
  }
  [[nodiscard]] Clock::time_point next_send() const { return next_; }

  static void wait_until(Clock::time_point t) {
    auto now = Clock::now();
    if (t - now > kSpinThreshold) {
      std::this_thread::sleep_until(t - kSpinThreshold);
    }
    while (Clock::now() < t) {
      // busy wait: sub-threshold precision is unavailable from the scheduler
    }
  }

 private:
  Clock::time_point next_;
};

}  // namespace udtr::udt
