#include "udt/packet.hpp"

namespace udtr::udt {

std::vector<std::uint32_t> encode_loss_ranges(
    std::span<const std::pair<udtr::SeqNo, udtr::SeqNo>> ranges) {
  std::vector<std::uint32_t> words;
  words.reserve(ranges.size() * 2);
  for (const auto& [first, last] : ranges) {
    if (first == last) {
      words.push_back(static_cast<std::uint32_t>(first.value()));
    } else {
      words.push_back(static_cast<std::uint32_t>(first.value()) | 0x80000000U);
      words.push_back(static_cast<std::uint32_t>(last.value()));
    }
  }
  return words;
}

std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> decode_loss_ranges(
    std::span<const std::uint32_t> words, std::size_t max_ranges) {
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges;
  for (std::size_t i = 0; i < words.size() && ranges.size() < max_ranges;
       ++i) {
    const std::uint32_t w = words[i];
    const udtr::SeqNo first{static_cast<std::int32_t>(w & 0x7FFFFFFFU)};
    if ((w & 0x80000000U) != 0) {
      if (i + 1 >= words.size()) break;  // truncated range: drop it
      const udtr::SeqNo last{
          static_cast<std::int32_t>(words[i + 1] & 0x7FFFFFFFU)};
      ranges.emplace_back(first, last);
      ++i;
    } else {
      ranges.emplace_back(first, first);
    }
  }
  return ranges;
}

// --- validated decode layer -------------------------------------------------

std::optional<DataHeader> decode_data_header(
    std::span<const std::uint8_t> pkt) {
  if (pkt.size() < kHeaderBytes || (pkt[0] & 0x80U) != 0) return std::nullopt;
  return read_data_header(pkt);
}

std::optional<CtrlHeader> decode_ctrl_header(
    std::span<const std::uint8_t> pkt) {
  if (pkt.size() < kHeaderBytes || (pkt[0] & 0x80U) == 0) return std::nullopt;
  const auto raw =
      static_cast<std::uint16_t>((load_be32(pkt.data()) >> 16) & 0x7FFFU);
  if (!is_known_ctrl_type(raw)) return std::nullopt;
  return read_ctrl_header(pkt);
}

std::optional<AckPayload> decode_ack_payload(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4 * AckPayload::kWords) return std::nullopt;
  AckPayload ack;
  ack.ack_seq = udtr::SeqNo{static_cast<std::int32_t>(
      load_be32(payload.data()) & udtr::SeqNo::kMax)};
  ack.rtt_us = load_be32(payload.data() + 4);
  ack.rtt_var_us = load_be32(payload.data() + 8);
  ack.avail_buffer_pkts = load_be32(payload.data() + 12);
  ack.recv_rate_pps = load_be32(payload.data() + 16);
  ack.capacity_pps = load_be32(payload.data() + 20);
  return ack;
}

std::optional<HandshakePayload> decode_handshake_payload(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4 * HandshakePayload::kWords) return std::nullopt;
  HandshakePayload h;
  h.version = load_be32(payload.data());
  h.initial_seq = load_be32(payload.data() + 4);
  h.mss_bytes = load_be32(payload.data() + 8);
  h.flight_window = load_be32(payload.data() + 12);
  h.request_type = load_be32(payload.data() + 16);
  h.socket_id = load_be32(payload.data() + 20);
  h.port = load_be32(payload.data() + 24);
  if (payload.size() >= 4 * HandshakePayload::kWordsWithCookie) {
    h.cookie = (std::uint64_t{load_be32(payload.data() + 28)} << 32) |
               std::uint64_t{load_be32(payload.data() + 32)};
  }
  return h;
}

std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> decode_nak_payload(
    std::span<const std::uint8_t> payload) {
  // At most 2 words per range need inspecting; anything past the cap is
  // either redundant or hostile, so it is simply not decoded.
  const std::size_t words_avail = payload.size() / 4;
  const std::size_t n = std::min(words_avail, 2 * kMaxNakRanges);
  std::vector<std::uint32_t> words(n);
  for (std::size_t i = 0; i < n; ++i) {
    words[i] = load_be32(payload.data() + 4 * i);
  }
  return decode_loss_ranges(words, kMaxNakRanges);
}

std::size_t encode_msg_drop_payload(std::span<std::uint8_t> out,
                                    const MsgDropPayload& drop) {
  store_be32(out.data(),
             static_cast<std::uint32_t>(drop.first.value()) | 0x80000000U);
  store_be32(out.data() + 4, static_cast<std::uint32_t>(drop.last.value()));
  return 4 * MsgDropPayload::kWords;
}

std::optional<MsgDropPayload> decode_msg_drop_payload(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4 * MsgDropPayload::kWords) return std::nullopt;
  const std::uint32_t w0 = load_be32(payload.data());
  if ((w0 & 0x80000000U) == 0) return std::nullopt;  // range-open bit missing
  MsgDropPayload drop;
  drop.first = udtr::SeqNo{static_cast<std::int32_t>(w0 & 0x7FFFFFFFU)};
  drop.last = udtr::SeqNo{
      static_cast<std::int32_t>(load_be32(payload.data() + 4) & 0x7FFFFFFFU)};
  if (udtr::SeqNo::offset(drop.first, drop.last) < 0) return std::nullopt;
  return drop;
}

std::size_t encode_ack_payload(std::span<std::uint8_t> out,
                               const AckPayload& ack) {
  store_be32(out.data(), static_cast<std::uint32_t>(ack.ack_seq.value()));
  store_be32(out.data() + 4, ack.rtt_us);
  store_be32(out.data() + 8, ack.rtt_var_us);
  store_be32(out.data() + 12, ack.avail_buffer_pkts);
  store_be32(out.data() + 16, ack.recv_rate_pps);
  store_be32(out.data() + 20, ack.capacity_pps);
  return 4 * AckPayload::kWords;
}

std::size_t encode_handshake_payload(std::span<std::uint8_t> out,
                                     const HandshakePayload& hs) {
  store_be32(out.data(), hs.version);
  store_be32(out.data() + 4, hs.initial_seq);
  store_be32(out.data() + 8, hs.mss_bytes);
  store_be32(out.data() + 12, hs.flight_window);
  store_be32(out.data() + 16, hs.request_type);
  store_be32(out.data() + 20, hs.socket_id);
  store_be32(out.data() + 24, hs.port);
  store_be32(out.data() + 28, static_cast<std::uint32_t>(hs.cookie >> 32));
  store_be32(out.data() + 32, static_cast<std::uint32_t>(hs.cookie));
  return 4 * HandshakePayload::kWordsWithCookie;
}

}  // namespace udtr::udt
