#include "udt/packet.hpp"

namespace udtr::udt {

std::vector<std::uint32_t> encode_loss_ranges(
    std::span<const std::pair<udtr::SeqNo, udtr::SeqNo>> ranges) {
  std::vector<std::uint32_t> words;
  words.reserve(ranges.size() * 2);
  for (const auto& [first, last] : ranges) {
    if (first == last) {
      words.push_back(static_cast<std::uint32_t>(first.value()));
    } else {
      words.push_back(static_cast<std::uint32_t>(first.value()) | 0x80000000U);
      words.push_back(static_cast<std::uint32_t>(last.value()));
    }
  }
  return words;
}

std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> decode_loss_ranges(
    std::span<const std::uint32_t> words) {
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges;
  for (std::size_t i = 0; i < words.size(); ++i) {
    const std::uint32_t w = words[i];
    const udtr::SeqNo first{static_cast<std::int32_t>(w & 0x7FFFFFFFU)};
    if ((w & 0x80000000U) != 0) {
      if (i + 1 >= words.size()) break;  // truncated range: drop it
      const udtr::SeqNo last{
          static_cast<std::int32_t>(words[i + 1] & 0x7FFFFFFFU)};
      ranges.emplace_back(first, last);
      ++i;
    } else {
      ranges.emplace_back(first, first);
    }
  }
  return ranges;
}

}  // namespace udtr::udt
