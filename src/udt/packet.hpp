// UDT wire format (paper §3.1, §4.8 and the Appendix's NAK compression).
//
// Every packet starts with a 16-byte header of four 32-bit big-endian words.
// Data packet:
//   word0:  bit31 = 0 | 31-bit sequence number
//   word1:  message/boundary flags (unused in stream mode, kept for layout)
//   word2:  timestamp (us since connection start)
//   word3:  destination socket id
// Control packet:
//   word0:  bit31 = 1 | 15-bit type | 16-bit reserved
//   word1:  additional info (ACK id for ACK/ACK2)
//   word2:  timestamp
//   word3:  destination socket id
//   payload: type-specific array of 32-bit words.
//
// The NAK payload uses the Appendix encoding: a sequence number with bit 31
// set opens a range that the following word closes; a clear bit 31 reports a
// single loss.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/seqno.hpp"

namespace udtr::udt {

inline constexpr std::size_t kHeaderBytes = 16;
// Cap on loss ranges per NAK: keeps the packet inside one datagram on the
// way out and bounds what a corrupt or hostile NAK can make the sender do
// on the way in.
inline constexpr std::size_t kMaxNakRanges = 128;

enum class CtrlType : std::uint16_t {
  kHandshake = 0,
  kKeepAlive = 1,
  kAck = 2,
  kNak = 3,
  // Receiver-side PCT/PDT delay-trend congestion warning (§6): sent by a
  // receiver running with SocketOptions::delay_warnings, delivered to the
  // data sender's congestion controller as on_delay_warning().  No payload.
  kDelayWarn = 4,
  kShutdown = 5,
  kAck2 = 6,
  // Partial reliability (message mode): the sender gave up on a TTL-expired
  // message; the payload carries the message's inclusive sequence range so
  // the receiver can seal the hole instead of NAKing it forever.  The 29-bit
  // message number rides in the header's info word.
  kMsgDrop = 7,
};

// --- message-boundary word (data-header word1) ------------------------------
//
// Real UDT's m_nHeader[1]: bits 31..30 = ff boundary flags (11 solo,
// 10 first, 01 last, 00 middle), bit 29 = o (deliver in order), bits 28..0 =
// message number.  Stream-mode packets keep the whole word zero — message
// number 0 is reserved as the stream sentinel, so the stream wire format is
// byte-for-byte what it always was.
inline constexpr std::uint32_t kMsgNoMask = 0x1FFFFFFFU;
inline constexpr std::uint32_t kMsgInOrderBit = 0x20000000U;

enum class MsgBoundary : std::uint32_t {
  kMiddle = 0,
  kLast = 1,
  kFirst = 2,
  kSolo = 3,
};

[[nodiscard]] inline std::uint32_t make_msg_word(MsgBoundary b, bool in_order,
                                                 std::uint32_t msg_no) {
  return (static_cast<std::uint32_t>(b) << 30) |
         (in_order ? kMsgInOrderBit : 0U) | (msg_no & kMsgNoMask);
}
[[nodiscard]] inline MsgBoundary msg_boundary(std::uint32_t word) {
  return static_cast<MsgBoundary>(word >> 30);
}
[[nodiscard]] inline bool msg_in_order(std::uint32_t word) {
  return (word & kMsgInOrderBit) != 0;
}
[[nodiscard]] inline std::uint32_t msg_number(std::uint32_t word) {
  return word & kMsgNoMask;
}

// Host/network conversion helpers (UDT is big-endian on the wire).
[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

struct DataHeader {
  udtr::SeqNo seq;
  std::uint32_t msg_word = 0;  // word1; 0 = stream-mode packet
  std::uint32_t timestamp_us = 0;
  std::uint32_t dst_socket = 0;
};

struct CtrlHeader {
  CtrlType type = CtrlType::kKeepAlive;
  std::uint32_t info = 0;  // ACK id, etc.
  std::uint32_t timestamp_us = 0;
  std::uint32_t dst_socket = 0;
};

// ACK control payload (7 words, mirrors UDT's "full" ACK).
struct AckPayload {
  udtr::SeqNo ack_seq;            // all packets before this were received
  std::uint32_t rtt_us = 0;
  std::uint32_t rtt_var_us = 0;
  std::uint32_t avail_buffer_pkts = 0;  // flow-control feedback
  std::uint32_t recv_rate_pps = 0;      // arrival speed (median filtered)
  std::uint32_t capacity_pps = 0;       // RBPP link capacity
  static constexpr std::size_t kWords = 6;
};

// Handshake request_type values.  A stateless listener answers the first
// (cookie-less) request with a kHsChallenge carrying a signed cookie; the
// client echoes it in a second kHsRequest and only then does the listener
// allocate state.  Legacy peers never send or expect kHsChallenge.
inline constexpr std::uint32_t kHsResponse = 0;
inline constexpr std::uint32_t kHsRequest = 1;
inline constexpr std::uint32_t kHsChallenge = 2;

// Handshake payload.  The legacy form is 7 words; cookie-aware stacks append
// a 64-bit SYN-cookie (two words, big-endian, high word first).  Decoders
// accept both: a payload shorter than kWordsWithCookie simply yields
// cookie == 0, so old and new stacks interoperate in either direction.
struct HandshakePayload {
  std::uint32_t version = 4;
  std::uint32_t initial_seq = 0;
  std::uint32_t mss_bytes = 1500;
  std::uint32_t flight_window = 25600;
  std::uint32_t request_type = kHsRequest;
  std::uint32_t socket_id = 0;
  std::uint32_t port = 0;      // redirect port in responses
  std::uint64_t cookie = 0;    // stateless-handshake cookie (0 = none)
  static constexpr std::size_t kWords = 7;            // legacy minimum
  static constexpr std::size_t kWordsWithCookie = 9;  // what we emit
};

[[nodiscard]] inline bool is_control(std::span<const std::uint8_t> pkt) {
  return pkt.size() >= kHeaderBytes && (pkt[0] & 0x80U) != 0;
}

[[nodiscard]] inline bool is_data(std::span<const std::uint8_t> pkt) {
  return pkt.size() >= kHeaderBytes && (pkt[0] & 0x80U) == 0;
}

// Calls `fn` once per logical datagram inside a possibly-GRO-coalesced
// receive buffer, decoding segment boundaries in place (no copy): the
// kernel's coalescing rule is that every segment spans `seg_size` bytes
// except the last, which may be shorter.  `seg_size` == 0 means the buffer
// was not coalesced and is a single datagram.
template <typename Fn>
inline void for_each_datagram(std::span<const std::uint8_t> buf,
                              std::size_t seg_size, Fn&& fn) {
  if (seg_size == 0 || seg_size >= buf.size()) {
    fn(buf);
    return;
  }
  for (std::size_t off = 0; off < buf.size(); off += seg_size) {
    fn(buf.subspan(off, std::min(seg_size, buf.size() - off)));
  }
}

[[nodiscard]] inline bool is_known_ctrl_type(std::uint16_t raw) {
  switch (static_cast<CtrlType>(raw)) {
    case CtrlType::kHandshake:
    case CtrlType::kKeepAlive:
    case CtrlType::kAck:
    case CtrlType::kNak:
    case CtrlType::kDelayWarn:
    case CtrlType::kShutdown:
    case CtrlType::kAck2:
    case CtrlType::kMsgDrop:
      return true;
  }
  return false;
}

// --- data packets -----------------------------------------------------------

inline void write_data_header(std::span<std::uint8_t> buf,
                              const DataHeader& h) {
  store_be32(buf.data(), static_cast<std::uint32_t>(h.seq.value()));
  store_be32(buf.data() + 4, h.msg_word);
  store_be32(buf.data() + 8, h.timestamp_us);
  store_be32(buf.data() + 12, h.dst_socket);
}

[[nodiscard]] inline DataHeader read_data_header(
    std::span<const std::uint8_t> buf) {
  DataHeader h;
  h.seq = udtr::SeqNo{static_cast<std::int32_t>(load_be32(buf.data()))};
  h.msg_word = load_be32(buf.data() + 4);
  h.timestamp_us = load_be32(buf.data() + 8);
  h.dst_socket = load_be32(buf.data() + 12);
  return h;
}

// --- control packets --------------------------------------------------------

inline void write_ctrl_header(std::span<std::uint8_t> buf,
                              const CtrlHeader& h) {
  const auto word0 = 0x80000000U |
                     (static_cast<std::uint32_t>(h.type) << 16);
  store_be32(buf.data(), word0);
  store_be32(buf.data() + 4, h.info);
  store_be32(buf.data() + 8, h.timestamp_us);
  store_be32(buf.data() + 12, h.dst_socket);
}

[[nodiscard]] inline CtrlHeader read_ctrl_header(
    std::span<const std::uint8_t> buf) {
  CtrlHeader h;
  h.type = static_cast<CtrlType>((load_be32(buf.data()) >> 16) & 0x7FFFU);
  h.info = load_be32(buf.data() + 4);
  h.timestamp_us = load_be32(buf.data() + 8);
  h.dst_socket = load_be32(buf.data() + 12);
  return h;
}

inline std::size_t write_words(std::span<std::uint8_t> buf,
                               std::span<const std::uint32_t> words) {
  for (std::size_t i = 0; i < words.size(); ++i) {
    store_be32(buf.data() + 4 * i, words[i]);
  }
  return 4 * words.size();
}

// --- NAK loss-list compression (Appendix) -----------------------------------

// Encodes inclusive loss ranges; a range [a, b] with a != b becomes two
// words (a | bit31, b); a single loss becomes one word.
[[nodiscard]] std::vector<std::uint32_t> encode_loss_ranges(
    std::span<const std::pair<udtr::SeqNo, udtr::SeqNo>> ranges);

// Decodes a NAK payload back into inclusive ranges.  Malformed trailing
// range-opens are ignored; at most `max_ranges` are returned so an
// oversized payload cannot amplify into unbounded sender-side work.
[[nodiscard]] std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>>
decode_loss_ranges(std::span<const std::uint32_t> words,
                   std::size_t max_ranges = SIZE_MAX);

// --- validated decode layer -------------------------------------------------
//
// The read_* helpers above assume a well-formed buffer and are kept for the
// hot paths that already verified the size.  Everything that touches bytes
// straight off the wire goes through these instead: they bounds-check first
// and return nullopt for anything short, truncated, or of unknown type, so
// a corrupt datagram dies at the decode boundary instead of deeper in the
// protocol state machine.

[[nodiscard]] std::optional<DataHeader> decode_data_header(
    std::span<const std::uint8_t> pkt);

// Rejects short buffers, data packets, and unknown control types.
[[nodiscard]] std::optional<CtrlHeader> decode_ctrl_header(
    std::span<const std::uint8_t> pkt);

// `payload` is the bytes after the 16-byte header.
[[nodiscard]] std::optional<AckPayload> decode_ack_payload(
    std::span<const std::uint8_t> payload);
[[nodiscard]] std::optional<HandshakePayload> decode_handshake_payload(
    std::span<const std::uint8_t> payload);

// Decodes a whole NAK payload (bytes after the header) into ranges, capped
// at kMaxNakRanges.  A payload that is not a multiple of 4 bytes is carrying
// garbage; the trailing fragment is ignored.
[[nodiscard]] std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>>
decode_nak_payload(std::span<const std::uint8_t> payload);

// kMsgDrop payload: the dropped message's inclusive sequence range, always
// the NAK encoding's explicit two-word form (first | bit31, last) even when
// first == last.  The decoder rejects short payloads, a missing range-open
// bit, and ranges inverted in circular order.
struct MsgDropPayload {
  udtr::SeqNo first;
  udtr::SeqNo last;
  static constexpr std::size_t kWords = 2;
};

std::size_t encode_msg_drop_payload(std::span<std::uint8_t> out,
                                    const MsgDropPayload& drop);
[[nodiscard]] std::optional<MsgDropPayload> decode_msg_drop_payload(
    std::span<const std::uint8_t> payload);

std::size_t encode_ack_payload(std::span<std::uint8_t> out,
                               const AckPayload& ack);
std::size_t encode_handshake_payload(std::span<std::uint8_t> out,
                                     const HandshakePayload& hs);

}  // namespace udtr::udt
