#include "udt/poller.hpp"

#include <algorithm>

#include "udt/socket.hpp"

namespace udtr::udt {

namespace {

// One mutex guards every Poller's entries_ and every Socket's watchers_.
// A global lock is the point, not a shortcut: the notification path runs
// with the socket's state_mu_ held, so per-poller locks would need a
// socket-lock -> poller-lock order while wait() naturally wants the
// reverse.  With a single registry mutex the order is fixed (state_mu_
// before g_poll_mu, never after) and wait() computes readiness with no
// registry lock held at all.
std::mutex g_poll_mu;

}  // namespace

Poller::~Poller() {
  std::lock_guard lk{g_poll_mu};
  for (const Entry& e : entries_) {
    auto& w = e.sock->watchers_;
    std::erase(w, this);
    e.sock->watched_.store(!w.empty(), std::memory_order_release);
  }
  entries_.clear();
}

bool Poller::add(Socket* s, std::uint32_t mask) {
  if (s == nullptr || mask == 0) return false;
  {
    std::lock_guard lk{g_poll_mu};
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.sock == s; });
    if (it != entries_.end()) {
      it->mask = mask;
    } else {
      entries_.push_back(Entry{s, mask});
      s->watchers_.push_back(this);
      s->watched_.store(true, std::memory_order_release);
    }
  }
  // The socket may already be ready: bump the version so a concurrent
  // wait() re-snapshots instead of sleeping through the level.
  poke();
  return true;
}

void Poller::remove(Socket* s) {
  std::lock_guard lk{g_poll_mu};
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.sock == s; });
  if (it == entries_.end()) return;
  entries_.erase(it);
  auto& w = s->watchers_;
  std::erase(w, this);
  s->watched_.store(!w.empty(), std::memory_order_release);
}

std::size_t Poller::size() const {
  std::lock_guard lk{g_poll_mu};
  return entries_.size();
}

void Poller::poke() {
  version_.fetch_add(1, std::memory_order_seq_cst);
  // Nobody parked: the bump alone is enough (a waiter about to park
  // re-reads version_ under wake_mu_ and sees it).  This keeps the hot
  // notification path — every arrival and ACK of a watched socket, from
  // every shard — down to two uncontended atomic operations.
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  // The empty critical section serializes against a waiter between its
  // predicate check and its sleep; notifying after it cannot be lost.
  { std::lock_guard lk{wake_mu_}; }
  wake_cv_.notify_all();
}

std::size_t Poller::wait(std::span<PollEvent> out,
                         std::chrono::milliseconds timeout) {
  if (out.empty()) return 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // Order matters: capture the wakeup version BEFORE scanning, so an edge
    // that fires between the scan and the wait is seen as a version change
    // and re-scanned rather than slept through.
    const std::uint64_t seen = version_.load(std::memory_order_seq_cst);
    {
      std::lock_guard lk{g_poll_mu};
      wait_scratch_ = entries_;
    }
    std::size_t n = 0;
    for (const Entry& e : wait_scratch_) {
      // kPollErr is always reported, matching epoll.
      const std::uint32_t ready = e.sock->poll_ready(e.mask | kPollErr);
      if (ready != 0 && n < out.size()) {
        out[n++] = PollEvent{e.sock, ready};
      }
    }
    if (n > 0) return n;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;
    std::unique_lock lk{wake_mu_};
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    wake_cv_.wait_until(lk, deadline, [&] {
      return version_.load(std::memory_order_seq_cst) != seen;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

// --- Socket side -------------------------------------------------------------

void Socket::poke_watchers() {
  if (!watched_.load(std::memory_order_acquire)) return;
  // Snapshot under the registry lock, poke outside it: poke() only touches
  // the poller's own wake_mu_, but keeping lock scopes minimal keeps the
  // ordering story simple (g_poll_mu is a leaf except for wake_mu_).
  std::lock_guard lk{g_poll_mu};
  for (Poller* p : watchers_) p->poke();
}

void Socket::drop_watchers() {
  std::lock_guard lk{g_poll_mu};
  for (Poller* p : watchers_) {
    std::erase_if(p->entries_, [&](const Poller::Entry& e) {
      return e.sock == this;
    });
    p->poke();
  }
  watchers_.clear();
  watched_.store(false, std::memory_order_release);
}

std::uint32_t Socket::poll_ready(std::uint32_t mask) const {
  std::uint32_t ready = 0;
  std::lock_guard lk{state_mu_};
  const bool broken = state_ == ConnState::kBroken;
  if ((mask & kPollIn) != 0 &&
      (rcv_buffer_.readable_bytes() > 0 || peer_shutdown_ || broken ||
       state_ == ConnState::kClosed)) {
    ready |= kPollIn;
  }
  if ((mask & kPollOut) != 0 && running_ && state_ == ConnState::kEstablished &&
      snd_buffer_.free_bytes() > 0) {
    ready |= kPollOut;
  }
  if ((mask & kPollErr) != 0 && broken) {
    ready |= kPollErr;
  }
  return ready;
}

}  // namespace udtr::udt
