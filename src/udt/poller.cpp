#include "udt/poller.hpp"

#include <algorithm>

#include "udt/socket.hpp"

namespace udtr::udt {

namespace {

// One mutex guards every Poller's entries_ and every Socket's watchers_.
// A global lock is the point, not a shortcut: the notification path runs
// with the socket's state_mu_ held, so per-poller locks would need a
// socket-lock -> poller-lock order while wait() naturally wants the
// reverse.  With a single registry mutex the order is fixed (state_mu_
// before g_poll_mu, never after) and wait() computes readiness with no
// registry lock held at all.
std::mutex g_poll_mu;

}  // namespace

Poller::~Poller() {
  std::lock_guard lk{g_poll_mu};
  for (const auto& [s, e] : entries_) {
    auto& w = s->watchers_;
    std::erase(w, this);
    s->watched_.store(!w.empty(), std::memory_order_release);
  }
  entries_.clear();
  ready_.clear();
}

void Poller::mark_ready_locked(Socket* s) {
  const auto it = entries_.find(s);
  if (it != entries_.end() && !it->second.queued) {
    it->second.queued = true;
    ready_.push_back(s);
  }
}

void Poller::purge_ready_locked(Socket* s) {
  std::erase(ready_, s);
}

bool Poller::add(Socket* s, std::uint32_t mask) {
  if (s == nullptr || mask == 0) return false;
  {
    std::lock_guard lk{g_poll_mu};
    auto [it, inserted] = entries_.try_emplace(s);
    it->second.mask = mask;
    if (inserted) {
      s->watchers_.push_back(this);
      s->watched_.store(true, std::memory_order_release);
    }
    // Seed the ready queue: the socket may already be at level, and
    // wait_many only ever looks at queued sockets.
    mark_ready_locked(s);
  }
  // The socket may already be ready: bump the version so a concurrent
  // wait() re-snapshots instead of sleeping through the level.
  poke();
  return true;
}

void Poller::remove(Socket* s) {
  std::lock_guard lk{g_poll_mu};
  const auto it = entries_.find(s);
  if (it == entries_.end()) return;
  if (it->second.queued) purge_ready_locked(s);
  entries_.erase(it);
  auto& w = s->watchers_;
  std::erase(w, this);
  s->watched_.store(!w.empty(), std::memory_order_release);
}

std::size_t Poller::size() const {
  std::lock_guard lk{g_poll_mu};
  return entries_.size();
}

void Poller::poke() {
  version_.fetch_add(1, std::memory_order_seq_cst);
  // Nobody parked: the bump alone is enough (a waiter about to park
  // re-reads version_ under wake_mu_ and sees it).  This keeps the hot
  // notification path — every arrival and ACK of a watched socket, from
  // every shard — down to two uncontended atomic operations.
  if (waiters_.load(std::memory_order_seq_cst) == 0) return;
  // The empty critical section serializes against a waiter between its
  // predicate check and its sleep; notifying after it cannot be lost.
  { std::lock_guard lk{wake_mu_}; }
  wake_cv_.notify_all();
}

std::size_t Poller::wait(std::span<PollEvent> out,
                         std::chrono::milliseconds timeout) {
  if (out.empty()) return 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // Order matters: capture the wakeup version BEFORE scanning, so an edge
    // that fires between the scan and the wait is seen as a version change
    // and re-scanned rather than slept through.
    const std::uint64_t seen = version_.load(std::memory_order_seq_cst);
    {
      std::lock_guard lk{g_poll_mu};
      wait_scratch_.clear();
      for (const auto& [s, e] : entries_) wait_scratch_.emplace_back(s, e.mask);
    }
    std::size_t n = 0;
    for (const auto& [s, mask] : wait_scratch_) {
      // kPollErr is always reported, matching epoll.
      const std::uint32_t ready = s->poll_ready(mask | kPollErr);
      if (ready != 0 && n < out.size()) {
        out[n++] = PollEvent{s, ready};
      }
    }
    if (n > 0) return n;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;
    std::unique_lock lk{wake_mu_};
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    wake_cv_.wait_until(lk, deadline, [&] {
      return version_.load(std::memory_order_seq_cst) != seen;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

std::size_t Poller::wait_many(std::span<PollEvent> out,
                              std::chrono::milliseconds timeout) {
  if (out.empty()) return 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // Capture the wakeup version BEFORE draining: an edge that lands after
    // the drain (even for a socket we just found not-ready) changes the
    // version and forces a re-drain instead of being slept through.
    const std::uint64_t seen = version_.load(std::memory_order_seq_cst);
    {
      std::lock_guard lk{g_poll_mu};
      wait_scratch_.clear();
      for (Socket* s : ready_) {
        const auto it = entries_.find(s);
        if (it == entries_.end()) continue;
        it->second.queued = false;
        wait_scratch_.emplace_back(s, it->second.mask);
      }
      ready_.clear();
    }
    // Verify each candidate's level without the registry lock (poll_ready
    // takes the socket's state_mu_, which must never nest inside
    // g_poll_mu).
    std::size_t n = 0;
    requeue_scratch_.clear();
    for (const auto& [s, mask] : wait_scratch_) {
      const std::uint32_t ready = s->poll_ready(mask | kPollErr);
      if (ready == 0) continue;  // its next edge will re-queue it
      if (n < out.size()) out[n++] = PollEvent{s, ready};
      // Still at level (or reported, or overflowed out): stay queued so the
      // next call sees it again — that is what keeps this level-triggered.
      requeue_scratch_.push_back(s);
    }
    if (!requeue_scratch_.empty()) {
      std::lock_guard lk{g_poll_mu};
      for (Socket* s : requeue_scratch_) mark_ready_locked(s);
    }
    if (n > 0) return n;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return 0;
    std::unique_lock lk{wake_mu_};
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    wake_cv_.wait_until(lk, deadline, [&] {
      return version_.load(std::memory_order_seq_cst) != seen;
    });
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
  }
}

// --- Socket side -------------------------------------------------------------

void Socket::poke_watchers() {
  if (!watched_.load(std::memory_order_acquire)) return;
  // Mark + poke under the registry lock: poke() only touches the poller's
  // own wake_mu_, and g_poll_mu is a leaf except for wake_mu_.  The mark is
  // the edge that feeds wait_many's ready queue.
  std::lock_guard lk{g_poll_mu};
  for (Poller* p : watchers_) {
    p->mark_ready_locked(this);
    p->poke();
  }
}

void Socket::drop_watchers() {
  std::lock_guard lk{g_poll_mu};
  for (Poller* p : watchers_) {
    p->purge_ready_locked(this);
    p->entries_.erase(this);
    p->poke();
  }
  watchers_.clear();
  watched_.store(false, std::memory_order_release);
}

std::uint32_t Socket::poll_ready(std::uint32_t mask) const {
  std::uint32_t ready = 0;
  std::lock_guard lk{state_mu_};
  const bool broken = state_ == ConnState::kBroken;
  if ((mask & kPollIn) != 0 &&
      (rcv_buffer_.readable_bytes() > 0 || rcv_buffer_.msg_ready() ||
       peer_shutdown_ || broken || state_ == ConnState::kClosed)) {
    ready |= kPollIn;
  }
  if ((mask & kPollOut) != 0 && running_ && state_ == ConnState::kEstablished &&
      snd_buffer_.free_bytes() > 0) {
    ready |= kPollOut;
  }
  if ((mask & kPollErr) != 0 && broken) {
    ready |= kPollErr;
  }
  return ready;
}

}  // namespace udtr::udt
