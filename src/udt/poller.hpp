// udt::Poller — epoll-style readiness for UDT sockets.
//
// One application thread can drive thousands of multiplexed sockets by
// registering them with a Poller and blocking in wait() instead of blocking
// inside per-socket recv()/send() calls.  Readiness is *level-triggered*:
// wait() reports a socket for as long as the condition holds, computed
// fresh from the socket's protocol buffers under its own lock —
//
//   kPollIn   data is readable (RcvBuffer has contiguous bytes), the peer
//             shut down (recv() would return 0 = EOF), or the connection
//             broke;
//   kPollOut  the connection is established and SndBuffer has free space
//             (send() would accept bytes without blocking);
//   kPollErr  the connection is broken (EXP escalation declared the peer
//             dead — Socket::last_error() has the reason).
//
// Sockets feed the poller edge notifications from the points where their
// state changes (data arrival, ACK freeing send-buffer space, shutdown,
// breakage), so wait() wakes promptly; the level-triggered recheck makes
// those wakeups advisory — a spurious or consumed edge is harmless.
//
// Locking: a single registry mutex (internal to poller.cpp) guards every
// poller's socket list and every socket's watcher list, and is taken after
// a socket's state_mu_ on the notification path and before it never —
// wait() drops the registry mutex before computing readiness.  A Poller and
// its Sockets may be destroyed in either order; each side deregisters
// itself from the other.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

namespace udtr::udt {

class Socket;

inline constexpr std::uint32_t kPollIn = 0x1;
inline constexpr std::uint32_t kPollOut = 0x2;
inline constexpr std::uint32_t kPollErr = 0x4;

struct PollEvent {
  Socket* sock = nullptr;
  std::uint32_t events = 0;
};

class Poller {
 public:
  Poller() = default;
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers `s` for the conditions in `mask` (kPollErr is always
  // reported; including it in the mask is optional, matching epoll).
  // Re-adding an already-registered socket updates its mask.  Returns false
  // on a null socket or empty mask.
  bool add(Socket* s, std::uint32_t mask);
  // Removes `s`; a no-op when it was never added.
  void remove(Socket* s);

  // Blocks until at least one registered socket is ready or `timeout`
  // elapses, fills `out` with ready sockets (up to out.size()) and returns
  // the number filled; 0 on timeout or when nothing is registered.  Scans
  // every registered socket per wakeup — fine for hundreds of sockets,
  // ruinous for a 100k fleet; prefer wait_many there.
  std::size_t wait(std::span<PollEvent> out, std::chrono::milliseconds timeout);

  // Fleet-scale wait: instead of scanning all registered sockets, drains
  // the edge-seeded ready queue (sockets whose state changed since they
  // were last reported) and verifies each candidate's level before
  // reporting it.  Cost per wakeup is O(candidates), independent of the
  // number of registered sockets, so one application thread can drive a
  // ~100k-socket fleet.  Semantics are still level-triggered: a reported
  // socket is re-queued and reported again on the next call for as long as
  // its condition holds.  Same return contract as wait().
  std::size_t wait_many(std::span<PollEvent> out,
                        std::chrono::milliseconds timeout);

  [[nodiscard]] std::size_t size() const;

 private:
  friend class Socket;

  struct Entry {
    std::uint32_t mask = 0;
    bool queued = false;  // sitting in ready_ awaiting a wait_many drain
  };

  // Edge notification from a watched socket (registry mutex held).
  void poke();
  // Queues `s` for wait_many (registry mutex held by the caller).
  void mark_ready_locked(Socket* s);
  void purge_ready_locked(Socket* s);

  std::unordered_map<Socket*, Entry> entries_;  // guarded by registry mutex
  std::vector<Socket*> ready_;                  // guarded by registry mutex
  // wait()/wait_many()-thread private scratch.
  std::vector<std::pair<Socket*, std::uint32_t>> wait_scratch_;
  std::vector<Socket*> requeue_scratch_;

  mutable std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  // poke() is on the datapath (every arrival/ACK of a watched socket, from
  // any multiplexer shard), so it must not take wake_mu_ unless someone is
  // actually asleep: it bumps version_ and looks at waiters_, both seq_cst
  // so a waiter registering concurrently either is seen (and notified under
  // the mutex) or itself sees the new version before sleeping.
  std::atomic<std::uint64_t> version_{0};
  std::atomic<int> waiters_{0};  // wait() calls parked in wake_cv_
};

}  // namespace udtr::udt
