// Intentionally empty: Profiler is header-only; this TU anchors the target.
#include "udt/profiler.hpp"
