// Per-functional-unit CPU-time accounting (the VTune substitute for
// Table 3).  Each protocol function wraps its body in a ScopedTimer; the
// report gives the share of total instrumented time per unit, which is what
// the paper's table compares (UDP writing vs timing vs packing vs ...).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace udtr::udt {

enum class ProfUnit : std::size_t {
  kUdpIo = 0,       // sendto / recvfrom system calls
  kTiming,          // pacing waits (busy wait + sleep)
  kPacking,         // header serialization + payload copy out of SndBuffer
  kUnpacking,       // header parse + payload copy into RcvBuffer
  kCtrlProcessing,  // ACK/ACK2/NAK handling
  kLossProcessing,  // loss-list insert/remove
  kRateMeasure,     // bandwidth / RTT / arrival-speed bookkeeping
  kAppInteraction,  // send()/recv() copies and wakeups
  kCount,
};

[[nodiscard]] constexpr std::string_view prof_unit_name(ProfUnit u) {
  switch (u) {
    case ProfUnit::kUdpIo: return "udp-io";
    case ProfUnit::kTiming: return "timing";
    case ProfUnit::kPacking: return "packing";
    case ProfUnit::kUnpacking: return "unpacking";
    case ProfUnit::kCtrlProcessing: return "ctrl-processing";
    case ProfUnit::kLossProcessing: return "loss-processing";
    case ProfUnit::kRateMeasure: return "rate-measurement";
    case ProfUnit::kAppInteraction: return "app-interaction";
    case ProfUnit::kCount: break;
  }
  return "?";
}

class Profiler {
 public:
  // `calls` is the number of instrumented invocations the `ns` span covers
  // (for kUdpIo: system calls).  Batched I/O makes the distinction matter —
  // one recvmmsg may deliver 16 packets, and the calls-per-packet ratio is
  // the direct measure of what batching buys.
  void add(ProfUnit unit, std::uint64_t ns, std::uint64_t calls = 1) {
    cells_[static_cast<std::size_t>(unit)].fetch_add(
        ns, std::memory_order_relaxed);
    calls_[static_cast<std::size_t>(unit)].fetch_add(
        calls, std::memory_order_relaxed);
  }

  // Payload bytes memcpy'd inside this unit (Table 3's packing/unpacking
  // rows are copy costs; the zero-copy datapath is measured by this counter
  // going to zero while the unit's call count stays up).
  void add_bytes(ProfUnit unit, std::uint64_t bytes) {
    bytes_[static_cast<std::size_t>(unit)].fetch_add(
        bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t nanos(ProfUnit unit) const {
    return cells_[static_cast<std::size_t>(unit)].load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t calls(ProfUnit unit) const {
    return calls_[static_cast<std::size_t>(unit)].load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bytes(ProfUnit unit) const {
    return bytes_[static_cast<std::size_t>(unit)].load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_nanos() const {
    std::uint64_t t = 0;
    for (const auto& c : cells_) t += c.load(std::memory_order_relaxed);
    return t;
  }

  struct Share {
    ProfUnit unit;
    std::uint64_t nanos;
    double percent;
    std::uint64_t calls;
    std::uint64_t bytes;  // payload bytes memcpy'd within the unit
  };

  [[nodiscard]] std::vector<Share> report() const {
    const double total = static_cast<double>(total_nanos());
    std::vector<Share> out;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const std::uint64_t ns = cells_[i].load(std::memory_order_relaxed);
      out.push_back({static_cast<ProfUnit>(i), ns,
                     total > 0 ? 100.0 * ns / total : 0.0,
                     calls_[i].load(std::memory_order_relaxed),
                     bytes_[i].load(std::memory_order_relaxed)});
    }
    return out;
  }

  void reset() {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
    for (auto& c : calls_) c.store(0, std::memory_order_relaxed);
    for (auto& c : bytes_) c.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(ProfUnit::kCount)>
      cells_{};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(ProfUnit::kCount)>
      calls_{};
  std::array<std::atomic<std::uint64_t>,
             static_cast<std::size_t>(ProfUnit::kCount)>
      bytes_{};
};

// RAII span around one instrumented section.  Disabled profilers (nullptr)
// cost a single branch.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* prof, ProfUnit unit) : prof_(prof), unit_(unit) {
    if (prof_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (prof_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      prof_->add(unit_, static_cast<std::uint64_t>(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* prof_;
  ProfUnit unit_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace udtr::udt
