// Per-functional-unit CPU-time accounting (the VTune substitute for
// Table 3).  Each protocol function wraps its body in a ScopedTimer; the
// report gives the share of total instrumented time per unit, which is what
// the paper's table compares (UDP writing vs timing vs packing vs ...).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

namespace udtr::udt {

enum class ProfUnit : std::size_t {
  kUdpIo = 0,       // sendto / recvfrom system calls
  kTiming,          // pacing waits (busy wait + sleep)
  kPacking,         // header serialization + payload copy out of SndBuffer
  kUnpacking,       // header parse + payload copy into RcvBuffer
  kCtrlProcessing,  // ACK/ACK2/NAK handling
  kLossProcessing,  // loss-list insert/remove
  kRateMeasure,     // bandwidth / RTT / arrival-speed bookkeeping
  kAppInteraction,  // send()/recv() copies and wakeups
  kTimerSweep,      // §4.8 timer checks (calls = sweep iterations)
  kCount,
};

[[nodiscard]] constexpr std::string_view prof_unit_name(ProfUnit u) {
  switch (u) {
    case ProfUnit::kUdpIo: return "udp-io";
    case ProfUnit::kTiming: return "timing";
    case ProfUnit::kPacking: return "packing";
    case ProfUnit::kUnpacking: return "unpacking";
    case ProfUnit::kCtrlProcessing: return "ctrl-processing";
    case ProfUnit::kLossProcessing: return "loss-processing";
    case ProfUnit::kRateMeasure: return "rate-measurement";
    case ProfUnit::kAppInteraction: return "app-interaction";
    case ProfUnit::kTimerSweep: return "timer-sweep";
    case ProfUnit::kCount: break;
  }
  return "?";
}

class Profiler {
 public:
  // `calls` is the number of instrumented invocations the `ns` span covers
  // (for kUdpIo: system calls).  Batched I/O makes the distinction matter —
  // one recvmmsg may deliver 16 packets, and the calls-per-packet ratio is
  // the direct measure of what batching buys.
  void add(ProfUnit unit, std::uint64_t ns, std::uint64_t calls = 1) {
    Cell& c = cells_[static_cast<std::size_t>(unit)];
    c.ns.fetch_add(ns, std::memory_order_relaxed);
    c.calls.fetch_add(calls, std::memory_order_relaxed);
  }

  // Payload bytes memcpy'd inside this unit (Table 3's packing/unpacking
  // rows are copy costs; the zero-copy datapath is measured by this counter
  // going to zero while the unit's call count stays up).
  void add_bytes(ProfUnit unit, std::uint64_t bytes) {
    cells_[static_cast<std::size_t>(unit)].bytes.fetch_add(
        bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t nanos(ProfUnit unit) const {
    return cells_[static_cast<std::size_t>(unit)].ns.load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t calls(ProfUnit unit) const {
    return cells_[static_cast<std::size_t>(unit)].calls.load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t bytes(ProfUnit unit) const {
    return cells_[static_cast<std::size_t>(unit)].bytes.load(
        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t total_nanos() const {
    std::uint64_t t = 0;
    for (const auto& c : cells_) t += c.ns.load(std::memory_order_relaxed);
    return t;
  }

  // How many multiplexer shards fed this profiler (1 in exclusive-port
  // mode).  Pure annotation for reports: sharded runs split one socket's
  // units across several service threads, and a reader comparing Table 3
  // shares run-over-run needs to know the thread layout behind them.
  void set_shards(int shards) {
    shards_.store(shards, std::memory_order_relaxed);
  }
  [[nodiscard]] int shards() const {
    return shards_.load(std::memory_order_relaxed);
  }

  struct Share {
    ProfUnit unit;
    std::uint64_t nanos;
    double percent;
    std::uint64_t calls;
    std::uint64_t bytes;  // payload bytes memcpy'd within the unit
  };

  [[nodiscard]] std::vector<Share> report() const {
    const double total = static_cast<double>(total_nanos());
    std::vector<Share> out;
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      const std::uint64_t ns = cells_[i].ns.load(std::memory_order_relaxed);
      out.push_back({static_cast<ProfUnit>(i), ns,
                     total > 0 ? 100.0 * ns / total : 0.0,
                     cells_[i].calls.load(std::memory_order_relaxed),
                     cells_[i].bytes.load(std::memory_order_relaxed)});
    }
    return out;
  }

  void reset() {
    for (auto& c : cells_) {
      c.ns.store(0, std::memory_order_relaxed);
      c.calls.store(0, std::memory_order_relaxed);
      c.bytes.store(0, std::memory_order_relaxed);
    }
  }

 private:
  // One cache line per unit: a shard's rx thread (unpacking, ctrl, timer
  // units) and its tx thread (packing, udp-io, timing) hammer different
  // units of the *same* socket's profiler concurrently, and sharing a line
  // between their counters would put a coherence miss on every sample.
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> bytes{0};
  };
  std::array<Cell, static_cast<std::size_t>(ProfUnit::kCount)> cells_{};
  std::atomic<int> shards_{1};
};

// RAII span around one instrumented section.  Disabled profilers (nullptr)
// cost a single branch.
class ScopedTimer {
 public:
  ScopedTimer(Profiler* prof, ProfUnit unit) : prof_(prof), unit_(unit) {
    if (prof_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (prof_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      prof_->add(unit_, static_cast<std::uint64_t>(ns));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Profiler* prof_;
  ProfUnit unit_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace udtr::udt
