#include "udt/socket.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <random>
#include <thread>

#include "udt/file_pipeline.hpp"
#include "udt/multiplexer.hpp"

namespace udtr::udt {

namespace {

constexpr std::uint16_t kDefaultIsn = 0;
constexpr int kHandshakeRetries = 50;
constexpr auto kHandshakeRetryGap = std::chrono::milliseconds{100};
// A shutdown is fire-and-forget; repeating it makes a single lost datagram
// unlikely to strand the peer until its EXP budget runs out.
constexpr int kShutdownRepeat = 3;
constexpr auto kShutdownGap = std::chrono::milliseconds{1};

std::uint32_t random_socket_id() {
  // Knuth multiplicative hash, truncated to 31 bits.  The multiplier is odd,
  // so x -> x * M mod 2^31 is a bijection: ids never collide until the
  // counter itself wraps (2^31 sockets), where the old `% 0x7FFFFFFF + 1`
  // folding produced birthday collisions within a ~100k-socket fleet.  Id 0
  // (reserved for handshake rendezvous) only maps from counter 0, which the
  // counter never revisits.
  static std::atomic<std::uint32_t> counter{1};
  return (counter.fetch_add(1) * 2654435761U) & 0x7FFFFFFFU;
}

// Loss-list node pool size.  With flow control on, in-flight data (and thus
// any loss range) is bounded by the receive window, which is itself bounded
// by rcv_buffer_pkts — a small floor suffices and keeps per-socket memory
// flat enough for hundreds of multiplexed connections per port.  With flow
// control off (Fig. 7 ablation) the window is effectively unbounded, so the
// historic large floor stays.
std::int32_t loss_list_capacity(const SocketOptions& o) {
  const std::int32_t floor_nodes = o.window_control ? 1 << 10 : 1 << 16;
  return std::max<std::int32_t>(2 * o.rcv_buffer_pkts, floor_nodes);
}

// listen()/connect() reject unknown algorithm names up front (nullptr),
// mirroring how every other invalid option surfaces.
bool congestion_name_ok(const SocketOptions& o) {
  if (o.congestion_factory || o.congestion.empty()) return true;
  const auto& names = congestion_names();
  return std::find(names.begin(), names.end(), o.congestion) != names.end();
}

// Sender-side zero-window persist probing: backoff cap (TCP's persist timer
// analogue, scaled to our SYN clock).
constexpr std::uint64_t kZwProbeCapUs = 500'000;

}  // namespace

Socket::Socket(SocketOptions opts)
    : opts_(opts),
      snd_buffer_(opts.mss_bytes, opts.snd_buffer_bytes),
      snd_loss_(loss_list_capacity(opts)),
      rcv_buffer_(opts.mss_bytes, opts.rcv_buffer_pkts),
      rcv_loss_(loss_list_capacity(opts)) {
  CcConfig c;
  c.mss_bytes = opts.mss_bytes + static_cast<int>(kHeaderBytes);
  c.syn_s = opts.syn_s;
  c.window_control = opts.window_control;
  c.max_window = opts.window_control
                     ? static_cast<double>(opts.rcv_buffer_pkts)
                     : 1e8;
  c.seed = random_socket_id();  // per-connection decrease spacing
  if (opts.congestion_factory) {
    cc_ = opts.congestion_factory(c);
  } else {
    cc_ = make_congestion(opts.congestion, c);
  }
  // Unknown names are rejected in listen()/connect(); a null factory result
  // still must not leave the socket without a controller.
  if (!cc_) cc_ = make_congestion("", c);
  isn_ = opts.initial_seq >= 0 ? opts.initial_seq : kDefaultIsn;
  socket_id_ = random_socket_id();
  epoch_ = std::chrono::steady_clock::now();
}

Socket::~Socket() {
  close();
  drop_watchers();
}

std::uint64_t Socket::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

// ------------------------------------------------------------ handshake ---

std::unique_ptr<Socket> Socket::listen(std::uint16_t port,
                                       SocketOptions opts) {
  if (!congestion_name_ok(opts)) return nullptr;
  auto s = std::unique_ptr<Socket>(new Socket(opts));
  s->mode_ = Mode::kListener;
  if (!opts.exclusive_port) {
    // Shared-port mode: the multiplexer owns the channel and its service
    // threads; the listener only parks on the handshake queue.  A bind
    // failure (port in use — by anyone, including another multiplexer in
    // this process) surfaces as nullptr exactly as before.
    auto mux = Multiplexer::open(port, opts);
    if (!mux || !mux->attach_listener(s.get())) return nullptr;
    s->net_ = &mux->channel();
    s->mux_ = std::move(mux);
    return s;
  }
  if (!s->channel_.open(port)) return nullptr;
  // Listeners never start service threads, so the fault injector must be
  // installed here for handshake traffic to pass through it.
  if (opts.faults) s->channel_.set_fault_injector(opts.faults);
  s->channel_.set_recv_timeout(std::chrono::milliseconds{100});
  // Exclusive-port stateless handshake: this listener owns its keyring (the
  // multiplexed path uses the port-wide one inside the Multiplexer).
  if (opts.stateless_handshake) {
    s->listener_keys_ = std::make_unique<CookieKeyring>();
  }
  return s;
}

std::unique_ptr<Socket> Socket::accept(std::chrono::milliseconds timeout) {
  if (mode_ != Mode::kListener) return nullptr;
  if (mux_) return accept_mux(timeout);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::vector<std::uint8_t> buf(2048);
  while (std::chrono::steady_clock::now() < deadline) {
    Endpoint src;
    const RecvResult r = channel_.recv_from(src, buf);
    if (r.status != RecvStatus::kDatagram || r.bytes < kHeaderBytes) continue;
    std::span<const std::uint8_t> pkt{buf.data(), r.bytes};
    const auto hdr = decode_ctrl_header(pkt);
    if (!hdr || hdr->type != CtrlType::kHandshake) continue;
    const auto req_opt = decode_handshake_payload(pkt.subspan(kHeaderBytes));
    if (!req_opt || req_opt->request_type != kHsRequest) continue;
    const HandshakePayload req = *req_opt;

    const auto now_clock = std::chrono::steady_clock::now();
    handled_.sweep(now_clock);
    // A retransmitted request (our earlier response was lost or is still in
    // flight) gets the recorded response again instead of a second socket.
    // Re-replies come before the cookie gate: the recorded response proves
    // the client already completed the round trip once.
    const auto key = std::pair{src.ip_host_order,
                               (std::uint32_t{src.port} << 16) | req.socket_id};
    if (const HandshakePayload* prev = handled_.find(key); prev != nullptr) {
      send_handshake_packet(channel_, src, req.socket_id, *prev);
      continue;
    }

    if (listener_keys_) {
      const auto now_sec = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::seconds>(
              now_clock.time_since_epoch())
              .count());
      if (req.cookie == 0) {
        // First contact: challenge with a signed cookie, keep no state.
        HandshakePayload challenge = req;
        challenge.request_type = kHsChallenge;
        challenge.cookie =
            listener_keys_->make(now_sec, src.ip_host_order, src.port, req);
        send_handshake_packet(channel_, src, req.socket_id, challenge);
        continue;
      }
      switch (listener_keys_->verify(now_sec, src.ip_host_order, src.port,
                                     req, req.cookie)) {
        case CookieKeyring::Verdict::kValid:
          break;
        case CookieKeyring::Verdict::kExpired: {
          // Authentic but stale: re-challenge so the client self-heals.
          {
            std::lock_guard lk{state_mu_};
            ++stats_.handshake_cookie_rejects;
          }
          HandshakePayload challenge = req;
          challenge.request_type = kHsChallenge;
          challenge.cookie =
              listener_keys_->make(now_sec, src.ip_host_order, src.port, req);
          send_handshake_packet(channel_, src, req.socket_id, challenge);
          continue;
        }
        case CookieKeyring::Verdict::kInvalid: {
          std::lock_guard lk{state_mu_};
          ++stats_.handshake_cookie_rejects;
          continue;
        }
      }
    }

    SocketOptions child_opts = opts_;
    child_opts.mss_bytes = static_cast<int>(
        std::min<std::uint32_t>(req.mss_bytes,
                                static_cast<std::uint32_t>(opts_.mss_bytes)));
    child_opts.initial_seq = req.initial_seq;
    // A zero-or-absurd MSS proposal would break buffer math downstream;
    // such a request is hostile or corrupt, not a client to serve.
    if (child_opts.mss_bytes <= 0) continue;
    auto child = std::unique_ptr<Socket>(new Socket(child_opts));
    if (!child->channel_.open(0)) {
      // Transient resource failure (fd exhaustion, ephemeral-port pressure)
      // must not kill the whole accept loop: drop this request — the client
      // retries its handshake — and keep serving others.
      continue;
    }
    // The child inherits the listener's injector, and it must be live
    // before the response below leaves — otherwise listener-side fault
    // configs silently skip the most loss-sensitive datagram of all.
    if (child_opts.faults) {
      child->channel_.set_fault_injector(child_opts.faults);
    }
    child->peer_ = src;
    child->peer_socket_id_ = req.socket_id;

    HandshakePayload resp;
    resp.request_type = kHsResponse;
    resp.initial_seq = req.initial_seq;
    resp.mss_bytes = static_cast<std::uint32_t>(child_opts.mss_bytes);
    resp.socket_id = child->socket_id_;
    resp.port = child->channel_.local_port();
    // The response leaves from the child's channel so the client learns the
    // dedicated endpoint from the datagram's source address (and from the
    // explicit port field, which duplicate-response handling relies on).
    send_handshake_packet(child->channel_, src, req.socket_id, resp);
    handled_.put(key, resp, now_clock);
    child->start_threads();
    return child;
  }
  return nullptr;
}

std::unique_ptr<Socket> Socket::accept_mux(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return nullptr;
    auto pending = mux_->wait_handshake(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!pending) continue;
    const HandshakePayload req = pending->req;

    SocketOptions child_opts = opts_;
    child_opts.mss_bytes = static_cast<int>(
        std::min<std::uint32_t>(req.mss_bytes,
                                static_cast<std::uint32_t>(opts_.mss_bytes)));
    child_opts.initial_seq = req.initial_seq;
    // A zero-or-absurd MSS proposal would break buffer math downstream;
    // such a request is hostile or corrupt, not a client to serve.
    if (child_opts.mss_bytes <= 0) {
      mux_->reject_handshake(pending->src, req.socket_id);
      continue;
    }
    auto child = std::unique_ptr<Socket>(new Socket(child_opts));
    // The child stays on the listener's port — no dedicated channel, no
    // service threads; the multiplexer routes by the child's socket id.
    child->mux_ = mux_;
    // The child sends through its owning shard's fd (same port — the
    // reuseport group shares it), so its tx traffic never contends with
    // other shards' sockets on one socket buffer.
    child->net_ = &mux_->channel_for(child->socket_id_);
    child->peer_ = pending->src;
    child->peer_socket_id_ = req.socket_id;

    HandshakePayload resp;
    resp.request_type = kHsResponse;
    resp.initial_seq = req.initial_seq;
    resp.mss_bytes = static_cast<std::uint32_t>(child_opts.mss_bytes);
    resp.socket_id = child->socket_id_;
    resp.port = mux_->local_port();
    // Order matters: the child must be in steady state before it becomes
    // routable (a datagram arriving mid-setup would be dropped), and
    // routable — with its response recorded for duplicate requests — before
    // the response leaves.
    child->setup_mux_mode();
    mux_->attach_child(child.get(), resp);
    send_handshake_packet(mux_->channel(), pending->src, req.socket_id, resp);
    return child;
  }
}

std::unique_ptr<Socket> Socket::connect(const std::string& host,
                                        std::uint16_t port,
                                        SocketOptions opts) {
  const auto server = Endpoint::resolve(host, port);
  if (!server) return nullptr;
  if (!congestion_name_ok(opts)) return nullptr;
  auto s = std::unique_ptr<Socket>(new Socket(opts));
  if (!opts.exclusive_port) return connect_mux(std::move(s), *server, opts);
  if (!s->channel_.open(0)) return nullptr;
  s->channel_.set_recv_timeout(kHandshakeRetryGap);

  HandshakePayload req;
  req.request_type = kHsRequest;
  req.initial_seq = static_cast<std::uint32_t>(s->isn_);
  req.mss_bytes = static_cast<std::uint32_t>(opts.mss_bytes);
  req.socket_id = s->socket_id_;

  std::vector<std::uint8_t> buf(2048);
  for (int attempt = 0; attempt < kHandshakeRetries; ++attempt) {
    send_handshake_packet(s->channel_, *server, 0, req);
    Endpoint src;
    const RecvResult r = s->channel_.recv_from(src, buf);
    if (r.status != RecvStatus::kDatagram || r.bytes < kHeaderBytes) continue;
    std::span<const std::uint8_t> pkt{buf.data(), r.bytes};
    const auto hdr = decode_ctrl_header(pkt);
    if (!hdr || hdr->type != CtrlType::kHandshake) continue;
    const auto resp_opt = decode_handshake_payload(pkt.subspan(kHeaderBytes));
    if (!resp_opt) continue;
    if (resp_opt->request_type == kHsChallenge) {
      // Stateless listener: echo its cookie with the same proposal.  The
      // recv above returned as soon as the challenge landed, so the extra
      // round trip costs one RTT, not a retry interval.
      req.cookie = resp_opt->cookie;
      continue;
    }
    if (resp_opt->request_type != kHsResponse) continue;
    const HandshakePayload resp = *resp_opt;
    // The negotiated MSS must land in (0, our proposal]: a corrupt or
    // hostile response advertising 0 (division in buffer math) or more than
    // we offered (overflows every MSS-sized buffer, distorts pacing) is
    // rejected, and the retry loop waits for a trustworthy response.
    if (resp.mss_bytes == 0 ||
        resp.mss_bytes > static_cast<std::uint32_t>(opts.mss_bytes)) {
      continue;
    }
    // The dedicated endpoint: the advertised port on the server's address
    // (the response may come from the listener when it was a re-reply).
    s->peer_ = Endpoint{server->ip_host_order,
                        static_cast<std::uint16_t>(resp.port)};
    s->peer_socket_id_ = resp.socket_id;
    if (static_cast<int>(resp.mss_bytes) != s->opts_.mss_bytes) {
      // The negotiated MSS is the smaller of the two proposals; rebuild the
      // (still empty) send buffer so chunks fit the agreed packet size.
      s->opts_.mss_bytes = static_cast<int>(resp.mss_bytes);
      s->snd_buffer_ = SndBuffer(s->opts_.mss_bytes, opts.snd_buffer_bytes);
    }
    s->start_threads();
    return s;
  }
  return nullptr;
}

std::unique_ptr<Socket> Socket::connect_mux(std::unique_ptr<Socket> s,
                                            const Endpoint& server,
                                            const SocketOptions& opts) {
  auto mux = Multiplexer::for_client(opts);
  if (!mux) return nullptr;
  s->mux_ = mux;
  s->net_ = &mux->channel_for(s->socket_id_);
  // Attach before the first request leaves: the response carries our socket
  // id as its destination, so it arrives through the normal routing path
  // and mux_ingest stashes it for us (state_ is still kConnecting).
  mux->attach(s.get());

  HandshakePayload req;
  req.request_type = kHsRequest;
  req.initial_seq = static_cast<std::uint32_t>(s->isn_);
  req.mss_bytes = static_cast<std::uint32_t>(opts.mss_bytes);
  req.socket_id = s->socket_id_;

  for (int attempt = 0; attempt < kHandshakeRetries; ++attempt) {
    send_handshake_packet(mux->channel(), server, 0, req);
    std::unique_lock lk{s->state_mu_};
    s->app_rcv_cv_.wait_for(lk, kHandshakeRetryGap,
                            [&] { return s->hs_resp_.has_value(); });
    if (!s->hs_resp_) continue;
    const HandshakePayload resp = *s->hs_resp_;
    s->hs_resp_.reset();
    if (resp.request_type == kHsChallenge) {
      // Stateless listener: echo its cookie and retry immediately (the wait
      // above woke as soon as the challenge arrived).
      req.cookie = resp.cookie;
      continue;
    }
    // Same trust boundary as the dedicated-channel path: the negotiated MSS
    // must land in (0, our proposal].
    if (resp.mss_bytes == 0 ||
        resp.mss_bytes > static_cast<std::uint32_t>(opts.mss_bytes)) {
      continue;
    }
    s->peer_ = Endpoint{server.ip_host_order,
                        static_cast<std::uint16_t>(resp.port)};
    s->peer_socket_id_ = resp.socket_id;
    if (static_cast<int>(resp.mss_bytes) != s->opts_.mss_bytes) {
      s->opts_.mss_bytes = static_cast<int>(resp.mss_bytes);
      s->snd_buffer_ = SndBuffer(s->opts_.mss_bytes, opts.snd_buffer_bytes);
    }
    lk.unlock();
    s->setup_mux_mode();
    return s;
  }
  mux->detach(s.get());
  return nullptr;
}

void Socket::start_threads() {
  channel_.set_recv_timeout(std::chrono::microseconds{
      static_cast<std::int64_t>(opts_.syn_s * 1e6 / 2)});
  channel_.set_buffer_sizes(4 << 20, 8 << 20);
  if (opts_.faults) {
    channel_.set_fault_injector(opts_.faults);
  } else if (opts_.loss_injection > 0.0) {
    channel_.set_fault_injector(make_loss_injector(
        opts_.loss_injection, opts_.loss_seed, kHeaderBytes + 16));
  }
  if (opts_.zero_copy) {
    // Receive slab: datagrams are parsed in place inside these slots and
    // RcvBuffer takes slot ownership, so the slots must cover the in-flight
    // working set, not just one batch.  With GRO each slot holds a whole
    // coalesced super-datagram (up to 64 KB); without it, one wire packet.
    // enable_gro() self-guards (off-Linux, UDTR_NO_GSO, fault injector).
    const auto max_batch =
        static_cast<std::size_t>(std::clamp(opts_.io_batch, 1, 64));
    const bool gro = opts_.gso && channel_.enable_gro();
    const std::size_t slot_bytes =
        gro ? 65535
            : static_cast<std::size_t>(opts_.mss_bytes) + kHeaderBytes + 64;
    const std::size_t slot_count =
        gro ? max_batch * 4 : std::max<std::size_t>(512, max_batch * 4);
    rcv_slab_ = std::make_unique<RecvSlab>(slot_bytes, slot_count);
  }
  epoch_ = std::chrono::steady_clock::now();
  last_ctrl_us_ = now_us();
  state_ = ConnState::kEstablished;
  running_ = true;
  snd_thread_ = std::thread([this] { sender_loop(); });
  rcv_thread_ = std::thread([this] { receiver_loop(); });
}

void Socket::setup_mux_mode() {
  // Loss-list node arrays recycle through the owning shard's pool instead
  // of churning the heap (they are also lazily allocated — an idle socket
  // never materializes them at all).
  snd_loss_.set_pool(mux_->loss_pool(socket_id_));
  rcv_loss_.set_pool(mux_->loss_pool(socket_id_));
  // Keep the shared receive slab alive past detach: RcvBuffer may still
  // hold payload references into it when this socket closes.
  mux_slab_ = mux_->slab_for(socket_id_);
  profiler_.set_shards(static_cast<int>(mux_->shards()));
  std::lock_guard lk{state_mu_};
  epoch_ = std::chrono::steady_clock::now();
  last_ctrl_us_ = now_us();
  state_ = ConnState::kEstablished;
  running_ = true;
}

// ---------------------------------------------------------- sender path ---

void Socket::prepare_tx_scratch() {
  // One slot per batch entry, plus one spare so an RBPP probe pair never
  // splits across two syscalls when the head lands on the batch edge.
  tx_max_batch_ = std::clamp(opts_.io_batch, 1, 64);
  const std::size_t nslots = static_cast<std::size_t>(tx_max_batch_) + 1;
  if (opts_.zero_copy) {
    // Zero-copy datapath: serialize only the 16-byte header into a pooled
    // slot and describe each datagram as (header, chunk) spans the kernel
    // gathers — the payload is read from the SndBuffer chunk where it
    // already lives, never staged.
    tx_headers_.resize(nslots);
    tx_gather_.reserve(nslots);
  } else {
    // Legacy datapath: stage header+payload into wire buffers, exactly the
    // PR 2 behavior.
    tx_wires_.assign(nslots,
                     std::vector<std::uint8_t>(
                         static_cast<std::size_t>(opts_.mss_bytes) +
                         kHeaderBytes));
    tx_batch_.reserve(nslots);
  }
}

double Socket::effective_snd_window() const {
  double wnd = cc_->window_packets();
  // The receiver's advertised free buffer is authoritative flow control —
  // including zero, which the controller never sees (its input floors at 2
  // so control laws keep their historic shape): a closed window is the
  // socket's business, reopened by the persist probe path, not a rate
  // signal.
  if (opts_.window_control && peer_ack_seen_) {
    wnd = std::min(wnd, peer_avail_pkts_);
  }
  return wnd;
}

bool Socket::snd_has_work() const {
  if (!snd_loss_.empty()) return true;
  const double wnd = effective_snd_window();
  return snd_next_ < snd_buffer_.end_index() &&
         static_cast<double>(snd_next_ - snd_una_) < wnd;
}

std::size_t Socket::fill_tx_batch(double& period_s) {
  // Lazy scratch: sized on the first batch this socket ever stages, so the
  // ~100 KB of wire buffers (legacy path) or header slots never exist for
  // sockets that never send.
  if (tx_max_batch_ == 0) prepare_tx_scratch();
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  const bool zero_copy = opts_.zero_copy;
  const std::size_t nslots = static_cast<std::size_t>(tx_max_batch_) + 1;
  tx_batch_.clear();
  tx_gather_.clear();
  std::int64_t pin_first = -1;
  std::int64_t pin_end = -1;

  period_s = cc_->pkt_send_period_s();
  if (opts_.max_bandwidth_mbps > 0.0) {
    const double min_period = (opts_.mss_bytes + kHeaderBytes) * 8.0 /
                              (opts_.max_bandwidth_mbps * 1e6);
    period_s = std::max(period_s, min_period);
  }
  // Accumulate up to one pacing-credit of packets for a single syscall:
  // the credit never spans more than ~200 us of §4.5 schedule, so low
  // rates degenerate to one packet per call (true inter-packet spacing)
  // while GigE-class rates amortise the syscall 8-16x.  GSO run sizing
  // downstream is bounded by this same credit — send_gather never sees
  // more datagrams than the pacer granted.
  const auto credit = static_cast<std::size_t>(batch_credit(
      std::chrono::nanoseconds{static_cast<std::int64_t>(period_s * 1e9)},
      tx_max_batch_));
  const double wnd = effective_snd_window();
  const auto next_new = [&]() -> std::int64_t {
    // TTL-dropped chunks transmit nothing, so the flow-control window does
    // not apply to them: skip BEFORE the window check, or a window that
    // closed exactly at a dead range could never advance past it and the
    // receiver's sealed-range ACK would stay outside [snd_una_, snd_next_]
    // forever.
    const std::int64_t end = snd_buffer_.end_index();
    while (snd_next_ < end && snd_buffer_.is_dead(snd_next_)) ++snd_next_;
    if (snd_next_ < end &&
        static_cast<double>(snd_next_ - snd_una_) < wnd) {
      return snd_next_;
    }
    return -1;
  };
  const auto filled = [&] {
    return zero_copy ? tx_gather_.size() : tx_batch_.size();
  };

  // Loss-list retransmissions keep strict priority within the batch;
  // after an RBPP pair head the successor is forced in back-to-back
  // (even one slot past the credit), preserving the probe semantics.
  bool force_successor = false;
  while (filled() < nslots && (filled() < credit || force_successor)) {
    std::int64_t index = -1;
    bool retransmit = false;
    if (force_successor) {
      force_successor = false;
      index = next_new();
      if (index < 0) break;
    } else if (auto lost = snd_loss_.pop_first()) {
      index = index_of(*lost, snd_una_);
      if (index < snd_una_ || index >= snd_next_) continue;  // stale
      // A NAK can name packets of a message that expired meanwhile; their
      // payload is gone and the peer seals the hole via kMsgDrop instead.
      if (snd_buffer_.is_dead(index)) continue;
      retransmit = true;
    } else {
      index = next_new();
      if (index < 0) break;
    }

    const auto chunk = snd_buffer_.chunk(index);
    if (!chunk) continue;  // already acknowledged (stale loss entry)
    if (zero_copy) {
      ScopedTimer t{prof, ProfUnit::kPacking};
      auto& hdr = tx_headers_[tx_gather_.size()];
      DataHeader h;
      h.seq = seq_of(index);
      h.msg_word = snd_buffer_.msg_word(index);
      h.timestamp_us = static_cast<std::uint32_t>(now_us());
      h.dst_socket = peer_socket_id_;
      write_data_header(hdr, h);
      UdpChannel::TxDatagram d;
      d.head = {hdr.data(), kHeaderBytes};
      d.body = *chunk;
      tx_gather_.push_back(d);
      if (pin_first < 0 || index < pin_first) pin_first = index;
      if (index + 1 > pin_end) pin_end = index + 1;
    } else {
      auto& wire = tx_wires_[tx_batch_.size()];
      ScopedTimer t{prof, ProfUnit::kPacking};
      DataHeader h;
      h.seq = seq_of(index);
      h.msg_word = snd_buffer_.msg_word(index);
      h.timestamp_us = static_cast<std::uint32_t>(now_us());
      h.dst_socket = peer_socket_id_;
      write_data_header(wire, h);
      std::memcpy(wire.data() + kHeaderBytes, chunk->data(),
                  chunk->size());
      if (prof != nullptr) {
        profiler_.add_bytes(ProfUnit::kPacking, chunk->size());
      }
      tx_batch_.emplace_back(wire.data(), kHeaderBytes + chunk->size());
    }
    if (!retransmit) {
      snd_next_ = index + 1;
      ++stats_.data_packets_sent;
      force_successor = opts_.probe_interval > 0 &&
                        index % opts_.probe_interval == 0;
      // Mark a probe head so the channel never cuts a GSO run (a
      // syscall boundary) between the pair.
      if (zero_copy && force_successor) {
        tx_gather_.back().keep_with_next = true;
      }
    } else {
      ++stats_.retransmitted;
    }
  }
  // Pin the covered index range before the caller drops the lock: an ACK
  // that lands during the unlocked syscall would otherwise free chunk
  // storage the gather iovecs still reference.
  if (zero_copy && !tx_gather_.empty()) {
    tx_pin_token_ = snd_buffer_.pin(pin_first, pin_end);
  }
  return filled();
}

bool Socket::send_tx_batch(std::size_t count) {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  ScopedTimer t{prof, ProfUnit::kUdpIo};
  if (opts_.zero_copy) {
    // uring backend first: the batch leaves as sendmsg SQEs gathered from
    // the pinned chunks and on_tx_reaped unpins when the last CQE lands.
    // Refused (mmsg backend, faults, ring momentarily full) -> sync path.
    if (net_->send_gather_async(peer_, {tx_gather_.data(), count}, opts_.gso,
                                &Socket::on_tx_reaped, this, tx_pin_token_)) {
      return true;
    }
    net_->send_gather(peer_, {tx_gather_.data(), count}, opts_.gso);
  } else {
    net_->send_batch(peer_, {tx_batch_.data(), count});
  }
  return false;
}

void Socket::on_tx_reaped(void* ctx, std::uint64_t token) {
  auto* self = static_cast<Socket*>(ctx);
  std::lock_guard lk{self->state_mu_};
  if (self->snd_buffer_.unpin(token)) {
    if (self->snd_release_hook_) self->snd_release_hook_();
    self->app_snd_cv_.notify_all();
    self->poke_watchers();
  }
}

void Socket::sender_loop() {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;

  while (running_) {
    double period = 0.0;
    std::size_t count = 0;
    {
      std::unique_lock lk{state_mu_};
      if (!snd_cv_.wait_for(lk, std::chrono::milliseconds{10},
                            [&] { return !running_ || snd_has_work(); })) {
        continue;
      }
      if (!running_) break;

      const double now = now_s();
      cc_->set_now(now);
      if (cc_->frozen_at(now)) {
        // Sleep until the actual freeze deadline (one SYN for the default
        // controller), capped so close() never waits long on the join.
        const auto remain = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cc_->freeze_deadline_s() - now));
        lk.unlock();
        std::this_thread::sleep_for(std::min<
            std::chrono::steady_clock::duration>(
            remain, std::chrono::milliseconds{50}));
        continue;
      }
      count = fill_tx_batch(period);
    }
    if (count == 0) continue;

    // Pace outside the lock: one wait covers the whole batch and the
    // schedule advances by batch-size periods, so the average rate is
    // exactly the per-packet §4.5 schedule.  The §4.4 guard lives inside
    // Pacer (a late schedule re-anchors instead of bursting).
    {
      ScopedTimer t{prof, ProfUnit::kTiming};
      pacer_.pace(std::chrono::nanoseconds{
                      static_cast<std::int64_t>(period * 1e9)},
                  static_cast<int>(count));
    }
    const bool deferred = send_tx_batch(count);
    if (opts_.zero_copy && !deferred) {
      // Syscall done: recycle any storage an ACK parked meanwhile and wake
      // overlapped senders waiting on pinned_below().  A deferred batch
      // unpins in on_tx_reaped instead.
      std::lock_guard lk{state_mu_};
      if (snd_buffer_.unpin(tx_pin_token_)) {
        if (snd_release_hook_) snd_release_hook_();
        app_snd_cv_.notify_all();
        poke_watchers();
      }
    }
  }
}

Pacer::Clock::time_point Socket::tx_round() {
  // One multiplexed sender round: the shared send thread has (nominally)
  // waited until this socket's pacing deadline.  Fill a credit's worth,
  // push it to the wire, advance the schedule, hand the next deadline back.
  double period = 0.0;
  std::size_t count = 0;
  {
    std::unique_lock lk{state_mu_};
    if (!running_ || !snd_has_work()) {
      // Nothing to do: clear the heartbeat dirty flag under the same lock
      // that guards snd_has_work()'s inputs, so a concurrent wake_sender
      // either saw work (flag stays meaningful) or re-sets it after us.
      tx_dirty_.store(false, std::memory_order_relaxed);
      return Pacer::Clock::time_point::max();
    }
    const double now = now_s();
    cc_->set_now(now);
    if (cc_->frozen_at(now)) {
      // Reschedule this socket's heap entry at exactly the freeze deadline:
      // the one-SYN freeze used to cost a 1 ms poll loop on the shared tx
      // heap (10 wasted wakeups per freeze) and resumed up to 1 ms late.
      return epoch_ + std::chrono::duration_cast<Pacer::Clock::duration>(
                          std::chrono::duration<double>(
                              cc_->freeze_deadline_s()));
    }
    // A kick can land while a future deadline is already scheduled; sending
    // now would outrun the §4.5 schedule (and any bandwidth cap), so just
    // reschedule at the pacer's instant.
    const auto next = pacer_.next_send();
    if (next > Pacer::Clock::now()) return next;
    count = fill_tx_batch(period);
    if (count == 0) {
      tx_dirty_.store(false, std::memory_order_relaxed);
      return Pacer::Clock::time_point::max();
    }
  }
  const bool deferred = send_tx_batch(count);
  // schedule() is pace() minus the wait (the heap already waited): the
  // late re-anchor rule is preserved, so a socket that fell behind resumes
  // at its rate instead of bursting.
  pacer_.schedule(std::chrono::nanoseconds{
                      static_cast<std::int64_t>(period * 1e9)},
                  static_cast<int>(count));
  bool more;
  {
    std::lock_guard lk{state_mu_};
    if (opts_.zero_copy && !deferred && snd_buffer_.unpin(tx_pin_token_)) {
      if (snd_release_hook_) snd_release_hook_();
      app_snd_cv_.notify_all();
      poke_watchers();
    }
    more = running_ && snd_has_work();
    if (!more) tx_dirty_.store(false, std::memory_order_relaxed);
  }
  return more ? pacer_.next_send() : Pacer::Clock::time_point::max();
}

void Socket::mux_ingest(std::span<const std::uint8_t> pkt, RecvSlab* slab,
                        int slab_slot) {
  std::lock_guard lk{state_mu_};
  if (state_ == ConnState::kConnecting) {
    // Pre-establishment the only meaningful arrivals are the handshake
    // response and a stateless listener's cookie challenge; stash either
    // for the connecting thread.
    if (!is_control(pkt)) return;
    const auto hdr = decode_ctrl_header(pkt);
    if (!hdr || hdr->type != CtrlType::kHandshake) return;
    const auto resp = decode_handshake_payload(pkt.subspan(kHeaderBytes));
    if (!resp || (resp->request_type != kHsResponse &&
                  resp->request_type != kHsChallenge)) {
      return;
    }
    hs_resp_ = *resp;
    app_rcv_cv_.notify_all();
    return;
  }
  if (!running_) return;
  if (is_control(pkt)) {
    handle_ctrl(pkt);
  } else {
    handle_data(pkt, opts_.zero_copy ? slab : nullptr, slab_slot);
  }
}

void Socket::sweep_timers() {
  std::lock_guard lk{state_mu_};
  if (!running_) return;
  ScopedTimer t{opts_.enable_profiler ? &profiler_ : nullptr,
                ProfUnit::kTimerSweep};
  check_timers();
}

Pacer::Clock::time_point Socket::sweep_timers_next() {
  const auto now_tp = Pacer::Clock::now();
  const auto syn = std::chrono::microseconds{
      static_cast<std::int64_t>(opts_.syn_s * 1e6)};
  std::lock_guard lk{state_mu_};
  // Not (or no longer) in steady state: the handshake / close paths own
  // their own retransmits, so the wheel entry just idles at SYN cadence
  // until the socket either establishes or detaches.
  if (!running_) return now_tp + syn;
  {
    ScopedTimer t{opts_.enable_profiler ? &profiler_ : nullptr,
                  ProfUnit::kTimerSweep};
    check_timers();
  }
  if (!running_) return now_tp + syn;  // went broken during the sweep
  const std::uint64_t now = now_us();
  const std::uint64_t due = next_timer_due_us(now);
  return now_tp + std::chrono::microseconds{due - now};
}

std::uint64_t Socket::next_timer_due_us(std::uint64_t now) const {
  const auto syn_us = static_cast<std::uint64_t>(opts_.syn_s * 1e6);
  // EXP is the only timer that is always armed (§4.8); an idle socket parks
  // at its horizon — this is what makes the wheel O(active), not O(open).
  const double rtt = cc_->last_rtt_s();
  const double base = std::max(opts_.min_exp_timeout_s, 4.0 * rtt);
  const double factor = std::min(1 << std::min(consecutive_timeouts_, 4), 16);
  std::uint64_t due =
      last_ctrl_us_ + static_cast<std::uint64_t>(base * factor * 1e6);
  // ACK cadence only matters while there is something new to acknowledge;
  // a fresh arrival re-tightens the wheel entry (Multiplexer::
  // tighten_timer), so skipping it here cannot strand the receiver.
  if (any_arrival_ &&
      (data_since_ack_ || rcv_buffer_.contiguous_end() != last_acked_index_)) {
    due = std::min(due, last_ack_us_ + syn_us);
  }
  // NAK re-reports only while holes are outstanding.
  if (!rcv_loss_.empty()) due = std::min(due, last_nak_check_us_ + syn_us);
  // Zero-window persist probe while armed: the wheel must wake this socket
  // at the probe instant, or a parked idle sender would never probe.
  if (zw_probe_backoff_us_ > 0 && peer_avail_pkts_ <= 0.0) {
    due = std::min(due, next_zw_probe_us_);
  }
  // Message TTLs: the wheel must fire at the earliest deadline, or an
  // otherwise-idle socket would expire messages a whole EXP period late.
  if (!snd_msgs_.empty()) due = std::min(due, snd_msg_deadline_us_);
  return std::max(due, now + 1);
}

void Socket::wake_sender() {
  if (mux_) {
    // Dirty before kick: if the kick is lost (heap entry consumed by a
    // racing serve), the heartbeat sweep still sees the flag and re-kicks.
    tx_dirty_.store(true, std::memory_order_relaxed);
    mux_->kick(this);
  } else {
    snd_cv_.notify_one();
  }
}

// -------------------------------------------------------- receiver loop ---

void Socket::receiver_loop() {
  // A batch of per-datagram buffers: each wakeup blocks for the first
  // datagram, then drains whatever else the kernel already queued in the
  // same recvmmsg call (Table 3: per-packet recvfrom is the receiver's
  // dominant cost).  With the zero-copy slab, each slot is backed by slab
  // storage whose ownership can move into RcvBuffer (no delivery copy); the
  // arena is the fallback when the slab runs dry — bounded memory, the old
  // copying behavior.
  const int max_batch = std::clamp(opts_.io_batch, 1, 64);
  // With GRO enabled every receive buffer — arena fallback included — must
  // hold a full coalesced super-datagram: a short buffer would make the
  // kernel truncate the burst, silently destroying the packets (often
  // retransmissions) riding in its tail.
  const std::size_t dgram_cap =
      channel_.gro_enabled()
          ? 65535
          : static_cast<std::size_t>(opts_.mss_bytes) + kHeaderBytes + 64;
  std::vector<std::uint8_t> arena(static_cast<std::size_t>(max_batch) *
                                  dgram_cap);
  std::vector<UdpChannel::RecvSlot> slots(
      static_cast<std::size_t>(max_batch));
  std::vector<int> slab_ids(slots.size(), -1);  // -1 = arena-backed
  RecvSlab* slab = rcv_slab_.get();
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].buf = std::span{arena.data() + i * dgram_cap, dgram_cap};
  }
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;

  while (running_) {
    if (slab != nullptr) {
      // (Re)arm every slot that handed its storage off last wakeup.  The
      // free list is LIFO, so an un-parked slot comes straight back still
      // cache-warm.
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (slab_ids[i] >= 0) continue;
        const int id = slab->acquire();
        if (id >= 0) {
          slab_ids[i] = id;
          slots[i].buf = std::span{slab->data(id), slab->slot_bytes()};
        } else {
          slots[i].buf = std::span{arena.data() + i * dgram_cap, dgram_cap};
        }
      }
    }
    UdpChannel::RecvBatchResult r;
    {
      ScopedTimer t{prof, ProfUnit::kUdpIo};
      r = channel_.recv_batch(slots);
    }
    std::unique_lock lk{state_mu_};
    for (std::size_t i = 0; i < r.count; ++i) {
      const UdpChannel::RecvSlot& s = slots[i];
      RecvSlab* pkt_slab = slab_ids[i] >= 0 ? slab : nullptr;
      // A GRO buffer carries several wire datagrams on a fixed segment
      // grid; decode each in place (no copy) and let RcvBuffer take slab
      // references for the payloads it parks.
      for_each_datagram(
          {s.buf.data(), s.bytes}, s.gro_size,
          [&](std::span<const std::uint8_t> pkt) {
            if (pkt.size() < kHeaderBytes || !packet_addressed_to_us(pkt)) {
              ++stats_.invalid_packets;
            } else if (is_control(pkt)) {
              handle_ctrl(pkt);
            } else {
              handle_data(pkt, pkt_slab, slab_ids[i]);
            }
          });
      if (slab_ids[i] >= 0) {
        // Drop the receive reference; the slot stays out of the free list
        // exactly while RcvBuffer still holds payload references into it.
        slab->release(slab_ids[i]);
        slab_ids[i] = -1;
      }
    }
    // §4.8: the four low-precision timers are checked after every
    // time-bounded receive call — the whole drained batch counts as one
    // call, so timer work is amortised alongside the syscall.
    check_timers();
  }
  // Return still-armed slots to the slab before the thread exits.
  if (slab != nullptr) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slab_ids[i] >= 0) slab->release(slab_ids[i]);
    }
  }
}

bool Socket::packet_addressed_to_us(
    std::span<const std::uint8_t> pkt) const {
  const std::uint32_t dst = load_be32(pkt.data() + 12);
  if (dst == socket_id_) return true;
  // Handshakes may legitimately carry dst 0: the peer retransmits its
  // request until our response (carrying our id) gets through.
  if (is_control(pkt)) {
    const auto raw =
        static_cast<std::uint16_t>((load_be32(pkt.data()) >> 16) & 0x7FFFU);
    return static_cast<CtrlType>(raw) == CtrlType::kHandshake && dst == 0;
  }
  return false;
}

void Socket::handle_data(std::span<const std::uint8_t> pkt, RecvSlab* slab,
                         int slab_slot) {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  const DataHeader h = read_data_header(pkt);
  const std::uint64_t now = now_us();
  const std::int64_t index = index_of(h.seq, std::max<std::int64_t>(lrsn_, 0));
  if (index < 0) return;
  if (index >= rcv_buffer_.window_end()) return;  // no room: like a net drop
  ++stats_.data_packets_recv;
  // A data packet is as much proof of peer liveness as a control packet.
  last_ctrl_us_ = now;
  consecutive_timeouts_ = 0;

  {
    ScopedTimer t{prof, ProfUnit::kRateMeasure};
    const int probe = opts_.probe_interval;
    if (any_arrival_) {
      speed_.add_interval(static_cast<double>(now - last_arrival_us_) * 1e-6);
      // RBPP pair: consecutive arrivals of indices (16k, 16k+1).
      if (probe > 0 && index == probe_head_index_ + 1 &&
          index % probe == 1) {
        pair_.add_dispersion(static_cast<double>(now - probe_head_us_) *
                             1e-6);
      }
    }
    last_arrival_us_ = now;
    any_arrival_ = true;
    if (probe > 0 && index % probe == 0) {
      probe_head_index_ = index;
      probe_head_us_ = now;
    } else {
      probe_head_index_ = -2;
    }
  }

  if (opts_.delay_warnings) {
    // One-way delay on the 32-bit wire timestamp, wrap-safe; the constant
    // clock offset between the two endpoints' epochs cancels out of the
    // trend, which is all PCT/PDT look at.
    const std::uint32_t owd_us =
        static_cast<std::uint32_t>(now) - h.timestamp_us;
    if (delay_trend_.add_delay(static_cast<double>(owd_us) * 1e-6)) {
      send_ctrl_simple(CtrlType::kDelayWarn);
      ++stats_.delay_warnings_sent;
    }
  }

  if (index > lrsn_) {
    if (index > lrsn_ + 1) {
      // Gap detected: record and NAK immediately (§3.1).
      ScopedTimer t{prof, ProfUnit::kLossProcessing};
      rcv_loss_.set_now_us(now);
      rcv_loss_.insert(seq_of(lrsn_ + 1), seq_of(index - 1));
      const std::pair<udtr::SeqNo, udtr::SeqNo> range{seq_of(lrsn_ + 1),
                                                      seq_of(index - 1)};
      send_nak({&range, 1});
    }
    lrsn_ = index;
  } else {
    ScopedTimer t{prof, ProfUnit::kLossProcessing};
    rcv_loss_.remove(h.seq);
  }

  // The first data arrival latches the receive direction's mode off the
  // wire word1 (0 = stream sentinel).  A stream-latched receiver zeroes any
  // later nonzero word instead of half-reassembling: one socket speaks
  // either stream or message, never both.
  std::uint32_t msg_word = h.msg_word;
  if (rcv_mode_ == XferMode::kUnset) {
    rcv_mode_ = msg_word != 0 ? XferMode::kMessage : XferMode::kStream;
  }
  if (rcv_mode_ == XferMode::kStream) msg_word = 0;

  {
    ScopedTimer t{prof, ProfUnit::kUnpacking};
    const std::uint64_t ring_before = rcv_buffer_.ring_copied_bytes();
    const std::uint64_t user_before = rcv_buffer_.user_copied_bytes();
    if (slab != nullptr && slab_slot >= 0) {
      // Zero-copy: the payload stays where the kernel wrote it; RcvBuffer
      // takes a slab reference instead of copying.
      rcv_buffer_.store_ref(index, pkt.subspan(kHeaderBytes), slab,
                            slab_slot, msg_word);
    } else {
      rcv_buffer_.store(index, pkt.subspan(kHeaderBytes), msg_word);
    }
    if (prof != nullptr) {
      // Ring copies belong to unpacking; direct-to-user-buffer copies are
      // the app-interaction copy happening early (overlapped fast path).
      profiler_.add_bytes(ProfUnit::kUnpacking,
                          rcv_buffer_.ring_copied_bytes() - ring_before);
      profiler_.add_bytes(ProfUnit::kAppInteraction,
                          rcv_buffer_.user_copied_bytes() - user_before);
    }
  }
  data_since_ack_ = true;
  app_rcv_cv_.notify_all();
  poke_watchers();
}

void Socket::handle_ctrl(std::span<const std::uint8_t> pkt) {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  ScopedTimer ctrl_timer{prof, ProfUnit::kCtrlProcessing};
  const auto hdr_opt = decode_ctrl_header(pkt);
  if (!hdr_opt) {
    // Unknown control type: a corrupt header or a future protocol rev.
    ++stats_.invalid_packets;
    return;
  }
  const CtrlHeader hdr = *hdr_opt;
  const std::uint64_t now = now_us();
  const double now_sec = static_cast<double>(now) * 1e-6;
  cc_->set_now(now_sec);

  // Any well-formed control packet is proof of peer liveness: it re-arms
  // the EXP timer and unwinds the escalation (§3.5).  Malformed payloads
  // below do NOT reach this point for ACKs (validated first) — but for the
  // other types the 16-byte header alone passed validation, which is enough.
  if (hdr.type != CtrlType::kAck) {
    last_ctrl_us_ = now;
    consecutive_timeouts_ = 0;
  }

  switch (hdr.type) {
    case CtrlType::kAck: {
      // Validate before acting: a truncated ACK must not reset the EXP
      // timer or trigger an ACK2 echo.
      const auto ack_opt = decode_ack_payload(pkt.subspan(kHeaderBytes));
      if (!ack_opt) {
        ++stats_.invalid_packets;
        break;
      }
      const AckPayload ack = *ack_opt;
      ++stats_.acks_recv;
      last_ctrl_us_ = now;
      consecutive_timeouts_ = 0;
      // Echo ACK2 so the receiver can measure RTT.
      send_ctrl_simple(CtrlType::kAck2, hdr.info);

      const std::int64_t ack_index = index_of(ack.ack_seq, snd_una_);
      const bool advanced = ack_index > snd_una_ && ack_index <= snd_next_;
      // Plausible cumulative point — the same bar the NAK ranges must
      // clear.  snd_una_ itself is included: a pure window update repeats
      // the current point.
      const bool in_window = ack_index >= snd_una_ && ack_index <= snd_next_;

      // Flow control: the FRESHEST ack (by ack-id monotonicity, not
      // cumulative-seq advancement — a pure window update repeats its
      // ack_seq) carries the receiver's current free-buffer count,
      // including a genuine zero.  Three gates guard the advertisement:
      //   * in_window — a forged or corrupted ack whose cumulative point
      //     lies outside [snd_una_, snd_next_] must not touch the window
      //     at all (one wild ack with avail == 0 used to close it, and its
      //     far-future ack id made every later genuine ACK compare as
      //     stale: a single-packet permanent stall);
      //   * id freshness — a reordered stale ack must not clobber a newer
      //     advertisement in either direction;
      //   * recovery overrides — an ack that genuinely advances snd_una_
      //     is authoritative regardless of its id and resynchronizes the
      //     id baseline, and while we believe the window is closed any
      //     in-window ack may update it: the probe-elicited reopen must
      //     not be rejectable by id poisoning, and a sender that is
      //     stalled anyway has nothing to lose by trusting it.
      const auto ack_id = static_cast<std::int32_t>(hdr.info);
      const std::int32_t id_delta = ack_id - last_peer_ack_id_;
      const bool id_fresh =
          !peer_ack_seen_ || id_delta > 0 ||
          id_delta < -(std::numeric_limits<std::int32_t>::max() / 2);
      if (in_window && (id_fresh || advanced || peer_avail_pkts_ <= 0.0)) {
        last_peer_ack_id_ = ack_id;
        peer_ack_seen_ = true;
        const double prev_avail = peer_avail_pkts_;
        peer_avail_pkts_ = static_cast<double>(ack.avail_buffer_pkts);
        if (opts_.window_control && peer_avail_pkts_ <= 0.0 &&
            prev_avail > 0.0) {
          // Window just closed: arm the persist probe so the reopening
          // window update (which carries no data and may itself be lost)
          // is always re-elicited.
          zw_probe_backoff_us_ = static_cast<std::uint64_t>(
              std::max(opts_.syn_s * 1e6, 1.0));
          next_zw_probe_us_ = now + zw_probe_backoff_us_;
        } else if (peer_avail_pkts_ > 0.0) {
          zw_probe_backoff_us_ = 0;
        }
      }

      if (advanced) {
        snd_una_ = ack_index;
        snd_buffer_.ack_up_to(ack_index);
        {
          ScopedTimer t{prof, ProfUnit::kLossProcessing};
          snd_loss_.remove_up_to(seq_of(ack_index - 1));
        }
        // Fully-acknowledged messages need no TTL tracking any more, and a
        // drop record the cumulative ACK passed has done its job (the peer
        // sealed the hole).  Records are index-ordered, so the purge is a
        // front-pop.
        while (!snd_msgs_.empty() && snd_msgs_.front().last < snd_una_) {
          snd_msgs_.pop_front();
        }
        if (!snd_dropped_.empty()) {
          std::erase_if(snd_dropped_, [&](const SndMsgRecord& r) {
            return r.last < snd_una_;
          });
        }
        if (snd_release_hook_) snd_release_hook_();
        app_snd_cv_.notify_all();
        poke_watchers();
        cc::AckInfo info;
        info.ack_seq = ack.ack_seq;
        info.rtt_s = static_cast<double>(ack.rtt_us) * 1e-6;
        info.recv_rate_pps = static_cast<double>(ack.recv_rate_pps);
        info.capacity_pps = static_cast<double>(ack.capacity_pps);
        info.avail_buffer_pkts =
            ack.avail_buffer_pkts > 0 ? ack.avail_buffer_pkts : 2.0;
        cc_->on_ack(info);
      } else {
        // Light-ACK semantics: a duplicate or reordered-stale ack (nothing
        // newly acknowledged) must not feed its receiver statistics to the
        // controller — an old ack's stale recv_rate/capacity once drove
        // spurious rate increases here.
        ++stats_.stale_acks_dropped;
      }
      wake_sender();
      break;
    }
    case CtrlType::kNak: {
      ++stats_.naks_recv;
      // Capped at kMaxNakRanges inside the decoder, so an oversized payload
      // cannot turn into unbounded loss-list work.
      const auto ranges = decode_nak_payload(pkt.subspan(kHeaderBytes));
      udtr::SeqNo biggest = seq_of(snd_una_);
      bool any_valid = false;
      {
        ScopedTimer t{prof, ProfUnit::kLossProcessing};
        for (const auto& [first, last] : ranges) {
          const std::int64_t a = index_of(first, snd_una_);
          const std::int64_t b = index_of(last, snd_una_);
          // Inverted ranges and ranges entirely outside [snd_una_,
          // snd_next_) are fabrications — a corrupt NAK must not be able to
          // trigger a retransmit storm.
          if (b < a || b < snd_una_ || a >= snd_next_) {
            ++stats_.invalid_nak_ranges;
            continue;
          }
          const std::int64_t ca = std::max(a, snd_una_);
          const std::int64_t cb = std::min(b, snd_next_ - 1);
          if (ca > cb) {
            ++stats_.invalid_nak_ranges;
            continue;
          }
          snd_loss_.insert(seq_of(ca), seq_of(cb));
          any_valid = true;
          if (udtr::SeqNo::cmp(seq_of(cb), biggest) > 0) biggest = seq_of(cb);
        }
      }
      // Only a NAK that actually named in-flight packets is a congestion
      // signal; garbage must not halve the sending rate either.
      if (any_valid) {
        cc_->on_nak(biggest, seq_of(std::max<std::int64_t>(snd_next_ - 1, 0)));
        wake_sender();
      }
      // A NAK naming sequence numbers inside a TTL-dropped message means
      // the peer missed the kMsgDrop (or it was lost): answer with a
      // re-send so the hole gets sealed instead of re-requested forever.
      if (!snd_dropped_.empty()) {
        for (const auto& rec : snd_dropped_) {
          bool hit = false;
          for (const auto& [first, last] : ranges) {
            const std::int64_t a = index_of(first, snd_una_);
            const std::int64_t b = index_of(last, snd_una_);
            if (b >= rec.first && a <= rec.last) {
              hit = true;
              break;
            }
          }
          if (hit) send_msg_drop(rec.msg_no, rec.first, rec.last);
        }
      }
      break;
    }
    case CtrlType::kAck2: {
      // RTT measurement: match the echoed ACK id.
      for (auto& [id, t_sent] : ack_times_) {
        if (id == static_cast<std::int32_t>(hdr.info) && id != 0) {
          const double sample = static_cast<double>(now - t_sent) * 1e-6;
          rtt_s_ = rtt_s_ <= 0.0 ? sample : rtt_s_ * 0.875 + sample * 0.125;
          id = 0;
          break;
        }
      }
      break;
    }
    case CtrlType::kShutdown: {
      peer_shutdown_ = true;
      if (state_ == ConnState::kEstablished) state_ = ConnState::kClosing;
      app_rcv_cv_.notify_all();
      app_snd_cv_.notify_all();
      poke_watchers();
      break;
    }
    case CtrlType::kHandshake: {
      // Duplicate handshake (our response got lost): re-acknowledge.  A
      // short or mangled payload is not a request.
      const auto req = decode_handshake_payload(pkt.subspan(kHeaderBytes));
      if (!req) {
        ++stats_.invalid_packets;
        break;
      }
      if (req->request_type == kHsRequest) {
        HandshakePayload resp;
        resp.request_type = kHsResponse;
        resp.initial_seq = req->initial_seq;
        resp.mss_bytes = static_cast<std::uint32_t>(opts_.mss_bytes);
        resp.socket_id = socket_id_;
        resp.port = net_->local_port();
        send_handshake_packet(*net_, peer_, peer_socket_id_, resp);
      }
      break;
    }
    case CtrlType::kDelayWarn:
      // The peer's receiver (running with delay_warnings) saw a rising
      // one-way-delay trend on our data: an early congestion signal,
      // before any loss (§6).  Delay-aware controllers react; the others
      // treat it as a no-op.
      ++stats_.delay_warnings_recv;
      cc_->on_delay_warning();
      break;
    case CtrlType::kMsgDrop: {
      // The peer gave up on a TTL-expired message: seal its sequence range
      // so the hole stops blocking delivery (and stops being NAKed).
      const auto drop = decode_msg_drop_payload(pkt.subspan(kHeaderBytes));
      if (!drop) {
        ++stats_.invalid_packets;
        break;
      }
      // A kMsgDrop latches message mode just like a data packet would — it
      // can outrace the first data arrival.  A stream-latched receiver has
      // no message holes to seal; sealing would corrupt the byte stream.
      if (rcv_mode_ == XferMode::kStream) {
        ++stats_.invalid_packets;
        break;
      }
      rcv_mode_ = XferMode::kMessage;
      const std::int64_t anchor = std::max<std::int64_t>(lrsn_, 0);
      std::int64_t a = index_of(drop->first, anchor);
      std::int64_t b = index_of(drop->last, anchor);
      const std::int64_t wend = rcv_buffer_.window_end();
      if (a >= wend || b < 0) break;  // entirely outside the window
      a = std::max<std::int64_t>(a, 0);
      b = std::min(b, wend - 1);
      ++stats_.msg_drop_ctrl_recv;
      if (mux_) mux_->note_msg_drop_recv();
      {
        ScopedTimer t{prof, ProfUnit::kLossProcessing};
        rcv_loss_.remove_range(seq_of(a), seq_of(b));
      }
      rcv_buffer_.seal_range(a, b);
      // Advance the loss frontier past the sealed range: packets after the
      // hole must not re-detect (and re-NAK) it as a fresh gap.
      if (b > lrsn_) lrsn_ = b;
      data_since_ack_ = true;  // the seal can move the ACK point
      app_rcv_cv_.notify_all();
      poke_watchers();
      break;
    }
    case CtrlType::kKeepAlive:
      // A peer keepalive doubles as a zero-window persist probe.  Answer
      // every one with a current-window ACK — not only while our own
      // advertisement is zero: the drain-triggered window update clears
      // advertised_zero_ the moment it is SENT, so if that single ACK is
      // lost the probing sender still believes the window is closed while
      // a gated answer would ignore it forever — the exact lost-window-
      // update deadlock the probe mechanism exists to prevent.  ACKs are
      // idempotent and keepalives are rare, so the unconditional answer
      // costs nothing.
      if (mode_ == Mode::kConnected) send_ack();
      break;
  }
}

// ------------------------------------------------------------- timers ---

void Socket::check_timers() {
  const std::uint64_t now = now_us();
  const auto syn_us = static_cast<std::uint64_t>(opts_.syn_s * 1e6);

  // ACK timer (§3.1): one selective acknowledgment per SYN.
  if (now - last_ack_us_ >= syn_us) {
    last_ack_us_ = now;
    if (any_arrival_) {
      const std::int64_t ack_index = rcv_buffer_.contiguous_end();
      if (ack_index != last_acked_index_ || data_since_ack_) {
        send_ack();
        last_acked_index_ = ack_index;
        data_since_ack_ = false;
      }
    }
  }

  // NAK timer: re-report stale holes with growing intervals (§3.5).
  if (now - last_nak_check_us_ >= syn_us) {
    last_nak_check_us_ = now;
    if (!rcv_loss_.empty()) {
      const double rtt = rtt_s_ > 0.0 ? rtt_s_ : 0.1;
      const auto base_us = static_cast<std::uint64_t>(
          std::max(rtt * 1.5, 2.0 * opts_.syn_s) * 1e6);
      const auto expired = rcv_loss_.collect_expired(now, base_us);
      if (!expired.empty()) {
        for (std::size_t i = 0; i < expired.size(); i += kMaxNakRanges) {
          const std::size_t m = std::min(kMaxNakRanges, expired.size() - i);
          send_nak({expired.data() + i, m});
        }
      }
    }
  }

  // Message-TTL sweep: expire finite-TTL messages whose delivery deadline
  // passed before full acknowledgment.  The cached min deadline makes the
  // idle check one compare.
  if (!snd_msgs_.empty() && now >= snd_msg_deadline_us_) sweep_msg_ttl(now);

  // Zero-window persist probe (TCP persist-timer analogue): while the peer
  // advertises no buffer space and we hold undelivered data, poke it with
  // keepalives on an exponential backoff — the reopening window update
  // carries no data, so if it is lost nothing else would ever re-elicit it
  // and sender and receiver would deadlock staring at each other.
  if (zw_probe_backoff_us_ > 0 && peer_avail_pkts_ <= 0.0 &&
      now >= next_zw_probe_us_) {
    if (snd_buffer_.end_index() > snd_next_) {
      send_ctrl_simple(CtrlType::kKeepAlive);
      ++stats_.zero_window_probes;
      // The backoff advances only when a probe is actually sent: a quiet
      // closed window (nothing queued yet) must not pre-age the interval,
      // or data queued later could wait the full cap for its first probe
      // instead of one SYN.
      zw_probe_backoff_us_ =
          std::min<std::uint64_t>(zw_probe_backoff_us_ * 2, kZwProbeCapUs);
    }
    next_zw_probe_us_ = now + zw_probe_backoff_us_;
  }

  // EXP timer: nothing heard from the peer for a growing expiration period.
  // The backoff factor doubles per consecutive timeout and caps at 16
  // (§3.5, congestion-collapse avoidance).
  const double rtt = cc_->last_rtt_s();
  const double base = std::max(opts_.min_exp_timeout_s, 4.0 * rtt);
  const double factor = std::min(1 << std::min(consecutive_timeouts_, 4), 16);
  const auto exp_us = static_cast<std::uint64_t>(base * factor * 1e6);
  if (now - last_ctrl_us_ >= exp_us) {
    last_ctrl_us_ = now;
    if (snd_next_ > snd_una_ || !snd_loss_.empty()) {
      ++consecutive_timeouts_;
      ++stats_.timeouts;
      if (consecutive_timeouts_ > opts_.max_exp_timeouts) {
        // The escalation budget is spent: every retransmission into the
        // void went unanswered.  Declaring the connection broken beats
        // retrying forever with callers blocked.
        declare_broken();
        return;
      }
      cc_->set_now(static_cast<double>(now) * 1e-6);
      cc_->on_timeout();
      if (snd_next_ > snd_una_) {
        snd_loss_.insert(seq_of(snd_una_), seq_of(snd_next_ - 1));
      }
      // An unacknowledged drop record means the peer may never have seen
      // the kMsgDrop (it is unreliable on its own): every EXP re-sends the
      // outstanding ones, so a sealed-hole ACK is eventually elicited.
      for (const auto& rec : snd_dropped_) {
        if (rec.last >= snd_una_) {
          send_msg_drop(rec.msg_no, rec.first, rec.last);
        }
      }
      wake_sender();
    } else {
      // Idle (nothing unacknowledged): not a timeout at all.  Emit a
      // keepalive so the peer's EXP timer stays re-armed too.
      send_ctrl_simple(CtrlType::kKeepAlive);
      ++stats_.keepalives_sent;
    }
  }
}

void Socket::sweep_msg_ttl(std::uint64_t now) {
  bool dropped_any = false;
  for (auto it = snd_msgs_.begin(); it != snd_msgs_.end();) {
    if (it->last < snd_una_) {  // fully acknowledged: delivered in time
      it = snd_msgs_.erase(it);
      continue;
    }
    if (now < it->deadline_us) {
      ++it;
      continue;
    }
    // Expired with unacknowledged packets: free the payload, stop every
    // (re)transmission of the remainder, and tell the peer to seal the
    // whole range — partially-delivered slots included, since a partial
    // message must never reach the application.
    const std::int64_t live_first = std::max(it->first, snd_una_);
    snd_buffer_.mark_dead(live_first, it->last + 1);
    snd_loss_.remove_range(seq_of(live_first), seq_of(it->last));
    send_msg_drop(it->msg_no, it->first, it->last);
    snd_dropped_.push_back(*it);
    ++stats_.msgs_dropped_ttl;
    if (mux_) mux_->note_msgs_dropped_ttl();
    dropped_any = true;
    it = snd_msgs_.erase(it);
  }
  // snd_next_ must never rest on a dead chunk: nothing would ever be
  // transmitted from there, while the receiver's post-seal ACK can already
  // lie beyond it — and an ACK outside [snd_una_, snd_next_] is discarded
  // as forged.  Advance window-free (dead chunks send nothing).
  const std::int64_t end = snd_buffer_.end_index();
  while (snd_next_ < end && snd_buffer_.is_dead(snd_next_)) ++snd_next_;
  // Recompute the cached min deadline over the survivors.
  snd_msg_deadline_us_ = UINT64_MAX;
  for (const auto& r : snd_msgs_) {
    snd_msg_deadline_us_ = std::min(snd_msg_deadline_us_, r.deadline_us);
  }
  if (dropped_any) {
    // mark_dead released buffer bytes: senders blocked on space can run.
    app_snd_cv_.notify_all();
    wake_sender();
    poke_watchers();
  }
}

void Socket::send_msg_drop(std::uint32_t msg_no, std::int64_t first,
                           std::int64_t last) {
  std::array<std::uint8_t, kHeaderBytes + 4 * MsgDropPayload::kWords> buf{};
  CtrlHeader hdr;
  hdr.type = CtrlType::kMsgDrop;
  hdr.info = msg_no & kMsgNoMask;
  hdr.timestamp_us = static_cast<std::uint32_t>(now_us());
  hdr.dst_socket = peer_socket_id_;
  write_ctrl_header(buf, hdr);
  MsgDropPayload p;
  p.first = seq_of(first);
  p.last = seq_of(last);
  encode_msg_drop_payload(std::span{buf}.subspan(kHeaderBytes), p);
  ++stats_.msg_drop_ctrl_sent;
  if (mux_) mux_->note_msg_drop_sent();
  net_->send_to(peer_, buf);
}

void Socket::declare_broken() {
  state_ = ConnState::kBroken;
  last_error_ = SocketError::kConnectionBroken;
  running_ = false;
  snd_cv_.notify_all();
  app_snd_cv_.notify_all();
  app_rcv_cv_.notify_all();
  poke_watchers();
}

void Socket::send_ack() {
  std::array<std::uint8_t, kHeaderBytes + 4 * AckPayload::kWords> buf{};
  CtrlHeader hdr;
  hdr.type = CtrlType::kAck;
  const std::int32_t ack_id = next_ack_id_++;
  if (next_ack_id_ <= 0) next_ack_id_ = 1;
  hdr.info = static_cast<std::uint32_t>(ack_id);
  hdr.timestamp_us = static_cast<std::uint32_t>(now_us());
  hdr.dst_socket = peer_socket_id_;
  write_ctrl_header(buf, hdr);

  const std::int64_t ack_index = rcv_buffer_.contiguous_end();
  const double mss_wire = opts_.mss_bytes + kHeaderBytes;
  std::array<std::uint32_t, AckPayload::kWords> words{};
  words[0] = static_cast<std::uint32_t>(seq_of(ack_index).value());
  words[1] = static_cast<std::uint32_t>(rtt_s_ * 1e6);
  words[2] = static_cast<std::uint32_t>(rtt_s_ * 0.5e6);
  // The advertised window is the truth, zero included: the old max(avail,2)
  // floor meant flow control could never fully close, and a full receiver
  // got overrun (arrivals past window_end are silently dropped).  The
  // sender-side persist probe + our drain-triggered window update make the
  // zero advertisement safe against deadlock.
  const std::int32_t avail = std::max(rcv_buffer_.avail_packets(), 0);
  words[3] = static_cast<std::uint32_t>(avail);
  advertised_zero_ = avail == 0;
  words[4] = static_cast<std::uint32_t>(speed_.packets_per_second());
  words[5] = static_cast<std::uint32_t>(pair_.capacity_packets_per_second());
  write_words(std::span{buf}.subspan(kHeaderBytes), words);

  ack_times_[static_cast<std::size_t>(ack_id) % ack_times_.size()] = {
      ack_id, now_us()};
  ++stats_.acks_sent;
  net_->send_to(peer_, buf);
  (void)mss_wire;
}

void Socket::send_nak(
    std::span<const std::pair<udtr::SeqNo, udtr::SeqNo>> ranges) {
  const auto words = encode_loss_ranges(ranges);
  std::vector<std::uint8_t> buf(kHeaderBytes + 4 * words.size());
  CtrlHeader hdr;
  hdr.type = CtrlType::kNak;
  hdr.timestamp_us = static_cast<std::uint32_t>(now_us());
  hdr.dst_socket = peer_socket_id_;
  write_ctrl_header(buf, hdr);
  write_words(std::span{buf}.subspan(kHeaderBytes), words);
  ++stats_.naks_sent;
  net_->send_to(peer_, buf);
}

void Socket::send_ctrl_simple(CtrlType type, std::uint32_t info) {
  std::array<std::uint8_t, kHeaderBytes> buf{};
  CtrlHeader hdr;
  hdr.type = type;
  hdr.info = info;
  hdr.timestamp_us = static_cast<std::uint32_t>(now_us());
  hdr.dst_socket = peer_socket_id_;
  write_ctrl_header(buf, hdr);
  net_->send_to(peer_, buf);
}

// ---------------------------------------------------------------- API ---

std::size_t Socket::send(std::span<const std::uint8_t> data) {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  std::unique_lock lk{state_mu_};
  // A message socket must reject stream writes outright: send()'s partial
  // writes could splice loose bytes between two packets of an in-flight
  // multi-packet message, corrupting its reassembly at the receiver.
  if (snd_mode_ == XferMode::kMessage) return 0;
  snd_mode_ = XferMode::kStream;
  std::size_t total = 0;
  while (total < data.size() && running_) {
    std::size_t n;
    {
      ScopedTimer t{prof, ProfUnit::kAppInteraction};
      n = snd_buffer_.add(data.subspan(total));
      if (prof != nullptr) {
        profiler_.add_bytes(ProfUnit::kAppInteraction, n);
      }
    }
    total += n;
    if (n > 0) wake_sender();
    if (total < data.size()) {
      app_snd_cv_.wait_for(lk, std::chrono::milliseconds{100});
    }
  }
  stats_.bytes_sent += total;
  return total;
}

std::size_t Socket::send_overlapped(std::span<const std::uint8_t> data,
                                    std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lk{state_mu_};
  if (snd_mode_ == XferMode::kMessage) return 0;  // see send()
  snd_mode_ = XferMode::kStream;
  std::size_t total = 0;
  std::int64_t last_index = snd_buffer_.end_index();
  while (total < data.size() && running_) {
    const std::size_t n = snd_buffer_.add_borrowed(data.subspan(total));
    total += n;
    last_index = snd_buffer_.end_index();
    if (n > 0) wake_sender();
    if (total < data.size()) {
      if (app_snd_cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          std::chrono::steady_clock::now() >= deadline) {
        break;
      }
    }
  }
  // The caller's buffer must stay borrowed until every chunk is
  // acknowledged — AND until no in-flight sender syscall still holds iovecs
  // into it (pinned_below) — block here so returning implies the memory is
  // free.
  while (running_ &&
         (snd_una_ < last_index || snd_buffer_.pinned_below(last_index))) {
    if (std::chrono::steady_clock::now() < deadline) {
      app_snd_cv_.wait_until(lk, deadline);
    } else {
      // Past the deadline with caller memory still referenced: the only
      // safe exit is for the in-flight window to drain or the socket to
      // die.  A wait_until on the stale deadline would return immediately
      // and spin a core; re-arm periodically instead and rely on the ACK /
      // broken-state notifications to end the wait early.
      app_snd_cv_.wait_for(lk, std::chrono::milliseconds{100});
    }
  }
  const std::size_t acked =
      snd_una_ >= last_index
          ? total
          : total - std::min<std::size_t>(
                        total, static_cast<std::size_t>(
                                   (last_index - snd_una_)) *
                                   static_cast<std::size_t>(opts_.mss_bytes));
  stats_.bytes_sent += acked;
  return acked;
}

std::size_t Socket::recv(std::span<std::uint8_t> out,
                         std::chrono::milliseconds timeout) {
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lk{state_mu_};
  // After advertising a closed window, the drain that reopens it must
  // announce itself at once: the ACK timer only fires on new data or ack
  // movement, neither of which happens while the sender is halted.
  const auto window_update = [&] {
    if (advertised_zero_ && rcv_buffer_.avail_packets() > 0) {
      send_ack();
      last_acked_index_ = rcv_buffer_.contiguous_end();
      data_since_ack_ = false;
    }
  };
  while (running_) {
    std::size_t n;
    {
      ScopedTimer t{prof, ProfUnit::kAppInteraction};
      n = rcv_buffer_.read(out);
      if (prof != nullptr) {
        profiler_.add_bytes(ProfUnit::kAppInteraction, n);
      }
    }
    if (n > 0) {
      window_update();
      stats_.bytes_delivered += n;
      return n;
    }
    if (peer_shutdown_) return 0;

    if (out.size() >= static_cast<std::size_t>(4 * opts_.mss_bytes)) {
      // Overlapped IO: arm the user buffer as the protocol buffer's logical
      // extension; in-order arrivals land here directly (§4.3, Fig. 10).
      const std::size_t drained = rcv_buffer_.register_user_buffer(out);
      if (prof != nullptr && drained > 0) {
        profiler_.add_bytes(ProfUnit::kAppInteraction, drained);
      }
      app_rcv_cv_.wait_until(lk, deadline, [&] {
        return !running_ || peer_shutdown_ ||
               rcv_buffer_.user_buffer_filled() > 0;
      });
      const std::size_t filled = rcv_buffer_.release_user_buffer();
      if (filled > 0) {
        window_update();
        stats_.bytes_delivered += filled;
        return filled;
      }
      if (peer_shutdown_ || std::chrono::steady_clock::now() >= deadline) {
        return 0;
      }
    } else {
      if (!app_rcv_cv_.wait_until(lk, deadline, [&] {
            return !running_ || peer_shutdown_ ||
                   rcv_buffer_.readable_bytes() > 0;
          })) {
        return 0;
      }
    }
  }
  return 0;
}

std::size_t Socket::sendmsg(std::span<const std::uint8_t> data,
                            std::chrono::milliseconds ttl, bool in_order) {
  const auto mss = static_cast<std::size_t>(opts_.mss_bytes);
  const std::size_t max_bytes =
      mss * static_cast<std::size_t>(std::max(opts_.max_msg_pkts, 1));
  bool tighten = false;
  {
    std::unique_lock lk{state_mu_};
    if (data.empty() || data.size() > max_bytes ||
        data.size() > snd_buffer_.free_bytes() + snd_buffer_.bytes()) {
      return 0;  // empty, over max_msg_pkts, or can never fit the buffer
    }
    // A stream socket must not grow message framing mid-stream (and vice
    // versa): the first send()/sendmsg() latches the direction for life.
    if (snd_mode_ == XferMode::kStream) return 0;
    snd_mode_ = XferMode::kMessage;
    // All-or-nothing admission: a message is never split across waits, so
    // block until the whole payload fits.
    while (running_ && snd_buffer_.free_bytes() < data.size()) {
      app_snd_cv_.wait_for(lk, std::chrono::milliseconds{100});
    }
    if (!running_) return 0;
    const std::uint32_t msg_no = next_msg_no_;
    next_msg_no_ = next_msg_no_ % kMsgNoMask + 1;  // wrap skipping 0
    const std::int64_t first = snd_buffer_.end_index();
    if (snd_buffer_.add_message(data, msg_no, in_order) == 0) return 0;
    const std::int64_t last = snd_buffer_.end_index() - 1;
    if (ttl.count() > 0) {
      const std::uint64_t deadline =
          now_us() +
          static_cast<std::uint64_t>(ttl.count()) * 1000;
      snd_msgs_.push_back({msg_no, first, last, deadline});
      if (deadline < snd_msg_deadline_us_) {
        snd_msg_deadline_us_ = deadline;
        tighten = true;
      }
    }
    ++stats_.msgs_sent;
    stats_.bytes_sent += data.size();
    if (mux_) mux_->note_msgs_sent();
    wake_sender();
  }
  // A deadline earlier than anything the wheel knows about needs the wheel
  // entry re-armed, or an otherwise-idle socket sweeps too late.  Outside
  // state_mu_: the wheel mutex is a leaf, never taken with ours held.
  if (tighten && mux_) mux_->arm_timer(this);
  return data.size();
}

std::size_t Socket::recvmsg(std::span<std::uint8_t> out,
                            std::chrono::milliseconds timeout) {
  // An empty out could not distinguish "empty read" from timeout — and
  // read_msg would still consume a message to fill it.  Refuse up front.
  if (out.empty()) return 0;
  Profiler* prof = opts_.enable_profiler ? &profiler_ : nullptr;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lk{state_mu_};
  // Same reopening rule as recv(): a drain that reopens an advertised-zero
  // window must announce itself at once.
  const auto window_update = [&] {
    if (advertised_zero_ && rcv_buffer_.avail_packets() > 0) {
      send_ack();
      last_acked_index_ = rcv_buffer_.contiguous_end();
      data_since_ack_ = false;
    }
  };
  while (running_) {
    if (rcv_buffer_.msg_ready()) {
      std::size_t n;
      {
        ScopedTimer t{prof, ProfUnit::kAppInteraction};
        n = rcv_buffer_.read_msg(out);
        if (prof != nullptr) {
          profiler_.add_bytes(ProfUnit::kAppInteraction, n);
        }
      }
      if (n > 0) {
        window_update();
        stats_.bytes_delivered += n;
        ++stats_.msgs_delivered;
        if (mux_) mux_->note_msgs_delivered();
        return n;
      }
    }
    if (peer_shutdown_) return 0;
    if (!app_rcv_cv_.wait_until(lk, deadline, [&] {
          return !running_ || peer_shutdown_ || rcv_buffer_.msg_ready();
        })) {
      return 0;
    }
  }
  return 0;
}

std::uint64_t Socket::sendfile(const std::string& path, std::uint64_t offset,
                               std::uint64_t length) {
  return opts_.file_pipeline ? sendfile_pipelined(path, offset, length)
                             : sendfile_staged(path, offset, length);
}

std::uint64_t Socket::recvfile(const std::string& path,
                               std::uint64_t length) {
  return opts_.file_pipeline ? recvfile_pipelined(path, length)
                             : recvfile_staged(path, length);
}

std::uint64_t Socket::sendfile_staged(const std::string& path,
                                      std::uint64_t offset,
                                      std::uint64_t length) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    last_error_ = SocketError::kFileIo;
    return 0;
  }
  in.seekg(static_cast<std::streamoff>(offset));
  std::vector<std::uint8_t> chunk(1 << 20);
  // Same emulated-disk contract as the pipelined path: reads become
  // available at the injected disk rate.
  DiskThrottle disk{opts_.file_disk_read_mbps};
  std::uint64_t sent = 0;
  while (sent < length && in && running_) {
    const std::uint64_t want =
        std::min<std::uint64_t>(chunk.size(), length - sent);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(want));
    const auto got = static_cast<std::uint64_t>(in.gcount());
    if (got == 0) break;
    disk.consume(static_cast<std::size_t>(got));
    const std::size_t n =
        send(std::span{chunk.data(), static_cast<std::size_t>(got)});
    sent += n;
    // send() returning short means the socket closed — or refused stream
    // bytes outright (message-latched socket returns 0 forever).  Either
    // way the loop can make no further progress; retrying would spin.
    if (n < got) break;
  }
  // Delivery, not buffering, is the contract: if the flush fails (broken
  // connection, timeout) the unacknowledged tail still sits in the send
  // buffer — report only what the peer actually acknowledged.
  if (!flush(file_deadline_ms())) {
    std::unique_lock lk{state_mu_};
    const auto unacked = static_cast<std::uint64_t>(snd_buffer_.bytes());
    sent -= std::min(sent, unacked);
  }
  return sent;
}

std::uint64_t Socket::recvfile_staged(const std::string& path,
                                      std::uint64_t length) {
  // Opened on the first received byte, not up front: a transfer that dies
  // before any data arrives must not destroy an existing file.
  std::ofstream out;
  std::vector<std::uint8_t> chunk(1 << 20);
  DiskThrottle disk{opts_.file_disk_write_mbps};  // see sendfile_staged
  std::uint64_t received = 0;
  bool disk_ok = true;
  bool timed_out = false;
  while (received < length && running_) {
    const std::uint64_t want =
        std::min<std::uint64_t>(chunk.size(), length - received);
    const std::size_t n =
        recv(std::span{chunk.data(), static_cast<std::size_t>(want)},
             file_deadline_ms());
    if (n == 0) {
      timed_out = running_ && !peer_shutdown_;
      break;
    }
    if (!out.is_open()) {
      out.open(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        disk_ok = false;
        break;
      }
    }
    out.write(reinterpret_cast<const char*>(chunk.data()),
              static_cast<std::streamsize>(n));
    if (!out) {
      disk_ok = false;
      break;
    }
    disk.consume(n);
    received += n;
  }
  if (length == 0 && !out.is_open()) {
    // Zero-length request: the legacy contract still creates/empties the
    // destination — an explicit "make this file empty".
    out.open(path, std::ios::binary | std::ios::trunc);
    disk_ok = disk_ok && static_cast<bool>(out);
  }
  if (!disk_ok) {
    last_error_ = SocketError::kFileIo;
  } else if (received >= length) {
    last_error_ = SocketError::kNone;
  } else if (broken()) {
    // declare_broken already surfaced kConnectionBroken.
  } else if (timed_out) {
    last_error_ = SocketError::kRecvTimeout;
  } else {
    last_error_ = SocketError::kRecvTruncated;
  }
  return received;
}

std::uint64_t Socket::sendfile_pipelined(const std::string& path,
                                         std::uint64_t offset,
                                         std::uint64_t length) {
  {
    std::unique_lock lk{state_mu_};
    if (snd_mode_ == XferMode::kMessage) return 0;  // see send()
    if (!running_) return 0;
  }
  FileSource::Config cfg;
  cfg.chunk_bytes = opts_.file_chunk_bytes;
  cfg.ring_chunks = opts_.file_ring_chunks;
  cfg.payload_quantum = opts_.mss_bytes;
  cfg.use_uring = opts_.file_uring;
  cfg.throttle_mbps = opts_.file_disk_read_mbps;
  FileSource src{path, offset, length, cfg};
  if (!src.ok()) {
    last_error_ = SocketError::kFileIo;
    return 0;
  }

  // Ring chunks whose packets are still in the send buffer, in admission
  // (and thus acknowledgment) order: front recycles once the cumulative ACK
  // passed its last packet AND no in-flight syscall pins can still hold
  // iovecs into it — exactly send_overlapped's release discipline.
  struct InFlight {
    int id;
    std::int64_t end;  // snd_buffer_ end_index after this chunk's admission
  };
  std::deque<InFlight> inflight;
  const auto recycle_released = [&] {  // state_mu_ held
    while (!inflight.empty() && snd_una_ >= inflight.front().end &&
           !snd_buffer_.pinned_below(inflight.front().end)) {
      src.recycle(inflight.front().id);
      inflight.pop_front();
    }
  };
  // Recycle from the ACK/unpin paths too: while the pump below is blocked
  // in src.next() waiting for the disk, a dry ring must refill the instant
  // the ACK clock releases chunks — otherwise reader and pump deadlock
  // against each other until a timeout, collapsing the pipeline to one
  // ring-ful per timeout period.
  {
    std::lock_guard lk{state_mu_};
    snd_release_hook_ = recycle_released;
  }

  std::uint64_t accepted = 0;
  while (running_) {
    auto c = src.next(std::chrono::milliseconds{100});
    if (!c) {
      if (src.io_error()) {
        last_error_ = SocketError::kFileIo;
        break;
      }
      if (src.done()) break;
      // Reader momentarily behind (ring dry or a slow disk): recycle what
      // the ACK clock released and wait for the next chunk.
      std::unique_lock lk{state_mu_};
      recycle_released();
      continue;
    }
    std::unique_lock lk{state_mu_};
    snd_mode_ = XferMode::kStream;
    std::size_t added = 0;
    while (running_ && added < c->len) {
      const std::size_t n = snd_buffer_.add_borrowed(
          std::span{c->data + added, c->len - added});
      added += n;
      if (n > 0) wake_sender();
      recycle_released();
      if (added < c->len) {
        app_snd_cv_.wait_for(lk, std::chrono::milliseconds{100});
      }
    }
    accepted += added;
    stats_.bytes_sent += added;
    inflight.push_back(InFlight{c->id, snd_buffer_.end_index()});
    recycle_released();
    if (added < c->len) break;  // socket died mid-chunk
  }
  src.stop();

  const bool flushed = flush(file_deadline_ms());
  std::uint64_t delivered = accepted;
  {
    std::unique_lock lk{state_mu_};
    if (flushed) {
      // Everything is acknowledged; only in-flight syscall pins can still
      // reference chunk memory, and those complete in microseconds.
      while (!inflight.empty()) {
        recycle_released();
        if (inflight.empty()) break;
        app_snd_cv_.wait_for(lk, std::chrono::milliseconds{10});
      }
    } else {
      // Flush deadline passed (or the socket died) with the tail
      // unacknowledged.  The ring chunks cannot be freed while the buffer
      // views them, and blocking until the peer drains could hang forever —
      // so copy the still-referenced tail into buffer-owned storage and
      // wait only for the in-flight pins.
      snd_buffer_.disown_views(snd_buffer_.first_index(),
                               snd_buffer_.end_index());
      const std::int64_t last_end =
          inflight.empty() ? 0 : inflight.back().end;
      const auto pin_cap =
          std::chrono::steady_clock::now() + std::chrono::seconds{2};
      while (snd_buffer_.pinned_below(last_end) &&
             std::chrono::steady_clock::now() < pin_cap) {
        app_snd_cv_.wait_for(lk, std::chrono::milliseconds{10});
      }
      inflight.clear();  // chunk storage is no longer referenced
      const auto unacked = static_cast<std::uint64_t>(snd_buffer_.bytes());
      delivered -= std::min(delivered, unacked);
    }
    snd_release_hook_ = nullptr;  // before src/inflight leave scope
  }
  return delivered;
}

std::uint64_t Socket::recvfile_pipelined(const std::string& path,
                                         std::uint64_t length) {
  FileSink::Config cfg;
  cfg.use_uring = opts_.file_uring;
  cfg.throttle_mbps = opts_.file_disk_write_mbps;
  cfg.queue_max_bytes =
      std::max<std::size_t>(opts_.file_chunk_bytes *
                                static_cast<std::size_t>(std::max(
                                    opts_.file_ring_chunks, 1)),
                            std::size_t{1} << 20);
  FileSink sink{path, length, cfg};
  std::uint64_t taken = 0;
  bool disk_ok = true;
  bool timed_out = false;
  std::vector<RcvBuffer::Taken> batch;
  std::size_t batch_bytes = 0;
  // Coalesce takes into batches of this size before paying an enqueue.  At
  // matched disk/wire rates the sink queue never backs up, so every enqueue
  // costs a writer wakeup and a positional write; handing it arrival-sized
  // crumbs (a few packets per wake) would burn a context switch and a
  // syscall per few KB.
  const std::size_t coalesce_bytes =
      std::min<std::size_t>(cfg.queue_max_bytes / 2, std::size_t{1} << 20);
  const auto flush_batch = [&] {
    if (batch.empty()) return true;
    batch_bytes = 0;
    const bool ok = sink.enqueue(std::move(batch));
    batch.clear();
    return ok;
  };
  while (taken < length && running_) {
    bool stream_idle = false;
    {
      std::unique_lock lk{state_mu_};
      const std::size_t n = rcv_buffer_.take_stream(
          static_cast<std::size_t>(
              std::min<std::uint64_t>(length - taken,
                                      std::numeric_limits<std::size_t>::max())),
          batch);
      if (n == 0) {
        if (peer_shutdown_) break;
        if (batch.empty()) {
          // Same reopening rule as recv(): nothing to announce here (no
          // drain happened), just wait for data bounded by the progress
          // deadline.
          const bool sig = app_rcv_cv_.wait_for(lk, file_deadline_ms(), [&] {
            return !running_ || peer_shutdown_ ||
                   rcv_buffer_.readable_bytes() > 0;
          });
          if (!sig) {
            timed_out = true;
            break;
          }
          continue;
        }
        // Bytes in hand but the buffer ran dry: give the next arrival burst
        // a short window to extend the batch; flush only if it stays dry.
        app_rcv_cv_.wait_for(lk, std::chrono::milliseconds{2}, [&] {
          return !running_ || peer_shutdown_ ||
                 rcv_buffer_.readable_bytes() > 0;
        });
        stream_idle = rcv_buffer_.readable_bytes() == 0;
      } else {
        // The drain just reopened window space; after advertising zero the
        // reopen must announce itself at once (see recv()).
        if (advertised_zero_ && rcv_buffer_.avail_packets() > 0) {
          send_ack();
          last_acked_index_ = rcv_buffer_.contiguous_end();
          data_since_ack_ = false;
        }
        stats_.bytes_delivered += n;
        taken += n;
        batch_bytes += n;
      }
    }
    // Queue for write-behind outside the socket lock: enqueue blocks on the
    // sink's byte cap, which is precisely how a slow disk backs up into the
    // protocol's flow-control window.
    if ((batch_bytes >= coalesce_bytes || stream_idle || taken >= length) &&
        !flush_batch()) {
      disk_ok = false;
      break;
    }
  }
  if (!flush_batch()) disk_ok = false;
  const bool sunk = sink.finish(length == 0) && disk_ok;
  const std::uint64_t written = sink.bytes_written();
  if (!sunk) {
    last_error_ = SocketError::kFileIo;
  } else if (written >= length) {
    last_error_ = SocketError::kNone;
  } else if (broken()) {
    // kConnectionBroken already surfaced.
  } else if (timed_out) {
    last_error_ = SocketError::kRecvTimeout;
  } else {
    last_error_ = SocketError::kRecvTruncated;
  }
  return written;
}

bool Socket::flush(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock lk{state_mu_};
  while (running_) {
    if (snd_una_ >= snd_buffer_.end_index() && snd_loss_.empty()) return true;
    if (app_snd_cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
        std::chrono::steady_clock::now() >= deadline) {
      return false;
    }
  }
  return false;
}

void Socket::close() {
  // Serialized end to end: close() racing itself (two app threads, or an
  // explicit close racing the destructor) must not reach the thread joins
  // or the multiplexer detach twice.
  std::lock_guard close_lk{close_mu_};
  // Linger: give in-flight data a bounded chance to be acknowledged while
  // the service threads are still alive; a close right after send() must
  // not silently discard the tail of the stream.
  if (mode_ == Mode::kConnected && running_ &&
      state_ == ConnState::kEstablished) {
    state_ = ConnState::kClosing;
    if (opts_.linger_s > 0.0) {
      flush(std::chrono::milliseconds{
          static_cast<std::int64_t>(opts_.linger_s * 1e3)});
    }
  }
  const bool was_running = running_.exchange(false);
  if (mode_ == Mode::kConnected && was_running &&
      state_ != ConnState::kBroken) {
    // Repeat the shutdown: it has no acknowledgment, and a peer that misses
    // all copies only discovers the close through its EXP budget.
    for (int i = 0; i < kShutdownRepeat; ++i) {
      send_ctrl_simple(CtrlType::kShutdown);
      if (i + 1 < kShutdownRepeat) std::this_thread::sleep_for(kShutdownGap);
    }
  }
  snd_cv_.notify_all();
  app_snd_cv_.notify_all();
  app_rcv_cv_.notify_all();
  if (mux_) {
    // Shared-port mode has no per-socket threads; detach() returns only
    // when no multiplexer service thread still references this socket.
    // mux_ itself is kept (not reset): it pins the port, the channel and
    // the shared receive slab for late diagnostics and slab-ref releases.
    mux_->detach(this);
    // uring backend: no service thread references us any more, but an async
    // batch with our done-callback may still be in flight — wait for its
    // CQEs so on_tx_reaped never fires into a destroyed socket.  state_mu_
    // is not held here (on_tx_reaped takes it).
    if (net_ != nullptr) net_->drain_tx(this);
  } else {
    if (snd_thread_.joinable()) snd_thread_.join();
    if (rcv_thread_.joinable()) rcv_thread_.join();
    channel_.close();
  }
  if (state_ != ConnState::kBroken) state_ = ConnState::kClosed;
  poke_watchers();
}

int Socket::consecutive_exp_timeouts() const {
  std::unique_lock lk{state_mu_};
  return consecutive_timeouts_;
}

PerfStats Socket::perf() const {
  std::unique_lock lk{state_mu_};
  PerfStats p = stats_;
  if (mode_ == Mode::kListener && mux_) {
    // Multiplexed listener: the admission/cookie counters live in the
    // port-global multiplexer state, not in this socket.
    p.accept_queue_drops = mux_->accept_queue_drops();
    p.handshake_admission_drops = mux_->handshake_admission_drops();
    p.handshake_cookie_rejects =
        mux_->cookie_rejects() + mux_->cookie_expired();
  }
  p.rtt_ms = (rtt_s_ > 0.0 ? rtt_s_ : cc_->last_rtt_s()) * 1e3;
  const double wire_bits = (opts_.mss_bytes + kHeaderBytes) * 8.0;
  p.capacity_mbps = pair_.capacity_packets_per_second() * wire_bits / 1e6;
  p.recv_rate_mbps = speed_.packets_per_second() * wire_bits / 1e6;
  p.send_period_us = cc_->pkt_send_period_s() * 1e6;
  p.window_pkts = cc_->window_packets();
  p.peer_window_pkts = peer_ack_seen_ ? peer_avail_pkts_ : 0.0;
  p.cc_name = cc_->name();
  return p;
}

}  // namespace udtr::udt
