// The UDT socket: the library's public API (paper §4.7, §4.8).
//
// Each connected socket is a duplex UDT entity serviced by two loops:
//   * the sender paces data packets out according to the congestion
//     controller (cc::UdtCc — the same object that drives the simulator),
//     always giving loss-list retransmissions priority and emitting a
//     back-to-back packet pair every 16 packets (RBPP); at high rates it
//     accumulates a pacing-credit's worth of packets and moves them with
//     one sendmmsg (SocketOptions::io_batch), since per-packet syscalls
//     dominate CPU (Table 3);
//   * the receiver performs time-bounded UDP receives, draining a batch of
//     queued datagrams per wakeup, and checks the ACK / NAK / EXP timers
//     once after each wakeup (§4.8), processing both data and control
//     packets.
//
// By default those loops run on a *shared* pair of threads owned by a
// Multiplexer (multiplexer.hpp): every socket bound to the same UDP port
// shares one channel, one receive thread and one send thread, so a process
// scales to thousands of connections (§4, Fig. 3).  With
// SocketOptions::exclusive_port the socket instead owns a dedicated channel
// and its own two service threads — the pre-multiplexer behavior,
// byte-for-byte.
//
// The API follows socket semantics with the paper's additions: send/recv,
// sendfile/recvfile, and overlapped receive through user-buffer insertion.
// Readiness-driven (non-blocking) use goes through udt::Poller (poller.hpp).
// Connections run over IPv4 loopback/UDP.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <deque>
#include <memory>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cc/udt_cc.hpp"
#include "common/delay_trend.hpp"
#include "common/median_filter.hpp"
#include "udt/congestion.hpp"
#include "common/seqno.hpp"
#include "udt/buffers.hpp"
#include "udt/channel.hpp"
#include "udt/handshake_cookie.hpp"
#include "udt/loss_list.hpp"
#include "udt/packet.hpp"
#include "udt/pacing.hpp"
#include "udt/profiler.hpp"
#include "udt/ttl_map.hpp"

namespace udtr::udt {

class Multiplexer;
class Poller;

// Connection lifecycle (§3.5 recovery semantics).  kConnecting covers the
// handshake; kEstablished is normal duplex operation; kClosing means a
// shutdown is in progress (ours or the peer's); kClosed is a completed
// orderly close; kBroken means the EXP timer escalated past its budget with
// data outstanding — the peer is presumed dead and every blocked or future
// operation returns instead of hanging.
enum class ConnState { kConnecting, kEstablished, kClosing, kClosed, kBroken };

enum class SocketError {
  kNone,
  kConnectionBroken,  // EXP escalation exhausted: peer declared dead
  // recvfile: no data arrived within the progress deadline
  // (file_flush_timeout_s) before the requested length was reached — the
  // destination file holds a truncated prefix (or was never touched).
  kRecvTimeout,
  // recvfile: the peer closed (or the connection died) before the requested
  // length arrived — same truncation contract as kRecvTimeout, but the
  // stream is known to be over.
  kRecvTruncated,
  // sendfile/recvfile: local disk I/O failed (open / read / write /
  // truncate).
  kFileIo,
};

struct SocketOptions {
  // Maximum UDT payload per packet; +16 header bytes go on the wire.
  int mss_bytes = 1456;
  std::size_t snd_buffer_bytes = std::size_t{16} << 20;
  std::int32_t rcv_buffer_pkts = 16384;
  double syn_s = 0.01;
  bool window_control = true;       // flow control on/off (Fig. 7 ablation)
  int probe_interval = 16;          // packet pair every N packets
  double min_exp_timeout_s = 0.3;
  // EXP escalations (with data outstanding) tolerated before the connection
  // is declared broken; the backoff factor doubles per timeout and caps at
  // 16, so the total patience is bounded (§3.5).
  int max_exp_timeouts = 16;
  // close(): bounded wait for in-flight data to be acknowledged before the
  // shutdown is sent.
  double linger_s = 1.0;
  // Outbound data-packet loss injection (emulates a lossy path on loopback).
  double loss_injection = 0.0;
  std::uint64_t loss_seed = 1;
  // Full fault-injection layer for the channel (both directions; drop /
  // duplicate / reorder / corrupt / truncate / outage).  Takes precedence
  // over `loss_injection`.  The caller may keep its reference and flip
  // faults mid-run; see fault.hpp.
  std::shared_ptr<FaultInjector> faults;
  // Optional sending-rate cap in Mb/s (0 = uncapped).
  double max_bandwidth_mbps = 0.0;
  // Maximum datagrams moved per UDP system call on the hot paths.  The
  // paper's profile (Table 3) shows the per-packet sendto/recvfrom calls
  // dominating CPU on both sides; batching amortises them via
  // sendmmsg/recvmmsg while the Pacer keeps the average rate on the §4.5
  // schedule (batch_credit bounds each burst to a ~200 us horizon, so low
  // rates still get true per-packet spacing).  1 = unbatched, the paper's
  // original per-packet behavior; clamped to [1, 64].
  int io_batch = 16;
  // Zero-copy datapath: the sender hands the kernel (header, payload)
  // iovecs pointing straight into SndBuffer chunks (no staging buffer,
  // chunks pinned across the unlocked syscall) and the receiver parses
  // datagrams in place inside a pooled slab whose slot ownership moves into
  // RcvBuffer — one payload memcpy per direction in steady state instead of
  // 2-3.  Off reproduces the previous staging datapath byte-for-byte.
  bool zero_copy = true;
  // UDP GSO/GRO offload on top of the zero-copy path: contiguous
  // equal-size runs leave as one UDP_SEGMENT super-datagram and bursts
  // arrive GRO-coalesced.  Silently degrades to plain sendmmsg/recvmmsg
  // off-Linux, when the kernel refuses the offload, when UDTR_NO_GSO is
  // set, or when a fault injector owns per-datagram semantics.
  bool gso = true;
  bool enable_profiler = false;     // Table 3 instrumentation
  // Initial sequence number (< 0 = default).  Exposed so tests can start
  // near the 31-bit wrap boundary.
  std::int64_t initial_seq = -1;
  // false (default): the socket shares a Multiplexer — one UDP port, one
  // receive thread and one send thread for every socket with compatible
  // options, and accepted connections stay on the listener's port.  true:
  // the socket owns a dedicated UDP channel and two service threads, and
  // each accepted connection opens its own child channel — the legacy
  // per-socket datapath, byte-for-byte.
  bool exclusive_port = false;
  // Multiplexer datapath shards per UDP port: each shard runs its own
  // rx/tx thread pair, receive slab, send heap and timer wheel on its own
  // SO_REUSEPORT fd (kernel-steered by destination socket id; falls back to
  // software demux on one fd where unavailable).  Sockets are assigned
  // shard = socket id % N for life, so a flow never migrates.  0 = auto
  // (min(4, hw_concurrency/2), or the UDTR_MUX_SHARDS env override);
  // 1 reproduces the single-pair datapath; clamped to [1, 16].  Ignored in
  // exclusive-port mode.
  int mux_shards = 0;
  // Datapath backend for the multiplexer's shard channels (channel.hpp).
  // kAuto probes io_uring support at first bind and quietly falls back to
  // the mmsg path (also forced by UDTR_NO_URING); kUring demands it; kMmsg
  // is today's sendmmsg/recvmmsg path byte-for-byte.  With the uring
  // backend the shard rx thread drains CQEs instead of recvmmsg and data
  // batches go out as sendmsg SQEs whose SndBuffer pins are released when
  // the completion is reaped, not at syscall return.  Exclusive-port
  // sockets always use mmsg.
  IoBackend io_backend = IoBackend::kAuto;
  // Stateless handshake (listener side): answer the first handshake packet
  // of a connection with a signed SYN-style cookie and keep zero state
  // until the client echoes it back (handshake_cookie.hpp).  Costs one
  // extra round trip at connect; makes a spoofed-source handshake flood
  // memory-free.  false restores the legacy two-way handshake for interop
  // with cookie-unaware peers.  Clients handle challenges unconditionally,
  // so this option only matters on the listener.
  bool stateless_handshake = true;
  // Per-source-IP admission control on the multiplexer handshake path
  // (ignored in exclusive-port mode): token-bucket rate limit per source,
  // cap on concurrent half-open connections per source, and the bound on
  // the tracking table itself (LRU-evicted, so spoofed sources cannot
  // balloon it).  Defaults are sized for many clients behind one address
  // (NAT, loopback test fleets): the rate bounds a single-source packet
  // storm's CPU cost without throttling a legitimate connect burst, while
  // memory is defended by the cookie (nothing is retained pre-echo) and
  // the pending cap, not by the rate.
  double handshake_rate_per_ip = 20000.0;
  double handshake_burst_per_ip = 4096.0;
  int max_pending_per_ip = 64;
  int max_tracked_ips = 4096;
  // Congestion-control algorithm (congestion.hpp): "" or "udt" is the
  // paper's native AIMD/RBPP controller (byte-for-byte the historic
  // behavior); "reno-sack", "scalable", "highspeed", "bic", "vegas" and
  // "fast" select the ported TCP laws.  Sender-side only — nothing is
  // negotiated, so the two ends of a connection may run different
  // controllers.  listen()/connect() return nullptr on an unknown name.
  std::string congestion;
  // Escape hatch for custom controllers: when set, overrides `congestion`
  // and is called once per socket with the host parameters.
  CcFactory congestion_factory;
  // Receiver-side delay-trend warnings (§6): feed every data arrival's
  // one-way delay to a PCT/PDT detector (common/delay_trend.hpp) and send a
  // kDelayWarn control packet to the data sender when a rising trend is
  // found; the sender delivers it to its controller as on_delay_warning().
  // Off by default — the wire stays byte-for-byte the historic protocol.
  // Enable on the RECEIVING peer to give a delay-aware sender (vegas, fast,
  // or udt with delay_trend_mode) its early-congestion signal; loss-driven
  // senders ignore the warning, so the option is interop-safe either way.
  bool delay_warnings = false;
  // Message mode: largest message sendmsg() accepts, in MSS-sized packets.
  // Bounds the receiver-side reassembly walk and keeps one message from
  // monopolizing the send buffer.
  int max_msg_pkts = 1024;
  // --- bulk file transfer (§4.7, Table 2) --------------------------------
  // Pipelined zero-copy disk datapath for sendfile/recvfile
  // (file_pipeline.hpp): a reader thread pread()s (or io_uring-READs) into
  // a ring of 64 KB-aligned chunks the wire transmits from directly
  // (borrowed into SndBuffer, recycled on ACK-release), and a write-behind
  // thread drains the receive buffer by reference into pwrite()/io_uring
  // WRITE with ftruncate preallocation.  Disk and wire overlap, and steady
  // state moves payload without copies on either side.  false restores the
  // synchronous 1 MB staging loops, byte-for-byte.
  bool file_pipeline = true;
  // Reader-ring chunk size (rounded up to 64 KB multiples, filled in MSS
  // multiples) and ring depth.  chunk_bytes * ring_chunks bounds both the
  // per-transfer file memory and the unacknowledged borrowed window; the
  // ring running dry is backpressure on the disk reader, not an error.
  std::size_t file_chunk_bytes = std::size_t{256} << 10;
  int file_ring_chunks = 16;
  // sendfile: deadline for the tail flush once the last byte is buffered
  // (previously a hardcoded 60 s).  recvfile (pipelined): longest wait with
  // no arriving data before the transfer is abandoned as kRecvTimeout.
  double file_flush_timeout_s = 60.0;
  // File READ/WRITE through a dedicated io_uring when the kernel has one
  // (independent of io_backend, which drives the UDP datapath); quietly
  // falls back to pread/pwrite, and UDTR_NO_URING forces the fallback.
  bool file_uring = true;
  // Injected disk-rate caps in Mb/s for the reader / writer stages (0 =
  // off).  bench_blast_file (and tests) use these to emulate the Table-2
  // disk bottleneck on hardware whose page cache is far faster than the
  // disks the paper measured.
  double file_disk_read_mbps = 0.0;
  double file_disk_write_mbps = 0.0;
};

struct PerfStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t data_packets_recv = 0;
  std::uint64_t retransmitted = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_recv = 0;
  std::uint64_t naks_sent = 0;
  std::uint64_t naks_recv = 0;
  std::uint64_t bytes_sent = 0;     // application payload accepted by send()
  std::uint64_t bytes_delivered = 0;  // application payload handed to recv()
  std::uint64_t timeouts = 0;
  std::uint64_t keepalives_sent = 0;
  // Datagrams rejected by the validation layer (short, wrong destination
  // socket, unknown control type, truncated control payload).
  std::uint64_t invalid_packets = 0;
  // NAK ranges discarded as inverted or entirely outside the send window.
  std::uint64_t invalid_nak_ranges = 0;
  // Listener-side admission counters (multiplexed listeners aggregate the
  // port's counters; exclusive listeners count locally).
  std::uint64_t accept_queue_drops = 0;        // pending queue overflowed
  std::uint64_t handshake_admission_drops = 0; // per-IP rate/pending limits
  std::uint64_t handshake_cookie_rejects = 0;  // invalid or expired cookies
  // ACKs that did not advance snd_una (duplicates, reordered-stale): their
  // receiver statistics are withheld from the congestion controller.
  std::uint64_t stale_acks_dropped = 0;
  // Keepalive probes sent while the peer advertised a zero receive window.
  std::uint64_t zero_window_probes = 0;
  // Message mode (partial reliability): messages accepted by sendmsg /
  // delivered by recvmsg / expired by their TTL before full acknowledgment,
  // and kMsgDrop control packets emitted / received.
  std::uint64_t msgs_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped_ttl = 0;
  std::uint64_t msg_drop_ctrl_sent = 0;
  std::uint64_t msg_drop_ctrl_recv = 0;
  // Delay-trend warnings (kDelayWarn): emitted by our receiver (with
  // delay_warnings on) / delivered to our congestion controller.
  std::uint64_t delay_warnings_sent = 0;
  std::uint64_t delay_warnings_recv = 0;
  double rtt_ms = 0.0;
  double capacity_mbps = 0.0;       // RBPP estimate
  double recv_rate_mbps = 0.0;      // arrival-speed estimate
  double send_period_us = 0.0;      // current pacing interval
  double window_pkts = 0.0;
  // Receiver-advertised free buffer from the freshest ACK (flow control);
  // 0 while the peer's window is closed.
  double peer_window_pkts = 0.0;
  std::string cc_name;              // active congestion-control algorithm
};

class Socket {
 public:
  ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // --- establishment ----------------------------------------------------
  // Creates a listening socket on 127.0.0.1:`port` (0 = ephemeral).
  static std::unique_ptr<Socket> listen(std::uint16_t port,
                                        SocketOptions opts = {});
  // Waits for one incoming connection (listener only).
  std::unique_ptr<Socket> accept(
      std::chrono::milliseconds timeout = std::chrono::milliseconds{10000});
  // Connects to a listening UDT socket.
  static std::unique_ptr<Socket> connect(const std::string& host,
                                         std::uint16_t port,
                                         SocketOptions opts = {});

  [[nodiscard]] std::uint16_t local_port() const {
    return net_->local_port();
  }

  // --- data transfer ----------------------------------------------------
  // Buffers all of `data` for transmission, blocking while the send buffer
  // is full.  Returns bytes accepted (== data.size() unless closed).
  std::size_t send(std::span<const std::uint8_t> data);
  // Overlapped send (§4.7): transmits directly from the caller's memory —
  // no copy into the protocol buffer — and blocks until everything handed
  // over is acknowledged, at which point the caller may reuse `data`.
  // Returns bytes sent-and-acknowledged.
  std::size_t send_overlapped(std::span<const std::uint8_t> data,
                              std::chrono::milliseconds timeout =
                                  std::chrono::seconds{60});
  // Receives at least one byte (blocking up to `timeout`); returns bytes
  // read, 0 on timeout or orderly shutdown with nothing pending.
  std::size_t recv(std::span<std::uint8_t> out,
                   std::chrono::milliseconds timeout =
                       std::chrono::milliseconds{10000});
  // --- message mode (opt-in per socket, real UDT's SOCK_DGRAM semantics) --
  // Sends one message whose boundaries are preserved end-to-end, blocking
  // while the send buffer lacks room for the whole message (all-or-nothing).
  // `ttl` > 0 arms partial reliability: a message not fully acknowledged by
  // its deadline is dropped — its unsent/unacked packets are abandoned and
  // the receiver is told to seal the hole — instead of retransmitted
  // forever.  ttl <= 0 means fully reliable.  `in_order` = false lets the
  // receiver deliver this message before earlier (e.g. still-recovering)
  // ones.  Returns data.size(), or 0 when the message is empty, larger than
  // max_msg_pkts packets (or the send buffer), the socket is closed, or the
  // socket already carries stream traffic — one socket speaks either stream
  // or message, never both (the first send()/sendmsg() call latches it).
  std::size_t sendmsg(std::span<const std::uint8_t> data,
                      std::chrono::milliseconds ttl =
                          std::chrono::milliseconds{0},
                      bool in_order = true);
  // Receives one complete message (blocking up to `timeout`); returns bytes
  // copied, 0 on timeout, shutdown, or an empty `out`.  A message larger
  // than `out` is truncated to fit; the rest is discarded.
  std::size_t recvmsg(std::span<std::uint8_t> out,
                      std::chrono::milliseconds timeout =
                          std::chrono::milliseconds{10000});
  // Streams `length` bytes of `path` starting at `offset`; returns bytes
  // sent AND acknowledged.  Blocks until the data is delivered or the
  // socket dies — a connection that breaks with the tail unacknowledged is
  // reported as a short count, never as success.  With file_pipeline (the
  // default) the wire transmits straight out of a ring of file-read chunks
  // (zero payload copies in steady state); disk errors surface as
  // last_error() == kFileIo.  Returns 0 on a message-latched socket —
  // stream bytes cannot be spliced into a message sequence.
  std::uint64_t sendfile(const std::string& path, std::uint64_t offset,
                         std::uint64_t length);
  // Receives `length` bytes into `path` and returns bytes written.  The
  // destination is only created/truncated once the first byte has actually
  // arrived (a transfer that dies earlier leaves an existing file intact),
  // then preallocated to `length` and trimmed back if the transfer ends
  // short.  A short count is never silent: last_error() distinguishes
  // kRecvTimeout (peer went quiet), kRecvTruncated (peer closed early),
  // kConnectionBroken and kFileIo; a clean full-length transfer resets it
  // to kNone.  With file_pipeline the disk write overlaps reassembly
  // (write-behind by reference) instead of gating the receive loop.
  std::uint64_t recvfile(const std::string& path, std::uint64_t length);

  // Waits until everything buffered so far is acknowledged.
  bool flush(std::chrono::milliseconds timeout);

  void close();
  [[nodiscard]] bool closed() const { return !running_; }

  // --- lifecycle / error surfacing --------------------------------------
  [[nodiscard]] ConnState state() const { return state_; }
  [[nodiscard]] SocketError last_error() const { return last_error_; }
  [[nodiscard]] bool broken() const { return state_ == ConnState::kBroken; }
  // This socket's id on the wire (the peer addresses us with it); exposed
  // so tests can craft raw datagrams that pass validation.
  [[nodiscard]] std::uint32_t id() const { return socket_id_; }
  // Consecutive EXP expirations with data outstanding since the last
  // control packet from the peer (resets to 0 on any control arrival).
  [[nodiscard]] int consecutive_exp_timeouts() const;

  [[nodiscard]] PerfStats perf() const;
  [[nodiscard]] Profiler& profiler() { return profiler_; }
  [[nodiscard]] const CongestionControl& congestion() const { return *cc_; }

  // The multiplexer this socket is attached to; nullptr in exclusive-port
  // mode.  Exposed for diagnostics (unroutable-datagram counters, thread
  // accounting in tests and benches).
  [[nodiscard]] std::shared_ptr<Multiplexer> multiplexer() const {
    return mux_;
  }

  // Current readiness against `mask` (kPollIn / kPollOut / kPollErr,
  // poller.hpp), computed from the protocol buffers under the socket lock.
  // Poller::wait is built on this; it is also directly usable for one-off
  // non-blocking checks.
  [[nodiscard]] std::uint32_t poll_ready(std::uint32_t mask) const;

 private:
  friend class Multiplexer;
  friend class Poller;

  explicit Socket(SocketOptions opts);

  enum class Mode { kListener, kConnected };

  void start_threads();
  void sender_loop();
  void receiver_loop();

  // --- multiplexed mode ---------------------------------------------------
  std::unique_ptr<Socket> accept_mux(std::chrono::milliseconds timeout);
  // Shared-port half of connect(): attach to a compatible client
  // multiplexer, run the handshake through its receive thread, enter
  // steady state.
  static std::unique_ptr<Socket> connect_mux(std::unique_ptr<Socket> s,
                                             const Endpoint& server,
                                             const SocketOptions& opts);
  // Transition into steady state on a multiplexer: size the tx scratch,
  // adopt the shared receive slab and mark the connection established.
  void setup_mux_mode();
  // True while the sender has something it may transmit now (state_mu_
  // held): pending retransmissions, or new data inside the window.
  [[nodiscard]] bool snd_has_work() const;
  // Window bounding NEW data in flight (state_mu_ held): the congestion
  // controller's window, capped by the receiver's advertised free buffer —
  // including a genuine zero, which halts new data entirely (flow control
  // belongs to the socket, not the controller).
  [[nodiscard]] double effective_snd_window() const;
  void prepare_tx_scratch();
  // Fills the tx scratch with up to one pacing-credit of packets and pins
  // the covered range (zero-copy).  state_mu_ held.  Returns the number of
  // datagrams staged and the pacing period via `period_s`.
  std::size_t fill_tx_batch(double& period_s);
  // Pushes `count` staged datagrams to the wire (lock dropped).  Returns
  // true when the batch went out asynchronously (uring backend): the pin is
  // then released by on_tx_reaped when the completion lands, and the caller
  // must NOT unpin inline.
  bool send_tx_batch(std::size_t count);
  // Completion callback for send_gather_async: runs on whichever thread
  // reaps the batch's last CQE (lock order: the engine's cq_mu, then our
  // state_mu_).  Unpins the batch's chunk range and wakes overlapped
  // senders.
  static void on_tx_reaped(void* ctx, std::uint64_t token);
  // One multiplexed sender service round: fill, send, advance the pacer.
  // Returns the socket's next deadline — time_point::max() parks the socket
  // until a state change kicks it again.
  [[nodiscard]] Pacer::Clock::time_point tx_round();
  // Receive-thread entry for one demultiplexed datagram (>= kHeaderBytes,
  // already routed by destination id).  Takes state_mu_.
  void mux_ingest(std::span<const std::uint8_t> pkt, RecvSlab* slab,
                  int slab_slot);
  // Multiplexer timer sweep: check_timers() under state_mu_.
  void sweep_timers();
  // Timer-wheel sweep: check_timers() under state_mu_, then return the
  // earliest §4.8 deadline (ACK / NAK / EXP, as applicable) so the
  // multiplexer can re-arm this socket's wheel entry — an idle socket parks
  // at EXP cadence instead of being polled every millisecond.
  [[nodiscard]] Pacer::Clock::time_point sweep_timers_next();
  // Earliest next timer deadline in epoch-relative microseconds (state_mu_
  // held).
  [[nodiscard]] std::uint64_t next_timer_due_us(std::uint64_t now) const;
  // Wakes whichever sender services this socket: the dedicated sender
  // thread (exclusive mode) or the multiplexer's send heap.
  void wake_sender();

  // --- poller plumbing (definitions in poller.cpp) ------------------------
  void poke_watchers();
  void drop_watchers();

  // Receiver-thread handlers (state_mu_ held).
  // First line of defence: every datagram must carry our socket id (or be
  // a handshake, which may arrive before the peer learns it).
  [[nodiscard]] bool packet_addressed_to_us(
      std::span<const std::uint8_t> pkt) const;
  // `slab`/`slab_slot` describe where `pkt` physically lives: when non-null
  // the payload is parked in RcvBuffer by reference (slot ownership moves,
  // no copy); when null the payload is copied into owned slot storage.
  void handle_data(std::span<const std::uint8_t> pkt,
                   RecvSlab* slab = nullptr, int slab_slot = -1);
  void handle_ctrl(std::span<const std::uint8_t> pkt);
  void check_timers();
  // EXP budget exhausted: mark the connection dead and release every
  // blocked thread (state_mu_ held).
  void declare_broken();
  void send_ack();
  void send_nak(std::span<const std::pair<udtr::SeqNo, udtr::SeqNo>> ranges);
  void send_ctrl_simple(CtrlType type, std::uint32_t info = 0);
  // Message mode: TTL sweep (expire unacked messages, emit kMsgDrop) and the
  // kMsgDrop emitter.  state_mu_ held.
  void sweep_msg_ttl(std::uint64_t now);
  void send_msg_drop(std::uint32_t msg_no, std::int64_t first,
                     std::int64_t last);

  // --- file transfer (socket.cpp) ----------------------------------------
  // Legacy synchronous staging loops (file_pipeline = false), kept
  // byte-for-byte except the message-latch bailout and error surfacing.
  std::uint64_t sendfile_staged(const std::string& path, std::uint64_t offset,
                                std::uint64_t length);
  std::uint64_t recvfile_staged(const std::string& path, std::uint64_t length);
  // Pipelined zero-copy paths (file_pipeline.hpp stages).
  std::uint64_t sendfile_pipelined(const std::string& path,
                                   std::uint64_t offset, std::uint64_t length);
  std::uint64_t recvfile_pipelined(const std::string& path,
                                   std::uint64_t length);
  [[nodiscard]] std::chrono::milliseconds file_deadline_ms() const {
    return std::chrono::milliseconds{static_cast<std::int64_t>(
        std::max(opts_.file_flush_timeout_s, 0.001) * 1e3)};
  }

  [[nodiscard]] std::uint64_t now_us() const;
  [[nodiscard]] double now_s() const {
    return static_cast<double>(now_us()) * 1e-6;
  }
  [[nodiscard]] udtr::SeqNo seq_of(std::int64_t index) const {
    return udtr::SeqNo{static_cast<std::int32_t>(
        (isn_ + index) & udtr::SeqNo::kMax)};
  }
  [[nodiscard]] std::int64_t index_of(udtr::SeqNo seq,
                                      std::int64_t near) const {
    return near + udtr::SeqNo::offset(seq_of(near), seq);
  }

  SocketOptions opts_;
  Mode mode_ = Mode::kConnected;
  UdpChannel channel_;
  // Shared-port mode: the multiplexer owning the channel this socket
  // actually uses.  Held for the socket's whole lifetime (not reset on
  // close) so diagnostics stay valid; `net_` points at the active channel —
  // the multiplexer's, or `channel_` in exclusive mode.
  std::shared_ptr<Multiplexer> mux_;
  UdpChannel* net_ = &channel_;
  Endpoint peer_{};
  std::uint32_t socket_id_ = 0;
  std::uint32_t peer_socket_id_ = 0;
  // Multiplexed mode: the shard that owns this socket (socket_id_ % shards,
  // set at attach) and the socket's current timer-wheel deadline in
  // steady_clock nanoseconds — a CAS-min shared between the owning shard's
  // expiry path and cross-thread deadline tightening (Multiplexer::
  // tighten_timer).
  std::uint32_t mux_shard_ = 0;
  std::atomic<std::int64_t> wheel_deadline_ns_{0};
  std::int64_t isn_ = 0;
  std::chrono::steady_clock::time_point epoch_{};

  std::atomic<bool> running_{false};
  std::atomic<bool> peer_shutdown_{false};
  std::atomic<ConnState> state_{ConnState::kConnecting};
  std::atomic<SocketError> last_error_{SocketError::kNone};
  std::thread snd_thread_;
  std::thread rcv_thread_;
  // Serializes close(): two threads closing concurrently (or close racing
  // the destructor) must not both reach the thread joins.
  std::mutex close_mu_;

  mutable std::mutex state_mu_;
  std::condition_variable snd_cv_;      // wakes the sender thread
  std::condition_variable app_snd_cv_;  // buffer space for send()
  std::condition_variable app_rcv_cv_;  // data available for recv()

  // Invoked (state_mu_ held) wherever send progress frees buffer storage —
  // ACK advance and syscall unpin.  sendfile_pipelined installs its
  // chunk-recycle step here so the FileSource ring refills the moment the
  // ACK clock releases a chunk, even while the pump thread is blocked
  // waiting for the next disk read; null otherwise.
  std::function<void()> snd_release_hook_;

  // --- sender state (guarded by state_mu_) -------------------------------
  SndBuffer snd_buffer_;
  LossList snd_loss_;
  std::unique_ptr<CongestionControl> cc_;
  std::int64_t snd_next_ = 0;   // next new packet index
  std::int64_t snd_una_ = 0;    // first unacknowledged index
  Pacer pacer_;
  // Flow control (sender side): free receiver buffer advertised by the
  // freshest ACK seen (ack-id monotonicity, not cumulative-seq advancement —
  // a pure window update repeats its ack_seq).  Zero closes the window for
  // new data; the persist-style probe below reopens it without deadlock.
  double peer_avail_pkts_ = 1e9;
  std::int32_t last_peer_ack_id_ = 0;
  bool peer_ack_seen_ = false;
  std::uint64_t next_zw_probe_us_ = 0;
  std::uint64_t zw_probe_backoff_us_ = 0;  // 0 = probe timer disarmed

  // Staged-transmit scratch, reused every round so the steady state never
  // allocates.  Owned by whichever thread runs the send path (the dedicated
  // sender thread, or the multiplexer's send thread) — never both.
  std::vector<std::vector<std::uint8_t>> tx_wires_;           // legacy staging
  std::vector<std::span<const std::uint8_t>> tx_batch_;
  std::vector<std::array<std::uint8_t, kHeaderBytes>> tx_headers_;
  std::vector<UdpChannel::TxDatagram> tx_gather_;
  // 0 until the first fill_tx_batch materializes the scratch (lazy: an
  // idle socket never stages a batch, so it never pays for one).
  int tx_max_batch_ = 0;
  // Pin token of the batch currently staged in tx_gather_ (zero-copy).
  // Written by fill_tx_batch under state_mu_, consumed by the same service
  // thread: either inline (sync send) or via on_tx_reaped (async).
  std::uint64_t tx_pin_token_ = 0;
  // True when the sender may have work (set with every wake_sender, cleared
  // by a tx round that found nothing to do).  The multiplexer's heartbeat
  // sweep only re-kicks dirty sockets, so a 100k-socket idle fleet costs
  // one relaxed load per socket per sweep instead of a full service round.
  std::atomic<bool> tx_dirty_{false};
  // Multiplexed mode: true while a send-heap entry for this socket exists
  // (at most one).  See Multiplexer::kick / serve for the protocol.
  std::atomic<bool> tx_scheduled_{false};
  // Multiplexed connect(): handshake response stashed by the receive thread
  // for the connecting thread (guarded by state_mu_, signalled via
  // app_rcv_cv_).
  std::optional<HandshakePayload> hs_resp_;

  // --- message mode (guarded by state_mu_) -------------------------------
  // One socket speaks either stream or message, never both: boundary bits
  // forbid splicing stream bytes into a message's sequence range, so the
  // first send()/sendmsg() (resp. first data arrival / kMsgDrop) latches
  // the direction's mode and the other API returns 0 from then on.
  enum class XferMode : std::uint8_t { kUnset, kStream, kMessage };
  XferMode snd_mode_ = XferMode::kUnset;
  XferMode rcv_mode_ = XferMode::kUnset;
  std::uint32_t next_msg_no_ = 1;  // 29-bit, wraps skipping the 0 sentinel
  struct SndMsgRecord {
    std::uint32_t msg_no;
    std::int64_t first;     // first packet index
    std::int64_t last;      // last packet index (inclusive)
    std::uint64_t deadline_us;
  };
  // Finite-TTL messages awaiting full acknowledgment, in creation (and thus
  // deadline, for a steady TTL) order; swept by check_timers.
  std::deque<SndMsgRecord> snd_msgs_;
  // Expired messages whose kMsgDrop may need re-sending (NAK for a dead
  // range, EXP with the drop unacknowledged); purged once snd_una_ passes.
  std::vector<SndMsgRecord> snd_dropped_;
  // Cached min deadline over snd_msgs_ (never late, may be stale-early);
  // UINT64_MAX when no finite-TTL message is outstanding.
  std::uint64_t snd_msg_deadline_us_ = UINT64_MAX;

  // --- receiver state (guarded by state_mu_) -----------------------------
  // Declared before rcv_buffer_: the buffer's destructor releases slab
  // references, so the slab must be destroyed after it.  mux_slab_ keeps
  // the multiplexer's shared slab alive for exactly the same reason.
  std::unique_ptr<RecvSlab> rcv_slab_;
  std::shared_ptr<RecvSlab> mux_slab_;
  RcvBuffer rcv_buffer_;
  LossList rcv_loss_;
  std::int64_t lrsn_ = -1;      // largest received index
  udtr::ArrivalSpeedEstimator speed_{16};
  udtr::PacketPairEstimator pair_{16};
  // PCT/PDT detector over data-arrival one-way delays (delay_warnings only).
  udtr::DelayTrendDetector delay_trend_{16};
  std::uint64_t last_arrival_us_ = 0;
  bool any_arrival_ = false;
  std::uint64_t probe_head_us_ = 0;
  std::int64_t probe_head_index_ = -2;
  double rtt_s_ = 0.0;

  std::uint64_t last_ack_us_ = 0;
  std::uint64_t last_nak_check_us_ = 0;
  std::uint64_t last_ctrl_us_ = 0;      // EXP timer basis
  int consecutive_timeouts_ = 0;
  std::int32_t next_ack_id_ = 1;
  // In-flight ACK departure times for RTT measurement, keyed by ack id mod
  // size.  16 is ample: ACKs leave at SYN cadence (10 ms), so 16 slots cover
  // a 160 ms ACK->ACK2 turnaround — far beyond loopback RTTs — at a quarter
  // of the old 64-slot footprint (this array is per socket, and a 100k
  // fleet notices).
  std::array<std::pair<std::int32_t, std::uint64_t>, 16> ack_times_{};
  std::int64_t last_acked_index_ = -1;
  bool data_since_ack_ = false;
  // True after an ACK advertised zero free buffer: arms the receiver-side
  // reopen paths (immediate window-update ACK on drain, ACK response to the
  // sender's zero-window probes).
  bool advertised_zero_ = false;

  PerfStats stats_;
  Profiler profiler_;

  // Listener-only: responses already issued, keyed by (client ip, client
  // port | client socket id), so retransmitted requests are re-answered
  // instead of spawning duplicate sockets.  Bounded FIFO + TTL (the same
  // BoundedTtlMap the multiplexer's answered_ index uses): a long-lived
  // listener evicts the oldest entries past kMaxHandledHandshakes rather
  // than growing without limit (an evicted client's retransmit simply
  // spawns a fresh socket, which its earlier one out-competes or times out).
  static constexpr std::size_t kMaxHandledHandshakes = 1024;
  static constexpr std::chrono::seconds kHandledTtl{30};
  BoundedTtlMap<std::pair<std::uint32_t, std::uint32_t>, HandshakePayload>
      handled_{kMaxHandledHandshakes, kHandledTtl};
  // Exclusive-port listener with stateless_handshake: the cookie keyring
  // (multiplexed listeners use the port-wide keyring in the Multiplexer).
  std::unique_ptr<CookieKeyring> listener_keys_;

  // --- poller wiring (guarded by the poller registry mutex) ---------------
  std::atomic<bool> watched_{false};
  std::vector<Poller*> watchers_;
};

}  // namespace udtr::udt
