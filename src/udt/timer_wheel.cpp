#include "udt/timer_wheel.hpp"

namespace udtr::udt {

TimerWheel::TimerWheel(Clock::duration tick)
    : tick_(tick > Clock::duration::zero() ? tick
                                           : std::chrono::milliseconds{1}),
      start_(Clock::now()) {
  fired_scratch_.reserve(64);
}

TimerWheel::~TimerWheel() = default;

std::uint64_t TimerWheel::tick_of(Clock::time_point t) const {
  if (t <= start_) return 0;
  const auto d = t - start_;
  // Round up: an entry must never fire before its deadline, so a deadline
  // inside tick k is due when the cursor has fully passed k.
  return static_cast<std::uint64_t>((d + tick_ - Clock::duration{1}) / tick_);
}

TimerWheel::Node* TimerWheel::alloc_node() {
  if (!free_.empty()) {
    Node* n = free_.back();
    free_.pop_back();
    return n;
  }
  pool_.emplace_back();
  return &pool_.back();
}

void TimerWheel::unlink(Node* n) {
  if (n->head == nullptr) return;
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    *n->head = n->next;
  }
  if (n->next != nullptr) n->next->prev = n->prev;
  n->prev = n->next = nullptr;
  n->head = nullptr;
}

void TimerWheel::place(Node* n) {
  Node** head;
  if (n->due_tick <= current_tick_) {
    head = &due_;
  } else {
    const std::uint64_t dt = n->due_tick - current_tick_;
    std::uint64_t span = kSlots;   // ticks one slot of this level resolves /
    std::uint64_t shift = 0;       // log2(ticks per slot at this level)
    std::size_t level = 0;
    while (level + 1 < kLevels && dt >= span) {
      span *= kSlots;
      shift += 6;  // kSlots == 64
      ++level;
    }
    // Past the top level's horizon the entry parks in the slot covering the
    // horizon's edge and re-cascades each lap until the distance resolves.
    const std::uint64_t eff =
        dt < span ? n->due_tick : current_tick_ + span - 1;
    head = &slots_[level][(eff >> shift) & (kSlots - 1)];
  }
  n->head = head;
  n->prev = nullptr;
  n->next = *head;
  if (*head != nullptr) (*head)->prev = n;
  *head = n;
}

// Fired nodes stay in index_ (head == nullptr marks them disarmed) so the
// per-sweep fire → re-schedule cycle recycles the same node and map entry
// instead of allocating each round; only cancel() releases them.
void TimerWheel::expire(Node* n) {
  unlink(n);
  fired_scratch_.push_back(n->key);
  --count_;
}

void TimerWheel::cascade(std::size_t level) {
  const std::uint64_t shift = 6 * level;
  Node* n = slots_[level][(current_tick_ >> shift) & (kSlots - 1)];
  slots_[level][(current_tick_ >> shift) & (kSlots - 1)] = nullptr;
  while (n != nullptr) {
    Node* next = n->next;
    n->prev = n->next = nullptr;
    n->head = nullptr;
    if (n->due_tick <= current_tick_) {
      fired_scratch_.push_back(n->key);
      --count_;
    } else {
      place(n);
    }
    n = next;
  }
}

void TimerWheel::schedule(std::uint64_t key, Clock::time_point deadline) {
  std::lock_guard lk{mu_};
  const std::uint64_t due = tick_of(deadline);
  auto [it, inserted] = index_.try_emplace(key, nullptr);
  Node* n;
  if (inserted) {
    n = alloc_node();
    n->key = key;
    it->second = n;
    ++count_;
  } else {
    n = it->second;
    if (n->head == nullptr) {
      ++count_;  // re-arming a parked (fired-but-not-cancelled) node
    } else {
      unlink(n);
    }
  }
  n->due_tick = due;
  place(n);
}

void TimerWheel::cancel(std::uint64_t key) {
  std::lock_guard lk{mu_};
  const auto it = index_.find(key);
  if (it == index_.end()) return;
  Node* n = it->second;
  if (n->head != nullptr) {
    unlink(n);
    --count_;
  }
  index_.erase(it);
  free_.push_back(n);
}

std::size_t TimerWheel::drain(Clock::time_point now,
                              const std::function<void(std::uint64_t)>& fn) {
  std::unique_lock lk{mu_};
  fired_scratch_.clear();
  const std::uint64_t target = tick_of(now);
  while (current_tick_ < target) {
    if (count_ == 0) {
      // Empty wheel: nothing can fire, so the cursor jumps instead of
      // walking every elapsed tick after an idle stretch.
      current_tick_ = target;
      break;
    }
    ++current_tick_;
    Node* n = slots_[0][current_tick_ & (kSlots - 1)];
    slots_[0][current_tick_ & (kSlots - 1)] = nullptr;
    while (n != nullptr) {
      Node* next = n->next;
      n->prev = n->next = nullptr;
      n->head = nullptr;
      fired_scratch_.push_back(n->key);
      --count_;
      n = next;
    }
    // Level boundaries: when the cursor wraps level k's frame, the matching
    // level-k+1 slot cascades down (or fires, for entries now due).
    for (std::size_t level = 1; level < kLevels; ++level) {
      if ((current_tick_ & ((std::uint64_t{1} << (6 * level)) - 1)) != 0) {
        break;
      }
      cascade(level);
    }
  }
  // Entries scheduled at-or-before the cursor since the last drain.
  while (due_ != nullptr) expire(due_);

  // Fire with the mutex released so the callback can take socket locks and
  // re-schedule; the fired keys are disarmed but their nodes stay parked in
  // the index, so a re-schedule from the callback re-arms without
  // allocating.
  const std::size_t fired = fired_scratch_.size();
  lk.unlock();
  for (const std::uint64_t key : fired_scratch_) fn(key);
  return fired;
}

std::size_t TimerWheel::size() const {
  std::lock_guard lk{mu_};
  return count_;
}

}  // namespace udtr::udt
