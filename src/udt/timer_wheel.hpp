// Hierarchical timing wheel (§4.8 timer scheduling, O(expired) form).
//
// PR 4's multiplexer polled every attached socket's ACK/NAK/EXP timers once
// per millisecond — an O(all sockets) walk that charges idle connections for
// merely existing.  The wheel inverts that: each socket keeps exactly one
// entry at its *earliest* next deadline, and the rx loop's drain() touches
// only the entries whose deadline actually passed.  512 idle sockets cost
// one EXP-cadence fire each (~3/s) instead of 512,000 sweep iterations/s.
//
// Structure: kLevels levels of kSlots slots, each level covering kSlots×
// the span of the one below (1 ms tick → 64 ms / 4.1 s / 4.4 min / 4.7 h).
// An entry lands in the coarsest level that resolves its distance; when the
// cursor crosses a level boundary the matching coarse slot cascades down.
// Deadlines beyond the top level's horizon are parked in the outermost slot
// that covers them and simply re-cascade each lap — they fire on time, the
// wheel just revisits them once per ~4.7 h lap.
//
// Concurrency: one internal mutex.  The owning shard's rx thread drains;
// schedule()/cancel() may come from any thread (socket attach, a foreign
// shard's rx thread tightening a deadline after a cross-shard GRO delivery,
// detach from an application thread).  The expiry callback runs with the
// mutex *released*, so it may take socket locks and re-schedule freely.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace udtr::udt {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kLevels = 4;
  static constexpr std::size_t kSlots = 64;  // per level; power of two

  explicit TimerWheel(Clock::duration tick = std::chrono::milliseconds{1});
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms (or re-arms: at most one entry per key) `key` to fire at
  // `deadline`.  A deadline at or before the cursor fires on the next
  // drain() call regardless of how little time passes.
  void schedule(std::uint64_t key, Clock::time_point deadline);
  // Disarms `key`; a no-op when it is not armed.
  void cancel(std::uint64_t key);

  // Fires every entry whose deadline is <= `now`: removes it from the wheel
  // and invokes `fn(key)` with the internal mutex released (the callback may
  // schedule()/cancel(), including for the fired key).  Returns the number
  // of entries fired — the drain itself costs O(elapsed ticks + fired), not
  // O(armed).
  std::size_t drain(Clock::time_point now,
                    const std::function<void(std::uint64_t)>& fn);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] Clock::duration tick() const { return tick_; }
  // Ticks the finest level resolves before cascading takes over; the full
  // horizon is kSlots^kLevels ticks.
  [[nodiscard]] static constexpr std::uint64_t horizon_ticks() {
    std::uint64_t h = 1;
    for (std::size_t i = 0; i < kLevels; ++i) h *= kSlots;
    return h;
  }

 private:
  struct Node {
    std::uint64_t key = 0;
    std::uint64_t due_tick = 0;
    Node* prev = nullptr;
    Node* next = nullptr;
    Node** head = nullptr;  // slot list this node is linked into
  };

  [[nodiscard]] std::uint64_t tick_of(Clock::time_point t) const;
  void place(Node* n);              // mu_ held
  void unlink(Node* n);             // mu_ held
  void expire(Node* n);             // mu_ held: unlink + queue for callback
  void cascade(std::size_t level);  // mu_ held
  Node* alloc_node();               // mu_ held

  const Clock::duration tick_;
  const Clock::time_point start_;

  mutable std::mutex mu_;
  std::uint64_t current_tick_ = 0;
  std::size_t count_ = 0;
  Node* slots_[kLevels][kSlots] = {};
  Node* due_ = nullptr;  // already past the cursor at insert time
  std::unordered_map<std::uint64_t, Node*> index_;
  std::deque<Node> pool_;
  std::vector<Node*> free_;
  std::vector<std::uint64_t> fired_scratch_;
};

}  // namespace udtr::udt
