// A bounded FIFO+TTL map for duplicate-handshake memory.
//
// Both handshake paths need the same shape of state: "remember the response
// I sent for this (addr, socket) key for a while, so a retransmitted request
// gets the same answer instead of a second connection" — bounded in count
// (a flood cannot balloon it) and in time (a recycled client address is not
// haunted by a stale response forever).  The multiplexer's answered_ index
// and the legacy listener's handled_ map both used ad-hoc copies of this;
// they now share one implementation.
//
// Eviction is FIFO by insertion order plus a TTL sweep from the FIFO front;
// find() does not check the TTL (the owner sweeps on its own cadence, which
// keeps find() allocation- and clock-free).  Externally synchronized.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <utility>

namespace udtr::udt {

template <typename Key, typename Value>
class BoundedTtlMap {
 public:
  using Clock = std::chrono::steady_clock;

  BoundedTtlMap(std::size_t max_entries, Clock::duration ttl)
      : max_(max_entries), ttl_(ttl) {}

  // Inserts or refreshes; evicts from the FIFO front when over capacity.
  void put(const Key& k, Value v, Clock::time_point now) {
    auto it = map_.find(k);
    if (it != map_.end()) {
      it->second.value = std::move(v);
      it->second.at = now;  // refreshed entries still age out of the FIFO
      return;
    }
    const std::uint64_t seq = next_seq_++;
    map_.emplace(k, Entry{std::move(v), now, seq});
    order_.push_back({k, seq});
    while (map_.size() > max_ && !order_.empty()) pop_front_entry();
  }

  [[nodiscard]] const Value* find(const Key& k) const {
    const auto it = map_.find(k);
    return it == map_.end() ? nullptr : &it->second.value;
  }

  void erase(const Key& k) { map_.erase(k); }  // FIFO entry lazily skipped

  // Drops expired entries from the FIFO front.  Stops at the first live
  // entry, so the amortized cost per call is O(evicted).
  void sweep(Clock::time_point now) {
    while (!order_.empty()) {
      const auto it = map_.find(order_.front().first);
      if (it == map_.end() || it->second.seq != order_.front().second) {
        order_.pop_front();  // erased or superseded out-of-band: stale key
        continue;
      }
      if (now - it->second.at < ttl_) break;
      map_.erase(it);
      order_.pop_front();
    }
  }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  struct Entry {
    Value value;
    Clock::time_point at;
    std::uint64_t seq = 0;  // ties the FIFO slot to this incarnation
  };

  void pop_front_entry() {
    const auto it = map_.find(order_.front().first);
    if (it != map_.end() && it->second.seq == order_.front().second) {
      map_.erase(it);
    }
    order_.pop_front();
  }

  std::size_t max_;
  Clock::duration ttl_;
  std::map<Key, Entry> map_;
  std::deque<std::pair<Key, std::uint64_t>> order_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace udtr::udt
