// Bounded lock-free single-producer / single-consumer wakeup ring.
//
// Carries socket ids from a shard's receive thread to its sibling send
// thread (multiplexer.hpp): an ACK arriving on shard k reschedules the
// sender with two relaxed-ish atomic ops and no mutex.  The SPSC restriction
// is structural — the only producer is the shard's own rx thread (detected
// via a thread-local in the multiplexer); every other thread (application
// send(), a foreign shard's rx thread delivering a cross-shard GRO segment)
// takes the shard's mutex-protected pending list instead.
//
// Classic Lamport queue: `tail_` is written only by the producer, `head_`
// only by the consumer, each on its own cache line so the two threads never
// write-share a line.  A full ring returns false and the caller falls back
// to the mutex path, so a wakeup is never dropped.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace udtr::udt {

template <std::size_t N>
class WakeupRing {
  static_assert((N & (N - 1)) == 0, "capacity must be a power of two");

 public:
  // Producer side.  False when the ring is full (consumer stalled); the
  // caller must then deliver the wakeup through its fallback path.
  bool push(std::uint32_t v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= N) return false;
    buf_[tail & (N - 1)] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.  False when empty.
  bool pop(std::uint32_t& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    v = buf_[head & (N - 1)];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
  std::array<std::uint32_t, N> buf_{};
};

}  // namespace udtr::udt
