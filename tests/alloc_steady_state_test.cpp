// Allocation regression guard for the zero-copy datapath: once a transfer
// reaches steady state, moving data must not allocate — the sender reuses
// pooled header slots and SndBuffer chunk storage, the receiver reuses the
// recv slab, and every syscall-side scratch buffer lives on the stack or is
// reused across wakeups.  The test hooks global operator new, warms a
// loopback connection up past every pool's growth phase, then transfers
// multiple megabytes with the counter armed and asserts the per-packet
// allocation rate is (amortized) zero.
#include "udt/socket.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <new>
#include <vector>

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t n) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n > 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (n + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded > 0 ? rounded : align);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace udtr::udt {
namespace {

// Streams `total` bytes client->server; returns bytes actually delivered.
std::size_t pump(Socket& client, Socket& server, std::size_t total) {
  std::vector<std::uint8_t> block(64 << 10, 0x5A);
  std::vector<std::uint8_t> rbuf(64 << 10);
  auto tx = std::async(std::launch::async, [&] {
    std::size_t sent = 0;
    while (sent < total) {
      sent += client.send(std::span{block.data(),
                                    std::min(block.size(), total - sent)});
    }
    client.flush(std::chrono::seconds{30});
    return sent;
  });
  std::size_t received = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{30};
  while (received < total && std::chrono::steady_clock::now() < deadline) {
    received += server.recv(rbuf, std::chrono::milliseconds{200});
  }
  EXPECT_EQ(tx.get(), total);
  return received;
}

TEST(AllocSteadyState, ZeroAllocationsPerPacketInSteadyState) {
  SocketOptions opts;  // defaults: zero_copy and gso on
  // Pace below what loopback absorbs without dropping: the assertion is
  // about the clean steady-state datapath, not the loss-recovery control
  // path (which may legitimately allocate NAK ranges and loss-list nodes).
  opts.max_bandwidth_mbps = 500.0;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  // Warm-up: grow every pool past its steady-state size.  Must exceed the
  // 16 MB send-buffer capacity (the chunk free store grows to the
  // occupancy high-water mark) and one full lap of the receive ring (the
  // copy-fallback slots allocate on first touch), so it is sized at 2x the
  // send buffer.
  constexpr std::size_t kWarmup = 32u << 20;
  ASSERT_EQ(pump(*client, *server, kWarmup), kWarmup);

  const auto pkts_before = server->perf().data_packets_recv;
  g_allocs.store(0);
  g_counting.store(true);
  constexpr std::size_t kMeasured = 8u << 20;
  const std::size_t got = pump(*client, *server, kMeasured);
  g_counting.store(false);

  ASSERT_EQ(got, kMeasured);
  const auto packets = server->perf().data_packets_recv - pkts_before;
  const auto allocs = g_allocs.load();
  ASSERT_GT(packets, 1000u);
  // The budget covers the fixed per-phase cost of the harness itself (two
  // std::async invocations, thread bring-up) plus a bounded number of
  // loss-recovery allocations (NAK ranges, loss-list nodes — explicitly
  // out of scope per the pacing note above) when an oversubscribed CI box
  // starves the receiver into drops anyway.  It is not a per-packet
  // allowance: ~5700 data packets move in the measured window, so any
  // per-packet allocation would show up as thousands, not dozens.
  EXPECT_LE(allocs, 128u)
      << "steady-state datapath allocated " << allocs << " times over "
      << packets << " packets (" << static_cast<double>(allocs) / packets
      << " per packet)";

  client->close();
  server->close();
}

}  // namespace
}  // namespace udtr::udt
