#include "udt/buffers.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 0) {
  std::vector<std::uint8_t> v(n);
  std::iota(v.begin(), v.end(), seed);
  return v;
}

// ------------------------------------------------------------- SndBuffer ---

TEST(SndBuffer, SplitsIntoMssChunks) {
  SndBuffer sb{100, 10000};
  const auto data = pattern(250);
  EXPECT_EQ(sb.add(data), 250u);
  EXPECT_EQ(sb.chunk_count(), 3u);
  EXPECT_EQ(sb.chunk(0)->size(), 100u);
  EXPECT_EQ(sb.chunk(1)->size(), 100u);
  EXPECT_EQ(sb.chunk(2)->size(), 50u);
}

TEST(SndBuffer, ChunkContentsMatch) {
  SndBuffer sb{100, 10000};
  const auto data = pattern(250);
  sb.add(data);
  for (std::size_t i = 0; i < 250; ++i) {
    const auto c = sb.chunk(static_cast<std::int64_t>(i / 100));
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ((*c)[i % 100], data[i]);
  }
}

TEST(SndBuffer, CapacityLimitsAcceptance) {
  SndBuffer sb{100, 150};
  const auto data = pattern(250);
  EXPECT_EQ(sb.add(data), 150u);
  EXPECT_EQ(sb.free_bytes(), 0u);
}

TEST(SndBuffer, AckReleasesSpace) {
  SndBuffer sb{100, 300};
  sb.add(pattern(300));
  EXPECT_EQ(sb.add(pattern(100)), 0u);
  sb.ack_up_to(2);  // first two chunks acknowledged
  EXPECT_EQ(sb.first_index(), 2);
  EXPECT_EQ(sb.free_bytes(), 200u);
  EXPECT_EQ(sb.add(pattern(100)), 100u);
  // New chunk takes the next index.
  EXPECT_TRUE(sb.chunk(3).has_value());
  EXPECT_FALSE(sb.chunk(1).has_value());  // released
}

TEST(SndBuffer, NoRepackingAcrossAddCalls) {
  // Sub-MSS sends stay their own packets (packet-based framing, §6).
  SndBuffer sb{100, 10000};
  sb.add(pattern(30));
  sb.add(pattern(40));
  EXPECT_EQ(sb.chunk_count(), 2u);
  EXPECT_EQ(sb.chunk(0)->size(), 30u);
  EXPECT_EQ(sb.chunk(1)->size(), 40u);
}

// ------------------------------------------------------------- RcvBuffer ---

TEST(RcvBuffer, InOrderStoreAndRead) {
  RcvBuffer rb{100, 64};
  const auto a = pattern(100, 1);
  const auto b = pattern(100, 2);
  EXPECT_TRUE(rb.store(0, a));
  EXPECT_TRUE(rb.store(1, b));
  EXPECT_EQ(rb.contiguous_end(), 2);
  std::vector<std::uint8_t> out(200);
  EXPECT_EQ(rb.read(out), 200u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), out.begin() + 100));
}

TEST(RcvBuffer, OutOfOrderHeldUntilGapFills) {
  RcvBuffer rb{100, 64};
  EXPECT_TRUE(rb.store(1, pattern(100, 2)));
  EXPECT_EQ(rb.contiguous_end(), 0);
  std::vector<std::uint8_t> out(200);
  EXPECT_EQ(rb.read(out), 0u);
  EXPECT_TRUE(rb.store(0, pattern(100, 1)));
  EXPECT_EQ(rb.contiguous_end(), 2);
  EXPECT_EQ(rb.read(out), 200u);
}

TEST(RcvBuffer, DuplicateRejected) {
  RcvBuffer rb{100, 64};
  EXPECT_TRUE(rb.store(0, pattern(100)));
  EXPECT_FALSE(rb.store(0, pattern(100)));
  std::vector<std::uint8_t> out(100);
  rb.read(out);
  EXPECT_FALSE(rb.store(0, pattern(100)));  // now stale
}

TEST(RcvBuffer, WindowBoundsRejectFarFuture) {
  RcvBuffer rb{100, 8};
  EXPECT_FALSE(rb.store(8, pattern(100)));  // one past the window
  EXPECT_TRUE(rb.store(7, pattern(100)));
  EXPECT_EQ(rb.window_end(), 8);
}

TEST(RcvBuffer, PartialReadsKeepPosition) {
  RcvBuffer rb{100, 64};
  rb.store(0, pattern(100));
  std::vector<std::uint8_t> out(30);
  EXPECT_EQ(rb.read(out), 30u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(rb.read(out), 30u);
  EXPECT_EQ(out[0], 30);
  EXPECT_EQ(rb.readable_bytes(), 40u);
}

TEST(RcvBuffer, AvailPacketsTracksBacklog) {
  RcvBuffer rb{100, 16};
  EXPECT_EQ(rb.avail_packets(), 16);
  rb.store(0, pattern(100));
  rb.store(5, pattern(100));  // out of order: window consumed up to 6
  EXPECT_EQ(rb.avail_packets(), 10);
  std::vector<std::uint8_t> out(100);
  rb.read(out);
  EXPECT_EQ(rb.avail_packets(), 11);
}

TEST(RcvBuffer, VariableSizePacketsPreserveStream) {
  RcvBuffer rb{100, 64};
  rb.store(0, pattern(100, 1));
  rb.store(1, pattern(37, 2));   // short packet mid-stream
  rb.store(2, pattern(100, 3));
  std::vector<std::uint8_t> out(237);
  EXPECT_EQ(rb.read(out), 237u);
  EXPECT_EQ(out[100], 2);
  EXPECT_EQ(out[137], 3);
}

// --------------------------------------------------------- overlapped IO ---

TEST(RcvBuffer, UserBufferDrainsExistingData) {
  RcvBuffer rb{100, 64};
  rb.store(0, pattern(100, 1));
  std::vector<std::uint8_t> user(150);
  EXPECT_EQ(rb.register_user_buffer(user), 100u);
  EXPECT_EQ(user[0], 1);
  EXPECT_EQ(rb.release_user_buffer(), 100u);
}

TEST(RcvBuffer, UserBufferReceivesInOrderArrivalsDirectly) {
  RcvBuffer rb{100, 64};
  std::vector<std::uint8_t> user(250);
  rb.register_user_buffer(user);
  rb.store(0, pattern(100, 1));
  rb.store(1, pattern(100, 2));
  EXPECT_EQ(rb.user_buffer_filled(), 200u);
  EXPECT_EQ(user[0], 1);
  EXPECT_EQ(user[100], 2);
  // Ring stays empty: data went straight to the user buffer.
  EXPECT_EQ(rb.readable_bytes(), 0u);
}

TEST(RcvBuffer, UserBufferOverflowFallsBackToRing) {
  RcvBuffer rb{100, 64};
  std::vector<std::uint8_t> user(150);
  rb.register_user_buffer(user);
  rb.store(0, pattern(100, 1));   // direct
  rb.store(1, pattern(100, 2));   // doesn't fit entirely -> ring, partial drain
  EXPECT_EQ(rb.user_buffer_filled(), 150u);
  EXPECT_EQ(rb.release_user_buffer(), 150u);
  std::vector<std::uint8_t> rest(50);
  EXPECT_EQ(rb.read(rest), 50u);
  EXPECT_EQ(rest[0], 52);  // second packet's byte 50 (pattern seed 2)
}

TEST(RcvBuffer, OutOfOrderThenUserBufferCatchesUp) {
  RcvBuffer rb{100, 64};
  std::vector<std::uint8_t> user(300);
  rb.register_user_buffer(user);
  rb.store(1, pattern(100, 2));  // hole at 0: stays in ring
  EXPECT_EQ(rb.user_buffer_filled(), 0u);
  rb.store(0, pattern(100, 1));  // fills the hole: both drain
  EXPECT_EQ(rb.user_buffer_filled(), 200u);
  EXPECT_EQ(user[0], 1);
  EXPECT_EQ(user[100], 2);
}

// Property: random arrival order + random read sizes reproduce the stream.
class RcvBufferShuffle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RcvBufferShuffle, RandomOrderDeliversExactStream) {
  std::mt19937_64 rng{GetParam()};
  constexpr int kPackets = 200;
  RcvBuffer rb{100, 256};
  std::vector<std::uint8_t> expect;
  std::vector<std::vector<std::uint8_t>> pkts;
  for (int i = 0; i < kPackets; ++i) {
    auto p = pattern(1 + rng() % 100, static_cast<std::uint8_t>(i));
    expect.insert(expect.end(), p.begin(), p.end());
    pkts.push_back(std::move(p));
  }
  // Deliver in a window-respecting shuffled order.
  std::vector<int> order(kPackets);
  std::iota(order.begin(), order.end(), 0);
  for (int i = 0; i < kPackets; ++i) {
    const int j = i + static_cast<int>(rng() % std::min<std::size_t>(
                                           32, order.size() - i));
    std::swap(order[i], order[j]);
  }
  std::vector<std::uint8_t> got;
  for (int idx : order) {
    ASSERT_TRUE(rb.store(idx, pkts[static_cast<std::size_t>(idx)]));
    std::vector<std::uint8_t> out(1 + rng() % 300);
    const std::size_t n = rb.read(out);
    got.insert(got.end(), out.begin(), out.begin() + n);
  }
  std::vector<std::uint8_t> out(4096);
  for (std::size_t n = rb.read(out); n > 0; n = rb.read(out)) {
    got.insert(got.end(), out.begin(), out.begin() + n);
  }
  EXPECT_EQ(got, expect);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RcvBufferShuffle,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace udtr::udt
