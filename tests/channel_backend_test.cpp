// Backend parity and io_uring-specific behaviour for UdpChannel.
//
// The datapath is backend-selectable (IoBackend::kMmsg vs kUring); the
// contract is that a consumer cannot tell them apart: the same seeded byte
// stream with the same seeded fault schedule yields byte-identical delivery
// and identical injector accounting on both.  The uring-only suites cover
// the asynchronous pin-until-CQE send path and the provided-buffer-ring
// backpressure semantics, and skip visibly where the kernel lacks io_uring.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/channel.hpp"
#include "udt/fault.hpp"
#include "udt/multiplexer.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

#define SKIP_WITHOUT_URING()                            \
  do {                                                  \
    if (!UdpChannel::uring_supported()) {               \
      GTEST_SKIP() << "SKIPPED (no io_uring)";          \
    }                                                   \
  } while (0)

// Deterministic payload for datagram i of a run: length and bytes are pure
// functions of (seed, i) so both backend runs send the identical stream.
std::vector<std::uint8_t> make_payload(std::uint64_t seed, std::size_t i) {
  std::uint64_t x = seed * 0x9E3779B97F4A7C15ull + i * 0xBF58476D1CE4E5B9ull;
  const auto next = [&x] {
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
  };
  const std::size_t len = 24 + static_cast<std::size_t>(next() % 480);
  std::vector<std::uint8_t> p(len);
  for (auto& b : p) b = static_cast<std::uint8_t>(next());
  return p;
}

struct Collected {
  std::vector<std::vector<std::uint8_t>> dgrams;
  FaultStats recv_stats;
};

struct CollectCtx {
  std::vector<std::vector<std::uint8_t>>* out;
};

void collect_sink(void* ctx, const UdpChannel::RxDelivery& d) {
  auto* cc = static_cast<CollectCtx*>(ctx);
  cc->out->emplace_back(d.data.begin(), d.data.end());
}

// Streams `count` seeded datagrams through a receiver on the requested
// backend with the given recv-side fault profile, draining between small
// send batches so the loopback socket buffer never overflows (kernel drops
// would break determinism).
Collected run_faulted_transfer(IoBackend backend, const FaultProfile& prof,
                               std::uint64_t seed, std::size_t count) {
  Collected got;
  UdpChannel tx;
  UdpChannel rx;
  EXPECT_TRUE(tx.open(0));
  EXPECT_TRUE(rx.open(0));
  rx.set_recv_timeout(std::chrono::milliseconds{10});
  if (backend == IoBackend::kUring) {
    EXPECT_TRUE(rx.set_io_backend(IoBackend::kUring));
    EXPECT_TRUE(rx.uring_active());
  } else {
    EXPECT_TRUE(rx.set_io_backend(IoBackend::kMmsg));
    EXPECT_FALSE(rx.uring_active());
  }
  FaultConfig fc;
  fc.recv = prof;
  fc.seed = seed;
  auto inj = std::make_shared<FaultInjector>(fc);
  rx.set_fault_injector(inj);

  UdpChannel::RxState st;
  st.slab = std::make_shared<RecvSlab>(2048, 64);
  st.batch = 8;
  st.slot_bytes = 1024;
  CollectCtx cc{&got.dgrams};

  const Endpoint dst{0x7F000001u, rx.local_port()};
  const std::size_t kBatch = 8;
  for (std::size_t base = 0; base < count; base += kBatch) {
    std::vector<std::vector<std::uint8_t>> payloads;
    payloads.reserve(kBatch);  // spans below point into these vectors
    std::vector<UdpChannel::TxDatagram> dgrams;
    for (std::size_t i = base; i < std::min(base + kBatch, count); ++i) {
      payloads.push_back(make_payload(seed, i));
      dgrams.push_back(
          UdpChannel::TxDatagram{{payloads.back().data(), payloads.back().size()},
                                 {},
                                 false});
    }
    EXPECT_EQ(tx.send_gather(dst, dgrams), dgrams.size());
    // Drain what arrived; in-flight stays bounded by one batch.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds{2};
    std::size_t sunk = got.dgrams.size();
    while (std::chrono::steady_clock::now() < deadline) {
      (void)rx.rx_round(st, &collect_sink, &cc);
      if (got.dgrams.size() == sunk) break;  // one quiet round: batch drained
      sunk = got.dgrams.size();
    }
  }
  // Flush stragglers the injector still owes (reorder releases).
  for (int quiet = 0; quiet < 3;) {
    const auto r = rx.rx_round(st, &collect_sink, &cc);
    quiet = r.status == RecvStatus::kTimeout ? quiet + 1 : 0;
  }
  got.recv_stats = inj->stats(FaultDir::kRecv);
  return got;
}

bool stats_equal(const FaultStats& a, const FaultStats& b) {
  return a.seen == b.seen && a.dropped == b.dropped &&
         a.duplicated == b.duplicated && a.reordered == b.reordered &&
         a.corrupted == b.corrupted && a.truncated == b.truncated &&
         a.outage_dropped == b.outage_dropped;
}

// Order-preserving faults (drop / corrupt / truncate mutate or swallow in
// place): the two backends must deliver the exact same sequence of bytes
// and the injector must have made the exact same per-datagram decisions.
TEST(ChannelBackend, FaultedStreamParityIsByteExact) {
  SKIP_WITHOUT_URING();
  FaultProfile prof;
  prof.drop_p = 0.2;
  prof.corrupt_p = 0.1;
  prof.truncate_p = 0.1;
  const auto mmsg = run_faulted_transfer(IoBackend::kMmsg, prof, 42, 240);
  const auto uring = run_faulted_transfer(IoBackend::kUring, prof, 42, 240);
  ASSERT_GT(mmsg.dgrams.size(), 100u);  // most of 240 survive a 20% drop
  EXPECT_TRUE(stats_equal(mmsg.recv_stats, uring.recv_stats))
      << "mmsg seen/drop/corrupt/trunc " << mmsg.recv_stats.seen << "/"
      << mmsg.recv_stats.dropped << "/" << mmsg.recv_stats.corrupted << "/"
      << mmsg.recv_stats.truncated << " vs uring " << uring.recv_stats.seen
      << "/" << uring.recv_stats.dropped << "/" << uring.recv_stats.corrupted
      << "/" << uring.recv_stats.truncated;
  EXPECT_EQ(mmsg.dgrams, uring.dgrams);
}

// Reordering and duplication shift datagrams across batch boundaries, so
// sequence order may differ between backends — but the delivered multiset
// and the injector's decision sequence must not.
TEST(ChannelBackend, ReorderingFaultsDeliverIdenticalMultisets) {
  SKIP_WITHOUT_URING();
  FaultProfile prof;
  prof.drop_p = 0.1;
  prof.dup_p = 0.15;
  prof.reorder_p = 0.1;
  auto mmsg = run_faulted_transfer(IoBackend::kMmsg, prof, 7, 240);
  auto uring = run_faulted_transfer(IoBackend::kUring, prof, 7, 240);
  ASSERT_GT(mmsg.dgrams.size(), 100u);
  EXPECT_TRUE(stats_equal(mmsg.recv_stats, uring.recv_stats));
  std::sort(mmsg.dgrams.begin(), mmsg.dgrams.end());
  std::sort(uring.dgrams.begin(), uring.dgrams.end());
  EXPECT_EQ(mmsg.dgrams, uring.dgrams);
}

// A clean (fault-free) stream through both backends: identical bytes in
// identical order, and the uring receiver spends fewer recv syscalls per
// delivered datagram than the mmsg receiver would at worst (one per round).
TEST(ChannelBackend, CleanStreamParityOnBothBackends) {
  SKIP_WITHOUT_URING();
  const FaultProfile none;
  const auto mmsg = run_faulted_transfer(IoBackend::kMmsg, none, 3, 200);
  const auto uring = run_faulted_transfer(IoBackend::kUring, none, 3, 200);
  ASSERT_EQ(mmsg.dgrams.size(), 200u);
  ASSERT_EQ(uring.dgrams.size(), 200u);
  EXPECT_EQ(mmsg.dgrams, uring.dgrams);
}

struct TxDoneRecord {
  std::atomic<int> calls{0};
  std::atomic<std::uint64_t> token{0};
};

void tx_done(void* ctx, std::uint64_t token) {
  auto* r = static_cast<TxDoneRecord*>(ctx);
  r->token.store(token);
  r->calls.fetch_add(1);
}

// The async gather send keeps the caller's spans alive until the CQEs are
// reaped, then fires the done callback exactly once with the caller's
// token — the moment SndBuffer pins may drop.
TEST(ChannelBackend, AsyncGatherSendCompletesWithToken) {
  SKIP_WITHOUT_URING();
  UdpChannel tx;
  UdpChannel rx;
  ASSERT_TRUE(tx.open(0));
  ASSERT_TRUE(rx.open(0));
  ASSERT_TRUE(tx.set_io_backend(IoBackend::kUring));
  rx.set_recv_timeout(std::chrono::milliseconds{200});

  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.reserve(4);  // spans below point into these vectors
  std::vector<UdpChannel::TxDatagram> dgrams;
  for (std::size_t i = 0; i < 4; ++i) {
    payloads.push_back(make_payload(11, i));
    dgrams.push_back(UdpChannel::TxDatagram{
        {payloads.back().data(), payloads.back().size()}, {}, false});
  }
  TxDoneRecord rec;
  const Endpoint dst{0x7F000001u, rx.local_port()};
  ASSERT_TRUE(tx.send_gather_async(dst, dgrams, true, &tx_done, &rec, 0xFEEDu));
  tx.drain_tx(&rec);
  EXPECT_EQ(rec.calls.load(), 1);
  EXPECT_EQ(rec.token.load(), 0xFEEDu);

  std::vector<std::uint8_t> buf(2048);
  Endpoint src;
  for (std::size_t i = 0; i < 4; ++i) {
    const RecvResult r = rx.recv_from(src, buf);
    ASSERT_EQ(r.status, RecvStatus::kDatagram) << "datagram " << i;
    ASSERT_EQ(r.bytes, payloads[i].size());
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(), buf.begin()));
  }
}

// On the mmsg backend the async entry point refuses and the caller falls
// back to the synchronous path — the mmsg datapath is byte-for-byte the
// pre-backend code and never defers pin release.
TEST(ChannelBackend, AsyncGatherSendRefusesOnMmsg) {
  UdpChannel tx;
  ASSERT_TRUE(tx.open(0));
  ASSERT_TRUE(tx.set_io_backend(IoBackend::kMmsg));
  std::vector<std::uint8_t> payload{1, 2, 3};
  const UdpChannel::TxDatagram d{{payload.data(), payload.size()}, {}, false};
  TxDoneRecord rec;
  EXPECT_FALSE(tx.send_gather_async(Endpoint{0x7F000001u, 9}, {&d, 1}, true,
                                    &tx_done, &rec, 1));
  EXPECT_EQ(rec.calls.load(), 0);
}

struct HoldCtx {
  RecvSlab* slab = nullptr;
  std::vector<int> held;
  std::vector<std::vector<std::uint8_t>> dgrams;
  std::size_t copy_mode = 0;  // deliveries with slab == nullptr
};

void holding_sink(void* ctx, const UdpChannel::RxDelivery& d) {
  auto* h = static_cast<HoldCtx*>(ctx);
  h->dgrams.emplace_back(d.data.begin(), d.data.end());
  if (d.slab != nullptr && d.slab_slot >= 0) {
    d.slab->add_ref(d.slab_slot);  // park the slot like RcvBuffer would
    h->held.push_back(d.slab_slot);
  } else {
    ++h->copy_mode;
  }
}

// A consumer that parks a reference on every slab slot it is handed (as
// RcvBuffer does for every packet behind a loss gap) must not wedge the
// receive path: once the slab is exhausted the engine recycles ring
// entries onto its copy arena (slab == nullptr deliveries), counts the
// starvation as backpressure, and every datagram still arrives in order.
// A stall here would be a protocol deadlock — the retransmission that
// frees the parked slots could never be received.
TEST(ChannelBackend, BufferRingExhaustionBackpressuresWithoutDrops) {
  SKIP_WITHOUT_URING();
  UdpChannel tx;
  UdpChannel rx;
  ASSERT_TRUE(tx.open(0));
  ASSERT_TRUE(rx.open(0));
  rx.set_recv_timeout(std::chrono::milliseconds{5});
  ASSERT_TRUE(rx.set_io_backend(IoBackend::kUring));

  UdpChannel::RxState st;
  st.slab = std::make_shared<RecvSlab>(2048, 8);  // tiny: starves quickly
  st.batch = 4;
  st.slot_bytes = 1024;
  HoldCtx hc;
  hc.slab = st.slab.get();

  const Endpoint dst{0x7F000001u, rx.local_port()};
  constexpr std::size_t kCount = 48;
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::size_t i = 0; i < kCount; ++i) {
    sent.push_back(make_payload(99, i));
    ASSERT_EQ(tx.send_to(dst, sent.back()),
              static_cast<std::int64_t>(sent.back().size()));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (hc.dgrams.size() < kCount &&
         std::chrono::steady_clock::now() < deadline) {
    (void)rx.rx_round(st, &holding_sink, &hc);
  }
  ASSERT_EQ(hc.dgrams.size(), kCount);  // no drops, no stall
  EXPECT_EQ(hc.dgrams, sent);           // in order, byte-exact
  // The slab has 8 slots and the sink kept every one of them, so the tail
  // of the stream must have starved onto the copy arena.
  EXPECT_GT(rx.uring_rx_backpressure(), 0u);
  EXPECT_GT(hc.copy_mode, 0u);
  EXPECT_EQ(st.slab->free_count(), 0u);
  for (int slot : hc.held) st.slab->release(slot);
}

// TSan target: the offload latches (gso_ok_, gro_enabled_) are written by
// a first send probing UDP_SEGMENT and read/written by a first receive
// enabling GRO, concurrently, on both backends.  The assertion is the
// absence of a data-race report.
TEST(ChannelBackend, OffloadLatchesRaceFreeAcrossFirstSendAndFirstRecv) {
  for (const IoBackend backend : {IoBackend::kMmsg, IoBackend::kAuto}) {
    UdpChannel a;
    UdpChannel b;
    ASSERT_TRUE(a.open(0));
    ASSERT_TRUE(b.open(0));
    a.set_recv_timeout(std::chrono::milliseconds{5});
    b.set_recv_timeout(std::chrono::milliseconds{5});
    ASSERT_TRUE(a.set_io_backend(backend));
    const Endpoint to_b{0x7F000001u, b.local_port()};

    std::thread sender([&] {
      std::vector<std::uint8_t> payload(256, 0xAB);
      std::vector<UdpChannel::TxDatagram> run(
          4, UdpChannel::TxDatagram{{payload.data(), payload.size()}, {},
                                    false});
      for (int i = 0; i < 50; ++i) {
        (void)a.send_gather(to_b, run, true);  // first call probes GSO
        (void)a.gso_active();
      }
    });
    std::thread receiver([&] {
      (void)b.enable_gro();  // flips gro_enabled_ while sends are in flight
      std::vector<std::uint8_t> buf(4096);
      Endpoint src;
      for (int i = 0; i < 50; ++i) {
        (void)b.recv_from(src, buf);
        (void)b.gro_enabled();
      }
    });
    sender.join();
    receiver.join();
  }
}

// Backend selection contract: kMmsg always sticks, kUring reports honestly,
// kAuto never fails (it quietly stays on mmsg when the probe refuses).
TEST(ChannelBackend, SelectionContract) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  EXPECT_TRUE(ch.set_io_backend(IoBackend::kMmsg));
  EXPECT_FALSE(ch.uring_active());
  EXPECT_TRUE(ch.set_io_backend(IoBackend::kAuto));
  EXPECT_EQ(ch.uring_active(), UdpChannel::uring_supported());
  EXPECT_EQ(ch.set_io_backend(IoBackend::kUring),
            UdpChannel::uring_supported());
  EXPECT_TRUE(ch.set_io_backend(IoBackend::kMmsg));
  EXPECT_FALSE(ch.uring_active());
}

// End-to-end: a socket pair on an explicitly-uring multiplexer moves a
// seeded megabyte intact, and the multiplexer really is on the uring
// backend (selection is all-or-nothing across shards).
TEST(ChannelBackend, SocketTransferOverUringMultiplexer) {
  SKIP_WITHOUT_URING();
  SocketOptions opts;
  opts.io_backend = IoBackend::kUring;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client->multiplexer(), nullptr);
  EXPECT_TRUE(client->multiplexer()->uring_active());
  EXPECT_TRUE(server->multiplexer()->uring_active());

  constexpr std::size_t kTotal = 1u << 20;
  std::vector<std::uint8_t> block(64 << 10);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  auto txf = std::async(std::launch::async, [&] {
    std::size_t sent = 0;
    while (sent < kTotal) {
      sent += client->send(
          std::span{block.data(), std::min(block.size(), kTotal - sent)});
    }
    client->flush(std::chrono::seconds{20});
    return sent;
  });
  std::vector<std::uint8_t> rbuf(64 << 10);
  std::size_t received = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{20};
  std::size_t mismatches = 0;
  while (received < kTotal && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = server->recv(rbuf, std::chrono::milliseconds{200});
    for (std::size_t i = 0; i < n; ++i) {
      const auto expect = static_cast<std::uint8_t>((received + i) % block.size() * 131 + 7);
      if (rbuf[i] != expect) ++mismatches;
    }
    received += n;
  }
  EXPECT_EQ(txf.get(), kTotal);
  ASSERT_EQ(received, kTotal);
  EXPECT_EQ(mismatches, 0u);
  client->close();
  server->close();
}

// The explicit-mmsg multiplexer stays off uring even where it is supported:
// the fallback column of the matrix is always reachable.
TEST(ChannelBackend, SocketTransferOverMmsgMultiplexerStaysOffUring) {
  SocketOptions opts;
  opts.io_backend = IoBackend::kMmsg;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client->multiplexer(), nullptr);
  EXPECT_FALSE(client->multiplexer()->uring_active());
  EXPECT_FALSE(server->multiplexer()->uring_active());

  std::vector<std::uint8_t> msg(4096, 0x5C);
  ASSERT_EQ(client->send(msg), msg.size());
  std::vector<std::uint8_t> rbuf(8192);
  std::size_t got = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (got < msg.size() && std::chrono::steady_clock::now() < deadline) {
    got += server->recv(rbuf, std::chrono::milliseconds{100});
  }
  EXPECT_EQ(got, msg.size());
  client->close();
  server->close();
}

}  // namespace
}  // namespace udtr::udt
