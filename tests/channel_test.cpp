#include "udt/channel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace udtr::udt {
namespace {

TEST(Endpoint, ResolvesLocalhost) {
  const auto ep = Endpoint::resolve("127.0.0.1", 9000);
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->ip_host_order, 0x7F000001u);
  EXPECT_EQ(ep->port, 9000);
}

TEST(Endpoint, SockaddrRoundTrip) {
  const Endpoint ep{0x7F000001u, 12345};
  EXPECT_EQ(Endpoint::from_sockaddr(ep.to_sockaddr()), ep);
}

TEST(UdpChannel, OpensEphemeralPort) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  EXPECT_TRUE(ch.is_open());
  EXPECT_GT(ch.local_port(), 0);
}

TEST(UdpChannel, SendReceiveDatagram) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  const Endpoint to{0x7F000001u, b.local_port()};
  EXPECT_EQ(a.send_to(to, msg), 5);
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  EXPECT_EQ(b.recv_from(src, buf), 5);
  EXPECT_EQ(src.port, a.local_port());
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf.begin()));
}

TEST(UdpChannel, RecvTimesOutCleanly) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  ch.set_recv_timeout(std::chrono::milliseconds{50});
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.recv_from(src, buf), 0);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds{40});
}

TEST(UdpChannel, LossInjectionDropsOnlyLargeDatagrams) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  a.set_loss_injection(1.0, 7, /*min_bytes=*/32);  // drop all data packets
  b.set_recv_timeout(std::chrono::milliseconds{50});
  const Endpoint to{0x7F000001u, b.local_port()};

  const std::vector<std::uint8_t> big(100, 0xAB);
  const std::vector<std::uint8_t> small(16, 0xCD);
  a.send_to(to, big);    // dropped
  a.send_to(to, small);  // control-sized: passes
  std::vector<std::uint8_t> buf(256);
  Endpoint src;
  EXPECT_EQ(b.recv_from(src, buf), 16);
  EXPECT_EQ(b.recv_from(src, buf), 0);  // nothing else
  EXPECT_EQ(a.datagrams_dropped(), 1u);
}

TEST(UdpChannel, MoveTransfersOwnership) {
  UdpChannel a;
  ASSERT_TRUE(a.open(0));
  const auto port = a.local_port();
  UdpChannel b{std::move(a)};
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.local_port(), port);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace udtr::udt
