#include "udt/channel.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <thread>
#include <vector>

namespace udtr::udt {
namespace {

TEST(Endpoint, ResolvesLocalhost) {
  const auto ep = Endpoint::resolve("127.0.0.1", 9000);
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->ip_host_order, 0x7F000001u);
  EXPECT_EQ(ep->port, 9000);
}

TEST(Endpoint, SockaddrRoundTrip) {
  const Endpoint ep{0x7F000001u, 12345};
  EXPECT_EQ(Endpoint::from_sockaddr(ep.to_sockaddr()), ep);
}

TEST(UdpChannel, OpensEphemeralPort) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  EXPECT_TRUE(ch.is_open());
  EXPECT_GT(ch.local_port(), 0);
}

TEST(UdpChannel, SendReceiveDatagram) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const std::vector<std::uint8_t> msg{1, 2, 3, 4, 5};
  const Endpoint to{0x7F000001u, b.local_port()};
  EXPECT_EQ(a.send_to(to, msg), 5);
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  const RecvResult r = b.recv_from(src, buf);
  EXPECT_EQ(r.status, RecvStatus::kDatagram);
  EXPECT_EQ(r.bytes, 5u);
  EXPECT_EQ(src.port, a.local_port());
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf.begin()));
}

TEST(UdpChannel, RecvTimesOutCleanly) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  ch.set_recv_timeout(std::chrono::milliseconds{50});
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.recv_from(src, buf).status, RecvStatus::kTimeout);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds{40});
}

// Regression: a genuine zero-length datagram used to be indistinguishable
// from a timeout (both returned 0).
TEST(UdpChannel, ZeroLengthDatagramIsNotATimeout) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};
  EXPECT_EQ(a.send_to(to, {}), 0);
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  const RecvResult r = b.recv_from(src, buf);
  EXPECT_EQ(r.status, RecvStatus::kDatagram);
  EXPECT_EQ(r.bytes, 0u);
  EXPECT_EQ(src.port, a.local_port());
  // ... and with nothing pending, the next receive really is a timeout.
  b.set_recv_timeout(std::chrono::milliseconds{50});
  EXPECT_EQ(b.recv_from(src, buf).status, RecvStatus::kTimeout);
}

TEST(UdpChannel, LossInjectorDropsOnlyLargeDatagrams) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  // Drop all data-sized datagrams; control-sized ones pass.
  a.set_fault_injector(make_loss_injector(1.0, 7, /*data_min_bytes=*/32));
  b.set_recv_timeout(std::chrono::milliseconds{50});
  const Endpoint to{0x7F000001u, b.local_port()};

  const std::vector<std::uint8_t> big(100, 0xAB);
  const std::vector<std::uint8_t> small(16, 0xCD);
  a.send_to(to, big);    // dropped
  a.send_to(to, small);  // control-sized: passes
  std::vector<std::uint8_t> buf(256);
  Endpoint src;
  RecvResult r = b.recv_from(src, buf);
  EXPECT_EQ(r.status, RecvStatus::kDatagram);
  EXPECT_EQ(r.bytes, 16u);
  EXPECT_EQ(b.recv_from(src, buf).status, RecvStatus::kTimeout);
  EXPECT_EQ(a.datagrams_dropped(), 1u);
}

TEST(UdpChannel, InjectorDuplicatesDatagrams) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  FaultConfig cfg;
  cfg.send.dup_p = 1.0;
  cfg.seed = 3;
  a.set_fault_injector(std::make_shared<FaultInjector>(cfg));
  b.set_recv_timeout(std::chrono::milliseconds{200});
  const Endpoint to{0x7F000001u, b.local_port()};
  const std::vector<std::uint8_t> msg{9, 9, 9};
  a.send_to(to, msg);
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  EXPECT_EQ(b.recv_from(src, buf).bytes, 3u);
  EXPECT_EQ(b.recv_from(src, buf).bytes, 3u);  // the duplicate
  EXPECT_EQ(a.fault_injector()->stats(FaultDir::kSend).duplicated, 1u);
}

TEST(UdpChannel, InjectorReordersHeldDatagram) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  FaultConfig cfg;
  // Deterministic reordering: every data-sized datagram is held until two
  // later sends overtake it; control-sized datagrams pass straight through.
  cfg.send.reorder_p = 1.0;
  cfg.send.reorder_hold = 2;
  cfg.send.data_only = true;
  cfg.send.data_min_bytes = 32;
  cfg.seed = 4;
  auto inj = std::make_shared<FaultInjector>(cfg);
  a.set_fault_injector(inj);
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};
  const std::vector<std::uint8_t> big(100, 0xAA);  // held
  const std::vector<std::uint8_t> s1{1};           // overtakes
  const std::vector<std::uint8_t> s2{2};           // overtakes + releases
  a.send_to(to, big);
  a.send_to(to, s1);
  a.send_to(to, s2);
  std::vector<std::uint8_t> buf(256);
  Endpoint src;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 3; ++i) {
    const RecvResult r = b.recv_from(src, buf);
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    sizes.push_back(r.bytes);
  }
  // The big datagram left first but arrives last.
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 1, 100}));
  EXPECT_EQ(inj->stats(FaultDir::kSend).reordered, 1u);
}

TEST(UdpChannel, InjectorOutageDropsEverything) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  auto inj = std::make_shared<FaultInjector>(FaultConfig{});
  a.set_fault_injector(inj);
  b.set_recv_timeout(std::chrono::milliseconds{50});
  const Endpoint to{0x7F000001u, b.local_port()};
  inj->schedule_outage(std::chrono::milliseconds{0},
                       std::chrono::milliseconds{100});
  const std::vector<std::uint8_t> msg{1, 2, 3};
  a.send_to(to, msg);
  std::vector<std::uint8_t> buf(8);
  Endpoint src;
  EXPECT_EQ(b.recv_from(src, buf).status, RecvStatus::kTimeout);
  std::this_thread::sleep_for(std::chrono::milliseconds{120});
  a.send_to(to, msg);  // outage over: goes through
  b.set_recv_timeout(std::chrono::milliseconds{500});
  EXPECT_EQ(b.recv_from(src, buf).bytes, 3u);
  EXPECT_EQ(inj->stats(FaultDir::kSend).outage_dropped, 1u);
}

TEST(UdpChannel, InjectorCorruptionFlipsExactlyOneBit) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  FaultConfig cfg;
  cfg.recv.corrupt_p = 1.0;
  cfg.seed = 11;
  b.set_fault_injector(std::make_shared<FaultInjector>(cfg));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};
  const std::vector<std::uint8_t> msg(32, 0x00);
  a.send_to(to, msg);
  std::vector<std::uint8_t> buf(64);
  Endpoint src;
  const RecvResult r = b.recv_from(src, buf);
  ASSERT_EQ(r.bytes, 32u);
  int set_bits = 0;
  for (std::size_t i = 0; i < r.bytes; ++i) {
    set_bits += __builtin_popcount(buf[i]);
  }
  EXPECT_EQ(set_bits, 1);  // all zeros in, exactly one flipped bit out
}

// --- batched I/O ------------------------------------------------------------

std::vector<UdpChannel::RecvSlot> make_slots(std::vector<std::uint8_t>& arena,
                                             std::size_t count,
                                             std::size_t cap) {
  arena.assign(count * cap, 0);
  std::vector<UdpChannel::RecvSlot> slots(count);
  for (std::size_t i = 0; i < count; ++i) {
    slots[i].buf = std::span{arena.data() + i * cap, cap};
  }
  return slots;
}

TEST(UdpChannelBatch, SendRecvBatchRoundTripsByteExactly) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};

  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<std::span<const std::uint8_t>> views;
  for (std::uint8_t i = 0; i < 12; ++i) {
    msgs.emplace_back(std::size_t{20} + i, i);  // distinct sizes and fill
    views.emplace_back(msgs.back().data(), msgs.back().size());
  }
  EXPECT_EQ(a.send_batch(to, views), 12u);
  const std::uint64_t syscalls = a.send_syscalls();
  EXPECT_GE(syscalls, 1u);
  EXPECT_LE(syscalls, 12u);  // batched: ideally 1 on Linux

  std::vector<std::uint8_t> arena;
  auto slots = make_slots(arena, 16, 256);
  std::size_t got = 0;
  while (got < 12) {
    const auto r = b.recv_batch(std::span{slots}.subspan(got));
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    ASSERT_GT(r.count, 0u);
    got += r.count;
  }
  ASSERT_EQ(got, 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(slots[i].bytes, msgs[i].size());
    EXPECT_EQ(slots[i].src.port, a.local_port());
    EXPECT_TRUE(std::equal(msgs[i].begin(), msgs[i].end(),
                           slots[i].buf.begin()))
        << "datagram " << i << " corrupted in batch transit";
  }
}

TEST(UdpChannelBatch, RoundTripsByteExactlyWithFaultInjectorActive) {
  // The acceptance case: batch paths must route every datagram through the
  // injector individually and still deliver content byte-exactly when no
  // mutation fires (all probabilities zero but the injector installed on
  // both directions).
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  auto send_inj = std::make_shared<FaultInjector>(FaultConfig{});
  auto recv_inj = std::make_shared<FaultInjector>(FaultConfig{});
  a.set_fault_injector(send_inj);
  b.set_fault_injector(recv_inj);
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};

  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<std::span<const std::uint8_t>> views;
  for (std::uint8_t i = 0; i < 10; ++i) {
    msgs.emplace_back(std::size_t{40} + 7 * i, static_cast<std::uint8_t>(
                                                   0xA0 + i));
    views.emplace_back(msgs.back().data(), msgs.back().size());
  }
  EXPECT_EQ(a.send_batch(to, views), 10u);

  std::vector<std::uint8_t> arena;
  auto slots = make_slots(arena, 16, 256);
  std::size_t got = 0;
  while (got < 10) {
    const auto r = b.recv_batch(std::span{slots}.subspan(got));
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    got += r.count;
  }
  ASSERT_EQ(got, 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(slots[i].bytes, msgs[i].size());
    EXPECT_TRUE(std::equal(msgs[i].begin(), msgs[i].end(),
                           slots[i].buf.begin()));
  }
  // Every datagram was seen individually by both injectors.
  EXPECT_EQ(send_inj->stats(FaultDir::kSend).seen, 10u);
  EXPECT_EQ(recv_inj->stats(FaultDir::kRecv).seen, 10u);
}

TEST(UdpChannelBatch, InjectorDropsApplyPerDatagramAcrossABatch) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  FaultConfig cfg;
  // Deterministic per-datagram filter: drop data-sized datagrams, pass
  // control-sized ones — inside one batch.
  cfg.send.drop_p = 1.0;
  cfg.send.data_only = true;
  cfg.send.data_min_bytes = 32;
  cfg.seed = 5;
  auto inj = std::make_shared<FaultInjector>(cfg);
  a.set_fault_injector(inj);
  b.set_recv_timeout(std::chrono::milliseconds{200});
  const Endpoint to{0x7F000001u, b.local_port()};

  const std::vector<std::uint8_t> big(100, 0xEE);
  const std::vector<std::uint8_t> small(16, 0x11);
  const std::array<std::span<const std::uint8_t>, 4> batch{
      std::span<const std::uint8_t>{big}, std::span<const std::uint8_t>{small},
      std::span<const std::uint8_t>{big}, std::span<const std::uint8_t>{small}};
  // send_batch reports all accepted — from the sender's view they left.
  EXPECT_EQ(a.send_batch(to, batch), 4u);
  EXPECT_EQ(inj->stats(FaultDir::kSend).dropped, 2u);

  std::vector<std::uint8_t> arena;
  auto slots = make_slots(arena, 8, 256);
  std::size_t got = 0;
  while (got < 2) {
    const auto r = b.recv_batch(std::span{slots}.subspan(got));
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    got += r.count;
  }
  EXPECT_EQ(got, 2u);  // only the control-sized pair survived
  EXPECT_EQ(slots[0].bytes, 16u);
  EXPECT_EQ(slots[1].bytes, 16u);
  EXPECT_EQ(b.recv_batch(slots).status, RecvStatus::kTimeout);
}

TEST(UdpChannelBatch, RecvBatchDeliversInjectorOwedDuplicates) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  FaultConfig cfg;
  cfg.recv.dup_p = 1.0;  // every received datagram owes a duplicate
  cfg.seed = 9;
  auto inj = std::make_shared<FaultInjector>(cfg);
  b.set_fault_injector(inj);
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};

  const std::vector<std::uint8_t> msg{5, 6, 7, 8};
  a.send_to(to, msg);

  std::vector<std::uint8_t> arena;
  auto slots = make_slots(arena, 4, 64);
  std::size_t got = 0;
  while (got < 2) {
    const auto r = b.recv_batch(std::span{slots}.subspan(got));
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    got += r.count;
  }
  // Original and owed duplicate, both byte-exact, both with the source.
  EXPECT_EQ(got, 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(slots[i].bytes, 4u);
    EXPECT_EQ(slots[i].src.port, a.local_port());
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), slots[i].buf.begin()));
  }
  EXPECT_EQ(inj->ready_recv_count(), 0u);
}

TEST(UdpChannelBatch, RecvBatchTimesOutCleanly) {
  UdpChannel ch;
  ASSERT_TRUE(ch.open(0));
  ch.set_recv_timeout(std::chrono::milliseconds{50});
  std::vector<std::uint8_t> arena;
  auto slots = make_slots(arena, 4, 64);
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = ch.recv_batch(slots);
  EXPECT_EQ(r.status, RecvStatus::kTimeout);
  EXPECT_EQ(r.count, 0u);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds{40});
}

TEST(UdpChannel, MoveTransfersOwnership) {
  UdpChannel a;
  ASSERT_TRUE(a.open(0));
  const auto port = a.local_port();
  UdpChannel b{std::move(a)};
  EXPECT_TRUE(b.is_open());
  EXPECT_EQ(b.local_port(), port);
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace udtr::udt
