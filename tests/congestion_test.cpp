// Pluggable congestion control (udt/congestion.hpp): factory name handling,
// byte-for-byte parity of the UdtCc adapter against the raw controller, and
// unit coverage for the TCP-law adapters on the real-socket event stream.
#include "udt/congestion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "cc/udt_cc.hpp"

namespace udtr::udt {
namespace {

cc::AckInfo ack(std::int32_t seq, double rtt_s, double recv_rate_pps,
                double capacity_pps, double avail = 1e9) {
  cc::AckInfo a;
  a.ack_seq = udtr::SeqNo{seq};
  a.rtt_s = rtt_s;
  a.recv_rate_pps = recv_rate_pps;
  a.capacity_pps = capacity_pps;
  a.avail_buffer_pkts = avail;
  return a;
}

// ------------------------------------------------------------- factory ---

TEST(Congestion, FactoryBuildsEveryAdvertisedName) {
  for (const std::string& name : congestion_names()) {
    const auto cc = make_congestion(name, {});
    ASSERT_NE(cc, nullptr) << name;
    EXPECT_EQ(cc->name(), name);
    EXPECT_GT(cc->window_packets(), 0.0) << name;
    EXPECT_GE(cc->pkt_send_period_s(), 0.0) << name;
  }
}

TEST(Congestion, EmptyNameAliasesUdtAndUnknownIsRejected) {
  const auto def = make_congestion("", {});
  ASSERT_NE(def, nullptr);
  EXPECT_STREQ(def->name(), "udt");
  EXPECT_EQ(make_congestion("bbr9", {}), nullptr);
  EXPECT_EQ(make_congestion("RENO-SACK", {}), nullptr);  // case-sensitive
}

// ----------------------------------------------- UdtCc adapter parity ---
//
// The default controller reached through the interface must be the seed
// controller exactly: same config mapping, same outputs after every event
// of a trace covering slow start, epoch-opening NAKs, in-epoch NAKs,
// timeout and the delay warning.

struct TraceStep {
  enum Kind { kAck, kNak, kTimeout, kDelayWarn } kind;
  double now_s;
  cc::AckInfo info{};       // kAck
  std::int32_t biggest = 0;  // kNak
  std::int32_t largest = 0;  // kNak
};

std::vector<TraceStep> parity_trace() {
  std::vector<TraceStep> t;
  double now = 0.0;
  std::int32_t seq = 0;
  // Slow start: a SYN-clocked ramp with growing cumulative ACKs.
  for (int i = 0; i < 12; ++i) {
    now += 0.01;
    seq += 8 + i;
    t.push_back({TraceStep::kAck, now, ack(seq, 0.02, 5000.0, 80000.0), 0, 0});
  }
  // Epoch-opening NAK (freeze), then in-epoch NAKs during repair.
  now += 0.005;
  t.push_back({TraceStep::kNak, now, {}, seq - 30, seq + 5});
  for (int i = 0; i < 4; ++i) {
    now += 0.002;
    t.push_back({TraceStep::kNak, now, {}, seq - 28 + i, seq + 5});
  }
  // Recovery ACKs, including one advertising a small receiver buffer.
  for (int i = 0; i < 6; ++i) {
    now += 0.01;
    seq += 5;
    t.push_back({TraceStep::kAck, now,
                 ack(seq, 0.021, 4000.0, 80000.0, i == 2 ? 7.0 : 1e9), 0, 0});
  }
  // Timeout, delay warning, then a fresh epoch NAK.
  now += 0.3;
  t.push_back({TraceStep::kTimeout, now, {}, 0, 0});
  now += 0.01;
  t.push_back({TraceStep::kDelayWarn, now, {}, 0, 0});
  now += 0.01;
  t.push_back({TraceStep::kNak, now, {}, seq + 2, seq + 10});
  for (int i = 0; i < 5; ++i) {
    now += 0.01;
    seq += 3;
    t.push_back({TraceStep::kAck, now, ack(seq, 0.02, 3000.0, 60000.0), 0, 0});
  }
  return t;
}

TEST(Congestion, UdtAdapterMatchesRawControllerOnFullTrace) {
  CcConfig host;
  host.mss_bytes = 1456 + 16;
  host.syn_s = 0.01;
  host.window_control = true;
  host.max_window = 16384.0;
  host.seed = 20040807;
  const auto iface = make_congestion("udt", host);
  ASSERT_NE(iface, nullptr);

  // The raw controller configured exactly as the Socket historically did.
  cc::UdtCcConfig raw_cfg;
  raw_cfg.mss_bytes = host.mss_bytes;
  raw_cfg.syn_s = host.syn_s;
  raw_cfg.window_control = host.window_control;
  raw_cfg.max_window = host.max_window;
  raw_cfg.seed = host.seed;
  cc::UdtCc raw{raw_cfg};

  for (const TraceStep& step : parity_trace()) {
    iface->set_now(step.now_s);
    raw.set_now(step.now_s);
    switch (step.kind) {
      case TraceStep::kAck:
        iface->on_ack(step.info);
        raw.on_ack(step.info);
        break;
      case TraceStep::kNak:
        iface->on_nak(udtr::SeqNo{step.biggest}, udtr::SeqNo{step.largest});
        raw.on_nak(udtr::SeqNo{step.biggest}, udtr::SeqNo{step.largest});
        break;
      case TraceStep::kTimeout:
        iface->on_timeout();
        raw.on_timeout();
        break;
      case TraceStep::kDelayWarn:
        iface->on_delay_warning();
        raw.on_delay_warning();
        break;
    }
    ASSERT_DOUBLE_EQ(iface->pkt_send_period_s(), raw.pkt_send_period_s());
    ASSERT_DOUBLE_EQ(iface->window_packets(), raw.window_packets());
    ASSERT_DOUBLE_EQ(iface->last_rtt_s(), raw.last_rtt_s());
    ASSERT_DOUBLE_EQ(iface->freeze_deadline_s(), raw.freeze_deadline_s());
    ASSERT_EQ(iface->frozen_at(step.now_s), raw.frozen_until(step.now_s));
  }
}

TEST(Congestion, UdtFreezeDeadlineIsPreciseAfterEpochNak) {
  const auto cc = make_congestion("udt", {});
  cc->set_now(1.0);
  cc->on_ack(ack(100, 0.05, 2000.0, 50000.0));
  cc->set_now(1.5);
  cc->on_nak(udtr::SeqNo{80}, udtr::SeqNo{120});
  // An epoch-opening NAK freezes the sender for one SYN (paper §3.3); the
  // deadline is an exact instant the host can schedule at, not a poll flag.
  const double deadline = cc->freeze_deadline_s();
  EXPECT_GT(deadline, 1.5);
  EXPECT_TRUE(cc->frozen_at(1.5));
  EXPECT_TRUE(cc->frozen_at(deadline - 1e-9));
  EXPECT_FALSE(cc->frozen_at(deadline));
}

TEST(Congestion, TcpLawsNeverFreeze) {
  for (const std::string& name : congestion_names()) {
    if (name == "udt") continue;
    const auto cc = make_congestion(name, {});
    cc->set_now(1.0);
    cc->on_nak(udtr::SeqNo{50}, udtr::SeqNo{100});
    EXPECT_FALSE(cc->frozen_at(1.0)) << name;
    EXPECT_LE(cc->freeze_deadline_s(), 1.0) << name;
  }
}

// ------------------------------------------------- TCP-law adapters ---

TEST(Congestion, TcpSlowStartGrowsByAckedPackets) {
  const auto cc = make_congestion("reno-sack", {});
  cc->set_now(0.0);
  const double w0 = cc->window_packets();
  cc->on_ack(ack(10, 0.05, 1000.0, 10000.0));  // first ACK counts as one
  EXPECT_DOUBLE_EQ(cc->window_packets(), w0 + 1.0);
  cc->set_now(0.01);
  cc->on_ack(ack(30, 0.05, 1000.0, 10000.0));  // 20 newly covered packets
  EXPECT_DOUBLE_EQ(cc->window_packets(), w0 + 21.0);
}

TEST(Congestion, TcpLossDecreasesOncePerCongestionEvent) {
  const auto cc = make_congestion("reno-sack", {});
  cc->set_now(0.0);
  cc->on_ack(ack(10, 0.05, 1000.0, 10000.0));  // window 17
  const double before = cc->window_packets();
  cc->set_now(0.01);
  cc->on_nak(udtr::SeqNo{5}, udtr::SeqNo{20});  // new event: halve
  const double after_first = cc->window_packets();
  EXPECT_DOUBLE_EQ(after_first, std::max(before / 2.0, 2.0));
  // NAKs naming only packets sent before the decrease are the same burst.
  cc->set_now(0.02);
  cc->on_nak(udtr::SeqNo{8}, udtr::SeqNo{20});
  cc->on_nak(udtr::SeqNo{15}, udtr::SeqNo{20});
  EXPECT_DOUBLE_EQ(cc->window_packets(), after_first);
  // Loss past the decrease point is a fresh signal.
  cc->set_now(0.03);
  cc->on_nak(udtr::SeqNo{25}, udtr::SeqNo{40});
  EXPECT_LT(cc->window_packets(), after_first);
}

TEST(Congestion, TcpTimeoutCollapsesAndReentersSlowStart) {
  const auto cc = make_congestion("scalable", {});
  cc->set_now(0.0);
  cc->on_ack(ack(40, 0.05, 1000.0, 10000.0));
  const double grown = cc->window_packets();
  ASSERT_GT(grown, 16.0);
  cc->set_now(0.5);
  cc->on_timeout();
  EXPECT_DOUBLE_EQ(cc->window_packets(), 2.0);
  // Slow start again: exponential per-acked growth up to ssthresh
  // (half the pre-timeout window).
  cc->set_now(0.51);
  cc->on_ack(ack(50, 0.05, 1000.0, 10000.0));
  EXPECT_DOUBLE_EQ(cc->window_packets(), 12.0);  // 2 + 10 newly acked
}

TEST(Congestion, TcpWindowIsCappedByAdvertisedBufferUnderWindowControl) {
  CcConfig flow_on;
  flow_on.window_control = true;
  const auto cc = make_congestion("reno-sack", flow_on);
  cc->set_now(0.0);
  cc->on_ack(ack(10, 0.05, 1000.0, 10000.0, 5.0));
  EXPECT_DOUBLE_EQ(cc->window_packets(), 5.0);

  CcConfig flow_off = flow_on;
  flow_off.window_control = false;
  const auto cc2 = make_congestion("reno-sack", flow_off);
  cc2->set_now(0.0);
  cc2->on_ack(ack(10, 0.05, 1000.0, 10000.0, 5.0));
  EXPECT_GT(cc2->window_packets(), 5.0);
}

TEST(Congestion, TcpPacingSpreadsWindowOverSmoothedRtt) {
  const auto cc = make_congestion("reno-sack", {});
  cc->set_now(0.0);
  // Window-limited until an RTT exists.
  EXPECT_LE(cc->pkt_send_period_s(), 1e-6);
  for (int i = 1; i <= 20; ++i) {
    cc->set_now(0.01 * i);
    cc->on_ack(ack(10 * i, 0.1, 1000.0, 10000.0));
  }
  const double srtt = cc->last_rtt_s();
  EXPECT_NEAR(srtt, 0.1, 1e-6);
  EXPECT_NEAR(cc->pkt_send_period_s(), srtt / cc->window_packets(), 1e-9);
}

TEST(Congestion, VegasBacksOffWhenQueueingDelayGrows) {
  const auto cc = make_congestion("vegas", {});
  cc->set_now(0.0);
  // Leave slow start so the delay law governs.
  cc->on_nak(udtr::SeqNo{5}, udtr::SeqNo{10});
  std::int32_t seq = 10;
  // Base RTT 50 ms, no queueing: Vegas probes upward.
  for (int i = 1; i <= 30; ++i) {
    cc->set_now(0.01 * i);
    seq += 2;
    cc->on_ack(ack(seq, 0.05, 1000.0, 10000.0));
  }
  const double uncongested = cc->window_packets();
  EXPECT_GT(uncongested, 2.0);
  // RTT inflates 4x (bufferbloat): the backlog estimate exceeds beta and
  // the window comes back down without any loss.
  for (int i = 31; i <= 120; ++i) {
    cc->set_now(0.01 * i);
    seq += 2;
    cc->on_ack(ack(seq, 0.2, 1000.0, 10000.0));
  }
  EXPECT_LT(cc->window_packets(), uncongested);
}

TEST(Congestion, FastGrowsTowardAlphaBacklogAtBaseRtt) {
  const auto cc = make_congestion("fast", {});
  cc->set_now(0.0);
  cc->on_nak(udtr::SeqNo{5}, udtr::SeqNo{10});
  const double start = cc->window_packets();
  std::int32_t seq = 10;
  for (int i = 1; i <= 40; ++i) {
    cc->set_now(0.01 * i);
    seq += 4;
    cc->on_ack(ack(seq, 0.05, 1000.0, 10000.0));
  }
  // rtt == base: the FAST map's target is cwnd + alpha, so the window rises.
  EXPECT_GT(cc->window_packets(), start);
}

TEST(Congestion, TcpDelayWarningShrinksAtMostOncePerRtt) {
  const auto cc = make_congestion("highspeed", {});
  cc->set_now(0.0);
  cc->on_ack(ack(20, 0.1, 1000.0, 10000.0));
  const double before = cc->window_packets();
  cc->set_now(0.2);
  cc->on_delay_warning();
  const double once = cc->window_packets();
  EXPECT_LT(once, before);
  cc->set_now(0.21);  // within one RTT of the last warning: ignored
  cc->on_delay_warning();
  EXPECT_DOUBLE_EQ(cc->window_packets(), once);
  cc->set_now(0.35);  // a full RTT later: honoured again
  cc->on_delay_warning();
  EXPECT_LT(cc->window_packets(), once);
}

TEST(Congestion, StaleAckNeverShrinksCoverageAccounting) {
  // The host gates non-advancing ACKs out, but the adapter's own belt must
  // hold too: a reordered older cumulative ACK is a no-op.
  const auto cc = make_congestion("reno-sack", {});
  cc->set_now(0.0);
  cc->on_ack(ack(50, 0.05, 1000.0, 10000.0));
  const double w = cc->window_packets();
  cc->set_now(0.01);
  cc->on_ack(ack(30, 0.05, 9999999.0, 9999999.0));  // stale, hot stats
  EXPECT_DOUBLE_EQ(cc->window_packets(), w);
}

}  // namespace
}  // namespace udtr::udt
