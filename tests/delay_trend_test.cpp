#include "common/delay_trend.hpp"

#include <gtest/gtest.h>

#include "cc/udt_cc.hpp"

namespace udtr {
namespace {

TEST(DelayTrend, PctOnMonotoneSeries) {
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pct({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pct({5, 4, 3, 2, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pct({1, 2, 1, 2, 1}), 0.5);
}

TEST(DelayTrend, PdtOnMonotoneSeries) {
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pdt({1, 2, 3, 4, 5}), 1.0);
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pdt({5, 4, 3, 2, 1}), -1.0);
  // Net displacement 0 over total variation 4.
  EXPECT_DOUBLE_EQ(DelayTrendDetector::pdt({1, 2, 1, 2, 1}), 0.0);
}

TEST(DelayTrend, ConstantSeriesIsNoTrend) {
  DelayTrendDetector det{8};
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(det.add_delay(0.01));
  EXPECT_FALSE(det.add_delay(0.01));
}

TEST(DelayTrend, RampFiresOncePerGroup) {
  DelayTrendDetector det{8};
  int fired = 0;
  for (int i = 0; i < 24; ++i) {
    if (det.add_delay(0.01 + 0.001 * i)) ++fired;
  }
  EXPECT_EQ(fired, 3);  // one per complete group of 8
}

TEST(DelayTrend, NoisyFlatSeriesDoesNotFire) {
  // The paper's reason for retiring the mechanism: noise — but zero-mean
  // jitter around a flat delay must not be mistaken for a trend.
  DelayTrendDetector det{16};
  const double noise[] = {1.0, 1.2, 0.9, 1.1, 1.0, 0.8, 1.15, 0.95,
                          1.05, 1.0, 0.9, 1.1, 1.2, 0.85, 1.0, 1.02};
  bool fired = false;
  for (double d : noise) fired = det.add_delay(d) || fired;
  EXPECT_FALSE(fired);
}

TEST(UdtCcDelayMode, WarningDecreasesRateWithoutFreeze) {
  cc::UdtCcConfig cfg;
  cfg.delay_trend_mode = true;
  cfg.max_window = 1e9;
  cc::UdtCc cc{cfg};
  cc.set_now(0.0);
  cc::AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.rtt_s = 0.05;
  a.recv_rate_pps = 10000.0;
  cc.on_ack(a);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{5}, udtr::SeqNo{20});  // exit slow start
  const double p0 = cc.pkt_send_period_s();
  cc.set_now(0.5);
  cc.on_delay_warning();
  EXPECT_NEAR(cc.pkt_send_period_s(), p0 * 1.125, 1e-12);
  EXPECT_FALSE(cc.frozen_until(0.5));  // milder than a loss reaction
}

TEST(UdtCcDelayMode, WarningsRateLimitedToOncePerRtt) {
  cc::UdtCcConfig cfg;
  cfg.delay_trend_mode = true;
  cc::UdtCc cc{cfg};
  cc.set_now(0.0);
  cc::AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.rtt_s = 0.1;
  a.recv_rate_pps = 10000.0;
  cc.on_ack(a);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{5}, udtr::SeqNo{20});
  const double p0 = cc.pkt_send_period_s();
  cc.set_now(0.5);
  cc.on_delay_warning();
  cc.set_now(0.52);  // within one RTT of the last warning
  cc.on_delay_warning();
  EXPECT_NEAR(cc.pkt_send_period_s(), p0 * 1.125, 1e-12);  // only one applied
}

TEST(UdtCcDelayMode, IgnoredWhenDisabled) {
  cc::UdtCc cc;  // default: delay_trend_mode off
  cc.set_now(0.0);
  cc::AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.recv_rate_pps = 10000.0;
  cc.on_ack(a);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{5}, udtr::SeqNo{20});
  const double p0 = cc.pkt_send_period_s();
  cc.set_now(0.5);
  cc.on_delay_warning();
  EXPECT_DOUBLE_EQ(cc.pkt_send_period_s(), p0);
}

}  // namespace
}  // namespace udtr
