// Failure-injection tests: control-path loss (lost ACKs/NAKs), packet
// reordering, total outages, and delay-trend mode — the paths a clean
// dumbbell never exercises.
#include <gtest/gtest.h>

#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::sim {
namespace {

// ACK/NAK loss on the reverse path: the EXP timer and NAK re-send machinery
// must still complete the transfer.
class CtrlLoss : public ::testing::TestWithParam<double> {};

TEST_P(CtrlLoss, TransferCompletesDespiteLostControlPackets) {
  const double loss = GetParam();
  Simulator sim;
  UdtFlowConfig cfg;
  cfg.flow_id = 1;
  cfg.total_packets = 2000;
  UdtSender snd{sim, cfg};
  UdtReceiver rcv{sim, cfg};
  DelayLink fwd{sim, 0.01};
  Link bottleneck{sim, Bandwidth::mbps(50), 0.0, 100};
  LossyLink ctrl_lossy{loss, 21};  // drops ACK/NAK/ACK2-sized packets too
  DelayLink rev{sim, 0.01};

  snd.set_out(&fwd);
  fwd.set_next(&bottleneck);
  bottleneck.set_next(&rcv);
  rcv.set_out(&ctrl_lossy);
  ctrl_lossy.set_next(&rev);
  rev.set_next(&snd);
  snd.start();
  rcv.start();
  sim.run_until(200.0);
  EXPECT_EQ(rcv.stats().delivered, 2000u) << "ctrl loss " << loss;
  EXPECT_TRUE(snd.finished());
}

INSTANTIATE_TEST_SUITE_P(Sweep, CtrlLoss,
                         ::testing::Values(0.05, 0.2, 0.5));

// Reordering: jitter larger than the inter-packet gap forces out-of-order
// arrivals; delivery must stay exact and spurious NAK retransmissions must
// not break anything.
class Reordering : public ::testing::TestWithParam<double> {};

TEST_P(Reordering, ExactDeliveryUnderJitter) {
  const double jitter = GetParam();
  Simulator sim;
  UdtFlowConfig cfg;
  cfg.flow_id = 2;
  cfg.total_packets = 3000;
  UdtSender snd{sim, cfg};
  UdtReceiver rcv{sim, cfg};
  DelayLink fwd{sim, 0.005};
  Link bottleneck{sim, Bandwidth::mbps(50), 0.0, 200};
  ReorderLink reorder{sim, jitter, 17};
  DelayLink rev{sim, 0.005};

  snd.set_out(&fwd);
  fwd.set_next(&bottleneck);
  bottleneck.set_next(&reorder);
  reorder.set_next(&rcv);
  rcv.set_out(&rev);
  rev.set_next(&snd);
  snd.start();
  rcv.start();

  udtr::SeqNo expected{0};
  bool in_order = true;
  rcv.set_on_deliver([&](udtr::SeqNo s) {
    if (s != expected) in_order = false;
    expected = expected.next();
  });
  sim.run_until(120.0);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(rcv.stats().delivered, 3000u) << "jitter " << jitter;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Reordering,
                         ::testing::Values(0.0005, 0.002, 0.01));

TEST(Outage, FlowSurvivesTotalBlackout) {
  // A burst source at 50x the link rate effectively blacks out the flow for
  // stretches; EXP timeouts plus NAK backoff must restore it.
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 30}};
  UdtFlowConfig cfg;
  cfg.total_packets = 20000;
  net.add_udt_flow(cfg, 0.020);
  net.add_burst_source(Bandwidth::mbps(2500), 1500, 0.3, 1.0, 1.0, 5.0, 3);
  sim.run_until(300.0);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 20000u);
  EXPECT_TRUE(net.udt_sender(0).finished());
}

TEST(DelayTrendMode, ReducesLossAtSomeThroughputCost) {
  const auto run = [](bool delay_mode) {
    Simulator sim;
    Dumbbell net{sim, {Bandwidth::mbps(100), 50}};
    UdtFlowConfig cfg;
    cfg.cc.delay_trend_mode = delay_mode;
    net.add_udt_flow(cfg, 0.050);
    sim.run_until(30.0);
    return std::pair{net.udt_receiver(0).stats().lost_packets,
                     net.udt_receiver(0).stats().delivered};
  };
  const auto [loss_on, delivered_on] = run(true);
  const auto [loss_off, delivered_off] = run(false);
  // The delay signal reacts before the queue overflows: less loss...
  EXPECT_LE(loss_on, loss_off);
  // ...while still moving the bulk of the data (documented trade-off).
  EXPECT_GT(delivered_on, delivered_off / 2);
}

TEST(Stall, SenderGoesIdleAndResumesCleanly) {
  // A finite burst of data followed by silence, then more data: the
  // arrival-speed estimator must not be corrupted by the pause (median
  // filter discards it, §3.2).
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 100}};
  UdtFlowConfig first;
  first.total_packets = 1000;
  net.add_udt_flow(first, 0.020);
  UdtFlowConfig second;
  second.total_packets = 1000;
  second.start_time = 10.0;  // long idle gap on the link
  net.add_udt_flow(second, 0.020);
  sim.run_until(60.0);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 1000u);
  EXPECT_EQ(net.udt_receiver(1).stats().delivered, 1000u);
}

}  // namespace
}  // namespace udtr::sim
