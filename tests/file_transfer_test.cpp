// Blast-mode file transfer: the pipelined zero-copy disk datapath
// (FileSource reader ring -> borrowed send buffer; RcvBuffer::take_stream ->
// FileSink write-behind) against the legacy staged path, byte-exact under
// combined faults on both datapath backends, the offset/length edge cases,
// ring-exhaustion backpressure, write-behind ordering under reorder, and the
// recvfile error contract (timeout vs truncation vs disk failure).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "udt/channel.hpp"
#include "udt/fault.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

#define SKIP_WITHOUT_URING()                   \
  do {                                         \
    if (!UdpChannel::uring_supported()) {      \
      GTEST_SKIP() << "SKIPPED (no io_uring)"; \
    }                                          \
  } while (0)

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "udtr_ft_" + name;
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  ASSERT_TRUE(out);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out);
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary | std::ios::ate};
  if (!in) return {};
  const auto size = static_cast<std::size_t>(in.tellg());
  std::vector<std::uint8_t> v(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size));
  return v;
}

struct Pair {
  std::unique_ptr<Socket> listener;
  std::unique_ptr<Socket> client;
  std::unique_ptr<Socket> server;
};

Pair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  Pair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

// Ships `payload` client -> server through sendfile/recvfile and returns the
// bytes that landed in the destination file.  Checks both return values.
std::vector<std::uint8_t> round_trip(Pair& p, const std::string& tag,
                                     const std::vector<std::uint8_t>& payload) {
  const std::string src = temp_path(tag + "_src.bin");
  const std::string dst = temp_path(tag + "_dst.bin");
  write_file(src, payload);
  std::remove(dst.c_str());
  auto sent = std::async(std::launch::async, [&] {
    return p.client->sendfile(src, 0, payload.size());
  });
  const std::uint64_t received = p.server->recvfile(dst, payload.size());
  EXPECT_EQ(sent.get(), payload.size());
  EXPECT_EQ(received, payload.size());
  EXPECT_EQ(p.server->last_error(), SocketError::kNone);
  auto out = read_file(dst);
  std::remove(src.c_str());
  std::remove(dst.c_str());
  return out;
}

SocketOptions faulted_client(double bandwidth_mbps = 150.0) {
  FaultConfig cfg;
  cfg.send.drop_p = 0.05;
  cfg.recv.drop_p = 0.05;
  cfg.send.reorder_p = 0.02;
  cfg.send.reorder_hold = 3;
  cfg.recv.reorder_p = 0.02;
  cfg.recv.reorder_hold = 3;
  cfg.seed = 20040807;
  SocketOptions client;
  client.faults = std::make_shared<FaultInjector>(cfg);
  // Keep the transfer spanning enough SYN epochs for losses to actually
  // exercise retransmission instead of finishing in one loopback burst.
  client.max_bandwidth_mbps = bandwidth_mbps;
  return client;
}

// --- byte-exact round trips, both backends ---------------------------------

TEST(FileTransfer, PipelinedRoundTripExactUnderFaults) {
  Pair p = make_pair_opts({}, faulted_client());
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  // Deliberately not a packet-size multiple: the final take_stream is a
  // partial-tail copy and the last chunk is short.
  const auto payload = make_payload((4 << 20) + 12345, 1);
  EXPECT_EQ(round_trip(p, "pipe_faults", payload), payload);
  p.client->close();
  p.server->close();
}

TEST(FileTransfer, PipelinedRoundTripExactUnderFaultsUringBackend) {
  SKIP_WITHOUT_URING();
  SocketOptions client = faulted_client();
  client.io_backend = IoBackend::kUring;
  SocketOptions server;
  server.io_backend = IoBackend::kUring;
  Pair p = make_pair_opts(server, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload((4 << 20) + 777, 2);
  EXPECT_EQ(round_trip(p, "pipe_uring", payload), payload);
  p.client->close();
  p.server->close();
}

// The legacy staged path must stay selectable and byte-for-byte correct —
// it is the parity baseline the pipeline is measured against.
TEST(FileTransfer, LegacyStagedRoundTripExactUnderFaults) {
  SocketOptions client = faulted_client();
  client.file_pipeline = false;
  SocketOptions server;
  server.file_pipeline = false;
  Pair p = make_pair_opts(server, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload((2 << 20) + 999, 3);
  EXPECT_EQ(round_trip(p, "legacy_faults", payload), payload);
  p.client->close();
  p.server->close();
}

// Mixed deployment: pipelined sender feeding a staged receiver (and the
// reverse) — the wire format is identical, only the disk staging differs.
TEST(FileTransfer, PipelinedSenderStagedReceiverInteroperate) {
  SocketOptions server;
  server.file_pipeline = false;
  Pair p = make_pair_opts(server, {});
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload(1 << 20, 4);
  EXPECT_EQ(round_trip(p, "pipe_to_staged", payload), payload);
  p.client->close();
  p.server->close();
}

// --- offset / length edge cases --------------------------------------------

TEST(FileTransfer, OffsetPastEofSendsNothing) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  const std::string src = temp_path("off_eof_src.bin");
  write_file(src, make_payload(4096, 5));
  EXPECT_EQ(p.client->sendfile(src, 8192, 1 << 20), 0u);
  EXPECT_EQ(p.client->sendfile(src, 4096, 1 << 20), 0u);  // exactly at EOF
  std::remove(src.c_str());
  p.client->close();
  p.server->close();
}

TEST(FileTransfer, LengthBeyondFileSendsOnlyAvailable) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  const auto payload = make_payload((1 << 20) + 555, 6);
  const std::string src = temp_path("len_over_src.bin");
  const std::string dst = temp_path("len_over_dst.bin");
  write_file(src, payload);
  std::remove(dst.c_str());
  auto sent = std::async(std::launch::async, [&] {
    return p.client->sendfile(src, 0, std::uint64_t{1} << 40);
  });
  const std::uint64_t received = p.server->recvfile(dst, payload.size());
  EXPECT_EQ(sent.get(), payload.size());
  EXPECT_EQ(received, payload.size());
  EXPECT_EQ(read_file(dst), payload);
  std::remove(src.c_str());
  std::remove(dst.c_str());
  p.client->close();
  p.server->close();
}

TEST(FileTransfer, ZeroLengthCreatesEmptyDestination) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  const std::string src = temp_path("zero_src.bin");
  const std::string dst = temp_path("zero_dst.bin");
  write_file(src, make_payload(4096, 7));
  write_file(dst, make_payload(100, 8));  // stale content to truncate
  EXPECT_EQ(p.client->sendfile(src, 0, 0), 0u);
  EXPECT_EQ(p.server->recvfile(dst, 0), 0u);
  EXPECT_EQ(p.server->last_error(), SocketError::kNone);
  EXPECT_EQ(read_file(dst).size(), 0u);  // created/emptied, legacy contract
  std::remove(src.c_str());
  std::remove(dst.c_str());
  p.client->close();
  p.server->close();
}

TEST(FileTransfer, MissingSourceReportsFileIoError) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  EXPECT_EQ(p.client->sendfile(temp_path("no_such_file.bin"), 0, 1 << 20), 0u);
  EXPECT_EQ(p.client->last_error(), SocketError::kFileIo);
  p.client->close();
  p.server->close();
}

// --- reader-ring exhaustion backpressure -----------------------------------

// A two-chunk 128 KB ring feeding a 40 Mb/s wire: the disk side laps the
// network side within the first ring fill, so the reader spends the whole
// transfer blocked on recycled chunks.  Exactness shows the backpressure
// path never loses, reuses, or reorders a chunk.
TEST(FileTransfer, ReaderRingExhaustionBackpressuresExactly) {
  SocketOptions client;
  client.max_bandwidth_mbps = 40.0;
  client.file_chunk_bytes = 64 << 10;
  client.file_ring_chunks = 2;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);
  const auto payload = make_payload((2 << 20) + 4321, 9);
  EXPECT_EQ(round_trip(p, "ring_exhaust", payload), payload);
  p.client->close();
  p.server->close();
}

// --- write-behind ordering under reorder faults ----------------------------

// Reordered arrival + a throttled disk writer: take_stream drains the
// reassembled stream while the sink queue stays near its cap, so writes
// land well behind the protocol.  The file must still be byte-exact — the
// write-behind queue preserves sequential offsets regardless of how the
// wire scrambled the packets.
TEST(FileTransfer, WriteBehindKeepsOrderUnderReorderFaults) {
  FaultConfig cfg;
  cfg.send.reorder_p = 0.15;
  cfg.send.reorder_hold = 5;
  cfg.seed = 1337;
  SocketOptions client;
  client.faults = std::make_shared<FaultInjector>(cfg);
  client.max_bandwidth_mbps = 200.0;
  SocketOptions server;
  server.file_disk_write_mbps = 120.0;  // slower than the wire: queue fills
  Pair p = make_pair_opts(server, client);
  ASSERT_NE(p.client, nullptr);
  const auto payload = make_payload((3 << 20) + 77, 10);
  EXPECT_EQ(round_trip(p, "write_behind", payload), payload);
  p.client->close();
  p.server->close();
}

// --- sendfile on a message-latched socket must not spin --------------------

// Regression: send() returns 0 on a message-latched socket, and the old
// sendfile loop retried that forever.  Both paths must bail out promptly
// and report zero bytes delivered.
TEST(FileTransfer, SendfileOnMessageLatchedSocketBailsOut) {
  for (const bool pipelined : {true, false}) {
    SocketOptions client;
    client.file_pipeline = pipelined;
    Pair p = make_pair_opts({}, client);
    ASSERT_NE(p.client, nullptr);
    const auto msg = make_payload(4096, 11);
    ASSERT_EQ(p.client->sendmsg(msg), msg.size());  // latches message mode
    const std::string src = temp_path("latched_src.bin");
    write_file(src, make_payload(1 << 20, 12));
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_EQ(p.client->sendfile(src, 0, 1 << 20), 0u);
    // Far below the flush deadline — the old bug span here forever.
    EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds{5});
    std::remove(src.c_str());
    p.client->close();
    p.server->close();
  }
}

// --- recvfile error contract ------------------------------------------------

// No byte ever arrives: recvfile times out, reports kRecvTimeout, and the
// pre-existing destination file is untouched (the old path truncated it at
// open, before knowing whether the transfer would deliver anything).
TEST(FileTransfer, RecvTimeoutLeavesExistingFileIntact) {
  for (const bool pipelined : {true, false}) {
    SocketOptions server;
    server.file_pipeline = pipelined;
    server.file_flush_timeout_s = 0.3;  // progress deadline, not 60 s
    Pair p = make_pair_opts(server, {});
    ASSERT_NE(p.server, nullptr);
    const std::string dst = temp_path("timeout_dst.bin");
    const auto precious = make_payload(8192, 13);
    write_file(dst, precious);
    const std::uint64_t got = p.server->recvfile(dst, 1 << 20);
    EXPECT_EQ(got, 0u);
    EXPECT_EQ(p.server->last_error(), SocketError::kRecvTimeout);
    EXPECT_EQ(read_file(dst), precious);  // not clobbered
    std::remove(dst.c_str());
    p.client->close();
    p.server->close();
  }
}

// The peer delivers part of the file and then closes: recvfile returns the
// bytes that landed and reports kRecvTruncated — distinguishable from both
// a clean completion and a silent timeout.
TEST(FileTransfer, PeerCloseMidTransferReportsTruncation) {
  for (const bool pipelined : {true, false}) {
    SocketOptions server;
    server.file_pipeline = pipelined;
    server.file_flush_timeout_s = 5.0;
    Pair p = make_pair_opts(server, {});
    ASSERT_NE(p.client, nullptr);
    const auto half = make_payload(1 << 20, 14);
    const std::string src = temp_path("trunc_src.bin");
    const std::string dst = temp_path("trunc_dst.bin");
    write_file(src, half);
    std::remove(dst.c_str());
    auto sender = std::async(std::launch::async, [&] {
      const auto n = p.client->sendfile(src, 0, half.size());
      p.client->close();  // graceful shutdown: only half of what was asked
      return n;
    });
    const std::uint64_t got = p.server->recvfile(dst, 2 << 20);
    EXPECT_EQ(sender.get(), half.size());
    EXPECT_EQ(got, half.size());
    EXPECT_EQ(p.server->last_error(), SocketError::kRecvTruncated);
    const auto landed = read_file(dst);
    ASSERT_EQ(landed.size(), half.size());  // preallocation trimmed back
    EXPECT_EQ(landed, half);
    std::remove(src.c_str());
    std::remove(dst.c_str());
    p.server->close();
  }
}

// Unwritable destination surfaces kFileIo instead of silently dropping the
// payload (pipelined path: the lazy open fails on the first write-behind
// batch; the transfer stops instead of draining the peer into a black hole).
TEST(FileTransfer, UnwritableDestinationReportsFileIo) {
  for (const bool pipelined : {true, false}) {
    SocketOptions server;
    server.file_pipeline = pipelined;
    server.file_flush_timeout_s = 5.0;
    Pair p = make_pair_opts(server, {});
    ASSERT_NE(p.client, nullptr);
    const auto payload = make_payload(256 << 10, 15);
    const std::string src = temp_path("nodir_src.bin");
    write_file(src, payload);
    auto sender = std::async(std::launch::async, [&] {
      return p.client->sendfile(src, 0, payload.size());
    });
    const std::string dst =
        ::testing::TempDir() + "udtr_ft_no_such_dir/x/y/dst.bin";
    p.server->recvfile(dst, payload.size());
    EXPECT_EQ(p.server->last_error(), SocketError::kFileIo);
    sender.wait();
    std::remove(src.c_str());
    p.client->close();
    p.server->close();
  }
}

}  // namespace
}  // namespace udtr::udt
