// Unit tests for the stateless-handshake front door: SipHash vectors, the
// cookie keyring's rotation/expiry state machine, the per-source admission
// control, and the BoundedTtlMap both handshake paths share.
#include "udt/handshake_cookie.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "udt/ttl_map.hpp"

namespace udtr::udt {
namespace {

HandshakePayload sample_req() {
  HandshakePayload req;
  req.request_type = kHsRequest;
  req.initial_seq = 1234;
  req.mss_bytes = 1456;
  req.socket_id = 77;
  return req;
}

constexpr std::uint32_t kIp = 0x7F000001U;
constexpr std::uint16_t kPort = 40001;

// Reference vector from the SipHash paper (Appendix A): key 0x0F0E...0100,
// message 00 01 02 ... 0E (15 bytes) -> 0xA129CA6149BE45E5.
TEST(SipHash, PaperTestVector) {
  const std::uint64_t k0 = 0x0706050403020100ULL;
  const std::uint64_t k1 = 0x0F0E0D0C0B0A0908ULL;
  std::uint8_t msg[15];
  for (int i = 0; i < 15; ++i) msg[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(siphash24(k0, k1, msg, sizeof(msg)), 0xA129CA6149BE45E5ULL);
}

TEST(SipHash, EmptyAndAlignedInputs) {
  // No crash and distinct outputs across lengths spanning the 8-byte block
  // boundary.
  const std::uint8_t msg[17] = {};
  std::uint64_t prev = 0;
  for (std::size_t len = 0; len <= sizeof(msg); ++len) {
    const std::uint64_t h = siphash24(1, 2, msg, len);
    EXPECT_NE(h, prev);  // length is folded into the tail block
    prev = h;
  }
}

TEST(CookieKeyring, FreshCookieValidates) {
  CookieKeyring keys;
  const auto req = sample_req();
  const std::uint64_t c = keys.make(1000, kIp, kPort, req);
  EXPECT_NE(c, 0U);
  EXPECT_EQ(keys.verify(1000, kIp, kPort, req, c),
            CookieKeyring::Verdict::kValid);
  EXPECT_EQ(keys.verify(1000 + CookieKeyring::kTtlSeconds, kIp, kPort, req, c),
            CookieKeyring::Verdict::kValid);
}

TEST(CookieKeyring, WrongSourceOrTamperedFieldsInvalid) {
  CookieKeyring keys;
  const auto req = sample_req();
  const std::uint64_t c = keys.make(1000, kIp, kPort, req);
  EXPECT_EQ(keys.verify(1000, kIp + 1, kPort, req, c),
            CookieKeyring::Verdict::kInvalid);
  EXPECT_EQ(keys.verify(1000, kIp, kPort + 1, req, c),
            CookieKeyring::Verdict::kInvalid);
  auto tampered = req;
  tampered.mss_bytes = 9000;
  EXPECT_EQ(keys.verify(1000, kIp, kPort, tampered, c),
            CookieKeyring::Verdict::kInvalid);
  EXPECT_EQ(keys.verify(1000, kIp, kPort, req, c ^ 0x10ULL),
            CookieKeyring::Verdict::kInvalid);
}

TEST(CookieKeyring, SurvivesOneRotationViaPreviousKey) {
  CookieKeyring keys;
  const auto req = sample_req();
  (void)keys.make(0, kIp, kPort, req);  // starts the key epoch at t=0
  const std::uint64_t c = keys.make(55, kIp, kPort, req);
  // verify() itself triggers the rotation (65 - 0 >= kRotateSeconds); the
  // cookie's key becomes the previous key and must still be accepted.
  EXPECT_EQ(keys.verify(65, kIp, kPort, req, c),
            CookieKeyring::Verdict::kValid);
}

TEST(CookieKeyring, ExpiredAfterTtl) {
  CookieKeyring keys;
  const auto req = sample_req();
  const std::uint64_t c = keys.make(0, kIp, kPort, req);
  EXPECT_EQ(keys.verify(CookieKeyring::kTtlSeconds + 1, kIp, kPort, req, c),
            CookieKeyring::Verdict::kExpired);
}

TEST(CookieKeyring, DeadAfterTwoRotations) {
  CookieKeyring keys;
  const auto req = sample_req();
  const std::uint64_t c = keys.make(0, kIp, kPort, req);
  // First rotation: the issuing key survives as prev.
  EXPECT_EQ(keys.verify(70, kIp, kPort, req, c),
            CookieKeyring::Verdict::kExpired);
  // Second rotation: the issuing key is gone entirely — even a forged age
  // byte could not resurrect this cookie.
  EXPECT_EQ(keys.verify(130, kIp, kPort, req, c),
            CookieKeyring::Verdict::kInvalid);
}

TEST(AdmissionControl, TokenBucketLimitsRate) {
  AdmissionConfig cfg;
  cfg.rate_per_ip = 10.0;
  cfg.burst_per_ip = 4.0;
  AdmissionControl adm{cfg};
  int allowed = 0;
  for (int i = 0; i < 100; ++i) {
    if (adm.allow_handshake(kIp, 100.0)) ++allowed;
  }
  EXPECT_EQ(allowed, 4);  // burst depth, no time passing
  // 0.2 s later: 2 tokens accrued (refill is capped at the burst depth).
  allowed = 0;
  for (int i = 0; i < 100; ++i) {
    if (adm.allow_handshake(kIp, 100.2)) ++allowed;
  }
  EXPECT_EQ(allowed, 2);
  // A long idle period refills to the burst cap, never beyond.
  allowed = 0;
  for (int i = 0; i < 100; ++i) {
    if (adm.allow_handshake(kIp, 200.0)) ++allowed;
  }
  EXPECT_EQ(allowed, 4);
  // An unrelated source has its own bucket.
  EXPECT_TRUE(adm.allow_handshake(kIp + 1, 100.5));
}

TEST(AdmissionControl, PendingCapPerSource) {
  AdmissionConfig cfg;
  cfg.max_pending_per_ip = 3;
  AdmissionControl adm{cfg};
  EXPECT_TRUE(adm.begin_pending(kIp, 0.0));
  EXPECT_TRUE(adm.begin_pending(kIp, 0.0));
  EXPECT_TRUE(adm.begin_pending(kIp, 0.0));
  EXPECT_FALSE(adm.begin_pending(kIp, 0.0));
  adm.end_pending(kIp);
  EXPECT_TRUE(adm.begin_pending(kIp, 0.0));
  // Saturating: extra end_pending calls cannot drive the count negative.
  adm.end_pending(kIp);
  adm.end_pending(kIp);
  adm.end_pending(kIp);
  adm.end_pending(kIp);
  adm.end_pending(kIp);
  EXPECT_TRUE(adm.begin_pending(kIp, 0.0));
}

TEST(AdmissionControl, TrackingTableIsBoundedUnderSpoofedFlood) {
  AdmissionConfig cfg;
  cfg.max_tracked_ips = 512;
  AdmissionControl adm{cfg};
  for (std::uint32_t ip = 1; ip <= 150000; ++ip) {
    (void)adm.allow_handshake(ip, static_cast<double>(ip) * 1e-6);
  }
  EXPECT_LE(adm.tracked_ips(), 512U);
}

TEST(AdmissionControl, EvictionSparesPendingHolders) {
  AdmissionConfig cfg;
  cfg.max_tracked_ips = 4;
  AdmissionControl adm{cfg};
  // Two sources with live pending state, tracked first (LRU-coldest).
  ASSERT_TRUE(adm.begin_pending(1, 0.0));
  ASSERT_TRUE(adm.begin_pending(2, 0.0));
  // Flood of fresh sources forces evictions...
  for (std::uint32_t ip = 100; ip < 200; ++ip) {
    (void)adm.allow_handshake(ip, 1.0);
  }
  EXPECT_LE(adm.tracked_ips(), 4U);
  // ...but the pending holders kept their accounting: one end_pending each
  // re-opens exactly one slot (the entry was never reset by eviction).
  adm.end_pending(1);
  adm.end_pending(2);
  for (int i = 0; i < cfg.max_pending_per_ip; ++i) {
    EXPECT_TRUE(adm.begin_pending(1, 2.0));
  }
  EXPECT_FALSE(adm.begin_pending(1, 2.0));
}

TEST(BoundedTtlMap, CountBoundEvictsOldestFirst) {
  using Map = BoundedTtlMap<int, std::string>;
  const auto t0 = Map::Clock::now();
  Map m{3, std::chrono::seconds{60}};
  m.put(1, "a", t0);
  m.put(2, "b", t0);
  m.put(3, "c", t0);
  m.put(4, "d", t0);
  EXPECT_EQ(m.size(), 3U);
  EXPECT_EQ(m.find(1), nullptr);
  ASSERT_NE(m.find(4), nullptr);
  EXPECT_EQ(*m.find(4), "d");
}

TEST(BoundedTtlMap, SweepDropsExpiredOnly) {
  using Map = BoundedTtlMap<int, int>;
  const auto t0 = Map::Clock::now();
  Map m{16, std::chrono::seconds{10}};
  m.put(1, 10, t0);
  m.put(2, 20, t0 + std::chrono::seconds{8});
  m.sweep(t0 + std::chrono::seconds{11});
  EXPECT_EQ(m.find(1), nullptr);
  ASSERT_NE(m.find(2), nullptr);
  EXPECT_EQ(m.size(), 1U);
}

TEST(BoundedTtlMap, EraseThenReputDoesNotLoseNewEntry) {
  // The FIFO slot of the erased incarnation must not evict or expire the
  // re-inserted one (per-entry sequence stamps).
  using Map = BoundedTtlMap<int, int>;
  const auto t0 = Map::Clock::now();
  Map m{2, std::chrono::seconds{10}};
  m.put(1, 10, t0);
  m.erase(1);
  m.put(1, 11, t0 + std::chrono::seconds{5});
  m.sweep(t0 + std::chrono::seconds{12});  // old slot expired, new one live
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 11);
}

TEST(BoundedTtlMap, ReinsertedKeyOutlivesOlderEntriesUnderCountPressure) {
  // Key 1's first incarnation leaves a stale slot at the FIFO front; the
  // evictor must skip it (sequence mismatch) and evict the genuinely
  // oldest live entry (key 2) — not the re-inserted key 1.
  using Map = BoundedTtlMap<int, int>;
  const auto t0 = Map::Clock::now();
  Map m{2, std::chrono::seconds{60}};
  m.put(1, 10, t0);
  m.put(2, 20, t0);
  m.erase(1);
  m.put(1, 11, t0);
  m.put(3, 30, t0);
  EXPECT_EQ(m.size(), 2U);
  EXPECT_EQ(m.find(2), nullptr);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 11);
  ASSERT_NE(m.find(3), nullptr);
}

}  // namespace
}  // namespace udtr::udt
