// Hostile-front-door acceptance: a spoofed-source handshake flood against a
// stateless listener must leave ZERO per-connection state (no pending
// queue entries, no duplicate-answer memory, bounded admission tracker,
// bounded RSS), while a legitimate client still connects and transfers
// through the noise.  Sources are real distinct loopback addresses
// (127.1.x.y) — Linux accepts binds across all of 127/8 — so the per-IP
// machinery is exercised end to end, not simulated.
//
// Source counts scale via UDTR_FLOOD_SOURCES (CI sanitizer jobs shrink
// them); the default exercises the 100k-source acceptance number.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "udt/multiplexer.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

int env_int(const char* name, int def) {
  if (const char* s = std::getenv(name)) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

int flood_sources(int def) { return env_int("UDTR_FLOOD_SOURCES", def); }

long rss_kb() {
  std::ifstream f("/proc/self/status");
  std::string line;
  while (std::getline(f, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::atol(line.c_str() + 6);
  }
  return -1;
}

// A UDP socket bound to an arbitrary loopback address, used to originate
// handshake packets from a chosen source IP.
int bind_spoof(std::uint32_t ip_host_order) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = 0;
  sa.sin_addr.s_addr = htonl(ip_host_order);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof sa) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void send_hs(int fd, std::uint16_t dst_port, const HandshakePayload& hs) {
  std::array<std::uint8_t,
             kHeaderBytes + 4 * HandshakePayload::kWordsWithCookie>
      buf{};
  CtrlHeader h;
  h.type = CtrlType::kHandshake;
  h.dst_socket = 0;
  write_ctrl_header(buf, h);
  encode_handshake_payload(std::span{buf}.subspan(kHeaderBytes), hs);
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(dst_port);
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  (void)::sendto(fd, buf.data(), buf.size(), 0,
                 reinterpret_cast<sockaddr*>(&to), sizeof to);
}

std::optional<HandshakePayload> recv_hs(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) <= 0) return std::nullopt;
  std::array<std::uint8_t, 256> buf{};
  const auto n = ::recv(fd, buf.data(), buf.size(), 0);
  if (n < static_cast<ssize_t>(kHeaderBytes)) return std::nullopt;
  const std::span<const std::uint8_t> pkt{buf.data(),
                                          static_cast<std::size_t>(n)};
  const auto hdr = decode_ctrl_header(pkt);
  if (!hdr || hdr->type != CtrlType::kHandshake) return std::nullopt;
  return decode_handshake_payload(pkt.subspan(kHeaderBytes));
}

// Completes the cookie round trip from `fd` for a synthetic request and
// leaves the resulting handshake parked in the listener's accept queue.
// Returns false when no challenge (or no admission) was granted.
bool park_pending(int fd, std::uint16_t port, std::uint32_t socket_id) {
  HandshakePayload req;
  req.request_type = kHsRequest;
  req.initial_seq = 100 + socket_id;
  req.socket_id = socket_id;
  send_hs(fd, port, req);
  const auto challenge = recv_hs(fd, 2000);
  if (!challenge || challenge->request_type != kHsChallenge) return false;
  req.cookie = challenge->cookie;
  send_hs(fd, port, req);
  return true;
}

SocketOptions small_opts() {
  SocketOptions o;
  o.snd_buffer_bytes = 64 << 10;
  o.rcv_buffer_pkts = 128;
  return o;
}

// --- the acceptance scenario ----------------------------------------------

TEST(HandshakeFlood, SpoofedFloodLeavesZeroStateAndLegitClientConnects) {
  const int n_sources = flood_sources(100000);

  auto listener = Socket::listen(0, small_opts());
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();
  auto mux = Multiplexer::find(port);
  ASSERT_NE(mux, nullptr);

  const long rss_before = rss_kb();

  // Phase 1: half the sources flood cookie-less requests, one distinct
  // 127.1.x.y address each.  No cookie echo ever comes back, so the
  // listener must keep nothing.
  auto flood_range = [port](int lo, int hi) {
    int sent = 0;
    for (int i = lo; i < hi; ++i) {
      const std::uint32_t ip = 0x7F010000U + static_cast<std::uint32_t>(i);
      const int fd = bind_spoof(ip);
      if (fd < 0) continue;  // exotic loopback bind refused: skip, keep going
      HandshakePayload req;
      req.request_type = kHsRequest;
      req.socket_id = 7000000U + static_cast<std::uint32_t>(i);
      send_hs(fd, port, req);
      ::close(fd);
      ++sent;
    }
    return sent;
  };
  const int sent1 = flood_range(0, n_sources / 2);
  ASSERT_GT(sent1, 0);

  // Let the rx thread drain what the socket buffer kept, then check: zero
  // handshakes queued, zero remembered, tracker bounded.
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  EXPECT_EQ(mux->pending_handshakes(), 0U);
  EXPECT_EQ(mux->remembered_handshakes(), 0U);
  EXPECT_LE(mux->admission_tracked_ips(),
            static_cast<std::size_t>(small_opts().max_tracked_ips));
  EXPECT_GT(mux->cookie_challenges(), 0U);

  // Phase 2: keep flooding from the other half of the address space while
  // a legitimate client connects and moves data through the same port.
  auto flood_done = std::async(std::launch::async, [&] {
    return flood_range(n_sources / 2, n_sources);
  });
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{30});
  });
  auto client = Socket::connect("127.0.0.1", port, small_opts());
  ASSERT_NE(client, nullptr);
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);

  const std::vector<std::uint8_t> payload(32 << 10, 0x5A);
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = client->send(payload);
    client->flush(std::chrono::seconds{30});
    return sent;
  });
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> buf(1 << 14);
  while (got.size() < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_GT(flood_done.get(), 0);

  // Post-flood: the tracker is still bounded and memory did not balloon.
  // The budget is deliberately loose — it catches per-source state leaks
  // (100k sources x even 1 KB would trip it), not allocator noise.
  EXPECT_LE(mux->admission_tracked_ips(),
            static_cast<std::size_t>(small_opts().max_tracked_ips));
  const long rss_after = rss_kb();
  if (rss_before > 0 && rss_after > 0) {
    EXPECT_LT(rss_after - rss_before, 64 * 1024) << "RSS grew by "
        << (rss_after - rss_before) << " KiB under flood";
  }
}

TEST(HandshakeFlood, InvalidCookieIsCountedAndDropped) {
  auto listener = Socket::listen(0, small_opts());
  ASSERT_NE(listener, nullptr);
  auto mux = Multiplexer::find(listener->local_port());
  ASSERT_NE(mux, nullptr);

  const int fd = bind_spoof(0x7F010101U);
  ASSERT_GE(fd, 0);
  HandshakePayload req;
  req.request_type = kHsRequest;
  req.socket_id = 424242;
  req.cookie = 0xDEADBEEFCAFEF00DULL;  // never issued by this keyring
  for (int i = 0; i < 20; ++i) send_hs(fd, listener->local_port(), req);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (mux->cookie_rejects() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  EXPECT_GT(mux->cookie_rejects(), 0U);
  EXPECT_EQ(mux->pending_handshakes(), 0U);
  // A forged cookie earns silence, not a challenge reply.
  EXPECT_FALSE(recv_hs(fd, 200).has_value());
  ::close(fd);
}

TEST(HandshakeFlood, PerSourcePendingCapBoundsHalfOpenConnections) {
  auto opts = small_opts();
  opts.max_pending_per_ip = 8;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();
  auto mux = Multiplexer::find(port);
  ASSERT_NE(mux, nullptr);

  // One source completes 20 full cookie round trips with distinct peer
  // socket ids and nobody calls accept(): only the per-IP cap's worth may
  // park.
  const int fd = bind_spoof(0x7F010201U);
  ASSERT_GE(fd, 0);
  int challenged = 0;
  for (std::uint32_t i = 0; i < 20; ++i) {
    if (park_pending(fd, port, 900000U + i)) ++challenged;
  }
  EXPECT_EQ(challenged, 20);
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  EXPECT_LE(mux->pending_handshakes(), 8U);
  EXPECT_GT(mux->handshake_admission_drops(), 0U);
  ::close(fd);
}

TEST(HandshakeFlood, AcceptQueueOverflowIsCounted) {
  auto opts = small_opts();
  opts.max_pending_per_ip = 4096;  // out of the way: test the global bound
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();
  auto mux = Multiplexer::find(port);
  ASSERT_NE(mux, nullptr);

  const int fd = bind_spoof(0x7F010301U);
  ASSERT_GE(fd, 0);
  const int attempts = static_cast<int>(Multiplexer::kMaxPendingHandshakes) + 40;
  for (int i = 0; i < attempts; ++i) {
    (void)park_pending(fd, port, 800000U + static_cast<std::uint32_t>(i));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  EXPECT_LE(mux->pending_handshakes(), Multiplexer::kMaxPendingHandshakes);
  EXPECT_GT(mux->accept_queue_drops(), 0U);
  // The listener's perf() surfaces the same counter for operators.
  EXPECT_GT(listener->perf().accept_queue_drops, 0U);
  ::close(fd);
}

TEST(HandshakeFlood, StatelessOffUsesLegacyTwoWayHandshake) {
  auto opts = small_opts();
  opts.stateless_handshake = false;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto mux = Multiplexer::find(listener->local_port());
  ASSERT_NE(mux, nullptr);

  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{10});
  });
  auto client =
      Socket::connect("127.0.0.1", listener->local_port(), small_opts());
  ASSERT_NE(client, nullptr);
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);
  // No challenge leg was ever taken.
  EXPECT_EQ(mux->cookie_challenges(), 0U);
  EXPECT_EQ(mux->cookie_rejects(), 0U);
}

TEST(HandshakeFlood, CookieExpiryStillRecoversViaFreshChallenge) {
  // An authentic-but-stale cookie cannot be forced end to end without
  // waiting out the TTL, but the recovery contract — expired cookie gets a
  // fresh challenge, not silence — is the piece a stuck client depends on.
  // Drive the mux-visible half: a client that echoes a *valid* cookie
  // twice.  The second echo re-parks nothing new (duplicate key) and must
  // not be counted as a reject.
  auto listener = Socket::listen(0, small_opts());
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();
  auto mux = Multiplexer::find(port);
  ASSERT_NE(mux, nullptr);

  const int fd = bind_spoof(0x7F010401U);
  ASSERT_GE(fd, 0);
  HandshakePayload req;
  req.request_type = kHsRequest;
  req.socket_id = 31337;
  send_hs(fd, port, req);
  const auto challenge = recv_hs(fd, 2000);
  ASSERT_TRUE(challenge.has_value());
  ASSERT_EQ(challenge->request_type, kHsChallenge);
  ASSERT_NE(challenge->cookie, 0U);
  req.cookie = challenge->cookie;
  send_hs(fd, port, req);
  send_hs(fd, port, req);  // retransmit of the same valid echo
  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  EXPECT_EQ(mux->pending_handshakes(), 1U);
  EXPECT_EQ(mux->cookie_rejects(), 0U);
  EXPECT_EQ(mux->cookie_expired(), 0U);
  ::close(fd);
}

}  // namespace
}  // namespace udtr::udt
