// Cross-module integration: mixed UDT/TCP workloads on shared bottlenecks,
// determinism, and the headline protocol properties at reduced scale.
#include <gtest/gtest.h>

#include "common/metrics.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::sim {
namespace {

TEST(Integration, MultipleUdtFlowsShareFairly) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 100}};
  for (int i = 0; i < 4; ++i) net.add_udt_flow({}, 0.020);
  sim.run_until(40.0);
  std::vector<double> tput;
  for (std::size_t i = 0; i < 4; ++i) {
    tput.push_back(average_mbps(net.udt_receiver(i).stats().delivered, 1500,
                                0.0, 40.0));
  }
  EXPECT_GT(jain_fairness_index(tput), 0.9);
  double total = 0.0;
  for (double v : tput) total += v;
  EXPECT_GT(total, 70.0);  // aggregate utilization stays high
}

TEST(Integration, UdtRttFairnessBeatsTcp) {
  // Two UDT flows with 10x different RTTs split the link far more evenly
  // than two TCP flows do (constant SYN -> RTT fairness, §3.8).
  const auto ratio = [](bool udt) {
    Simulator sim;
    Dumbbell net{sim, {Bandwidth::mbps(100), 100}};
    if (udt) {
      net.add_udt_flow({}, 0.010);
      net.add_udt_flow({}, 0.100);
    } else {
      net.add_tcp_flow({}, 0.010);
      net.add_tcp_flow({}, 0.100);
    }
    sim.run_until(40.0);
    const double fast = udt ? static_cast<double>(
                                  net.udt_receiver(0).stats().delivered)
                            : static_cast<double>(
                                  net.tcp_receiver(0).stats().delivered);
    const double slow = udt ? static_cast<double>(
                                  net.udt_receiver(1).stats().delivered)
                            : static_cast<double>(
                                  net.tcp_receiver(1).stats().delivered);
    return slow / std::max(fast, 1.0);
  };
  const double udt_ratio = ratio(true);
  const double tcp_ratio = ratio(false);
  EXPECT_GT(udt_ratio, tcp_ratio);
  EXPECT_GT(udt_ratio, 0.5);  // paper: within ~10%; allow sim slack
}

TEST(Integration, DeterministicUnderFixedSeed) {
  const auto run_once = [] {
    Simulator sim;
    Dumbbell net{sim, {Bandwidth::mbps(50), 50}};
    net.add_udt_flow({}, 0.020);
    net.add_tcp_flow({}, 0.020);
    net.add_burst_source(Bandwidth::mbps(30), 1500, 0.1, 0.4, 0.0, 10.0, 7);
    sim.run_until(10.0);
    return std::tuple{net.udt_receiver(0).stats().delivered,
                      net.tcp_receiver(0).stats().delivered,
                      net.bottleneck().stats().dropped};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, ThroughputSamplerMatchesAverage) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 100}};
  net.add_udt_flow({}, 0.010);
  ThroughputSampler sampler{
      sim, [&] { return net.udt_receiver(0).stats().delivered; }, 1500, 1.0};
  sim.run_until(10.0);
  ASSERT_EQ(sampler.samples_mbps().size(), 10u);
  const double avg = average_mbps(net.udt_receiver(0).stats().delivered, 1500,
                                  0.0, 10.0);
  EXPECT_NEAR(sampler.mean_mbps(), avg, 0.5);
}

TEST(Integration, BurstTrafficCausesUdtLossEventsButRecovers) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 60}};
  net.add_udt_flow({}, 0.020);
  net.add_burst_source(Bandwidth::mbps(120), 1500, 0.05, 0.5, 2.0, 6.0, 11);
  sim.run_until(20.0);
  const auto& r = net.udt_receiver(0).stats();
  EXPECT_GT(r.loss_events, 0u);
  // After the burster stops at t=6, UDT must re-acquire the link.
  const double late_mbps = average_mbps(
      r.delivered, 1500, 0.0, 20.0);
  EXPECT_GT(late_mbps, 40.0);
}

TEST(Integration, UdtCoexistsWithTcpWithoutStarvingIt) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 150}};
  net.add_udt_flow({}, 0.010);
  net.add_tcp_flow({}, 0.010);
  sim.run_until(30.0);
  const double tcp_mbps =
      average_mbps(net.tcp_receiver(0).stats().delivered, 1500, 0.0, 30.0);
  // At short RTT, TCP is more aggressive than UDT (§3.7): it must get a
  // healthy share of the 100 Mb/s link.
  EXPECT_GT(tcp_mbps, 20.0);
}

TEST(Integration, LinkConservationAcrossMixedWorkload) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(60), 40}};
  net.add_udt_flow({}, 0.030);
  net.add_tcp_flow({}, 0.030);
  net.add_cbr_source(Bandwidth::mbps(20), 1500, 0.0, 15.0);
  sim.run_until(15.0);
  const auto& st = net.bottleneck().stats();
  // One packet may still be mid-serialization when the run stops.
  const std::uint64_t accounted =
      st.delivered + st.dropped + net.bottleneck().queue_depth();
  EXPECT_GE(st.enqueued, accounted);
  EXPECT_LE(st.enqueued - accounted, 1u);
}

}  // namespace
}  // namespace udtr::sim
