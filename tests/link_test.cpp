#include "netsim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "netsim/demux.hpp"

namespace udtr::sim {
namespace {

struct Recorder final : Consumer {
  void receive(Packet pkt) override {
    arrivals.push_back(pkt);
    times.push_back(when != nullptr ? when->now() : 0.0);
  }
  Simulator* when = nullptr;
  std::vector<Packet> arrivals;
  std::vector<double> times;
};

Packet data_packet(int flow, int bytes) {
  Packet p;
  p.kind = PacketKind::kPlainUdp;
  p.flow = flow;
  p.size_bytes = bytes;
  return p;
}

TEST(Link, SerializationPlusPropagationDelay) {
  Simulator sim;
  // 1500 B at 100 Mb/s = 120 us serialization; 10 ms propagation.
  Link link{sim, Bandwidth::mbps(100), 0.010, 100};
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] { link.receive(data_packet(1, 1500)); });
  sim.run_all();
  ASSERT_EQ(rec.arrivals.size(), 1u);
  EXPECT_NEAR(rec.times[0], 120e-6 + 0.010, 1e-12);
}

TEST(Link, BackToBackPacketsSpacedBySerializationTime) {
  // This dispersion is exactly what RBPP measures (paper §3.4).
  Simulator sim;
  Link link{sim, Bandwidth::gbps(1), 0.0, 100};
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] {
    link.receive(data_packet(1, 1500));
    link.receive(data_packet(1, 1500));
  });
  sim.run_all();
  ASSERT_EQ(rec.arrivals.size(), 2u);
  EXPECT_NEAR(rec.times[1] - rec.times[0], 12e-6, 1e-12);
}

TEST(Link, DropTailDropsWhenQueueFull) {
  Simulator sim;
  Link link{sim, Bandwidth::mbps(1), 0.0, 2};  // tiny queue
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] {
    // 1 transmitting + 2 queued; the 4th and 5th are dropped.
    for (int i = 0; i < 5; ++i) link.receive(data_packet(1, 1500));
  });
  sim.run_all();
  EXPECT_EQ(rec.arrivals.size(), 3u);
  EXPECT_EQ(link.stats().dropped, 2u);
  EXPECT_EQ(link.stats().enqueued, 5u);
  EXPECT_EQ(link.stats().delivered, 3u);
}

TEST(Link, ConservationDeliveredPlusDroppedEqualsEnqueued) {
  Simulator sim;
  Link link{sim, Bandwidth::mbps(10), 0.001, 5};
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  for (int burst = 0; burst < 20; ++burst) {
    sim.at(burst * 0.003, [&] {
      for (int i = 0; i < 7; ++i) link.receive(data_packet(1, 1500));
    });
  }
  sim.run_all();
  EXPECT_EQ(link.stats().delivered + link.stats().dropped,
            link.stats().enqueued);
  EXPECT_EQ(rec.arrivals.size(), link.stats().delivered);
}

TEST(Link, PreservesFifoOrder) {
  Simulator sim;
  Link link{sim, Bandwidth::mbps(10), 0.002, 50};
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] {
    for (int i = 0; i < 20; ++i) {
      Packet p = data_packet(1, 1500);
      p.seq = udtr::SeqNo{i};
      link.receive(std::move(p));
    }
  });
  sim.run_all();
  ASSERT_EQ(rec.arrivals.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rec.arrivals[i].seq.value(), i);
  }
}

TEST(Link, VariablePacketSizesSerializeProportionally) {
  Simulator sim;
  Link link{sim, Bandwidth::mbps(8), 0.0, 10};  // 1 byte = 1 us
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] {
    link.receive(data_packet(1, 1000));
    link.receive(data_packet(1, 40));
  });
  sim.run_all();
  ASSERT_EQ(rec.times.size(), 2u);
  EXPECT_NEAR(rec.times[0], 1000e-6, 1e-12);
  EXPECT_NEAR(rec.times[1], 1040e-6, 1e-12);
}

TEST(DelayLink, PureDelayNoQueueing) {
  Simulator sim;
  DelayLink link{sim, 0.050};
  Recorder rec;
  rec.when = &sim;
  link.set_next(&rec);
  sim.at(0.0, [&] {
    link.receive(data_packet(1, 1500));
    link.receive(data_packet(2, 1500));
  });
  sim.run_all();
  ASSERT_EQ(rec.times.size(), 2u);
  EXPECT_NEAR(rec.times[0], 0.050, 1e-12);
  EXPECT_NEAR(rec.times[1], 0.050, 1e-12);  // no serialization spacing
}

TEST(LossyLink, ZeroProbabilityPassesEverything) {
  Simulator sim;
  LossyLink lossy{0.0, 42};
  Recorder rec;
  lossy.set_next(&rec);
  for (int i = 0; i < 100; ++i) lossy.receive(data_packet(1, 100));
  EXPECT_EQ(rec.arrivals.size(), 100u);
  EXPECT_EQ(lossy.dropped(), 0u);
}

TEST(LossyLink, DropsApproximatelyAtConfiguredRate) {
  Simulator sim;
  LossyLink lossy{0.3, 42};
  Recorder rec;
  lossy.set_next(&rec);
  for (int i = 0; i < 10000; ++i) lossy.receive(data_packet(1, 100));
  EXPECT_NEAR(static_cast<double>(lossy.dropped()), 3000.0, 200.0);
  EXPECT_EQ(rec.arrivals.size() + lossy.dropped(), 10000u);
}

TEST(FlowDemux, RoutesByFlowId) {
  FlowDemux demux;
  Recorder a, b;
  demux.route(1, &a);
  demux.route(2, &b);
  demux.receive(data_packet(1, 100));
  demux.receive(data_packet(2, 100));
  demux.receive(data_packet(2, 100));
  demux.receive(data_packet(99, 100));  // unrouted: silently discarded
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 2u);
}

}  // namespace
}  // namespace udtr::sim
