#include "udt/loss_list.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace udtr::udt {
namespace {

using udtr::SeqNo;

std::vector<std::pair<std::int32_t, std::int32_t>> ranges_of(
    const LossList& ll) {
  std::vector<std::pair<std::int32_t, std::int32_t>> out;
  ll.for_each([&](const LossList::Range& r) {
    out.emplace_back(r.first.value(), r.last.value());
  });
  return out;
}

TEST(LossList, StartsEmpty) {
  LossList ll{1024};
  EXPECT_TRUE(ll.empty());
  EXPECT_EQ(ll.packet_count(), 0);
  EXPECT_EQ(ll.event_count(), 0);
  EXPECT_FALSE(ll.first().has_value());
  EXPECT_FALSE(ll.pop_first().has_value());
}

TEST(LossList, SingleInsert) {
  LossList ll{1024};
  EXPECT_EQ(ll.insert(SeqNo{5}), 1);
  EXPECT_EQ(ll.packet_count(), 1);
  EXPECT_TRUE(ll.contains(SeqNo{5}));
  EXPECT_FALSE(ll.contains(SeqNo{4}));
  EXPECT_EQ(ll.first()->value(), 5);
}

TEST(LossList, RangeInsertCountsPackets) {
  LossList ll{1024};
  EXPECT_EQ(ll.insert(SeqNo{10}, SeqNo{19}), 10);
  EXPECT_EQ(ll.packet_count(), 10);
  EXPECT_EQ(ll.event_count(), 1);
}

TEST(LossList, DuplicateInsertAddsNothing) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  EXPECT_EQ(ll.insert(SeqNo{12}, SeqNo{15}), 0);
  EXPECT_EQ(ll.packet_count(), 10);
}

TEST(LossList, AdjacentRangesCoalesce) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  ll.insert(SeqNo{20}, SeqNo{29});
  EXPECT_EQ(ll.event_count(), 1);
  EXPECT_EQ(ll.packet_count(), 20);
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{10, 29}}));
}

TEST(LossList, OverlappingInsertMergesAndCounts) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  EXPECT_EQ(ll.insert(SeqNo{15}, SeqNo{25}), 6);  // 20..25 are new
  EXPECT_EQ(ll.packet_count(), 16);
  EXPECT_EQ(ll.event_count(), 1);
}

TEST(LossList, InsertBeforeHeadBecomesNewHead) {
  LossList ll{1024};
  ll.insert(SeqNo{100}, SeqNo{110});
  ll.insert(SeqNo{5}, SeqNo{8});
  EXPECT_EQ(ll.first()->value(), 5);
  EXPECT_EQ(ll.event_count(), 2);
}

TEST(LossList, InsertBridgingTwoNodesMergesAll) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  ll.insert(SeqNo{30}, SeqNo{39});
  EXPECT_EQ(ll.insert(SeqNo{15}, SeqNo{34}), 10);  // 20..29 new
  EXPECT_EQ(ll.event_count(), 1);
  EXPECT_EQ(ll.packet_count(), 30);
}

TEST(LossList, RemoveSingleton) {
  LossList ll{1024};
  ll.insert(SeqNo{5});
  EXPECT_TRUE(ll.remove(SeqNo{5}));
  EXPECT_TRUE(ll.empty());
  EXPECT_FALSE(ll.remove(SeqNo{5}));
}

TEST(LossList, RemoveFrontOfRange) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  EXPECT_TRUE(ll.remove(SeqNo{10}));
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{11, 14}}));
}

TEST(LossList, RemoveBackOfRange) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  EXPECT_TRUE(ll.remove(SeqNo{14}));
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{10, 13}}));
}

TEST(LossList, RemoveMiddleSplitsRange) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  EXPECT_TRUE(ll.remove(SeqNo{12}));
  EXPECT_EQ(ranges_of(ll),
            (std::vector<std::pair<std::int32_t, std::int32_t>>{{10, 11},
                                                                {13, 14}}));
  EXPECT_EQ(ll.packet_count(), 4);
}

TEST(LossList, RemoveAbsentInGapReturnsFalse) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  ll.insert(SeqNo{20}, SeqNo{24});
  EXPECT_FALSE(ll.remove(SeqNo{17}));
  EXPECT_EQ(ll.packet_count(), 10);
}

TEST(LossList, RemoveUpToDropsAndTrims) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  ll.insert(SeqNo{20}, SeqNo{24});
  ll.remove_up_to(SeqNo{21});
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{22, 24}}));
  EXPECT_EQ(ll.packet_count(), 3);
}

// --- remove_range (message-TTL drops) --------------------------------------

TEST(LossList, RemoveRangeCoversWholeNode) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  ll.insert(SeqNo{20}, SeqNo{24});
  ll.remove_range(SeqNo{9}, SeqNo{15});
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{20, 24}}));
  EXPECT_EQ(ll.packet_count(), 5);
  EXPECT_EQ(ll.first()->value(), 20);
}

TEST(LossList, RemoveRangeTrimsTail) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  ll.remove_range(SeqNo{15}, SeqNo{30});
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{10, 14}}));
  EXPECT_EQ(ll.packet_count(), 5);
}

TEST(LossList, RemoveRangeTrimsFrontAndRekeys) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{19});
  ll.remove_range(SeqNo{5}, SeqNo{13});
  // The surviving tail must be reachable at its re-keyed slot: queries and
  // later inserts address nodes by start sequence.
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{14, 19}}));
  EXPECT_EQ(ll.packet_count(), 6);
  EXPECT_TRUE(ll.contains(SeqNo{14}));
  EXPECT_FALSE(ll.contains(SeqNo{13}));
  EXPECT_TRUE(ll.remove(SeqNo{14}));
  EXPECT_EQ(ll.first()->value(), 15);
}

TEST(LossList, RemoveRangeSplitsInsideNode) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{29});
  ll.remove_range(SeqNo{15}, SeqNo{24});
  EXPECT_EQ(ranges_of(ll),
            (std::vector<std::pair<std::int32_t, std::int32_t>>{{10, 14},
                                                                {25, 29}}));
  EXPECT_EQ(ll.packet_count(), 10);
  EXPECT_EQ(ll.event_count(), 2);
}

TEST(LossList, RemoveRangeSpansSeveralNodes) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{14});
  ll.insert(SeqNo{20}, SeqNo{24});
  ll.insert(SeqNo{30}, SeqNo{34});
  ll.insert(SeqNo{40}, SeqNo{44});
  ll.remove_range(SeqNo{12}, SeqNo{41});
  EXPECT_EQ(ranges_of(ll),
            (std::vector<std::pair<std::int32_t, std::int32_t>>{{10, 11},
                                                                {42, 44}}));
  EXPECT_EQ(ll.packet_count(), 5);
  // The list stays fully operational after the surgery.
  EXPECT_EQ(ll.insert(SeqNo{20}, SeqNo{21}), 2);
  std::vector<std::int32_t> popped;
  while (auto s = ll.pop_first()) popped.push_back(s->value());
  EXPECT_EQ(popped, (std::vector<std::int32_t>{10, 11, 20, 21, 42, 43, 44}));
}

TEST(LossList, RemoveRangeOutsideAndEmptyAreNoOps) {
  LossList ll{1024};
  ll.remove_range(SeqNo{5}, SeqNo{10});  // empty list
  EXPECT_TRUE(ll.empty());
  ll.insert(SeqNo{20}, SeqNo{24});
  ll.remove_range(SeqNo{5}, SeqNo{10});   // wholly before
  ll.remove_range(SeqNo{30}, SeqNo{40});  // wholly after
  EXPECT_EQ(ll.packet_count(), 5);
  EXPECT_EQ(ranges_of(ll), (std::vector<std::pair<std::int32_t,
                                                  std::int32_t>>{{20, 24}}));
}

TEST(LossList, RemoveRangeAcrossWrap) {
  LossList ll{1024};
  ll.insert(SeqNo{SeqNo::kMax - 2}, SeqNo{2});
  ll.remove_range(SeqNo{SeqNo::kMax}, SeqNo{0});
  EXPECT_EQ(ll.packet_count(), 4);
  EXPECT_TRUE(ll.contains(SeqNo{SeqNo::kMax - 1}));
  EXPECT_FALSE(ll.contains(SeqNo{SeqNo::kMax}));
  EXPECT_FALSE(ll.contains(SeqNo{0}));
  EXPECT_TRUE(ll.contains(SeqNo{1}));
}

TEST(LossList, PopFirstDrainsInOrder) {
  LossList ll{1024};
  ll.insert(SeqNo{10}, SeqNo{12});
  ll.insert(SeqNo{20});
  std::vector<std::int32_t> popped;
  while (auto s = ll.pop_first()) popped.push_back(s->value());
  EXPECT_EQ(popped, (std::vector<std::int32_t>{10, 11, 12, 20}));
}

TEST(LossList, WrapAroundRange) {
  LossList ll{1024};
  const SeqNo a{SeqNo::kMax - 2};
  const SeqNo b{2};
  EXPECT_EQ(ll.insert(a, b), 6);
  EXPECT_TRUE(ll.contains(SeqNo{SeqNo::kMax}));
  EXPECT_TRUE(ll.contains(SeqNo{0}));
  EXPECT_TRUE(ll.remove(SeqNo{0}));
  EXPECT_EQ(ll.packet_count(), 5);
  EXPECT_EQ(ll.event_count(), 2);
}

TEST(LossList, CollectExpiredBacksOff) {
  LossList ll{1024};
  ll.set_now_us(1000);
  ll.insert(SeqNo{10}, SeqNo{14});
  // Fresh entries were just reported (insert-time NAK): nothing expires yet.
  EXPECT_TRUE(ll.collect_expired(1000, 10000).empty());
  // After the base timeout, the first re-report fires.
  auto r1 = ll.collect_expired(11000, 10000);
  ASSERT_EQ(r1.size(), 1u);
  // The next re-report needs 2x the base.
  EXPECT_TRUE(ll.collect_expired(20000, 10000).empty());
  EXPECT_EQ(ll.collect_expired(31000, 10000).size(), 1u);
}

// ---- property test: behaves exactly like a std::set reference model ------

struct ModelParams {
  std::uint64_t seed;
  std::int32_t base;  // starting sequence (exercises the wrap boundary)
};

class LossListModel : public ::testing::TestWithParam<ModelParams> {};

TEST_P(LossListModel, MatchesReferenceSetUnderRandomOps) {
  const auto [seed, base] = GetParam();
  std::mt19937_64 rng{seed};
  constexpr std::int32_t kWindow = 4000;
  LossList ll{8192};
  std::set<std::int64_t> model;  // unwrapped sequence numbers

  const auto to_seq = [&](std::int64_t unwrapped) {
    return SeqNo{static_cast<std::int32_t>(
        (static_cast<std::int64_t>(base) + unwrapped) &
        SeqNo::kMax)};
  };

  std::int64_t low = 0;  // everything below is acknowledged
  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng() % 100);
    if (op < 45) {
      // insert a random range within the live window
      const std::int64_t a = low + static_cast<std::int64_t>(
                                       rng() % kWindow);
      const std::int64_t len = 1 + static_cast<std::int64_t>(rng() % 30);
      const std::int64_t b = std::min(a + len - 1, low + kWindow - 1);
      const std::int32_t added = ll.insert(to_seq(a), to_seq(b));
      std::int32_t model_added = 0;
      for (std::int64_t s = a; s <= b; ++s) {
        if (model.insert(s).second) ++model_added;
      }
      ASSERT_EQ(added, model_added) << "step " << step;
    } else if (op < 75) {
      // remove a random element (sometimes absent)
      const std::int64_t s = low + static_cast<std::int64_t>(rng() % kWindow);
      const bool removed = ll.remove(to_seq(s));
      ASSERT_EQ(removed, model.erase(s) > 0) << "step " << step;
    } else if (op < 85) {
      // pop the smallest
      const auto popped = ll.pop_first();
      if (model.empty()) {
        ASSERT_FALSE(popped.has_value());
      } else {
        ASSERT_TRUE(popped.has_value());
        ASSERT_EQ(popped->value(), to_seq(*model.begin()).value())
            << "step " << step;
        model.erase(model.begin());
      }
    } else if (op < 95) {
      // advance the acknowledged horizon
      low += static_cast<std::int64_t>(rng() % 200);
      if (low > 0) {
        ll.remove_up_to(to_seq(low - 1));
        model.erase(model.begin(), model.lower_bound(low));
      }
    } else {
      // full state check
      ASSERT_EQ(ll.packet_count(),
                static_cast<std::int32_t>(model.size()));
      if (!model.empty()) {
        ASSERT_EQ(ll.first()->value(), to_seq(*model.begin()).value());
      }
    }
  }
  // Final deep equality: enumerate list contents against the model.
  std::vector<std::int32_t> list_contents;
  ll.for_each([&](const LossList::Range& r) {
    for (SeqNo s = r.first;; s = s.next()) {
      list_contents.push_back(s.value());
      if (s == r.last) break;
    }
  });
  std::vector<std::int32_t> model_contents;
  for (std::int64_t s : model) model_contents.push_back(to_seq(s).value());
  ASSERT_EQ(list_contents, model_contents);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LossListModel,
    ::testing::Values(ModelParams{1, 0}, ModelParams{2, 0},
                      ModelParams{3, 1000000},
                      // start just below the 31-bit wrap
                      ModelParams{4, SeqNo::kMax - 2000},
                      ModelParams{5, SeqNo::kMax - 2000},
                      ModelParams{6, SeqNo::kMax / 2}));

}  // namespace
}  // namespace udtr::udt
