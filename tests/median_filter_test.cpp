#include "common/median_filter.hpp"

#include <gtest/gtest.h>

namespace udtr {
namespace {

TEST(ArrivalSpeed, ReportsZeroUntilWindowFull) {
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 15; ++i) {
    est.add_interval(0.001);
    EXPECT_EQ(est.packets_per_second(), 0.0);
  }
  est.add_interval(0.001);
  EXPECT_NEAR(est.packets_per_second(), 1000.0, 1e-6);
}

TEST(ArrivalSpeed, UniformIntervalsGiveExactRate) {
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 16; ++i) est.add_interval(0.0001);
  EXPECT_NEAR(est.packets_per_second(), 10000.0, 1e-6);
}

TEST(ArrivalSpeed, MedianFilterDiscardsPauseOutliers) {
  // 15 fast intervals plus one huge sending pause: the pause must not drag
  // the estimate down (the paper's reason for rejecting a plain mean).
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 15; ++i) est.add_interval(0.001);
  est.add_interval(5.0);  // sender idle for 5 seconds
  EXPECT_NEAR(est.packets_per_second(), 1000.0, 1.0);
}

TEST(ArrivalSpeed, MedianFilterDiscardsPacketPairGaps) {
  // Packet-pair probes arrive nearly back to back; those tiny intervals are
  // outliers below median/8 and must be filtered out too.
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 14; ++i) est.add_interval(0.001);
  est.add_interval(0.00001);
  est.add_interval(0.00001);
  EXPECT_NEAR(est.packets_per_second(), 1000.0, 1.0);
}

TEST(ArrivalSpeed, UnreliableWhenMajorityFiltered) {
  // If fewer than half the samples survive, UDT reports "unknown" (0).
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 8; ++i) est.add_interval(1.0);
  for (int i = 0; i < 8; ++i) est.add_interval(1e-6);
  EXPECT_EQ(est.packets_per_second(), 0.0);
}

TEST(ArrivalSpeed, ResetClearsState) {
  ArrivalSpeedEstimator est{16};
  for (int i = 0; i < 16; ++i) est.add_interval(0.001);
  ASSERT_GT(est.packets_per_second(), 0.0);
  est.reset();
  EXPECT_EQ(est.packets_per_second(), 0.0);
  EXPECT_FALSE(est.full());
}

TEST(PacketPair, EstimatesCapacityFromDispersion) {
  // 1500-byte packets on a 1 Gb/s link: dispersion = 12 us -> 83333 pkt/s.
  PacketPairEstimator est{16};
  for (int i = 0; i < 16; ++i) est.add_dispersion(12e-6);
  EXPECT_NEAR(est.capacity_packets_per_second(), 1.0 / 12e-6, 1.0);
}

TEST(PacketPair, WorksBeforeWindowFills) {
  PacketPairEstimator est{16};
  est.add_dispersion(12e-6);
  EXPECT_NEAR(est.capacity_packets_per_second(), 1.0 / 12e-6, 1.0);
}

TEST(PacketPair, IgnoresNonPositiveSamples) {
  PacketPairEstimator est{16};
  est.add_dispersion(0.0);
  est.add_dispersion(-1.0);
  EXPECT_EQ(est.capacity_packets_per_second(), 0.0);
}

TEST(PacketPair, MedianRejectsCrossTrafficOutliers) {
  PacketPairEstimator est{16};
  for (int i = 0; i < 12; ++i) est.add_dispersion(12e-6);
  for (int i = 0; i < 4; ++i) est.add_dispersion(900e-6);  // queued behind burst
  const double cap = est.capacity_packets_per_second();
  EXPECT_NEAR(cap, 1.0 / 12e-6, 1.0 / 12e-6 * 0.05);
}

}  // namespace
}  // namespace udtr
