// Message mode (partial reliability): frame-preserving sendmsg/recvmsg on
// real sockets, per-message TTL expiry with kMsgDrop hole sealing, the
// in-order/out-of-order delivery rules, and the stream/message latch.  The
// buffer-level suite exercises the reassembly machinery deterministically;
// the socket-level suite runs the full loopback stack under injected faults.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/multiplexer.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

#define SKIP_WITHOUT_URING()                   \
  do {                                         \
    if (!UdpChannel::uring_supported()) {      \
      GTEST_SKIP() << "SKIPPED (no io_uring)"; \
    }                                          \
  } while (0)

// Deterministic message payload: [0:8) id, [8:16) size, then a pattern a
// verifier can regenerate from the id alone.
std::vector<std::uint8_t> make_msg(std::uint64_t id, std::size_t size) {
  EXPECT_GE(size, std::size_t{16});
  std::vector<std::uint8_t> v(size);
  for (int i = 0; i < 8; ++i) {
    v[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(id >> (56 - 8 * i));
    v[static_cast<std::size_t>(8 + i)] =
        static_cast<std::uint8_t>(static_cast<std::uint64_t>(size) >>
                                  (56 - 8 * i));
  }
  for (std::size_t i = 16; i < size; ++i) {
    v[i] = static_cast<std::uint8_t>(id * 31 + i * 7 + 3);
  }
  return v;
}

std::uint64_t msg_id(std::span<const std::uint8_t> m) {
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | m[static_cast<std::size_t>(i)];
  return id;
}

std::uint64_t msg_size_field(std::span<const std::uint8_t> m) {
  std::uint64_t s = 0;
  for (int i = 0; i < 8; ++i) {
    s = (s << 8) | m[static_cast<std::size_t>(8 + i)];
  }
  return s;
}

void expect_msg_intact(std::span<const std::uint8_t> m) {
  ASSERT_GE(m.size(), 16u);
  ASSERT_EQ(msg_size_field(m), m.size());
  const std::uint64_t id = msg_id(m);
  const auto expect = make_msg(id, m.size());
  EXPECT_TRUE(std::equal(m.begin(), m.end(), expect.begin()))
      << "corrupt payload in message " << id;
}

struct Pair {
  std::unique_ptr<Socket> listener;
  std::unique_ptr<Socket> client;
  std::unique_ptr<Socket> server;
};

Pair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  Pair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

// =========================================================================
// Buffer-level reassembly semantics (deterministic, no sockets).
// =========================================================================

constexpr int kMss = 100;

std::vector<std::uint8_t> bytes_of(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::uint8_t>(seed + i);
  }
  return v;
}

TEST(MessageModeBuffer, SoloMessageDeliversImmediately) {
  RcvBuffer rb{kMss, 64};
  const auto payload = bytes_of(40, 1);
  EXPECT_FALSE(rb.msg_ready());
  ASSERT_TRUE(rb.store(0, payload, make_msg_word(MsgBoundary::kSolo, true, 1)));
  ASSERT_TRUE(rb.msg_ready());
  std::vector<std::uint8_t> out(256);
  EXPECT_EQ(rb.read_msg(out), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), out.begin()));
  EXPECT_FALSE(rb.msg_ready());
}

TEST(MessageModeBuffer, MultiPacketMessageCompletesOutOfArrivalOrder) {
  RcvBuffer rb{kMss, 64};
  const auto part0 = bytes_of(kMss, 10);
  const auto part1 = bytes_of(kMss, 20);
  const auto part2 = bytes_of(30, 30);
  // Last, First, Middle: ready only once the middle lands.
  ASSERT_TRUE(rb.store(2, part2, make_msg_word(MsgBoundary::kLast, true, 1)));
  EXPECT_FALSE(rb.msg_ready());
  ASSERT_TRUE(rb.store(0, part0, make_msg_word(MsgBoundary::kFirst, true, 1)));
  EXPECT_FALSE(rb.msg_ready());
  ASSERT_TRUE(rb.store(1, part1, make_msg_word(MsgBoundary::kMiddle, true, 1)));
  ASSERT_TRUE(rb.msg_ready());
  std::vector<std::uint8_t> out(512);
  EXPECT_EQ(rb.read_msg(out), part0.size() + part1.size() + part2.size());
  EXPECT_TRUE(std::equal(part0.begin(), part0.end(), out.begin()));
  EXPECT_TRUE(std::equal(part1.begin(), part1.end(),
                         out.begin() + static_cast<std::ptrdiff_t>(kMss)));
  EXPECT_TRUE(std::equal(part2.begin(), part2.end(),
                         out.begin() + static_cast<std::ptrdiff_t>(2 * kMss)));
}

TEST(MessageModeBuffer, OutOfOrderMessageBypassesEarlierHole) {
  RcvBuffer rb{kMss, 64};
  // Message 1 occupies 0..1 but only its first packet arrived; message 2
  // (in_order = false) at index 2 may overtake it.
  ASSERT_TRUE(rb.store(0, bytes_of(kMss, 1),
                       make_msg_word(MsgBoundary::kFirst, true, 1)));
  const auto m2 = bytes_of(50, 2);
  ASSERT_TRUE(rb.store(2, m2, make_msg_word(MsgBoundary::kSolo, false, 2)));
  ASSERT_TRUE(rb.msg_ready());
  std::vector<std::uint8_t> out(256);
  EXPECT_EQ(rb.read_msg(out), m2.size());
  EXPECT_TRUE(std::equal(m2.begin(), m2.end(), out.begin()));
  // Completing message 1 afterwards still delivers it.
  ASSERT_TRUE(rb.store(1, bytes_of(20, 3),
                       make_msg_word(MsgBoundary::kLast, true, 1)));
  ASSERT_TRUE(rb.msg_ready());
  EXPECT_EQ(rb.read_msg(out), static_cast<std::size_t>(kMss + 20));
}

TEST(MessageModeBuffer, InOrderMessageWaitsForFrontier) {
  RcvBuffer rb{kMss, 64};
  // Message 2 (in_order = true) is complete at index 2, but index 0..1
  // (message 1) has a hole: delivery must wait.
  ASSERT_TRUE(rb.store(2, bytes_of(50, 2),
                       make_msg_word(MsgBoundary::kSolo, true, 2)));
  EXPECT_FALSE(rb.msg_ready());
  // Sealing the hole (sender dropped message 1) releases it.
  rb.seal_range(0, 1);
  ASSERT_TRUE(rb.msg_ready());
  std::vector<std::uint8_t> out(256);
  EXPECT_EQ(rb.read_msg(out), 50u);
  // The ACK point advanced over the sealed hole.
  EXPECT_EQ(rb.contiguous_end(), 3);
}

TEST(MessageModeBuffer, SealDiscardsPartialMessage) {
  RcvBuffer rb{kMss, 64};
  // Packets 0 and 2 of a three-packet message arrived; the sender expires
  // it and seals 0..2.  The partial payload must never be delivered.
  ASSERT_TRUE(rb.store(0, bytes_of(kMss, 1),
                       make_msg_word(MsgBoundary::kFirst, true, 1)));
  ASSERT_TRUE(rb.store(2, bytes_of(30, 3),
                       make_msg_word(MsgBoundary::kLast, true, 1)));
  rb.seal_range(0, 2);
  EXPECT_FALSE(rb.msg_ready());
  EXPECT_EQ(rb.contiguous_end(), 3);
  // Later traffic flows normally past the sealed hole.
  const auto m2 = bytes_of(40, 9);
  ASSERT_TRUE(rb.store(3, m2, make_msg_word(MsgBoundary::kSolo, true, 2)));
  ASSERT_TRUE(rb.msg_ready());
  std::vector<std::uint8_t> out(256);
  EXPECT_EQ(rb.read_msg(out), m2.size());
  EXPECT_EQ(rb.contiguous_end(), 4);
}

TEST(MessageModeBuffer, SealPurgesCompletedButUndeliveredMessage) {
  RcvBuffer rb{kMss, 64};
  // The message is complete and queued, but the sender expired it before
  // the ACK landed: the seal must win, or expiry semantics would depend on
  // a race the application can observe.
  ASSERT_TRUE(rb.store(0, bytes_of(40, 1),
                       make_msg_word(MsgBoundary::kSolo, true, 1)));
  ASSERT_TRUE(rb.msg_ready());
  rb.seal_range(0, 0);
  EXPECT_FALSE(rb.msg_ready());
  std::vector<std::uint8_t> out(256);
  EXPECT_EQ(rb.read_msg(out), 0u);
}

TEST(MessageModeBuffer, ReadMsgTruncatesToCallerBuffer) {
  RcvBuffer rb{kMss, 64};
  ASSERT_TRUE(rb.store(0, bytes_of(kMss, 1),
                       make_msg_word(MsgBoundary::kFirst, true, 1)));
  ASSERT_TRUE(rb.store(1, bytes_of(60, 2),
                       make_msg_word(MsgBoundary::kLast, true, 1)));
  std::vector<std::uint8_t> out(25);
  EXPECT_EQ(rb.read_msg(out), 25u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), bytes_of(kMss, 1).begin()));
  // The remainder is discarded, not re-delivered.
  EXPECT_FALSE(rb.msg_ready());
  EXPECT_EQ(rb.contiguous_end(), 2);
}

TEST(MessageModeBuffer, SndBufferMessageChunksAndDeadMarking) {
  SndBuffer sb{kMss, 16 * kMss};
  const auto msg = bytes_of(2 * kMss + 30, 5);
  ASSERT_EQ(sb.add_message(msg, 7, false), msg.size());
  ASSERT_EQ(sb.end_index(), 3);
  EXPECT_EQ(msg_boundary(sb.msg_word(0)), MsgBoundary::kFirst);
  EXPECT_EQ(msg_boundary(sb.msg_word(1)), MsgBoundary::kMiddle);
  EXPECT_EQ(msg_boundary(sb.msg_word(2)), MsgBoundary::kLast);
  for (std::int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(msg_number(sb.msg_word(i)), 7u);
    EXPECT_FALSE(msg_in_order(sb.msg_word(i)));
    EXPECT_FALSE(sb.is_dead(i));
  }
  // A single packet message is Solo.
  const auto solo = bytes_of(10, 6);
  ASSERT_EQ(sb.add_message(solo, 8, true), solo.size());
  EXPECT_EQ(msg_boundary(sb.msg_word(3)), MsgBoundary::kSolo);
  EXPECT_TRUE(msg_in_order(sb.msg_word(3)));

  // TTL expiry: marking dead frees the bytes but keeps the indexes.
  const std::size_t before = sb.bytes();
  sb.mark_dead(0, 3);
  EXPECT_EQ(sb.bytes(), before - msg.size());
  EXPECT_TRUE(sb.is_dead(0));
  EXPECT_TRUE(sb.is_dead(2));
  EXPECT_FALSE(sb.is_dead(3));
  EXPECT_EQ(sb.end_index(), 4);  // ring untouched
  // All-or-nothing: a message that cannot fit is rejected outright.
  SndBuffer tiny{kMss, 2 * kMss};
  EXPECT_EQ(tiny.add_message(bytes_of(3 * kMss, 1), 1, true), 0u);
  EXPECT_EQ(tiny.end_index(), 0);
}

// =========================================================================
// Socket-level: full loopback stack.
// =========================================================================

TEST(MessageMode, BoundariesPreservedAcrossSizes) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  const int mss = SocketOptions{}.mss_bytes;
  const std::vector<std::size_t> sizes = {
      16, 100, static_cast<std::size_t>(mss),
      static_cast<std::size_t>(mss) + 1, 3 * static_cast<std::size_t>(mss) + 7,
      64 * 1024};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto m = make_msg(i, sizes[i]);
    ASSERT_EQ(p.client->sendmsg(m), m.size());
  }
  std::vector<std::uint8_t> buf(1 << 20);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = p.server->recvmsg(buf, std::chrono::seconds{10});
    ASSERT_EQ(n, sizes[i]) << "message " << i;  // boundary, not a byte soup
    expect_msg_intact(std::span{buf.data(), n});
    EXPECT_EQ(msg_id(std::span{buf.data(), n}), i);  // FIFO
  }
  EXPECT_EQ(p.client->perf().msgs_sent, sizes.size());
  EXPECT_EQ(p.server->perf().msgs_delivered, sizes.size());
  EXPECT_EQ(p.client->perf().msgs_dropped_ttl, 0u);
  // Port-global mirrors of the same counters.
  ASSERT_NE(p.client->multiplexer(), nullptr);
  EXPECT_EQ(p.client->multiplexer()->msgs_sent(), sizes.size());
  EXPECT_EQ(p.server->multiplexer()->msgs_delivered(), sizes.size());
  p.client->close();
  p.server->close();
}

void run_faulted_roundtrip(SocketOptions client_opts, std::size_t n_msgs) {
  FaultConfig cfg;
  cfg.send.drop_p = 0.05;
  cfg.recv.drop_p = 0.05;
  cfg.send.dup_p = 0.02;
  cfg.recv.dup_p = 0.02;
  cfg.send.reorder_p = 0.02;
  cfg.send.reorder_hold = 3;
  cfg.recv.reorder_p = 0.02;
  cfg.recv.reorder_hold = 3;
  cfg.seed = 0xC0FFEE;
  client_opts.faults = std::make_shared<FaultInjector>(cfg);
  Pair p = make_pair_opts({}, client_opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  auto sender = std::async(std::launch::async, [&] {
    std::size_t ok = 0;
    for (std::size_t i = 0; i < n_msgs; ++i) {
      const auto m = make_msg(i, 500 + (i % 7) * 1200);
      // TTL 0: fully reliable — every message must survive the faults.
      ok += p.client->sendmsg(m) == m.size() ? 1 : 0;
    }
    return ok;
  });
  std::vector<std::uint8_t> buf(64 << 10);
  for (std::size_t i = 0; i < n_msgs; ++i) {
    const std::size_t n = p.server->recvmsg(buf, std::chrono::seconds{15});
    ASSERT_GT(n, 0u) << "stalled at message " << i;
    expect_msg_intact(std::span{buf.data(), n});
    EXPECT_EQ(msg_id(std::span{buf.data(), n}), i);  // in-order, exactly once
  }
  EXPECT_EQ(sender.get(), n_msgs);
  EXPECT_EQ(p.client->perf().msgs_dropped_ttl, 0u);
  EXPECT_EQ(p.server->perf().msgs_delivered, n_msgs);
  p.client->close();
  p.server->close();
}

TEST(MessageMode, ReliableRoundTripUnderDropDupReorder) {
  run_faulted_roundtrip({}, 120);
}

TEST(MessageMode, ReliableRoundTripUnderFaultsGsoOff) {
  SocketOptions opts;
  opts.gso = false;
  run_faulted_roundtrip(opts, 80);
}

TEST(MessageMode, ReliableRoundTripUnderFaultsLegacyCopyPath) {
  SocketOptions opts;
  opts.zero_copy = false;
  run_faulted_roundtrip(opts, 80);
}

TEST(MessageMode, ReliableRoundTripUnderFaultsUringBackend) {
  SKIP_WITHOUT_URING();
  SocketOptions opts;
  opts.io_backend = IoBackend::kUring;
  run_faulted_roundtrip(opts, 80);
}

TEST(MessageMode, ReliableRoundTripExclusivePort) {
  SocketOptions opts;
  opts.exclusive_port = true;
  run_faulted_roundtrip(opts, 80);
}

// The acceptance scenario: finite TTL under loss + a burst outage.  A
// message sent entirely into the black hole is never delivered, survivors
// arrive intact and in order, the sealed holes never stall the connection,
// and no message vanishes unaccounted — it shows up in the receiver's
// delivery stream or in the sender's TTL-drop counter.  (The two can
// overlap for a boundary message: if it was fully received just before the
// outage and its ACK died in it, the sender must expire it — it cannot
// know better — while the receiver legitimately delivers what it already
// holds.  No protocol can close that race, so the test bounds the overlap
// instead of forbidding it.)
TEST(MessageMode, TtlExpiryDeliversExactSurvivors) {
  FaultConfig cfg;
  cfg.send.drop_p = 0.05;
  cfg.recv.drop_p = 0.05;
  cfg.seed = 97;
  auto faults = std::make_shared<FaultInjector>(cfg);
  SocketOptions client;
  client.faults = faults;
  client.min_exp_timeout_s = 0.05;  // fast kMsgDrop re-send on EXP
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  // A 250 ms black hole starting mid-burst: messages sent into it expire
  // (TTL 80 ms) long before connectivity returns.
  const auto t0 = std::chrono::steady_clock::now();
  faults->schedule_outage(std::chrono::milliseconds{150},
                          std::chrono::milliseconds{250});

  constexpr std::size_t kMsgs = 50;
  constexpr std::chrono::milliseconds kTtl{80};
  // Ids whose send landed strictly inside the hole with the whole TTL still
  // inside it too: none of their packets ever reached the wire-side peer,
  // so delivery is flat-out impossible and expiry is certain.
  std::set<std::uint64_t> in_hole;
  for (std::size_t i = 0; i < kMsgs; ++i) {
    const auto m = make_msg(i, 4000);  // 3 packets each
    ASSERT_EQ(p.client->sendmsg(m, kTtl), m.size());
    const auto since_t0 = std::chrono::steady_clock::now() - t0;
    if (since_t0 > std::chrono::milliseconds{160} &&
        since_t0 < std::chrono::milliseconds{300}) {
      in_hole.insert(i);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  // Let expiries, kMsgDrop re-sends and the sealing ACKs settle before the
  // application looks.
  std::this_thread::sleep_for(std::chrono::milliseconds{1200});

  std::vector<std::uint8_t> buf(64 << 10);
  std::set<std::uint64_t> delivered;
  std::uint64_t last_id = 0;
  bool first = true;
  for (;;) {
    const std::size_t n =
        p.server->recvmsg(buf, std::chrono::milliseconds{300});
    if (n == 0) break;
    const std::span<const std::uint8_t> m{buf.data(), n};
    expect_msg_intact(m);
    const std::uint64_t id = msg_id(m);
    EXPECT_TRUE(delivered.insert(id).second) << "duplicate message " << id;
    if (!first) {
      EXPECT_GT(id, last_id) << "out-of-order delivery";
    }
    first = false;
    last_id = id;
  }

  const PerfStats cs = p.client->perf();
  EXPECT_GT(cs.msgs_dropped_ttl, 0u) << "outage produced no expiries";
  EXPECT_GT(delivered.size(), 0u) << "no survivors at all";
  EXPECT_GE(in_hole.size(), 5u) << "burst missed the outage window";
  // Expired-in-the-hole messages are never delivered.
  for (const std::uint64_t id : in_hole) {
    EXPECT_FALSE(delivered.contains(id))
        << "message " << id << " was sent into the black hole yet delivered";
  }
  // Nothing vanishes: every message is delivered or counted as a TTL drop
  // (or, for at most a few outage-boundary messages, both — see above).
  EXPECT_GE(delivered.size() + cs.msgs_dropped_ttl, kMsgs);
  EXPECT_LE(delivered.size() + cs.msgs_dropped_ttl, kMsgs + 4)
      << "lost-ACK overlap should be a boundary effect, not the norm";
  EXPECT_GT(cs.msg_drop_ctrl_sent, 0u);
  EXPECT_GT(p.server->perf().msg_drop_ctrl_recv, 0u);

  // The sealed holes must not have wedged anything: a fresh fully-reliable
  // message still round-trips.
  const auto tail = make_msg(kMsgs, 5000);
  ASSERT_EQ(p.client->sendmsg(tail), tail.size());
  const std::size_t n = p.server->recvmsg(buf, std::chrono::seconds{10});
  ASSERT_EQ(n, tail.size());
  expect_msg_intact(std::span{buf.data(), n});
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

TEST(MessageMode, StreamAndMessageNeverInterleave) {
  // Stream-latched socket rejects sendmsg.
  Pair a = make_pair_opts({}, {});
  ASSERT_NE(a.client, nullptr);
  const std::vector<std::uint8_t> bytes(100, 0x42);
  ASSERT_EQ(a.client->send(bytes), bytes.size());
  EXPECT_EQ(a.client->sendmsg(make_msg(0, 100)), 0u);
  a.client->close();
  a.server->close();

  // Message-latched socket rejects stream writes on BOTH stream entry
  // points — a partial send() splicing bytes between the packets of an
  // in-flight multi-packet message would poison its reassembly.
  Pair b = make_pair_opts({}, {});
  ASSERT_NE(b.client, nullptr);
  ASSERT_EQ(b.client->sendmsg(make_msg(0, 5000)), 5000u);
  EXPECT_EQ(b.client->send(bytes), 0u);
  EXPECT_EQ(b.client->send_overlapped(bytes, std::chrono::seconds{1}), 0u);
  // The message path is unharmed.
  std::vector<std::uint8_t> buf(16 << 10);
  const std::size_t n = b.server->recvmsg(buf, std::chrono::seconds{10});
  ASSERT_EQ(n, 5000u);
  expect_msg_intact(std::span{buf.data(), n});
  b.client->close();
  b.server->close();
}

TEST(MessageMode, StreamTrafficUnaffectedByMessageMachinery) {
  // A plain stream transfer with the message machinery compiled in: byte
  // stream intact, no message counters moving (wire word1 stays zero).
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  std::vector<std::uint8_t> payload(512 << 10);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  auto sent = std::async(std::launch::async, [&] {
    const std::size_t n = p.client->send(payload);
    p.client->flush(std::chrono::seconds{30});
    return n;
  });
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> buf(64 << 10);
  while (got.size() < payload.size()) {
    const std::size_t n = p.server->recv(buf, std::chrono::seconds{10});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + static_cast<long>(n));
  }
  EXPECT_EQ(sent.get(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(p.client->perf().msgs_sent, 0u);
  EXPECT_EQ(p.server->perf().msgs_delivered, 0u);
  EXPECT_EQ(p.client->perf().msg_drop_ctrl_sent, 0u);
  p.client->close();
  p.server->close();
}

TEST(MessageMode, GuardsRejectEmptyOversizedAndTruncate) {
  SocketOptions client;
  client.max_msg_pkts = 2;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  const int mss = client.mss_bytes;
  EXPECT_EQ(p.client->sendmsg({}), 0u);  // empty
  EXPECT_EQ(p.client->sendmsg(make_msg(0, 3 * static_cast<std::size_t>(mss))),
            0u);  // over max_msg_pkts
  // Rejections latch nothing and count nothing.
  EXPECT_EQ(p.client->perf().msgs_sent, 0u);

  // recvmsg truncation: excess bytes are discarded, message consumed.
  const auto m = make_msg(1, 1000);
  ASSERT_EQ(p.client->sendmsg(m), m.size());
  std::vector<std::uint8_t> small(100);
  EXPECT_EQ(p.server->recvmsg(small, std::chrono::seconds{10}), 100u);
  EXPECT_TRUE(std::equal(small.begin(), small.end(), m.begin()));
  EXPECT_EQ(p.server->recvmsg(small, std::chrono::milliseconds{200}), 0u);
  // Empty out never consumes.
  ASSERT_EQ(p.client->sendmsg(m), m.size());
  EXPECT_EQ(p.server->recvmsg({}, std::chrono::milliseconds{100}), 0u);
  std::vector<std::uint8_t> big(4096);
  EXPECT_EQ(p.server->recvmsg(big, std::chrono::seconds{10}), m.size());
  p.client->close();
  p.server->close();
}

}  // namespace
}  // namespace udtr::udt
