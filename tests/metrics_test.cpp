#include "common/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

namespace udtr {
namespace {

TEST(Jain, EqualSharesAreIdeal) {
  std::array<double, 4> xs{100.0, 100.0, 100.0, 100.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(xs), 1.0);
}

TEST(Jain, SingleHogIsWorstCase) {
  std::array<double, 4> xs{400.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_fairness_index(xs), 0.25);  // 1/n
}

TEST(Jain, HandComputedMixedCase) {
  // (1+2+3)^2 / (3 * (1+4+9)) = 36/42
  std::array<double, 3> xs{1.0, 2.0, 3.0};
  EXPECT_NEAR(jain_fairness_index(xs), 36.0 / 42.0, 1e-12);
}

TEST(Jain, ScaleInvariant) {
  std::array<double, 3> a{1.0, 2.0, 3.0};
  std::array<double, 3> b{10.0, 20.0, 30.0};
  EXPECT_NEAR(jain_fairness_index(a), jain_fairness_index(b), 1e-12);
}

TEST(Jain, EmptyAndZeroInputs) {
  EXPECT_EQ(jain_fairness_index({}), 0.0);
  std::array<double, 2> zeros{0.0, 0.0};
  EXPECT_EQ(jain_fairness_index(zeros), 0.0);
}

TEST(Stability, ConstantThroughputIsPerfectlyStable) {
  std::vector<std::vector<double>> s{{5.0, 5.0, 5.0}, {7.0, 7.0, 7.0}};
  EXPECT_DOUBLE_EQ(stability_index(s), 0.0);
}

TEST(Stability, HandComputedOscillation) {
  // One flow oscillating 0/10: mean 5, sample stddev sqrt(50/3)... use
  // samples {4,6}: mean 5, stddev sqrt(2); index = sqrt(2)/5.
  std::vector<std::vector<double>> s{{4.0, 6.0}};
  EXPECT_NEAR(stability_index(s), std::sqrt(2.0) / 5.0, 1e-12);
}

TEST(Stability, AveragesAcrossFlows) {
  std::vector<std::vector<double>> s{{4.0, 6.0}, {5.0, 5.0}};
  EXPECT_NEAR(stability_index(s), std::sqrt(2.0) / 5.0 / 2.0, 1e-12);
}

TEST(Stability, SkipsDegenerateFlows) {
  std::vector<std::vector<double>> s{{0.0, 0.0}, {4.0, 6.0}};
  EXPECT_NEAR(stability_index(s), std::sqrt(2.0) / 5.0, 1e-12);
}

TEST(Friendliness, IdealWhenTcpKeepsFairShare) {
  // 2 TCP flows with UDT average 30; 5 flows alone average 30 -> T = 1.
  std::array<double, 2> with_udt{30.0, 30.0};
  std::array<double, 5> alone{30.0, 30.0, 30.0, 30.0, 30.0};
  EXPECT_DOUBLE_EQ(friendliness_index(with_udt, alone, 3), 1.0);
}

TEST(Friendliness, BelowOneWhenUdtOverruns) {
  std::array<double, 2> with_udt{10.0, 10.0};
  std::array<double, 5> alone{30.0, 30.0, 30.0, 30.0, 30.0};
  EXPECT_NEAR(friendliness_index(with_udt, alone, 3), 1.0 / 3.0, 1e-12);
}

TEST(StdDev, MatchesHandComputation) {
  std::array<double, 4> xs{2.0, 4.0, 4.0, 6.0};
  // mean 4, sum sq dev = 4+0+0+4 = 8, sample var = 8/3.
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_EQ(sample_stddev(std::array<double, 1>{3.0}), 0.0);
}

}  // namespace
}  // namespace udtr
