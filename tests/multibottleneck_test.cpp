#include "netsim/multibottleneck.hpp"

#include <gtest/gtest.h>

#include "netsim/stats.hpp"

namespace udtr::sim {
namespace {

TEST(ParkingLot, SingleFlowTraversesAllHops) {
  Simulator sim;
  ParkingLot net{sim, {Bandwidth::mbps(50), Bandwidth::mbps(50)}, 100};
  UdtFlowConfig cfg;
  cfg.total_packets = 2000;
  net.add_udt_flow(cfg, 0, 1, 0.020);
  sim.run_until(30.0);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 2000u);
  // Both hop links carried the data.
  EXPECT_GE(net.hop_link(0).stats().delivered, 2000u);
  EXPECT_GE(net.hop_link(1).stats().delivered, 2000u);
}

TEST(ParkingLot, CrossFlowOnlyTouchesItsHop) {
  Simulator sim;
  ParkingLot net{sim, {Bandwidth::mbps(50), Bandwidth::mbps(50)}, 100};
  UdtFlowConfig cfg;
  cfg.total_packets = 1000;
  net.add_udt_flow(cfg, 1, 1, 0.010);  // only the second hop
  sim.run_until(20.0);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 1000u);
  EXPECT_EQ(net.hop_link(0).stats().delivered, 0u);
  EXPECT_GE(net.hop_link(1).stats().delivered, 1000u);
}

TEST(ParkingLot, NarrowestHopGovernsThroughput) {
  Simulator sim;
  ParkingLot net{sim,
                 {Bandwidth::mbps(100), Bandwidth::mbps(20),
                  Bandwidth::mbps(100)},
                 100};
  net.add_udt_flow({}, 0, 2, 0.020);
  sim.run_until(20.0);
  const double mbps = average_mbps(net.udt_receiver(0).stats().delivered,
                                   1500, 0.0, 20.0);
  EXPECT_GT(mbps, 14.0);
  EXPECT_LE(mbps, 20.5);
}

TEST(ParkingLot, LongUdtFlowKeepsHalfMaxMinShare) {
  // Footnote 3 at test scale: 2 equal hops, 1 cross flow each; max-min
  // share of the long flow = C/2; claim: >= C/4.
  Simulator sim;
  ParkingLot net{sim, {Bandwidth::mbps(60), Bandwidth::mbps(60)}, 1000};
  const std::size_t long_idx = net.add_udt_flow({}, 0, 1, 0.030);
  net.add_udt_flow({}, 0, 0, 0.030);
  net.add_udt_flow({}, 1, 1, 0.030);
  sim.run_until(40.0);
  const double long_mbps = average_mbps(
      net.udt_receiver(long_idx).stats().delivered, 1500, 0.0, 40.0);
  EXPECT_GE(long_mbps, 60.0 / 4.0);
}

TEST(ParkingLot, MixedUdtTcpCoexist) {
  Simulator sim;
  ParkingLot net{sim, {Bandwidth::mbps(60), Bandwidth::mbps(60)}, 500};
  net.add_udt_flow({}, 0, 1, 0.020);
  net.add_tcp_flow({}, 1, 1, 0.020);
  sim.run_until(30.0);
  const double udt = average_mbps(net.udt_receiver(0).stats().delivered,
                                  1500, 0.0, 30.0);
  const double tcp = average_mbps(net.tcp_receiver(0).stats().delivered,
                                  1500, 0.0, 30.0);
  EXPECT_GT(udt, 10.0);
  EXPECT_GT(tcp, 10.0);
  EXPECT_LT(udt + tcp, 70.0);  // hop-1 capacity bounds them jointly
}

}  // namespace
}  // namespace udtr::sim
